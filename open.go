package durable

import (
	"errors"

	"repro/internal/core"
)

// OpenOption configures Open, the single entry point behind the package's
// engine constructors.
type OpenOption func(*openConfig)

type openConfig struct {
	ds   *Dataset
	dims int

	opts Options

	shards        ShardOptions
	shardsSet     bool
	live          LiveOptions
	liveSet       bool
	liveShards    LiveShardOptions
	liveShardsSet bool
}

// FromDataset opens a batch engine over an existing immutable dataset.
// Exactly one of FromDataset and FromStream must be given.
func FromDataset(ds *Dataset) OpenOption {
	return func(c *openConfig) { c.ds = ds }
}

// FromStream opens an empty live engine for d-dimensional records, fed
// through Append. Exactly one of FromDataset and FromStream must be given.
func FromStream(dims int) OpenOption {
	return func(c *openConfig) { c.dims = dims }
}

// WithOptions sets the engine construction options (index building block,
// planner knobs); the zero Options is the default.
func WithOptions(opts Options) OpenOption {
	return func(c *openConfig) { c.opts = opts }
}

// WithSharding partitions a FromDataset engine into static time shards, one
// independent engine per shard (see ShardOptions).
func WithSharding(shards ShardOptions) OpenOption {
	return func(c *openConfig) { c.shards = shards; c.shardsSet = true }
}

// WithLiveOptions configures a FromStream engine's ingestion: capacity hints
// and the optional online durability monitor.
func WithLiveOptions(live LiveOptions) OpenOption {
	return func(c *openConfig) { c.live = live; c.liveSet = true }
}

// WithLiveSharding gives a FromStream engine the LSM-style seal/freeze
// lifecycle: appends land in a mutable tail shard that seals into immutable
// static shards per LiveShardOptions.
func WithLiveSharding(shards LiveShardOptions) OpenOption {
	return func(c *openConfig) { c.liveShards = shards; c.liveShardsSet = true }
}

// Open builds an engine from a source plus options, consolidating the
// constructor matrix (New, NewWithOptions, NewSharded, NewLive,
// NewLiveSharded) behind one call:
//
//	eng, err := durable.Open(durable.FromDataset(ds))                          // = New
//	eng, err := durable.Open(durable.FromDataset(ds), durable.WithSharding(s)) // = NewSharded
//	eng, err := durable.Open(durable.FromStream(dims))                         // = NewLive
//	eng, err := durable.Open(durable.FromStream(dims),
//	        durable.WithLiveSharding(ls))                                      // = NewLiveSharded
//
// The result serves the shared Querier contract; callers that need a
// flavor-specific surface (LiveEngine.Append, ShardedEngine.Shards) assert to
// the concrete type, which is determined by the options: FromDataset yields
// *Engine (or *ShardedEngine with WithSharding), FromStream yields
// *LiveEngine (or *LiveShardedEngine with WithLiveSharding). Incoherent
// combinations — both sources, live options on a batch source, static
// sharding on a stream — fail with an error rather than guessing.
func Open(options ...OpenOption) (Querier, error) {
	var cfg openConfig
	for _, o := range options {
		o(&cfg)
	}
	switch {
	case cfg.ds != nil && cfg.dims != 0:
		return nil, errors.New("durable: Open takes one source, not both FromDataset and FromStream")
	case cfg.ds == nil && cfg.dims == 0:
		return nil, errors.New("durable: Open needs a source (FromDataset or FromStream)")
	}
	if cfg.ds != nil {
		if cfg.liveSet || cfg.liveShardsSet {
			return nil, errors.New("durable: live options require FromStream, not FromDataset")
		}
		if cfg.shardsSet {
			return core.NewShardedEngine(cfg.ds, cfg.opts, cfg.shards), nil
		}
		return core.NewEngine(cfg.ds, cfg.opts), nil
	}
	if cfg.shardsSet {
		return nil, errors.New("durable: WithSharding requires FromDataset; streams shard through WithLiveSharding")
	}
	if cfg.liveShardsSet {
		return core.NewLiveShardedEngine(cfg.dims, cfg.opts, cfg.live, cfg.liveShards)
	}
	return core.NewLiveEngine(cfg.dims, cfg.opts, cfg.live)
}
