// Command durbench regenerates the paper's tables and figures.
//
// Usage:
//
//	durbench -list
//	durbench -exp fig8 [-scale 1.0] [-reps 12] [-seed 1] [-quick]
//	durbench -exp all -out results.txt
//
// Experiment ids map to paper artifacts (fig1..fig13, tab4..tab6, lemma4,
// lemma5, ablations); see DESIGN.md for the full index.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id, or \"all\"")
		list  = flag.Bool("list", false, "list experiments and exit")
		scale = flag.Float64("scale", 1.0, "dataset size multiplier")
		reps  = flag.Int("reps", 12, "preference vectors per configuration (paper: 100)")
		seed  = flag.Int64("seed", 1, "random seed")
		quick = flag.Bool("quick", false, "trim parameter sweeps")
		out   = flag.String("out", "", "write output to file as well as stdout")
	)
	flag.Parse()

	if *list {
		fmt.Println("available experiments:")
		for _, e := range bench.Registry() {
			fmt.Printf("  %-16s %-10s %s\n", e.ID, e.Paper, e.Title)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "durbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	cfg := bench.Config{Scale: *scale, Reps: *reps, Seed: *seed, Quick: *quick}
	var err error
	if *exp == "all" {
		err = bench.RunAll(cfg, w)
	} else {
		err = bench.Run(*exp, cfg, w)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "durbench:", err)
		os.Exit(1)
	}
}
