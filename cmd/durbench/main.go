// Command durbench regenerates the paper's tables and figures.
//
// Usage:
//
//	durbench -list
//	durbench -exp fig8 [-scale 1.0] [-reps 12] [-seed 1] [-quick]
//	durbench -exp all -out results.txt
//	durbench -livesharded [-scale 0.25]
//	durbench -compaction [-scale 0.25]
//	durbench -topkjson BENCH_topk.json [-topkds nba-2] [-scale 0.25]
//	durbench -shardjson BENCH_sharded.json [-shardds nba-2] [-scale 0.25]
//	durbench -streamjson BENCH_stream.json [-streamds nba-2] [-scale 0.25]
//
// Experiment ids map to paper artifacts (fig1..fig13, tab4..tab6, lemma4,
// lemma5, ablations); see DESIGN.md for the full index.
//
// -topkjson writes a machine-readable perf snapshot (ns/op, allocs/op per
// durable top-k strategy plus bulk/scalar probe microbenchmarks) meant to be
// committed at the repo root so the performance trajectory is tracked across
// PRs. -shardjson does the same for the time-sharded engine: ns/op and
// speedup versus the single-shard baseline at 1/2/4/8 shards.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		exp         = flag.String("exp", "", "experiment id, or \"all\"")
		list        = flag.Bool("list", false, "list experiments and exit")
		scale       = flag.Float64("scale", 1.0, "dataset size multiplier")
		reps        = flag.Int("reps", 12, "preference vectors per configuration (paper: 100)")
		seed        = flag.Int64("seed", 1, "random seed")
		quick       = flag.Bool("quick", false, "trim parameter sweeps")
		out         = flag.String("out", "", "write output to file as well as stdout")
		topkJSON    = flag.String("topkjson", "", "write per-strategy ns/op + allocs/op JSON to this path and exit")
		topkDS      = flag.String("topkds", "nba-2", "dataset for -topkjson")
		shardJSON   = flag.String("shardjson", "", "write the shard-scaling sweep (ns/op + speedup at 1/2/4/8 shards) to this path and exit")
		shardDS     = flag.String("shardds", "nba-2", "dataset for -shardjson")
		streamJSON  = flag.String("streamjson", "", "write the live-ingestion snapshot (appends/sec, rebuild amortization, freshness lag, seal lifecycle) to this path and exit")
		streamDS    = flag.String("streamds", "nba-2", "dataset for -streamjson")
		liveSharded = flag.Bool("livesharded", false, "run the live+sharded seal/freeze lifecycle experiment (alias for -exp livesharded)")
		compaction  = flag.Bool("compaction", false, "run the sealed-shard compaction experiment (alias for -exp compaction)")
	)
	flag.Parse()
	if *liveSharded && *exp == "" {
		*exp = "livesharded"
	}
	if *compaction && *exp == "" {
		*exp = "compaction"
	}

	if *topkJSON != "" {
		cfg := bench.Config{Scale: *scale, Reps: *reps, Seed: *seed, Quick: *quick}
		if err := bench.WriteTopKJSON(cfg, *topkDS, *topkJSON); err != nil {
			fmt.Fprintln(os.Stderr, "durbench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *topkJSON)
		return
	}
	if *shardJSON != "" {
		cfg := bench.Config{Scale: *scale, Reps: *reps, Seed: *seed, Quick: *quick}
		if err := bench.WriteShardJSON(cfg, *shardDS, *shardJSON); err != nil {
			fmt.Fprintln(os.Stderr, "durbench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *shardJSON)
		return
	}
	if *streamJSON != "" {
		cfg := bench.Config{Scale: *scale, Reps: *reps, Seed: *seed, Quick: *quick}
		if err := bench.WriteStreamJSON(cfg, *streamDS, *streamJSON); err != nil {
			fmt.Fprintln(os.Stderr, "durbench:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *streamJSON)
		return
	}

	if *list {
		fmt.Println("available experiments:")
		for _, e := range bench.Registry() {
			fmt.Printf("  %-16s %-10s %s\n", e.ID, e.Paper, e.Title)
		}
		return
	}
	if *exp == "" {
		flag.Usage()
		os.Exit(2)
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "durbench:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	cfg := bench.Config{Scale: *scale, Reps: *reps, Seed: *seed, Quick: *quick}
	var err error
	if *exp == "all" {
		err = bench.RunAll(cfg, w)
	} else {
		err = bench.Run(*exp, cfg, w)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "durbench:", err)
		os.Exit(1)
	}
}
