// Command benchgate compares a freshly measured BENCH_topk.json snapshot
// against the committed baseline and gates CI on performance regressions.
//
// Usage:
//
//	benchgate -old BENCH_topk.json -new fresh.json [-maxratio 1.3]
//
// Wall-clock numbers (ns_per_op) are compared with a generous tolerance and
// only ever produce warnings — CI runners differ too much from the hosts
// that committed the baselines to fail on time alone. Allocation counts are
// host-independent, so the gate is strict exactly where the repo's hot-path
// guarantees live: any probe that was allocation-free in the baseline and
// allocates in the fresh run fails the build, as does any other
// allocs_per_op increase on the probe rows. Warnings are emitted in GitHub
// Actions annotation syntax so they surface on the workflow run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func load(path string) (*bench.TopKReport, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep bench.TopKReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &rep, nil
}

func byName(rows []bench.TopKPerf) map[string]bench.TopKPerf {
	m := make(map[string]bench.TopKPerf, len(rows))
	for _, r := range rows {
		m[r.Name] = r
	}
	return m
}

func main() {
	var (
		oldPath  = flag.String("old", "BENCH_topk.json", "committed baseline snapshot")
		newPath  = flag.String("new", "", "freshly measured snapshot (required)")
		maxRatio = flag.Float64("maxratio", 1.3, "ns_per_op ratio above which a warning is emitted")
	)
	flag.Parse()
	if *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	oldRep, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	newRep, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	if oldRep.Records != newRep.Records || oldRep.K != newRep.K || oldRep.Dataset != newRep.Dataset {
		fmt.Printf("::warning::benchgate: workload drifted (old %s n=%d k=%d, new %s n=%d k=%d); ns ratios are indicative only\n",
			oldRep.Dataset, oldRep.Records, oldRep.K, newRep.Dataset, newRep.Records, newRep.K)
	}

	failed := false
	warn := 0
	check := func(kind string, olds, news map[string]bench.TopKPerf, strictAllocs bool) {
		// Rows present only on one side are surfaced, not silently skipped:
		// a renamed or newly added probe must show up here so the baseline
		// gets re-committed rather than the strict gate quietly shrinking.
		for name := range news {
			if _, ok := olds[name]; !ok {
				fmt.Printf("::warning::benchgate: %s %q has no committed baseline row (new or renamed?); re-commit the baseline to gate it\n", kind, name)
				warn++
			}
		}
		for name, o := range olds {
			n, ok := news[name]
			if !ok {
				fmt.Printf("::warning::benchgate: %s %q missing from fresh run\n", kind, name)
				warn++
				continue
			}
			if o.NsPerOp > 0 {
				ratio := n.NsPerOp / o.NsPerOp
				verdict := "ok"
				if ratio > *maxRatio {
					verdict = "SLOWER"
					fmt.Printf("::warning::benchgate: %s %q ns/op %.0f -> %.0f (%.2fx > %.2fx tolerance)\n",
						kind, name, o.NsPerOp, n.NsPerOp, ratio, *maxRatio)
					warn++
				}
				fmt.Printf("%-10s %-14s ns/op %12.0f -> %12.0f (%.2fx, %s) allocs %d -> %d\n",
					kind, name, o.NsPerOp, n.NsPerOp, ratio, verdict, o.AllocsPerOp, n.AllocsPerOp)
			}
			if strictAllocs && n.AllocsPerOp > o.AllocsPerOp {
				reason := "allocs_per_op increased"
				if o.AllocsPerOp == 0 {
					reason = "zero-alloc probe now allocates"
				}
				fmt.Printf("::error::benchgate: %s %q %s: %d -> %d\n",
					kind, name, reason, o.AllocsPerOp, n.AllocsPerOp)
				failed = true
			}
		}
	}
	check("strategy", byName(oldRep.Strategies), byName(newRep.Strategies), false)
	check("probe", byName(oldRep.Probes), byName(newRep.Probes), true)

	switch {
	case failed:
		fmt.Println("benchgate: FAIL (allocation regression on the probe hot path)")
		os.Exit(1)
	case warn > 0:
		fmt.Printf("benchgate: pass with %d warning(s)\n", warn)
	default:
		fmt.Println("benchgate: pass")
	}
}
