// Command benchgate compares freshly measured perf snapshots against the
// committed baselines and gates CI on performance regressions.
//
// Usage:
//
//	benchgate -old BENCH_topk.json -new fresh.json [-maxratio 1.3]
//	  [-oldshard BENCH_sharded.json -newshard fresh_sharded.json]
//	  [-oldstream BENCH_stream.json -newstream fresh_stream.json]
//
// Wall-clock numbers (ns_per_op, steady_query_ns) are compared with a
// generous tolerance and only ever produce warnings — CI runners differ too
// much from the hosts that committed the baselines to fail on time alone.
// Allocation counts are host-independent, so the gate is strict exactly
// where the repo's hot-path guarantees live: any probe that was
// allocation-free in the baseline and allocates in the fresh run fails the
// build, as does any other allocs_per_op increase on the probe rows, the
// sharded sweep rows, and the live engine's steady-query allocations (the
// live+sharded steady query gets the same pool-churn slack as the sharded
// sweep rows). A baseline row that disappears from the fresh snapshot also
// fails the build: a vanished row means its hot path silently stopped being
// measured, which would let regressions land ungated. Warnings are emitted
// in GitHub Actions annotation syntax so they surface on the workflow run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func loadJSON(path string, v interface{}) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(buf, v); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	return nil
}

func byName(rows []bench.TopKPerf) map[string]bench.TopKPerf {
	m := make(map[string]bench.TopKPerf, len(rows))
	for _, r := range rows {
		m[r.Name] = r
	}
	return m
}

// gate accumulates the verdict across all compared snapshots.
type gate struct {
	maxRatio float64
	failed   bool
	warn     int
}

// ns compares one wall-clock number; over-tolerance drift is a warning.
func (g *gate) ns(kind, name string, old, new float64) {
	if old <= 0 {
		return
	}
	ratio := new / old
	verdict := "ok"
	if ratio > g.maxRatio {
		verdict = "SLOWER"
		fmt.Printf("::warning::benchgate: %s %q ns/op %.0f -> %.0f (%.2fx > %.2fx tolerance)\n",
			kind, name, old, new, ratio, g.maxRatio)
		g.warn++
	}
	fmt.Printf("%-10s %-14s ns/op %12.0f -> %12.0f (%.2fx, %s)\n", kind, name, old, new, ratio, verdict)
}

// throughput compares one higher-is-better rate (rows/sec); wall-clock like
// ns, so over-tolerance slowdown only warns.
func (g *gate) throughput(kind, name string, old, new float64) {
	if old <= 0 || new <= 0 {
		return
	}
	ratio := old / new // > 1 means the fresh run is slower
	verdict := "ok"
	if ratio > g.maxRatio {
		verdict = "SLOWER"
		fmt.Printf("::warning::benchgate: %s %q rows/s %.0f -> %.0f (%.2fx slower > %.2fx tolerance)\n",
			kind, name, old, new, ratio, g.maxRatio)
		g.warn++
	}
	fmt.Printf("%-10s %-14s rows/s %12.0f -> %12.0f (%.2fx, %s)\n", kind, name, old, new, ratio, verdict)
}

// missingRow fails the build for a baseline row absent from the fresh run: a
// silently vanished row means its hot path stopped being measured, which
// would let regressions land ungated. Renames must re-commit the baseline in
// the same change that renames the row.
func (g *gate) missingRow(kind, name string) {
	fmt.Printf("::error::benchgate: %s %q present in the committed baseline but missing from the fresh run; measure and re-commit the baseline if the row was intentionally removed or renamed\n", kind, name)
	g.failed = true
}

// allocs compares one allocation count; any increase fails the build.
func (g *gate) allocs(kind, name string, old, new int64) {
	fmt.Printf("%-10s %-14s allocs %d -> %d\n", kind, name, old, new)
	if new > old {
		reason := "allocs_per_op increased"
		if old == 0 {
			reason = "zero-alloc path now allocates"
		}
		fmt.Printf("::error::benchgate: %s %q %s: %d -> %d\n", kind, name, reason, old, new)
		g.failed = true
	}
}

func (g *gate) checkTopK(oldRep, newRep *bench.TopKReport) {
	if oldRep.Records != newRep.Records || oldRep.K != newRep.K || oldRep.Dataset != newRep.Dataset {
		fmt.Printf("::warning::benchgate: topk workload drifted (old %s n=%d k=%d, new %s n=%d k=%d); ns ratios are indicative only\n",
			oldRep.Dataset, oldRep.Records, oldRep.K, newRep.Dataset, newRep.Records, newRep.K)
	}
	check := func(kind string, olds, news map[string]bench.TopKPerf, strictAllocs bool) {
		// Rows present only on one side are surfaced, not silently skipped:
		// a renamed or newly added probe must show up here so the baseline
		// gets re-committed rather than the strict gate quietly shrinking.
		for name := range news {
			if _, ok := olds[name]; !ok {
				fmt.Printf("::warning::benchgate: %s %q has no committed baseline row (new or renamed?); re-commit the baseline to gate it\n", kind, name)
				g.warn++
			}
		}
		for name, o := range olds {
			n, ok := news[name]
			if !ok {
				g.missingRow(kind, name)
				continue
			}
			g.ns(kind, name, o.NsPerOp, n.NsPerOp)
			if strictAllocs {
				g.allocs(kind, name, o.AllocsPerOp, n.AllocsPerOp)
			}
		}
	}
	check("strategy", byName(oldRep.Strategies), byName(newRep.Strategies), false)
	check("probe", byName(oldRep.Probes), byName(newRep.Probes), true)
	if oldRep.GatherHitsPerProbe > 0 && newRep.GatherHitsPerProbe == 0 {
		fmt.Printf("::warning::benchgate: gather_hits_per_probe dropped %.1f -> 0 (gathered descent no longer exercised?)\n",
			oldRep.GatherHitsPerProbe)
		g.warn++
	}
}

// allocsSlack is g.allocs with headroom for rows measured under real
// parallelism: multi-worker fan-out rows are not perfectly host-independent
// (per-P sync.Pool caches miss under contention, GC flushes re-allocate
// pooled probes), so small drifts warn and only a meaningful increase —
// beyond 25% or 32 allocs, whichever is larger — fails the build.
func (g *gate) allocsSlack(kind, name string, old, new int64) {
	fmt.Printf("%-10s %-14s allocs %d -> %d\n", kind, name, old, new)
	limit := old + old/4
	if limit < old+32 {
		limit = old + 32
	}
	switch {
	case new > limit:
		fmt.Printf("::error::benchgate: %s %q allocs_per_op increased beyond pool-churn slack: %d -> %d (limit %d)\n",
			kind, name, old, new, limit)
		g.failed = true
	case new > old:
		fmt.Printf("::warning::benchgate: %s %q allocs_per_op drifted up within slack: %d -> %d\n", kind, name, old, new)
		g.warn++
	}
}

func (g *gate) checkShard(oldRep, newRep *bench.ShardReport) {
	if oldRep.Records != newRep.Records || oldRep.K != newRep.K || oldRep.Dataset != newRep.Dataset {
		fmt.Printf("::warning::benchgate: sharded workload drifted; ns ratios are indicative only\n")
	}
	olds := make(map[int]bench.ShardPerf, len(oldRep.Rows))
	for _, r := range oldRep.Rows {
		olds[r.Shards] = r
	}
	news := make(map[int]bench.ShardPerf, len(newRep.Rows))
	for _, r := range newRep.Rows {
		news[r.Shards] = r
	}
	for _, o := range oldRep.Rows {
		if _, ok := news[o.Shards]; !ok {
			g.missingRow("sharded", fmt.Sprintf("shards=%d", o.Shards))
		}
	}
	for _, n := range newRep.Rows {
		o, ok := olds[n.Shards]
		if !ok {
			fmt.Printf("::warning::benchgate: sharded row shards=%d has no committed baseline; re-commit the baseline to gate it\n", n.Shards)
			g.warn++
			continue
		}
		name := fmt.Sprintf("shards=%d", n.Shards)
		g.ns("sharded", name, o.NsPerOp, n.NsPerOp)
		g.allocsSlack("sharded", name, o.AllocsPerOp, n.AllocsPerOp)
	}
}

func (g *gate) checkStream(oldRep, newRep *bench.StreamReport) {
	if oldRep.Records != newRep.Records || oldRep.K != newRep.K || oldRep.Dataset != newRep.Dataset {
		fmt.Printf("::warning::benchgate: stream workload drifted; ns ratios are indicative only\n")
	}
	g.ns("stream", "steady-query", oldRep.SteadyQueryNs, newRep.SteadyQueryNs)
	g.allocs("stream", "steady-query", oldRep.SteadyQueryAllocs, newRep.SteadyQueryAllocs)
	// Durability rows first: the live+sharded gating below returns early on
	// pre-lifecycle baselines and must not take the WAL rows with it.
	g.checkStreamWAL(oldRep, newRep)
	// Concurrent-serving rows likewise gate independently of the lifecycle
	// rows' early returns.
	g.checkStreamServe(oldRep, newRep)
	// Standing-query rows: append fan-out and confirm latency per
	// subscription count.
	g.checkStreamStanding(oldRep, newRep)
	// Compaction rows: shard-count leverage is structural, timing warns.
	g.checkStreamCompact(oldRep, newRep)
	// The live+sharded lifecycle rows (absent from pre-lifecycle baselines;
	// gated once a baseline records them). The steady query fans out across
	// sealed shards on a worker pool, so its allocations get the same
	// pool-churn slack as the sharded sweep rows rather than the strict
	// single-engine gate.
	// The freeze amortization is structural (host-independent) and needs no
	// baseline: a row can be frozen at most once, so any value beyond
	// 1 + epsilon means the seal path re-froze history and the lifecycle's
	// core guarantee broke. Checked before the baseline gating below so a
	// pre-lifecycle baseline cannot mask it.
	if newRep.LiveShardedSealRows > 0 && newRep.LiveShardedSealedRowsPerAppend > 1.001 {
		fmt.Printf("::error::benchgate: stream \"livesharded\" sealed_rows_per_append %.3f > 1: sealed history was re-frozen\n",
			newRep.LiveShardedSealedRowsPerAppend)
		g.failed = true
	}
	if oldRep.LiveShardedSealRows == 0 && newRep.LiveShardedSealRows == 0 {
		return
	}
	if newRep.LiveShardedSealRows == 0 {
		g.missingRow("stream", "livesharded")
		return
	}
	if oldRep.LiveShardedSealRows == 0 {
		fmt.Printf("::warning::benchgate: stream \"livesharded\" has no committed baseline row (new?); re-commit the baseline to gate it\n")
		g.warn++
		return
	}
	g.ns("stream", "ls-steady", oldRep.LiveShardedSteadyQueryNs, newRep.LiveShardedSteadyQueryNs)
	g.allocsSlack("stream", "ls-steady", oldRep.LiveShardedSteadyQueryAllocs, newRep.LiveShardedSteadyQueryAllocs)
}

// checkStreamWAL gates the durability rows: WAL ingest throughput per fsync
// policy and recovery replay speed. Throughput is wall-clock, so drifts warn
// like ns rows; a vanished row still fails (the durability path silently
// stopped being measured).
func (g *gate) checkStreamWAL(oldRep, newRep *bench.StreamReport) {
	for _, pol := range []string{"none", "interval", "always"} {
		name := "wal-fsync-" + pol
		o, oldHas := oldRep.WALAppendsPerSec[pol]
		n, newHas := newRep.WALAppendsPerSec[pol]
		switch {
		case !oldHas && !newHas:
		case oldHas && !newHas:
			g.missingRow("stream", name)
		case !oldHas:
			fmt.Printf("::warning::benchgate: stream %q has no committed baseline row (new?); re-commit the baseline to gate it\n", name)
			g.warn++
		default:
			g.throughput("stream", name, o, n)
		}
	}
	switch {
	case oldRep.RecoveryReplayRowsPerSec == 0 && newRep.RecoveryReplayRowsPerSec == 0:
	case newRep.RecoveryReplayRowsPerSec == 0:
		g.missingRow("stream", "recovery-replay")
	case oldRep.RecoveryReplayRowsPerSec == 0:
		fmt.Printf("::warning::benchgate: stream \"recovery-replay\" has no committed baseline row (new?); re-commit the baseline to gate it\n")
		g.warn++
	default:
		g.throughput("stream", "recovery-replay", oldRep.RecoveryReplayRowsPerSec, newRep.RecoveryReplayRowsPerSec)
	}
}

// checkStreamServe gates the concurrent-serving rows: queries/sec per client
// count and the result-cache hit rate. Throughput is wall-clock, so
// regressions warn like the other rate rows; a vanished row fails (the
// serving path silently stopped being measured). The hit rate is structural —
// the hot-pool phase repeats a fixed query set at a fixed epoch — so a
// collapse below half the baseline warns even within wall-clock tolerance.
func (g *gate) checkStreamServe(oldRep, newRep *bench.StreamReport) {
	for _, clients := range []string{"1", "4", "16"} {
		name := "serve-clients-" + clients
		o, oldHas := oldRep.ServeQueriesPerSec[clients]
		n, newHas := newRep.ServeQueriesPerSec[clients]
		switch {
		case !oldHas && !newHas:
		case oldHas && !newHas:
			g.missingRow("stream", name)
		case !oldHas:
			fmt.Printf("::warning::benchgate: stream %q has no committed baseline row (new?); re-commit the baseline to gate it\n", name)
			g.warn++
		default:
			g.throughput("stream", name, o, n)
		}
	}
	switch {
	case oldRep.ServeCacheHitRate == 0 && newRep.ServeCacheHitRate == 0:
	case newRep.ServeCacheHitRate == 0:
		g.missingRow("stream", "serve-cache-hit-rate")
	case oldRep.ServeCacheHitRate == 0:
		fmt.Printf("::warning::benchgate: stream \"serve-cache-hit-rate\" has no committed baseline row (new?); re-commit the baseline to gate it\n")
		g.warn++
	default:
		fmt.Printf("%-10s %-20s hit rate %.2f -> %.2f\n", "stream", "serve-cache", oldRep.ServeCacheHitRate, newRep.ServeCacheHitRate)
		if newRep.ServeCacheHitRate < oldRep.ServeCacheHitRate/2 {
			fmt.Printf("::warning::benchgate: stream serve cache hit rate collapsed %.2f -> %.2f; repeats no longer replay\n",
				oldRep.ServeCacheHitRate, newRep.ServeCacheHitRate)
			g.warn++
		}
	}
}

// checkStreamStanding gates the standing-query rows: sustained append
// throughput and mean confirmation latency with 1/16/256 subscriptions
// attached. Both are wall-clock, so regressions warn like the other rate
// rows; a vanished row fails — the subscription path silently stopped being
// measured, and these rows are the only coverage the per-append fan-out
// cost has.
func (g *gate) checkStreamStanding(oldRep, newRep *bench.StreamReport) {
	for _, subs := range []string{"1", "16", "256"} {
		name := "standing-subs-" + subs
		o, oldHas := oldRep.StandingAppendsPerSec[subs]
		n, newHas := newRep.StandingAppendsPerSec[subs]
		switch {
		case !oldHas && !newHas:
		case oldHas && !newHas:
			g.missingRow("stream", name)
		case !oldHas:
			fmt.Printf("::warning::benchgate: stream %q has no committed baseline row (new?); re-commit the baseline to gate it\n", name)
			g.warn++
		default:
			g.throughput("stream", name, o, n)
		}
		name = "standing-confirm-" + subs
		o, oldHas = oldRep.StandingConfirmLatencyNs[subs]
		n, newHas = newRep.StandingConfirmLatencyNs[subs]
		switch {
		case !oldHas && !newHas:
		case oldHas && !newHas:
			g.missingRow("stream", name)
		case !oldHas:
			fmt.Printf("::warning::benchgate: stream %q has no committed baseline row (new?); re-commit the baseline to gate it\n", name)
			g.warn++
		default:
			g.ns("stream", name, o, n)
		}
	}
	// Backfill replay: the catch-up rate a reconnecting durable subscriber
	// gets. Like the other rows, a vanished value fails — it would mean the
	// resume path silently stopped being measured.
	switch o, n := oldRep.BackfillReplayEventsPerSec, newRep.BackfillReplayEventsPerSec; {
	case o == 0 && n == 0:
	case o > 0 && n == 0:
		g.missingRow("stream", "backfill-replay")
	case o == 0:
		fmt.Printf("::warning::benchgate: stream \"backfill-replay\" has no committed baseline row (new?); re-commit the baseline to gate it\n")
		g.warn++
	default:
		g.throughput("stream", "backfill-replay", o, n)
	}
}

// checkStreamCompact gates the compaction rows. The shard-count leverage is
// structural and host-independent, so it fails outright: with a fine seal
// cadence the uncompacted baseline carries ~one shard per seal, and the
// compacted run must hold the live set strictly below half of that — the
// O(log n) bound the LSM lifecycle exists to enforce. Steady-query ns is
// wall-clock (warns), allocations get the usual fan-out slack, and a
// vanished row fails like every other gated row.
func (g *gate) checkStreamCompact(oldRep, newRep *bench.StreamReport) {
	if newRep.CompactSealRows > 0 {
		if newRep.Compactions == 0 {
			fmt.Printf("::error::benchgate: stream \"compaction\" row measured %d seals but zero compactions ran\n",
				newRep.CompactShardsBaseline)
			g.failed = true
		}
		if newRep.CompactShards*2 >= newRep.CompactShardsBaseline {
			fmt.Printf("::error::benchgate: stream \"compaction\" shard count %d not below half the uncompacted %d: LSM leveling stopped bounding the live set\n",
				newRep.CompactShards, newRep.CompactShardsBaseline)
			g.failed = true
		}
		fmt.Printf("%-10s %-14s shards %d (baseline %d), visited %d (baseline %d), max level %d\n",
			"stream", "compaction", newRep.CompactShards, newRep.CompactShardsBaseline,
			newRep.CompactVisitedShards, newRep.CompactVisitedBaseline, newRep.CompactMaxLevel)
	}
	switch {
	case oldRep.CompactSealRows == 0 && newRep.CompactSealRows == 0:
	case newRep.CompactSealRows == 0:
		g.missingRow("stream", "compaction")
	case oldRep.CompactSealRows == 0:
		fmt.Printf("::warning::benchgate: stream \"compaction\" has no committed baseline row (new?); re-commit the baseline to gate it\n")
		g.warn++
	default:
		g.ns("stream", "compact-steady", oldRep.CompactSteadyQueryNs, newRep.CompactSteadyQueryNs)
		g.allocsSlack("stream", "compact-steady", oldRep.CompactSteadyQueryAllocs, newRep.CompactSteadyQueryAllocs)
		g.throughput("stream", "compact-ingest", oldRep.CompactAppendsPerSec, newRep.CompactAppendsPerSec)
	}
}

func main() {
	var (
		oldPath   = flag.String("old", "BENCH_topk.json", "committed topk baseline snapshot")
		newPath   = flag.String("new", "", "freshly measured topk snapshot (required)")
		oldShard  = flag.String("oldshard", "", "committed sharded baseline snapshot (optional)")
		newShard  = flag.String("newshard", "", "freshly measured sharded snapshot")
		oldStream = flag.String("oldstream", "", "committed stream baseline snapshot (optional)")
		newStream = flag.String("newstream", "", "freshly measured stream snapshot")
		maxRatio  = flag.Float64("maxratio", 1.3, "ns_per_op ratio above which a warning is emitted")
	)
	flag.Parse()
	if *newPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	// A half-specified snapshot pair would silently disable that gate; make
	// it a usage error instead so a CI misconfiguration cannot pass green.
	if (*oldShard == "") != (*newShard == "") {
		fmt.Fprintln(os.Stderr, "benchgate: -oldshard and -newshard must be passed together")
		os.Exit(2)
	}
	if (*oldStream == "") != (*newStream == "") {
		fmt.Fprintln(os.Stderr, "benchgate: -oldstream and -newstream must be passed together")
		os.Exit(2)
	}
	fatal := func(err error) {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
	g := &gate{maxRatio: *maxRatio}

	var oldTopK, newTopK bench.TopKReport
	if err := loadJSON(*oldPath, &oldTopK); err != nil {
		fatal(err)
	}
	if err := loadJSON(*newPath, &newTopK); err != nil {
		fatal(err)
	}
	g.checkTopK(&oldTopK, &newTopK)

	if *oldShard != "" && *newShard != "" {
		var o, n bench.ShardReport
		if err := loadJSON(*oldShard, &o); err != nil {
			fatal(err)
		}
		if err := loadJSON(*newShard, &n); err != nil {
			fatal(err)
		}
		g.checkShard(&o, &n)
	}
	if *oldStream != "" && *newStream != "" {
		var o, n bench.StreamReport
		if err := loadJSON(*oldStream, &o); err != nil {
			fatal(err)
		}
		if err := loadJSON(*newStream, &n); err != nil {
			fatal(err)
		}
		g.checkStream(&o, &n)
	}

	switch {
	case g.failed:
		fmt.Println("benchgate: FAIL (allocation regression or vanished row on a gated hot path)")
		os.Exit(1)
	case g.warn > 0:
		fmt.Printf("benchgate: pass with %d warning(s)\n", g.warn)
	default:
		fmt.Println("benchgate: pass")
	}
}
