// Command durserved serves durable top-k queries over TCP.
//
// It hosts one engine per dataset; clients connect with the length-prefixed
// JSON protocol of internal/wire (see examples/service for a programmatic
// client) and explore k, tau, intervals, anchors and scoring functions —
// including scoring expressions such as "points + 2*log1p(assists)" —
// without rebuilding indexes.
//
// Datasets come from CSV files (cmd/durgen produces samples) or built-in
// generators:
//
//	durserved -addr :7411 \
//	    -data games=nba.csv -names games=points,assists \
//	    -gen net=network:50000:10
//
// Generator specs are name=kind:n[:dims] with kind one of nba, network,
// ind, anti, rpm.
//
// -shards N (with optional -shardby count|timespan and -workers W) serves
// every dataset from a time-sharded engine: N independent per-shard indexes
// over zero-copy dataset slices, with queries fanned out on a bounded worker
// pool. Answers are identical to the single-engine deployment.
//
// -live name=dims serves a live dataset: it starts empty and grows through
// append requests on the wire (or -ingest below), with queries at any moment
// answering exactly as a batch engine over the records ingested so far.
// -livek/-livetau additionally enable the online monitor (uniform linear
// scoring): every append then reports the instant look-back durability
// verdict plus look-ahead confirmations as windows close. -ingest name
// streams the ReadCSV format from stdin into the named live dataset while
// the server runs, so a producer can be piped straight in:
//
//	durgen -kind nba -n 100000 | durserved -live games=2 -ingest games
//
// -sealrows N and/or -sealspan T serve -live datasets through the
// live+sharded lifecycle instead: appends route to a mutable tail shard that
// is sealed into an immutable static shard every N records (or once its
// arrivals span T ticks) — bounding rebuild work and query fan-out on an
// unbounded stream:
//
//	durgen -kind nba -n 1000000 | durserved -live games=2 -sealrows 100000 -ingest games
//
// -compactfanout N adds LSM leveling on top of the seal lifecycle: every run
// of N adjacent same-level sealed shards is merged in the background into
// one shard a level up, bounding the live shard count (and with it straddler
// fan-out and checkpoint manifest size) to O(N·log n) however long the
// stream runs. -retain T bounds retention: sealed shards whose arrivals all
// lag the stream head by more than T ticks are retired — queries then answer
// over the retained suffix only. Both compose with -wal: merges land as
// atomic manifest level swaps and retirement advances the manifest base, so
// a restart recovers the leveled, bounded layout:
//
//	durgen -kind nba -n 1000000 | durserved -live games=2 -sealrows 10000 -compactfanout 4 -retain 500000 -ingest games
//
// -wal DIR makes every -live dataset crash-safe: each append is framed into
// a write-ahead log under DIR/<name> before the engine applies it, sealed
// tail shards are checkpointed into page files, and a restart recovers the
// full acknowledged stream and resumes ingestion at the exact next record
// (-wal implies the live+sharded lifecycle; -fsync picks the WAL fsync
// policy). -keepcheckpoints N additionally retains the newest N checkpoint
// manifest generations as backups — a torn MANIFEST recovers losslessly from
// the newest — and garbage-collects older generations plus page files no
// manifest references. -conntimeout bounds each read and write per
// connection so a stalled client cannot pin a handler goroutine:
//
//	durserved -live games=2 -wal /var/lib/durserved -fsync interval -keepcheckpoints 3 -conntimeout 30s
//
// -queryworkers N serves connections pipelined: read-only requests evaluate
// concurrently — across the requests of one connection and across
// connections — on an admission pool of N workers, while responses still
// leave each connection in request order (-workers, by contrast, sizes the
// per-query shard fan-out inside one evaluation). -cache M adds a shared
// result cache of M entries: exact-match repeated queries at an unchanged
// data epoch replay their response without touching the engine, and sharded
// engines additionally reuse each immutable shard's interior answers across
// overlapping queries forever:
//
//	durserved -gen net=network:1000000:4 -shards 16 -queryworkers 8 -cache 4096
//
// -subscriptions enables standing queries: protocol-v2 clients subscribe to
// a live dataset with a scorer, k and tau (durquery -follow is the
// command-line consumer) and are pushed per-append durability verdicts —
// instant look-back decisions and delayed look-ahead confirmations — as
// server-initiated event frames, covering wire appends and the -ingest
// stdin feed alike. Clients that additionally negotiate the backfill feature
// get durable subscriptions: the registration survives its connection
// (resumable by key with the missed events replayed server-side) and, when
// combined with -wal, survives server crashes too — the registry rides the
// checkpoint manifest, so a follower reconnecting after a restart resumes
// gap-free:
//
//	durgen -kind nba -n 100000 | durserved -live games=2 -ingest games -subscriptions -wal /var/lib/durserved
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"

	durable "repro"
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/score"
	"repro/internal/serve"
	"repro/internal/wire"
)

// keyValue collects repeatable name=value flags.
type keyValue struct {
	keys, values []string
}

func (kv *keyValue) String() string { return strings.Join(kv.keys, ",") }

func (kv *keyValue) Set(s string) error {
	name, value, ok := strings.Cut(s, "=")
	if !ok || name == "" || value == "" {
		return fmt.Errorf("want name=value, got %q", s)
	}
	kv.keys = append(kv.keys, name)
	kv.values = append(kv.values, value)
	return nil
}

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7411", "listen address")
		seed     = flag.Int64("seed", 1, "seed for generated datasets")
		shards   = flag.Int("shards", 1, "serve each dataset from this many time shards (sharded engine when > 1)")
		shardBy  = flag.String("shardby", "count", "shard partitioning: count|timespan")
		workers  = flag.Int("workers", 0, "per-query shard fan-out pool size (0 = min(shards, GOMAXPROCS))")
		liveK    = flag.Int("livek", 0, "monitor live datasets online with this top-k (0 = no monitor)")
		liveTau  = flag.Int64("livetau", 0, "durability window length for -livek monitoring")
		ingest   = flag.String("ingest", "", "stream CSV records from stdin into this live dataset")
		sealRows = flag.Int("sealrows", 0, "serve -live datasets live+sharded: seal the mutable tail into a static shard every N records (0 = plain live engine)")
		sealSpan = flag.Int64("sealspan", 0, "serve -live datasets live+sharded: seal the tail once its arrivals span this many ticks (0 = no span rule)")
		compactN = flag.Int("compactfanout", 0, "compact every run of N adjacent same-level sealed shards into one shard a level up, bounding shard count to O(log n) on an unbounded stream (0 = no compaction; needs -sealrows/-sealspan)")
		retain   = flag.Int64("retain", 0, "retire sealed shards whose arrivals are all older than this many ticks behind the stream head (0 = retain everything; needs -sealrows/-sealspan)")
		walDir   = flag.String("wal", "", "serve -live datasets crash-safe from a write-ahead-logged store under this directory (one subdirectory per dataset; implies the live+sharded lifecycle)")
		fsyncPol = flag.String("fsync", "always", "WAL fsync policy for -wal: always|interval|none")
		fsyncEvy = flag.Duration("fsyncevery", 0, "fsync period for -fsync interval (0 = 50ms default)")
		keepCk   = flag.Int("keepcheckpoints", 0, "with -wal, retain the newest N checkpoint-manifest generations as backups and garbage-collect older ones plus unreferenced page files (0 = single manifest, no GC)")
		connTO   = flag.Duration("conntimeout", 0, "per-connection read/write deadline; idle or stalled clients are disconnected after this long (0 = none)")
		qWorkers = flag.Int("queryworkers", 0, "admit this many concurrent query evaluations (pipelined serving; 0 = serial, one request at a time per connection)")
		cacheSz  = flag.Int("cache", 0, "shared result cache size in entries; repeated queries at an unchanged data epoch replay without engine work (0 = no cache)")
		subsOn   = flag.Bool("subscriptions", false, "serve standing queries: protocol-v2 clients may subscribe to live datasets and are pushed per-append durability verdicts")
		files    keyValue
		gens     keyValue
		names    keyValue
		lives    keyValue
	)
	flag.Var(&files, "data", "serve a CSV dataset as name=path (repeatable)")
	flag.Var(&gens, "gen", "serve a generated dataset as name=kind:n[:dims] (repeatable)")
	flag.Var(&names, "names", "attribute names as dataset=col1,col2,... (repeatable)")
	flag.Var(&lives, "live", "serve an initially empty live dataset as name=dims (repeatable)")
	flag.Parse()

	strategy, err := core.ParseShardStrategy(*shardBy)
	if err != nil {
		log.Fatalf("durserved: %v", err)
	}
	syncPolicy, err := durable.ParseSyncPolicy(*fsyncPol)
	if err != nil {
		log.Fatalf("durserved: -fsync: %v", err)
	}

	if len(files.keys)+len(gens.keys)+len(lives.keys) == 0 {
		fmt.Fprintln(os.Stderr, "durserved: need at least one -data, -gen or -live dataset")
		flag.Usage()
		os.Exit(2)
	}

	attrNames := map[string][]string{}
	for i, ds := range names.keys {
		attrNames[ds] = strings.Split(names.values[i], ",")
	}

	srv := wire.NewServer(nil)
	// Install the concurrency layer before registering datasets so sharded
	// engines pick up the partial cache at registration.
	if *qWorkers > 0 {
		srv.SetScheduler(serve.NewScheduler(*qWorkers))
		log.Printf("durserved: pipelined serving, %d query workers", *qWorkers)
	}
	if *cacheSz > 0 {
		srv.SetCache(serve.NewCache(*cacheSz))
		log.Printf("durserved: result cache, %d entries", *cacheSz)
	}
	// Standing queries are an operator opt-in: without -subscriptions the
	// "events" feature is withheld at hello time and subscribe requests fail
	// with a clear error, while everything else serves unchanged.
	srv.SetSubscriptions(*subsOn)
	if *subsOn {
		log.Printf("durserved: standing-query subscriptions enabled (protocol v2, feature %q)", wire.FeatureEvents)
	}
	// The bounded skyband scan keeps S-Band's lazy index build tractable on
	// adversarial data while staying exact (see DESIGN.md §2).
	engOpts := core.Options{SkybandScanBudget: 4096}
	shardOpts := core.ShardOptions{Shards: *shards, Workers: *workers, Strategy: strategy}
	register := func(name string, ds *data.Dataset) {
		var err error
		suffix := ""
		if *shards > 1 {
			// Build first so the log reports the shard count actually
			// constructed (cut collapse can yield fewer than requested).
			q, oerr := durable.Open(durable.FromDataset(ds),
				durable.WithOptions(engOpts), durable.WithSharding(shardOpts))
			if oerr != nil {
				log.Fatalf("durserved: %v", oerr)
			}
			se := q.(*core.ShardedEngine)
			err = srv.AddQuerier(name, se, attrNames[name])
			suffix = fmt.Sprintf(", %d %s-partitioned time shards", se.NumShards(), strategy)
		} else {
			err = srv.Add(name, ds, attrNames[name], engOpts)
		}
		if err != nil {
			log.Fatalf("durserved: %v", err)
		}
		lo, hi := ds.Span()
		log.Printf("durserved: serving %q: %d records, %d dims, time [%d, %d]%s",
			name, ds.Len(), ds.Dims(), lo, hi, suffix)
	}

	for i, name := range files.keys {
		f, err := os.Open(files.values[i])
		if err != nil {
			log.Fatalf("durserved: %v", err)
		}
		ds, err := data.ReadCSV(f)
		f.Close()
		if err != nil {
			log.Fatalf("durserved: %s: %v", files.values[i], err)
		}
		register(name, ds)
	}
	for i, name := range gens.keys {
		ds, err := generate(gens.values[i], *seed)
		if err != nil {
			log.Fatalf("durserved: -gen %s: %v", gens.values[i], err)
		}
		register(name, ds)
	}

	liveEngines := map[string]liveServed{}
	var stores []*durable.Store // closed on shutdown so the WAL flushes
	for i, name := range lives.keys {
		dims, err := strconv.Atoi(lives.values[i])
		if err != nil || dims < 1 {
			log.Fatalf("durserved: -live %s=%s: want name=dims", name, lives.values[i])
		}
		liveOpts := core.LiveOptions{}
		if *liveK > 0 {
			w := make([]float64, dims)
			for j := range w {
				w[j] = 1
			}
			s, err := score.NewLinear(w)
			if err != nil {
				log.Fatalf("durserved: %v", err)
			}
			liveOpts = core.LiveOptions{
				MonitorK: *liveK, MonitorTau: *liveTau, MonitorScorer: s, TrackAhead: true,
			}
		}
		var le liveServed
		suffix := ""
		if *walDir != "" {
			st, err := durable.Recover(filepath.Join(*walDir, name), dims, durable.StoreOptions{
				Sync: syncPolicy, SyncEvery: *fsyncEvy,
				Engine: engOpts, Live: liveOpts,
				Shard:           core.LiveShardOptions{SealRows: *sealRows, SealSpan: *sealSpan, Workers: *workers, CompactFanout: *compactN, RetainSpan: *retain},
				KeepCheckpoints: *keepCk,
				Logf:            log.Printf,
			})
			if err != nil {
				log.Fatalf("durserved: -wal %s: %v", name, err)
			}
			if err := srv.AddLiveQuerier(name, st.Engine(), st, attrNames[name]); err != nil {
				log.Fatalf("durserved: -live %s: %v", name, err)
			}
			stats := st.Stats()
			reset := ""
			if stats.WALReset {
				reset = "; corrupt tail WAL discarded behind the last checkpoint"
			}
			log.Printf("durserved: recovered %q: %d rows from %d checkpointed shards, %d replayed from the WAL%s",
				name, stats.RestoredRows, stats.RestoredShards, stats.ReplayedRows, reset)
			stores = append(stores, st)
			le = st
			suffix = fmt.Sprintf(", crash-safe (wal under %s, fsync=%s)", filepath.Join(*walDir, name), syncPolicy)
		} else if *sealRows > 0 || *sealSpan > 0 {
			// Live+sharded lifecycle: appends route to a mutable tail shard
			// that seals into immutable static shards as it fills.
			lse, err := srv.AddLiveSharded(name, dims, attrNames[name], engOpts, liveOpts,
				core.LiveShardOptions{SealRows: *sealRows, SealSpan: *sealSpan, Workers: *workers, CompactFanout: *compactN, RetainSpan: *retain})
			if err != nil {
				log.Fatalf("durserved: -live %s: %v", name, err)
			}
			le = lse
			suffix = fmt.Sprintf(", sealing every %s", sealRuleString(*sealRows, *sealSpan))
		} else {
			plain, err := srv.AddLive(name, dims, attrNames[name], engOpts, liveOpts)
			if err != nil {
				log.Fatalf("durserved: -live %s: %v", name, err)
			}
			le = plain
		}
		liveEngines[name] = le
		if *liveK > 0 {
			suffix += fmt.Sprintf(", monitored k=%d tau=%d", *liveK, *liveTau)
		}
		log.Printf("durserved: serving live %q: %d dims, awaiting appends%s", name, dims, suffix)
	}

	if *ingest != "" {
		le, ok := liveEngines[*ingest]
		if !ok {
			log.Fatalf("durserved: -ingest %s: no such -live dataset", *ingest)
		}
		// Wire appends are locked out until stdin drains: a client record
		// with a later timestamp interleaved mid-feed would make the feed's
		// next record non-increasing and abort the whole stream.
		if err := srv.SetIngesting(*ingest, true); err != nil {
			log.Fatalf("durserved: %v", err)
		}
		go func() {
			defer func() {
				if err := srv.SetIngesting(*ingest, false); err != nil {
					log.Printf("durserved: %v", err)
				}
			}()
			// The monitor's per-record verdicts would swamp the log on a
			// bulk feed; aggregate them and report the totals at drain
			// time. Wire appends still return verdicts row by row.
			// Rows go through the server's append path (not the bare
			// engine) so standing-query subscribers observe the stdin feed
			// exactly like wire appends, at exact prefixes.
			var n, instant, confirmedDur, confirmed int
			err := data.StreamCSV(os.Stdin, func(t int64, attrs []float64) error {
				dec, confirms, err := srv.AppendRow(*ingest, t, attrs)
				if err != nil {
					return err
				}
				n++
				if dec.Durable {
					instant++
				}
				confirmed += len(confirms)
				for _, c := range confirms {
					if c.Durable {
						confirmedDur++
					}
				}
				return nil
			})
			if err != nil {
				log.Printf("durserved: ingest %q: %v (after %d records)", *ingest, err, n)
				return
			}
			suffix := ""
			if le.Monitored() {
				suffix = fmt.Sprintf("; monitor: %d instant-durable, %d/%d look-ahead windows confirmed durable (%d still open)",
					instant, confirmedDur, confirmed, n-confirmed)
			}
			log.Printf("durserved: ingest %q: stdin drained after %d records (%d index rebuilds)%s",
				*ingest, n, le.Rebuilds(), suffix)
		}()
	}

	srv.SetConnTimeout(*connTO)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("durserved: %v", err)
	}
	log.Printf("durserved: listening on %s", ln.Addr())

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		log.Print("durserved: shutting down")
		srv.Close()
	}()
	if err := srv.Serve(ln); err != nil && !isClosed(err) {
		log.Fatalf("durserved: %v", err)
	}
	srv.Close() // idempotent; waits until in-flight connections drain
	// Connections have drained; flush and close the durable stores so the
	// final WAL tail is on stable storage before exit.
	for _, st := range stores {
		if err := st.Close(); err != nil {
			log.Printf("durserved: closing store: %v", err)
		}
	}
}

func isClosed(err error) bool {
	return strings.Contains(err.Error(), "use of closed network connection")
}

// liveServed is the ingestion surface durserved needs from a live dataset's
// engine, satisfied by both core.LiveEngine and core.LiveShardedEngine.
type liveServed interface {
	wire.LiveIngest
	Rebuilds() int
}

// sealRuleString renders the active seal thresholds for the startup log.
func sealRuleString(rows int, span int64) string {
	switch {
	case rows > 0 && span > 0:
		return fmt.Sprintf("%d records or %d ticks", rows, span)
	case span > 0:
		return fmt.Sprintf("%d ticks", span)
	default:
		return fmt.Sprintf("%d records", rows)
	}
}

// generate builds a synthetic dataset from a kind:n[:dims] spec.
func generate(spec string, seed int64) (*data.Dataset, error) {
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return nil, fmt.Errorf("want kind:n[:dims], got %q", spec)
	}
	n, err := strconv.Atoi(parts[1])
	if err != nil || n < 1 {
		return nil, fmt.Errorf("bad size %q", parts[1])
	}
	dims := 2
	if len(parts) == 3 {
		dims, err = strconv.Atoi(parts[2])
		if err != nil || dims < 1 {
			return nil, fmt.Errorf("bad dims %q", parts[2])
		}
	}
	switch parts[0] {
	case "nba":
		return datagen.NBA(seed, n), nil
	case "network":
		return datagen.Network(seed, n, dims), nil
	case "ind":
		return datagen.IND(seed, n, dims), nil
	case "anti":
		return datagen.ANTI(seed, n, dims), nil
	case "rpm":
		return datagen.RPM(seed, n), nil
	default:
		return nil, fmt.Errorf("unknown kind %q (want nba|network|ind|anti|rpm)", parts[0])
	}
}
