// Command durquery runs ad-hoc durable top-k queries over a CSV dataset.
//
// The CSV needs a "time,attr0,attr1,..." header with records in strictly
// increasing time order (see cmd/durgen to produce sample files).
//
// Usage:
//
//	durquery -input data.csv -k 3 -tau 500 [-start T] [-end T] \
//	         -weights 1,0.5 [-alg s-hop] [-anchor look-back] [-durations]
//
// -shards N evaluates through a time-sharded engine (N independent
// per-shard indexes, -parallel workers fanning the query out; -shardby
// picks count or timespan partitioning); answers are identical to the
// single-engine run.
//
// The ranking can also be a scoring expression over the positional
// attributes (monotonicity and index pruning bounds are derived
// automatically):
//
//	durquery -input data.csv -k 3 -tau 500 -score "x0 + 2*log1p(x1)"
//
// Mid-anchored durability windows use -anchor general with -lead, the
// portion of the window after each record's arrival:
//
//	durquery -input data.csv -k 1 -tau 500 -anchor general -lead 250
//
// -live evaluates through the streaming ingestion engine instead: records
// are appended one at a time (exactly as durserved -live would receive
// them) and the query runs over the incrementally built index. Answers are
// identical to the default batch evaluation — this flag exists to exercise
// and demonstrate the live path from the command line. Adding -sealrows N
// (and/or -sealspan T) replays the stream through the live+sharded
// lifecycle: the mutable tail seals into immutable static shards as it
// fills, and the query fans out over sealed shards plus the tail.
//
// -explain prints the cost-based planner's strategy assessment instead of
// running the query.
//
// -follow turns durquery into a standing-query consumer: instead of loading
// a CSV it subscribes to a live dataset on a durserved server (started with
// -subscriptions) and streams per-append durability verdicts until
// interrupted. The scorer must be given explicitly (-weights or -score); an
// explicit -anchor narrows the stream to instant look-back decisions or
// delayed look-ahead confirmations, and the default follows both. The
// connection re-dials and re-subscribes if the server restarts; a seam shows
// as a jump in the printed prefix:
//
//	durquery -follow -addr 127.0.0.1:7411 -dataset games -k 3 -tau 500 -weights 1,0.5
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	durable "repro"
	"repro/internal/data"
	"repro/internal/wire"
)

func main() {
	var (
		input     = flag.String("input", "", "CSV dataset path (required)")
		k         = flag.Int("k", 1, "top-k parameter")
		tau       = flag.Int64("tau", 0, "durability window length in ticks")
		start     = flag.Int64("start", 0, "query interval start (default: dataset start)")
		end       = flag.Int64("end", 0, "query interval end (default: dataset end)")
		weightsCS = flag.String("weights", "", "comma-separated linear preference weights (default: all 1)")
		scoreExpr = flag.String("score", "", "scoring expression over x0,x1,... (overrides -weights)")
		algName   = flag.String("alg", "auto", "algorithm: auto|t-base|t-hop|s-base|s-band|s-hop")
		anchorStr = flag.String("anchor", "look-back", "window anchor: look-back|look-ahead|general")
		lead      = flag.Int64("lead", 0, "window portion after the record (general anchor only)")
		explain   = flag.Bool("explain", false, "print the planner's strategy assessment and exit")
		durations = flag.Bool("durations", false, "also report each result's maximum durability")
		statsOnly = flag.Bool("stats", false, "print only summary statistics")
		mostDur   = flag.Int("mostdurable", 0, "instead of DurTop, report the N all-time most durable records")
		parallel  = flag.Int("parallel", 1, "evaluate the interval with this many workers")
		shards    = flag.Int("shards", 1, "evaluate over this many time shards (independent per-shard engines)")
		shardBy   = flag.String("shardby", "count", "shard partitioning: count|timespan")
		useRMQ    = flag.Bool("rmq", false, "use the sparse-table RMQ building block (fixed-scorer workloads)")
		live      = flag.Bool("live", false, "evaluate through the streaming ingestion engine (append records one at a time)")
		sealRows  = flag.Int("sealrows", 0, "with -live: route appends through the live+sharded lifecycle, sealing the tail every N records")
		sealSpan  = flag.Int64("sealspan", 0, "with -live: seal the tail once its arrivals span this many ticks")
		asJSON    = flag.Bool("json", false, "emit results as JSON")
		follow    = flag.Bool("follow", false, "follow a standing query against a durserved server instead of querying a CSV (requires -addr, -dataset and a scorer)")
		addr      = flag.String("addr", "", "with -follow: durserved address (host:port)")
		dataset   = flag.String("dataset", "", "with -follow: live dataset name on the server")
		maxEvents = flag.Int("maxevents", 0, "with -follow: exit after this many events (0 = stream until interrupted)")
	)
	flag.Parse()
	if *follow {
		cfg := followConfig{
			addr: *addr, dataset: *dataset,
			k: *k, tau: *tau, lead: *lead, start: *start, end: *end,
			weightsCS: *weightsCS, scoreExpr: *scoreExpr, anchor: *anchorStr,
			maxEvents: *maxEvents, asJSON: *asJSON,
		}
		flag.Visit(func(f *flag.Flag) {
			switch f.Name {
			case "anchor":
				cfg.anchorSet = true
			case "start", "end":
				cfg.intervalSet = true
			}
		})
		runFollow(cfg)
		return
	}
	if *input == "" {
		flag.Usage()
		os.Exit(2)
	}

	f, err := os.Open(*input)
	if err != nil {
		fatal(err)
	}
	ds, err := data.ReadCSV(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	weights := make([]float64, ds.Dims())
	for i := range weights {
		weights[i] = 1
	}
	if *weightsCS != "" {
		parts := strings.Split(*weightsCS, ",")
		if len(parts) != ds.Dims() {
			fatal(fmt.Errorf("need %d weights, got %d", ds.Dims(), len(parts)))
		}
		for i, p := range parts {
			weights[i], err = strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				fatal(err)
			}
		}
	}
	var scorer durable.Scorer
	if *scoreExpr != "" {
		scorer, err = durable.CompileScorer(*scoreExpr, ds.Dims(), nil)
	} else {
		scorer, err = durable.NewLinear(weights)
	}
	if err != nil {
		fatal(err)
	}
	alg, err := durable.ParseAlgorithm(*algName)
	if err != nil {
		fatal(err)
	}
	anchor := durable.LookBack
	switch *anchorStr {
	case "look-back":
	case "look-ahead":
		anchor = durable.LookAhead
	case "general":
		anchor = durable.General
	default:
		fatal(fmt.Errorf("unknown anchor %q", *anchorStr))
	}

	lo, hi := ds.Span()
	if *start == 0 && *end == 0 {
		*start, *end = lo, hi
	}

	engOpts := durable.Options{}
	if *useRMQ {
		engOpts = durable.WithRMQBlock(engOpts)
	}
	strategy, err := durable.ParseShardStrategy(*shardBy)
	if err != nil {
		fatal(err)
	}
	// -parallel only overrides the shard fan-out width when given
	// explicitly; otherwise the engine default min(shards, GOMAXPROCS)
	// applies.
	workers := 0
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "parallel" {
			workers = *parallel
		}
	})
	if (*sealRows > 0 || *sealSpan > 0) && !*live {
		fatal(fmt.Errorf("-sealrows/-sealspan require -live (they configure the live+sharded lifecycle)"))
	}
	var eng durable.Querier
	switch {
	case *live:
		if *shards > 1 {
			fatal(fmt.Errorf("-live and -shards are mutually exclusive (use -sealrows/-sealspan for live sharding)"))
		}
		if *useRMQ {
			// The live engine's forward building block is always the
			// incremental forest; silently overriding -rmq would misreport
			// what was measured.
			fatal(fmt.Errorf("-live and -rmq are mutually exclusive (the live path always uses the forest index)"))
		}
		if *sealRows > 0 || *sealSpan > 0 {
			// Live+sharded lifecycle: the stream seals into static shards as
			// it is replayed, and the query fans out over sealed + tail.
			q, err := durable.Open(durable.FromStream(ds.Dims()),
				durable.WithOptions(engOpts),
				durable.WithLiveOptions(durable.LiveOptions{Capacity: ds.Len()}),
				durable.WithLiveSharding(durable.LiveShardOptions{
					SealRows: *sealRows, SealSpan: *sealSpan, Workers: workers,
				}))
			if err != nil {
				fatal(err)
			}
			lse := q.(*durable.LiveShardedEngine)
			for i := 0; i < ds.Len(); i++ {
				if _, _, err := lse.Append(ds.Time(i), ds.Attrs(i)); err != nil {
					fatal(err)
				}
			}
			eng = lse
			break
		}
		q, err := durable.Open(durable.FromStream(ds.Dims()), durable.WithOptions(engOpts),
			durable.WithLiveOptions(durable.LiveOptions{Capacity: ds.Len()}))
		if err != nil {
			fatal(err)
		}
		le := q.(*durable.LiveEngine)
		for i := 0; i < ds.Len(); i++ {
			if _, _, err := le.Append(ds.Time(i), ds.Attrs(i)); err != nil {
				fatal(err)
			}
		}
		eng = le
	case *shards > 1:
		q, err := durable.Open(durable.FromDataset(ds), durable.WithOptions(engOpts),
			durable.WithSharding(durable.ShardOptions{
				Shards: *shards, Workers: workers, Strategy: strategy,
			}))
		if err != nil {
			fatal(err)
		}
		eng = q
	default:
		q, err := durable.Open(durable.FromDataset(ds), durable.WithOptions(engOpts))
		if err != nil {
			fatal(err)
		}
		eng = q
	}

	if *mostDur > 0 {
		top, err := eng.MostDurable(*k, scorer, anchor, *mostDur)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("# %d all-time most durable records (k=%d, %s)\n", len(top), *k, anchor)
		for _, r := range top {
			suffix := ""
			if r.FullHistory {
				suffix = "\t(entire history)"
			}
			fmt.Printf("id=%d\ttime=%d\tscore=%g\tdurability=%d%s\n", r.ID, r.Time, r.Score, r.Duration, suffix)
		}
		return
	}

	query := durable.Query{
		K: *k, Tau: *tau, Lead: *lead, Start: *start, End: *end,
		Scorer: scorer, Algorithm: alg, Anchor: anchor,
		WithDurations: *durations,
	}
	if *explain {
		plan, err := eng.Explain(query)
		if err != nil {
			fatal(err)
		}
		fmt.Print(plan)
		return
	}
	var res *durable.Result
	if single, ok := eng.(*durable.Engine); ok && *parallel > 1 {
		// Unsharded: -parallel splits the query interval across workers.
		// Sharded engines already fan out per shard on their worker pool.
		res, err = single.DurableTopKParallel(query, *parallel)
	} else {
		res, err = eng.DurableTopK(query)
	}
	if err != nil {
		fatal(err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Records []durable.ResultRecord `json:"records"`
			Stats   durable.Stats          `json:"stats"`
		}{res.Records, res.Stats}); err != nil {
			fatal(err)
		}
		return
	}

	st := res.Stats
	fmt.Printf("# %d durable records | alg=%s | %v | top-k queries=%d (check=%d find=%d maint=%d)\n",
		len(res.Records), st.Algorithm, st.Elapsed, st.TopKQueries(),
		st.CheckQueries, st.FindQueries, st.MaintQueries)
	if *statsOnly {
		return
	}
	for _, r := range res.Records {
		if *durations {
			suffix := ""
			if r.FullHistory {
				suffix = "+ (entire history)"
			}
			fmt.Printf("id=%d\ttime=%d\tscore=%g\tmax-durability=%d%s\n", r.ID, r.Time, r.Score, r.MaxDuration, suffix)
		} else {
			fmt.Printf("id=%d\ttime=%d\tscore=%g\n", r.ID, r.Time, r.Score)
		}
	}
}

// followConfig carries the -follow flag set into runFollow. anchorSet and
// intervalSet record whether the user typed the corresponding flags: an
// untyped -anchor subscribes to both verdict streams, and an untyped
// interval leaves the subscription unbounded.
type followConfig struct {
	addr, dataset          string
	k                      int
	tau, lead, start, end  int64
	weightsCS, scoreExpr   string
	anchor                 string
	anchorSet, intervalSet bool
	maxEvents              int
	asJSON                 bool
}

// runFollow registers a standing query on a durserved server and streams its
// per-append durability verdicts to stdout until interrupted (or until
// -maxevents). The connection reconnects and re-subscribes on failure; a
// seam shows as a jump in the printed prefix.
func runFollow(cfg followConfig) {
	if cfg.addr == "" || cfg.dataset == "" {
		fatal(fmt.Errorf("-follow needs -addr and -dataset"))
	}
	if cfg.lead != 0 {
		fatal(fmt.Errorf("-follow does not support -lead (mid-anchored windows have no online verdict)"))
	}
	spec := wire.QuerySpec{K: cfg.k, Tau: cfg.tau}
	if cfg.anchorSet {
		// An explicit anchor narrows the subscription to one verdict
		// stream; the default subscribes to both decisions and confirms.
		switch cfg.anchor {
		case "look-back", "look-ahead":
			spec.Anchor = cfg.anchor
		default:
			fatal(fmt.Errorf("-follow supports look-back or look-ahead anchors, not %q", cfg.anchor))
		}
	}
	if cfg.intervalSet {
		spec.Start, spec.End, spec.ExplicitInterval = cfg.start, cfg.end, true
	}
	switch {
	case cfg.scoreExpr != "":
		spec.Expr = cfg.scoreExpr
	case cfg.weightsCS != "":
		for _, p := range strings.Split(cfg.weightsCS, ",") {
			w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
			if err != nil {
				fatal(err)
			}
			spec.Weights = append(spec.Weights, w)
		}
	default:
		// The dataset lives on the server, so its dimensionality is unknown
		// here — there is no all-ones default to fall back on.
		fatal(fmt.Errorf("-follow needs a scorer: -weights or -score"))
	}

	// A follower's whole point is outliving server restarts, so the default
	// 5-attempt budget (exhausted in ~1.5s) is far too tight here: keep
	// retrying for minutes of outage, backing off to 2s between dials.
	policy := wire.RetryPolicy{
		MaxAttempts: 1 << 16,
		BaseDelay:   50 * time.Millisecond,
		MaxDelay:    2 * time.Second,
		MaxElapsed:  5 * time.Minute,
	}
	f, err := wire.Follow(cfg.addr, wire.Request{Dataset: cfg.dataset, QuerySpec: spec}, policy)
	if err != nil {
		fatal(err)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		signal.Stop(sig) // a second interrupt kills the process outright
		f.Close()
	}()

	enc := json.NewEncoder(os.Stdout)
	var events, decisions, confirms int
	closed := false
	for ev := range f.Events() {
		events++
		if cfg.asJSON {
			if err := enc.Encode(ev); err != nil {
				fatal(err)
			}
		} else {
			if d := ev.Decision; d != nil {
				fmt.Printf("prefix=%d\tdecision\tid=%d\ttime=%d\tdurable=%t\trank=%d\n",
					ev.Prefix, d.ID, d.Time, d.Durable, d.Rank)
			}
			for _, c := range ev.Confirms {
				suffix := ""
				if c.Truncated {
					suffix = "\ttruncated"
				}
				fmt.Printf("prefix=%d\tconfirm\tid=%d\ttime=%d\tdurable=%t\tbeaten=%d%s\n",
					ev.Prefix, c.ID, c.Time, c.Durable, c.Beaten, suffix)
			}
		}
		if ev.Decision != nil {
			decisions++
		}
		confirms += len(ev.Confirms)
		if cfg.maxEvents > 0 && events >= cfg.maxEvents && !closed {
			// Keep draining: Close flushes the subscription's final
			// truncated confirmations through the channel before it closes.
			closed = true
			f.Close()
		}
	}
	if err := f.Err(); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "durquery: follow ended: %d events (%d decisions, %d confirmations), %d reconnects\n",
		events, decisions, confirms, f.Reconnects())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "durquery:", err)
	os.Exit(1)
}
