// Command durgen writes synthetic datasets as CSV for use with durquery or
// external tools.
//
// Usage:
//
//	durgen -kind nba -n 100000 -out nba.csv
//	durgen -kind network -n 50000 -d 10 -out net.csv
//	durgen -kind ind|anti -n 100000 -d 2 -out syn.csv
//	durgen -kind rpm -n 100000 -out rpm.csv
//	durgen -kind stocks -n 200 -d 365 -out stocks.csv   (n tickers, d days)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"repro/internal/data"
	"repro/internal/datagen"
)

func main() {
	var (
		kind = flag.String("kind", "ind", "nba|network|ind|anti|rpm|stocks")
		n    = flag.Int("n", 10000, "record count (tickers for stocks)")
		d    = flag.Int("d", 2, "dimensionality (days for stocks)")
		seed = flag.Int64("seed", 1, "random seed")
		out  = flag.String("out", "", "output path (default stdout)")
	)
	flag.Parse()

	var ds *data.Dataset
	switch *kind {
	case "nba":
		ds = datagen.NBA(*seed, *n)
	case "network":
		ds = datagen.Network(*seed, *n, *d)
	case "ind":
		ds = datagen.IND(*seed, *n, *d)
	case "anti":
		ds = datagen.ANTI(*seed, *n, *d)
	case "rpm":
		ds = datagen.RPM(*seed, *n)
	case "stocks":
		ds = datagen.Stocks(*seed, *n, *d)
	default:
		fmt.Fprintf(os.Stderr, "durgen: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "durgen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	if err := data.WriteCSV(w, ds); err != nil {
		fmt.Fprintln(os.Stderr, "durgen:", err)
		os.Exit(1)
	}
	if err := w.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "durgen:", err)
		os.Exit(1)
	}
}
