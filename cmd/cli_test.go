// Package cmd_test builds the CLI binaries and exercises their end-to-end
// flows: synthesize a dataset with durgen, query it with durquery in its
// various modes, and list the durbench experiment registry.
package cmd_test

import (
	"bufio"
	"encoding/json"
	"math/rand"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/wire"
)

// binaries are built once per test binary into a shared temp dir.
var binDir string

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "durable-cli")
	if err != nil {
		panic(err)
	}
	binDir = dir
	for _, tool := range []string{"durgen", "durquery", "durbench", "durserved"} {
		cmd := exec.Command("go", "build", "-o", filepath.Join(dir, tool), "./"+tool)
		cmd.Dir = mustSelfDir()
		if out, err := cmd.CombinedOutput(); err != nil {
			panic(tool + " build failed: " + string(out))
		}
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

// mustSelfDir returns the cmd/ source directory (this package's directory).
func mustSelfDir() string {
	wd, err := os.Getwd()
	if err != nil {
		panic(err)
	}
	return wd
}

func run(t *testing.T, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("%s %v failed: %v\n%s", tool, args, err, out)
	}
	return string(out)
}

func runExpectError(t *testing.T, tool string, args ...string) string {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, tool), args...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("%s %v unexpectedly succeeded:\n%s", tool, args, out)
	}
	return string(out)
}

func TestGenQueryRoundTrip(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "data.csv")
	run(t, "durgen", "-kind", "ind", "-n", "2000", "-d", "2", "-seed", "3", "-out", csv)
	st, err := os.Stat(csv)
	if err != nil || st.Size() == 0 {
		t.Fatalf("durgen produced nothing: %v", err)
	}

	out := run(t, "durquery", "-input", csv, "-k", "3", "-tau", "200", "-weights", "1,0.5")
	if !strings.Contains(out, "durable records") {
		t.Fatalf("missing summary line:\n%s", out)
	}
	if !strings.Contains(out, "id=") {
		t.Fatalf("missing result rows:\n%s", out)
	}

	// Every algorithm agrees on the answer count.
	var counts []string
	for _, alg := range []string{"t-base", "t-hop", "s-base", "s-band", "s-hop"} {
		o := run(t, "durquery", "-input", csv, "-k", "3", "-tau", "200", "-alg", alg, "-stats")
		counts = append(counts, strings.Fields(o)[1])
	}
	for _, c := range counts[1:] {
		if c != counts[0] {
			t.Fatalf("algorithms disagree on CLI: %v", counts)
		}
	}
}

func TestQueryModes(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "data.csv")
	run(t, "durgen", "-kind", "anti", "-n", "1500", "-d", "2", "-out", csv)

	withDur := run(t, "durquery", "-input", csv, "-k", "2", "-tau", "100", "-durations")
	if !strings.Contains(withDur, "max-durability=") {
		t.Fatalf("durations missing:\n%s", withDur)
	}
	ahead := run(t, "durquery", "-input", csv, "-k", "2", "-tau", "100", "-anchor", "look-ahead", "-stats")
	if !strings.Contains(ahead, "durable records") {
		t.Fatalf("look-ahead failed:\n%s", ahead)
	}
	most := run(t, "durquery", "-input", csv, "-k", "2", "-mostdurable", "4")
	if !strings.Contains(most, "most durable records") || strings.Count(most, "id=") != 4 {
		t.Fatalf("mostdurable output wrong:\n%s", most)
	}
	par := run(t, "durquery", "-input", csv, "-k", "2", "-tau", "100", "-parallel", "4", "-stats")
	seq := run(t, "durquery", "-input", csv, "-k", "2", "-tau", "100", "-stats")
	if strings.Fields(par)[1] != strings.Fields(seq)[1] {
		t.Fatalf("parallel CLI answer differs:\n%s\n%s", par, seq)
	}
	rmq := run(t, "durquery", "-input", csv, "-k", "2", "-tau", "100", "-rmq", "-stats")
	if strings.Fields(rmq)[1] != strings.Fields(seq)[1] {
		t.Fatalf("rmq CLI answer differs:\n%s\n%s", rmq, seq)
	}
}

func TestQueryErrors(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "data.csv")
	run(t, "durgen", "-kind", "ind", "-n", "100", "-d", "2", "-out", csv)
	runExpectError(t, "durquery", "-input", csv, "-weights", "1,2,3") // wrong arity
	runExpectError(t, "durquery", "-input", csv, "-alg", "bogus")
	runExpectError(t, "durquery", "-input", csv, "-anchor", "sideways")
	runExpectError(t, "durquery", "-input", filepath.Join(t.TempDir(), "missing.csv"))
	runExpectError(t, "durgen", "-kind", "nonsense")
}

func TestBenchList(t *testing.T) {
	out := run(t, "durbench", "-list")
	for _, id := range []string{"fig1", "fig8", "fig12", "tab4", "tab6", "lemma4", "abl-block", "abl-parallel"} {
		if !strings.Contains(out, id) {
			t.Fatalf("registry listing missing %s:\n%s", id, out)
		}
	}
	runExpectError(t, "durbench", "-exp", "not-an-experiment")
}

func TestGenKinds(t *testing.T) {
	for _, kind := range []string{"nba", "network", "rpm", "stocks"} {
		csv := filepath.Join(t.TempDir(), kind+".csv")
		args := []string{"-kind", kind, "-n", "500", "-out", csv}
		if kind == "stocks" {
			args = []string{"-kind", kind, "-n", "10", "-d", "30", "-out", csv}
		}
		run(t, "durgen", args...)
		data, err := os.ReadFile(csv)
		if err != nil || !strings.HasPrefix(string(data), "time,attr0") {
			t.Fatalf("%s: bad CSV output", kind)
		}
	}
}

func TestQueryJSON(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "data.csv")
	run(t, "durgen", "-kind", "ind", "-n", "800", "-d", "2", "-out", csv)
	out := run(t, "durquery", "-input", csv, "-k", "2", "-tau", "150", "-json")
	var parsed struct {
		Records []struct {
			ID   int   `json:"ID"`
			Time int64 `json:"Time"`
		} `json:"records"`
		Stats struct {
			CheckQueries int `json:"CheckQueries"`
		} `json:"stats"`
	}
	if err := json.Unmarshal([]byte(out), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out)
	}
	if len(parsed.Records) == 0 {
		t.Fatal("JSON output has no records")
	}
	for i := 1; i < len(parsed.Records); i++ {
		if parsed.Records[i].Time <= parsed.Records[i-1].Time {
			t.Fatal("JSON records not time-ascending")
		}
	}
}

func TestQueryExpressionFlags(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "data.csv")
	run(t, "durgen", "-kind", "ind", "-n", "1200", "-d", "2", "-out", csv)

	// A linear expression must match the equivalent -weights run.
	w := run(t, "durquery", "-input", csv, "-k", "2", "-tau", "150", "-weights", "1,0.5", "-stats")
	e := run(t, "durquery", "-input", csv, "-k", "2", "-tau", "150", "-score", "x0 + 0.5*x1", "-stats")
	if strings.Fields(w)[1] != strings.Fields(e)[1] {
		t.Fatalf("expression and weights disagree:\n%s\n%s", w, e)
	}

	nl := run(t, "durquery", "-input", csv, "-k", "2", "-tau", "150", "-score", "log1p(x0) + sqrt(x1)", "-stats")
	if !strings.Contains(nl, "durable records") {
		t.Fatalf("non-linear expression failed:\n%s", nl)
	}
	runExpectError(t, "durquery", "-input", csv, "-score", "log1p(")
	runExpectError(t, "durquery", "-input", csv, "-score", "x7") // out of range
}

func TestQueryGeneralAnchorAndExplain(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "data.csv")
	run(t, "durgen", "-kind", "ind", "-n", "1200", "-d", "2", "-out", csv)

	mid := run(t, "durquery", "-input", csv, "-k", "2", "-tau", "150",
		"-anchor", "general", "-lead", "75", "-stats")
	if !strings.Contains(mid, "durable records") {
		t.Fatalf("general anchor failed:\n%s", mid)
	}
	runExpectError(t, "durquery", "-input", csv, "-k", "2", "-tau", "150",
		"-anchor", "general", "-lead", "151") // lead > tau

	plan := run(t, "durquery", "-input", csv, "-k", "2", "-tau", "150", "-explain")
	for _, tok := range []string{"plan:", "t-hop", "cost"} {
		if !strings.Contains(plan, tok) {
			t.Fatalf("explain output missing %q:\n%s", tok, plan)
		}
	}
}

func TestServedEndToEnd(t *testing.T) {
	cmd := exec.Command(filepath.Join(binDir, "durserved"),
		"-addr", "127.0.0.1:0", "-gen", "toy=ind:1500", "-seed", "5")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// The server logs its bound address; scan for it.
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addrCh <- strings.TrimSpace(line[i+len("listening on "):])
				return
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not report its address")
	}

	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.Ping(); err != nil {
		t.Fatal(err)
	}
	infos, err := cl.Datasets()
	if err != nil || len(infos) != 1 || infos[0].Name != "toy" {
		t.Fatalf("datasets: %v %+v", err, infos)
	}
	recs, st, err := cl.Query(wire.Request{Dataset: "toy", QuerySpec: wire.QuerySpec{K: 2, Tau: 150, Expr: "x0 + x1"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || st.Algorithm == "" {
		t.Fatalf("empty answer over TCP: %d records, stats %+v", len(recs), st)
	}
}

func TestQueryShardedModes(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "data.csv")
	run(t, "durgen", "-kind", "ind", "-n", "2000", "-d", "2", "-out", csv)

	// Compare the full record listings (every id/time/score line), not just
	// the summary count, so shard-to-global id mapping bugs surface here.
	recordLines := func(out string) string {
		var recs []string
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "id=") {
				recs = append(recs, line)
			}
		}
		return strings.Join(recs, "\n")
	}
	seq := recordLines(run(t, "durquery", "-input", csv, "-k", "3", "-tau", "150"))
	if seq == "" {
		t.Fatal("baseline query returned no records")
	}
	for _, extra := range [][]string{
		{"-shards", "4"},
		{"-shards", "4", "-parallel", "2"},
		{"-shards", "7", "-shardby", "timespan"},
	} {
		args := append([]string{"-input", csv, "-k", "3", "-tau", "150"}, extra...)
		out := recordLines(run(t, "durquery", args...))
		if out != seq {
			t.Fatalf("sharded CLI records differ (%v):\n%s\n---\n%s", extra, out, seq)
		}
	}
	// Sharded durations and most-durable flow through the same Querier.
	dur := run(t, "durquery", "-input", csv, "-k", "2", "-tau", "100", "-shards", "3", "-durations")
	if !strings.Contains(dur, "max-durability=") {
		t.Fatalf("sharded durations missing:\n%s", dur)
	}
	most := run(t, "durquery", "-input", csv, "-k", "2", "-shards", "3", "-mostdurable", "4")
	if strings.Count(most, "id=") != 4 {
		t.Fatalf("sharded mostdurable wrong:\n%s", most)
	}
	runExpectError(t, "durquery", "-input", csv, "-shards", "4", "-shardby", "hash")
}

func TestServedSharded(t *testing.T) {
	cmd := exec.Command(filepath.Join(binDir, "durserved"),
		"-addr", "127.0.0.1:0", "-gen", "toy=ind:1500", "-seed", "5",
		"-shards", "4", "-shardby", "timespan")
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()
	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addrCh <- strings.TrimSpace(line[i+len("listening on "):])
				return
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("sharded server did not report its address")
	}
	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	recs, st, err := cl.Query(wire.Request{Dataset: "toy", QuerySpec: wire.QuerySpec{K: 2, Tau: 150, Expr: "x0 + x1"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || st.Algorithm == "" {
		t.Fatalf("empty sharded answer over TCP: %d records, stats %+v", len(recs), st)
	}
}

func TestQueryLiveMode(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "data.csv")
	run(t, "durgen", "-kind", "ind", "-n", "2000", "-d", "2", "-out", csv)

	recordLines := func(out string) string {
		var recs []string
		for _, line := range strings.Split(out, "\n") {
			if strings.HasPrefix(line, "id=") {
				recs = append(recs, line)
			}
		}
		return strings.Join(recs, "\n")
	}
	batch := recordLines(run(t, "durquery", "-input", csv, "-k", "3", "-tau", "150"))
	if batch == "" {
		t.Fatal("baseline query returned no records")
	}
	live := recordLines(run(t, "durquery", "-input", csv, "-k", "3", "-tau", "150", "-live"))
	if live != batch {
		t.Fatalf("live CLI records differ from batch:\n%s\n---\n%s", live, batch)
	}
	// Durations, expressions and most-durable flow through the same Querier.
	dur := run(t, "durquery", "-input", csv, "-k", "2", "-tau", "100", "-live", "-durations")
	if !strings.Contains(dur, "max-durability=") {
		t.Fatalf("live durations missing:\n%s", dur)
	}
	most := run(t, "durquery", "-input", csv, "-k", "2", "-live", "-mostdurable", "4")
	if strings.Count(most, "id=") != 4 {
		t.Fatalf("live mostdurable wrong:\n%s", most)
	}
	runExpectError(t, "durquery", "-input", csv, "-live", "-shards", "4")

	// The live+sharded lifecycle (-sealrows / -sealspan) must answer
	// bit-identically too, across several seal boundaries.
	for _, extra := range [][]string{
		{"-sealrows", "300"},
		{"-sealspan", "40"},
		{"-sealrows", "256", "-sealspan", "500"},
	} {
		args := append([]string{"-input", csv, "-k", "3", "-tau", "150", "-live"}, extra...)
		if got := recordLines(run(t, "durquery", args...)); got != batch {
			t.Fatalf("live-sharded CLI records (%v) differ from batch:\n%s\n---\n%s", extra, got, batch)
		}
	}
	durSharded := run(t, "durquery", "-input", csv, "-k", "2", "-tau", "100", "-live", "-sealrows", "300", "-durations")
	if !strings.Contains(durSharded, "max-durability=") {
		t.Fatalf("live-sharded durations missing:\n%s", durSharded)
	}
}

// TestServedLiveIngest pipes a durgen stream into durserved -live -ingest
// (the `durgen | durserved` deployment) and watches records become queryable
// over the wire while also appending through the protocol itself.
func TestServedLiveIngest(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "feed.csv")
	run(t, "durgen", "-kind", "ind", "-n", "1200", "-d", "2", "-seed", "7", "-out", csv)
	feed, err := os.Open(csv)
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Close()

	// -sealrows serves the feed through the live+sharded lifecycle: 1200
	// ingested records seal exactly four 300-row shards (the tail is empty
	// right at the drain point), all behind the same wire contract.
	cmd := exec.Command(filepath.Join(binDir, "durserved"),
		"-addr", "127.0.0.1:0", "-live", "feed=2", "-ingest", "feed",
		"-livek", "3", "-livetau", "50", "-sealrows", "300")
	cmd.Stdin = feed
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	addrCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				addrCh <- strings.TrimSpace(line[i+len("listening on "):])
				return
			}
		}
	}()
	var addr string
	select {
	case addr = <-addrCh:
	case <-time.After(10 * time.Second):
		t.Fatal("server did not report its address")
	}

	cl, err := wire.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// Wait for the stdin ingest to drain (1200 records).
	deadline := time.Now().Add(15 * time.Second)
	var got int
	for time.Now().Before(deadline) {
		infos, err := cl.Datasets()
		if err != nil {
			t.Fatal(err)
		}
		if len(infos) != 1 || !infos[0].Live {
			t.Fatalf("live dataset not listed: %+v", infos)
		}
		got = infos[0].Len
		if got == 1200 {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if got != 1200 {
		t.Fatalf("ingest stalled at %d of 1200 records", got)
	}
	if infos, err := cl.Datasets(); err != nil {
		t.Fatal(err)
	} else if infos[0].Shards != 4 {
		t.Fatalf("live-sharded feed reports %d shards, want 4 sealed (300-row seals over 1200 records)", infos[0].Shards)
	}

	// Queries serve the ingested stream.
	recs, st, err := cl.Query(wire.Request{Dataset: "feed", QuerySpec: wire.QuerySpec{K: 3, Tau: 150, Weights: []float64{1, 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 || st.Algorithm == "" {
		t.Fatalf("no live answer over TCP: %d records", len(recs))
	}

	// Appending through the wire keeps working after stdin drained, and the
	// monitor (livek=3) reports a decision per row. The ingest lock clears
	// asynchronously once the feed goroutine exits, so retry briefly.
	infos, err := cl.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cl.AppendRetry("feed",
		[]wire.IngestRow{{Time: infos[0].End + 10, Attrs: []float64{1, 2}}},
		wire.RetryPolicy{MaxAttempts: 1 << 10, BaseDelay: 5 * time.Millisecond,
			MaxDelay: 100 * time.Millisecond, MaxElapsed: 10 * time.Second})
	if err != nil {
		t.Fatalf("append after ingest drain: %v (after %d retries)", err, cl.Retries())
	}
	if resp.Appended != 1 || len(resp.Decisions) != 1 {
		t.Fatalf("wire append response %+v", resp)
	}
}

// startServed launches durserved with args, waits for its listen address,
// and returns the process plus every stderr line emitted before "listening".
func startServed(t *testing.T, args ...string) (*exec.Cmd, string, []string) {
	t.Helper()
	return startServedAt(t, "127.0.0.1:0", args...)
}

// startServedAt is startServed with an explicit bind address — crash-restart
// tests need the reborn process on the address its clients keep dialing.
func startServedAt(t *testing.T, addr string, args ...string) (*exec.Cmd, string, []string) {
	t.Helper()
	cmd := exec.Command(filepath.Join(binDir, "durserved"),
		append([]string{"-addr", addr}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	type startup struct {
		addr  string
		lines []string
	}
	ch := make(chan startup, 1)
	go func() {
		var lines []string
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "listening on "); i >= 0 {
				ch <- startup{strings.TrimSpace(line[i+len("listening on "):]), lines}
				return
			}
			lines = append(lines, line)
		}
	}()
	select {
	case st := <-ch:
		return cmd, st.addr, st.lines
	case <-time.After(10 * time.Second):
		t.Fatal("durserved did not report its address")
		return nil, "", nil
	}
}

// TestServedWALCrashRecovery is the end-to-end durability flow: feed a
// served live dataset over the wire, SIGKILL the server, restart it on the
// same -wal directory and require every acknowledged record back —
// checkpointed shards loaded in bulk, only the unsealed tail replayed.
func TestServedWALCrashRecovery(t *testing.T) {
	walDir := filepath.Join(t.TempDir(), "wal")
	served := []string{"-live", "feed=2", "-livek", "2", "-livetau", "50",
		"-sealrows", "100", "-wal", walDir, "-fsync", "always", "-conntimeout", "30s"}
	retry := wire.RetryPolicy{MaxAttempts: 100, BaseDelay: 10 * time.Millisecond, MaxElapsed: 10 * time.Second}

	cmd, addr, _ := startServed(t, served...)
	cl, err := wire.DialRetry(addr, retry)
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]wire.IngestRow, 250)
	for i := range rows {
		rows[i] = wire.IngestRow{Time: int64(i + 1), Attrs: []float64{float64(i % 37), float64(i % 11)}}
	}
	for off := 0; off < len(rows); off += 50 {
		resp, err := cl.AppendRetry("feed", rows[off:off+50], retry)
		if err != nil || resp.Appended != 50 {
			t.Fatalf("append batch at %d: %d rows, %v", off, resp.Appended, err)
		}
	}
	cl.Close()
	// SIGKILL: no graceful close, no final flush. With -fsync always every
	// acknowledged append must already be on disk.
	cmd.Process.Kill()
	cmd.Wait()

	_, addr2, lines := startServed(t, served...)
	recovered := strings.Join(lines, "\n")
	// 250 rows at -sealrows 100: two checkpointed shards load without WAL
	// replay; only the 50-row unsealed tail replays.
	if !strings.Contains(recovered, "recovered \"feed\": 200 rows from 2 checkpointed shards, 50 replayed") {
		t.Fatalf("recovery line missing or wrong:\n%s", recovered)
	}
	cl2, err := wire.DialRetry(addr2, retry)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	infos, err := cl2.Datasets()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 1 || !infos[0].Live || infos[0].Len != 250 {
		t.Fatalf("recovered dataset info %+v, want live feed with 250 rows", infos)
	}
	// Ingestion resumes at the exact next record, and queries serve the
	// reunited stream.
	resp, err := cl2.AppendRetry("feed", []wire.IngestRow{{Time: 251, Attrs: []float64{5, 5}}}, retry)
	if err != nil || resp.Appended != 1 || len(resp.Decisions) != 1 {
		t.Fatalf("resumed append: %+v, %v", resp, err)
	}
	recs, _, err := cl2.Query(wire.Request{Dataset: "feed", QuerySpec: wire.QuerySpec{K: 2, Tau: 40, Weights: []float64{1, 0.5}}})
	if err != nil || len(recs) == 0 {
		t.Fatalf("query after recovery: %d records, %v", len(recs), err)
	}
}

// TestServedStandingQueryCrashResume is the full fault-tolerant standing
// query flow, end to end through real processes: a Follower subscribes to a
// WAL-backed durserved, the server is SIGKILLed mid-stream and restarted on
// the same WAL directory and address, and the follower's merged verdict
// stream must come out gap-free — strictly contiguous prefixes, zero resets
// (the registration itself survived the crash via the checkpoint manifest),
// with every verdict re-derived bit-identically by querying the recovered
// server across all five strategies.
func TestServedStandingQueryCrashResume(t *testing.T) {
	// Reserve a concrete port so the restarted server binds the exact
	// address the Follower keeps re-dialing.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	walDir := filepath.Join(t.TempDir(), "wal")
	served := []string{"-live", "feed=2", "-livek", "2", "-livetau", "60",
		"-sealrows", "60", "-wal", walDir, "-fsync", "always",
		"-keepcheckpoints", "2", "-subscriptions", "-conntimeout", "30s"}
	retry := wire.RetryPolicy{MaxAttempts: 100, BaseDelay: 10 * time.Millisecond, MaxElapsed: 10 * time.Second}

	cmd, _, _ := startServedAt(t, addr, served...)

	const k, tau = 2, 60
	weights := []float64{1, 0.5}
	f, err := wire.Follow(addr, wire.Request{Dataset: "feed",
		QuerySpec: wire.QuerySpec{K: k, Tau: tau, Weights: weights}},
		wire.RetryPolicy{MaxAttempts: 1 << 16, BaseDelay: 2 * time.Millisecond, MaxDelay: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Commit 100 rows before the crash, 40 after; mirror the stream so the
	// re-derivation below queries exactly what was acknowledged.
	rng := rand.New(rand.NewSource(11))
	var mirror []wire.IngestRow
	nextRows := func(n int) []wire.IngestRow {
		var tm int64
		if len(mirror) > 0 {
			tm = mirror[len(mirror)-1].Time
		}
		out := make([]wire.IngestRow, n)
		for i := range out {
			tm += int64(1 + rng.Intn(3))
			out[i] = wire.IngestRow{Time: tm, Attrs: []float64{rng.Float64() * 50, rng.Float64() * 10}}
		}
		mirror = append(mirror, out...)
		return out
	}
	cl, err := wire.DialRetry(addr, retry)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if resp, err := cl.AppendRetry("feed", nextRows(20), retry); err != nil || resp.Appended != 20 {
			t.Fatalf("append batch %d: %+v, %v", i, resp, err)
		}
	}
	cl.Close()

	// Drain far enough to prove the subscription is established and events
	// are flowing, then SIGKILL mid-stream — no graceful close, no flush.
	var events []wire.Event
	lastPrefix := 0
	collect := func(until int) {
		t.Helper()
		deadline := time.After(60 * time.Second)
		for lastPrefix < until {
			select {
			case ev, ok := <-f.Events():
				if !ok {
					t.Fatalf("follower stream died at prefix %d: %v", lastPrefix, f.Err())
				}
				if ev.Prefix != lastPrefix+1 {
					t.Fatalf("merged stream not gap-free: prefix %d after %d (reconnects=%d resets=%d)",
						ev.Prefix, lastPrefix, f.Reconnects(), f.Resets())
				}
				lastPrefix = ev.Prefix
				events = append(events, ev)
			case <-deadline:
				t.Fatalf("stalled at prefix %d/%d (reconnects=%d): %v",
					lastPrefix, until, f.Reconnects(), f.Err())
			}
		}
	}
	collect(40)
	cmd.Process.Kill()
	cmd.Wait()

	// Restart on the same WAL directory and address. Recovery must bring
	// back both the rows and the standing registration itself.
	_, _, lines := startServedAt(t, addr, served...)
	recovered := strings.Join(lines, "\n")
	if !strings.Contains(recovered, "recovered \"feed\":") {
		t.Fatalf("no recovery line after crash:\n%s", recovered)
	}
	if !strings.Contains(recovered, "restored 1 standing subscription") {
		t.Fatalf("standing registration did not survive the crash:\n%s", recovered)
	}

	cl2, err := wire.DialRetry(addr, retry)
	if err != nil {
		t.Fatal(err)
	}
	defer cl2.Close()
	for i := 0; i < 2; i++ {
		if resp, err := cl2.AppendRetry("feed", nextRows(20), retry); err != nil || resp.Appended != 20 {
			t.Fatalf("post-crash append batch %d: %+v, %v", i, resp, err)
		}
	}
	collect(len(mirror))

	// The crash must have actually interrupted the stream, and recovery must
	// have been a by-key resume of the persisted registration — never a
	// fresh-subscription reset (which would re-deliver history).
	if f.Reconnects() == 0 {
		t.Fatal("follower never reconnected across the server crash")
	}
	if got := f.Resets(); got != 0 {
		t.Fatalf("%d resets: the durable registration was not resumed after restart", got)
	}
	t.Logf("stream stayed contiguous across SIGKILL: %d events, %d reconnects",
		len(events), f.Reconnects())

	// Re-derive every verdict by querying the recovered server at each
	// event's own timestamp. Look-back decisions and closed look-ahead
	// windows are suffix-stable, so the final committed prefix answers for
	// every earlier one — and all five strategies must agree with the push.
	verify := func(id int, evTime int64, durable bool, anchor string) {
		t.Helper()
		if mirror[id].Time != evTime {
			t.Fatalf("record %d: event time %d, stream committed %d", id, evTime, mirror[id].Time)
		}
		for _, alg := range []string{"t-base", "t-hop", "s-base", "s-band", "s-hop"} {
			recs, _, err := cl2.Query(wire.Request{Dataset: "feed", QuerySpec: wire.QuerySpec{
				K: k, Tau: tau, Start: evTime, End: evTime, ExplicitInterval: true,
				Anchor: anchor, Algorithm: alg, Weights: weights,
			}})
			if err != nil {
				t.Fatalf("reference query (%s): %v", alg, err)
			}
			found := false
			for _, r := range recs {
				if r.ID == id {
					found = true
				}
			}
			if found != durable {
				t.Fatalf("record %d (%s): pushed durable=%v, %s re-derives %v",
					id, anchor, durable, alg, found)
			}
		}
	}
	decisions, confirms := 0, 0
	for _, ev := range events {
		if d := ev.Decision; d != nil {
			decisions++
			if d.ID != ev.Prefix-1 {
				t.Fatalf("decision %+v does not describe prefix %d's append", d, ev.Prefix)
			}
			verify(d.ID, d.Time, d.Durable, "look-back")
		}
		for _, c := range ev.Confirms {
			if c.Truncated {
				continue
			}
			confirms++
			verify(c.ID, c.Time, c.Durable, "look-ahead")
		}
	}
	if decisions != len(mirror) {
		t.Fatalf("merged stream carries %d decisions over %d committed rows", decisions, len(mirror))
	}
	if confirms == 0 {
		t.Fatal("no look-ahead confirmations crossed the crash; raise rows or shrink tau")
	}
	t.Logf("re-derived %d decisions and %d confirmations from the recovered server", decisions, confirms)
}

func TestQueryLiveFlagConflicts(t *testing.T) {
	csv := filepath.Join(t.TempDir(), "data.csv")
	run(t, "durgen", "-kind", "ind", "-n", "200", "-d", "2", "-out", csv)
	runExpectError(t, "durquery", "-input", csv, "-live", "-rmq")
}
