// Package durable finds durable top-k records in instant-stamped temporal
// data, implementing "Durable Top-K Instant-Stamped Temporal Records with
// User-Specified Scoring Functions" (Gao, Sintos, Agarwal, Yang, ICDE 2021).
//
// A durable top-k query DurTop(k, I, tau) returns every record arriving in
// the interval I whose score ranks in the top-k among the records of its own
// durability window — the tau-length window ending (or, with the LookAhead
// anchor, starting) at the record's arrival. Scores come from a
// user-specified function over the record's attributes; k, tau, I and the
// scoring parameters are all chosen at query time.
//
// Quick start:
//
//	ds, _ := durable.NewDataset(times, attrs)      // strictly increasing times
//	eng, _ := durable.Open(durable.FromDataset(ds)) // builds the range top-k index
//	res, _ := eng.DurableTopK(durable.Query{
//	        K:      3,
//	        Tau:    3650,                           // e.g. ten years of day ticks
//	        Start:  times[0],
//	        End:    times[len(times)-1],
//	        Scorer: durable.MustLinear(1, 0.5),     // f(p) = x0 + 0.5*x1
//	})
//	for _, r := range res.Records { ... }
//
// Five evaluation strategies are available (see Algorithm); the hop-based
// strategies answer queries in time proportional to the answer size rather
// than the interval length, and the default Auto mode picks a strategy with
// a cost model derived from the paper's analysis (Engine.Explain shows its
// reasoning). Scoring functions can be supplied as Go values (NewLinear,
// NewCosine, …) or compiled at query time from user-written expressions
// (CompileScorer).
package durable

import (
	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/expr"
	"repro/internal/monitor"
	"repro/internal/planner"
	"repro/internal/rmq"
	"repro/internal/score"
	"repro/internal/topk"
)

// Dataset is an immutable time-ordered record collection. See NewDataset.
type Dataset = data.Dataset

// Record is a lightweight view of one dataset record.
type Record = data.Record

// Builder incrementally assembles a Dataset in arrival order.
type Builder = data.Builder

// Scorer maps an attribute vector to a ranking score.
type Scorer = score.Scorer

// Query describes one durable top-k query.
type Query = core.Query

// Result is a query answer with evaluation statistics.
type Result = core.Result

// ResultRecord is one durable record of an answer.
type ResultRecord = core.ResultRecord

// Stats instruments one query evaluation.
type Stats = core.Stats

// Engine answers durable top-k queries over one dataset.
type Engine = core.Engine

// Algorithm selects an evaluation strategy.
type Algorithm = core.Algorithm

// Anchor positions the durability window relative to each record.
type Anchor = core.Anchor

// TopKItem is one record of a plain range top-k answer.
type TopKItem = topk.Item

// Evaluation strategies (paper §III-§IV). Auto defers to the cost-based
// query planner (see Engine.Explain for its reasoning).
const (
	Auto  = core.Auto
	TBase = core.TBase
	THop  = core.THop
	SBase = core.SBase
	SBand = core.SBand
	SHop  = core.SHop
)

// Window anchors. General uses Query.Lead to position the window
// [p.t - (Tau - Lead), p.t + Lead] around each record; Lead 0 and Tau
// reproduce LookBack and LookAhead.
const (
	LookBack  = core.LookBack
	LookAhead = core.LookAhead
	General   = core.General
)

// Options configures engine construction.
type Options = core.Options

// IndexOptions configures the range top-k building block.
type IndexOptions = topk.Options

// NewDataset validates and wraps parallel time/attribute slices; times must
// be strictly increasing.
func NewDataset(times []int64, attrs [][]float64) (*Dataset, error) {
	return data.New(times, attrs)
}

// NewBuilder returns a dataset builder for d-dimensional records.
func NewBuilder(d, capacity int) *Builder { return data.NewBuilder(d, capacity) }

// New builds an engine (and its range top-k index) over ds with default
// options. Thin wrapper over Open(FromDataset(ds)).
func New(ds *Dataset) *Engine { return mustOpen(FromDataset(ds)).(*Engine) }

// NewWithOptions builds an engine with explicit options. Thin wrapper over
// Open(FromDataset(ds), WithOptions(opts)).
func NewWithOptions(ds *Dataset, opts Options) *Engine {
	return mustOpen(FromDataset(ds), WithOptions(opts)).(*Engine)
}

// mustOpen backs the historical constructors that cannot return an error;
// their option combinations are valid by construction.
func mustOpen(options ...OpenOption) Querier {
	q, err := Open(options...)
	if err != nil {
		panic(err)
	}
	return q
}

// ShardedEngine scales durable top-k evaluation horizontally: contiguous
// time-range shards, one independent engine per shard over a zero-copy
// dataset view, queries fanned out on a bounded worker pool and merged with
// exact handling of records whose durability window straddles shard
// boundaries. Results are identical to Engine over the same dataset.
type ShardedEngine = core.ShardedEngine

// ShardOptions configures time sharding: shard count, fan-out worker pool
// size and the partitioning strategy.
type ShardOptions = core.ShardOptions

// ShardStrategy selects the time-domain partitioning rule.
type ShardStrategy = core.ShardStrategy

// ShardInfo describes one time shard of a ShardedEngine.
type ShardInfo = core.ShardInfo

// Partitioning strategies: ByCount balances records per shard (robust to
// bursty arrivals), ByTimeSpan gives every shard an equal slice of the time
// domain (natural for wall-clock routing such as one shard per month).
const (
	ByCount    = core.ByCount
	ByTimeSpan = core.ByTimeSpan
)

// Querier is the query-serving contract shared by Engine and ShardedEngine.
type Querier = core.Querier

// NewSharded partitions ds into time shards and builds one engine per shard;
// see ShardOptions for sizing. It shares the Query/Result contract with New:
// the same queries return the same answers, evaluated shard-parallel. Thin
// wrapper over Open(FromDataset(ds), WithOptions(opts), WithSharding(shards)).
func NewSharded(ds *Dataset, opts Options, shards ShardOptions) *ShardedEngine {
	return mustOpen(FromDataset(ds), WithOptions(opts), WithSharding(shards)).(*ShardedEngine)
}

// ParseShardStrategy converts "count" or "timespan" to a ShardStrategy.
func ParseShardStrategy(s string) (ShardStrategy, error) { return core.ParseShardStrategy(s) }

// LiveEngine answers durable top-k queries over a still-growing dataset: the
// streaming counterpart of Engine. Records arrive one at a time through
// Append (incremental flat-storage appends indexed by a logarithmic-merge
// forest — no full rebuilds on the look-back query path); a query at any
// point returns exactly what a batch Engine built over the records appended
// so far would. Look-ahead and S-Band queries build their auxiliary
// structures (reversed view, skyband ladder) per prefix; for per-arrival
// look-ahead verdicts use the built-in monitor instead, which emits instant
// look-back decisions with each arrival and delayed look-ahead confirmations
// as durability windows close in O(log w) per record.
type LiveEngine = core.LiveEngine

// LiveOptions configures live ingestion: storage capacity hints and the
// optional online durability monitor (fixed k, tau and scorer).
type LiveOptions = core.LiveOptions

// NewLive returns an empty live engine for d-dimensional records. Feed it
// with Append; query it at any time through the same Querier contract as New
// and NewSharded. Thin wrapper over Open(FromStream(d), ...).
func NewLive(d int, opts Options, live LiveOptions) (*LiveEngine, error) {
	q, err := Open(FromStream(d), WithOptions(opts), WithLiveOptions(live))
	if err != nil {
		return nil, err
	}
	return q.(*LiveEngine), nil
}

// LiveShardedEngine composes live ingestion with time sharding: appends
// route to a single mutable tail shard, and when the tail reaches a seal
// threshold (row count or time span) it is frozen into an immutable static
// shard and a fresh tail opens — the LSM-style lifecycle that bounds both
// rebuild work and query fan-out on an unbounded stream. Queries fan out
// over the sealed shards plus the tail with the exact cross-shard merge and
// pruning of ShardedEngine; answers are bit-identical to a batch Engine over
// the same prefix.
type LiveShardedEngine = core.LiveShardedEngine

// LiveShardOptions configures the seal/freeze lifecycle: the tail's seal
// thresholds (rows and/or time span), the query fan-out pool, and straddler
// handling.
type LiveShardOptions = core.LiveShardOptions

// DefaultSealRows is the tail seal threshold used when LiveShardOptions sets
// neither a row nor a span rule.
const DefaultSealRows = core.DefaultSealRows

// NewLiveSharded returns an empty live+sharded engine for d-dimensional
// records. Feed it with Append (seals happen automatically; Seal forces
// one); query it at any time through the same Querier contract as New,
// NewSharded and NewLive. live configures capacity hints and the optional
// online monitor, which spans seals.
// Thin wrapper over Open(FromStream(d), ..., WithLiveSharding(shards)).
func NewLiveSharded(d int, opts Options, live LiveOptions, shards LiveShardOptions) (*LiveShardedEngine, error) {
	q, err := Open(FromStream(d), WithOptions(opts), WithLiveOptions(live), WithLiveSharding(shards))
	if err != nil {
		return nil, err
	}
	return q.(*LiveShardedEngine), nil
}

// NewLinear returns the preference scorer f(p) = sum w_i * x_i.
func NewLinear(weights []float64) (Scorer, error) { return score.NewLinear(weights) }

// MustLinear is NewLinear that panics on invalid weights.
func MustLinear(weights ...float64) Scorer { return score.MustLinear(weights...) }

// NewCosine returns the cosine-similarity preference scorer.
func NewCosine(weights []float64) (Scorer, error) { return score.NewCosine(weights) }

// Log1pCombo returns the monotone preference scorer sum w_i * log(1+x_i).
func Log1pCombo(weights []float64) (Scorer, error) { return score.Log1pCombo(weights) }

// NewSingleAttr ranks by one attribute of d-dimensional records.
func NewSingleAttr(dim, dims int) (Scorer, error) { return score.NewSingle(dim, dims) }

// ParseAlgorithm converts names like "t-hop" to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// Algorithms lists the five concrete strategies.
func Algorithms() []Algorithm { return core.Algorithms() }

// BruteForce answers DurTop directly from the definition in O(n*w) time; the
// reference oracle.
func BruteForce(ds *Dataset, s Scorer, k int, tau, start, end int64, anchor Anchor) []int {
	return core.BruteForce(ds, s, k, tau, start, end, anchor)
}

// BruteForceAnchored is BruteForce for mid-anchored windows
// [p.t - (tau - lead), p.t + lead] (the General anchor).
func BruteForceAnchored(ds *Dataset, s Scorer, k int, tau, lead, start, end int64) []int {
	return core.BruteForceAnchored(ds, s, k, tau, lead, start, end)
}

// ScoringExpr is a scoring function compiled from a user-written expression
// such as "0.6*points + 2*log1p(assists)". It implements Scorer and the
// optional pruning capabilities (box upper bounds via interval arithmetic,
// automatic monotonicity detection for S-Band eligibility). See package
// internal/expr for the grammar.
type ScoringExpr = expr.Expr

// ExprOptions configures scoring-expression compilation: the expected
// dimensionality and optional attribute names usable as identifiers.
type ExprOptions = expr.Options

// CompileScorer compiles a scoring expression into a Scorer. dims fixes the
// expected record dimensionality (0 infers it); names optionally exposes
// attribute names as identifiers alongside the positional x0, x1, ….
func CompileScorer(src string, dims int, names []string) (*ScoringExpr, error) {
	return expr.Compile(src, expr.Options{Dims: dims, Names: names})
}

// Plan is the query planner's cost assessment of one query: the chosen
// strategy, the Lemma 4 / Lemma 5 size estimates, and per-strategy cost
// estimates. Produced by Engine.Explain; Auto queries follow Plan.Chosen.
type Plan = planner.Plan

// Monitor decides durability online over a live stream: instant look-back
// decisions at each arrival plus, with MonitorOptions.TrackAhead, delayed
// look-ahead confirmations once each record's forward window closes. Both
// cost O(log w) amortized for a trailing window of w records.
type Monitor = monitor.Monitor

// StreamDecision is the instant look-back verdict for one arrival.
type StreamDecision = monitor.Decision

// StreamConfirmation is the delayed look-ahead verdict for a past arrival.
type StreamConfirmation = monitor.Confirmation

// MonitorOptions configures stream monitoring.
type MonitorOptions = monitor.Options

// NewMonitor returns a streaming durable top-k monitor for tau-length
// windows under the scoring function s.
func NewMonitor(k int, tau int64, s Scorer, opts MonitorOptions) (*Monitor, error) {
	return monitor.New(k, tau, s, opts)
}

// Block is the pluggable range top-k building block of the paper's §II; the
// default is the tree index, and WithRMQBlock selects the sparse-table
// alternative for fixed-scorer workloads.
type Block = core.Block

// DurabilityRecord reports how long one record stayed in the top-k; see
// Engine.DurabilityProfile and Engine.MostDurable.
type DurabilityRecord = core.DurabilityRecord

// WithRMQBlock returns the options with the building block replaced by the
// sparse-table RMQ structure: O(n log n) per distinct scorer instance, then
// O(k log k) per range top-k probe. Best when many durable queries reuse the
// same Scorer value with varying k, tau and I.
func WithRMQBlock(opts Options) Options {
	opts.NewBlock = func(ds *data.Dataset) core.Block { return rmq.NewBlock(ds) }
	return opts
}
