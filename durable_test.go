package durable_test

import (
	"math/rand"
	"reflect"
	"testing"

	durable "repro"
)

func buildDataset(t testing.TB, n int) *durable.Dataset {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	times := make([]int64, n)
	attrs := make([][]float64, n)
	tt := int64(0)
	for i := 0; i < n; i++ {
		tt += int64(1 + rng.Intn(3))
		times[i] = tt
		attrs[i] = []float64{rng.Float64() * 10, float64(rng.Intn(5))}
	}
	ds, err := durable.NewDataset(times, attrs)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestPublicAPIQuickstartFlow(t *testing.T) {
	ds := buildDataset(t, 500)
	eng := durable.New(ds)
	lo, hi := ds.Span()
	q := durable.Query{
		K:             2,
		Tau:           40,
		Start:         lo,
		End:           hi,
		Scorer:        durable.MustLinear(1, 0.5),
		WithDurations: true,
	}
	res, err := eng.DurableTopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("expected durable records")
	}
	want := durable.BruteForce(ds, q.Scorer, q.K, q.Tau, q.Start, q.End, durable.LookBack)
	if !reflect.DeepEqual(res.IDs(), want) {
		t.Fatalf("public API answer %v want %v", res.IDs(), want)
	}
	for _, r := range res.Records {
		if r.MaxDuration < 0 {
			t.Fatal("WithDurations must fill MaxDuration")
		}
	}
}

func TestPublicAPIAlgorithmsAgree(t *testing.T) {
	ds := buildDataset(t, 800)
	eng := durable.NewWithOptions(ds, durable.Options{})
	lo, hi := ds.Span()
	scorer, err := durable.Log1pCombo([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	var base []int
	for i, alg := range durable.Algorithms() {
		res, err := eng.DurableTopK(durable.Query{
			K: 3, Tau: 60, Start: lo, End: hi, Scorer: scorer, Algorithm: alg,
		})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if i == 0 {
			base = res.IDs()
			continue
		}
		if !reflect.DeepEqual(res.IDs(), base) {
			t.Fatalf("%v disagrees: %v vs %v", alg, res.IDs(), base)
		}
	}
}

func TestPublicAPIBuilder(t *testing.T) {
	b := durable.NewBuilder(1, 16)
	for i := 0; i < 16; i++ {
		if err := b.Append(int64(i+1), []float64{float64(i % 4)}); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	eng := durable.New(ds)
	scorer, err := durable.NewSingleAttr(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.DurableTopK(durable.Query{K: 1, Tau: 4, Start: 1, End: 16, Scorer: scorer})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no results")
	}
}

func TestPublicAPITopK(t *testing.T) {
	ds := buildDataset(t, 200)
	eng := durable.New(ds)
	lo, hi := ds.Span()
	items := eng.TopK(durable.MustLinear(1, 1), 5, lo, hi)
	if len(items) != 5 {
		t.Fatalf("TopK returned %d items", len(items))
	}
	for i := 1; i < len(items); i++ {
		if items[i].Score > items[i-1].Score {
			t.Fatal("TopK must be score-descending")
		}
	}
}

func TestPublicAPIParseAlgorithm(t *testing.T) {
	alg, err := durable.ParseAlgorithm("s-hop")
	if err != nil || alg != durable.SHop {
		t.Fatalf("ParseAlgorithm: %v %v", alg, err)
	}
	if _, err := durable.ParseAlgorithm("x"); err == nil {
		t.Fatal("bad name must fail")
	}
}

func TestPublicAPICosine(t *testing.T) {
	ds := buildDataset(t, 300)
	eng := durable.New(ds)
	lo, hi := ds.Span()
	cos, err := durable.NewCosine([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.DurableTopK(durable.Query{K: 2, Tau: 30, Start: lo, End: hi, Scorer: cos})
	if err != nil {
		t.Fatal(err)
	}
	want := durable.BruteForce(ds, cos, 2, 30, lo, hi, durable.LookBack)
	if !reflect.DeepEqual(res.IDs(), want) {
		t.Fatalf("cosine answer %v want %v", res.IDs(), want)
	}
	// S-Band must refuse the non-monotone scorer.
	if _, err := eng.DurableTopK(durable.Query{
		K: 2, Tau: 30, Start: lo, End: hi, Scorer: cos, Algorithm: durable.SBand,
	}); err == nil {
		t.Fatal("s-band with cosine must fail")
	}
}

func TestPublicAPIErrorPropagation(t *testing.T) {
	if _, err := durable.NewDataset(nil, nil); err == nil {
		t.Fatal("empty dataset must fail")
	}
	if _, err := durable.NewLinear(nil); err == nil {
		t.Fatal("empty weights must fail")
	}
	ds := buildDataset(t, 10)
	eng := durable.New(ds)
	if _, err := eng.DurableTopK(durable.Query{K: 0, Scorer: durable.MustLinear(1, 1)}); err == nil {
		t.Fatal("bad query must fail")
	}
}

func TestPublicAPIMaxDuration(t *testing.T) {
	ds := buildDataset(t, 400)
	eng := durable.New(ds)
	s := durable.MustLinear(1, 1)
	dur, full := eng.MaxDuration(200, 3, s, durable.LookBack)
	if dur < 0 {
		t.Fatalf("MaxDuration=%d", dur)
	}
	_ = full
}

func TestPublicAPIRMQBlock(t *testing.T) {
	ds := buildDataset(t, 600)
	scorer, err := durable.NewSingleAttr(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	eng := durable.NewWithOptions(ds, durable.WithRMQBlock(durable.Options{}))
	lo, hi := ds.Span()
	res, err := eng.DurableTopK(durable.Query{K: 3, Tau: 40, Start: lo, End: hi, Scorer: scorer})
	if err != nil {
		t.Fatal(err)
	}
	want := durable.BruteForce(ds, scorer, 3, 40, lo, hi, durable.LookBack)
	if !reflect.DeepEqual(res.IDs(), want) {
		t.Fatalf("RMQ-backed engine answer %v want %v", res.IDs(), want)
	}
}

func TestPublicAPIMostDurable(t *testing.T) {
	ds := buildDataset(t, 500)
	eng := durable.New(ds)
	s := durable.MustLinear(1, 1)
	top, err := eng.MostDurable(3, s, durable.LookBack, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 5 {
		t.Fatalf("MostDurable returned %d", len(top))
	}
	profile, err := eng.DurabilityProfile(3, s, durable.LookBack)
	if err != nil {
		t.Fatal(err)
	}
	if len(profile) != ds.Len() {
		t.Fatalf("profile covers %d of %d records", len(profile), ds.Len())
	}
}

func TestPublicAPIParallel(t *testing.T) {
	ds := buildDataset(t, 800)
	eng := durable.New(ds)
	lo, hi := ds.Span()
	q := durable.Query{K: 2, Tau: 50, Start: lo, End: hi, Scorer: durable.MustLinear(1, 2)}
	seq, err := eng.DurableTopK(q)
	if err != nil {
		t.Fatal(err)
	}
	par, err := eng.DurableTopKParallel(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par.IDs(), seq.IDs()) {
		t.Fatal("parallel public API disagrees with sequential")
	}
}

func TestPublicAPICompileScorer(t *testing.T) {
	ds := buildDataset(t, 400)
	eng := durable.New(ds)
	lo, hi := ds.Span()

	compiled, err := durable.CompileScorer("x0 + 0.5*x1", 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !compiled.IsMonotone() {
		t.Fatal("non-negative linear expression should be monotone")
	}
	q := durable.Query{K: 2, Tau: 40, Start: lo, End: hi, Scorer: compiled}
	res, err := eng.DurableTopK(q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.DurableTopK(durable.Query{
		K: 2, Tau: 40, Start: lo, End: hi, Scorer: durable.MustLinear(1, 0.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.IDs(), want.IDs()) {
		t.Fatalf("compiled scorer answer %v, native %v", res.IDs(), want.IDs())
	}

	// Named attributes.
	named, err := durable.CompileScorer("2*power + bonus", 2, []string{"power", "bonus"})
	if err != nil {
		t.Fatal(err)
	}
	if got := named.Score([]float64{3, 4}); got != 10 {
		t.Fatalf("named expression = %v, want 10", got)
	}

	// Compile errors surface.
	if _, err := durable.CompileScorer("(", 2, nil); err == nil {
		t.Fatal("expected compile error")
	}
}

func TestPublicAPIGeneralAnchor(t *testing.T) {
	ds := buildDataset(t, 400)
	eng := durable.New(ds)
	lo, hi := ds.Span()
	s := durable.MustLinear(1, 0)
	const tau, lead = 60, 25

	res, err := eng.DurableTopK(durable.Query{
		K: 2, Tau: tau, Lead: lead, Start: lo, End: hi,
		Scorer: s, Anchor: durable.General,
	})
	if err != nil {
		t.Fatal(err)
	}
	want := durable.BruteForceAnchored(ds, s, 2, tau, lead, lo, hi)
	if !reflect.DeepEqual(res.IDs(), want) {
		t.Fatalf("general anchor answer %v, oracle %v", res.IDs(), want)
	}
}

func TestPublicAPIExplain(t *testing.T) {
	ds := buildDataset(t, 400)
	eng := durable.New(ds)
	lo, hi := ds.Span()
	plan, err := eng.Explain(durable.Query{
		K: 2, Tau: 40, Start: lo, End: hi, Scorer: durable.MustLinear(1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Estimates) != 5 || plan.ExpectedAnswer <= 0 {
		t.Fatalf("unexpected plan: %+v", plan)
	}
}

func TestPublicAPIMonitor(t *testing.T) {
	ds := buildDataset(t, 300)
	s := durable.MustLinear(1, 0)
	mon, err := durable.NewMonitor(2, 50, s, durable.MonitorOptions{TrackAhead: true})
	if err != nil {
		t.Fatal(err)
	}
	var live []int
	var confirmed []int
	for i := 0; i < ds.Len(); i++ {
		rec := ds.Record(i)
		dec, confirms, err := mon.Observe(rec.Time, rec.Attrs)
		if err != nil {
			t.Fatal(err)
		}
		if dec.Durable {
			live = append(live, i)
		}
		for _, c := range confirms {
			if c.Durable {
				confirmed = append(confirmed, c.ID)
			}
		}
	}
	for _, c := range mon.Finish() {
		if c.Durable {
			confirmed = append(confirmed, c.ID)
		}
	}
	lo, hi := ds.Span()
	back := durable.BruteForce(ds, s, 2, 50, lo, hi, durable.LookBack)
	ahead := durable.BruteForce(ds, s, 2, 50, lo, hi, durable.LookAhead)
	if !reflect.DeepEqual(live, back) {
		t.Fatalf("monitor look-back %v, oracle %v", live, back)
	}
	if !reflect.DeepEqual(confirmed, ahead) {
		t.Fatalf("monitor look-ahead %v, oracle %v", confirmed, ahead)
	}
}

func TestPublicAPIParallelAutoConsistent(t *testing.T) {
	ds := buildDataset(t, 800)
	eng := durable.New(ds)
	lo, hi := ds.Span()
	q := durable.Query{K: 2, Tau: 60, Start: lo, End: hi, Scorer: durable.MustLinear(1, 0.5)}
	seq, err := eng.DurableTopK(q)
	if err != nil {
		t.Fatal(err)
	}
	par, err := eng.DurableTopKParallel(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(par.IDs(), seq.IDs()) {
		t.Fatalf("parallel Auto answer differs: %v vs %v", par.IDs(), seq.IDs())
	}
	// Auto resolves once for the whole parallel run, so the reported
	// algorithm is a single concrete strategy.
	if par.Stats.Algorithm == durable.Auto {
		t.Fatal("parallel run reported Auto instead of the resolved strategy")
	}
	if par.Stats.Algorithm != seq.Stats.Algorithm {
		t.Fatalf("parallel resolved %v but sequential resolved %v",
			par.Stats.Algorithm, seq.Stats.Algorithm)
	}
}

func TestPublicAPISharded(t *testing.T) {
	ds := buildDataset(t, 900)
	eng := durable.New(ds)
	scorer := durable.MustLinear(1, 0.5)
	lo, hi := ds.Span()
	q := durable.Query{K: 3, Tau: 120, Start: lo, End: hi, Scorer: scorer}
	want, err := eng.DurableTopK(q)
	if err != nil {
		t.Fatal(err)
	}
	for _, strategy := range []durable.ShardStrategy{durable.ByCount, durable.ByTimeSpan} {
		se := durable.NewSharded(ds, durable.Options{}, durable.ShardOptions{
			Shards: 6, Workers: 3, Strategy: strategy,
		})
		if se.NumShards() != 6 {
			t.Fatalf("%v: %d shards, want 6", strategy, se.NumShards())
		}
		res, err := se.DurableTopK(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.IDs(), want.IDs()) {
			t.Fatalf("%v: sharded answer differs:\n got %v\nwant %v", strategy, res.IDs(), want.IDs())
		}
		// The sharded engine serves the same auxiliary surface.
		if _, err := se.Explain(q); err != nil {
			t.Fatal(err)
		}
		top, err := se.MostDurable(3, scorer, durable.LookBack, 4)
		if err != nil || len(top) != 4 {
			t.Fatalf("sharded MostDurable: %v (%d records)", err, len(top))
		}
	}
	// Both engine flavors satisfy the shared Querier contract.
	for _, qr := range []durable.Querier{eng, durable.NewSharded(ds, durable.Options{}, durable.ShardOptions{Shards: 2})} {
		if qr.Dataset().Len() != ds.Len() {
			t.Fatal("Querier dataset mismatch")
		}
	}
}

func TestPublicAPIParseShardStrategy(t *testing.T) {
	for name, want := range map[string]durable.ShardStrategy{"count": durable.ByCount, "timespan": durable.ByTimeSpan} {
		got, err := durable.ParseShardStrategy(name)
		if err != nil || got != want {
			t.Fatalf("ParseShardStrategy(%q) = %v, %v", name, got, err)
		}
		if got.String() != name {
			t.Fatalf("round trip %q -> %q", name, got)
		}
	}
	if _, err := durable.ParseShardStrategy("hash"); err == nil {
		t.Fatal("bogus strategy accepted")
	}
}
