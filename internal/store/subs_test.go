package store

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/score"
	"repro/internal/sub"
	"repro/internal/wal"
	"repro/internal/wal/faultfs"
)

// durableSpec is the standing query every subscription test registers: both
// verdict kinds, and a Source so it persists through checkpoints.
func durableSpec() sub.Spec {
	return sub.Spec{
		Scorer:    score.MustLinear(1, 0.5),
		K:         2,
		Tau:       40,
		Decisions: true,
		Confirms:  true,
		Source:    &sub.Source{Weights: []float64{1, 0.5}},
	}
}

// referenceEvents derives the uninterrupted event stream a subscriber with
// spec would have seen over rows — the oracle every durable-subscription
// test compares against.
func referenceEvents(t *testing.T, spec sub.Spec, rows []Row) []sub.Event {
	t.Helper()
	reg := sub.NewRegistry(0)
	var want []sub.Event
	if _, err := reg.Subscribe(spec, func(ev sub.Event) { want = append(want, ev) }); err != nil {
		t.Fatalf("reference Subscribe: %v", err)
	}
	for _, r := range rows {
		if err := reg.Observe(r.T, r.Attrs); err != nil {
			t.Fatalf("reference Observe: %v", err)
		}
	}
	return want
}

// assertEventStream requires got to be the reference stream exactly:
// bit-identical events with contiguous sequence numbers from 1.
func assertEventStream(t *testing.T, got, want []sub.Event) {
	t.Helper()
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d; stream is not contiguous", i, ev.Seq)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("event %d diverged:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestStoreDurableSubscriptionRoundTrip registers a durable subscription,
// restarts the store mid-stream, resumes, and requires the merged event
// stream to be bit-identical to an uninterrupted subscriber's.
func TestStoreDurableSubscriptionRoundTrip(t *testing.T) {
	fs := wal.NewMemFS()
	st, err := Open("db", 2, testOpts(fs))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	spec := durableSpec()
	var got []sub.Event
	id, err := st.Registry().Subscribe(spec, func(ev sub.Event) { got = append(got, ev) })
	if err != nil {
		t.Fatalf("Subscribe: %v", err)
	}
	// An ephemeral subscription (no Source) must not survive the restart.
	ephemeral := spec
	ephemeral.Source = nil
	if _, err := st.Registry().Subscribe(ephemeral, func(sub.Event) {}); err != nil {
		t.Fatalf("ephemeral Subscribe: %v", err)
	}
	if err := st.SyncSubscriptions(); err != nil {
		t.Fatalf("SyncSubscriptions: %v", err)
	}

	rng := rand.New(rand.NewSource(11))
	rows := genRows(rng, 300, 2)
	for i, r := range rows[:200] {
		if _, _, err := st.Append(r.T, r.Attrs); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	st.WaitCheckpoints()
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2, err := Open("db", 2, testOpts(fs))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer st2.Close()
	if n := st2.Registry().Len(); n != 1 {
		t.Fatalf("recovered registry holds %d subscriptions, want 1 (durable only)", n)
	}
	// Resume from the last event the consumer saw; nothing was lost in
	// flight here, so the resume replay must deliver no duplicates.
	from := 0
	if len(got) > 0 {
		from = got[len(got)-1].Prefix
	}
	before := len(got)
	base, err := st2.Registry().Resume(id, from, func(ev sub.Event) { got = append(got, ev) }, st2.RowSource())
	if err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if base != 0 {
		t.Fatalf("Resume base = %d, want 0", base)
	}
	if len(got) != before {
		t.Fatalf("resume at the acked prefix replayed %d duplicate events", len(got)-before)
	}
	for i, r := range rows[200:] {
		if _, _, err := st2.Append(r.T, r.Attrs); err != nil {
			t.Fatalf("resumed Append %d: %v", i, err)
		}
	}
	assertEventStream(t, got, referenceEvents(t, spec, rows))
}

// TestStoreKeepCheckpointsRetention checks the -keepcheckpoints contract:
// backup generations are bounded, the newest backup matches MANIFEST byte
// for byte, orphaned page files are swept, and a corrupted MANIFEST
// recovers losslessly from the newest retained backup.
func TestStoreKeepCheckpointsRetention(t *testing.T) {
	fs := wal.NewMemFS()
	opts := testOpts(fs)
	opts.KeepCheckpoints = 3
	st, err := Open("db", 1, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rng := rand.New(rand.NewSource(12))
	rows := genRows(rng, 500, 1)
	for i, r := range rows {
		if _, _, err := st.Append(r.T, r.Attrs); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	st.WaitCheckpoints()
	if st.Checkpoints() < 4 {
		t.Fatalf("only %d checkpoints; the retention sweep needs more generations than it keeps", st.Checkpoints())
	}
	// Plant an orphan pages file (a crash leftover shape) and force one more
	// publish cycle to sweep it.
	orphan := filepath.Join("db", shardFileName(9000, 9064, 0))
	if f, err := fs.Create(orphan); err == nil {
		f.Close()
	}
	for i, r := range genRowsAfter(rng, rows[len(rows)-1].T, 64, 1) {
		if _, _, err := st.Append(r.T, r.Attrs); err != nil {
			t.Fatalf("orphan-sweep Append %d: %v", i, err)
		}
	}
	st.WaitCheckpoints()
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	names, err := fs.ReadDir("db")
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	var gens []string
	for _, name := range names {
		if _, ok := parseManifestGen(name); ok {
			gens = append(gens, name)
		}
		if name == filepath.Base(orphan) {
			t.Fatalf("orphan pages file %s survived the retention sweep", name)
		}
		if strings.HasSuffix(name, ".tmp") {
			t.Fatalf("stale temp file %s survived the retention sweep", name)
		}
	}
	if len(gens) == 0 || len(gens) > opts.KeepCheckpoints {
		t.Fatalf("retained %d manifest generations %v, want 1..%d", len(gens), gens, opts.KeepCheckpoints)
	}
	newest := gens[len(gens)-1] // ReadDir is lexical; gen names are zero-padded
	if !reflect.DeepEqual(readFile(t, fs, filepath.Join("db", newest)), readFile(t, fs, filepath.Join("db", manifestName))) {
		t.Fatalf("newest backup %s is not byte-identical to MANIFEST", newest)
	}

	// Corrupt MANIFEST; recovery must fall back to the newest backup and
	// reconstruct the identical store.
	f, err := fs.Create(filepath.Join("db", manifestName))
	if err != nil {
		t.Fatalf("corrupting manifest: %v", err)
	}
	f.WriteAt([]byte("{torn"), 0)
	f.Close()
	rec, err := Open("db", 1, opts)
	if err != nil {
		t.Fatalf("recovery with corrupt MANIFEST: %v", err)
	}
	defer rec.Close()
	if rec.Len() != 564 {
		t.Fatalf("recovered %d rows, want 564", rec.Len())
	}
	if rec.Stats().RestoredRows == 0 {
		t.Fatal("fallback recovery loaded no checkpointed shards")
	}
}

func readFile(t *testing.T, fs wal.FS, path string) []byte {
	t.Helper()
	size, err := fs.Size(path)
	if err != nil {
		t.Fatalf("Size %s: %v", path, err)
	}
	f, err := fs.Open(path)
	if err != nil {
		t.Fatalf("Open %s: %v", path, err)
	}
	defer f.Close()
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil {
			t.Fatalf("ReadAt %s: %v", path, err)
		}
	}
	return buf
}

// TestCrashRecoveryDurableSubscriptions kills the filesystem at swept write
// offsets while a durable subscription is live, recovers, and requires that
//
//  1. an acknowledged registration (SyncSubscriptions returned nil) is
//     always restored,
//  2. every event delivered before the crash describes a row that survived
//     it (observe-after-commit),
//  3. resuming from the last delivered prefix and continuing ingestion
//     yields a merged stream bit-identical to an uninterrupted subscriber
//     over the recovered prefix plus the new rows — no gaps, no duplicates.
func TestCrashRecoveryDurableSubscriptions(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const n, d = 300, 2
	rows := genRows(rng, n, d)

	golden := faultfs.New(wal.NewMemFS())
	st, err := Open("db", d, crashOpts(golden))
	if err != nil {
		t.Fatalf("golden Open: %v", err)
	}
	if _, err := st.Registry().Subscribe(durableSpec(), func(sub.Event) {}); err != nil {
		t.Fatalf("golden Subscribe: %v", err)
	}
	if err := st.SyncSubscriptions(); err != nil {
		t.Fatalf("golden SyncSubscriptions: %v", err)
	}
	if acked := feedAll(st, rows); acked != n {
		t.Fatalf("golden run acked %d of %d", acked, n)
	}
	st.WaitCheckpoints()
	if err := st.Close(); err != nil {
		t.Fatalf("golden Close: %v", err)
	}
	total := golden.BytesWritten()

	budgets := map[int64]bool{0: true, 1: true, total - 1: true}
	for i := int64(1); i <= 16; i++ {
		budgets[total*i/17] = true
	}
	var cum int64
	for i, op := range golden.Ops() {
		if op.Op != "write" {
			continue
		}
		cum += op.Len
		if i%11 == 0 {
			budgets[cum-1] = true
			budgets[cum] = true
		}
	}
	for budget := range budgets {
		if budget < 0 || budget > total {
			continue
		}
		runSubCrashTrial(t, rows, budget)
	}
}

func runSubCrashTrial(t *testing.T, rows []Row, budget int64) {
	t.Helper()
	d := len(rows[0].Attrs)
	inner := wal.NewMemFS()
	ffs := faultfs.New(inner)
	ffs.SetCrashBudget(budget)
	spec := durableSpec()

	st, err := Open("db", d, crashOpts(ffs))
	if err != nil {
		return // crashed inside Open; nothing acknowledged
	}
	var delivered []sub.Event
	id, err := st.Registry().Subscribe(spec, func(ev sub.Event) { delivered = append(delivered, ev) })
	if err != nil {
		st.Close()
		return
	}
	subAcked := st.SyncSubscriptions() == nil
	feedAll(st, rows)
	st.Close()

	rec, err := Open("db", d, crashOpts(inner))
	if err != nil {
		t.Fatalf("budget %d: recovery failed: %v", budget, err)
	}
	defer rec.Close()
	m := rec.Len()
	if subAcked && rec.Registry().Len() != 1 {
		t.Fatalf("budget %d: acknowledged subscription lost in recovery", budget)
	}
	from := 0
	if len(delivered) > 0 {
		from = delivered[len(delivered)-1].Prefix
	}
	if from > m {
		t.Fatalf("budget %d: delivered an event for prefix %d but only %d rows survived", budget, from, m)
	}
	if rec.Registry().Len() == 0 {
		return // registration never became durable before the crash; fine
	}
	if _, err := rec.Registry().Resume(id, from, func(ev sub.Event) { delivered = append(delivered, ev) }, rec.RowSource()); err != nil {
		t.Fatalf("budget %d: Resume: %v", budget, err)
	}
	for _, r := range rows[m:] {
		if _, _, err := rec.Append(r.T, r.Attrs); err != nil {
			t.Fatalf("budget %d: post-recovery Append: %v", budget, err)
		}
	}
	assertEventStream(t, delivered, referenceEvents(t, spec, rows))
}
