package store

import (
	"errors"
	"fmt"

	"repro/internal/expr"
	"repro/internal/score"
	"repro/internal/sub"
	"repro/internal/wal"
)

// This file makes standing-query subscriptions durable: the store owns its
// dataset's sub.Registry, persists every registration that carries a scorer
// Source through the checkpoint manifest, and rebuilds the registrations —
// monitors, sequence numbers and all — on Open by replaying the recovered
// row stream. Ordering is the same discipline as rows: a subscriber event
// is emitted only after the row it describes is WAL-committed, and a
// subscribe acknowledgment is withheld (SyncSubscriptions) until the
// manifest naming the registration is durable.

// subEntry is one persisted registration in the manifest.
type subEntry struct {
	ID        uint64    `json:"id"`
	K         int       `json:"k"`
	Tau       int64     `json:"tau"`
	Bounded   bool      `json:"bounded,omitempty"`
	Start     int64     `json:"start,omitempty"`
	End       int64     `json:"end,omitempty"`
	Decisions bool      `json:"decisions,omitempty"`
	Confirms  bool      `json:"confirms,omitempty"`
	Base      int       `json:"base"`
	Acked     int       `json:"acked"`
	Weights   []float64 `json:"weights,omitempty"`
	Expr      string    `json:"expr,omitempty"`
	Names     []string  `json:"names,omitempty"`
}

// subEntriesFrom renders registry states into manifest form.
func subEntriesFrom(states []sub.State) []subEntry {
	out := make([]subEntry, 0, len(states))
	for _, st := range states {
		e := subEntry{
			ID: st.ID, K: st.Spec.K, Tau: st.Spec.Tau,
			Bounded: st.Spec.Bounded, Start: st.Spec.Start, End: st.Spec.End,
			Decisions: st.Spec.Decisions, Confirms: st.Spec.Confirms,
			Base: st.Base, Acked: st.Acked,
		}
		if src := st.Spec.Source; src != nil {
			e.Weights, e.Expr, e.Names = src.Weights, src.Expr, src.Names
		}
		out = append(out, e)
	}
	return out
}

// toState recompiles a persisted registration into a restorable state.
func (e subEntry) toState(dims int) (sub.State, error) {
	src := &sub.Source{Weights: e.Weights, Expr: e.Expr, Names: e.Names}
	var scorer score.Scorer
	var err error
	switch {
	case len(e.Weights) > 0 && e.Expr != "":
		return sub.State{}, errors.New("both weights and expr recorded")
	case len(e.Weights) > 0:
		scorer, err = score.NewLinear(e.Weights)
	case e.Expr != "":
		scorer, err = expr.Compile(e.Expr, expr.Options{Dims: dims, Names: e.Names})
	default:
		return sub.State{}, errors.New("no scorer source recorded")
	}
	if err != nil {
		return sub.State{}, err
	}
	return sub.State{
		ID: e.ID,
		Spec: sub.Spec{
			Scorer: scorer, K: e.K, Tau: e.Tau,
			Bounded: e.Bounded, Start: e.Start, End: e.End,
			Decisions: e.Decisions, Confirms: e.Confirms,
			Source: src,
		},
		Base:  e.Base,
		Acked: e.Acked,
	}, nil
}

// Registry returns the store's standing-query registry. Registrations whose
// Spec carries a Source are persisted through checkpoints and survive
// restarts (restored detached; reattach with Resume). The store observes
// every committed append into the registry itself — callers must not.
func (s *Store) Registry() *sub.Registry { return s.reg }

// RowSource replays committed rows from the engine's append-stable dataset
// view; the registry uses it to re-derive verdict streams. Positions are
// absolute stream rows (subscription state survives restarts, so positions
// must not shift when retention retires history); a range reaching below the
// store's base asks for rows retired before this open, which no longer
// exist — the caller's subscription is then dropped rather than fed a gap.
func (s *Store) RowSource() sub.RowSource {
	return func(lo, hi int, observe func(t int64, attrs []float64) error) error {
		ds := s.eng.Dataset()
		if lo < s.base {
			return fmt.Errorf("store: row source asked for [%d,%d) but rows below %d were retired", lo, hi, s.base)
		}
		if hi-s.base > ds.Len() {
			return fmt.Errorf("store: row source asked for [%d,%d) of %d committed rows", lo, hi, s.base+ds.Len())
		}
		for i := lo - s.base; i < hi-s.base; i++ {
			if err := observe(ds.Time(i), ds.Attrs(i)); err != nil {
				return err
			}
		}
		return nil
	}
}

// restoreSubs rebuilds the manifest's registrations into the freshly opened
// registry. Entries that no longer fit — a scorer that fails to recompile,
// or a base past the recovered prefix (possible under relaxed fsync
// policies, where acknowledged rows can be lost) — are skipped with a log
// line rather than failing recovery: the rows matter more than one
// subscription.
func (s *Store) restoreSubs() {
	if len(s.man.Subs) == 0 && s.man.NextSub == 0 {
		return
	}
	rows := s.RowSource()
	restored := 0
	for _, e := range s.man.Subs {
		st, err := e.toState(s.dims)
		if err != nil {
			s.logf("store: dropping persisted subscription %d: %v", e.ID, err)
			continue
		}
		if err := s.reg.RestoreSub(st, rows); err != nil {
			s.logf("store: dropping persisted subscription %d: %v", e.ID, err)
			continue
		}
		restored++
	}
	s.reg.RestoreNextID(s.man.NextSub)
	if restored > 0 {
		s.logf("store: restored %d standing subscription(s)", restored)
	}
}

// markSubsDirty is the registry's onChange hook: wake the checkpointer to
// republish the manifest with the new registration set.
func (s *Store) markSubsDirty() {
	s.ckptMu.Lock()
	s.subsDirty = true
	s.ckptMu.Unlock()
	s.cond.Broadcast()
}

// SyncSubscriptions blocks until every pending registration change is
// durable in the manifest (and any queued checkpoints, which also carry the
// registration set, have landed). The wire layer calls it before
// acknowledging a subscribe or unsubscribe, so an acknowledged registration
// survives a crash.
func (s *Store) SyncSubscriptions() error {
	s.ckptMu.Lock()
	for s.subsDirty || s.busy || len(s.pending) > 0 {
		if s.stopped() {
			s.ckptMu.Unlock()
			return wal.ErrClosed
		}
		s.cond.Wait()
	}
	s.ckptMu.Unlock()
	return s.Err()
}

// observe feeds one committed row to the registry. Called after the WAL
// commit that made the row durable — subscribers never see a row that could
// vanish in a crash.
func (s *Store) observe(t int64, attrs []float64) {
	if s.reg == nil {
		return
	}
	if err := s.reg.Observe(t, attrs); err != nil {
		// Unreachable while appends stay strictly increasing (the engine
		// just accepted the row); logged so a registry bug cannot silently
		// starve subscribers.
		s.logf("store: subscription registry: %v", err)
	}
}
