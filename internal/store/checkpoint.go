package store

import (
	"encoding/json"
	"fmt"
	"math"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/pagestore"
	"repro/internal/wal"
)

// manifestName is the checkpoint manifest file, atomically replaced (write
// to a temp name, sync, rename) on every checkpoint.
const manifestName = "MANIFEST"

// manifest is the durable index of checkpointed sealed shards and standing
// subscriptions. A shard's pages file is referenced only after its contents
// are synced, and the WAL is truncated only after the manifest referencing
// the shard is durable.
type manifest struct {
	Version int          `json:"version"`
	Dims    int          `json:"dims"`
	Shards  []shardEntry `json:"shards"`

	// Base is the absolute stream row where retained history starts: rows
	// below it were retired by bounded retention and their pages files
	// removed. Shards tile contiguously from Base; WAL LSNs are absolute, so
	// recovery of a fully retired store still resumes at the right row.
	Base int `json:"base,omitempty"`

	// Gen counts manifest publications; with retention enabled each
	// generation is also written as a MANIFEST.<gen> backup before it
	// replaces MANIFEST, so the newest backup is byte-identical to the
	// live manifest and a corrupted MANIFEST recovers from it losslessly.
	Gen uint64 `json:"gen,omitempty"`

	// Subs are the durable standing-query registrations; NextSub is the
	// registry's id high-water mark, persisted so retired ids are never
	// reissued (a reissue would alias a client's resume onto an unrelated
	// subscription).
	NextSub uint64     `json:"nextSub,omitempty"`
	Subs    []subEntry `json:"subs,omitempty"`
}

// shardEntry describes one checkpointed sealed shard.
type shardEntry struct {
	// File is the pages file name within the store directory.
	File string `json:"file"`
	// Lo and Hi are the shard's half-open global row range.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// LastTime is the arrival time of row Hi-1 (RestoreTable needs it).
	LastTime int64 `json:"lastTime"`
	// Level is the shard's LSM level: 0 for a plain sealed shard, l+1 for
	// the merge of a run of level-l shards (see core.LiveShardOptions.
	// CompactFanout). Manifests from before compaction decode as level 0.
	Level int `json:"level,omitempty"`
	// Pages are the heap-page summaries of the shard's table.
	Pages []pagestore.PageMeta `json:"pages"`
}

// shardFileName names a shard's pages file by its global row range and
// level. Level 0 keeps the historical name so pre-compaction stores load
// unchanged; merged shards carry their level so a range recompacted after a
// crash can never collide with a live constituent's file.
func shardFileName(lo, hi, level int) string {
	if level == 0 {
		return fmt.Sprintf("shard-%012d-%012d.pages", lo, hi)
	}
	return fmt.Sprintf("shard-%012d-%012d.L%d.pages", lo, hi, level)
}

// checkpointPoolFrames bounds the buffer pool used while writing or reading
// one checkpoint file; pages stream through, so a small pool suffices.
const checkpointPoolFrames = 32

// checkpoint persists sealed rows [lo,hi), republishes the manifest and
// advances the WAL low-water mark. Runs on the checkpointer goroutine.
func (s *Store) checkpoint(w ckptWork) error {
	entry, err := s.writeShardFile(w.lo, w.hi, 0)
	if err != nil {
		return err
	}
	s.man.Shards = append(s.man.Shards, entry)
	if err := s.publishManifest(); err != nil {
		// Roll the in-memory manifest back so a later retry (next seal's
		// checkpoint) does not reference this shard twice.
		s.man.Shards = s.man.Shards[:len(s.man.Shards)-1]
		return err
	}
	// The shard and manifest are durable; rows below hi can leave the WAL.
	if err := s.log.TruncateBefore(uint64(w.hi)); err != nil {
		return fmt.Errorf("advancing wal low-water mark: %w", err)
	}
	s.logf("store: checkpointed rows [%d,%d) to %s (%d pages)", w.lo, w.hi, entry.File, len(entry.Pages))
	return nil
}

// compact mirrors one engine merge into the manifest as an atomic level
// swap: write and sync the merged pages file, splice it over the manifest
// entries tiling [lo,hi), publish the manifest (the atomic rename is the
// commit point), then GC the replaced pages files. A crash before the rename
// leaves the old level plus an orphaned merged file; a crash after it leaves
// the new level plus orphaned constituent files — either way the next Open
// sweeps the orphans and recovery sees exactly one coherent level. The WAL
// is untouched: every merged row was already below the low-water mark.
// Runs on the checkpointer goroutine.
func (s *Store) compact(w ckptWork) error {
	a := -1
	for i, e := range s.man.Shards {
		if e.Lo == w.lo {
			a = i
			break
		}
	}
	if a < 0 {
		return fmt.Errorf("compacting [%d,%d): no manifest entry starts at %d", w.lo, w.hi, w.lo)
	}
	b := a
	for b < len(s.man.Shards) && s.man.Shards[b].Hi <= w.hi {
		b++
	}
	if b == a || s.man.Shards[b-1].Hi != w.hi {
		return fmt.Errorf("compacting [%d,%d): manifest entries do not tile the range", w.lo, w.hi)
	}
	entry, err := s.writeShardFile(w.lo, w.hi, w.level)
	if err != nil {
		return err
	}
	replaced := make([]string, 0, b-a)
	for _, e := range s.man.Shards[a:b] {
		replaced = append(replaced, e.File)
	}
	old := s.man.Shards
	next := make([]shardEntry, 0, len(old)-(b-a)+1)
	next = append(next, old[:a]...)
	next = append(next, entry)
	next = append(next, old[b:]...)
	s.man.Shards = next
	if err := s.publishManifest(); err != nil {
		s.man.Shards = old
		return err
	}
	// Commit point passed: the constituents are garbage. Best-effort removal
	// here; anything missed is unreferenced and falls to the next sweep.
	for _, name := range replaced {
		if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil && !notExist(err) {
			s.logf("store: removing compacted shard file %s: %v", name, err)
		}
	}
	s.logf("store: compacted rows [%d,%d) into %s (level %d, replaced %d files)",
		w.lo, w.hi, entry.File, w.level, len(replaced))
	return nil
}

// retire advances the manifest's retention base past retired shards and GCs
// their pages files. Same commit discipline as compact: the manifest rename
// is the commit point, file removal afterwards is best-effort. Runs on the
// checkpointer goroutine.
func (s *Store) retire(w ckptWork) error {
	if s.man.Base != w.lo {
		return fmt.Errorf("retiring [%d,%d): manifest base is %d", w.lo, w.hi, s.man.Base)
	}
	cut := 0
	for cut < len(s.man.Shards) && s.man.Shards[cut].Hi <= w.hi {
		cut++
	}
	if cut == 0 || s.man.Shards[cut-1].Hi != w.hi {
		return fmt.Errorf("retiring [%d,%d): manifest entries do not tile the range", w.lo, w.hi)
	}
	dropped := make([]string, 0, cut)
	for _, e := range s.man.Shards[:cut] {
		dropped = append(dropped, e.File)
	}
	old, oldBase := s.man.Shards, s.man.Base
	s.man.Shards = append([]shardEntry(nil), old[cut:]...)
	s.man.Base = w.hi
	if err := s.publishManifest(); err != nil {
		s.man.Shards, s.man.Base = old, oldBase
		return err
	}
	for _, name := range dropped {
		if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil && !notExist(err) {
			s.logf("store: removing retired shard file %s: %v", name, err)
		}
	}
	s.logf("store: retired rows [%d,%d); retention base now %d", w.lo, w.hi, w.hi)
	return nil
}

// publishManifest refreshes the manifest's subscription section from the
// live registry, bumps the generation and writes it out — through the
// retention path (backup generation first, then the atomic rename) when
// KeepCheckpoints is set, plus a best-effort GC sweep afterwards.
func (s *Store) publishManifest() error {
	if s.reg != nil {
		s.man.Subs = subEntriesFrom(s.reg.Snapshot())
		s.man.NextSub = s.reg.NextID()
	}
	s.man.Gen++
	if s.opts.KeepCheckpoints > 0 {
		// The backup must be durable before MANIFEST claims its
		// generation: readManifest falls back to the newest backup, which
		// must therefore never lag the live manifest.
		if err := writeManifestGen(s.fs, s.dir, s.man); err != nil {
			s.man.Gen--
			return err
		}
	}
	if err := writeManifest(s.fs, s.dir, s.man); err != nil {
		s.man.Gen--
		return err
	}
	s.gcRetired()
	return nil
}

// writeShardFile persists absolute rows [lo,hi) of the engine's global
// storage into a freshly created pages file and syncs it. Page row ids are
// absolute, so recovery after retention restores the same global row
// numbering the rows were acknowledged under.
func (s *Store) writeShardFile(lo, hi, level int) (shardEntry, error) {
	name := shardFileName(lo, hi, level)
	f, err := s.fs.Create(filepath.Join(s.dir, name))
	if err != nil {
		return shardEntry{}, fmt.Errorf("creating %s: %w", name, err)
	}
	backing, err := pagestore.NewFileBackingOn(f, 0)
	if err != nil {
		f.Close()
		return shardEntry{}, err
	}
	defer backing.Close()
	pool := pagestore.NewBufferPool(backing, checkpointPoolFrames)
	tbl, err := pagestore.CreateTable(pool, s.dims)
	if err != nil {
		return shardEntry{}, err
	}
	// Dataset() is an append-stable prefix view over the engine's physical
	// rows (absolute minus base), so reading the range is safe while the
	// appender keeps running; retired rows stay readable until restart.
	view := s.eng.Dataset().Slice(lo-s.base, hi-s.base)
	for i := 0; i < view.Len(); i++ {
		if err := tbl.Append(uint32(lo+i), view.Time(i), view.Attrs(i)); err != nil {
			return shardEntry{}, fmt.Errorf("writing %s: %w", name, err)
		}
	}
	if err := tbl.Seal(); err != nil {
		return shardEntry{}, err
	}
	if err := pool.FlushAll(); err != nil {
		return shardEntry{}, fmt.Errorf("flushing %s: %w", name, err)
	}
	if err := backing.Sync(); err != nil {
		return shardEntry{}, fmt.Errorf("syncing %s: %w", name, err)
	}
	return shardEntry{
		File:     name,
		Lo:       lo,
		Hi:       hi,
		LastTime: view.Time(view.Len() - 1),
		Level:    level,
		Pages:    tbl.Meta(),
	}, nil
}

// loadShard reads one checkpointed shard back into columnar rows, verifying
// every page checksum along the way.
func loadShard(fs wal.FS, dir string, e shardEntry, dims int) (core.RestoredShard, error) {
	if e.Hi <= e.Lo {
		return core.RestoredShard{}, fmt.Errorf("empty shard range [%d,%d)", e.Lo, e.Hi)
	}
	path := filepath.Join(dir, e.File)
	size, err := fs.Size(path)
	if err != nil {
		return core.RestoredShard{}, err
	}
	f, err := fs.Open(path)
	if err != nil {
		return core.RestoredShard{}, err
	}
	backing, err := pagestore.NewFileBackingOn(f, size)
	if err != nil {
		f.Close()
		return core.RestoredShard{}, err
	}
	defer backing.Close()
	pool := pagestore.NewBufferPool(backing, checkpointPoolFrames)
	tbl, err := pagestore.RestoreTable(pool, dims, e.Pages, e.Hi-e.Lo, e.LastTime)
	if err != nil {
		return core.RestoredShard{}, err
	}
	n := e.Hi - e.Lo
	sh := core.RestoredShard{
		Times: make([]int64, 0, n),
		Flat:  make([]float64, 0, n*dims),
		Level: e.Level,
	}
	nextID := uint32(e.Lo)
	var scanErr error
	err = tbl.ScanRange(math.MinInt64, math.MaxInt64, func(id uint32, tm int64, attrs []float64) bool {
		if id != nextID {
			scanErr = fmt.Errorf("row id %d out of sequence (want %d)", id, nextID)
			return false
		}
		nextID++
		sh.Times = append(sh.Times, tm)
		sh.Flat = append(sh.Flat, attrs...)
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		return core.RestoredShard{}, err
	}
	if len(sh.Times) != n {
		return core.RestoredShard{}, fmt.Errorf("shard holds %d rows, manifest says %d", len(sh.Times), n)
	}
	return sh, nil
}

// manifestGenName names one retained manifest generation backup.
func manifestGenName(gen uint64) string {
	return fmt.Sprintf("%s.%012d", manifestName, gen)
}

// parseManifestGen extracts the generation from a MANIFEST.<gen> backup
// name; ok is false for anything else (including MANIFEST itself and temp
// files).
func parseManifestGen(name string) (uint64, bool) {
	rest, found := strings.CutPrefix(name, manifestName+".")
	if !found || rest == "" || strings.HasSuffix(rest, ".tmp") {
		return 0, false
	}
	gen, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// readManifest loads the manifest, returning an empty one when none exists.
// A MANIFEST that exists but cannot be decoded falls back to the newest
// valid MANIFEST.<gen> retention backup: the backup for a generation is made
// durable before MANIFEST adopts it, so the newest backup never lags the
// live manifest and the fallback is lossless.
func readManifest(fs wal.FS, dir string) (manifest, error) {
	m, err := readManifestFile(fs, dir, manifestName)
	if err == nil {
		return m, nil
	}
	if notExist(err) {
		return manifest{Version: 1}, nil
	}
	names, lerr := fs.ReadDir(dir)
	if lerr != nil {
		return manifest{}, err
	}
	gens := make([]uint64, 0, len(names))
	for _, name := range names {
		if g, ok := parseManifestGen(name); ok {
			gens = append(gens, g)
		}
	}
	sort.Slice(gens, func(i, j int) bool { return gens[i] > gens[j] })
	for _, g := range gens {
		b, berr := readManifestFile(fs, dir, manifestGenName(g))
		if berr != nil {
			continue
		}
		return b, nil
	}
	return manifest{}, err
}

// readManifestFile loads and validates one manifest file. Missing files
// surface as a notExist error so the caller can tell "never checkpointed"
// from "checkpointed and damaged".
func readManifestFile(fs wal.FS, dir, name string) (manifest, error) {
	path := filepath.Join(dir, name)
	size, err := fs.Size(path)
	if err != nil {
		if notExist(err) {
			return manifest{}, err
		}
		return manifest{}, fmt.Errorf("store: reading %s: %w", name, err)
	}
	f, err := fs.Open(path)
	if err != nil {
		return manifest{}, fmt.Errorf("store: opening %s: %w", name, err)
	}
	defer f.Close()
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil {
			return manifest{}, fmt.Errorf("store: reading %s: %w", name, err)
		}
	}
	var m manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return manifest{}, fmt.Errorf("store: decoding %s: %w", name, err)
	}
	if m.Version != 1 {
		return manifest{}, fmt.Errorf("store: unsupported %s version %d", name, m.Version)
	}
	return m, nil
}

// writeManifest atomically replaces the manifest: write a temp file, sync
// it, rename over the live name. A crash at any point leaves either the old
// or the new manifest, never a torn one.
func writeManifest(fs wal.FS, dir string, m manifest) error {
	return writeManifestAs(fs, dir, manifestName, m)
}

// writeManifestGen durably writes m as its MANIFEST.<gen> retention backup.
func writeManifestGen(fs wal.FS, dir string, m manifest) error {
	return writeManifestAs(fs, dir, manifestGenName(m.Gen), m)
}

func writeManifestAs(fs wal.FS, dir, name string, m manifest) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding manifest: %w", err)
	}
	tmp := filepath.Join(dir, name+".tmp")
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: creating manifest temp: %w", err)
	}
	if _, err := f.WriteAt(buf, 0); err != nil {
		f.Close()
		return fmt.Errorf("store: writing manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, filepath.Join(dir, name)); err != nil {
		return fmt.Errorf("store: publishing manifest: %w", err)
	}
	return nil
}

// gcRetired is the best-effort sweep run after every successful manifest
// publish and once at Open: drop page files the live manifest no longer
// references (crash leftovers from a checkpoint or compaction that never
// published, constituents of a committed level swap, retired shards) and
// stale manifest temp files — unconditionally, since nothing can ever
// reference them again — plus, when KeepCheckpoints is set, MANIFEST.<gen>
// backups older than the newest KeepCheckpoints generations. Failures are
// logged, never escalated — GC losing a race with the filesystem must not
// poison the store.
func (s *Store) gcRetired() {
	names, err := s.fs.ReadDir(s.dir)
	if err != nil {
		s.logf("store: retention sweep: %v", err)
		return
	}
	referenced := make(map[string]bool, len(s.man.Shards))
	for _, e := range s.man.Shards {
		referenced[e.File] = true
	}
	// With retention disabled no backups are written, so no generation is
	// ever stale (oldest 0); pre-existing backups from an earlier retention
	// configuration are left alone.
	var oldest uint64
	if keep := uint64(s.opts.KeepCheckpoints); keep > 0 && s.man.Gen > keep {
		oldest = s.man.Gen - keep + 1
	}
	for _, name := range names {
		var stale bool
		switch {
		case strings.HasSuffix(name, ".tmp") && strings.HasPrefix(name, manifestName):
			stale = true
		case strings.HasSuffix(name, ".pages"):
			stale = !referenced[name]
		default:
			g, ok := parseManifestGen(name)
			stale = ok && g < oldest
		}
		if !stale {
			continue
		}
		if err := s.fs.Remove(filepath.Join(s.dir, name)); err != nil && !notExist(err) {
			s.logf("store: retention sweep: removing %s: %v", name, err)
		}
	}
}
