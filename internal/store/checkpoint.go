package store

import (
	"encoding/json"
	"fmt"
	"math"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/pagestore"
	"repro/internal/wal"
)

// manifestName is the checkpoint manifest file, atomically replaced (write
// to a temp name, sync, rename) on every checkpoint.
const manifestName = "MANIFEST"

// manifest is the durable index of checkpointed sealed shards. A shard's
// pages file is referenced only after its contents are synced, and the WAL
// is truncated only after the manifest referencing the shard is durable.
type manifest struct {
	Version int          `json:"version"`
	Dims    int          `json:"dims"`
	Shards  []shardEntry `json:"shards"`
}

// shardEntry describes one checkpointed sealed shard.
type shardEntry struct {
	// File is the pages file name within the store directory.
	File string `json:"file"`
	// Lo and Hi are the shard's half-open global row range.
	Lo int `json:"lo"`
	Hi int `json:"hi"`
	// LastTime is the arrival time of row Hi-1 (RestoreTable needs it).
	LastTime int64 `json:"lastTime"`
	// Pages are the heap-page summaries of the shard's table.
	Pages []pagestore.PageMeta `json:"pages"`
}

// shardFileName names a shard's pages file by its global row range.
func shardFileName(lo, hi int) string {
	return fmt.Sprintf("shard-%012d-%012d.pages", lo, hi)
}

// checkpointPoolFrames bounds the buffer pool used while writing or reading
// one checkpoint file; pages stream through, so a small pool suffices.
const checkpointPoolFrames = 32

// checkpoint persists sealed rows [lo,hi), republishes the manifest and
// advances the WAL low-water mark. Runs on the checkpointer goroutine.
func (s *Store) checkpoint(sp span) error {
	entry, err := s.writeShardFile(sp.lo, sp.hi)
	if err != nil {
		return err
	}
	s.man.Shards = append(s.man.Shards, entry)
	if err := writeManifest(s.fs, s.dir, s.man); err != nil {
		// Roll the in-memory manifest back so a later retry (next seal's
		// checkpoint) does not reference this shard twice.
		s.man.Shards = s.man.Shards[:len(s.man.Shards)-1]
		return err
	}
	// The shard and manifest are durable; rows below hi can leave the WAL.
	if err := s.log.TruncateBefore(uint64(sp.hi)); err != nil {
		return fmt.Errorf("advancing wal low-water mark: %w", err)
	}
	s.logf("store: checkpointed rows [%d,%d) to %s (%d pages)", sp.lo, sp.hi, entry.File, len(entry.Pages))
	return nil
}

// writeShardFile persists rows [lo,hi) of the engine's global storage into
// a freshly created pages file and syncs it.
func (s *Store) writeShardFile(lo, hi int) (shardEntry, error) {
	name := shardFileName(lo, hi)
	f, err := s.fs.Create(filepath.Join(s.dir, name))
	if err != nil {
		return shardEntry{}, fmt.Errorf("creating %s: %w", name, err)
	}
	backing, err := pagestore.NewFileBackingOn(f, 0)
	if err != nil {
		f.Close()
		return shardEntry{}, err
	}
	defer backing.Close()
	pool := pagestore.NewBufferPool(backing, checkpointPoolFrames)
	tbl, err := pagestore.CreateTable(pool, s.dims)
	if err != nil {
		return shardEntry{}, err
	}
	// Dataset() is an append-stable prefix view, so reading [lo,hi) is safe
	// while the appender keeps running.
	view := s.eng.Dataset().Slice(lo, hi)
	for i := 0; i < view.Len(); i++ {
		if err := tbl.Append(uint32(lo+i), view.Time(i), view.Attrs(i)); err != nil {
			return shardEntry{}, fmt.Errorf("writing %s: %w", name, err)
		}
	}
	if err := tbl.Seal(); err != nil {
		return shardEntry{}, err
	}
	if err := pool.FlushAll(); err != nil {
		return shardEntry{}, fmt.Errorf("flushing %s: %w", name, err)
	}
	if err := backing.Sync(); err != nil {
		return shardEntry{}, fmt.Errorf("syncing %s: %w", name, err)
	}
	return shardEntry{
		File:     name,
		Lo:       lo,
		Hi:       hi,
		LastTime: view.Time(view.Len() - 1),
		Pages:    tbl.Meta(),
	}, nil
}

// loadShard reads one checkpointed shard back into columnar rows, verifying
// every page checksum along the way.
func loadShard(fs wal.FS, dir string, e shardEntry, dims int) (core.RestoredShard, error) {
	if e.Hi <= e.Lo {
		return core.RestoredShard{}, fmt.Errorf("empty shard range [%d,%d)", e.Lo, e.Hi)
	}
	path := filepath.Join(dir, e.File)
	size, err := fs.Size(path)
	if err != nil {
		return core.RestoredShard{}, err
	}
	f, err := fs.Open(path)
	if err != nil {
		return core.RestoredShard{}, err
	}
	backing, err := pagestore.NewFileBackingOn(f, size)
	if err != nil {
		f.Close()
		return core.RestoredShard{}, err
	}
	defer backing.Close()
	pool := pagestore.NewBufferPool(backing, checkpointPoolFrames)
	tbl, err := pagestore.RestoreTable(pool, dims, e.Pages, e.Hi-e.Lo, e.LastTime)
	if err != nil {
		return core.RestoredShard{}, err
	}
	n := e.Hi - e.Lo
	sh := core.RestoredShard{
		Times: make([]int64, 0, n),
		Flat:  make([]float64, 0, n*dims),
	}
	nextID := uint32(e.Lo)
	var scanErr error
	err = tbl.ScanRange(math.MinInt64, math.MaxInt64, func(id uint32, tm int64, attrs []float64) bool {
		if id != nextID {
			scanErr = fmt.Errorf("row id %d out of sequence (want %d)", id, nextID)
			return false
		}
		nextID++
		sh.Times = append(sh.Times, tm)
		sh.Flat = append(sh.Flat, attrs...)
		return true
	})
	if err == nil {
		err = scanErr
	}
	if err != nil {
		return core.RestoredShard{}, err
	}
	if len(sh.Times) != n {
		return core.RestoredShard{}, fmt.Errorf("shard holds %d rows, manifest says %d", len(sh.Times), n)
	}
	return sh, nil
}

// readManifest loads the manifest, returning an empty one when none exists.
func readManifest(fs wal.FS, dir string) (manifest, error) {
	path := filepath.Join(dir, manifestName)
	size, err := fs.Size(path)
	if err != nil {
		if notExist(err) {
			return manifest{Version: 1}, nil
		}
		return manifest{}, fmt.Errorf("store: reading manifest: %w", err)
	}
	f, err := fs.Open(path)
	if err != nil {
		return manifest{}, fmt.Errorf("store: opening manifest: %w", err)
	}
	defer f.Close()
	buf := make([]byte, size)
	if size > 0 {
		if _, err := f.ReadAt(buf, 0); err != nil {
			return manifest{}, fmt.Errorf("store: reading manifest: %w", err)
		}
	}
	var m manifest
	if err := json.Unmarshal(buf, &m); err != nil {
		return manifest{}, fmt.Errorf("store: decoding manifest: %w", err)
	}
	if m.Version != 1 {
		return manifest{}, fmt.Errorf("store: unsupported manifest version %d", m.Version)
	}
	return m, nil
}

// writeManifest atomically replaces the manifest: write a temp file, sync
// it, rename over the live name. A crash at any point leaves either the old
// or the new manifest, never a torn one.
func writeManifest(fs wal.FS, dir string, m manifest) error {
	buf, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("store: encoding manifest: %w", err)
	}
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: creating manifest temp: %w", err)
	}
	if _, err := f.WriteAt(buf, 0); err != nil {
		f.Close()
		return fmt.Errorf("store: writing manifest: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: syncing manifest: %w", err)
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return fmt.Errorf("store: publishing manifest: %w", err)
	}
	return nil
}
