package store

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/score"
	"repro/internal/wal"
	"repro/internal/wal/faultfs"
)

// TestCrashRecoveryDifferential is the acceptance harness of the
// durability layer: feed a stream through a store running on a
// fault-injecting filesystem that kills the process (torn write included)
// after a byte budget, recover from the surviving state, and require that
//
//  1. recovery always succeeds and yields an exact prefix of the stream,
//  2. the prefix covers at least every acknowledged append,
//  3. the recovered engine answers all five strategies bit-identically to
//     a batch engine built over the durable prefix, and
//  4. ingestion resumes exactly where the prefix ends.
//
// Budgets sweep both uniform offsets and the exact write boundaries (±1
// byte) recorded by a golden run, so crashes land before, inside and after
// individual WAL frames, checkpoint pages and manifest writes.
func TestCrashRecoveryDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n, d = 400, 2
	rows := genRows(rng, n, d)

	// Golden run: no crash, learn the total write volume and boundaries.
	golden := faultfs.New(wal.NewMemFS())
	st, err := Open("db", d, crashOpts(golden))
	if err != nil {
		t.Fatalf("golden Open: %v", err)
	}
	if acked := feedAll(st, rows); acked != n {
		t.Fatalf("golden run acked %d of %d", acked, n)
	}
	st.WaitCheckpoints()
	if err := st.Close(); err != nil {
		t.Fatalf("golden Close: %v", err)
	}
	total := golden.BytesWritten()
	if total == 0 {
		t.Fatal("golden run wrote nothing")
	}

	// Budget schedule: uniform coverage plus exact boundaries ±1.
	budgets := map[int64]bool{0: true, 1: true, total - 1: true}
	for i := int64(1); i <= 24; i++ {
		budgets[total*i/25] = true
	}
	var cum int64
	for i, op := range golden.Ops() {
		if op.Op != "write" {
			continue
		}
		cum += op.Len
		if i%7 == 0 { // sample boundaries; every one would be O(thousands)
			budgets[cum-1] = true
			budgets[cum] = true
			budgets[cum+1] = true
		}
	}

	for budget := range budgets {
		if budget < 0 || budget > total {
			continue
		}
		runCrashTrial(t, rows, budget)
	}
}

// crashOpts enables compaction so the budget sweep also lands inside merged
// pages files and the manifest renames that commit level swaps.
func crashOpts(fs wal.FS) Options {
	return Options{
		FS:    fs,
		Sync:  wal.SyncAlways,
		Shard: core.LiveShardOptions{SealRows: 64, CompactFanout: 2},
	}
}

// feedAll appends rows one at a time until the store errors (the crash),
// returning the number of acknowledged appends.
func feedAll(s *Store, rows []Row) (acked int) {
	for _, r := range rows {
		if _, _, err := s.Append(r.T, r.Attrs); err != nil {
			return acked
		}
		acked++
	}
	return acked
}

func runCrashTrial(t *testing.T, rows []Row, budget int64) {
	t.Helper()
	d := len(rows[0].Attrs)
	inner := wal.NewMemFS()
	ffs := faultfs.New(inner)
	ffs.SetCrashBudget(budget)

	st, err := Open("db", d, crashOpts(ffs))
	if err != nil {
		// The budget can land inside Open's own segment-create path;
		// nothing was acknowledged, so there is nothing to verify.
		return
	}
	acked := feedAll(st, rows)
	st.Close() // errors expected post-crash; this only stops goroutines

	// Recover from the durable state (what reached the inner filesystem).
	rec, err := Open("db", d, crashOpts(inner))
	if err != nil {
		t.Fatalf("budget %d: recovery failed: %v", budget, err)
	}
	defer rec.Close()
	m := rec.Len()
	if m < acked {
		t.Fatalf("budget %d: recovered %d rows < %d acknowledged", budget, m, acked)
	}
	if m > len(rows) {
		t.Fatalf("budget %d: recovered %d rows > %d fed", budget, m, len(rows))
	}
	assertRows(t, rec, rows, m) // bit-exact prefix

	assertStrategiesMatchBatch(t, rec, rows, m, budget)

	// Ingestion resumes at the exact next row of the original stream.
	if m < len(rows) {
		if _, _, err := rec.Append(rows[m].T, rows[m].Attrs); err != nil {
			t.Fatalf("budget %d: resume append after recovery: %v", budget, err)
		}
		assertRows(t, rec, rows, m+1)
	}
}

// assertStrategiesMatchBatch requires the recovered engine to answer all
// five strategies bit-identically to a batch engine over rows[:m].
func assertStrategiesMatchBatch(t *testing.T, rec *Store, rows []Row, m int, budget int64) {
	t.Helper()
	if m == 0 {
		return
	}
	times := make([]int64, m)
	flat := make([]float64, 0, m*len(rows[0].Attrs))
	for i := 0; i < m; i++ {
		times[i] = rows[i].T
		flat = append(flat, rows[i].Attrs...)
	}
	ds, err := data.NewFlat(times, flat, len(rows[0].Attrs))
	if err != nil {
		t.Fatalf("budget %d: building reference dataset: %v", budget, err)
	}
	batch := core.NewEngine(ds, core.Options{})
	scorer := score.MustLinear(1, 0.5)
	lo, hi := ds.Span()
	queries := []core.Query{
		{K: 1, Tau: (hi - lo) / 4, Start: lo, End: hi, Scorer: scorer},
		{K: 3, Tau: (hi - lo) / 2, Start: lo, End: hi, Scorer: scorer},
		{K: 2, Tau: (hi - lo) / 3, Start: lo, End: hi, Scorer: scorer, Anchor: core.LookAhead},
	}
	for _, q := range queries {
		if q.Tau < 1 {
			q.Tau = 1
		}
		for _, alg := range core.Algorithms() {
			sub := q
			sub.Algorithm = alg
			want, err := batch.DurableTopK(sub)
			if err != nil {
				t.Fatalf("budget %d: batch %v: %v", budget, alg, err)
			}
			got, err := rec.Engine().DurableTopK(sub)
			if err != nil {
				t.Fatalf("budget %d: recovered %v: %v", budget, alg, err)
			}
			if !reflect.DeepEqual(got.Records, want.Records) {
				t.Fatalf("budget %d: strategy %v diverged over durable prefix of %d rows:\n got %v\nwant %v",
					budget, alg, m, got.Records, want.Records)
			}
		}
	}
}

// TestCrashDuringCheckpointRedoes kills the filesystem in the middle of
// checkpoint page writes specifically: the manifest must never reference a
// torn shard file, and recovery re-checkpoints the shard from the WAL.
func TestCrashDuringCheckpointRedoes(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	rows := genRows(rng, 200, 1)
	inner := wal.NewMemFS()
	ffs := faultfs.New(inner)
	opts := Options{FS: ffs, Sync: wal.SyncAlways, Shard: core.LiveShardOptions{SealRows: 64}}
	st, err := Open("db", 1, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Feed one seal's worth, then crash on the shard file's first page
	// write (pages are 8 KiB; WAL frames are tens of bytes, so arm the
	// budget only once the seal fires to be sure the checkpoint eats it).
	for i, r := range rows {
		if _, _, err := st.Append(r.T, r.Attrs); err != nil {
			break
		}
		if i == 63 {
			ffs.SetCrashBudget(4096) // mid-page: torn checkpoint write
		}
	}
	st.WaitCheckpoints()
	st.Close()
	if !ffs.Crashed() {
		t.Fatal("crash budget never tripped")
	}
	if err := st.Err(); err == nil {
		t.Fatal("store did not surface the checkpoint failure")
	}

	opts.FS = inner // recover from the durable state
	rec, err := Open("db", 1, opts)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer rec.Close()
	if rec.Stats().RestoredRows != 0 {
		t.Fatalf("RestoredRows = %d; the torn checkpoint must not be referenced", rec.Stats().RestoredRows)
	}
	m := rec.Len()
	if m < 64 {
		t.Fatalf("recovered %d rows, want at least the sealed 64", m)
	}
	assertRows(t, rec, rows, m)
	// The re-fired seal checkpoints successfully on the healthy FS.
	rec.WaitCheckpoints()
	if rec.Checkpoints() == 0 {
		t.Fatal("recovered store did not re-checkpoint the sealed shard")
	}
	if err := rec.Err(); err != nil {
		t.Fatalf("recovered store unhealthy: %v", err)
	}
}
