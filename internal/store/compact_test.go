package store

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/score"
	"repro/internal/wal"
	"repro/internal/wal/faultfs"
)

// compactOpts enables background compaction on top of the usual small-seal
// test configuration.
func compactOpts(fs wal.FS) Options {
	return Options{
		FS:    fs,
		Sync:  wal.SyncAlways,
		Shard: core.LiveShardOptions{SealRows: 32, CompactFanout: 2},
	}
}

// drain quiesces the whole lifecycle: freeze builds, the compaction cascade,
// and the checkpointer queue the hooks fed from them.
func drain(s *Store) {
	s.Engine().WaitSealed()
	s.Engine().WaitCompacted()
	s.WaitCheckpoints()
}

// assertManifestTiles checks the store's in-memory manifest: shard entries
// tile [base, sealed) contiguously and every referenced pages file exists.
func assertManifestTiles(t *testing.T, s *Store) {
	t.Helper()
	prev := s.man.Base
	for _, e := range s.man.Shards {
		if e.Lo != prev {
			t.Fatalf("manifest gap: entry starts at %d, want %d (%+v)", e.Lo, prev, s.man.Shards)
		}
		if e.File != shardFileName(e.Lo, e.Hi, e.Level) {
			t.Fatalf("entry [%d,%d) L%d named %s", e.Lo, e.Hi, e.Level, e.File)
		}
		if _, err := s.fs.Size(filepath.Join(s.dir, e.File)); err != nil {
			t.Fatalf("referenced pages file %s unreadable: %v", e.File, err)
		}
		prev = e.Hi
	}
}

// TestStoreCompactionLevelSwapAndRecovery: engine merges must reach the
// manifest as atomic level swaps, replaced files must be GC'd, and recovery
// must restore the leveled layout bit-identically.
func TestStoreCompactionLevelSwapAndRecovery(t *testing.T) {
	fs := wal.NewMemFS()
	rng := rand.New(rand.NewSource(11))
	const n, d = 256, 2 // 8 seals of 32 -> cascades to one level-3 shard
	rows := genRows(rng, n, d)
	st, err := Open("db", d, compactOpts(fs))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i, r := range rows {
		if _, _, err := st.Append(r.T, r.Attrs); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	drain(st)
	if st.Engine().Compactions() == 0 {
		t.Fatal("engine never compacted")
	}
	assertManifestTiles(t, st)
	maxLevel := 0
	for _, e := range st.man.Shards {
		if e.Level > maxLevel {
			maxLevel = e.Level
		}
	}
	if maxLevel < 2 {
		t.Fatalf("manifest max level %d, want the cascade to reach >= 2 (%+v)", maxLevel, st.man.Shards)
	}
	if len(st.man.Shards) >= n/32 {
		t.Fatalf("manifest still lists %d shards after compacting %d seals", len(st.man.Shards), n/32)
	}
	// Constituent files of committed swaps are gone: only referenced pages
	// files remain on disk.
	names, err := fs.ReadDir("db")
	if err != nil {
		t.Fatal(err)
	}
	referenced := make(map[string]bool)
	for _, e := range st.man.Shards {
		referenced[e.File] = true
	}
	for _, name := range names {
		if strings.HasSuffix(name, ".pages") && !referenced[name] {
			t.Fatalf("unreferenced pages file %s survived the swap GC", name)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rec, err := Open("db", d, compactOpts(fs))
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer rec.Close()
	assertRows(t, rec, rows, n)
	if got := rec.Engine().MaxLevel(); got != maxLevel {
		t.Fatalf("recovered MaxLevel = %d, want %d", got, maxLevel)
	}
	if rec.Stats().RestoredRows == 0 {
		t.Fatal("recovery restored nothing from checkpoints")
	}
	assertStrategiesMatchBatch(t, rec, rows, n, -1)

	// Ingestion resumes: appends land after the leveled history.
	more := genRowsAfter(rng, rows[n-1].T, 40, d)
	for _, r := range more {
		if _, _, err := rec.Append(r.T, r.Attrs); err != nil {
			t.Fatalf("resume append: %v", err)
		}
	}
	assertRows(t, rec, append(append([]Row(nil), rows...), more...), n+40)
}

// TestStoreRetirementAdvancesBase: bounded retention must advance the
// manifest base, drop retired shards' files, keep subscription-visible row
// numbering absolute, and recover to exactly the retained suffix.
func TestStoreRetirementAdvancesBase(t *testing.T) {
	fs := wal.NewMemFS()
	rng := rand.New(rand.NewSource(13))
	const n, d = 400, 1
	rows := genRows(rng, n, d) // gaps 1..5, span ~1200
	opts := Options{
		FS:    fs,
		Sync:  wal.SyncAlways,
		Shard: core.LiveShardOptions{SealRows: 32, RetainSpan: 300},
	}
	st, err := Open("db", d, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i, r := range rows {
		if _, _, err := st.Append(r.T, r.Attrs); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	drain(st)
	base := st.man.Base
	if base == 0 {
		t.Fatal("retention never advanced the manifest base")
	}
	if base != st.Engine().RetiredRows() {
		t.Fatalf("manifest base %d != engine retired rows %d", base, st.Engine().RetiredRows())
	}
	if base%32 != 0 {
		t.Fatalf("base %d is not a whole-shard multiple", base)
	}
	assertManifestTiles(t, st)
	// Retired shards' files are gone.
	names, _ := fs.ReadDir("db")
	for _, name := range names {
		if strings.HasPrefix(name, "shard-000000000000-") {
			t.Fatalf("retired shard file %s survived", name)
		}
	}
	// In-process the rows stay addressable (Len counts the whole stream).
	if st.Len() != n {
		t.Fatalf("Len = %d, want %d before restart", st.Len(), n)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	rec, err := Open("db", d, opts)
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer rec.Close()
	if rec.Base() != base {
		t.Fatalf("recovered Base = %d, want %d", rec.Base(), base)
	}
	if rec.Len() != n-base {
		t.Fatalf("recovered Len = %d, want the %d retained rows", rec.Len(), n-base)
	}
	ds := rec.Engine().Dataset()
	for i := 0; i < rec.Len(); i++ {
		if ds.Time(i) != rows[base+i].T || !reflect.DeepEqual(ds.Attrs(i), rows[base+i].Attrs) {
			t.Fatalf("retained row %d diverges from stream row %d", i, base+i)
		}
	}
	// Answers over the suffix match a batch engine built over it.
	times := make([]int64, n-base)
	vals := make([][]float64, n-base)
	for i := range times {
		times[i], vals[i] = rows[base+i].T, rows[base+i].Attrs
	}
	suffix, err := data.New(times, vals)
	if err != nil {
		t.Fatal(err)
	}
	batch := core.NewEngine(suffix, core.Options{})
	scorer := score.MustLinear(1)
	lo, hi := suffix.Span()
	q := core.Query{K: 3, Tau: (hi - lo) / 3, Start: lo, End: hi, Scorer: scorer}
	for _, alg := range core.Algorithms() {
		sub := q
		sub.Algorithm = alg
		want, err := batch.DurableTopK(sub)
		if err != nil {
			t.Fatalf("batch %v: %v", alg, err)
		}
		got, err := rec.Engine().DurableTopK(sub)
		if err != nil {
			t.Fatalf("recovered %v: %v", alg, err)
		}
		if !reflect.DeepEqual(got.Records, want.Records) {
			t.Fatalf("strategy %v diverged over the retained suffix:\n got %v\nwant %v", alg, got.Records, want.Records)
		}
	}
	// Ingestion resumes after the retained suffix.
	if _, _, err := rec.Append(rows[n-1].T+1, rows[0].Attrs); err != nil {
		t.Fatalf("resume append: %v", err)
	}
	if rec.Len() != n-base+1 {
		t.Fatalf("Len after resume = %d", rec.Len())
	}
}

// TestOrphanPageGC is the regression test for crash leftovers: pages files
// and manifest temp files that no manifest references — a checkpoint or
// compaction that died before its publish — must be swept at Open even with
// KeepCheckpoints disabled, and after every successful publish.
func TestOrphanPageGC(t *testing.T) {
	fs := wal.NewMemFS()
	rng := rand.New(rand.NewSource(17))
	rows := genRows(rng, 64, 1)
	st, err := Open("db", 1, testOpts(fs))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for _, r := range rows {
		if _, _, err := st.Append(r.T, r.Attrs); err != nil {
			t.Fatal(err)
		}
	}
	drain(st)
	if st.Checkpoints() == 0 {
		t.Fatal("no checkpoint landed; the orphan test needs a referenced file to keep")
	}
	kept := st.man.Shards[0].File
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Plant crash leftovers: an orphaned level-1 merge that never published,
	// an orphaned plain checkpoint, and a torn manifest temp file.
	for _, name := range []string{
		shardFileName(0, 64, 1),
		shardFileName(9000, 9064, 0),
		manifestName + ".tmp",
	} {
		f, err := fs.Create(filepath.Join("db", name))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte("leftover"), 0); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}

	rec, err := Open("db", 1, testOpts(fs)) // KeepCheckpoints: 0
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer rec.Close()
	names, err := fs.ReadDir("db")
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool, len(names))
	for _, name := range names {
		seen[name] = true
	}
	if seen[shardFileName(0, 64, 1)] || seen[shardFileName(9000, 9064, 0)] || seen[manifestName+".tmp"] {
		t.Fatalf("orphans survived Open's sweep: %v", names)
	}
	if !seen[kept] {
		t.Fatalf("sweep removed the referenced pages file %s", kept)
	}
	assertRows(t, rec, rows, 64)
}

// TestCrashDuringCompactionLevelSwap aims the kill-at-any-byte harness at
// the level swap specifically: budgets land on the byte boundaries of merged
// (.L*) pages-file writes and the manifest writes that commit them. Recovery
// must come up on the old or the new level — never lose a row, never
// reference a torn file — and keep answering like a batch engine.
func TestCrashDuringCompactionLevelSwap(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n, d = 400, 2
	rows := genRows(rng, n, d)

	golden := faultfs.New(wal.NewMemFS())
	st, err := Open("db", d, crashOpts(golden))
	if err != nil {
		t.Fatalf("golden Open: %v", err)
	}
	if acked := feedAll(st, rows); acked != n {
		t.Fatalf("golden run acked %d of %d", acked, n)
	}
	drain(st)
	if st.Engine().Compactions() == 0 {
		t.Fatal("golden run never compacted; crashOpts lost its fanout?")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("golden Close: %v", err)
	}

	// Collect budgets bracketing every write to a merged pages file, and the
	// first manifest write after each (the swap's commit point).
	budgets := map[int64]bool{}
	var cum int64
	wantManifest := false
	for _, op := range golden.Ops() {
		if op.Op != "write" {
			continue
		}
		cum += op.Len
		switch {
		case strings.Contains(op.Name, ".L"):
			budgets[cum-1] = true
			budgets[cum] = true
			budgets[cum+1] = true
			wantManifest = true
		case wantManifest && strings.HasPrefix(op.Name, manifestName):
			budgets[cum-1] = true
			budgets[cum] = true
			wantManifest = false
		}
	}
	if len(budgets) == 0 {
		t.Fatal("golden run recorded no merged-file writes")
	}
	for budget := range budgets {
		if budget < 0 {
			continue
		}
		runCrashTrial(t, rows, budget)
	}
}
