// Package store binds a live+sharded engine to a write-ahead log and
// seal-keyed checkpoints, making live ingestion crash-safe.
//
// Every append is framed into the WAL before it reaches the engine, so the
// row stream and the log agree record for record: WAL LSN i is global row i.
// When the engine seals its tail (the PR-5 lifecycle), the sealed shard's
// columnar rows are persisted once into a page-structured checkpoint file
// (pagestore heap pages with per-page checksums) by a background
// checkpointer, the manifest is atomically republished, and the WAL's
// low-water mark advances past the shard — so recovery loads sealed history
// in bulk from checkpoints and replays only the unsealed tail.
//
// Open is also the recovery path: it loads the manifest's checkpointed
// shards (zero WAL replay), repairs and replays the tail WAL through the
// normal append path (re-firing seals deterministically), and resumes
// ingestion at the exact next row. Crash-consistency ordering is: shard
// pages are synced before the manifest references them, and the manifest is
// durable before the WAL is truncated — a crash between any two steps
// leaves either redundant-but-unreferenced files or a longer-than-needed
// WAL, never data loss.
package store

import (
	"errors"
	"fmt"
	iofs "io/fs"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/sub"
	"repro/internal/wal"
)

// Options configures a durable Store.
type Options struct {
	// FS is the filesystem everything (WAL, checkpoints, manifest) lives
	// on; nil means the real one.
	FS wal.FS
	// Sync is the WAL fsync policy (default wal.SyncAlways).
	Sync wal.SyncPolicy
	// SyncEvery is the wal.SyncInterval period (default 50ms).
	SyncEvery time.Duration
	// SegmentSize is the WAL segment rotation threshold (default 4 MiB).
	SegmentSize int64
	// Engine, Live and Shard configure the underlying live+sharded engine
	// exactly as core.NewLiveShardedEngine; Shard.OnSeal, Shard.OnCompact
	// and Shard.OnRetire are reserved for the store's checkpointer and must
	// be nil. Shard.CompactFanout enables LSM compaction (the checkpointer
	// mirrors every merge as an atomic manifest level swap) and
	// Shard.RetainSpan bounded retention (mirrored as a manifest base
	// advance).
	Engine core.Options
	Live   core.LiveOptions
	Shard  core.LiveShardOptions
	// KeepCheckpoints, when positive, retains the newest N manifest
	// generations as MANIFEST.<gen> backups (the newest is always
	// byte-identical to MANIFEST, so a torn or corrupted MANIFEST recovers
	// losslessly from it) and garbage-collects older generations plus any
	// page files the current manifest no longer references (crash
	// leftovers). Zero keeps the historical behavior: one MANIFEST, no
	// backups, no GC.
	KeepCheckpoints int
	// Logf, when set, receives recovery and checkpoint progress lines.
	Logf func(format string, args ...interface{})
}

// RecoveryStats describes what Open reconstructed.
type RecoveryStats struct {
	// RestoredRows is the number of rows loaded in bulk from checkpointed
	// sealed shards (zero WAL replay).
	RestoredRows int
	// RestoredShards is the number of checkpointed shards loaded.
	RestoredShards int
	// ReplayedRows is the number of tail rows replayed from the WAL.
	ReplayedRows int
	// WALReset reports that the WAL was behind the checkpoint manifest
	// (e.g. corruption truncated into sealed history) and was restarted at
	// the checkpoint boundary.
	WALReset bool
}

// workKind tags one unit of checkpointer work.
type workKind int

const (
	// workSeal persists a freshly sealed shard's pages and advances the WAL
	// low-water mark.
	workSeal workKind = iota
	// workCompact swaps a compacted run for its merged level shard in the
	// manifest: new pages file first, then the atomic manifest rename, then
	// GC of the replaced pages files.
	workCompact
	// workRetire advances the manifest's retention base past retired shards
	// and GCs their pages files.
	workRetire
)

// ckptWork is one queued unit of checkpointer work. lo and hi are absolute
// stream rows (the engine's physical rows plus the store's base); level is
// the merged shard's level for workCompact.
type ckptWork struct {
	kind   workKind
	lo, hi int
	level  int
}

// Store is a crash-safe live+sharded engine: appends are logged before they
// are applied, sealed shards are checkpointed, and Open recovers the full
// acknowledged stream. Safe for concurrent use: any number of concurrent
// queries (through Engine), one appender.
type Store struct {
	dir  string
	fs   wal.FS
	dims int
	opts Options

	// base is the absolute stream row of the engine's physical row 0: rows
	// below it were retired by retention before this process opened the
	// store, so the engine never restored them. Constant after Open (further
	// retirement advances the manifest base and the engine's retirement
	// boundary in lockstep, leaving the mapping fixed); WAL LSNs, manifest
	// row ranges, page row ids and subscription positions are all absolute.
	base int

	log *wal.Log
	eng *core.LiveShardedEngine
	reg *sub.Registry

	// mu serializes appends and guards the sticky durability error.
	mu       sync.Mutex
	lastTime int64
	hasRows  bool
	err      error
	closed   bool

	// Checkpoint queue: OnSeal appends under ckptMu (nested inside the
	// engine lock, so it must stay tiny); the checkpointer goroutine drains
	// it without holding ckptMu across I/O. cond signals both new work and
	// completed work (for WaitCheckpoints).
	ckptMu      sync.Mutex
	cond        *sync.Cond
	pending     []ckptWork
	busy        bool
	subsDirty   bool // a registration changed; manifest needs republishing
	checkpoints int
	man         manifest // owned by the checkpointer after Open
	stop        chan struct{}
	wg          sync.WaitGroup

	stats RecoveryStats
}

// Open opens (or creates) a durable store in dir, recovering any previous
// state: checkpointed sealed shards load in bulk, the tail WAL is repaired
// and replayed, and the store resumes appends at the exact next row.
func Open(dir string, dims int, opts Options) (*Store, error) {
	if opts.FS == nil {
		opts.FS = wal.OSFS{}
	}
	if opts.Shard.OnSeal != nil || opts.Shard.OnCompact != nil || opts.Shard.OnRetire != nil {
		return nil, errors.New("store: Shard lifecycle hooks are reserved for the checkpointer")
	}
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("store: creating %s: %w", dir, err)
	}
	s := &Store{dir: dir, fs: opts.FS, dims: dims, opts: opts, stop: make(chan struct{})}
	s.cond = sync.NewCond(&s.ckptMu)

	// 1. Load the checkpoint manifest and the sealed shards it references.
	man, err := readManifest(s.fs, dir)
	if err != nil {
		return nil, err
	}
	if man.Dims != 0 && man.Dims != dims {
		return nil, fmt.Errorf("store: manifest has dims %d, want %d", man.Dims, dims)
	}
	man.Dims = dims
	restored := make([]core.RestoredShard, 0, len(man.Shards))
	tailLo := man.Base // absolute: rows below Base were retired before this open
	s.base = man.Base
	for _, e := range man.Shards {
		if e.Lo != tailLo {
			return nil, fmt.Errorf("store: manifest shard [%d,%d) is not contiguous with previous end %d", e.Lo, e.Hi, tailLo)
		}
		sh, err := loadShard(s.fs, dir, e, dims)
		if err != nil {
			return nil, fmt.Errorf("store: loading checkpointed shard [%d,%d): %w", e.Lo, e.Hi, err)
		}
		restored = append(restored, sh)
		tailLo = e.Hi
		s.stats.RestoredRows += e.Hi - e.Lo
		s.stats.RestoredShards++
	}
	s.man = man
	// Sweep crash leftovers before anything new is written: a checkpoint or
	// compaction that died before its manifest rename leaves synced pages
	// files no manifest references, and they would otherwise accumulate
	// silently forever.
	s.gcRetired()

	// 2. Rebuild the engine over the checkpointed history — no WAL replay
	// for sealed rows. The lifecycle hooks queue newly sealed, compacted and
	// retired ranges for the checkpointer (including events re-fired during
	// tail replay below).
	so := opts.Shard
	so.OnSeal = s.onSeal
	so.OnCompact = s.onCompact
	so.OnRetire = s.onRetire
	eng, err := core.RestoreLiveShardedEngine(dims, opts.Engine, opts.Live, so, restored)
	if err != nil {
		return nil, err
	}
	s.eng = eng

	// 3. Repair and open the tail WAL, then replay rows past the
	// checkpoint boundary through the normal append path.
	walDir := filepath.Join(dir, "wal")
	wopts := wal.Options{FS: opts.FS, Sync: opts.Sync, SyncEvery: opts.SyncEvery, SegmentSize: opts.SegmentSize, Base: uint64(tailLo)}
	log, err := wal.Open(walDir, wopts)
	if err != nil {
		return nil, err
	}
	if log.Next() < uint64(tailLo) {
		// The WAL ends before the checkpointed history does (corruption
		// truncated into sealed rows, or the directory was lost). The
		// sealed rows are safe in checkpoints; restart the log at the
		// checkpoint boundary so LSNs and row indexes stay aligned.
		s.logf("store: wal ends at %d, behind checkpoint boundary %d; resetting", log.Next(), tailLo)
		if err := resetWAL(log, s.fs, walDir, wopts); err != nil {
			return nil, err
		}
		if log, err = wal.Open(walDir, wopts); err != nil {
			return nil, err
		}
		s.stats.WALReset = true
	}
	s.log = log
	err = log.Replay(uint64(tailLo), func(lsn uint64, t int64, attrs []float64) error {
		if uint64(s.base+s.eng.Len()) != lsn {
			return fmt.Errorf("store: replay desync: wal lsn %d, engine at row %d of base %d", lsn, s.eng.Len(), s.base)
		}
		if _, _, err := s.eng.Append(t, attrs); err != nil {
			return fmt.Errorf("store: replaying lsn %d: %w", lsn, err)
		}
		s.stats.ReplayedRows++
		return nil
	})
	if err != nil {
		log.Close()
		return nil, err
	}
	if got, want := uint64(s.base+s.eng.Len()), s.log.Next(); got != want {
		log.Close()
		return nil, fmt.Errorf("store: after replay engine has %d absolute rows but wal resumes at %d", got, want)
	}
	if ds := s.eng.Dataset(); ds.Len() > 0 {
		s.lastTime = ds.Time(ds.Len() - 1)
		s.hasRows = true
	}
	if s.stats.RestoredRows+s.stats.ReplayedRows > 0 {
		s.logf("store: recovered %d rows (%d from %d checkpointed shards, %d replayed from wal)",
			s.stats.RestoredRows+s.stats.ReplayedRows, s.stats.RestoredRows, s.stats.RestoredShards, s.stats.ReplayedRows)
	}

	// 4. Rebuild the standing-query registry at the recovered prefix and
	// restore the manifest's durable registrations (detached, awaiting
	// Resume). No appends run yet, so the replay inside each restore sees a
	// quiescent engine.
	s.reg = sub.NewRegistry(s.base + s.eng.Len())
	s.restoreSubs()
	s.reg.SetOnChange(s.markSubsDirty)

	// 5. Start the checkpointer; seals queued during replay drain first.
	s.wg.Add(1)
	go s.checkpointLoop()
	return s, nil
}

// resetWAL discards every segment so a fresh log can start at the
// checkpoint boundary.
func resetWAL(log *wal.Log, fs wal.FS, walDir string, _ wal.Options) error {
	if err := log.Close(); err != nil {
		return err
	}
	names, err := fs.ReadDir(walDir)
	if err != nil {
		return err
	}
	for _, name := range names {
		if err := fs.Remove(filepath.Join(walDir, name)); err != nil {
			return err
		}
	}
	return nil
}

func (s *Store) logf(format string, args ...interface{}) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// enqueue hands one unit of work to the checkpointer. The lifecycle hooks
// run inside the engine's lock, so they only queue; the FIFO order mirrors
// the engine's own state transitions (a compaction's constituent seals are
// always queued — and therefore checkpointed — before the compaction).
func (s *Store) enqueue(w ckptWork) {
	s.ckptMu.Lock()
	s.pending = append(s.pending, w)
	s.ckptMu.Unlock()
	s.cond.Broadcast()
}

// onSeal queues a freshly sealed physical range for checkpointing.
func (s *Store) onSeal(lo, hi int) {
	s.enqueue(ckptWork{kind: workSeal, lo: s.base + lo, hi: s.base + hi})
}

// onCompact queues a merged physical range for its manifest level swap.
func (s *Store) onCompact(lo, hi, level int) {
	s.enqueue(ckptWork{kind: workCompact, lo: s.base + lo, hi: s.base + hi, level: level})
}

// onRetire queues a retired physical range for the manifest base advance.
func (s *Store) onRetire(lo, hi int) {
	s.enqueue(ckptWork{kind: workRetire, lo: s.base + lo, hi: s.base + hi})
}

// Engine returns the underlying live+sharded engine for queries. Appends
// must go through the store.
func (s *Store) Engine() *core.LiveShardedEngine { return s.eng }

// Monitored reports whether the underlying engine runs an online monitor.
// Together with Append it lets a Store stand in wherever a live engine's
// ingestion surface is expected (e.g. wire.LiveIngest), so served appends
// are write-ahead logged.
func (s *Store) Monitored() bool { return s.eng.Monitored() }

// Rebuilds mirrors the engine's index rebuild count (see
// core.LiveShardedEngine.Rebuilds).
func (s *Store) Rebuilds() int { return s.eng.Rebuilds() }

// Stats returns what recovery reconstructed at Open.
func (s *Store) Stats() RecoveryStats { return s.stats }

// Err returns the sticky durability error, if any: once a checkpoint or
// commit fails, the store refuses further appends rather than silently
// diverging from its durable state.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// validate applies the engine's append rules up front, so a row is never
// logged unless the engine is guaranteed to accept it.
func (s *Store) validate(t int64, attrs []float64) error {
	if len(attrs) != s.dims {
		return fmt.Errorf("store: append got %d attrs, want %d", len(attrs), s.dims)
	}
	if s.hasRows && t <= s.lastTime {
		return fmt.Errorf("store: append time %d not increasing past %d", t, s.lastTime)
	}
	return nil
}

// append logs and applies one pre-validated row. Caller holds s.mu.
func (s *Store) appendLocked(t int64, attrs []float64) (monitor.Decision, []monitor.Confirmation, error) {
	if _, err := s.log.Append(t, attrs); err != nil {
		return monitor.Decision{}, nil, err
	}
	dec, confirms, err := s.eng.Append(t, attrs)
	if err != nil {
		// Unreachable: validate() enforced the engine's rules before the
		// row was logged. Diverging here would leave the WAL ahead of the
		// engine, so fail loudly (matching the engine's own desync panic).
		panic(fmt.Sprintf("store: engine rejected a logged row: %v", err))
	}
	s.lastTime, s.hasRows = t, true
	return dec, confirms, nil
}

// Append durably commits one record: the row is framed into the WAL and
// committed under the configured fsync policy before the engine applies it.
// With the monitor enabled, the returned values mirror LiveEngine.Append.
func (s *Store) Append(t int64, attrs []float64) (monitor.Decision, []monitor.Confirmation, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return monitor.Decision{}, nil, wal.ErrClosed
	}
	if s.err != nil {
		return monitor.Decision{}, nil, s.err
	}
	if err := s.validate(t, attrs); err != nil {
		return monitor.Decision{}, nil, err
	}
	dec, confirms, err := s.appendLocked(t, attrs)
	if err != nil {
		return dec, confirms, err
	}
	if err := s.log.Commit(); err != nil {
		// The row reached the engine but its durability is unknown; poison
		// the store so the caller cannot keep acknowledging appends. The
		// registry never observes the row: subscribers must not be told
		// about a row that may not survive a crash.
		s.err = fmt.Errorf("store: wal commit: %w", err)
		return dec, confirms, s.err
	}
	s.observe(t, attrs)
	return dec, confirms, nil
}

// Row is one record of a batch append.
type Row struct {
	T     int64
	Attrs []float64
}

// AppendBatch group-commits rows: every row is framed into the WAL, one
// Commit makes the whole batch durable (one fsync under wal.SyncAlways),
// then the engine applies them. On a validation failure the valid prefix is
// committed and applied, and the error identifies the offending row; the
// returned count is the number of rows actually appended. Decisions carries
// one entry per appended row when the monitor is enabled.
func (s *Store) AppendBatch(rows []Row) (appended int, decs []monitor.Decision, confirms []monitor.Confirmation, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, nil, nil, wal.ErrClosed
	}
	if s.err != nil {
		return 0, nil, nil, s.err
	}
	mon := s.eng.Monitored()
	for i, r := range rows {
		if verr := s.validate(r.T, r.Attrs); verr != nil {
			err = fmt.Errorf("row %d: %w", i, verr)
			break
		}
		dec, conf, aerr := s.appendLocked(r.T, r.Attrs)
		if aerr != nil {
			err = fmt.Errorf("row %d: %w", i, aerr)
			break
		}
		appended++
		if mon {
			decs = append(decs, dec)
			confirms = append(confirms, conf...)
		}
	}
	if cerr := s.log.Commit(); cerr != nil {
		s.err = fmt.Errorf("store: wal commit: %w", cerr)
		return appended, decs, confirms, s.err
	}
	// Only now that the single group commit made the batch durable do
	// subscribers get to see it.
	for _, r := range rows[:appended] {
		s.observe(r.T, r.Attrs)
	}
	return appended, decs, confirms, err
}

// Sync forces everything appended so far onto stable storage, regardless of
// the fsync policy.
func (s *Store) Sync() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return wal.ErrClosed
	}
	return s.log.Sync()
}

// Len returns the number of retained records (rows retired by retention
// before this open are not counted; see Base for the absolute offset).
func (s *Store) Len() int { return s.eng.Len() }

// Base returns the absolute stream row of the engine's physical row 0 —
// 0 unless bounded retention retired history before this open.
func (s *Store) Base() int { return s.base }

// Checkpoints returns the number of sealed shards checkpointed so far.
func (s *Store) Checkpoints() int {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	return s.checkpoints
}

// WaitCheckpoints blocks until every queued seal has been checkpointed (or
// failed; see Err). Tests and orderly shutdown use it.
func (s *Store) WaitCheckpoints() {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	for len(s.pending) > 0 || s.busy {
		s.cond.Wait()
	}
}

// Close drains the checkpointer, waits for background freeze builds, syncs
// the WAL and closes it. The engine remains queryable after Close; appends
// fail.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()

	// No further appends means no further seals; wait for any in-flight
	// compaction chain so its manifest level swaps are queued before the
	// checkpointer drains and exits (a swap missed here is merely redone
	// after the next Open, but shutting down clean avoids the rework).
	s.eng.WaitCompacted()
	close(s.stop)
	s.cond.Broadcast()
	s.wg.Wait()
	s.eng.WaitSealed()
	// Final manifest publish: captures the last acked prefixes and any
	// registration change the checkpointer had not flushed. Skipped when
	// there is nothing subscription-related to record, so stores that never
	// saw a durable subscription keep their historical on-disk layout.
	var perr error
	if len(s.man.Subs) > 0 || len(s.reg.Snapshot()) > 0 || s.man.NextSub != s.reg.NextID() {
		perr = s.publishManifest()
	}
	err := s.log.Close()
	if perr != nil && err == nil {
		err = perr
	}
	s.mu.Lock()
	if s.err != nil && err == nil {
		err = s.err
	}
	s.mu.Unlock()
	return err
}

// checkpointLoop drains sealed ranges — persist shard pages, republish the
// manifest, advance the WAL low-water mark — and republishes the manifest
// when the subscription registration set changes. One unit of work at a
// time, in order; on stop it finishes the queue before exiting.
func (s *Store) checkpointLoop() {
	defer s.wg.Done()
	for {
		s.ckptMu.Lock()
		for len(s.pending) == 0 && !s.subsDirty {
			if s.stopped() {
				s.ckptMu.Unlock()
				return
			}
			// Close broadcasts after closing stop, so this always wakes.
			s.cond.Wait()
		}
		var w ckptWork
		doCkpt := len(s.pending) > 0
		if doCkpt {
			w = s.pending[0]
			s.pending = s.pending[1:]
		}
		// Every manifest write refreshes the registration set, so a queued
		// checkpoint also clears the dirty flag. Cleared before the
		// snapshot is taken: a registration landing mid-write re-dirties
		// and triggers another publish.
		s.subsDirty = false
		s.busy = true
		s.ckptMu.Unlock()

		var err error
		switch {
		case !doCkpt:
			err = s.publishManifest()
		case w.kind == workSeal:
			err = s.checkpoint(w)
		case w.kind == workCompact:
			err = s.compact(w)
		default:
			err = s.retire(w)
		}

		s.ckptMu.Lock()
		s.busy = false
		if err == nil && doCkpt && w.kind == workSeal {
			s.checkpoints++
		}
		s.ckptMu.Unlock()
		s.cond.Broadcast()
		if err != nil {
			if doCkpt {
				s.logf("store: checkpoint work (kind %d) on rows [%d,%d) failed: %v", w.kind, w.lo, w.hi, err)
			} else {
				s.logf("store: persisting subscriptions failed: %v", err)
			}
			s.mu.Lock()
			if s.err == nil {
				s.err = fmt.Errorf("store: checkpoint failed: %w", err)
			}
			s.mu.Unlock()
		}
	}
}

func (s *Store) stopped() bool {
	select {
	case <-s.stop:
		return true
	default:
		return false
	}
}

// notExist reports a missing-file error from any FS implementation.
func notExist(err error) bool { return errors.Is(err, iofs.ErrNotExist) }
