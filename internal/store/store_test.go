package store

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/score"
	"repro/internal/wal"
)

// genRows produces a deterministic strictly-increasing stream of n
// d-dimensional rows with irregular time gaps.
func genRows(rng *rand.Rand, n, d int) []Row {
	rows := make([]Row, n)
	t := int64(0)
	for i := range rows {
		t += 1 + int64(rng.Intn(5))
		attrs := make([]float64, d)
		for j := range attrs {
			attrs[j] = rng.NormFloat64() * 100
		}
		rows[i] = Row{T: t, Attrs: attrs}
	}
	return rows
}

// testOpts builds store options over fs with a small seal threshold so a
// few hundred rows exercise several seal/checkpoint cycles.
func testOpts(fs wal.FS) Options {
	return Options{
		FS:    fs,
		Sync:  wal.SyncAlways,
		Shard: core.LiveShardOptions{SealRows: 64},
	}
}

// assertRows checks that the store holds exactly rows[:m], bit for bit.
func assertRows(t *testing.T, s *Store, rows []Row, m int) {
	t.Helper()
	if got := s.Len(); got != m {
		t.Fatalf("Len = %d, want %d", got, m)
	}
	ds := s.Engine().Dataset()
	for i := 0; i < m; i++ {
		if ds.Time(i) != rows[i].T {
			t.Fatalf("row %d: time %d, want %d", i, ds.Time(i), rows[i].T)
		}
		if !reflect.DeepEqual(ds.Attrs(i), rows[i].Attrs) {
			t.Fatalf("row %d: attrs %v, want %v", i, ds.Attrs(i), rows[i].Attrs)
		}
	}
}

func TestStoreAppendRecoverRoundTrip(t *testing.T) {
	fs := wal.NewMemFS()
	st, err := Open("db", 2, testOpts(fs))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rng := rand.New(rand.NewSource(1))
	rows := genRows(rng, 300, 2)
	for i, r := range rows {
		if _, _, err := st.Append(r.T, r.Attrs); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	st.WaitCheckpoints()
	if st.Checkpoints() == 0 {
		t.Fatal("no checkpoints after 300 rows with SealRows=64")
	}
	assertRows(t, st, rows, 300)
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Recover: sealed shards load from checkpoints, only the tail replays.
	st2, err := Open("db", 2, testOpts(fs))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	stats := st2.Stats()
	sealed := 300 / 64 * 64
	if stats.RestoredRows != sealed {
		t.Fatalf("RestoredRows = %d, want %d (checkpointed shards load in bulk)", stats.RestoredRows, sealed)
	}
	if stats.ReplayedRows != 300-sealed {
		t.Fatalf("ReplayedRows = %d, want %d (only the unsealed tail replays)", stats.ReplayedRows, 300-sealed)
	}
	assertRows(t, st2, rows, 300)

	// Ingestion resumes at the exact next row.
	more := genRowsAfter(rng, rows[len(rows)-1].T, 50, 2)
	for i, r := range more {
		if _, _, err := st2.Append(r.T, r.Attrs); err != nil {
			t.Fatalf("resumed Append %d: %v", i, err)
		}
	}
	all := append(append([]Row(nil), rows...), more...)
	assertRows(t, st2, all, 350)
	if err := st2.Close(); err != nil {
		t.Fatalf("Close 2: %v", err)
	}

	// And a second recovery still agrees.
	st3, err := Open("db", 2, testOpts(fs))
	if err != nil {
		t.Fatalf("recover 2: %v", err)
	}
	defer st3.Close()
	assertRows(t, st3, all, 350)
}

// genRowsAfter continues a stream past time t0.
func genRowsAfter(rng *rand.Rand, t0 int64, n, d int) []Row {
	rows := genRows(rng, n, d)
	for i := range rows {
		rows[i].T += t0
	}
	return rows
}

func TestStoreAppendBatchGroupCommit(t *testing.T) {
	fs := wal.NewMemFS()
	st, err := Open("db", 1, testOpts(fs))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rng := rand.New(rand.NewSource(2))
	rows := genRows(rng, 200, 1)
	n, _, _, err := st.AppendBatch(rows)
	if err != nil || n != 200 {
		t.Fatalf("AppendBatch = %d, %v", n, err)
	}
	// An out-of-order row commits the valid prefix and reports the rest.
	bad := []Row{{T: rows[199].T + 1, Attrs: []float64{1}}, {T: 0, Attrs: []float64{2}}}
	n, _, _, err = st.AppendBatch(bad)
	if err == nil || n != 1 {
		t.Fatalf("AppendBatch with bad row = %d, %v; want 1 appended and an error", n, err)
	}
	if st.Err() != nil {
		t.Fatalf("validation failure must not poison the store: %v", st.Err())
	}
	st.Close()

	st2, err := Open("db", 1, testOpts(fs))
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer st2.Close()
	if st2.Len() != 201 {
		t.Fatalf("recovered Len = %d, want 201", st2.Len())
	}
}

func TestStoreValidation(t *testing.T) {
	st, err := Open("db", 2, testOpts(wal.NewMemFS()))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer st.Close()
	if _, _, err := st.Append(1, []float64{1}); err == nil {
		t.Fatal("wrong dimensionality accepted")
	}
	if _, _, err := st.Append(5, []float64{1, 2}); err != nil {
		t.Fatalf("valid append: %v", err)
	}
	if _, _, err := st.Append(5, []float64{3, 4}); err == nil {
		t.Fatal("non-increasing time accepted")
	}
	if st.Len() != 1 {
		t.Fatalf("Len = %d after one valid append", st.Len())
	}
}

func TestStoreMonitorSurvivesRecovery(t *testing.T) {
	fs := wal.NewMemFS()
	opts := testOpts(fs)
	opts.Live = core.LiveOptions{MonitorK: 2, MonitorTau: 50, MonitorScorer: score.MustLinear(1)}
	st, err := Open("db", 1, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	rows := genRows(rng, 200, 1)
	var liveDecs []bool
	for _, r := range rows[:150] {
		dec, _, err := st.Append(r.T, r.Attrs)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		liveDecs = append(liveDecs, dec.Durable)
	}
	st.WaitCheckpoints()
	st.Close()

	// A parallel uninterrupted store is the reference for post-recovery
	// monitor decisions.
	ref, err := Open("ref", 1, opts)
	if err != nil {
		t.Fatalf("ref Open: %v", err)
	}
	defer ref.Close()
	for _, r := range rows[:150] {
		ref.Append(r.T, r.Attrs)
	}

	st2, err := Open("db", 1, opts)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer st2.Close()
	for _, r := range rows[150:] {
		gotDec, _, err := st2.Append(r.T, r.Attrs)
		if err != nil {
			t.Fatalf("post-recovery Append: %v", err)
		}
		wantDec, _, err := ref.Append(r.T, r.Attrs)
		if err != nil {
			t.Fatalf("ref Append: %v", err)
		}
		if gotDec != wantDec {
			t.Fatalf("monitor decision diverged after recovery at t=%d: got %+v want %+v", r.T, gotDec, wantDec)
		}
	}
}

func TestStoreWALTruncatedAfterCheckpoint(t *testing.T) {
	fs := wal.NewMemFS()
	opts := testOpts(fs)
	opts.SegmentSize = 512 // rotate often so truncation has segments to drop
	st, err := Open("db", 1, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	rng := rand.New(rand.NewSource(4))
	for _, r := range genRows(rng, 500, 1) {
		if _, _, err := st.Append(r.T, r.Attrs); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	st.WaitCheckpoints()
	names, err := fs.ReadDir(filepath.Join("db", "wal"))
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	// 500 rows at SealRows=64 → low-water mark 448; frames are 25 bytes so
	// dozens of 512-byte segments were written. Truncation must have
	// dropped all but the ones holding rows >= 448.
	if len(names) > 5 {
		t.Fatalf("wal still holds %d segments after checkpointing: %v", len(names), names)
	}
	st.Close()

	st2, err := Open("db", 1, opts)
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer st2.Close()
	if st2.Len() != 500 {
		t.Fatalf("recovered Len = %d, want 500", st2.Len())
	}
	if st2.Stats().ReplayedRows != 500-448 {
		t.Fatalf("ReplayedRows = %d, want %d", st2.Stats().ReplayedRows, 500-448)
	}
}
