package dbms

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/pagestore"
)

// The catalog persists everything needed to reopen a database: table schema
// and page metadata, and the summary index root and node locations. It lives
// in a chain of raw pages starting at page 0 (reserved at Load time):
//
//	bytes 0..3   magic "DTKC"
//	bytes 4..7   next catalog page id (0 = end of chain)
//	bytes 8..11  payload bytes in this page
//	bytes 12..   payload fragment
//
// The concatenated payload is a little-endian stream:
//
//	u16 version | u16 dims | u64 record count | i64 lastTime
//	u32 nMeta   | nMeta x { u32 page, i64 minT, i64 maxT, u32 slots }
//	i32 indexRoot
//	u32 nLoc    | nLoc x { u32 page, u16 slot }
const (
	catalogMagic   = "DTKC"
	catalogVersion = 1
	catalogHeader  = 12
)

// ErrBadCatalog reports a missing or corrupt catalog page.
var ErrBadCatalog = errors.New("dbms: bad catalog")

func encodeCatalog(db *DB) []byte {
	meta := db.Table.Meta()
	locs := db.Index.Locations()
	buf := make([]byte, 0, 24+24*len(meta)+8+6*len(locs))
	p64 := func(v uint64) { buf = binary.LittleEndian.AppendUint64(buf, v) }
	p32 := func(v uint32) { buf = binary.LittleEndian.AppendUint32(buf, v) }
	p16 := func(v uint16) { buf = binary.LittleEndian.AppendUint16(buf, v) }

	p16(catalogVersion)
	p16(uint16(db.Table.Dims()))
	p64(uint64(db.Table.Len()))
	p64(uint64(db.Table.LastTime()))
	p32(uint32(len(meta)))
	for _, m := range meta {
		p32(uint32(m.ID))
		p64(uint64(m.MinTime))
		p64(uint64(m.MaxTime))
		p32(uint32(m.NumSlots))
	}
	p32(uint32(db.Index.Root()))
	p32(uint32(len(locs)))
	for _, l := range locs {
		p32(uint32(l.Page))
		p16(l.Slot)
	}
	return buf
}

type decodedCatalog struct {
	dims     int
	count    int
	lastTime int64
	meta     []pagestore.PageMeta
	root     int32
	locs     []pagestore.NodeLoc
}

func decodeCatalog(b []byte) (*decodedCatalog, error) {
	off := 0
	need := func(n int) error {
		if off+n > len(b) {
			return fmt.Errorf("%w: truncated payload at %d", ErrBadCatalog, off)
		}
		return nil
	}
	g64 := func() uint64 { v := binary.LittleEndian.Uint64(b[off:]); off += 8; return v }
	g32 := func() uint32 { v := binary.LittleEndian.Uint32(b[off:]); off += 4; return v }
	g16 := func() uint16 { v := binary.LittleEndian.Uint16(b[off:]); off += 2; return v }

	if err := need(24); err != nil {
		return nil, err
	}
	if v := g16(); v != catalogVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadCatalog, v)
	}
	c := &decodedCatalog{}
	c.dims = int(g16())
	c.count = int(g64())
	c.lastTime = int64(g64())
	nMeta := int(g32())
	if err := need(nMeta*24 + 8); err != nil {
		return nil, err
	}
	c.meta = make([]pagestore.PageMeta, nMeta)
	for i := range c.meta {
		c.meta[i] = pagestore.PageMeta{
			ID:      pagestore.PageID(g32()),
			MinTime: int64(g64()),
			MaxTime: int64(g64()),
		}
		c.meta[i].NumSlots = int(g32())
	}
	c.root = int32(g32())
	nLoc := int(g32())
	if err := need(nLoc * 6); err != nil {
		return nil, err
	}
	c.locs = make([]pagestore.NodeLoc, nLoc)
	for i := range c.locs {
		c.locs[i] = pagestore.NodeLoc{Page: pagestore.PageID(g32()), Slot: g16()}
	}
	return c, nil
}

// writeCatalog stores the payload in a chain starting at catalogPage.
func writeCatalog(pool *pagestore.BufferPool, catalogPage pagestore.PageID, payload []byte) error {
	pid := catalogPage
	for first := true; first || len(payload) > 0; first = false {
		f, err := pool.Fetch(pid)
		if err != nil {
			return err
		}
		chunk := len(payload)
		if max := pagestore.PageSize - catalogHeader; chunk > max {
			chunk = max
		}
		copy(f.Data[:4], catalogMagic)
		binary.LittleEndian.PutUint32(f.Data[8:], uint32(chunk))
		copy(f.Data[catalogHeader:], payload[:chunk])
		payload = payload[chunk:]
		var next pagestore.PageID
		if len(payload) > 0 {
			nf, err := pool.Alloc()
			if err != nil {
				pool.Unpin(f, true)
				return err
			}
			next = nf.ID
			pool.Unpin(nf, true)
		}
		binary.LittleEndian.PutUint32(f.Data[4:], uint32(next))
		pool.Unpin(f, true)
		if next == 0 {
			break
		}
		pid = next
	}
	return nil
}

// readCatalog loads and concatenates the catalog chain starting at page 0.
func readCatalog(pool *pagestore.BufferPool) ([]byte, error) {
	var payload []byte
	pid := pagestore.PageID(0)
	for {
		f, err := pool.Fetch(pid)
		if err != nil {
			return nil, err
		}
		if string(f.Data[:4]) != catalogMagic {
			pool.Unpin(f, false)
			return nil, fmt.Errorf("%w: magic mismatch on page %d", ErrBadCatalog, pid)
		}
		next := pagestore.PageID(binary.LittleEndian.Uint32(f.Data[4:]))
		n := int(binary.LittleEndian.Uint32(f.Data[8:]))
		if n > pagestore.PageSize-catalogHeader {
			pool.Unpin(f, false)
			return nil, fmt.Errorf("%w: bad fragment size %d", ErrBadCatalog, n)
		}
		payload = append(payload, f.Data[catalogHeader:catalogHeader+n]...)
		pool.Unpin(f, false)
		if next == 0 {
			return payload, nil
		}
		pid = next
	}
}

// Save persists the catalog so a file-backed database can be reopened with
// Open. All dirty pages are flushed.
func (db *DB) Save() error {
	if err := writeCatalog(db.Pool, db.catalogPage, encodeCatalog(db)); err != nil {
		return err
	}
	return db.Pool.FlushAll()
}

// Open reopens a database previously created with Load(FilePath:...) and
// Save.
func Open(path string, poolPages int) (*DB, error) {
	if poolPages == 0 {
		poolPages = 256
	}
	backing, err := pagestore.OpenFileBacking(path)
	if err != nil {
		return nil, err
	}
	pool := pagestore.NewBufferPool(backing, poolPages)
	payload, err := readCatalog(pool)
	if err != nil {
		backing.Close()
		return nil, err
	}
	cat, err := decodeCatalog(payload)
	if err != nil {
		backing.Close()
		return nil, err
	}
	table, err := pagestore.RestoreTable(pool, cat.dims, cat.meta, cat.count, cat.lastTime)
	if err != nil {
		backing.Close()
		return nil, err
	}
	idx := pagestore.RestoreSummaryIndex(pool, table, cat.root, cat.locs)
	db := &DB{Pool: pool, Table: table, Index: idx, backing: backing}
	if len(cat.meta) > 0 {
		db.minTime = cat.meta[0].MinTime
		db.maxTime = cat.meta[len(cat.meta)-1].MaxTime
	}
	return db, nil
}
