package dbms

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/pagestore"
	"repro/internal/score"
)

func TestSaveOpenRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(211))
	ds := randDS(rng, 12_000, 3, 0)
	path := filepath.Join(t.TempDir(), "durable.db")

	db, err := Load(ds, Options{PoolPages: 32, FilePath: path})
	if err != nil {
		t.Fatal(err)
	}
	s := score.MustLinear(0.2, 0.5, 0.3)
	lo, hi := ds.Span()
	span := hi - lo
	tau := span / 8
	start := hi - span/2

	wantHop, _, err := db.DurableTHop(s, 5, tau, start, hi)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(path, 32)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Table.Len() != ds.Len() || re.Table.Dims() != ds.Dims() {
		t.Fatalf("reopened table: len=%d dims=%d", re.Table.Len(), re.Table.Dims())
	}
	if rlo, rhi := re.Span(); rlo != lo || rhi != hi {
		t.Fatalf("reopened span (%d,%d) want (%d,%d)", rlo, rhi, lo, hi)
	}
	gotHop, _, err := re.DurableTHop(s, 5, tau, start, hi)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotHop, wantHop) {
		t.Fatalf("reopened t-hop answers differ: %d vs %d records", len(gotHop), len(wantHop))
	}
	gotBase, _, err := re.DurableTBase(s, 5, tau, start, hi)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotBase, wantHop) {
		t.Fatal("reopened t-base disagrees")
	}
}

func TestSaveOpenLargeCatalogChain(t *testing.T) {
	// Enough pages that the catalog payload spans multiple chained pages
	// (each heap page meta is 24 bytes; >340 pages exceed one 8 KiB page).
	rng := rand.New(rand.NewSource(212))
	ds := randDS(rng, 120_000, 2, 0)
	path := filepath.Join(t.TempDir(), "big.db")
	db, err := Load(ds, Options{PoolPages: 64, FilePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if db.Table.NumPages() < 340 {
		t.Fatalf("test needs a multi-page catalog; only %d heap pages", db.Table.NumPages())
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	re, err := Open(path, 64)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Table.Len() != ds.Len() {
		t.Fatalf("reopened %d records want %d", re.Table.Len(), ds.Len())
	}
	s := score.MustLinear(1, 1)
	lo, hi := ds.Span()
	got, _, err := re.DurableTHop(s, 3, (hi-lo)/10, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) == 0 {
		t.Fatal("no results after reopen")
	}
}

func TestOpenRejectsCorruptCatalog(t *testing.T) {
	rng := rand.New(rand.NewSource(213))
	ds := randDS(rng, 1000, 2, 0)
	path := filepath.Join(t.TempDir(), "corrupt.db")
	db, err := Load(ds, Options{FilePath: path})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Save(); err != nil {
		t.Fatal(err)
	}
	db.Close()
	// Clobber the catalog magic.
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("XXXX"), 0); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := Open(path, 16); !errors.Is(err, ErrBadCatalog) {
		t.Fatalf("corrupt catalog: %v", err)
	}
}

func TestOpenRejectsMisalignedFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "short.db")
	if err := os.WriteFile(path, make([]byte, 100), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path, 16); err == nil {
		t.Fatal("page-misaligned file must be rejected")
	}
}

func TestCatalogEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(214))
	ds := randDS(rng, 5000, 2, 0)
	db, err := Load(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	payload := encodeCatalog(db)
	cat, err := decodeCatalog(payload)
	if err != nil {
		t.Fatal(err)
	}
	if cat.dims != 2 || cat.count != 5000 {
		t.Fatalf("decoded dims=%d count=%d", cat.dims, cat.count)
	}
	if len(cat.meta) != len(db.Table.Meta()) {
		t.Fatalf("meta %d want %d", len(cat.meta), len(db.Table.Meta()))
	}
	if cat.root != db.Index.Root() || len(cat.locs) != db.Index.NumNodes() {
		t.Fatal("index metadata mismatch")
	}
	// Truncated payloads must fail cleanly, never panic.
	for cut := 0; cut < len(payload); cut += 7 {
		if _, err := decodeCatalog(payload[:cut]); err == nil && cut < len(payload)-1 {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	_ = pagestore.PageSize
}
