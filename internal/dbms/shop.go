package dbms

import (
	"time"

	"repro/internal/blocking"
	"repro/internal/pagestore"
	"repro/internal/score"
)

// DurableSHop runs Score-Hop against the paged engine as a wrapper function
// outside the "stored procedure" layer — exactly the deployment the paper
// suggests for S-Hop (§VI-C footnote: its heap-and-blocking control flow
// suits a client-side wrapper better than a stored procedure). All range
// top-k probes hit the paged summary index through the buffer pool; the
// max-heap, blocking intervals, and visited set live in client memory.
func (db *DB) DurableSHop(s score.Scorer, k int, tau, start, end int64) ([]uint32, Stats, error) {
	before := db.snapshotStats()
	startAt := time.Now()
	queries := 0

	type entry struct {
		items  []pagestore.Item // prefetched top-k of [lo, hi], best first
		pos    int
		lo, hi int64
	}
	better := func(a, b pagestore.Item) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.Time > b.Time
	}
	var heap []*entry
	push := func(e *entry) {
		heap = append(heap, e)
		i := len(heap) - 1
		for i > 0 {
			parent := (i - 1) / 2
			if !better(heap[i].items[heap[i].pos], heap[parent].items[heap[parent].pos]) {
				break
			}
			heap[i], heap[parent] = heap[parent], heap[i]
			i = parent
		}
	}
	pop := func() *entry {
		top := heap[0]
		last := len(heap) - 1
		heap[0] = heap[last]
		heap[last] = nil
		heap = heap[:last]
		i, n := 0, len(heap)
		for {
			l, r, best := 2*i+1, 2*i+2, i
			if l < n && better(heap[l].items[heap[l].pos], heap[best].items[heap[best].pos]) {
				best = l
			}
			if r < n && better(heap[r].items[heap[r].pos], heap[best].items[heap[best].pos]) {
				best = r
			}
			if best == i {
				break
			}
			heap[i], heap[best] = heap[best], heap[i]
			i = best
		}
		return top
	}
	pushSub := func(lo, hi int64) error {
		if lo > hi {
			return nil
		}
		queries++
		items, err := db.Index.TopK(s, k, lo, hi)
		if err != nil {
			return err
		}
		if len(items) > 0 {
			push(&entry{items: items, lo: lo, hi: hi})
		}
		return nil
	}

	subLen := tau
	if subLen < 1 {
		subLen = 1
	}
	for lo := start; lo <= end; lo += subLen {
		hi := lo + subLen - 1
		if hi > end {
			hi = end
		}
		if err := pushSub(lo, hi); err != nil {
			return nil, Stats{}, err
		}
		if hi == end {
			break
		}
	}

	blk := blocking.NewSet(tau)
	visited := make(map[uint32]bool)
	inAnswer := make(map[uint32]bool)
	var res []uint32
	var resTimes []int64
	for len(heap) > 0 {
		e := pop()
		p := e.items[e.pos]
		if blk.Cover(p.Time) < k {
			queries++
			items, err := db.Index.TopK(s, k, p.Time-tau, p.Time)
			if err != nil {
				return nil, Stats{}, err
			}
			if member(items, k, p.Score) {
				if !inAnswer[p.ID] {
					inAnswer[p.ID] = true
					res = append(res, p.ID)
					resTimes = append(resTimes, p.Time)
				}
			} else {
				for _, it := range items {
					if !visited[it.ID] {
						visited[it.ID] = true
						blk.Add(it.Time)
					}
				}
			}
			if err := pushSub(e.lo, p.Time-1); err != nil {
				return nil, Stats{}, err
			}
			if err := pushSub(p.Time+1, e.hi); err != nil {
				return nil, Stats{}, err
			}
		} else if e.pos+1 < len(e.items) {
			e.pos++
			push(e)
		}
		if !visited[p.ID] {
			visited[p.ID] = true
			blk.Add(p.Time)
		}
	}
	// Sort ascending by arrival time (insertion order is score-driven).
	for i := 1; i < len(res); i++ {
		for j := i; j > 0 && resTimes[j] < resTimes[j-1]; j-- {
			res[j], res[j-1] = res[j-1], res[j]
			resTimes[j], resTimes[j-1] = resTimes[j-1], resTimes[j]
		}
	}
	return res, db.diffStats(before, queries, time.Since(startAt)), nil
}
