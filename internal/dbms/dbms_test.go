package dbms

import (
	"math/rand"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/score"
)

func randDS(rng *rand.Rand, n, d, domain int) *data.Dataset {
	b := data.NewBuilder(d, n)
	tt := int64(0)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		tt += int64(1 + rng.Intn(3))
		for j := range row {
			if domain > 0 {
				row[j] = float64(rng.Intn(domain))
			} else {
				row[j] = rng.Float64() * 10
			}
		}
		if err := b.Append(tt, row); err != nil {
			panic(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		panic(err)
	}
	return ds
}

func idsEqual(got []uint32, want []int) bool {
	if len(got) != len(want) {
		return false
	}
	for i := range got {
		if int(got[i]) != want[i] {
			return false
		}
	}
	return true
}

func TestProceduresMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	for trial := 0; trial < 8; trial++ {
		n := 500 + rng.Intn(3000)
		d := 1 + rng.Intn(3)
		domain := 0
		if trial%2 == 0 {
			domain = 5
		}
		ds := randDS(rng, n, d, domain)
		db, err := Load(ds, Options{PoolPages: 16})
		if err != nil {
			t.Fatal(err)
		}
		w := make([]float64, d)
		for j := range w {
			w[j] = rng.Float64()
		}
		s := score.MustLinear(w...)
		lo, hi := ds.Span()
		span := hi - lo
		for q := 0; q < 3; q++ {
			k := 1 + rng.Intn(6)
			tau := rng.Int63n(span + 1)
			start := lo + rng.Int63n(span+1)
			end := start + rng.Int63n(hi-start+1)
			want := core.BruteForce(ds, s, k, tau, start, end, core.LookBack)
			hop, hopStats, err := db.DurableTHop(s, k, tau, start, end)
			if err != nil {
				t.Fatal(err)
			}
			if !idsEqual(hop, want) {
				t.Fatalf("trial %d: t-hop %v want %v (k=%d tau=%d I=[%d,%d])",
					trial, hop, want, k, tau, start, end)
			}
			base, baseStats, err := db.DurableTBase(s, k, tau, start, end)
			if err != nil {
				t.Fatal(err)
			}
			if !idsEqual(base, want) {
				t.Fatalf("trial %d: t-base %v want %v", trial, base, want)
			}
			shop, shopStats, err := db.DurableSHop(s, k, tau, start, end)
			if err != nil {
				t.Fatal(err)
			}
			if !idsEqual(shop, want) {
				t.Fatalf("trial %d: s-hop wrapper %v want %v (k=%d tau=%d I=[%d,%d])",
					trial, shop, want, k, tau, start, end)
			}
			if len(want) > 0 && (hopStats.TopKQueries == 0 || shopStats.TopKQueries == 0) {
				t.Fatal("procedures must issue top-k queries")
			}
			_ = baseStats
		}
		db.Close()
	}
}

func TestTHopReadsFewerPages(t *testing.T) {
	// Pool of 64 frames against ~190 data+index pages: cold data, warm hot
	// index pages — the regime of the paper's §VI-C comparison.
	ds := randDS(rand.New(rand.NewSource(83)), 40_000, 2, 0)
	db, err := Load(ds, Options{PoolPages: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := score.MustLinear(0.5, 0.5)
	lo, hi := ds.Span()
	span := hi - lo
	tau := span / 4
	start := hi - span/2

	db.Pool.DropAll()
	_, hopStats, err := db.DurableTHop(s, 10, tau, start, hi)
	if err != nil {
		t.Fatal(err)
	}
	db.Pool.DropAll()
	_, baseStats, err := db.DurableTBase(s, 10, tau, start, hi)
	if err != nil {
		t.Fatal(err)
	}
	if hopStats.PageReads >= baseStats.PageReads {
		t.Fatalf("t-hop reads (%d) must undercut t-base (%d) on a selective query",
			hopStats.PageReads, baseStats.PageReads)
	}
}

func TestFileBackedLoad(t *testing.T) {
	ds := randDS(rand.New(rand.NewSource(89)), 2000, 2, 0)
	path := filepath.Join(t.TempDir(), "table.db")
	db, err := Load(ds, Options{PoolPages: 8, FilePath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	s := score.MustLinear(1, 1)
	lo, hi := ds.Span()
	tau := (hi - lo) / 5
	got, _, err := db.DurableTHop(s, 3, tau, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	want := core.BruteForce(ds, s, 3, tau, lo, hi, core.LookBack)
	if !idsEqual(got, want) {
		t.Fatalf("file-backed t-hop %v want %v", got, want)
	}
}

func TestLoadValidation(t *testing.T) {
	ds := randDS(rand.New(rand.NewSource(97)), 100, 2, 0)
	db, err := Load(ds, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if lo, hi := db.Span(); lo != ds.Time(0) || hi != ds.Time(ds.Len()-1) {
		t.Fatalf("Span=(%d,%d)", lo, hi)
	}
}
