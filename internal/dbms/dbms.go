// Package dbms implements the paper's DBMS-backed durable top-k procedures
// (§VI-C) against the embedded page-structured engine of package pagestore —
// the offline substitute for the PostgreSQL + PL/Python deployment. T-Hop
// and T-Base run as "stored procedures" whose every data access goes through
// the buffer pool, so elapsed time and page-read counts reproduce the
// Tables IV-VI comparison.
package dbms

import (
	"fmt"
	"time"

	"repro/internal/data"
	"repro/internal/pagestore"
	"repro/internal/score"
)

// Options configures database loading.
type Options struct {
	// PoolPages is the buffer pool capacity in frames (default 256, i.e.
	// 2 MiB — deliberately much smaller than the data to exercise I/O).
	PoolPages int
	// FilePath, when non-empty, stores pages in a file instead of memory.
	FilePath string
}

// DB is a loaded table with its summary index.
type DB struct {
	Pool  *pagestore.BufferPool
	Table *pagestore.Table
	Index *pagestore.SummaryIndex

	backing     pagestore.Backing
	catalogPage pagestore.PageID
	minTime     int64
	maxTime     int64
}

// Stats instruments one stored-procedure invocation.
type Stats struct {
	TopKQueries int
	PageReads   int // buffer pool misses (backing store reads)
	PageHits    int
	Elapsed     time.Duration
}

// Load bulk-loads ds into a fresh table and builds its summary index.
func Load(ds *data.Dataset, opts Options) (*DB, error) {
	if opts.PoolPages == 0 {
		opts.PoolPages = 256
	}
	var backing pagestore.Backing
	if opts.FilePath != "" {
		fb, err := pagestore.NewFileBacking(opts.FilePath)
		if err != nil {
			return nil, err
		}
		backing = fb
	} else {
		backing = pagestore.NewMemBacking()
	}
	pool := pagestore.NewBufferPool(backing, opts.PoolPages)
	// Reserve page 0 for the catalog so Save/Open can find it.
	catFrame, err := pool.Alloc()
	if err != nil {
		return nil, err
	}
	catalogPage := catFrame.ID
	copy(catFrame.Data[:4], catalogMagic)
	pool.Unpin(catFrame, true)
	table, err := pagestore.CreateTable(pool, ds.Dims())
	if err != nil {
		return nil, err
	}
	for i := 0; i < ds.Len(); i++ {
		if err := table.Append(uint32(i), ds.Time(i), ds.Attrs(i)); err != nil {
			return nil, fmt.Errorf("dbms: loading record %d: %w", i, err)
		}
	}
	if err := table.Seal(); err != nil {
		return nil, err
	}
	idx, err := pagestore.BuildSummaryIndex(pool, table)
	if err != nil {
		return nil, err
	}
	if err := pool.FlushAll(); err != nil {
		return nil, err
	}
	lo, hi := ds.Span()
	return &DB{
		Pool: pool, Table: table, Index: idx,
		backing: backing, catalogPage: catalogPage,
		minTime: lo, maxTime: hi,
	}, nil
}

// Close releases the backing store.
func (db *DB) Close() error { return db.backing.Close() }

// Span returns the stored time range.
func (db *DB) Span() (lo, hi int64) { return db.minTime, db.maxTime }

// member reports top-k membership given the window's top-k items.
func member(items []pagestore.Item, k int, sc float64) bool {
	if len(items) < k {
		return true
	}
	return sc >= items[k-1].Score
}

// snapshotStats captures pool counters before a procedure runs.
func (db *DB) snapshotStats() pagestore.PoolStats { return db.Pool.Stats() }

func (db *DB) diffStats(before pagestore.PoolStats, queries int, elapsed time.Duration) Stats {
	after := db.Pool.Stats()
	return Stats{
		TopKQueries: queries,
		PageReads:   after.Reads - before.Reads,
		PageHits:    after.Hits - before.Hits,
		Elapsed:     elapsed,
	}
}

// DurableTHop runs the T-Hop stored procedure: hop along the timeline using
// index-served top-k queries (Algorithm 1 over the paged engine).
func (db *DB) DurableTHop(s score.Scorer, k int, tau, start, end int64) ([]uint32, Stats, error) {
	before := db.snapshotStats()
	startAt := time.Now()
	queries := 0

	var res []uint32
	// Position at the newest record in I.
	cur, curScore, ok, err := db.newestAtOrBefore(end, start, s)
	if err != nil {
		return nil, Stats{}, err
	}
	for ok {
		queries++
		items, err := db.Index.TopK(s, k, cur.Time-tau, cur.Time)
		if err != nil {
			return nil, Stats{}, err
		}
		if member(items, k, curScore) {
			res = append(res, cur.ID)
			cur, curScore, ok, err = db.newestAtOrBefore(cur.Time-1, start, s)
		} else {
			maxT := items[0].Time
			for _, it := range items[1:] {
				if it.Time > maxT {
					maxT = it.Time
				}
			}
			cur, curScore, ok, err = db.newestAtOrBefore(maxT, start, s)
		}
		if err != nil {
			return nil, Stats{}, err
		}
	}
	reverseU32(res)
	return res, db.diffStats(before, queries, time.Since(startAt)), nil
}

// probe is one located record.
type probe struct {
	ID   uint32
	Time int64
}

// newestAtOrBefore returns the newest record with time in [floor, t].
func (db *DB) newestAtOrBefore(t, floor int64, s score.Scorer) (probe, float64, bool, error) {
	var found bool
	var p probe
	var sc float64
	err := db.Table.ScanRangeBackward(floor, t, func(id uint32, tm int64, attrs []float64) bool {
		p = probe{ID: id, Time: tm}
		sc = s.Score(attrs)
		found = true
		return false
	})
	return p, sc, found, err
}

// DurableTBase runs the T-Base stored procedure: a continuous backward
// sliding window over the heap pages with incremental top-k maintenance;
// the top-k is recomputed through the index only when a member expires.
func (db *DB) DurableTBase(s score.Scorer, k int, tau, start, end int64) ([]uint32, Stats, error) {
	before := db.snapshotStats()
	startAt := time.Now()
	queries := 0

	// Collect the records of I newest-first by one backward scan. Holding
	// ids+times only (8 bytes each) mirrors the cursor of the stored
	// procedure without caching attribute payloads.
	type rec struct {
		id uint32
		t  int64
		sc float64
	}
	var recs []rec
	err := db.Table.ScanRangeBackward(start, end, func(id uint32, tm int64, attrs []float64) bool {
		recs = append(recs, rec{id: id, t: tm, sc: s.Score(attrs)})
		return true
	})
	if err != nil {
		return nil, Stats{}, err
	}
	var res []uint32
	var cur []pagestore.Item
	var prevLoT int64
	for i, r := range recs {
		winLo := r.t - tau
		if i == 0 {
			queries++
			cur, err = db.Index.TopK(s, k, winLo, r.t)
		} else {
			expiredID := recs[i-1].id
			if itemsContain(cur, expiredID) {
				queries++
				cur, err = db.Index.TopK(s, k, winLo, r.t)
			} else {
				// Entering records: times in [winLo, prevLoT).
				err = db.Table.ScanRange(winLo, prevLoT-1, func(id uint32, tm int64, attrs []float64) bool {
					cur = offerPaged(cur, k, pagestore.Item{ID: id, Time: tm, Score: s.Score(attrs)})
					return true
				})
			}
		}
		if err != nil {
			return nil, Stats{}, err
		}
		prevLoT = winLo
		if member(cur, k, r.sc) {
			res = append(res, r.id)
		}
	}
	reverseU32(res)
	return res, db.diffStats(before, queries, time.Since(startAt)), nil
}

func itemsContain(items []pagestore.Item, id uint32) bool {
	for _, it := range items {
		if it.ID == id {
			return true
		}
	}
	return false
}

func offerPaged(items []pagestore.Item, k int, it pagestore.Item) []pagestore.Item {
	better := func(a, b pagestore.Item) bool {
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		return a.Time > b.Time
	}
	if len(items) == k && !better(it, items[k-1]) {
		return items
	}
	pos := len(items)
	for pos > 0 && better(it, items[pos-1]) {
		pos--
	}
	if len(items) < k {
		items = append(items, pagestore.Item{})
	}
	copy(items[pos+1:], items[pos:])
	items[pos] = it
	return items
}

func reverseU32(s []uint32) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
