package datagen

import (
	"math"
	"math/rand"

	"repro/internal/data"
)

// Weather synthesizes `days` daily minimum temperatures (one record per
// day-tick, single attribute, degrees Celsius): a seasonal cycle, a slow
// warming trend, AR(1) weather noise, and occasional multi-day cold waves.
// Ranking by the negated temperature turns "coldest temperatures of the past
// 20 years" (the paper's introduction example) into a durable top-k query.
func Weather(seed int64, days int) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := data.NewBuilder(1, days)
	ar := 0.0
	coldWave := 0
	coldDepth := 0.0
	for day := 0; day < days; day++ {
		seasonal := -12 * math.Cos(2*math.Pi*float64(day)/365.25)
		trend := 0.00005 * float64(day) // slow warming
		ar = 0.75*ar + rng.NormFloat64()*2.5
		temp := 4 + seasonal + trend + ar
		if coldWave == 0 && rng.Float64() < 0.002 {
			coldWave = 2 + rng.Intn(6)
			coldDepth = 6 + rng.Float64()*14
		}
		if coldWave > 0 {
			temp -= coldDepth
			coldWave--
		}
		mustAppend(b, int64(day+1), []float64{math.Round(temp*10) / 10})
	}
	return mustBuild(b)
}
