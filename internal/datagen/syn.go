package datagen

import (
	"math"
	"math/rand"

	"repro/internal/data"
)

// IND generates the paper's independent synthetic distribution: n records
// with d attributes drawn uniformly from the unit hypercube, one record per
// time tick.
func IND(seed int64, n, d int) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := data.NewBuilder(d, n)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := range row {
			row[j] = rng.Float64()
		}
		mustAppend(b, int64(i+1), row)
	}
	return mustBuild(b)
}

// ANTI generates the paper's anti-correlated distribution: points drawn from
// the positive orthant of an annulus centred at the origin with inner radius
// 0.8 and outer radius 1 (Fig. 7). Most points are mutually non-dominating,
// inflating every k-skyband. Generalizes to d dimensions by sampling a
// uniform direction in the positive orthant and a radius in [0.8, 1].
func ANTI(seed int64, n, d int) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	b := data.NewBuilder(d, n)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		var norm float64
		for {
			norm = 0
			for j := range row {
				row[j] = math.Abs(rng.NormFloat64())
				norm += row[j] * row[j]
			}
			if norm > 0 {
				break
			}
		}
		norm = math.Sqrt(norm)
		r := 0.8 + 0.2*rng.Float64()
		for j := range row {
			row[j] = row[j] / norm * r
		}
		mustAppend(b, int64(i+1), row)
	}
	return mustBuild(b)
}

// RPM generates data under the random permutation model of §V-A: an
// adversary fixes n distinct scores (here x_i = i+1, only ranks matter) and
// the scores are assigned to arrival slots in uniformly random order. One
// attribute; one record per tick.
func RPM(seed int64, n int) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(n)
	b := data.NewBuilder(1, n)
	for i := 0; i < n; i++ {
		mustAppend(b, int64(i+1), []float64{float64(perm[i] + 1)})
	}
	return mustBuild(b)
}

func mustAppend(b *data.Builder, t int64, row []float64) {
	if err := b.Append(t, row); err != nil {
		panic(err)
	}
}

func mustBuild(b *data.Builder) *data.Dataset {
	ds, err := b.Build()
	if err != nil {
		panic(err)
	}
	return ds
}
