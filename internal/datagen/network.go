package datagen

import (
	"math/rand"

	"repro/internal/data"
)

// NetworkMaxDims is the full dimensionality of the network dataset,
// mirroring the 37 numeric attributes of KDD Cup 1999.
const NetworkMaxDims = 37

// Network synthesizes n connection records with d (up to 37) heavy-tailed
// numeric features — durations, byte counts, rates, error fractions — plus a
// small population of bursty "attack" sessions whose features spike jointly.
// Each column is MinMax-normalized to [0, 1] exactly as the paper normalizes
// KDD Cup 1999 (§VI-A). The first d of the 37 features are kept, matching
// the paper's Network-X construction.
func Network(seed int64, n, d int) *data.Dataset {
	if d < 1 {
		d = 1
	}
	if d > NetworkMaxDims {
		d = NetworkMaxDims
	}
	rng := rand.New(rand.NewSource(seed))

	// Per-feature base shapes, cycled across the 37 columns.
	type shape struct{ mu, sigma, paretoAlpha float64 }
	shapes := make([]shape, NetworkMaxDims)
	for j := range shapes {
		shapes[j] = shape{
			mu:          -1 + 3*rng.Float64(),
			sigma:       0.5 + 1.5*rng.Float64(),
			paretoAlpha: 1.2 + 2*rng.Float64(),
		}
	}

	cols := make([][]float64, d)
	for j := range cols {
		cols[j] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		attack := rng.Float64() < 0.005
		burst := 1.0
		if attack {
			burst = 5 + pareto(rng, 1, 1.5)
		}
		for j := 0; j < d; j++ {
			sh := shapes[j]
			var v float64
			switch j % 4 {
			case 0: // connection duration / latency: lognormal
				v = lognormal(rng, sh.mu, sh.sigma)
			case 1: // transferred bytes: Pareto heavy tail
				v = pareto(rng, 1, sh.paretoAlpha)
			case 2: // counters (logins, accessed hosts): Poisson
				v = float64(poisson(rng, 2+3*rng.Float64()))
			default: // fractions (error rates): Beta-ish via powers
				v = rng.Float64() * rng.Float64()
			}
			if attack && j%3 != 2 {
				v *= burst
			}
			cols[j][i] = v
		}
	}
	// MinMax-normalize every column.
	for j := 0; j < d; j++ {
		lo, hi := cols[j][0], cols[j][0]
		for _, v := range cols[j] {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		span := hi - lo
		if span == 0 {
			span = 1
		}
		for i := range cols[j] {
			cols[j][i] = (cols[j][i] - lo) / span
		}
	}

	b := data.NewBuilder(d, n)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		for j := 0; j < d; j++ {
			row[j] = cols[j][i]
		}
		mustAppend(b, int64(i+1), row)
	}
	return mustBuild(b)
}

// Stocks synthesizes a daily stream of stock observations for the finance
// example: each record is one (ticker, day) pair with attributes
// [P/E ratio, traded volume (normalized), momentum]. P/E follows per-ticker
// geometric random walks with occasional jumps, so durable top-k over a
// look-back window answers "among the top-k P/E for more than tau days".
func Stocks(seed int64, tickers, days int) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	pe := make([]float64, tickers)
	for i := range pe {
		pe[i] = lognormal(rng, 3, 0.4) // around e^3 ~ 20
	}
	b := data.NewBuilder(3, tickers*days)
	row := make([]float64, 3)
	t := int64(1)
	for day := 0; day < days; day++ {
		for s := 0; s < tickers; s++ {
			pe[s] *= lognormal(rng, 0, 0.02)
			if rng.Float64() < 0.002 { // earnings surprise
				pe[s] *= lognormal(rng, 0, 0.3)
			}
			row[0] = pe[s]
			row[1] = pareto(rng, 1, 1.8)
			row[2] = rng.NormFloat64()
			mustAppend(b, t, row)
			t++
		}
	}
	return mustBuild(b)
}
