package datagen

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := IND(7, 500, 3)
	b := IND(7, 500, 3)
	c := IND(8, 500, 3)
	if a.Len() != 500 || b.Len() != 500 {
		t.Fatal("wrong sizes")
	}
	for i := 0; i < a.Len(); i++ {
		for j := 0; j < 3; j++ {
			if a.Attrs(i)[j] != b.Attrs(i)[j] {
				t.Fatal("same seed must reproduce identical data")
			}
		}
	}
	same := true
	for i := 0; i < a.Len() && same; i++ {
		for j := 0; j < 3; j++ {
			if a.Attrs(i)[j] != c.Attrs(i)[j] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds must differ")
	}
}

func TestINDRange(t *testing.T) {
	ds := IND(1, 2000, 4)
	for i := 0; i < ds.Len(); i++ {
		for _, v := range ds.Attrs(i) {
			if v < 0 || v >= 1 {
				t.Fatalf("IND value %v outside [0,1)", v)
			}
		}
	}
}

func TestANTIAnnulus(t *testing.T) {
	for _, d := range []int{2, 3, 5} {
		ds := ANTI(2, 1000, d)
		for i := 0; i < ds.Len(); i++ {
			var norm float64
			for _, v := range ds.Attrs(i) {
				if v < 0 {
					t.Fatalf("ANTI value %v negative", v)
				}
				norm += v * v
			}
			r := math.Sqrt(norm)
			if r < 0.8-1e-9 || r > 1+1e-9 {
				t.Fatalf("ANTI radius %v outside [0.8,1]", r)
			}
		}
	}
}

func TestRPMIsPermutation(t *testing.T) {
	n := 3000
	ds := RPM(3, n)
	seen := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		seen = append(seen, ds.Attrs(i)[0])
	}
	sort.Float64s(seen)
	for i := 0; i < n; i++ {
		if seen[i] != float64(i+1) {
			t.Fatalf("RPM scores are not a permutation of 1..n at rank %d: %v", i, seen[i])
		}
	}
}

func TestNBAConsistency(t *testing.T) {
	ds := NBA(5, 20_000)
	if ds.Dims() != NBAAttrCount {
		t.Fatalf("Dims=%d want %d", ds.Dims(), NBAAttrCount)
	}
	if len(NBAAttrNames) != NBAAttrCount {
		t.Fatal("attr name list out of sync")
	}
	for i := 0; i < ds.Len(); i++ {
		row := ds.Attrs(i)
		for j, v := range row {
			if v < 0 || v != math.Trunc(v) {
				t.Fatalf("record %d attr %s = %v not a non-negative integer", i, NBAAttrNames[j], v)
			}
		}
		if row[NBAReb] != row[NBAOReb]+row[NBADReb] {
			t.Fatalf("record %d: reb %v != oreb %v + dreb %v", i, row[NBAReb], row[NBAOReb], row[NBADReb])
		}
		if row[NBAPoints] != 2*row[NBAFGM]+row[NBAThreePM]+row[NBAFTM] {
			t.Fatalf("record %d: points identity broken", i)
		}
		if row[NBAThreePA] > row[NBAFGA] {
			t.Fatalf("record %d: 3PA %v > FGA %v", i, row[NBAThreePA], row[NBAFGA])
		}
	}
}

func TestNBAThreePointEraTrend(t *testing.T) {
	ds := NBA(11, 60_000)
	n := ds.Len()
	early, late := 0.0, 0.0
	for i := 0; i < n/4; i++ {
		early += ds.Attrs(i)[NBAThreePA]
	}
	for i := 3 * n / 4; i < n; i++ {
		late += ds.Attrs(i)[NBAThreePA]
	}
	if late < 2*early {
		t.Fatalf("three-point volume must rise strongly over eras: early=%v late=%v", early, late)
	}
}

func TestNBASubsets(t *testing.T) {
	for name, dims := range NBASubsets {
		ds, err := NBASubset(name, 1, 5000)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Dims() != len(dims) {
			t.Fatalf("%s: dims=%d want %d", name, ds.Dims(), len(dims))
		}
	}
	if _, err := NBASubset("nba-99", 1, 100); err == nil {
		t.Fatal("unknown subset must fail")
	}
}

func TestNBARandomProjection(t *testing.T) {
	full := NBA(1, 5000)
	proj, dims, err := NBARandomProjection(full, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if proj.Dims() != 5 || len(dims) != 5 {
		t.Fatalf("projection dims=%d", proj.Dims())
	}
	seen := map[int]bool{}
	for _, d := range dims {
		if seen[d] {
			t.Fatal("projection dims must be distinct")
		}
		seen[d] = true
	}
}

func TestNetworkNormalized(t *testing.T) {
	ds := Network(1, 10_000, 12)
	if ds.Dims() != 12 {
		t.Fatalf("Dims=%d", ds.Dims())
	}
	for j := 0; j < ds.Dims(); j++ {
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < ds.Len(); i++ {
			v := ds.Attrs(i)[j]
			if v < -1e-12 || v > 1+1e-12 {
				t.Fatalf("column %d value %v outside [0,1]", j, v)
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if lo > 1e-9 || hi < 1-1e-9 {
			t.Fatalf("column %d not MinMax-normalized: [%v,%v]", j, lo, hi)
		}
	}
}

func TestNetworkDimClamp(t *testing.T) {
	if got := Network(1, 100, 99).Dims(); got != NetworkMaxDims {
		t.Fatalf("dims clamp high: %d", got)
	}
	if got := Network(1, 100, 0).Dims(); got != 1 {
		t.Fatalf("dims clamp low: %d", got)
	}
}

func TestStocks(t *testing.T) {
	ds := Stocks(1, 10, 50)
	if ds.Len() != 500 || ds.Dims() != 3 {
		t.Fatalf("Stocks: len=%d dims=%d", ds.Len(), ds.Dims())
	}
	for i := 0; i < ds.Len(); i++ {
		if ds.Attrs(i)[0] <= 0 {
			t.Fatalf("P/E must stay positive, got %v", ds.Attrs(i)[0])
		}
	}
}

func TestDistributionHelpers(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// Poisson mean approximates lambda for both code paths.
	for _, lambda := range []float64{3, 80} {
		sum := 0.0
		for i := 0; i < 5000; i++ {
			sum += float64(poisson(rng, lambda))
		}
		mean := sum / 5000
		if math.Abs(mean-lambda) > lambda*0.1 {
			t.Fatalf("poisson(%v) mean=%v", lambda, mean)
		}
	}
	if poisson(rng, 0) != 0 {
		t.Fatal("poisson(0) must be 0")
	}
	// Binomial bounds and mean, both code paths.
	for _, n := range []int{20, 500} {
		sum := 0
		for i := 0; i < 3000; i++ {
			v := binomial(rng, n, 0.3)
			if v < 0 || v > n {
				t.Fatalf("binomial out of range: %d", v)
			}
			sum += v
		}
		mean := float64(sum) / 3000
		want := float64(n) * 0.3
		if math.Abs(mean-want) > want*0.1 {
			t.Fatalf("binomial(%d,0.3) mean=%v want %v", n, mean, want)
		}
	}
	if binomial(rng, 10, 0) != 0 || binomial(rng, 10, 1) != 10 {
		t.Fatal("binomial edge probabilities")
	}
	// Pareto respects the scale floor.
	for i := 0; i < 1000; i++ {
		if v := pareto(rng, 2, 1.5); v < 2 {
			t.Fatalf("pareto below scale: %v", v)
		}
	}
	if v := lognormal(rng, 0, 0.5); v <= 0 {
		t.Fatalf("lognormal must be positive: %v", v)
	}
}

func TestWeather(t *testing.T) {
	days := 3652
	ds := Weather(3, days)
	if ds.Len() != days || ds.Dims() != 1 {
		t.Fatalf("Weather: len=%d dims=%d", ds.Len(), ds.Dims())
	}
	// Seasonal cycle: mid-year (day ~182) should be warmer than new year
	// (day ~1) on average across years.
	var winter, summer float64
	years := days / 365
	for y := 0; y < years; y++ {
		winter += ds.Attrs(y * 365)[0]
		summer += ds.Attrs(y*365 + 182)[0]
	}
	if summer/float64(years) < winter/float64(years)+10 {
		t.Fatalf("seasonal cycle missing: winter %.1f summer %.1f", winter/float64(years), summer/float64(years))
	}
	// Values stay in a plausible band.
	for i := 0; i < ds.Len(); i++ {
		v := ds.Attrs(i)[0]
		if v < -60 || v > 45 {
			t.Fatalf("day %d temperature %v out of band", i, v)
		}
	}
}
