// Package datagen synthesizes the workloads of the paper's evaluation
// (§VI-A, Table II): the Syn IND/ANTI distributions (identical definitions),
// NBA-like and KDD-Cup-99-like datasets (substitutes for the unavailable
// real data; see DESIGN.md §2), the random-permutation-model data of the
// expected-complexity analysis (§V), and a stock-quote stream for the
// finance example.
//
// All generators are deterministic in their seed.
package datagen

import (
	"math"
	"math/rand"
)

// poisson draws from Poisson(lambda) by inversion for small lambda and a
// rounded normal approximation for large lambda.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda < 30 {
		l := math.Exp(-lambda)
		k, p := 0, 1.0
		for {
			p *= rng.Float64()
			if p <= l {
				return k
			}
			k++
		}
	}
	v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
	if v < 0 {
		return 0
	}
	return int(math.Round(v))
}

// binomial draws from Binomial(n, p); exact for small n, normal approximation
// for large n.
func binomial(rng *rand.Rand, n int, p float64) int {
	if n <= 0 || p <= 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	if n <= 64 {
		k := 0
		for i := 0; i < n; i++ {
			if rng.Float64() < p {
				k++
			}
		}
		return k
	}
	mu := float64(n) * p
	sd := math.Sqrt(mu * (1 - p))
	v := int(math.Round(mu + sd*rng.NormFloat64()))
	if v < 0 {
		return 0
	}
	if v > n {
		return n
	}
	return v
}

// lognormal draws exp(N(mu, sigma)).
func lognormal(rng *rand.Rand, mu, sigma float64) float64 {
	return math.Exp(mu + sigma*rng.NormFloat64())
}

// pareto draws from a Pareto distribution with scale xm and shape alpha.
func pareto(rng *rand.Rand, xm, alpha float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}
