package datagen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/data"
)

// NBA attribute indices. The 15 numeric box-score attributes mirror the
// paper's NBA dataset schema.
const (
	NBAMinutes = iota
	NBAPoints
	NBAFGM
	NBAFGA
	NBAThreePM
	NBAThreePA
	NBAFTM
	NBAFTA
	NBAOReb
	NBADReb
	NBAReb
	NBAAst
	NBAStl
	NBABlk
	NBATov
	NBAAttrCount
)

// NBAAttrNames lists the attribute names in index order.
var NBAAttrNames = []string{
	"minutes", "points", "fgm", "fga", "3pm", "3pa", "ftm", "fta",
	"oreb", "dreb", "reb", "ast", "stl", "blk", "tov",
}

// NBASubsets maps the paper's derived datasets to attribute index lists:
// NBA-1 (3-pointers made), NBA-2 (points, assists), NBA-3 (+rebounds),
// NBA-5 (+steals, blocks).
var NBASubsets = map[string][]int{
	"nba-1": {NBAThreePM},
	"nba-2": {NBAPoints, NBAAst},
	"nba-3": {NBAPoints, NBAAst, NBAReb},
	"nba-5": {NBAPoints, NBAAst, NBAReb, NBAStl, NBABlk},
}

// nbaPlayer is a latent player profile driving correlated box-score lines.
type nbaPlayer struct {
	scoring  float64 // scoring talent multiplier
	passing  float64
	reb      float64
	defense  float64
	threeAff float64 // affinity for three-point attempts
}

// NBA synthesizes n player-game stat lines with 15 correlated integer
// attributes and era trends (three-point volume rises over time; rebounds
// dip mid-era, echoing the paper's 2002-2010 observation). A substitute for
// the real 1983-2019 box scores, which are not available offline; the
// durable-query-relevant structure — integer ties, positive attribute
// correlation, non-stationarity — is preserved. Times are game-day ticks
// with small random gaps.
func NBA(seed int64, n int) *data.Dataset {
	rng := rand.New(rand.NewSource(seed))
	numPlayers := n / 2000
	if numPlayers < 64 {
		numPlayers = 64
	}
	players := make([]nbaPlayer, numPlayers)
	for i := range players {
		players[i] = nbaPlayer{
			scoring:  lognormal(rng, 0, 0.45),
			passing:  lognormal(rng, 0, 0.6),
			reb:      lognormal(rng, 0, 0.6),
			defense:  lognormal(rng, 0, 0.5),
			threeAff: rng.Float64(),
		}
	}

	b := data.NewBuilder(NBAAttrCount, n)
	row := make([]float64, NBAAttrCount)
	t := int64(1)
	for i := 0; i < n; i++ {
		era := float64(i) / float64(n) // 0 = 1983, 1 = 2019
		p := players[rng.Intn(numPlayers)]

		minutes := 8 + 40*math.Pow(rng.Float64(), 0.7)
		usage := minutes / 48

		threeRate := (0.04 + 0.34*math.Pow(era, 1.4)) * (0.5 + p.threeAff)
		if threeRate > 0.65 {
			threeRate = 0.65
		}
		fga := poisson(rng, usage*(7+13*p.scoring))
		threePA := binomial(rng, fga, threeRate)
		fgm := binomial(rng, fga, 0.46)
		threePM := binomial(rng, threePA, 0.35)
		fta := poisson(rng, usage*(2+4*p.scoring))
		ftm := binomial(rng, fta, 0.76)
		points := 2*fgm + threePM + ftm

		rebEra := 1.0 - 0.28*math.Exp(-((era-0.55)*(era-0.55))/0.02)
		oreb := poisson(rng, usage*(1.2+1.8*p.reb)*rebEra)
		dreb := poisson(rng, usage*(3.2+4.5*p.reb)*rebEra)

		row[NBAMinutes] = math.Round(minutes)
		row[NBAPoints] = float64(points)
		row[NBAFGM] = float64(fgm)
		row[NBAFGA] = float64(fga)
		row[NBAThreePM] = float64(threePM)
		row[NBAThreePA] = float64(threePA)
		row[NBAFTM] = float64(ftm)
		row[NBAFTA] = float64(fta)
		row[NBAOReb] = float64(oreb)
		row[NBADReb] = float64(dreb)
		row[NBAReb] = float64(oreb + dreb)
		row[NBAAst] = float64(poisson(rng, usage*(1.5+5*p.passing)))
		row[NBAStl] = float64(poisson(rng, usage*(0.6+1.2*p.defense)))
		row[NBABlk] = float64(poisson(rng, usage*(0.4+1.4*p.defense)))
		row[NBATov] = float64(poisson(rng, usage*(1.2+1.5*p.scoring)))

		mustAppend(b, t, row)
		t += int64(1 + rng.Intn(2))
	}
	return mustBuild(b)
}

// NBASubset generates the named derived dataset (nba-1, nba-2, nba-3,
// nba-5) by projecting a full NBA generation.
func NBASubset(name string, seed int64, n int) (*data.Dataset, error) {
	dims, ok := NBASubsets[name]
	if !ok {
		return nil, fmt.Errorf("datagen: unknown NBA subset %q", name)
	}
	return NBA(seed, n).Project(dims)
}

// NBARandomProjection projects a full NBA dataset onto d attributes chosen
// uniformly at random — the Fig. 13 workload of 20 random 5-d combinations.
func NBARandomProjection(ds *data.Dataset, seed int64, d int) (*data.Dataset, []int, error) {
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(ds.Dims())[:d]
	proj, err := ds.Project(perm)
	return proj, perm, err
}
