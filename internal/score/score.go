// Package score defines the user-specified scoring functions that rank
// records in durable top-k queries, together with the optional capabilities
// (box upper bounds, monotonicity) that the range top-k index exploits for
// pruning.
//
// The paper's preference-function class is provided concretely:
//
//   - Linear:        f_u(p) = Σ u_i · p.x_i
//   - MonotoneCombo: f_u(p) = Σ u_i · h(p.x_i) for a monotone h (e.g. log)
//   - Cosine:        f_u(p) = (u·p) / (|u||p|)
//
// Any type implementing Scorer can be plugged into the algorithms; the
// building-block index falls back to conservative bounds when the optional
// interfaces are absent.
package score

import (
	"errors"
	"fmt"
	"math"
	"strconv"
)

// Scorer maps a d-dimensional attribute vector to a real-valued score.
// Implementations must be pure: equal inputs yield equal outputs.
type Scorer interface {
	// Score evaluates the function on one attribute vector.
	Score(x []float64) float64
	// Dims returns the expected input dimensionality.
	Dims() int
}

// Bounder is implemented by scorers that can bound their maximum over an
// axis-aligned box lo..hi (componentwise). The bound must satisfy
// UpperBound(lo,hi) >= Score(x) for every lo <= x <= hi. The range top-k
// index uses it for branch-and-bound pruning.
type Bounder interface {
	UpperBound(lo, hi []float64) float64
}

// MonotoneAware is implemented by scorers that can report whether they are
// monotone non-decreasing in every attribute. Monotone scorers admit
// skyline-based pruning and the durable k-skyband candidate index (S-Band).
type MonotoneAware interface {
	IsMonotone() bool
}

// Keyed is implemented by scorers whose scoring behavior can be captured in a
// canonical string: two scorers with equal keys must score every input
// identically (bit for bit). Result caches use the key to recognize repeated
// queries, so an implementation must encode every behavior-affecting
// parameter exactly — weights are rendered from their IEEE-754 bits, never
// through lossy decimal formatting. Scorers that cannot guarantee this (e.g.
// MonotoneCombo, whose transform is an arbitrary function value) must not
// implement it; they simply bypass caching.
type Keyed interface {
	CanonicalKey() string
}

// CanonicalKey returns the canonical cache key of s, or ok=false for scorers
// that do not support canonicalization.
func CanonicalKey(s Scorer) (string, bool) {
	if k, ok := s.(Keyed); ok {
		return k.CanonicalKey(), true
	}
	return "", false
}

// bitsKey renders a weight vector from its exact float64 bit patterns.
func bitsKey(prefix string, w []float64) string {
	buf := make([]byte, 0, len(prefix)+17*len(w))
	buf = append(buf, prefix...)
	for _, v := range w {
		buf = strconv.AppendUint(append(buf, ','), math.Float64bits(v), 16)
	}
	return string(buf)
}

// IsMonotone reports whether s declares itself monotone non-decreasing in
// every attribute. Unknown scorers are conservatively non-monotone.
func IsMonotone(s Scorer) bool {
	if m, ok := s.(MonotoneAware); ok {
		return m.IsMonotone()
	}
	return false
}

// UpperBound returns a valid upper bound of s over the box lo..hi, falling
// back to +Inf for scorers without bounding support.
func UpperBound(s Scorer, lo, hi []float64) float64 {
	if b, ok := s.(Bounder); ok {
		return b.UpperBound(lo, hi)
	}
	return math.Inf(1)
}

// ErrBadWeights reports an invalid preference vector.
var ErrBadWeights = errors.New("score: preference vector must be non-empty and finite")

func validWeights(w []float64) error {
	if len(w) == 0 {
		return ErrBadWeights
	}
	for i, v := range w {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: weight %d is %v", ErrBadWeights, i, v)
		}
	}
	return nil
}

// Linear is the preference function f_u(p) = Σ u_i·p.x_i. It is monotone
// when every weight is non-negative.
type Linear struct {
	w []float64
}

// NewLinear returns a linear scorer with the given preference vector.
// The weights are copied.
func NewLinear(weights []float64) (*Linear, error) {
	if err := validWeights(weights); err != nil {
		return nil, err
	}
	w := make([]float64, len(weights))
	copy(w, weights)
	return &Linear{w: w}, nil
}

// MustLinear is NewLinear that panics on error; for tests and generators.
func MustLinear(weights ...float64) *Linear {
	s, err := NewLinear(weights)
	if err != nil {
		panic(err)
	}
	return s
}

// Weights returns a copy of the preference vector.
func (s *Linear) Weights() []float64 {
	w := make([]float64, len(s.w))
	copy(w, s.w)
	return w
}

// Dims implements Scorer.
func (s *Linear) Dims() int { return len(s.w) }

// Score implements Scorer.
func (s *Linear) Score(x []float64) float64 {
	var sum float64
	for i, w := range s.w {
		sum += w * x[i]
	}
	return sum
}

// UpperBound implements Bounder: the maximum of a linear function over a box
// is attained at the corner selected by the sign of each weight.
func (s *Linear) UpperBound(lo, hi []float64) float64 {
	var sum float64
	for i, w := range s.w {
		if w >= 0 {
			sum += w * hi[i]
		} else {
			sum += w * lo[i]
		}
	}
	return sum
}

// IsMonotone implements MonotoneAware.
func (s *Linear) IsMonotone() bool {
	for _, w := range s.w {
		if w < 0 {
			return false
		}
	}
	return true
}

// String describes the scorer.
func (s *Linear) String() string { return fmt.Sprintf("linear%v", s.w) }

// CanonicalKey implements Keyed: the exact weight bits determine the function.
func (s *Linear) CanonicalKey() string { return bitsKey("lin", s.w) }

// MonotoneCombo is the preference function f_u(p) = Σ u_i·h(p.x_i) for a
// monotone non-decreasing transform h (the paper's example: h = log).
// Weights must be non-negative.
type MonotoneCombo struct {
	w     []float64
	h     func(float64) float64
	hName string
}

// NewMonotoneCombo returns Σ u_i·h(p.x_i). h must be monotone non-decreasing
// over the attribute domain and weights must be non-negative; name is used
// only for diagnostics.
func NewMonotoneCombo(weights []float64, h func(float64) float64, name string) (*MonotoneCombo, error) {
	if err := validWeights(weights); err != nil {
		return nil, err
	}
	for i, v := range weights {
		if v < 0 {
			return nil, fmt.Errorf("%w: weight %d is negative", ErrBadWeights, i)
		}
	}
	if h == nil {
		return nil, errors.New("score: transform h must not be nil")
	}
	w := make([]float64, len(weights))
	copy(w, weights)
	return &MonotoneCombo{w: w, h: h, hName: name}, nil
}

// Log1pCombo returns Σ u_i·log(1+x_i), the paper's log example shifted to be
// defined at zero.
func Log1pCombo(weights []float64) (*MonotoneCombo, error) {
	return NewMonotoneCombo(weights, func(v float64) float64 { return math.Log1p(v) }, "log1p")
}

// Dims implements Scorer.
func (s *MonotoneCombo) Dims() int { return len(s.w) }

// Score implements Scorer.
func (s *MonotoneCombo) Score(x []float64) float64 {
	var sum float64
	for i, w := range s.w {
		sum += w * s.h(x[i])
	}
	return sum
}

// UpperBound implements Bounder: with non-negative weights and monotone h,
// the box maximum is at the upper corner.
func (s *MonotoneCombo) UpperBound(lo, hi []float64) float64 {
	var sum float64
	for i, w := range s.w {
		sum += w * s.h(hi[i])
	}
	return sum
}

// IsMonotone implements MonotoneAware.
func (s *MonotoneCombo) IsMonotone() bool { return true }

// String describes the scorer.
func (s *MonotoneCombo) String() string { return fmt.Sprintf("%s-combo%v", s.hName, s.w) }

// Cosine is the preference function f_u(p) = (u·p)/(|u||p|), i.e. the cosine
// similarity between the preference vector and the record. It is not
// monotone. Bounds assume non-negative attribute values (as produced by
// MinMax normalization) and non-negative weights.
type Cosine struct {
	w    []float64
	norm float64
}

// NewCosine returns a cosine scorer; weights must be non-negative with a
// positive norm.
func NewCosine(weights []float64) (*Cosine, error) {
	if err := validWeights(weights); err != nil {
		return nil, err
	}
	var n float64
	for i, v := range weights {
		if v < 0 {
			return nil, fmt.Errorf("%w: weight %d is negative", ErrBadWeights, i)
		}
		n += v * v
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: zero vector", ErrBadWeights)
	}
	w := make([]float64, len(weights))
	copy(w, weights)
	return &Cosine{w: w, norm: math.Sqrt(n)}, nil
}

// Dims implements Scorer.
func (s *Cosine) Dims() int { return len(s.w) }

// Score implements Scorer. Zero vectors score 0.
func (s *Cosine) Score(x []float64) float64 {
	var dot, nx float64
	for i, w := range s.w {
		dot += w * x[i]
		nx += x[i] * x[i]
	}
	if nx == 0 {
		return 0
	}
	return dot / (s.norm * math.Sqrt(nx))
}

// UpperBound implements Bounder. For boxes in the non-negative orthant the
// dot product is maximized at the upper corner and the vector norm is
// minimized at the lower corner; the ratio bounds the cosine from above,
// clamped at 1 (Cauchy-Schwarz).
func (s *Cosine) UpperBound(lo, hi []float64) float64 {
	var dot, nlo float64
	for i, w := range s.w {
		dot += w * hi[i]
		nlo += lo[i] * lo[i]
	}
	if nlo == 0 {
		return 1
	}
	return math.Min(1, dot/(s.norm*math.Sqrt(nlo)))
}

// IsMonotone implements MonotoneAware: cosine is scale-invariant, hence not
// monotone.
func (s *Cosine) IsMonotone() bool { return false }

// String describes the scorer.
func (s *Cosine) String() string { return fmt.Sprintf("cosine%v", s.w) }

// CanonicalKey implements Keyed.
func (s *Cosine) CanonicalKey() string { return bitsKey("cos", s.w) }

// Single ranks by one attribute: f(p) = p.x_dim. It is the k=1-attribute
// special case used by the NBA-1 style workloads.
type Single struct {
	dim  int
	dims int
}

// NewSingle ranks by attribute dim of d-dimensional records.
func NewSingle(dim, dims int) (*Single, error) {
	if dims <= 0 || dim < 0 || dim >= dims {
		return nil, fmt.Errorf("score: invalid single-attribute scorer dim=%d dims=%d", dim, dims)
	}
	return &Single{dim: dim, dims: dims}, nil
}

// Dims implements Scorer.
func (s *Single) Dims() int { return s.dims }

// Score implements Scorer.
func (s *Single) Score(x []float64) float64 { return x[s.dim] }

// UpperBound implements Bounder.
func (s *Single) UpperBound(lo, hi []float64) float64 { return hi[s.dim] }

// IsMonotone implements MonotoneAware.
func (s *Single) IsMonotone() bool { return true }

// String describes the scorer.
func (s *Single) String() string { return fmt.Sprintf("attr[%d]", s.dim) }

// CanonicalKey implements Keyed.
func (s *Single) CanonicalKey() string { return fmt.Sprintf("single:%d/%d", s.dim, s.dims) }
