package score

import (
	"math"
	"math/rand"
	"testing"
)

// scalarOnly hides every optional capability of the wrapped scorer, forcing
// ScoreFlatRange down the per-record fallback loop.
type scalarOnly struct{ s Scorer }

func (w scalarOnly) Score(x []float64) float64 { return w.s.Score(x) }
func (w scalarOnly) Dims() int                 { return w.s.Dims() }

// adversarialFlat builds a flat row-major attribute array seasoned with the
// IEEE specials every scorer must propagate identically: NaN, ±Inf, -0.0.
func adversarialFlat(rng *rand.Rand, n, d int) []float64 {
	flat := make([]float64, n*d)
	specials := []float64{math.NaN(), math.Inf(1), math.Inf(-1), math.Copysign(0, -1), 0}
	for i := range flat {
		switch rng.Intn(10) {
		case 0:
			flat[i] = specials[rng.Intn(len(specials))]
		default:
			flat[i] = rng.NormFloat64() * 100
		}
	}
	return flat
}

// assertBitIdentical checks ScoreRange against per-record Score bit-for-bit
// over several sub-ranges, including the full range.
func assertBitIdentical(t *testing.T, s Scorer, flat []float64, n, d int) {
	t.Helper()
	bs, ok := s.(BulkScorer)
	if !ok {
		t.Fatalf("%T must implement BulkScorer", s)
	}
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		lo := rng.Intn(n)
		hi := lo + rng.Intn(n-lo) + 1
		if trial == 0 {
			lo, hi = 0, n
		}
		dst := make([]float64, hi-lo)
		bs.ScoreRange(dst, flat, d, lo, hi)
		for i := lo; i < hi; i++ {
			want := s.Score(flat[i*d : (i+1)*d])
			if math.Float64bits(dst[i-lo]) != math.Float64bits(want) {
				t.Fatalf("%T row %d: bulk %v (%#x) != scalar %v (%#x)",
					s, i, dst[i-lo], math.Float64bits(dst[i-lo]), want, math.Float64bits(want))
			}
		}
	}
}

func TestScoreRangeMatchesScore(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range []int{1, 2, 3, 4, 7} {
		n := 300
		flat := adversarialFlat(rng, n, d)
		w := make([]float64, d)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		lin, err := NewLinear(w)
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, lin, flat, n, d)

		pos := make([]float64, d)
		for i := range pos {
			pos[i] = 0.05 + rng.Float64()
		}
		combo, err := Log1pCombo(pos)
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, combo, flat, n, d)

		cos, err := NewCosine(pos)
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, cos, flat, n, d)

		single, err := NewSingle(d-1, d)
		if err != nil {
			t.Fatal(err)
		}
		assertBitIdentical(t, single, flat, n, d)
	}
}

// randIDs draws a non-contiguous id list over [0, n): shuffled, with
// duplicates and repeated runs — the shape of node skyline lists.
func randIDs(rng *rand.Rand, n int) []int32 {
	m := 1 + rng.Intn(2*n/3+1)
	ids := make([]int32, m)
	for i := range ids {
		ids[i] = int32(rng.Intn(n))
	}
	return ids
}

// assertGatherBitIdentical checks ScoreGather against per-record Score
// bit-for-bit over several random id lists, and the GatherViaRange fallback
// against both.
func assertGatherBitIdentical(t *testing.T, s Scorer, flat []float64, n, d int) {
	t.Helper()
	bs, ok := s.(BulkScorer)
	if !ok {
		t.Fatalf("%T must implement BulkScorer", s)
	}
	rng := rand.New(rand.NewSource(19))
	var buf []float64
	for trial := 0; trial < 20; trial++ {
		ids := randIDs(rng, n)
		dst := make([]float64, len(ids))
		bs.ScoreGather(dst, flat, d, ids)
		via := make([]float64, len(ids))
		buf = GatherViaRange(bs, via, flat, d, ids, buf)
		for j, id := range ids {
			want := s.Score(flat[int(id)*d : (int(id)+1)*d])
			if math.Float64bits(dst[j]) != math.Float64bits(want) {
				t.Fatalf("%T id %d: gather %v (%#x) != scalar %v (%#x)",
					s, id, dst[j], math.Float64bits(dst[j]), want, math.Float64bits(want))
			}
			if math.Float64bits(via[j]) != math.Float64bits(want) {
				t.Fatalf("%T id %d: GatherViaRange %v != scalar %v", s, id, via[j], want)
			}
		}
	}
}

// TestScoreGatherMatchesScore is the gather half of the bit-for-bit
// guarantee, over attribute data seasoned with NaN, ±Inf and -0.0 for every
// built-in scorer.
func TestScoreGatherMatchesScore(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range []int{1, 2, 3, 4, 7} {
		n := 300
		flat := adversarialFlat(rng, n, d)
		w := make([]float64, d)
		for i := range w {
			w[i] = rng.NormFloat64()
		}
		lin, err := NewLinear(w)
		if err != nil {
			t.Fatal(err)
		}
		assertGatherBitIdentical(t, lin, flat, n, d)

		pos := make([]float64, d)
		for i := range pos {
			pos[i] = 0.05 + rng.Float64()
		}
		combo, err := Log1pCombo(pos)
		if err != nil {
			t.Fatal(err)
		}
		assertGatherBitIdentical(t, combo, flat, n, d)

		cos, err := NewCosine(pos)
		if err != nil {
			t.Fatal(err)
		}
		assertGatherBitIdentical(t, cos, flat, n, d)

		single, err := NewSingle(d-1, d)
		if err != nil {
			t.Fatal(err)
		}
		assertGatherBitIdentical(t, single, flat, n, d)
	}
}

func TestScoreFlatGatherFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n, d = 100, 3
	flat := adversarialFlat(rng, n, d)
	s := scalarOnly{MustLinear(0.25, -1.5, 3)}
	ids := randIDs(rng, n)
	dst := make([]float64, len(ids))
	ScoreFlatGather(s, dst, flat, d, ids)
	bulk := make([]float64, len(ids))
	ScoreFlatGather(s.s, bulk, flat, d, ids)
	for j, id := range ids {
		want := s.Score(flat[int(id)*d : (int(id)+1)*d])
		if math.Float64bits(dst[j]) != math.Float64bits(want) {
			t.Fatalf("fallback id %d: %v != %v", id, dst[j], want)
		}
		if math.Float64bits(bulk[j]) != math.Float64bits(want) {
			t.Fatalf("bulk id %d: %v != %v", id, bulk[j], want)
		}
	}
}

func TestScoreFlatRangeFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const n, d = 100, 3
	flat := adversarialFlat(rng, n, d)
	s := scalarOnly{MustLinear(0.25, -1.5, 3)}
	dst := make([]float64, n)
	ScoreFlatRange(s, dst, flat, d, 0, n)
	for i := 0; i < n; i++ {
		want := s.Score(flat[i*d : (i+1)*d])
		if math.Float64bits(dst[i]) != math.Float64bits(want) {
			t.Fatalf("fallback row %d: %v != %v", i, dst[i], want)
		}
	}
	// The bulk branch must produce the same values as the fallback.
	bulk := make([]float64, n)
	ScoreFlatRange(s.s, bulk, flat, d, 0, n)
	for i := range bulk {
		if math.Float64bits(bulk[i]) != math.Float64bits(dst[i]) {
			t.Fatalf("bulk/fallback divergence at %d: %v != %v", i, bulk[i], dst[i])
		}
	}
}

func BenchmarkScoreRangeLinear(b *testing.B) {
	const n, d = 4096, 4
	rng := rand.New(rand.NewSource(3))
	flat := make([]float64, n*d)
	for i := range flat {
		flat[i] = rng.Float64()
	}
	s := MustLinear(0.1, 0.2, 0.3, 0.4)
	dst := make([]float64, n)
	b.Run("bulk", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.ScoreRange(dst, flat, d, 0, n)
		}
	})
	b.Run("scalar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ScoreFlatRange(scalarOnly{s}, dst, flat, d, 0, n)
		}
	})
}
