package score

import "math"

// BulkScorer is an optional scorer capability: block-at-a-time evaluation
// over contiguous row-major attribute storage (data.Dataset.FlatAttrs). The
// range top-k leaf scans and the RMQ table build use it to replace one
// interface dispatch plus one row dereference per record with a single tight
// loop over the flat backing array.
type BulkScorer interface {
	// ScoreRange evaluates the scorer on records [lo, hi) of the flat
	// row-major attribute array with stride d: record i's attributes are
	// flat[i*d : (i+1)*d] and its score is written to dst[i-lo]. dst must
	// have length at least hi-lo. The results are bit-for-bit identical to
	// calling Score on each row (same operations in the same order).
	ScoreRange(dst []float64, flat []float64, d, lo, hi int)

	// ScoreGather evaluates the scorer on the (generally non-contiguous)
	// records named by ids: record ids[j]'s attributes are
	// flat[ids[j]*d : (ids[j]+1)*d] and its score is written to dst[j]. dst
	// must have length at least len(ids). Like ScoreRange, results are
	// bit-for-bit identical to calling Score on each row. The tree descent
	// uses it to bulk-score node skylines — id lists, not index ranges —
	// without falling back to per-record interface dispatch.
	// Implementations without a natural gather kernel can defer to
	// GatherViaRange.
	ScoreGather(dst []float64, flat []float64, d int, ids []int32)
}

// ScoreFlatRange scores records [lo, hi) of the flat row-major array into
// dst, dispatching once to BulkScorer when s implements it and falling back
// to a per-record Score loop otherwise.
func ScoreFlatRange(s Scorer, dst, flat []float64, d, lo, hi int) {
	if bs, ok := s.(BulkScorer); ok {
		bs.ScoreRange(dst, flat, d, lo, hi)
		return
	}
	for i := lo; i < hi; i++ {
		dst[i-lo] = s.Score(flat[i*d : (i+1)*d : (i+1)*d])
	}
}

// ScoreFlatGather scores the records named by ids into dst, dispatching once
// to BulkScorer when s implements it and falling back to a per-record Score
// loop otherwise.
func ScoreFlatGather(s Scorer, dst, flat []float64, d int, ids []int32) {
	if bs, ok := s.(BulkScorer); ok {
		bs.ScoreGather(dst, flat, d, ids)
		return
	}
	for j, id := range ids {
		i := int(id)
		dst[j] = s.Score(flat[i*d : (i+1)*d : (i+1)*d])
	}
}

// GatherRows copies the attribute rows named by ids into a contiguous
// row-major buffer: row j of the result is flat[ids[j]*d : (ids[j]+1)*d].
// buf is reused when it has capacity len(ids)*d. It is the building block of
// the gather-into-contiguous-buffer fallback for bulk scorers whose range
// kernel has no natural gather counterpart (see GatherViaRange).
func GatherRows(buf []float64, flat []float64, d int, ids []int32) []float64 {
	n := len(ids) * d
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	for j, id := range ids {
		copy(buf[j*d:(j+1)*d], flat[int(id)*d:(int(id)+1)*d])
	}
	return buf
}

// GatherViaRange implements ScoreGather for any BulkScorer by gathering the
// named rows into the contiguous scratch buffer buf (grown as needed and
// returned for reuse) and bulk-scoring the gathered block with ScoreRange.
// ScoreRange evaluates each row independently with the same operations as
// Score, so the indirection preserves bit-for-bit equality.
func GatherViaRange(bs BulkScorer, dst, flat []float64, d int, ids []int32, buf []float64) []float64 {
	buf = GatherRows(buf, flat, d, ids)
	bs.ScoreRange(dst, buf, d, 0, len(ids))
	return buf
}

// Compile-time checks: every built-in scorer supports bulk evaluation.
var (
	_ BulkScorer = (*Linear)(nil)
	_ BulkScorer = (*MonotoneCombo)(nil)
	_ BulkScorer = (*Cosine)(nil)
	_ BulkScorer = (*Single)(nil)
)

// ScoreRange implements BulkScorer. The common low dimensionalities are
// unrolled so the per-record loop carries no loop-bound dependence on d.
func (s *Linear) ScoreRange(dst []float64, flat []float64, d, lo, hi int) {
	w := s.w
	// The unrolled branches repeat the scalar accumulation sequence
	// (sum starts at 0 and adds one product per dimension) so results stay
	// bit-for-bit identical to Score, including -0.0 and NaN propagation.
	switch len(w) {
	case 1:
		w0 := w[0]
		for i := lo; i < hi; i++ {
			var sum float64
			sum += w0 * flat[i*d]
			dst[i-lo] = sum
		}
	case 2:
		w0, w1 := w[0], w[1]
		for i := lo; i < hi; i++ {
			row := flat[i*d:]
			var sum float64
			sum += w0 * row[0]
			sum += w1 * row[1]
			dst[i-lo] = sum
		}
	case 3:
		w0, w1, w2 := w[0], w[1], w[2]
		for i := lo; i < hi; i++ {
			row := flat[i*d:]
			var sum float64
			sum += w0 * row[0]
			sum += w1 * row[1]
			sum += w2 * row[2]
			dst[i-lo] = sum
		}
	default:
		for i := lo; i < hi; i++ {
			row := flat[i*d : i*d+len(w)]
			var sum float64
			for j, wj := range w {
				sum += wj * row[j]
			}
			dst[i-lo] = sum
		}
	}
}

// ScoreGather implements BulkScorer. Like ScoreRange, the common low
// dimensionalities are unrolled and the accumulation order matches Score.
func (s *Linear) ScoreGather(dst []float64, flat []float64, d int, ids []int32) {
	w := s.w
	switch len(w) {
	case 1:
		w0 := w[0]
		for j, id := range ids {
			var sum float64
			sum += w0 * flat[int(id)*d]
			dst[j] = sum
		}
	case 2:
		w0, w1 := w[0], w[1]
		for j, id := range ids {
			row := flat[int(id)*d:]
			var sum float64
			sum += w0 * row[0]
			sum += w1 * row[1]
			dst[j] = sum
		}
	case 3:
		w0, w1, w2 := w[0], w[1], w[2]
		for j, id := range ids {
			row := flat[int(id)*d:]
			var sum float64
			sum += w0 * row[0]
			sum += w1 * row[1]
			sum += w2 * row[2]
			dst[j] = sum
		}
	default:
		for j, id := range ids {
			row := flat[int(id)*d : int(id)*d+len(w)]
			var sum float64
			for i, wi := range w {
				sum += wi * row[i]
			}
			dst[j] = sum
		}
	}
}

// ScoreRange implements BulkScorer.
func (s *MonotoneCombo) ScoreRange(dst []float64, flat []float64, d, lo, hi int) {
	w, h := s.w, s.h
	for i := lo; i < hi; i++ {
		row := flat[i*d : i*d+len(w)]
		var sum float64
		for j, wj := range w {
			sum += wj * h(row[j])
		}
		dst[i-lo] = sum
	}
}

// ScoreGather implements BulkScorer.
func (s *MonotoneCombo) ScoreGather(dst []float64, flat []float64, d int, ids []int32) {
	w, h := s.w, s.h
	for j, id := range ids {
		row := flat[int(id)*d : int(id)*d+len(w)]
		var sum float64
		for i, wi := range w {
			sum += wi * h(row[i])
		}
		dst[j] = sum
	}
}

// ScoreRange implements BulkScorer.
func (s *Cosine) ScoreRange(dst []float64, flat []float64, d, lo, hi int) {
	w := s.w
	for i := lo; i < hi; i++ {
		row := flat[i*d : i*d+len(w)]
		var dot, nx float64
		for j, wj := range w {
			dot += wj * row[j]
			nx += row[j] * row[j]
		}
		if nx == 0 {
			dst[i-lo] = 0
			continue
		}
		dst[i-lo] = dot / (s.norm * math.Sqrt(nx))
	}
}

// ScoreGather implements BulkScorer.
func (s *Cosine) ScoreGather(dst []float64, flat []float64, d int, ids []int32) {
	w := s.w
	for j, id := range ids {
		row := flat[int(id)*d : int(id)*d+len(w)]
		var dot, nx float64
		for i, wi := range w {
			dot += wi * row[i]
			nx += row[i] * row[i]
		}
		if nx == 0 {
			dst[j] = 0
			continue
		}
		dst[j] = dot / (s.norm * math.Sqrt(nx))
	}
}

// ScoreRange implements BulkScorer.
func (s *Single) ScoreRange(dst []float64, flat []float64, d, lo, hi int) {
	for i := lo; i < hi; i++ {
		dst[i-lo] = flat[i*d+s.dim]
	}
}

// ScoreGather implements BulkScorer.
func (s *Single) ScoreGather(dst []float64, flat []float64, d int, ids []int32) {
	for j, id := range ids {
		dst[j] = flat[int(id)*d+s.dim]
	}
}
