package score

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLinearScore(t *testing.T) {
	s := MustLinear(1, 2, 3)
	if got := s.Score([]float64{1, 1, 1}); got != 6 {
		t.Fatalf("Score=%v want 6", got)
	}
	if s.Dims() != 3 {
		t.Fatalf("Dims=%d want 3", s.Dims())
	}
}

func TestLinearWeightsCopied(t *testing.T) {
	w := []float64{1, 2}
	s, err := NewLinear(w)
	if err != nil {
		t.Fatal(err)
	}
	w[0] = 99
	if got := s.Score([]float64{1, 0}); got != 1 {
		t.Fatalf("scorer must copy weights; Score=%v", got)
	}
	out := s.Weights()
	out[0] = -5
	if got := s.Score([]float64{1, 0}); got != 1 {
		t.Fatal("Weights() must return a copy")
	}
}

func TestLinearMonotonicity(t *testing.T) {
	if !MustLinear(1, 0, 2).IsMonotone() {
		t.Fatal("non-negative weights must be monotone")
	}
	if MustLinear(1, -1).IsMonotone() {
		t.Fatal("negative weight must not be monotone")
	}
}

func TestValidationErrors(t *testing.T) {
	if _, err := NewLinear(nil); err == nil {
		t.Fatal("empty weights must fail")
	}
	if _, err := NewLinear([]float64{math.NaN()}); err == nil {
		t.Fatal("NaN weight must fail")
	}
	if _, err := NewLinear([]float64{math.Inf(1)}); err == nil {
		t.Fatal("Inf weight must fail")
	}
	if _, err := NewCosine([]float64{0, 0}); err == nil {
		t.Fatal("zero cosine vector must fail")
	}
	if _, err := NewCosine([]float64{1, -1}); err == nil {
		t.Fatal("negative cosine weight must fail")
	}
	if _, err := NewMonotoneCombo([]float64{-1}, math.Log1p, "log1p"); err == nil {
		t.Fatal("negative combo weight must fail")
	}
	if _, err := NewMonotoneCombo([]float64{1}, nil, "nil"); err == nil {
		t.Fatal("nil transform must fail")
	}
	if _, err := NewSingle(3, 3); err == nil {
		t.Fatal("out-of-range single dim must fail")
	}
	if _, err := NewSingle(0, 0); err == nil {
		t.Fatal("zero dims must fail")
	}
}

// upperBoundHolds checks UB(lo,hi) >= Score(x) for random x within the box.
func upperBoundHolds(t *testing.T, s Scorer, d int, nonneg bool) {
	t.Helper()
	b, ok := s.(Bounder)
	if !ok {
		t.Fatalf("%T must implement Bounder", s)
	}
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 300; trial++ {
		lo := make([]float64, d)
		hi := make([]float64, d)
		x := make([]float64, d)
		for j := 0; j < d; j++ {
			a, c := rng.Float64()*10, rng.Float64()*10
			if !nonneg {
				a -= 5
				c -= 5
			}
			if a > c {
				a, c = c, a
			}
			lo[j], hi[j] = a, c
			x[j] = a + rng.Float64()*(c-a)
		}
		if sc, ub := s.Score(x), b.UpperBound(lo, hi); sc > ub+1e-9 {
			t.Fatalf("trial %d: Score(%v)=%v exceeds UpperBound(%v,%v)=%v", trial, x, sc, lo, hi, ub)
		}
	}
}

func TestLinearUpperBound(t *testing.T) {
	upperBoundHolds(t, MustLinear(1, -2, 0.5), 3, false)
	upperBoundHolds(t, MustLinear(0.3, 0.7), 2, false)
}

func TestComboUpperBound(t *testing.T) {
	s, err := Log1pCombo([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	upperBoundHolds(t, s, 2, true)
	if !s.IsMonotone() {
		t.Fatal("log combo must be monotone")
	}
}

func TestCosineUpperBound(t *testing.T) {
	s, err := NewCosine([]float64{1, 2, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	upperBoundHolds(t, s, 3, true)
	if s.IsMonotone() {
		t.Fatal("cosine must not be monotone")
	}
}

func TestCosineScoreRange(t *testing.T) {
	s, err := NewCosine([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Score([]float64{2, 2}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("parallel vector must score 1, got %v", got)
	}
	if got := s.Score([]float64{0, 0}); got != 0 {
		t.Fatalf("zero vector must score 0, got %v", got)
	}
	f := func(a, b uint8) bool {
		v := s.Score([]float64{float64(a), float64(b)})
		return v >= -1e-12 && v <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSingleScorer(t *testing.T) {
	s, err := NewSingle(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Score([]float64{9, 4, 7}); got != 4 {
		t.Fatalf("Score=%v want 4", got)
	}
	if !s.IsMonotone() {
		t.Fatal("single-attribute scorer must be monotone")
	}
	if ub := s.UpperBound([]float64{0, 0, 0}, []float64{1, 5, 2}); ub != 5 {
		t.Fatalf("UpperBound=%v want 5", ub)
	}
}

func TestIsMonotoneHelper(t *testing.T) {
	if !IsMonotone(MustLinear(1, 1)) {
		t.Fatal("linear with non-negative weights is monotone")
	}
	type opaque struct{ Scorer }
	if IsMonotone(opaque{MustLinear(1, 1)}) {
		t.Fatal("wrapper without MonotoneAware must be treated as non-monotone")
	}
}

func TestUpperBoundFallback(t *testing.T) {
	type opaque struct{ Scorer }
	ub := UpperBound(opaque{MustLinear(1)}, []float64{0}, []float64{1})
	if !math.IsInf(ub, 1) {
		t.Fatalf("unknown scorer must bound to +Inf, got %v", ub)
	}
}

func TestStrings(t *testing.T) {
	for _, s := range []interface{ String() string }{
		MustLinear(1, 2),
		mustCosine(t),
		mustCombo(t),
	} {
		if s.String() == "" {
			t.Fatalf("%T has empty String()", s)
		}
	}
}

func mustCosine(t *testing.T) *Cosine {
	t.Helper()
	s, err := NewCosine([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func mustCombo(t *testing.T) *MonotoneCombo {
	t.Helper()
	s, err := Log1pCombo([]float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	return s
}
