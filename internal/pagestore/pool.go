package pagestore

import (
	"container/list"
	"errors"
	"fmt"
)

// ErrPoolFull reports that every frame is pinned and none can be evicted.
var ErrPoolFull = errors.New("pagestore: buffer pool exhausted (all frames pinned)")

// PoolStats counts buffer pool traffic. Reads is the number of backing-store
// page reads (cache misses) — the primary cost metric of the DBMS
// experiments.
type PoolStats struct {
	Fetches    int // page requests
	Hits       int // served from memory
	Reads      int // backing reads (misses)
	Writebacks int // dirty evictions + flushes
	Evictions  int
}

// Frame is a pinned in-memory page. Callers must Unpin every fetched frame.
type Frame struct {
	ID    PageID
	Data  []byte // PageSize bytes, aliased by the pool
	pins  int
	dirty bool
	elem  *list.Element
}

// BufferPool caches pages of a Backing with LRU replacement over unpinned
// frames. Not safe for concurrent use.
type BufferPool struct {
	backing  Backing
	capacity int
	frames   map[PageID]*Frame
	lru      *list.List // front = most recently used; holds *Frame
	stats    PoolStats
}

// NewBufferPool wraps backing with a pool of the given frame capacity
// (minimum 4, so multi-page operations can pin simultaneously).
func NewBufferPool(backing Backing, capacity int) *BufferPool {
	if capacity < 4 {
		capacity = 4
	}
	return &BufferPool{
		backing:  backing,
		capacity: capacity,
		frames:   make(map[PageID]*Frame, capacity),
		lru:      list.New(),
	}
}

// Capacity returns the pool's frame capacity.
func (bp *BufferPool) Capacity() int { return bp.capacity }

// Stats returns a copy of the traffic counters.
func (bp *BufferPool) Stats() PoolStats { return bp.stats }

// ResetStats zeroes the traffic counters.
func (bp *BufferPool) ResetStats() { bp.stats = PoolStats{} }

// Backing exposes the wrapped store.
func (bp *BufferPool) Backing() Backing { return bp.backing }

// Fetch pins page id into memory, reading it from the backing store on a
// miss.
func (bp *BufferPool) Fetch(id PageID) (*Frame, error) {
	bp.stats.Fetches++
	if f, ok := bp.frames[id]; ok {
		bp.stats.Hits++
		f.pins++
		bp.lru.MoveToFront(f.elem)
		return f, nil
	}
	f, err := bp.newFrame(id)
	if err != nil {
		return nil, err
	}
	bp.stats.Reads++
	if err := bp.backing.ReadPage(id, f.Data); err != nil {
		bp.dropFrame(f)
		return nil, err
	}
	return f, nil
}

// Alloc creates a new zeroed page in the backing store and pins it.
func (bp *BufferPool) Alloc() (*Frame, error) {
	id, err := bp.backing.Alloc()
	if err != nil {
		return nil, err
	}
	f, err := bp.newFrame(id)
	if err != nil {
		return nil, err
	}
	f.dirty = true
	return f, nil
}

// newFrame reserves a pinned frame for id, evicting if necessary.
func (bp *BufferPool) newFrame(id PageID) (*Frame, error) {
	if len(bp.frames) >= bp.capacity {
		if err := bp.evictOne(); err != nil {
			return nil, err
		}
	}
	f := &Frame{ID: id, Data: make([]byte, PageSize), pins: 1}
	f.elem = bp.lru.PushFront(f)
	bp.frames[id] = f
	return f, nil
}

func (bp *BufferPool) dropFrame(f *Frame) {
	bp.lru.Remove(f.elem)
	delete(bp.frames, f.ID)
}

// evictOne removes the least recently used unpinned frame, writing it back
// when dirty.
func (bp *BufferPool) evictOne() error {
	for e := bp.lru.Back(); e != nil; e = e.Prev() {
		f := e.Value.(*Frame)
		if f.pins > 0 {
			continue
		}
		if f.dirty {
			bp.stats.Writebacks++
			if err := bp.backing.WritePage(f.ID, f.Data); err != nil {
				return err
			}
		}
		bp.stats.Evictions++
		bp.dropFrame(f)
		return nil
	}
	return ErrPoolFull
}

// Unpin releases one pin of f; dirty marks the page modified.
func (bp *BufferPool) Unpin(f *Frame, dirty bool) {
	if f.pins <= 0 {
		panic(fmt.Sprintf("pagestore: unpin of unpinned page %d", f.ID))
	}
	f.pins--
	if dirty {
		f.dirty = true
	}
}

// DropAll flushes and evicts every unpinned frame, simulating a cold cache.
// It returns an error if a writeback fails; pinned frames are left in place.
func (bp *BufferPool) DropAll() error {
	var next *list.Element
	for e := bp.lru.Front(); e != nil; e = next {
		next = e.Next()
		f := e.Value.(*Frame)
		if f.pins > 0 {
			continue
		}
		if f.dirty {
			bp.stats.Writebacks++
			if err := bp.backing.WritePage(f.ID, f.Data); err != nil {
				return err
			}
		}
		bp.dropFrame(f)
	}
	return nil
}

// FlushAll writes every dirty frame back to the backing store.
func (bp *BufferPool) FlushAll() error {
	for _, f := range bp.frames {
		if f.dirty {
			bp.stats.Writebacks++
			if err := bp.backing.WritePage(f.ID, f.Data); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}
