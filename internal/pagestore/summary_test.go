package pagestore

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/data"
	"repro/internal/score"
)

func buildTestDB(t *testing.T, ds *data.Dataset, poolPages int) (*BufferPool, *Table, *SummaryIndex) {
	t.Helper()
	bp := NewBufferPool(NewMemBacking(), poolPages)
	tbl, err := CreateTable(bp, ds.Dims())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.Len(); i++ {
		if err := tbl.Append(uint32(i), ds.Time(i), ds.Attrs(i)); err != nil {
			t.Fatal(err)
		}
	}
	idx, err := BuildSummaryIndex(bp, tbl)
	if err != nil {
		t.Fatal(err)
	}
	return bp, tbl, idx
}

func randDS(rng *rand.Rand, n, d, domain int) *data.Dataset {
	b := data.NewBuilder(d, n)
	tt := int64(0)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		tt += int64(1 + rng.Intn(3))
		for j := range row {
			if domain > 0 {
				row[j] = float64(rng.Intn(domain))
			} else {
				row[j] = rng.Float64() * 10
			}
		}
		if err := b.Append(tt, row); err != nil {
			panic(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		panic(err)
	}
	return ds
}

func naivePagedTopK(ds *data.Dataset, s score.Scorer, k int, t1, t2 int64) []Item {
	var items []Item
	for i := 0; i < ds.Len(); i++ {
		tm := ds.Time(i)
		if tm < t1 || tm > t2 {
			continue
		}
		items = append(items, Item{ID: uint32(i), Time: tm, Score: s.Score(ds.Attrs(i))})
	}
	sort.Slice(items, func(i, j int) bool { return betterItem(items[i], items[j]) })
	if len(items) > k {
		items = items[:k]
	}
	return items
}

func TestSummaryTopKMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 10; trial++ {
		n := 500 + rng.Intn(4000)
		d := 1 + rng.Intn(3)
		domain := 0
		if trial%2 == 0 {
			domain = 7
		}
		ds := randDS(rng, n, d, domain)
		_, _, idx := buildTestDB(t, ds, 64)
		w := make([]float64, d)
		for j := range w {
			w[j] = rng.Float64()
		}
		s := score.MustLinear(w...)
		lo, hi := ds.Span()
		for q := 0; q < 10; q++ {
			k := 1 + rng.Intn(10)
			t1 := lo + rng.Int63n(hi-lo+1)
			t2 := t1 + rng.Int63n(hi-t1+1)
			got, err := idx.TopK(s, k, t1, t2)
			if err != nil {
				t.Fatal(err)
			}
			want := naivePagedTopK(ds, s, k, t1, t2)
			if len(got) != len(want) {
				t.Fatalf("trial %d: %d items want %d", trial, len(got), len(want))
			}
			for i := range got {
				if got[i].ID != want[i].ID || got[i].Score != want[i].Score {
					t.Fatalf("trial %d item %d: got %+v want %+v", trial, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSummaryTopKEdge(t *testing.T) {
	ds := randDS(rand.New(rand.NewSource(67)), 100, 2, 0)
	_, _, idx := buildTestDB(t, ds, 32)
	s := score.MustLinear(1, 1)
	if items, err := idx.TopK(s, 0, 0, 1000); err != nil || items != nil {
		t.Fatalf("k=0: %v %v", items, err)
	}
	if items, err := idx.TopK(s, 5, 100, 50); err != nil || items != nil {
		t.Fatalf("inverted window: %v %v", items, err)
	}
	lo, hi := ds.Span()
	items, err := idx.TopK(s, 1000, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != ds.Len() {
		t.Fatalf("k>n returned %d", len(items))
	}
}

func TestSummaryIndexSmallPool(t *testing.T) {
	// The index must work with a pool barely larger than its pin working
	// set, exercising eviction during both build and query.
	ds := randDS(rand.New(rand.NewSource(71)), 20_000, 2, 0)
	bp, _, idx := buildTestDB(t, ds, 8)
	bp.ResetStats()
	s := score.MustLinear(0.3, 0.7)
	lo, hi := ds.Span()
	items, err := idx.TopK(s, 10, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 10 {
		t.Fatalf("got %d items", len(items))
	}
	if bp.Stats().Reads == 0 {
		t.Fatal("tiny pool must incur backing reads")
	}
}

func TestNodeEncodeDecodeRoundTrip(t *testing.T) {
	n := &summaryNode{
		minT: -5, maxT: 99,
		children: []int32{1, 2, 3},
		mbrLo:    []float64{0.5, -1},
		mbrHi:    []float64{2, 3},
		skyTimes: []int64{7, 9},
		skyAttrs: [][]float64{{1, 2}, {3, 4}},
	}
	buf := make([]byte, PageSize)
	enc := encodeNode(buf, n, 2)
	dec, err := decodeNode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.minT != n.minT || dec.maxT != n.maxT || len(dec.children) != 3 ||
		dec.mbrHi[1] != 3 || dec.skyTimes[1] != 9 || dec.skyAttrs[0][1] != 2 {
		t.Fatalf("round trip mismatch: %+v", dec)
	}
	leaf := &summaryNode{minT: 1, maxT: 2, leafPage: 42, mbrLo: []float64{0}, mbrHi: []float64{1}}
	encLeaf := encodeNode(buf, leaf, 1)
	decLeaf, err := decodeNode(encLeaf)
	if err != nil {
		t.Fatal(err)
	}
	if decLeaf.leafPage != 42 || decLeaf.children != nil {
		t.Fatalf("leaf round trip: %+v", decLeaf)
	}
}

func TestSummaryHighDimensionalFits(t *testing.T) {
	// 37 attributes: node tuples must still fit a page (the sky cap
	// auto-shrinks).
	ds := randDS(rand.New(rand.NewSource(73)), 2000, 37, 0)
	_, _, idx := buildTestDB(t, ds, 128)
	w := make([]float64, 37)
	for j := range w {
		w[j] = 1
	}
	s := score.MustLinear(w...)
	lo, hi := ds.Span()
	items, err := idx.TopK(s, 5, lo, hi)
	if err != nil {
		t.Fatal(err)
	}
	want := naivePagedTopK(ds, s, 5, lo, hi)
	for i := range want {
		if items[i].ID != want[i].ID {
			t.Fatalf("item %d: %+v want %+v", i, items[i], want[i])
		}
	}
}
