// Package pagestore is a small page-structured embedded storage engine: a
// backing store of fixed-size pages, an LRU buffer pool with pin counts and
// I/O statistics, slotted data pages with checksums, a heap table of
// time-ordered record tuples, and a paged hierarchical summary index for
// range top-k queries.
//
// It substitutes for the PostgreSQL backend of the paper's §VI-C: the DBMS
// experiment contrasts linear page scans (T-Base) against index-guided hops
// (T-Hop) inside a page-structured engine, which is exactly the cost
// structure this package reproduces — while additionally exposing page-read
// counts as a hardware-independent metric.
package pagestore

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// PageSize is the fixed page size in bytes (PostgreSQL's default).
const PageSize = 8192

// PageID identifies a page within a backing store.
type PageID uint32

// Backing is a flat array of pages. Implementations need not be safe for
// concurrent use; the buffer pool serializes access.
type Backing interface {
	// ReadPage copies page id into buf (len(buf) == PageSize).
	ReadPage(id PageID, buf []byte) error
	// WritePage copies buf into page id.
	WritePage(id PageID, buf []byte) error
	// Alloc appends a zeroed page and returns its id.
	Alloc() (PageID, error)
	// NumPages returns the number of allocated pages.
	NumPages() int
	// Close releases resources.
	Close() error
}

// ErrPageRange reports an out-of-range page access.
var ErrPageRange = errors.New("pagestore: page id out of range")

// MemBacking is an in-memory Backing.
type MemBacking struct {
	pages [][]byte
}

// NewMemBacking returns an empty in-memory store.
func NewMemBacking() *MemBacking { return &MemBacking{} }

// ReadPage implements Backing.
func (m *MemBacking) ReadPage(id PageID, buf []byte) error {
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: read %d of %d", ErrPageRange, id, len(m.pages))
	}
	copy(buf, m.pages[id])
	return nil
}

// WritePage implements Backing.
func (m *MemBacking) WritePage(id PageID, buf []byte) error {
	if int(id) >= len(m.pages) {
		return fmt.Errorf("%w: write %d of %d", ErrPageRange, id, len(m.pages))
	}
	copy(m.pages[id], buf)
	return nil
}

// Alloc implements Backing.
func (m *MemBacking) Alloc() (PageID, error) {
	m.pages = append(m.pages, make([]byte, PageSize))
	return PageID(len(m.pages) - 1), nil
}

// NumPages implements Backing.
func (m *MemBacking) NumPages() int { return len(m.pages) }

// Close implements Backing.
func (m *MemBacking) Close() error { return nil }

// BlockFile is the random-access file contract FileBacking stores pages
// through. *os.File satisfies it directly; the method set is intentionally
// identical to wal.File, so the WAL's in-memory and fault-injection
// filesystems can back a page store in tests without an import cycle.
type BlockFile interface {
	io.ReaderAt
	io.WriterAt
	Truncate(size int64) error
	Sync() error
	Close() error
}

// FileBacking stores pages in a file.
type FileBacking struct {
	f BlockFile
	n int
}

// NewFileBacking creates (truncating) a file-backed store at path.
func NewFileBacking(path string) (*FileBacking, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	return &FileBacking{f: f}, nil
}

// NewFileBackingOn wraps an already-open file of the given size (in bytes,
// which must be a whole number of pages). The checkpoint layer uses it to
// run page stores over an abstract filesystem; Close closes f.
func NewFileBackingOn(f BlockFile, size int64) (*FileBacking, error) {
	if size%PageSize != 0 {
		return nil, fmt.Errorf("pagestore: size %d is not page-aligned", size)
	}
	return &FileBacking{f: f, n: int(size / PageSize)}, nil
}

// OpenFileBacking opens an existing file-backed store; the file size must be
// a whole number of pages.
func OpenFileBacking(path string) (*FileBacking, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size()%PageSize != 0 {
		f.Close()
		return nil, fmt.Errorf("pagestore: %s size %d is not page-aligned", path, st.Size())
	}
	return &FileBacking{f: f, n: int(st.Size() / PageSize)}, nil
}

// ReadPage implements Backing.
func (fb *FileBacking) ReadPage(id PageID, buf []byte) error {
	if int(id) >= fb.n {
		return fmt.Errorf("%w: read %d of %d", ErrPageRange, id, fb.n)
	}
	_, err := fb.f.ReadAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// WritePage implements Backing.
func (fb *FileBacking) WritePage(id PageID, buf []byte) error {
	if int(id) >= fb.n {
		return fmt.Errorf("%w: write %d of %d", ErrPageRange, id, fb.n)
	}
	_, err := fb.f.WriteAt(buf[:PageSize], int64(id)*PageSize)
	return err
}

// Alloc implements Backing.
func (fb *FileBacking) Alloc() (PageID, error) {
	id := PageID(fb.n)
	if err := fb.f.Truncate(int64(fb.n+1) * PageSize); err != nil {
		return 0, err
	}
	fb.n++
	return id, nil
}

// NumPages implements Backing.
func (fb *FileBacking) NumPages() int { return fb.n }

// Sync flushes written pages to stable storage. The checkpoint layer calls
// it before publishing a manifest that references the file.
func (fb *FileBacking) Sync() error { return fb.f.Sync() }

// Close implements Backing.
func (fb *FileBacking) Close() error { return fb.f.Close() }
