package pagestore

import (
	"errors"
	"fmt"
)

// PageMeta summarizes one heap page for time-range pruning (the role of the
// paper's auxiliary index tables).
type PageMeta struct {
	ID       PageID
	MinTime  int64
	MaxTime  int64
	NumSlots int
}

// Table is a heap file of record tuples in arrival order: page i holds a
// contiguous, time-ascending run of records. Not safe for concurrent use.
type Table struct {
	pool *BufferPool
	dims int
	meta []PageMeta

	cur      *Frame // current fill page, pinned until sealed
	lastTime int64
	count    int
}

// CreateTable starts an empty heap table for d-dimensional records.
func CreateTable(pool *BufferPool, dims int) (*Table, error) {
	if dims < 1 {
		return nil, errors.New("pagestore: table needs at least one attribute")
	}
	return &Table{pool: pool, dims: dims, lastTime: -1 << 62}, nil
}

// Dims returns the attribute dimensionality.
func (t *Table) Dims() int { return t.dims }

// Len returns the number of stored records.
func (t *Table) Len() int { return t.count }

// NumPages returns the number of heap pages (including the fill page).
func (t *Table) NumPages() int {
	n := len(t.meta)
	if t.cur != nil {
		n++
	}
	return n
}

// Meta returns the sealed page summaries (excluding the open fill page).
func (t *Table) Meta() []PageMeta { return t.meta }

// Append stores one record; times must be strictly increasing.
func (t *Table) Append(id uint32, time int64, attrs []float64) error {
	if len(attrs) != t.dims {
		return fmt.Errorf("pagestore: append got %d attrs, want %d", len(attrs), t.dims)
	}
	if time <= t.lastTime {
		return fmt.Errorf("pagestore: append time %d not increasing past %d", time, t.lastTime)
	}
	var buf [4 + 8 + 8*64]byte
	if TupleSize(t.dims) > len(buf) {
		return fmt.Errorf("pagestore: dimensionality %d exceeds tuple buffer", t.dims)
	}
	tuple := EncodeTuple(buf[:], id, time, attrs)
	if t.cur == nil {
		if err := t.openFillPage(); err != nil {
			return err
		}
	}
	if _, ok := SlottedPage(t.cur.Data).Insert(tuple); !ok {
		if err := t.Seal(); err != nil {
			return err
		}
		if err := t.openFillPage(); err != nil {
			return err
		}
		if _, ok := SlottedPage(t.cur.Data).Insert(tuple); !ok {
			return errors.New("pagestore: tuple larger than an empty page")
		}
	}
	t.lastTime = time
	t.count++
	return nil
}

func (t *Table) openFillPage() error {
	f, err := t.pool.Alloc()
	if err != nil {
		return err
	}
	InitSlotted(f.Data)
	t.cur = f
	return nil
}

// Seal closes the current fill page, checksums it, and records its summary.
// Append reopens a fresh page on the next call. Seal is idempotent.
func (t *Table) Seal() error {
	if t.cur == nil {
		return nil
	}
	p := SlottedPage(t.cur.Data)
	n := p.NumSlots()
	if n == 0 {
		t.pool.Unpin(t.cur, false)
		t.cur = nil
		return nil
	}
	attrs := make([]float64, t.dims)
	_, minT := DecodeTuple(p.Tuple(0), attrs)
	_, maxT := DecodeTuple(p.Tuple(n-1), attrs)
	p.SetChecksum()
	t.meta = append(t.meta, PageMeta{ID: t.cur.ID, MinTime: minT, MaxTime: maxT, NumSlots: n})
	t.pool.Unpin(t.cur, true)
	t.cur = nil
	return nil
}

// RestoreTable rebuilds a sealed table handle from persisted metadata; the
// heap pages themselves live in the backing store. The restored table is
// read-only in spirit: further appends continue after lastTime.
func RestoreTable(pool *BufferPool, dims int, meta []PageMeta, count int, lastTime int64) (*Table, error) {
	if dims < 1 {
		return nil, errors.New("pagestore: table needs at least one attribute")
	}
	m := make([]PageMeta, len(meta))
	copy(m, meta)
	return &Table{pool: pool, dims: dims, meta: m, count: count, lastTime: lastTime}, nil
}

// LastTime returns the newest stored arrival time.
func (t *Table) LastTime() int64 { return t.lastTime }

// VisitFunc receives one decoded record; attrs aliases a scratch buffer
// valid only during the call. Returning false stops the scan.
type VisitFunc func(id uint32, time int64, attrs []float64) bool

// ScanRange visits records with time in [t1, t2] in ascending time order,
// fetching only pages whose summary overlaps the range.
func (t *Table) ScanRange(t1, t2 int64, fn VisitFunc) error {
	return t.scan(t1, t2, false, fn)
}

// ScanRangeBackward visits records with time in [t1, t2] in descending time
// order.
func (t *Table) ScanRangeBackward(t1, t2 int64, fn VisitFunc) error {
	return t.scan(t1, t2, true, fn)
}

func (t *Table) scan(t1, t2 int64, backward bool, fn VisitFunc) error {
	if err := t.Seal(); err != nil {
		return err
	}
	attrs := make([]float64, t.dims)
	visitPage := func(pm PageMeta) (bool, error) {
		f, err := t.pool.Fetch(pm.ID)
		if err != nil {
			return false, err
		}
		defer t.pool.Unpin(f, false)
		p := SlottedPage(f.Data)
		if err := p.VerifyChecksum(); err != nil {
			return false, fmt.Errorf("page %d: %w", pm.ID, err)
		}
		n := p.NumSlots()
		for s := 0; s < n; s++ {
			slot := s
			if backward {
				slot = n - 1 - s
			}
			id, tm := DecodeTuple(p.Tuple(slot), attrs)
			if tm < t1 || tm > t2 {
				continue
			}
			if !fn(id, tm, attrs) {
				return false, nil
			}
		}
		return true, nil
	}
	if backward {
		for i := len(t.meta) - 1; i >= 0; i-- {
			pm := t.meta[i]
			if pm.MaxTime < t1 || pm.MinTime > t2 {
				continue
			}
			cont, err := visitPage(pm)
			if err != nil || !cont {
				return err
			}
		}
		return nil
	}
	for _, pm := range t.meta {
		if pm.MaxTime < t1 || pm.MinTime > t2 {
			continue
		}
		cont, err := visitPage(pm)
		if err != nil || !cont {
			return err
		}
	}
	return nil
}
