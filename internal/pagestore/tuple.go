package pagestore

import (
	"encoding/binary"
	"math"
)

// Record tuple encoding (little endian):
//
//	uint32  record id
//	int64   arrival time
//	d x float64 attributes
//
// TupleSize returns the encoded size for d attributes.
func TupleSize(d int) int { return 4 + 8 + 8*d }

// EncodeTuple serializes one record into buf (len >= TupleSize(d)) and
// returns the used prefix.
func EncodeTuple(buf []byte, id uint32, t int64, attrs []float64) []byte {
	binary.LittleEndian.PutUint32(buf[0:], id)
	binary.LittleEndian.PutUint64(buf[4:], uint64(t))
	for i, v := range attrs {
		binary.LittleEndian.PutUint64(buf[12+8*i:], math.Float64bits(v))
	}
	return buf[:TupleSize(len(attrs))]
}

// DecodeTuple deserializes a record tuple; attrs must have the table's
// dimensionality.
func DecodeTuple(b []byte, attrs []float64) (id uint32, t int64) {
	id = binary.LittleEndian.Uint32(b[0:])
	t = int64(binary.LittleEndian.Uint64(b[4:]))
	for i := range attrs {
		attrs[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[12+8*i:]))
	}
	return id, t
}
