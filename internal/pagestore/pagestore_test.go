package pagestore

import (
	"errors"
	"math"
	"math/rand"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestSlottedPageInsertRead(t *testing.T) {
	buf := make([]byte, PageSize)
	InitSlotted(buf)
	p := SlottedPage(buf)
	if p.NumSlots() != 0 {
		t.Fatal("fresh page must be empty")
	}
	tuples := [][]byte{[]byte("alpha"), []byte("b"), []byte("gamma-gamma")}
	for i, tup := range tuples {
		slot, ok := p.Insert(tup)
		if !ok || slot != i {
			t.Fatalf("insert %d: slot=%d ok=%v", i, slot, ok)
		}
	}
	for i, tup := range tuples {
		if got := string(p.Tuple(i)); got != string(tup) {
			t.Fatalf("tuple %d: %q want %q", i, got, tup)
		}
	}
}

func TestSlottedPageFull(t *testing.T) {
	buf := make([]byte, PageSize)
	InitSlotted(buf)
	p := SlottedPage(buf)
	tup := make([]byte, 100)
	inserted := 0
	for {
		if _, ok := p.Insert(tup); !ok {
			break
		}
		inserted++
	}
	// 100B payload + 4B slot entry: at most (8192-8)/104 tuples.
	if inserted == 0 || inserted > (PageSize-slotDirStart)/104 {
		t.Fatalf("inserted %d tuples", inserted)
	}
	// A tuple larger than the whole page must be rejected up front.
	huge := make([]byte, PageSize)
	if _, ok := p.Insert(huge); ok {
		t.Fatal("oversized tuple accepted")
	}
}

func TestSlottedPageFreeSpaceMonotone(t *testing.T) {
	buf := make([]byte, PageSize)
	InitSlotted(buf)
	p := SlottedPage(buf)
	prev := p.FreeSpace()
	for i := 0; i < 50; i++ {
		p.Insert(make([]byte, 32))
		if fs := p.FreeSpace(); fs >= prev {
			t.Fatalf("free space must shrink: %d -> %d", prev, fs)
		} else {
			prev = fs
		}
	}
}

func TestChecksumDetectsCorruption(t *testing.T) {
	buf := make([]byte, PageSize)
	InitSlotted(buf)
	p := SlottedPage(buf)
	p.Insert([]byte("payload"))
	p.SetChecksum()
	if err := p.VerifyChecksum(); err != nil {
		t.Fatalf("clean page failed verification: %v", err)
	}
	buf[PageSize-3] ^= 0xFF // flip a payload byte
	if err := p.VerifyChecksum(); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("corruption not detected: %v", err)
	}
}

func TestTupleRoundTrip(t *testing.T) {
	f := func(id uint32, tm int64, a, b, c float64) bool {
		buf := make([]byte, TupleSize(3))
		EncodeTuple(buf, id, tm, []float64{a, b, c})
		out := make([]float64, 3)
		gid, gt := DecodeTuple(buf, out)
		eq := func(x, y float64) bool {
			return x == y || (math.IsNaN(x) && math.IsNaN(y))
		}
		return gid == id && gt == tm && eq(out[0], a) && eq(out[1], b) && eq(out[2], c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBufferPoolHitsMissesEvictions(t *testing.T) {
	backing := NewMemBacking()
	for i := 0; i < 10; i++ {
		if _, err := backing.Alloc(); err != nil {
			t.Fatal(err)
		}
	}
	bp := NewBufferPool(backing, 4)
	// Touch pages 0..9: all misses, evictions from page 4 on.
	for i := 0; i < 10; i++ {
		f, err := bp.Fetch(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		bp.Unpin(f, false)
	}
	st := bp.Stats()
	if st.Reads != 10 || st.Hits != 0 {
		t.Fatalf("stats after cold pass: %+v", st)
	}
	if st.Evictions != 6 {
		t.Fatalf("evictions=%d want 6", st.Evictions)
	}
	// Pages 6..9 are resident now.
	f, err := bp.Fetch(9)
	if err != nil {
		t.Fatal(err)
	}
	bp.Unpin(f, false)
	if st := bp.Stats(); st.Hits != 1 {
		t.Fatalf("expected a hit, got %+v", st)
	}
}

func TestBufferPoolPinPreventsEviction(t *testing.T) {
	backing := NewMemBacking()
	for i := 0; i < 8; i++ {
		backing.Alloc()
	}
	bp := NewBufferPool(backing, 4)
	var pinned []*Frame
	for i := 0; i < 4; i++ {
		f, err := bp.Fetch(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		pinned = append(pinned, f)
	}
	if _, err := bp.Fetch(5); !errors.Is(err, ErrPoolFull) {
		t.Fatalf("fully pinned pool must refuse: %v", err)
	}
	bp.Unpin(pinned[0], false)
	if _, err := bp.Fetch(5); err != nil {
		t.Fatalf("after unpin, fetch must succeed: %v", err)
	}
}

func TestBufferPoolWriteback(t *testing.T) {
	backing := NewMemBacking()
	id, _ := backing.Alloc()
	backing.Alloc()
	backing.Alloc()
	backing.Alloc()
	backing.Alloc()
	bp := NewBufferPool(backing, 4)
	f, err := bp.Fetch(id)
	if err != nil {
		t.Fatal(err)
	}
	f.Data[0] = 0xAB
	bp.Unpin(f, true)
	// Force eviction of the dirty page.
	for i := 1; i <= 4; i++ {
		g, err := bp.Fetch(PageID(i))
		if err != nil {
			t.Fatal(err)
		}
		bp.Unpin(g, false)
	}
	buf := make([]byte, PageSize)
	if err := backing.ReadPage(id, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 0xAB {
		t.Fatal("dirty page was not written back on eviction")
	}
	if bp.Stats().Writebacks == 0 {
		t.Fatal("writeback not counted")
	}
}

func TestBufferPoolDropAll(t *testing.T) {
	backing := NewMemBacking()
	for i := 0; i < 4; i++ {
		backing.Alloc()
	}
	bp := NewBufferPool(backing, 8)
	for i := 0; i < 4; i++ {
		f, _ := bp.Fetch(PageID(i))
		bp.Unpin(f, i%2 == 0)
	}
	if err := bp.DropAll(); err != nil {
		t.Fatal(err)
	}
	before := bp.Stats().Reads
	f, _ := bp.Fetch(0)
	bp.Unpin(f, false)
	if bp.Stats().Reads != before+1 {
		t.Fatal("DropAll must force a backing read on the next fetch")
	}
}

func TestUnpinPanicsWhenUnpinned(t *testing.T) {
	backing := NewMemBacking()
	backing.Alloc()
	bp := NewBufferPool(backing, 4)
	f, _ := bp.Fetch(0)
	bp.Unpin(f, false)
	defer func() {
		if recover() == nil {
			t.Fatal("double unpin must panic")
		}
	}()
	bp.Unpin(f, false)
}

func TestMemBackingRange(t *testing.T) {
	m := NewMemBacking()
	buf := make([]byte, PageSize)
	if err := m.ReadPage(0, buf); !errors.Is(err, ErrPageRange) {
		t.Fatalf("read past end: %v", err)
	}
	if err := m.WritePage(3, buf); !errors.Is(err, ErrPageRange) {
		t.Fatalf("write past end: %v", err)
	}
}

func TestFileBackingRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "pages.db")
	fb, err := NewFileBacking(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	id, err := fb.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	out := make([]byte, PageSize)
	for i := range out {
		out[i] = byte(i)
	}
	if err := fb.WritePage(id, out); err != nil {
		t.Fatal(err)
	}
	in := make([]byte, PageSize)
	if err := fb.ReadPage(id, in); err != nil {
		t.Fatal(err)
	}
	for i := range in {
		if in[i] != out[i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
	if fb.NumPages() != 1 {
		t.Fatalf("NumPages=%d", fb.NumPages())
	}
}

func TestTableAppendScan(t *testing.T) {
	bp := NewBufferPool(NewMemBacking(), 64)
	tbl, err := CreateTable(bp, 2)
	if err != nil {
		t.Fatal(err)
	}
	n := 5000
	rng := rand.New(rand.NewSource(7))
	times := make([]int64, n)
	tt := int64(0)
	for i := 0; i < n; i++ {
		tt += int64(1 + rng.Intn(3))
		times[i] = tt
		if err := tbl.Append(uint32(i), tt, []float64{float64(i), rng.Float64()}); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Len() != n {
		t.Fatalf("Len=%d", tbl.Len())
	}
	// Forward scan over a sub-range.
	t1, t2 := times[100], times[400]
	var got []uint32
	err = tbl.ScanRange(t1, t2, func(id uint32, tm int64, attrs []float64) bool {
		got = append(got, id)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 301 || got[0] != 100 || got[300] != 400 {
		t.Fatalf("forward scan: %d records, first=%v", len(got), got[0])
	}
	// Backward scan reverses the order.
	var back []uint32
	err = tbl.ScanRangeBackward(t1, t2, func(id uint32, tm int64, attrs []float64) bool {
		back = append(back, id)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 301 || back[0] != 400 || back[300] != 100 {
		t.Fatalf("backward scan: %d records, first=%v", len(back), back[0])
	}
	// Early stop.
	count := 0
	tbl.ScanRange(times[0], times[n-1], func(uint32, int64, []float64) bool {
		count++
		return count < 10
	})
	if count != 10 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestTableValidation(t *testing.T) {
	bp := NewBufferPool(NewMemBacking(), 8)
	if _, err := CreateTable(bp, 0); err == nil {
		t.Fatal("zero dims must fail")
	}
	tbl, err := CreateTable(bp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := tbl.Append(0, 5, []float64{1}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Append(1, 5, []float64{1}); err == nil {
		t.Fatal("non-increasing time must fail")
	}
	if err := tbl.Append(1, 6, []float64{1, 2}); err == nil {
		t.Fatal("wrong arity must fail")
	}
}

func TestTableScanPruning(t *testing.T) {
	bp := NewBufferPool(NewMemBacking(), 1024)
	tbl, _ := CreateTable(bp, 1)
	for i := 0; i < 20000; i++ {
		tbl.Append(uint32(i), int64(i+1), []float64{1})
	}
	tbl.Seal()
	bp.ResetStats()
	// A narrow range must touch very few pages.
	tbl.ScanRange(500, 600, func(uint32, int64, []float64) bool { return true })
	st := bp.Stats()
	if st.Fetches > 3 {
		t.Fatalf("narrow scan fetched %d pages; pruning broken", st.Fetches)
	}
}

func TestSealIdempotent(t *testing.T) {
	bp := NewBufferPool(NewMemBacking(), 8)
	tbl, _ := CreateTable(bp, 1)
	tbl.Append(0, 1, []float64{1})
	if err := tbl.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Seal(); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Meta()) != 1 {
		t.Fatalf("double seal produced %d metas", len(tbl.Meta()))
	}
	// Appending after a seal opens a fresh page.
	if err := tbl.Append(1, 2, []float64{2}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Seal(); err != nil {
		t.Fatal(err)
	}
	if len(tbl.Meta()) != 2 {
		t.Fatalf("want 2 pages after reopen, got %d", len(tbl.Meta()))
	}
}

func TestRestoreTableValidation(t *testing.T) {
	bp := NewBufferPool(NewMemBacking(), 8)
	if _, err := RestoreTable(bp, 0, nil, 0, 0); err == nil {
		t.Fatal("zero dims must fail")
	}
	tbl, err := RestoreTable(bp, 2, []PageMeta{{ID: 1, MinTime: 5, MaxTime: 9}}, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 3 || tbl.LastTime() != 9 || len(tbl.Meta()) != 1 {
		t.Fatalf("restored table wrong: %+v", tbl)
	}
}
