package pagestore

import (
	"errors"
	"testing"

	"repro/internal/wal"
	"repro/internal/wal/faultfs"
)

// buildTableOn writes a sealed one-dimensional table of n rows into the file
// named name on fs, returning the metadata RestoreTable needs.
func buildTableOn(t *testing.T, fs wal.FS, name string, n int) (meta []PageMeta, lastTime int64) {
	t.Helper()
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := NewFileBackingOn(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	pool := NewBufferPool(fb, 8)
	tbl, err := CreateTable(pool, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := tbl.Append(uint32(i), int64(i+1), []float64{float64(i)}); err != nil {
			t.Fatalf("Append %d: %v", i, err)
		}
	}
	if err := tbl.Seal(); err != nil {
		t.Fatal(err)
	}
	if err := pool.FlushAll(); err != nil {
		t.Fatal(err)
	}
	if err := fb.Sync(); err != nil {
		t.Fatal(err)
	}
	return tbl.Meta(), tbl.LastTime()
}

// reopenTable restores the table from name on fs and scans it fully.
func reopenTable(fs wal.FS, name string, meta []PageMeta, n int, lastTime int64) (rows int, err error) {
	size, err := fs.Size(name)
	if err != nil {
		return 0, err
	}
	f, err := fs.Open(name)
	if err != nil {
		return 0, err
	}
	fb, err := NewFileBackingOn(f, size)
	if err != nil {
		return 0, err
	}
	defer fb.Close()
	tbl, err := RestoreTable(NewBufferPool(fb, 8), 1, meta, n, lastTime)
	if err != nil {
		return 0, err
	}
	err = tbl.ScanRange(0, int64(n)+1, func(uint32, int64, []float64) bool {
		rows++
		return true
	})
	return rows, err
}

// TestFileBackingDetectsBitFlip: a single flipped bit in a durable page file
// must surface as ErrCorruptPage on the next scan, never as wrong data.
func TestFileBackingDetectsBitFlip(t *testing.T) {
	const n = 600 // several 8 KiB pages of 16-byte tuples
	fs := faultfs.New(wal.NewMemFS())
	meta, lastTime := buildTableOn(t, fs, "pages", n)

	if rows, err := reopenTable(fs, "pages", meta, n, lastTime); err != nil || rows != n {
		t.Fatalf("clean reopen: %d rows, %v", rows, err)
	}
	// Flip one payload bit in the middle of the second page.
	fs.FlipBit("pages", PageSize+PageSize/2, 0x10)
	if _, err := reopenTable(fs, "pages", meta, n, lastTime); !errors.Is(err, ErrCorruptPage) {
		t.Fatalf("scan over flipped bit: %v, want ErrCorruptPage", err)
	}
}

// TestFileBackingShortFileReopen: reopening a page file that lost its tail
// (torn at a non-page boundary) fails cleanly in the scan, not with a panic
// or silent truncation.
func TestFileBackingShortFileReopen(t *testing.T) {
	const n = 600
	fs := wal.NewMemFS()
	meta, lastTime := buildTableOn(t, fs, "pages", n)
	size, err := fs.Size("pages")
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Open("pages")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(size - PageSize - 100); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// The raw size is no longer page-aligned: the straight reopen fails its
	// alignment check.
	if _, err := reopenTable(fs, "pages", meta, n, lastTime); err == nil {
		t.Fatal("reopen of unaligned torn file succeeded")
	}

	// Even aligned down to whole pages, the scan must fail — the metadata
	// references pages beyond the torn end — rather than silently shrink.
	short, err := fs.Size("pages")
	if err != nil {
		t.Fatal(err)
	}
	aligned := short - short%PageSize
	f2, err := fs.Open("pages")
	if err != nil {
		t.Fatal(err)
	}
	fb, err := NewFileBackingOn(f2, aligned)
	if err != nil {
		t.Fatal(err)
	}
	defer fb.Close()
	tbl, err := RestoreTable(NewBufferPool(fb, 8), 1, meta, n, lastTime)
	if err == nil {
		err = tbl.ScanRange(0, int64(n)+1, func(uint32, int64, []float64) bool { return true })
	}
	if !errors.Is(err, ErrPageRange) {
		t.Fatalf("scan of aligned torn file: %v, want ErrPageRange", err)
	}
}

// TestFileBackingWriteFailures: injected write and allocation failures
// propagate out of WritePage/Alloc instead of being swallowed.
func TestFileBackingWriteFailures(t *testing.T) {
	fs := faultfs.New(wal.NewMemFS())
	f, err := fs.Create("pages")
	if err != nil {
		t.Fatal(err)
	}
	fb, err := NewFileBackingOn(f, 0)
	if err != nil {
		t.Fatal(err)
	}
	id, err := fb.Alloc()
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, PageSize)

	fs.FailWrites("pages", faultfs.ErrInjected)
	if err := fb.WritePage(id, buf); !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("WritePage under failure: %v", err)
	}
	// FailWrites is one-shot: the retry goes through.
	if err := fb.WritePage(id, buf); err != nil {
		t.Fatalf("WritePage after failure cleared: %v", err)
	}

	// A crash mid-Alloc (truncate counts against the budget) surfaces too,
	// and the page count stays consistent with what was durable.
	fs.CrashNow()
	if _, err := fb.Alloc(); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("Alloc after crash: %v", err)
	}
	if got := fb.NumPages(); got != 1 {
		t.Fatalf("NumPages = %d after failed Alloc, want 1", got)
	}
	if err := fb.Sync(); !errors.Is(err, faultfs.ErrCrashed) {
		t.Fatalf("Sync after crash: %v", err)
	}
}

// TestFileBackingShortReads: a read that crosses an injected device cut
// errors instead of returning a partial page.
func TestFileBackingShortReads(t *testing.T) {
	const n = 600
	fs := faultfs.New(wal.NewMemFS())
	meta, lastTime := buildTableOn(t, fs, "pages", n)
	fs.ShortReads("pages", PageSize+512) // cut inside the second page
	_, err := reopenTable(fs, "pages", meta, n, lastTime)
	if err == nil {
		t.Fatal("scan across the read cut succeeded")
	}
	fs.ShortReads("pages", -1) // cleared: full scan works again
	if rows, err := reopenTable(fs, "pages", meta, n, lastTime); err != nil || rows != n {
		t.Fatalf("scan after clearing short reads: %d rows, %v", rows, err)
	}
}
