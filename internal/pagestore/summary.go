package pagestore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/score"
	"repro/internal/skyline"
)

// SummaryFanout is the number of children grouped under each internal
// summary node.
const SummaryFanout = 32

// DefaultSummarySkyline caps the per-node inline skyline entries.
const DefaultSummarySkyline = 16

// SummaryIndex is a paged hierarchical summary over a Table's heap pages:
// each leaf summarizes one heap page (time range, MBR, capped skyline with
// inline attributes), internal nodes merge children. It answers range top-k
// queries by branch-and-bound, fetching summary and heap pages through the
// buffer pool so that page reads reflect real index traversal cost. This is
// the counterpart of the paper's PostgreSQL "index tables" (§VI-C).
type SummaryIndex struct {
	pool  *BufferPool
	table *Table
	dims  int
	// loc maps node id to its page and slot.
	loc  []NodeLoc
	root int32
}

// NodeLoc addresses one serialized summary node (exported so a catalog can
// persist and restore the index).
type NodeLoc struct {
	Page PageID
	Slot uint16
}

// summaryNode is the decoded form of one node tuple.
type summaryNode struct {
	minT, maxT int64
	leafPage   PageID  // valid when children == nil
	children   []int32 // node ids
	mbrLo      []float64
	mbrHi      []float64
	skyTimes   []int64
	skyAttrs   [][]float64
}

const nodeLeaf, nodeInternal = uint16(0), uint16(1)

func encodeNode(buf []byte, n *summaryNode, d int) []byte {
	off := 0
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[off:], v)
		off += 8
	}
	put16 := func(v uint16) {
		binary.LittleEndian.PutUint16(buf[off:], v)
		off += 2
	}
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(buf[off:], v)
		off += 4
	}
	put64(uint64(n.minT))
	put64(uint64(n.maxT))
	if n.children == nil {
		put16(nodeLeaf)
		put32(uint32(n.leafPage))
	} else {
		put16(nodeInternal)
		put16(uint16(len(n.children)))
		for _, c := range n.children {
			put32(uint32(c))
		}
	}
	put16(uint16(d))
	for _, v := range n.mbrLo {
		put64(math.Float64bits(v))
	}
	for _, v := range n.mbrHi {
		put64(math.Float64bits(v))
	}
	put16(uint16(len(n.skyTimes)))
	for i, t := range n.skyTimes {
		put64(uint64(t))
		for _, v := range n.skyAttrs[i] {
			put64(math.Float64bits(v))
		}
	}
	return buf[:off]
}

func decodeNode(b []byte) (*summaryNode, error) {
	off := 0
	get64 := func() uint64 {
		v := binary.LittleEndian.Uint64(b[off:])
		off += 8
		return v
	}
	get16 := func() uint16 {
		v := binary.LittleEndian.Uint16(b[off:])
		off += 2
		return v
	}
	get32 := func() uint32 {
		v := binary.LittleEndian.Uint32(b[off:])
		off += 4
		return v
	}
	n := &summaryNode{}
	n.minT = int64(get64())
	n.maxT = int64(get64())
	switch kind := get16(); kind {
	case nodeLeaf:
		n.leafPage = PageID(get32())
	case nodeInternal:
		cn := int(get16())
		n.children = make([]int32, cn)
		for i := range n.children {
			n.children[i] = int32(get32())
		}
	default:
		return nil, fmt.Errorf("pagestore: bad summary node kind %d", kind)
	}
	d := int(get16())
	n.mbrLo = make([]float64, d)
	n.mbrHi = make([]float64, d)
	for i := range n.mbrLo {
		n.mbrLo[i] = math.Float64frombits(get64())
	}
	for i := range n.mbrHi {
		n.mbrHi[i] = math.Float64frombits(get64())
	}
	ns := int(get16())
	n.skyTimes = make([]int64, ns)
	n.skyAttrs = make([][]float64, ns)
	for i := 0; i < ns; i++ {
		n.skyTimes[i] = int64(get64())
		row := make([]float64, d)
		for j := range row {
			row[j] = math.Float64frombits(get64())
		}
		n.skyAttrs[i] = row
	}
	return n, nil
}

// BuildSummaryIndex scans the sealed table once and writes the summary
// hierarchy into fresh pages.
func BuildSummaryIndex(pool *BufferPool, table *Table) (*SummaryIndex, error) {
	if err := table.Seal(); err != nil {
		return nil, err
	}
	d := table.Dims()
	skyCap := DefaultSummarySkyline
	// Shrink the cap if a full node would not fit a page.
	for skyCap > 0 {
		size := 18 + 2 + 4*SummaryFanout + 2 + 16*d + 2 + skyCap*(8+8*d)
		if size <= PageSize-64 {
			break
		}
		skyCap--
	}

	si := &SummaryIndex{pool: pool, table: table, dims: d, root: -1}
	var nodes []*summaryNode

	// Level 0: one summary per heap page.
	attrs := make([]float64, d)
	for _, pm := range table.Meta() {
		f, err := pool.Fetch(pm.ID)
		if err != nil {
			return nil, err
		}
		p := SlottedPage(f.Data)
		rows := make([][]float64, 0, p.NumSlots())
		times := make([]int64, 0, p.NumSlots())
		for s := 0; s < p.NumSlots(); s++ {
			_, tm := DecodeTuple(p.Tuple(s), attrs)
			row := make([]float64, d)
			copy(row, attrs)
			rows = append(rows, row)
			times = append(times, tm)
		}
		pool.Unpin(f, false)
		n := &summaryNode{minT: pm.MinTime, maxT: pm.MaxTime, leafPage: pm.ID}
		n.mbrLo, n.mbrHi = rowsMBR(rows)
		ids := make([]int32, len(rows))
		for i := range ids {
			ids[i] = int32(i)
		}
		sky := skyline.Compute(skyline.Rows(rows), ids)
		if len(sky) <= skyCap {
			for _, id := range sky {
				n.skyTimes = append(n.skyTimes, times[id])
				n.skyAttrs = append(n.skyAttrs, rows[id])
			}
		}
		nodes = append(nodes, n)
	}
	if len(nodes) == 0 {
		return nil, errors.New("pagestore: cannot index an empty table")
	}

	// Upper levels: group SummaryFanout children per node.
	level := make([]int32, len(nodes))
	for i := range level {
		level[i] = int32(i)
	}
	for len(level) > 1 {
		var next []int32
		for lo := 0; lo < len(level); lo += SummaryFanout {
			hi := lo + SummaryFanout
			if hi > len(level) {
				hi = len(level)
			}
			kids := level[lo:hi]
			n := mergeNodes(nodes, kids, skyCap)
			nodes = append(nodes, n)
			next = append(next, int32(len(nodes)-1))
		}
		level = next
	}
	si.root = level[0]

	// Persist nodes into pages.
	si.loc = make([]NodeLoc, len(nodes))
	buf := make([]byte, PageSize)
	var cur *Frame
	open := func() error {
		f, err := pool.Alloc()
		if err != nil {
			return err
		}
		InitSlotted(f.Data)
		cur = f
		return nil
	}
	seal := func() {
		if cur != nil {
			SlottedPage(cur.Data).SetChecksum()
			pool.Unpin(cur, true)
			cur = nil
		}
	}
	for i, n := range nodes {
		tuple := encodeNode(buf, n, d)
		if cur == nil {
			if err := open(); err != nil {
				return nil, err
			}
		}
		slot, ok := SlottedPage(cur.Data).Insert(tuple)
		if !ok {
			seal()
			if err := open(); err != nil {
				return nil, err
			}
			slot, ok = SlottedPage(cur.Data).Insert(tuple)
			if !ok {
				return nil, errors.New("pagestore: summary node exceeds page size")
			}
		}
		si.loc[i] = NodeLoc{Page: cur.ID, Slot: uint16(slot)}
	}
	seal()
	return si, nil
}

func rowsMBR(rows [][]float64) (lo, hi []float64) {
	d := len(rows[0])
	lo = make([]float64, d)
	hi = make([]float64, d)
	copy(lo, rows[0])
	copy(hi, rows[0])
	for _, r := range rows[1:] {
		for j, v := range r {
			if v < lo[j] {
				lo[j] = v
			}
			if v > hi[j] {
				hi[j] = v
			}
		}
	}
	return lo, hi
}

// mergeNodes builds an internal node over the given child ids.
func mergeNodes(nodes []*summaryNode, kids []int32, skyCap int) *summaryNode {
	first := nodes[kids[0]]
	d := len(first.mbrLo)
	n := &summaryNode{
		minT:     first.minT,
		maxT:     nodes[kids[len(kids)-1]].maxT,
		children: append([]int32(nil), kids...),
		mbrLo:    append([]float64(nil), first.mbrLo...),
		mbrHi:    append([]float64(nil), first.mbrHi...),
	}
	var rows [][]float64
	var times []int64
	complete := true
	for _, c := range kids {
		kid := nodes[c]
		for j := 0; j < d; j++ {
			if kid.mbrLo[j] < n.mbrLo[j] {
				n.mbrLo[j] = kid.mbrLo[j]
			}
			if kid.mbrHi[j] > n.mbrHi[j] {
				n.mbrHi[j] = kid.mbrHi[j]
			}
		}
		if kid.skyTimes == nil {
			complete = false
		}
		rows = append(rows, kid.skyAttrs...)
		times = append(times, kid.skyTimes...)
	}
	if complete && len(rows) > 0 {
		ids := make([]int32, len(rows))
		for i := range ids {
			ids[i] = int32(i)
		}
		sky := skyline.Compute(skyline.Rows(rows), ids)
		if len(sky) <= skyCap {
			for _, id := range sky {
				n.skyTimes = append(n.skyTimes, times[id])
				n.skyAttrs = append(n.skyAttrs, rows[id])
			}
		}
	}
	return n
}

// fetchNode decodes node id through the buffer pool.
func (si *SummaryIndex) fetchNode(id int32) (*summaryNode, error) {
	loc := si.loc[id]
	f, err := si.pool.Fetch(loc.Page)
	if err != nil {
		return nil, err
	}
	defer si.pool.Unpin(f, false)
	return decodeNode(SlottedPage(f.Data).Tuple(int(loc.Slot)))
}

// Item is one range top-k result record.
type Item struct {
	ID    uint32
	Time  int64
	Score float64
}

// betterItem is the canonical (score desc, time desc) order.
func betterItem(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score > b.Score
	}
	return a.Time > b.Time
}

// TopK answers Q(s, k, [t1, t2]) over the table by branch-and-bound on the
// paged summaries; all page accesses go through the buffer pool.
func (si *SummaryIndex) TopK(s score.Scorer, k int, t1, t2 int64) ([]Item, error) {
	if k <= 0 || t1 > t2 {
		return nil, nil
	}
	monotone := score.IsMonotone(s)
	var res []Item // sorted best-first, at most k
	offer := func(it Item) {
		if len(res) == k && !betterItem(it, res[k-1]) {
			return
		}
		pos := len(res)
		for pos > 0 && betterItem(it, res[pos-1]) {
			pos--
		}
		if len(res) < k {
			res = append(res, Item{})
		}
		copy(res[pos+1:], res[pos:])
		res[pos] = it
	}
	improves := func(ub float64, maxT int64) bool {
		if len(res) < k {
			return true
		}
		kth := res[k-1]
		if ub != kth.Score {
			return ub > kth.Score
		}
		return maxT > kth.Time
	}

	type frontier struct {
		node int32
		ub   float64
		maxT int64
	}
	pq := []frontier{{node: si.root, ub: math.Inf(1), maxT: t2}}
	push := func(f frontier) {
		pq = append(pq, f)
		i := len(pq) - 1
		for i > 0 {
			p := (i - 1) / 2
			if pq[i].ub < pq[p].ub || (pq[i].ub == pq[p].ub && pq[i].maxT <= pq[p].maxT) {
				break
			}
			pq[i], pq[p] = pq[p], pq[i]
			i = p
		}
	}
	pop := func() frontier {
		top := pq[0]
		last := len(pq) - 1
		pq[0] = pq[last]
		pq = pq[:last]
		i, n := 0, len(pq)
		for {
			l, r, best := 2*i+1, 2*i+2, i
			if l < n && (pq[l].ub > pq[best].ub || (pq[l].ub == pq[best].ub && pq[l].maxT > pq[best].maxT)) {
				best = l
			}
			if r < n && (pq[r].ub > pq[best].ub || (pq[r].ub == pq[best].ub && pq[r].maxT > pq[best].maxT)) {
				best = r
			}
			if best == i {
				break
			}
			pq[i], pq[best] = pq[best], pq[i]
			i = best
		}
		return top
	}

	attrs := make([]float64, si.dims)
	for len(pq) > 0 {
		e := pop()
		if !improves(e.ub, e.maxT) {
			break
		}
		n, err := si.fetchNode(e.node)
		if err != nil {
			return nil, err
		}
		if n.children == nil {
			f, err := si.pool.Fetch(n.leafPage)
			if err != nil {
				return nil, err
			}
			p := SlottedPage(f.Data)
			if err := p.VerifyChecksum(); err != nil {
				si.pool.Unpin(f, false)
				return nil, fmt.Errorf("heap page %d: %w", n.leafPage, err)
			}
			for slot := 0; slot < p.NumSlots(); slot++ {
				id, tm := DecodeTuple(p.Tuple(slot), attrs)
				if tm < t1 || tm > t2 {
					continue
				}
				offer(Item{ID: id, Time: tm, Score: s.Score(attrs)})
			}
			si.pool.Unpin(f, false)
			continue
		}
		for _, c := range n.children {
			kid, err := si.fetchNode(c)
			if err != nil {
				return nil, err
			}
			if kid.maxT < t1 || kid.minT > t2 {
				continue
			}
			ub := si.nodeUpperBound(s, monotone, kid)
			maxT := kid.maxT
			if maxT > t2 {
				maxT = t2
			}
			if improves(ub, maxT) {
				push(frontier{node: c, ub: ub, maxT: maxT})
			}
		}
	}
	return res, nil
}

func (si *SummaryIndex) nodeUpperBound(s score.Scorer, monotone bool, n *summaryNode) float64 {
	if monotone && n.skyTimes != nil && len(n.skyAttrs) > 0 {
		best := math.Inf(-1)
		for _, row := range n.skyAttrs {
			if v := s.Score(row); v > best {
				best = v
			}
		}
		return best
	}
	return score.UpperBound(s, n.mbrLo, n.mbrHi)
}

// NumNodes returns the number of summary nodes.
func (si *SummaryIndex) NumNodes() int { return len(si.loc) }

// Root returns the root node id.
func (si *SummaryIndex) Root() int32 { return si.root }

// Locations returns a copy of the node location table, for persistence.
func (si *SummaryIndex) Locations() []NodeLoc {
	out := make([]NodeLoc, len(si.loc))
	copy(out, si.loc)
	return out
}

// RestoreSummaryIndex rebuilds an index handle from persisted locations; the
// node pages themselves live in the backing store.
func RestoreSummaryIndex(pool *BufferPool, table *Table, root int32, locs []NodeLoc) *SummaryIndex {
	loc := make([]NodeLoc, len(locs))
	copy(loc, locs)
	return &SummaryIndex{pool: pool, table: table, dims: table.Dims(), loc: loc, root: root}
}
