package pagestore

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Slotted page layout (little endian):
//
//	offset 0  uint16  nSlots
//	offset 2  uint16  freeUpper (start of tuple space, grows down)
//	offset 4  uint32  checksum over [slotDirEnd, PageSize)
//	offset 8  slot directory: nSlots x { off uint16, len uint16 }
//	...free space...
//	tuples packed at the page end
const (
	slotDirStart  = 8
	slotEntrySize = 4
)

// ErrCorruptPage reports a checksum mismatch.
var ErrCorruptPage = errors.New("pagestore: page checksum mismatch")

// SlottedPage interprets a PageSize byte slice as a slotted data page.
type SlottedPage []byte

// InitSlotted formats p as an empty slotted page.
func InitSlotted(p []byte) {
	for i := range p {
		p[i] = 0
	}
	binary.LittleEndian.PutUint16(p[2:], PageSize)
}

// NumSlots returns the number of stored tuples.
func (p SlottedPage) NumSlots() int {
	return int(binary.LittleEndian.Uint16(p[0:]))
}

func (p SlottedPage) freeUpper() int {
	return int(binary.LittleEndian.Uint16(p[2:]))
}

// FreeSpace returns the bytes available for one more tuple (including its
// slot directory entry).
func (p SlottedPage) FreeSpace() int {
	free := p.freeUpper() - (slotDirStart + p.NumSlots()*slotEntrySize) - slotEntrySize
	if free < 0 {
		return 0
	}
	return free
}

// Insert appends a tuple, returning its slot number, or ok=false when the
// page lacks space.
func (p SlottedPage) Insert(tuple []byte) (slot int, ok bool) {
	if len(tuple) > p.FreeSpace() {
		return 0, false
	}
	n := p.NumSlots()
	newUpper := p.freeUpper() - len(tuple)
	copy(p[newUpper:], tuple)
	entry := slotDirStart + n*slotEntrySize
	binary.LittleEndian.PutUint16(p[entry:], uint16(newUpper))
	binary.LittleEndian.PutUint16(p[entry+2:], uint16(len(tuple)))
	binary.LittleEndian.PutUint16(p[0:], uint16(n+1))
	binary.LittleEndian.PutUint16(p[2:], uint16(newUpper))
	return n, true
}

// Tuple returns the slot's bytes, aliasing the page.
func (p SlottedPage) Tuple(slot int) []byte {
	entry := slotDirStart + slot*slotEntrySize
	off := int(binary.LittleEndian.Uint16(p[entry:]))
	ln := int(binary.LittleEndian.Uint16(p[entry+2:]))
	return p[off : off+ln]
}

// SetChecksum seals the page's tuple area with a CRC32.
func (p SlottedPage) SetChecksum() {
	binary.LittleEndian.PutUint32(p[4:], p.computeChecksum())
}

// VerifyChecksum reports whether the stored checksum matches the tuple area.
func (p SlottedPage) VerifyChecksum() error {
	if binary.LittleEndian.Uint32(p[4:]) != p.computeChecksum() {
		return ErrCorruptPage
	}
	return nil
}

func (p SlottedPage) computeChecksum() uint32 {
	return crc32.ChecksumIEEE(p[p.freeUpper():PageSize])
}
