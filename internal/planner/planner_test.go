package planner

import (
	"strings"
	"testing"
	"testing/quick"
)

// base is a mid-sized selective query over low-dimensional data.
func base() Inputs {
	return Inputs{
		N: 20000, Dims: 2, NI: 20000,
		K: 5, Tau: 4000, Window: 20000,
		Monotone: true,
	}
}

func estimateOf(p Plan, s Strategy) Estimate {
	for _, e := range p.Estimates {
		if e.Strategy == s {
			return e
		}
	}
	return Estimate{}
}

func TestChoosePickesHopForSelectiveQueries(t *testing.T) {
	p := Choose(base())
	if p.Chosen != THop {
		t.Fatalf("selective low-d query chose %v, want t-hop\n%s", p.Chosen, p)
	}
}

func TestChosenIsFirstAndEligible(t *testing.T) {
	p := Choose(base())
	if len(p.Estimates) != 5 {
		t.Fatalf("expected 5 estimates, got %d", len(p.Estimates))
	}
	if p.Estimates[0].Strategy != p.Chosen {
		t.Errorf("Chosen %v is not the first estimate %v", p.Chosen, p.Estimates[0].Strategy)
	}
	if !p.Estimates[0].Eligible {
		t.Error("chosen strategy is marked ineligible")
	}
	for i := 1; i < len(p.Estimates); i++ {
		a, b := p.Estimates[i-1], p.Estimates[i]
		if a.Eligible == b.Eligible && a.Cost > b.Cost {
			t.Errorf("estimates not sorted: %v(%v) before %v(%v)", a.Strategy, a.Cost, b.Strategy, b.Cost)
		}
		if !a.Eligible && b.Eligible {
			t.Error("ineligible estimate sorted before an eligible one")
		}
	}
}

func TestNonMonotoneExcludesSBand(t *testing.T) {
	in := base()
	in.Monotone = false
	p := Choose(in)
	e := estimateOf(p, SBand)
	if e.Eligible {
		t.Fatal("S-Band eligible for a non-monotone scorer")
	}
	if !strings.Contains(e.Reason, "monotone") {
		t.Errorf("ineligibility reason %q does not mention monotonicity", e.Reason)
	}
	if p.Chosen == SBand {
		t.Fatal("chose the ineligible S-Band")
	}
}

func TestMidAnchorExcludesTBaseAndSBand(t *testing.T) {
	in := base()
	in.MidAnchor = true
	p := Choose(in)
	if estimateOf(p, TBase).Eligible || estimateOf(p, SBand).Eligible {
		t.Fatal("mid-anchored query left T-Base or S-Band eligible")
	}
	if p.Chosen == TBase || p.Chosen == SBand {
		t.Fatalf("chose ineligible %v for a mid-anchored query", p.Chosen)
	}
}

func TestHighKMonotonePrefersSBand(t *testing.T) {
	// The repo's Figure 9 reproduction: at 2 dimensions and large k, S-Band
	// issues the fewest expensive probes and wins despite its sort.
	in := base()
	in.K = 50
	p := Choose(in)
	if p.Chosen != SBand {
		t.Fatalf("high-k monotone 2-d query chose %v, want s-band\n%s", p.Chosen, p)
	}
}

func TestHighDimensionRejectsSBand(t *testing.T) {
	// Figure 11: the candidate set explodes as log^(d-1), making S-Band
	// worse than T-Base at d=30+ even though it stays eligible.
	in := base()
	in.Dims = 30
	in.K = 50
	p := Choose(in)
	if p.Chosen == SBand {
		t.Fatalf("chose S-Band at d=30\n%s", p)
	}
	sband := estimateOf(p, SBand)
	low := estimateOf(Choose(base()), SBand)
	if sband.Cost <= low.Cost {
		t.Errorf("S-Band cost did not grow with dimensionality: %v (d=30) vs %v (d=2)",
			sband.Cost, low.Cost)
	}
}

func TestTinyDatasetPrefersSort(t *testing.T) {
	in := Inputs{N: 100, Dims: 1, NI: 100, K: 2, Tau: 5, Window: 160, Monotone: true}
	p := Choose(in)
	if p.Chosen != SBase && p.Chosen != TBase {
		t.Fatalf("tiny unselective query chose %v, want a baseline\n%s", p.Chosen, p)
	}
}

func TestHopCostFallsWithTau(t *testing.T) {
	in := base()
	prev := estimateOf(Choose(in), THop).Cost
	for _, tau := range []int64{6000, 10000, 16000} {
		in.Tau = tau
		c := estimateOf(Choose(in), THop).Cost
		if c >= prev {
			t.Errorf("T-Hop cost did not fall as tau grew: %v at tau=%d (prev %v)", c, tau, prev)
		}
		prev = c
	}
}

func TestTBaseCostFlatInTau(t *testing.T) {
	in := base()
	a := estimateOf(Choose(in), TBase).Cost
	in.Tau = 10000
	b := estimateOf(Choose(in), TBase).Cost
	// The maintenance term dominates; only the answer-size term shrinks.
	if b > a {
		t.Errorf("T-Base cost rose with tau: %v -> %v", a, b)
	}
	if a > 2*b {
		t.Errorf("T-Base cost should be roughly flat in tau: %v vs %v", a, b)
	}
}

func TestWarmSkybandDiscountsSBand(t *testing.T) {
	in := base()
	cold := estimateOf(Choose(in), SBand).Cost
	in.SBandReady = true
	warm := estimateOf(Choose(in), SBand).Cost
	if warm >= cold {
		t.Errorf("materialized ladder did not lower S-Band cost: warm %v, cold %v", warm, cold)
	}
}

func TestExpectedAnswerMatchesLemma4(t *testing.T) {
	in := base() // density 1 record/tick: E|S| = k*NI/(tau+1)
	p := Choose(in)
	want := float64(in.K) * float64(in.NI) / float64(in.Tau+1)
	if p.ExpectedAnswer < want*0.9 || p.ExpectedAnswer > want*1.1 {
		t.Errorf("ExpectedAnswer = %v, want about %v", p.ExpectedAnswer, want)
	}
	if p.ExpectedCandidates < p.ExpectedAnswer {
		t.Errorf("ExpectedCandidates %v below ExpectedAnswer %v", p.ExpectedCandidates, p.ExpectedAnswer)
	}
}

func TestPlanString(t *testing.T) {
	s := Choose(base()).String()
	for _, tok := range []string{"t-hop", "s-band", "E|S|", "cost"} {
		if !strings.Contains(s, tok) {
			t.Errorf("Plan.String() missing %q:\n%s", tok, s)
		}
	}
}

func TestStrategyString(t *testing.T) {
	names := map[Strategy]string{
		TBase: "t-base", THop: "t-hop", SBase: "s-base", SBand: "s-band", SHop: "s-hop",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", int(s), s.String(), want)
		}
	}
	if got := Strategy(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown strategy rendered %q", got)
	}
}

// TestQuickChooseTotal: Choose is total and structurally sound on arbitrary
// (even nonsensical) inputs — no panics, NaN costs, or ineligible winners.
func TestQuickChooseTotal(t *testing.T) {
	prop := func(n, ni int32, dims, k uint8, tau, window int32, mono, mid, ready bool) bool {
		in := Inputs{
			N: int(n), NI: int(ni), Dims: int(dims), K: int(k),
			Tau: int64(tau), Window: int64(window),
			Monotone: mono, MidAnchor: mid, SBandReady: ready,
		}
		p := Choose(in)
		if len(p.Estimates) != 5 {
			return false
		}
		if !p.Estimates[0].Eligible || p.Estimates[0].Strategy != p.Chosen {
			return false
		}
		for _, e := range p.Estimates {
			if e.Eligible && (e.Cost < 0 || e.Cost != e.Cost) { // negative or NaN
				t.Logf("bad cost %v for %v on %+v", e.Cost, e.Strategy, in)
				return false
			}
		}
		if mid && (p.Chosen == TBase || p.Chosen == SBand) {
			return false
		}
		if !mono && p.Chosen == SBand {
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
