// Package planner picks the durable top-k evaluation strategy for a query
// from the paper's own complexity analysis, turned into an abstract cost
// model.
//
// The paper's conclusion (§VI-D) is qualitative: the hop algorithms win in
// general, S-Hop overtakes T-Hop when individual top-k probes are expensive
// (large k, high dimensionality), S-Band helps on low-dimensional monotone
// workloads but collapses when the durable k-skyband candidate set
// explodes, and the baselines are preferable only for tiny, unselective
// queries. This package makes those trade-offs executable:
//
//   - expected answer size from Lemma 4, E|S| ≈ k·|I|/(τ+1) (in records,
//     scaled by the interval's arrival density),
//   - expected S-Band candidates from Lemma 5,
//     E|C| ≈ E|S| · log^(d-1)(τ records),
//   - probe counts from Lemma 1 / Lemma 3, |S| + k·⌈|I|/τ⌉,
//   - a per-probe cost growing with log n, dimensionality and k.
//
// Costs are abstract units, not milliseconds: only their order matters.
// Choose never eliminates a correct plan — eligibility rules (monotone
// scorers for S-Band, end-anchored windows for T-Base/S-Band) mirror the
// algorithms' actual preconditions, and every eligible strategy would
// return the same answer.
package planner

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Strategy enumerates the candidate algorithms in the planner's own terms
// (package core maps them onto its Algorithm values; the planner stays
// import-cycle-free).
type Strategy int

// The five concrete strategies of the paper.
const (
	TBase Strategy = iota
	THop
	SBase
	SBand
	SHop
)

// String names the strategy like core.Algorithm does.
func (s Strategy) String() string {
	switch s {
	case TBase:
		return "t-base"
	case THop:
		return "t-hop"
	case SBase:
		return "s-base"
	case SBand:
		return "s-band"
	case SHop:
		return "s-hop"
	}
	return fmt.Sprintf("strategy(%d)", int(s))
}

// Inputs characterizes one query against one dataset.
type Inputs struct {
	N    int // records in the dataset
	Dims int // attribute dimensionality
	NI   int // records arriving inside the query interval I

	K      int
	Tau    int64 // durability window length, time ticks
	Window int64 // |I| in time ticks

	Monotone   bool // scorer provably monotone (S-Band precondition)
	MidAnchor  bool // mid-anchored window (excludes T-Base and S-Band)
	SBandReady bool // durable k-skyband ladder already materialized
}

// Estimate is the planner's verdict on one strategy.
type Estimate struct {
	Strategy Strategy
	Eligible bool
	Cost     float64 // abstract units; meaningful only relative to siblings
	Reason   string  // ineligibility cause, or the dominant cost driver
}

// Plan is the full decision record for one query.
type Plan struct {
	Chosen Strategy
	// ExpectedAnswer is the Lemma 4 estimate of |S| in records.
	ExpectedAnswer float64
	// ExpectedCandidates is the Lemma 5 estimate of S-Band's |C|.
	ExpectedCandidates float64
	// Estimates lists every strategy ordered by ascending cost, ineligible
	// ones last.
	Estimates []Estimate
}

// String renders a compact explanation table.
func (p Plan) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "plan: %s (E|S|=%.1f, E|C|=%.1f)\n", p.Chosen, p.ExpectedAnswer, p.ExpectedCandidates)
	for _, e := range p.Estimates {
		if e.Eligible {
			fmt.Fprintf(&b, "  %-7s cost=%12.1f  %s\n", e.Strategy, e.Cost, e.Reason)
		} else {
			fmt.Fprintf(&b, "  %-7s ineligible: %s\n", e.Strategy, e.Reason)
		}
	}
	return b.String()
}

// Relative cost constants: a full range top-k probe is the unit-bearing
// operation; in-memory maintenance and comparison sorting are far cheaper
// per element. Tuned so the model reproduces the paper's crossovers, not
// absolute times.
const (
	cMaint     = 0.3  // T-Base per-record incremental window maintenance
	cSort      = 0.15 // per element-and-log of scoring + sorting a candidate
	cBandBuild = 0.15 // per record of a cold durable k-skyband level build
	cFindSplit = 2.0  // S-Hop find queries per durable record (splits)
)

// Choose evaluates the cost model and returns the full plan.
func Choose(in Inputs) Plan {
	in = clampInputs(in)

	density := float64(in.NI) / float64(in.Window+1) // records per tick in I
	tauRecords := density * float64(in.Tau)          // records per tau window
	expS := expectedAnswer(in, tauRecords)
	hopTerm := float64(in.K) * math.Ceil(float64(in.Window)/float64(in.Tau+1))
	probes := expS + hopTerm
	if probes > float64(in.NI) {
		probes = float64(in.NI) // can never check more records than exist
	}
	qcost := probeCost(in)

	// Lemma 5: candidate count gains a log^(d-1) factor over the answer.
	logTau := math.Log2(tauRecords + 2)
	expC := expS * math.Pow(logTau, float64(in.Dims-1))
	if expC > float64(in.N) {
		expC = float64(in.N)
	}
	if expC < expS {
		expC = expS
	}

	sortSpan := float64(in.NI) + tauRecords // records in [start-tau, end]
	if sortSpan > float64(in.N) {
		sortSpan = float64(in.N)
	}

	ests := []Estimate{
		estTBase(in, expS, qcost),
		estTHop(in, probes, qcost),
		estSBase(in, sortSpan),
		estSBand(in, expS, expC, hopTerm, qcost),
		estSHop(in, expS, hopTerm, probes, qcost),
	}
	sort.SliceStable(ests, func(i, j int) bool {
		if ests[i].Eligible != ests[j].Eligible {
			return ests[i].Eligible
		}
		return ests[i].Cost < ests[j].Cost
	})
	return Plan{
		Chosen:             ests[0].Strategy,
		ExpectedAnswer:     expS,
		ExpectedCandidates: expC,
		Estimates:          ests,
	}
}

func clampInputs(in Inputs) Inputs {
	if in.N < 1 {
		in.N = 1
	}
	if in.NI < 0 {
		in.NI = 0
	}
	if in.NI > in.N {
		in.NI = in.N
	}
	if in.Dims < 1 {
		in.Dims = 1
	}
	if in.K < 1 {
		in.K = 1
	}
	if in.Tau < 0 {
		in.Tau = 0
	}
	if in.Window < 0 {
		in.Window = 0
	}
	return in
}

// expectedAnswer is Lemma 4 in record units: each record survives its
// window with probability k/(windowRecords+1).
func expectedAnswer(in Inputs, tauRecords float64) float64 {
	s := float64(in.NI) * float64(in.K) / (tauRecords + 1)
	if s > float64(in.NI) {
		s = float64(in.NI)
	}
	return s
}

// probeCost models one range top-k probe: branch-and-bound descent paying a
// log n factor, widened by dimensionality (weaker pruning bounds), plus the
// k reported items.
func probeCost(in Inputs) float64 {
	return (math.Log2(float64(in.N)+2) + 1) * (1 + 0.15*float64(in.Dims-1)) * (1 + 0.1*float64(in.K))
}

func estTBase(in Inputs, expS, qcost float64) Estimate {
	if in.MidAnchor {
		return Estimate{Strategy: TBase, Eligible: false, Reason: "mid-anchored window"}
	}
	cost := float64(in.NI)*cMaint*math.Log2(float64(in.K)+2) + expS*qcost
	return Estimate{
		Strategy: TBase, Eligible: true, Cost: cost,
		Reason: fmt.Sprintf("linear sweep of %d records", in.NI),
	}
}

func estTHop(in Inputs, probes, qcost float64) Estimate {
	return Estimate{
		Strategy: THop, Eligible: true, Cost: probes * qcost,
		Reason: fmt.Sprintf("~%.0f durability probes", probes),
	}
}

func estSBase(in Inputs, sortSpan float64) Estimate {
	cost := sortSpan * math.Log2(sortSpan+2) * cSort * 4 // score eval + sort + sweep
	return Estimate{
		Strategy: SBase, Eligible: true, Cost: cost,
		Reason: fmt.Sprintf("full sort of ~%.0f records", sortSpan),
	}
}

func estSBand(in Inputs, expS, expC, hopTerm, qcost float64) Estimate {
	switch {
	case !in.Monotone:
		return Estimate{Strategy: SBand, Eligible: false, Reason: "scorer not provably monotone"}
	case in.MidAnchor:
		return Estimate{Strategy: SBand, Eligible: false, Reason: "mid-anchored window"}
	}
	// Blocking prunes many checks; the candidate sort dominates when |C|
	// explodes (high d, anti-correlated data).
	checks := expS + 0.5*hopTerm
	cost := expC*math.Log2(expC+2)*cSort + checks*qcost
	if !in.SBandReady {
		cost += float64(in.N) * cBandBuild
	}
	return Estimate{
		Strategy: SBand, Eligible: true, Cost: cost,
		Reason: fmt.Sprintf("~%.0f candidates, ~%.0f checks", expC, checks),
	}
}

func estSHop(in Inputs, expS, hopTerm, probes, qcost float64) Estimate {
	// Blocking halves the hop-term checks but every durable record splits
	// its sub-interval, costing extra find probes.
	checks := expS + 0.5*hopTerm
	finds := math.Ceil(float64(in.Window)/float64(in.Tau+1)) + cFindSplit*expS
	cost := (checks + finds) * qcost
	if m := probes * qcost * 2; cost > m {
		cost = m // Lemma 3 caps S-Hop near T-Hop's asymptotics
	}
	return Estimate{
		Strategy: SHop, Eligible: true, Cost: cost,
		Reason: fmt.Sprintf("~%.0f checks + ~%.0f finds", checks, finds),
	}
}
