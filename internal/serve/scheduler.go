// Package serve provides the concurrency layer between the wire protocol and
// the query engines: an admission scheduler that bounds how many queries
// evaluate at once, and an epoch-keyed result cache that recognizes repeated
// work across queries and connections.
//
// Both pieces lean on properties the engines already guarantee. Queries run
// against immutable epoch snapshots (core.LiveShardedEngine assembles a frozen
// shardGroup per epoch), so any number of admitted queries can evaluate in
// parallel without coordinating with appends — the scheduler only has to bound
// resource usage, not correctness. And sealed shards never change, so partial
// answers computed inside one stay valid forever; the cache exploits this with
// per-shard entries that survive epoch changes, alongside whole-result entries
// that are keyed by epoch and naturally expire when the data grows.
package serve

import (
	"context"
	"errors"
	"sync/atomic"
)

// ErrSchedulerClosed rejects work submitted after Close.
var ErrSchedulerClosed = errors.New("serve: scheduler closed")

// Scheduler admits a bounded number of concurrent query evaluations.
// Admission is a counting semaphore: Do blocks until a worker slot frees up or
// the caller's context expires, so a burst of queries queues instead of
// oversubscribing the CPU (engine evaluations are compute-bound; running far
// more of them than cores thrashes caches and inflates every query's latency).
type Scheduler struct {
	sem    chan struct{}
	closed chan struct{}

	queued   atomic.Int64
	inflight atomic.Int64
	admitted atomic.Uint64
	rejected atomic.Uint64
}

// NewScheduler returns a scheduler admitting at most workers concurrent
// evaluations; workers < 1 is clamped to 1.
func NewScheduler(workers int) *Scheduler {
	if workers < 1 {
		workers = 1
	}
	return &Scheduler{sem: make(chan struct{}, workers), closed: make(chan struct{})}
}

// Workers returns the admission bound.
func (s *Scheduler) Workers() int { return cap(s.sem) }

// Do runs fn once a worker slot is available, blocking at most until ctx
// expires. The returned error is nil when fn ran, ctx.Err() when admission
// timed out or was canceled, or ErrSchedulerClosed. fn runs on the calling
// goroutine; the scheduler only gates entry.
func (s *Scheduler) Do(ctx context.Context, fn func()) error {
	s.queued.Add(1)
	select {
	case s.sem <- struct{}{}:
		// A free slot and a concurrent (or prior) Close can both be ready;
		// the contract is that Close wins, so re-check before admitting.
		select {
		case <-s.closed:
			<-s.sem
			s.queued.Add(-1)
			s.rejected.Add(1)
			return ErrSchedulerClosed
		default:
		}
	case <-ctx.Done():
		s.queued.Add(-1)
		s.rejected.Add(1)
		return ctx.Err()
	case <-s.closed:
		s.queued.Add(-1)
		s.rejected.Add(1)
		return ErrSchedulerClosed
	}
	s.queued.Add(-1)
	s.admitted.Add(1)
	s.inflight.Add(1)
	defer func() {
		s.inflight.Add(-1)
		<-s.sem
	}()
	fn()
	return nil
}

// Close rejects all queued and future admissions. Work already admitted runs
// to completion. Close is idempotent.
func (s *Scheduler) Close() {
	select {
	case <-s.closed:
	default:
		close(s.closed)
	}
}

// SchedulerMetrics is a point-in-time snapshot of scheduler state.
type SchedulerMetrics struct {
	Workers  int    // admission bound
	Queued   int64  // callers blocked waiting for a slot
	InFlight int64  // evaluations currently running
	Admitted uint64 // total admissions since creation
	Rejected uint64 // total admission timeouts/cancellations
}

// Metrics snapshots the scheduler counters. Queued and InFlight are sampled
// independently and may be momentarily inconsistent with each other; the
// totals are exact.
func (s *Scheduler) Metrics() SchedulerMetrics {
	return SchedulerMetrics{
		Workers:  cap(s.sem),
		Queued:   s.queued.Load(),
		InFlight: s.inflight.Load(),
		Admitted: s.admitted.Load(),
		Rejected: s.rejected.Load(),
	}
}
