package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func TestSchedulerBoundsConcurrency(t *testing.T) {
	const workers, jobs = 3, 20
	s := NewScheduler(workers)
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	release := make(chan struct{})
	for i := 0; i < jobs; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := s.Do(context.Background(), func() {
				n := cur.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				<-release
				cur.Add(-1)
			})
			if err != nil {
				t.Errorf("Do: %v", err)
			}
		}()
	}
	// Let the pool fill, then drain.
	for s.Metrics().InFlight < workers {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if got := peak.Load(); got > workers {
		t.Fatalf("peak concurrency %d exceeds worker bound %d", got, workers)
	}
	m := s.Metrics()
	if m.Admitted != jobs || m.Rejected != 0 || m.InFlight != 0 || m.Queued != 0 {
		t.Fatalf("metrics after drain: %+v", m)
	}
}

func TestSchedulerAdmissionTimeout(t *testing.T) {
	s := NewScheduler(1)
	hold := make(chan struct{})
	started := make(chan struct{})
	go s.Do(context.Background(), func() { close(started); <-hold })
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := s.Do(ctx, func() { t.Error("must not run") }); err != context.DeadlineExceeded {
		t.Fatalf("Do with expired context: err=%v, want DeadlineExceeded", err)
	}
	if m := s.Metrics(); m.Rejected != 1 {
		t.Fatalf("rejected=%d, want 1", m.Rejected)
	}
	close(hold)
}

func TestSchedulerClose(t *testing.T) {
	s := NewScheduler(1)
	hold := make(chan struct{})
	started := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Do(context.Background(), func() { close(started); <-hold })
	}()
	<-started
	queued := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		queued <- s.Do(context.Background(), func() { t.Error("must not run") })
	}()
	for s.Metrics().Queued == 0 {
		time.Sleep(time.Millisecond)
	}
	s.Close()
	s.Close() // idempotent
	if err := <-queued; err != ErrSchedulerClosed {
		t.Fatalf("queued Do after Close: err=%v, want ErrSchedulerClosed", err)
	}
	close(hold) // admitted work still completes
	wg.Wait()
	if err := s.Do(context.Background(), nil); err != ErrSchedulerClosed {
		t.Fatalf("Do after Close: err=%v, want ErrSchedulerClosed", err)
	}
}

func TestCacheResultRoundTrip(t *testing.T) {
	c := NewCache(8)
	key := ResultKey{Dataset: "nba", Op: "query", Scorer: "lin,3ff0000000000000", K: 5, Tau: 10, Epoch: 7}
	if _, ok := c.GetResult(key); ok {
		t.Fatal("hit on empty cache")
	}
	c.PutResult(key, "answer")
	got, ok := c.GetResult(key)
	if !ok || got != "answer" {
		t.Fatalf("GetResult = %v, %v", got, ok)
	}
	// A different epoch is a different key: no stale replay.
	stale := key
	stale.Epoch = 8
	if _, ok := c.GetResult(stale); ok {
		t.Fatal("hit across epochs")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 2 || st.Entries != 1 {
		t.Fatalf("stats: %+v", st)
	}
	if r := st.HitRate(); r < 0.33 || r > 0.34 {
		t.Fatalf("hit rate %v, want 1/3", r)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(2)
	k := func(i int) ResultKey { return ResultKey{Dataset: "d", K: i} }
	c.PutResult(k(1), 1)
	c.PutResult(k(2), 2)
	c.GetResult(k(1)) // refresh 1; 2 becomes LRU
	c.PutResult(k(3), 3)
	if _, ok := c.GetResult(k(2)); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.GetResult(k(1)); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.GetResult(k(3)); !ok {
		t.Fatal("new entry missing")
	}
	if st := c.Stats(); st.Evicted != 1 || st.Entries != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCachePartialScopedByDataset(t *testing.T) {
	c := NewCache(8)
	pk := core.PartialKey{ShardLo: 0, ShardHi: 100, Lo: 10, Hi: 90, Scorer: "lin,x", K: 3, Tau: 5}
	a, b := c.Partial("a"), c.Partial("b")
	a.PutPartial(pk, []int32{1, 2, 3})
	if _, ok := b.GetPartial(pk); ok {
		t.Fatal("partial entry leaked across datasets")
	}
	ids, ok := a.GetPartial(pk)
	if !ok || len(ids) != 3 || ids[0] != 1 {
		t.Fatalf("GetPartial = %v, %v", ids, ok)
	}
	st := c.Stats()
	if st.PartialHits != 1 || st.PartialMisses != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestCacheInvalidateShard(t *testing.T) {
	c := NewCache(32)
	mk := func(lo, hi, k int) core.PartialKey {
		return core.PartialKey{ShardLo: lo, ShardHi: hi, Lo: lo, Hi: hi, Scorer: "lin,x", K: k, Tau: 5}
	}
	a, b := c.Partial("a"), c.Partial("b")
	// Two shards on dataset a (several entries each), one on dataset b that
	// shares shard a's row range — invalidation must be dataset-scoped.
	for k := 1; k <= 3; k++ {
		a.PutPartial(mk(0, 100, k), []int32{int32(k)})
		a.PutPartial(mk(100, 200, k), []int32{int32(k)})
		b.PutPartial(mk(0, 100, k), []int32{int32(k)})
	}
	c.PutResult(ResultKey{Dataset: "a", K: 1}, "whole")

	inv := a.(interface{ InvalidateShard(lo, hi int) })
	inv.InvalidateShard(0, 100) // shard [0,100) of dataset a left the live set

	for k := 1; k <= 3; k++ {
		if _, ok := a.GetPartial(mk(0, 100, k)); ok {
			t.Fatalf("entry k=%d of the invalidated shard survived", k)
		}
		if _, ok := a.GetPartial(mk(100, 200, k)); !ok {
			t.Fatalf("entry k=%d of an unrelated shard was dropped", k)
		}
		if _, ok := b.GetPartial(mk(0, 100, k)); !ok {
			t.Fatalf("dataset b entry k=%d dropped by dataset a's invalidation", k)
		}
	}
	if _, ok := c.GetResult(ResultKey{Dataset: "a", K: 1}); !ok {
		t.Fatal("whole-result entry dropped by a shard invalidation")
	}
	st := c.Stats()
	if st.Invalidated != 3 {
		t.Fatalf("Invalidated = %d, want 3", st.Invalidated)
	}
	if st.Entries != 7 {
		t.Fatalf("Entries = %d, want 7 (9+1 inserted, 3 invalidated)", st.Entries)
	}
	// Idempotent: a second invalidation of the same (now absent) shard.
	inv.InvalidateShard(0, 100)
	if st := c.Stats(); st.Invalidated != 3 {
		t.Fatalf("re-invalidation counted entries: %+v", st)
	}
}

// TestCacheInvalidateAfterEviction: the by-shard index must track LRU
// evictions, or invalidation could double-count or touch reinserted keys.
func TestCacheInvalidateAfterEviction(t *testing.T) {
	c := NewCache(2)
	p := c.Partial("ds")
	mk := func(lo, hi, k int) core.PartialKey {
		return core.PartialKey{ShardLo: lo, ShardHi: hi, Lo: lo, Hi: hi, Scorer: "lin,x", K: k}
	}
	p.PutPartial(mk(0, 10, 1), []int32{1})
	p.PutPartial(mk(0, 10, 2), []int32{2}) // cache full
	p.PutPartial(mk(10, 20, 1), []int32{3})
	p.PutPartial(mk(10, 20, 2), []int32{4}) // evicts both shard-[0,10) entries
	if st := c.Stats(); st.Evicted != 2 {
		t.Fatalf("Evicted = %d, want 2", st.Evicted)
	}
	p.(interface{ InvalidateShard(lo, hi int) }).InvalidateShard(0, 10)
	if st := c.Stats(); st.Invalidated != 0 {
		t.Fatalf("invalidation counted evicted entries: %+v", st)
	}
	p.(interface{ InvalidateShard(lo, hi int) }).InvalidateShard(10, 20)
	st := c.Stats()
	if st.Invalidated != 2 || st.Entries != 0 {
		t.Fatalf("stats after invalidating the live shard: %+v", st)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			p := c.Partial("ds")
			for i := 0; i < 200; i++ {
				key := ResultKey{Dataset: "ds", K: i % 10, Epoch: uint64(g % 3)}
				if v, ok := c.GetResult(key); ok {
					if v.(int) != key.K {
						t.Errorf("corrupted value %v for k=%d", v, key.K)
					}
				} else {
					c.PutResult(key, key.K)
				}
				pk := core.PartialKey{ShardLo: i % 5, K: 2}
				if ids, ok := p.GetPartial(pk); ok {
					if int(ids[0]) != pk.ShardLo {
						t.Errorf("corrupted partial %v", ids)
					}
				} else {
					p.PutPartial(pk, []int32{int32(pk.ShardLo)})
				}
			}
		}(g)
	}
	wg.Wait()
}
