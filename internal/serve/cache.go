package serve

import (
	"container/list"
	"sync"

	"repro/internal/core"
)

// ResultKey identifies one whole-query answer. Two requests with equal keys
// received identical answers, so a cached response can be replayed verbatim.
//
// Scorer is the canonical scorer key (score.CanonicalKey); requests whose
// scorer cannot be canonicalized are uncacheable and never reach the cache.
// Epoch is the engine's query-epoch sequence at evaluation time: it changes
// whenever the underlying data changes (append, seal, freeze swap), so stale
// entries can never be returned — they simply stop being looked up and age
// out of the LRU. Start/End are the resolved interval (whole-span defaults
// already substituted), so an omitted interval and its explicit equivalent
// share an entry.
type ResultKey struct {
	Dataset       string
	Op            string
	Scorer        string
	K             int
	N             int
	Tau           int64
	Lead          int64
	Start         int64
	End           int64
	Anchor        core.Anchor
	Algorithm     core.Algorithm
	WithDurations bool
	Epoch         uint64
}

// partialKey scopes a per-shard partial answer to its dataset: shard row
// ranges from different datasets must never collide.
type partialKey struct {
	dataset string
	key     core.PartialKey
}

// shardRef identifies one shard of one dataset — the invalidation unit. When
// the live lifecycle compacts or retires a shard, every partial entry keyed
// by its exact row range dies with it.
type shardRef struct {
	dataset string
	lo, hi  int
}

// ref returns the partial key's shard identity.
func (k partialKey) ref() shardRef {
	return shardRef{dataset: k.dataset, lo: k.key.ShardLo, hi: k.key.ShardHi}
}

// entry is one cached value; key is the map key (ResultKey or partialKey).
type entry struct {
	key any
	val any
}

// Cache is a bounded LRU shared by every connection of a server. It holds two
// kinds of entries in one budget:
//
//   - whole-result entries (ResultKey): the full answer to a query, keyed by
//     epoch — exact-match repeats at an unchanged epoch replay it with zero
//     engine work;
//   - partial entries (core.PartialKey via Partial): the interior answer of
//     one sealed shard. Sealed shards are immutable, so these have no epoch
//     and stay valid across appends — a repeated query after the dataset has
//     grown re-evaluates only the tail and any shards it has not seen. They
//     are valid only while their shard stays in the engine's live set: the
//     Partial view implements core.PartialInvalidator, and a compaction or
//     retirement drops the departed shard's entries eagerly (without the
//     hook they would be unreachable-but-resident until LRU pressure — a
//     leak once shard identity can change).
//
// All methods are safe for concurrent use.
type Cache struct {
	mu      sync.Mutex
	max     int
	items   map[any]*list.Element
	lru     *list.List // front = most recent
	evicted uint64

	// byShard indexes the live partial entries by shard identity so
	// InvalidateShard drops exactly its shard's entries without scanning
	// the whole cache. Maintained by put and every removal path.
	byShard map[shardRef]map[partialKey]struct{}

	hits, misses               uint64
	partialHits, partialMisses uint64
	invalidated                uint64
}

// NewCache returns a cache bounded to max entries (whole results and shard
// partials combined); max < 1 is clamped to 1.
func NewCache(max int) *Cache {
	if max < 1 {
		max = 1
	}
	return &Cache{
		max:     max,
		items:   make(map[any]*list.Element),
		lru:     list.New(),
		byShard: make(map[shardRef]map[partialKey]struct{}),
	}
}

// GetResult returns the cached whole answer for key, if present.
func (c *Cache) GetResult(key ResultKey) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		return el.Value.(*entry).val, true
	}
	c.misses++
	return nil, false
}

// PutResult stores the whole answer for key, evicting the least recently used
// entries if the cache is full.
func (c *Cache) PutResult(key ResultKey, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(key, val)
}

// put inserts or refreshes under c.mu.
func (c *Cache) put(key, val any) {
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).val = val
		c.lru.MoveToFront(el)
		return
	}
	for len(c.items) >= c.max {
		back := c.lru.Back()
		if back == nil {
			break
		}
		c.lru.Remove(back)
		bk := back.Value.(*entry).key
		delete(c.items, bk)
		c.unindex(bk)
		c.evicted++
	}
	c.items[key] = c.lru.PushFront(&entry{key: key, val: val})
	if pk, ok := key.(partialKey); ok {
		ref := pk.ref()
		set := c.byShard[ref]
		if set == nil {
			set = make(map[partialKey]struct{})
			c.byShard[ref] = set
		}
		set[pk] = struct{}{}
	}
}

// unindex removes a departing key from the by-shard index under c.mu.
func (c *Cache) unindex(key any) {
	pk, ok := key.(partialKey)
	if !ok {
		return
	}
	ref := pk.ref()
	if set := c.byShard[ref]; set != nil {
		delete(set, pk)
		if len(set) == 0 {
			delete(c.byShard, ref)
		}
	}
}

// invalidateShard drops every partial entry of one dataset shard; see
// core.PartialInvalidator.
func (c *Cache) invalidateShard(ref shardRef) {
	c.mu.Lock()
	defer c.mu.Unlock()
	set := c.byShard[ref]
	if len(set) == 0 {
		return
	}
	for pk := range set {
		if el, ok := c.items[pk]; ok {
			c.lru.Remove(el)
			delete(c.items, pk)
			c.invalidated++
		}
	}
	delete(c.byShard, ref)
}

// Partial returns a view of the cache implementing core.PartialCache — and
// core.PartialInvalidator, so the live lifecycle's compactions and
// retirements drop departed shards' entries eagerly — with every key scoped
// to dataset. Install it on that dataset's engine (SetPartialCache); the
// engine only consults it for immutable shards.
func (c *Cache) Partial(dataset string) core.PartialCache {
	return &partialView{c: c, dataset: dataset}
}

type partialView struct {
	c       *Cache
	dataset string
}

// InvalidateShard implements core.PartialInvalidator: shard [shardLo,
// shardHi) of this view's dataset left the engine's live set, so its interior
// entries can never be looked up again. Called under the engine's lifecycle
// lock — only the cache's own lock is taken, never back into the engine.
func (v *partialView) InvalidateShard(shardLo, shardHi int) {
	v.c.invalidateShard(shardRef{dataset: v.dataset, lo: shardLo, hi: shardHi})
}

// GetPartial implements core.PartialCache.
func (v *partialView) GetPartial(key core.PartialKey) ([]int32, bool) {
	c := v.c
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[partialKey{v.dataset, key}]; ok {
		c.lru.MoveToFront(el)
		c.partialHits++
		return el.Value.(*entry).val.([]int32), true
	}
	c.partialMisses++
	return nil, false
}

// PutPartial implements core.PartialCache. The engine hands over a fresh
// slice it will not mutate, so it is stored without copying.
func (v *partialView) PutPartial(key core.PartialKey, ids []int32) {
	c := v.c
	c.mu.Lock()
	defer c.mu.Unlock()
	c.put(partialKey{v.dataset, key}, ids)
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Entries       int    // current entries (results + partials)
	Max           int    // capacity
	Hits          uint64 // whole-result hits
	Misses        uint64 // whole-result misses
	PartialHits   uint64 // per-shard partial hits
	PartialMisses uint64 // per-shard partial misses
	Evicted       uint64 // entries dropped by the LRU bound
	Invalidated   uint64 // partial entries dropped because their shard left the live set
}

// HitRate returns whole-result hits over lookups, or 0 with no lookups.
func (s CacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:       len(c.items),
		Max:           c.max,
		Hits:          c.hits,
		Misses:        c.misses,
		PartialHits:   c.partialHits,
		PartialMisses: c.partialMisses,
		Evicted:       c.evicted,
		Invalidated:   c.invalidated,
	}
}
