package pst

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func naiveCollect(pts []Point, x1, x2, y0 int64) []int32 {
	var out []int32
	for _, p := range pts {
		if p.X >= x1 && p.X <= x2 && p.Y >= y0 {
			out = append(out, p.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sorted(ids []int32) []int32 {
	out := append([]int32(nil), ids...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equal(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestQueryMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		n := rng.Intn(500)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{X: int64(rng.Intn(200)), Y: int64(rng.Intn(200)), ID: int32(i)}
		}
		tr := Build(pts)
		if tr.Len() != n {
			t.Fatalf("Len=%d want %d", tr.Len(), n)
		}
		for q := 0; q < 20; q++ {
			x1 := int64(rng.Intn(250) - 25)
			x2 := x1 + int64(rng.Intn(100))
			y0 := int64(rng.Intn(250) - 25)
			got := sorted(tr.Collect(x1, x2, y0))
			want := naiveCollect(pts, x1, x2, y0)
			if !equal(got, want) {
				t.Fatalf("trial %d: Collect(%d,%d,%d)=%v want %v", trial, x1, x2, y0, got, want)
			}
			if c := tr.Count(x1, x2, y0); c != len(want) {
				t.Fatalf("Count=%d want %d", c, len(want))
			}
		}
	}
}

func TestQuick(t *testing.T) {
	f := func(xs, ys []int8, x1, x2, y0 int8) bool {
		n := len(xs)
		if len(ys) < n {
			n = len(ys)
		}
		pts := make([]Point, n)
		for i := 0; i < n; i++ {
			pts[i] = Point{X: int64(xs[i]), Y: int64(ys[i]), ID: int32(i)}
		}
		tr := Build(pts)
		got := sorted(tr.Collect(int64(x1), int64(x2), int64(y0)))
		want := naiveCollect(pts, int64(x1), int64(x2), int64(y0))
		return equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyTree(t *testing.T) {
	tr := Build(nil)
	if tr.Len() != 0 {
		t.Fatal("empty tree must have Len 0")
	}
	if ids := tr.Collect(0, 100, 0); len(ids) != 0 {
		t.Fatalf("empty tree returned %v", ids)
	}
}

func TestInvertedRange(t *testing.T) {
	tr := Build([]Point{{X: 5, Y: 5, ID: 1}})
	if ids := tr.Collect(10, 0, 0); len(ids) != 0 {
		t.Fatalf("inverted x-range returned %v", ids)
	}
}

func TestEarlyStop(t *testing.T) {
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = Point{X: int64(i), Y: 50, ID: int32(i)}
	}
	tr := Build(pts)
	visits := 0
	tr.Query(0, 99, 0, func(Point) bool {
		visits++
		return visits < 5
	})
	if visits != 5 {
		t.Fatalf("visit stopped after %d, want 5", visits)
	}
}

func TestDuplicateCoordinates(t *testing.T) {
	pts := []Point{{X: 1, Y: 1, ID: 0}, {X: 1, Y: 1, ID: 1}, {X: 1, Y: 1, ID: 2}}
	tr := Build(pts)
	if got := tr.Count(1, 1, 1); got != 3 {
		t.Fatalf("Count=%d want 3", got)
	}
}

func BenchmarkBuild10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, 10_000)
	for i := range pts {
		pts[i] = Point{X: rng.Int63n(1 << 30), Y: rng.Int63n(1 << 30), ID: int32(i)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(pts)
	}
}

func BenchmarkQuery10k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pts := make([]Point, 10_000)
	for i := range pts {
		pts[i] = Point{X: int64(i), Y: rng.Int63n(1 << 20), ID: int32(i)}
	}
	tr := Build(pts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x1 := rng.Int63n(9000)
		tr.Count(x1, x1+1000, 1<<19)
	}
}
