// Package pst implements a static priority search tree answering 3-sided
// range reporting queries: given x1 <= x2 and y0, report every stored point
// with x in [x1, x2] and y >= y0 in O(log n + output) time.
//
// The durable k-skyband index (paper §IV-B, Fig. 4) maps each record to the
// point (arrival time, skyband duration) and retrieves durable candidates
// with the 3-sided query I x [tau, +inf).
package pst

import "sort"

// Point is a 2-D point with an application-assigned identifier.
type Point struct {
	X, Y int64
	ID   int32
}

// Tree is an immutable priority search tree. The zero value is an empty
// tree; construct with Build.
type Tree struct {
	nodes []node
	root  int32
}

type node struct {
	pt          Point
	minX, maxX  int64 // x-range of the subtree, including pt
	left, right int32 // -1 when absent
}

// Build constructs a tree over the given points. The input slice is copied
// and may be in any order.
func Build(pts []Point) *Tree {
	t := &Tree{root: -1}
	if len(pts) == 0 {
		return t
	}
	sorted := make([]Point, len(pts))
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].X < sorted[j].X })
	t.nodes = make([]node, 0, len(sorted))
	t.root = t.build(sorted)
	return t
}

// Len returns the number of stored points.
func (t *Tree) Len() int { return len(t.nodes) }

// build consumes pts (sorted by X) and returns the subtree root index.
func (t *Tree) build(pts []Point) int32 {
	if len(pts) == 0 {
		return -1
	}
	// Extract the point with maximum Y as the subtree root (heap on Y).
	maxI := 0
	for i := 1; i < len(pts); i++ {
		if pts[i].Y > pts[maxI].Y {
			maxI = i
		}
	}
	n := node{
		pt:   pts[maxI],
		minX: pts[0].X,
		maxX: pts[len(pts)-1].X,
	}
	// Remaining points, still sorted by X; reuse storage by shifting.
	rest := make([]Point, 0, len(pts)-1)
	rest = append(rest, pts[:maxI]...)
	rest = append(rest, pts[maxI+1:]...)
	id := int32(len(t.nodes))
	t.nodes = append(t.nodes, n)
	mid := len(rest) / 2
	left := t.build(rest[:mid])
	right := t.build(rest[mid:])
	t.nodes[id].left = left
	t.nodes[id].right = right
	return id
}

// Query invokes visit for every point with X in [x1, x2] and Y >= y0 until
// visit returns false. Visit order is unspecified.
func (t *Tree) Query(x1, x2, y0 int64, visit func(Point) bool) {
	if t.root >= 0 && x1 <= x2 {
		t.query(t.root, x1, x2, y0, visit)
	}
}

func (t *Tree) query(id int32, x1, x2, y0 int64, visit func(Point) bool) bool {
	n := &t.nodes[id]
	// Heap property: every Y below is <= n.pt.Y.
	if n.pt.Y < y0 {
		return true
	}
	if n.maxX < x1 || n.minX > x2 {
		return true
	}
	if n.pt.X >= x1 && n.pt.X <= x2 {
		if !visit(n.pt) {
			return false
		}
	}
	if n.left >= 0 && !t.query(n.left, x1, x2, y0, visit) {
		return false
	}
	if n.right >= 0 && !t.query(n.right, x1, x2, y0, visit) {
		return false
	}
	return true
}

// Collect returns the IDs of all points with X in [x1, x2] and Y >= y0.
func (t *Tree) Collect(x1, x2, y0 int64) []int32 {
	var out []int32
	t.Query(x1, x2, y0, func(p Point) bool {
		out = append(out, p.ID)
		return true
	})
	return out
}

// Count returns the number of points with X in [x1, x2] and Y >= y0.
func (t *Tree) Count(x1, x2, y0 int64) int {
	n := 0
	t.Query(x1, x2, y0, func(Point) bool {
		n++
		return true
	})
	return n
}
