// Package stats provides the small numeric summaries used by the benchmark
// harness: mean, standard deviation, percentiles, and fixed-width text
// histograms.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Std returns the sample standard deviation of xs (0 for fewer than two
// samples).
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)-1))
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs by linear
// interpolation; 0 for empty input. xs is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary bundles the usual run statistics.
type Summary struct {
	N                  int
	Mean, Std          float64
	Min, Median, Max   float64
	P25, P75, P90, P99 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Std:    Std(xs),
		Min:    Percentile(xs, 0),
		P25:    Percentile(xs, 25),
		Median: Percentile(xs, 50),
		P75:    Percentile(xs, 75),
		P90:    Percentile(xs, 90),
		P99:    Percentile(xs, 99),
		Max:    Percentile(xs, 100),
	}
}

// String formats the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.3g std=%.3g min=%.3g p50=%.3g p90=%.3g max=%.3g",
		s.N, s.Mean, s.Std, s.Min, s.Median, s.P90, s.Max)
}

// Histogram renders a fixed-width text histogram of xs with the given number
// of equal-width bins (for the Fig. 7 / Fig. 13 style distribution views).
func Histogram(xs []float64, bins, width int) string {
	if len(xs) == 0 || bins < 1 {
		return "(empty)\n"
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	span := hi - lo
	if span == 0 {
		span = 1
	}
	counts := make([]int, bins)
	for _, x := range xs {
		b := int(float64(bins) * (x - lo) / span)
		if b >= bins {
			b = bins - 1
		}
		counts[b]++
	}
	maxCount := 1
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var sb strings.Builder
	for b, c := range counts {
		bar := strings.Repeat("#", c*width/maxCount)
		fmt.Fprintf(&sb, "[%8.3g, %8.3g) %6d %s\n",
			lo+span*float64(b)/float64(bins),
			lo+span*float64(b+1)/float64(bins), c, bar)
	}
	return sb.String()
}
