package stats

import (
	"math"
	"strings"
	"testing"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean must be 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Fatalf("Mean=%v", got)
	}
}

func TestStd(t *testing.T) {
	if Std([]float64{5}) != 0 {
		t.Fatal("single sample std must be 0")
	}
	got := Std([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(got-2.13809) > 1e-4 {
		t.Fatalf("Std=%v", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {-5, 1}, {150, 5}, {10, 1.4},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v)=%v want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile must be 0")
	}
	// Input must not be reordered.
	orig := []float64{3, 1, 2}
	Percentile(orig, 50)
	if orig[0] != 3 {
		t.Fatal("Percentile must not mutate input")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if s.N != 10 || s.Mean != 5.5 || s.Min != 1 || s.Max != 10 {
		t.Fatalf("Summary=%+v", s)
	}
	if s.Median != 5.5 {
		t.Fatalf("Median=%v", s.Median)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestHistogram(t *testing.T) {
	h := Histogram([]float64{0, 0, 0, 1, 1, 2}, 3, 20)
	lines := strings.Split(strings.TrimRight(h, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("want 3 bins, got %d:\n%s", len(lines), h)
	}
	if !strings.Contains(lines[0], "3") {
		t.Fatalf("first bin should count 3:\n%s", h)
	}
	if Histogram(nil, 5, 10) != "(empty)\n" {
		t.Fatal("empty histogram")
	}
	// Constant data must not divide by zero.
	if h := Histogram([]float64{2, 2, 2}, 4, 10); !strings.Contains(h, "3") {
		t.Fatalf("constant data histogram:\n%s", h)
	}
}
