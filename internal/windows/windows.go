// Package windows implements the two window-based top-k query types that the
// paper contrasts with durable top-k in Example I.1 (Fig. 1): tumbling-window
// top-k and sliding-window top-k, plus the "post-filter the sliding results"
// baseline of footnote 1.
//
// These utilities exist for comparison and case studies; they intentionally
// follow the classic streaming formulations, including their weaknesses
// (placement sensitivity for tumbling, result discontinuity and volume for
// sliding).
package windows

import (
	"sort"

	"repro/internal/data"
	"repro/internal/score"
	"repro/internal/topk"
)

// WindowResult is the top-k of one window placement.
type WindowResult struct {
	Start, End int64       // closed window bounds
	Items      []topk.Item // (score desc, time desc) order
}

// Querier is the fragment of the range top-k building block these utilities
// need; *topk.Index and core engine blocks satisfy it.
type Querier interface {
	Query(s score.Scorer, k int, t1, t2 int64) []topk.Item
}

// Tumbling partitions [start, end] into consecutive winLen-length windows
// anchored at origin and returns each non-empty window's top-k. Window
// boundaries are origin + i*winLen; the paper's case study shows how results
// shift as origin moves.
func Tumbling(idx Querier, s score.Scorer, k int, winLen, origin, start, end int64) []WindowResult {
	if winLen < 1 || start > end {
		return nil
	}
	// Align the first window to the origin grid.
	first := origin
	for first > start {
		first -= winLen
	}
	for first+winLen <= start {
		first += winLen
	}
	var out []WindowResult
	for lo := first; lo <= end; lo += winLen {
		hi := lo + winLen - 1
		items := idx.Query(s, k, lo, hi)
		if len(items) > 0 {
			out = append(out, WindowResult{Start: lo, End: hi, Items: items})
		}
	}
	return out
}

// Sliding slides a winLen-length window over [start, end], one placement per
// record arrival (the classic data-stream view: results change only when a
// record enters), and returns the top-k of each placement whose right
// endpoint lies in [start, end]. Maintenance is incremental in the spirit of
// the SMA algorithm of Mouratidis et al.: the top-k set is recomputed from
// scratch only when a member expires.
func Sliding(ds *data.Dataset, idx Querier, s score.Scorer, k int, winLen, start, end int64) []WindowResult {
	lo, hi := ds.IndexRange(start, end)
	if lo >= hi {
		return nil
	}
	var out []WindowResult
	var cur []topk.Item
	prevLo := -1
	for i := lo; i < hi; i++ {
		t := ds.Time(i)
		wlo := ds.LowerBound(t - winLen + 1)
		switch {
		case prevLo < 0:
			cur = idx.Query(s, k, t-winLen+1, t)
		case expired(cur, wlo):
			cur = idx.Query(s, k, t-winLen+1, t)
		default:
			cur = offer(cur, k, topk.Item{ID: int32(i), Time: t, Score: s.Score(ds.Attrs(i))})
		}
		prevLo = wlo
		snapshot := make([]topk.Item, len(cur))
		copy(snapshot, cur)
		out = append(out, WindowResult{Start: t - winLen + 1, End: t, Items: snapshot})
	}
	return out
}

func expired(items []topk.Item, wlo int) bool {
	for _, it := range items {
		if int(it.ID) < wlo {
			return true
		}
	}
	return false
}

func offer(items []topk.Item, k int, it topk.Item) []topk.Item {
	if len(items) == k && !topk.Better(it, items[k-1]) {
		return items
	}
	pos := len(items)
	for pos > 0 && topk.Better(it, items[pos-1]) {
		pos--
	}
	if len(items) < k {
		items = append(items, topk.Item{})
	}
	copy(items[pos+1:], items[pos:])
	items[pos] = it
	return items
}

// UnionIDs returns the distinct record ids appearing in any window result,
// ascending — the "union of all placements" answer set whose volume the
// paper criticizes for sliding windows.
func UnionIDs(results []WindowResult) []int {
	seen := map[int32]bool{}
	var ids []int
	for _, wr := range results {
		for _, it := range wr.Items {
			if !seen[it.ID] {
				seen[it.ID] = true
				ids = append(ids, int(it.ID))
			}
		}
	}
	sort.Ints(ids)
	return ids
}

// SlidingFilterDurable is the baseline of the paper's footnote 1: run the
// full sliding-window query and keep a record only when it is in the top-k
// of the window ending at its own arrival — which is exactly the durable
// top-k answer, obtained the expensive way (one placement per record).
func SlidingFilterDurable(ds *data.Dataset, idx Querier, s score.Scorer, k int, tau, start, end int64) []int {
	results := Sliding(ds, idx, s, k, tau+1, start, end)
	var ids []int
	for _, wr := range results {
		// The placement ending at time wr.End corresponds to the record
		// arriving at wr.End; it is durable iff it appears in that top-k
		// or the window holds fewer than k records.
		i := ds.At(wr.End)
		if i < 0 {
			continue
		}
		sc := s.Score(ds.Attrs(i))
		if len(wr.Items) < k || sc >= wr.Items[k-1].Score {
			ids = append(ids, i)
		}
	}
	return ids
}
