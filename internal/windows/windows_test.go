package windows

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/score"
	"repro/internal/topk"
)

func randDS(rng *rand.Rand, n, d, domain int) *data.Dataset {
	b := data.NewBuilder(d, n)
	tt := int64(0)
	row := make([]float64, d)
	for i := 0; i < n; i++ {
		tt += int64(1 + rng.Intn(3))
		for j := range row {
			if domain > 0 {
				row[j] = float64(rng.Intn(domain))
			} else {
				row[j] = rng.Float64() * 10
			}
		}
		if err := b.Append(tt, row); err != nil {
			panic(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		panic(err)
	}
	return ds
}

func naiveWindowTopK(ds *data.Dataset, s score.Scorer, k int, t1, t2 int64) []topk.Item {
	lo, hi := ds.IndexRange(t1, t2)
	var items []topk.Item
	for i := lo; i < hi; i++ {
		items = append(items, topk.Item{ID: int32(i), Time: ds.Time(i), Score: s.Score(ds.Attrs(i))})
	}
	sort.Slice(items, func(i, j int) bool { return topk.Better(items[i], items[j]) })
	if len(items) > k {
		items = items[:k]
	}
	return items
}

func TestSlidingMatchesNaivePerPlacement(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 15; trial++ {
		n := 20 + rng.Intn(300)
		ds := randDS(rng, n, 2, 5*(trial%2)) // ties half the time
		idx := topk.Build(ds, topk.Options{LengthThreshold: 8})
		s := score.MustLinear(rng.Float64(), rng.Float64())
		k := 1 + rng.Intn(4)
		winLen := int64(1 + rng.Intn(int(ds.TimeSpan())+1))
		lo, hi := ds.Span()
		got := Sliding(ds, idx, s, k, winLen, lo, hi)
		if len(got) != ds.Len() {
			t.Fatalf("trial %d: %d placements want %d", trial, len(got), ds.Len())
		}
		for _, wr := range got {
			want := naiveWindowTopK(ds, s, k, wr.Start, wr.End)
			if len(wr.Items) != len(want) {
				t.Fatalf("trial %d window [%d,%d]: %d items want %d",
					trial, wr.Start, wr.End, len(wr.Items), len(want))
			}
			for i := range want {
				if wr.Items[i].ID != want[i].ID {
					t.Fatalf("trial %d window [%d,%d] item %d: got %d want %d",
						trial, wr.Start, wr.End, i, wr.Items[i].ID, want[i].ID)
				}
			}
		}
	}
}

func TestTumblingGrid(t *testing.T) {
	ds := randDS(rand.New(rand.NewSource(103)), 100, 1, 0)
	idx := topk.Build(ds, topk.Options{})
	s := score.MustLinear(1)
	lo, hi := ds.Span()
	winLen := (hi - lo) / 5
	if winLen < 1 {
		t.Skip("span too small")
	}
	rs := Tumbling(idx, s, 1, winLen, lo, lo, hi)
	if len(rs) == 0 {
		t.Fatal("no windows returned")
	}
	for i, wr := range rs {
		if wr.End-wr.Start != winLen-1 {
			t.Fatalf("window %d has length %d want %d", i, wr.End-wr.Start+1, winLen)
		}
		if i > 0 && wr.Start <= rs[i-1].Start {
			t.Fatal("windows must advance")
		}
		want := naiveWindowTopK(ds, s, 1, wr.Start, wr.End)
		if wr.Items[0].ID != want[0].ID {
			t.Fatalf("window %d champion %d want %d", i, wr.Items[0].ID, want[0].ID)
		}
	}
	// A different origin shifts boundaries.
	shifted := Tumbling(idx, s, 1, winLen, lo+winLen/2, lo, hi)
	if len(shifted) > 0 && shifted[0].Start == rs[0].Start {
		t.Fatal("shifted grid must move window boundaries")
	}
}

func TestTumblingDegenerate(t *testing.T) {
	ds := randDS(rand.New(rand.NewSource(104)), 10, 1, 0)
	idx := topk.Build(ds, topk.Options{})
	s := score.MustLinear(1)
	if rs := Tumbling(idx, s, 1, 0, 0, 0, 100); rs != nil {
		t.Fatal("zero window length must return nil")
	}
	if rs := Tumbling(idx, s, 1, 10, 0, 100, 50); rs != nil {
		t.Fatal("inverted range must return nil")
	}
}

func TestSlidingFilterDurableMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	for trial := 0; trial < 15; trial++ {
		n := 20 + rng.Intn(300)
		ds := randDS(rng, n, 2, 4*(trial%2))
		idx := topk.Build(ds, topk.Options{LengthThreshold: 8})
		s := score.MustLinear(rng.Float64(), rng.Float64())
		k := 1 + rng.Intn(4)
		lo, hi := ds.Span()
		span := hi - lo
		tau := rng.Int63n(span + 1)
		start := lo + rng.Int63n(span+1)
		end := start + rng.Int63n(hi-start+1)
		got := SlidingFilterDurable(ds, idx, s, k, tau, start, end)
		want := core.BruteForce(ds, s, k, tau, start, end, core.LookBack)
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d k=%d tau=%d I=[%d,%d]: got %v want %v",
				trial, k, tau, start, end, got, want)
		}
	}
}

func TestUnionIDs(t *testing.T) {
	rs := []WindowResult{
		{Items: []topk.Item{{ID: 3}, {ID: 1}}},
		{Items: []topk.Item{{ID: 1}, {ID: 7}}},
	}
	got := UnionIDs(rs)
	if !reflect.DeepEqual(got, []int{1, 3, 7}) {
		t.Fatalf("UnionIDs=%v", got)
	}
}
