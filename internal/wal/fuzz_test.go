package wal

import (
	"bytes"
	"path/filepath"
	"testing"
)

// FuzzWALReplay feeds arbitrary bytes to the torn-tail repair path: the
// decoder must never panic, must recover a prefix that re-encodes to the
// exact bytes it read, and a Log opened over the same bytes must agree
// with the standalone scan and replay cleanly.
func FuzzWALReplay(f *testing.F) {
	// Seeds: a clean log, a torn tail, a flipped payload bit, a flipped
	// length field, garbage, and an oversized length.
	var clean []byte
	for i := 0; i < 8; i++ {
		clean = encodeAppend(clean, int64(i*10), []float64{float64(i), -float64(i)})
	}
	f.Add(clean)
	f.Add(clean[:len(clean)-5])
	torn := append([]byte(nil), clean...)
	torn[len(torn)-9] ^= 0x10
	f.Add(torn)
	badLen := append([]byte(nil), clean...)
	badLen[0] = 0xff
	badLen[3] = 0xff
	f.Add(badLen)
	f.Add([]byte("not a wal segment"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		times, attrs := RepairScan(data)

		// The recovered records must re-encode to a byte-exact prefix.
		var re []byte
		for i := range times {
			re = encodeAppend(re, times[i], attrs[i])
		}
		if !bytes.HasPrefix(data, re) {
			t.Fatalf("recovered %d records do not re-encode to a prefix of the input", len(times))
		}

		// A Log opened over the same bytes repairs without panicking and
		// replays at least the structurally-decodable prefix.
		fs := NewMemFS()
		if err := fs.MkdirAll("wal"); err != nil {
			t.Fatalf("MkdirAll: %v", err)
		}
		seg, err := fs.Create(filepath.Join("wal", segmentName(0)))
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		if len(data) > 0 {
			if _, err := seg.WriteAt(data, 0); err != nil {
				t.Fatalf("WriteAt: %v", err)
			}
		}
		seg.Close()
		l, err := Open("wal", Options{FS: fs})
		if err != nil {
			t.Fatalf("Open over fuzzed segment: %v", err)
		}
		defer l.Close()
		// Open counts CRC-valid frames; RepairScan additionally requires
		// the payload to decode as an append record, so it can stop early.
		if l.Next() < uint64(len(times)) {
			t.Fatalf("Open recovered %d records, standalone scan %d", l.Next(), len(times))
		}
		n := 0
		err = l.Replay(0, func(lsn uint64, tm int64, a []float64) error {
			if n < len(times) && tm != times[n] {
				t.Fatalf("replay record %d: t=%d, scan said %d", n, tm, times[n])
			}
			n++
			return nil
		})
		// Replay may error on a CRC-valid frame whose payload is not a
		// well-formed append record — but never before the scanned prefix.
		if err != nil && n < len(times) {
			t.Fatalf("Replay failed at record %d (< scanned prefix %d): %v", n, len(times), err)
		}
	})
}
