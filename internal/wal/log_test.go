package wal

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

// fsUnderTest runs f against both the in-memory FS and the real one.
func fsUnderTest(t *testing.T, f func(t *testing.T, fs FS, dir string)) {
	t.Helper()
	t.Run("memfs", func(t *testing.T) { f(t, NewMemFS(), "wal") })
	t.Run("osfs", func(t *testing.T) { f(t, OSFS{}, filepath.Join(t.TempDir(), "wal")) })
}

// appendN appends rows i=from..from+n-1 with t=i and attrs {i, 2i} and
// commits once (group commit).
func appendN(t *testing.T, l *Log, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		lsn, err := l.Append(int64(i), []float64{float64(i), 2 * float64(i)})
		if err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
		if lsn != uint64(i) {
			t.Fatalf("Append(%d): lsn = %d, want %d", i, lsn, i)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
}

// collect replays [from, ∞) into slices.
func collect(t *testing.T, l *Log, from uint64) (lsns []uint64, times []int64, attrs [][]float64) {
	t.Helper()
	err := l.Replay(from, func(lsn uint64, tm int64, a []float64) error {
		lsns = append(lsns, lsn)
		times = append(times, tm)
		attrs = append(attrs, append([]float64(nil), a...))
		return nil
	})
	if err != nil {
		t.Fatalf("Replay(%d): %v", from, err)
	}
	return
}

func TestLogAppendReplayRoundTrip(t *testing.T) {
	fsUnderTest(t, func(t *testing.T, fs FS, dir string) {
		l, err := Open(dir, Options{FS: fs})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		appendN(t, l, 0, 100)
		lsns, times, attrs := collect(t, l, 0)
		if len(lsns) != 100 {
			t.Fatalf("replayed %d records, want 100", len(lsns))
		}
		for i := range lsns {
			if lsns[i] != uint64(i) || times[i] != int64(i) {
				t.Fatalf("record %d: lsn=%d t=%d", i, lsns[i], times[i])
			}
			if want := []float64{float64(i), 2 * float64(i)}; !reflect.DeepEqual(attrs[i], want) {
				t.Fatalf("record %d: attrs = %v, want %v", i, attrs[i], want)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		// Reopen resumes at the exact next LSN with all records intact.
		l2, err := Open(dir, Options{FS: fs})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer l2.Close()
		if got := l2.Next(); got != 100 {
			t.Fatalf("Next after reopen = %d, want 100", got)
		}
		lsns, _, _ = collect(t, l2, 42)
		if len(lsns) != 58 || lsns[0] != 42 {
			t.Fatalf("partial replay: %d records from %d", len(lsns), lsns[0])
		}
	})
}

func TestLogUncommittedNotReplayed(t *testing.T) {
	l, err := Open("wal", Options{FS: NewMemFS()})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer l.Close()
	appendN(t, l, 0, 5)
	if _, err := l.Append(5, []float64{5}); err != nil {
		t.Fatalf("Append: %v", err)
	}
	lsns, _, _ := collect(t, l, 0)
	if len(lsns) != 5 {
		t.Fatalf("replayed %d records, want 5 committed only", len(lsns))
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if lsns, _, _ = collect(t, l, 0); len(lsns) != 6 {
		t.Fatalf("replayed %d records after commit, want 6", len(lsns))
	}
}

func TestLogSegmentRotationAndTruncate(t *testing.T) {
	fsUnderTest(t, func(t *testing.T, fs FS, dir string) {
		// Tiny segments force rotation every few records.
		l, err := Open(dir, Options{FS: fs, SegmentSize: 256})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		for i := 0; i < 50; i++ {
			appendN(t, l, i, 1)
		}
		names, err := fs.ReadDir(dir)
		if err != nil {
			t.Fatalf("ReadDir: %v", err)
		}
		if len(names) < 3 {
			t.Fatalf("expected several segments, got %v", names)
		}

		// Truncating below the low-water mark removes whole old segments
		// but never the active one, and replay from the mark still works.
		if err := l.TruncateBefore(30); err != nil {
			t.Fatalf("TruncateBefore: %v", err)
		}
		if base := l.Base(); base > 30 {
			t.Fatalf("Base after truncate = %d, want <= 30", base)
		}
		left, _ := fs.ReadDir(dir)
		if len(left) >= len(names) {
			t.Fatalf("truncate removed nothing: %d -> %d segments", len(names), len(left))
		}
		lsns, _, _ := collect(t, l, 30)
		if len(lsns) != 20 || lsns[0] != 30 {
			t.Fatalf("replay after truncate: %d records from %v", len(lsns), lsns[:1])
		}
		if err := l.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}

		// Reopen after truncation: Next is preserved, Base is the oldest
		// surviving segment.
		l2, err := Open(dir, Options{FS: fs, SegmentSize: 256})
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		defer l2.Close()
		if got := l2.Next(); got != 50 {
			t.Fatalf("Next after reopen = %d, want 50", got)
		}
	})
}

func TestLogTornTailRepair(t *testing.T) {
	fsUnderTest(t, func(t *testing.T, fs FS, dir string) {
		l, err := Open(dir, Options{FS: fs})
		if err != nil {
			t.Fatalf("Open: %v", err)
		}
		appendN(t, l, 0, 10)
		l.Close()

		// Tear the final record: chop a few bytes off the segment.
		name := filepath.Join(dir, segmentName(0))
		size, _ := fs.Size(name)
		f, err := fs.Open(name)
		if err != nil {
			t.Fatalf("open segment: %v", err)
		}
		if err := f.Truncate(size - 3); err != nil {
			t.Fatalf("tear: %v", err)
		}
		f.Close()

		l2, err := Open(dir, Options{FS: fs})
		if err != nil {
			t.Fatalf("reopen torn: %v", err)
		}
		if got := l2.Next(); got != 9 {
			t.Fatalf("Next after torn-tail repair = %d, want 9", got)
		}
		lsns, _, _ := collect(t, l2, 0)
		if len(lsns) != 9 {
			t.Fatalf("replayed %d records, want 9", len(lsns))
		}
		// The log accepts new appends at the repaired position.
		appendN(t, l2, 9, 1)
		if lsns, _, _ = collect(t, l2, 0); len(lsns) != 10 {
			t.Fatalf("replayed %d records after repair+append, want 10", len(lsns))
		}
		l2.Close()
	})
}

func TestLogCorruptMiddleDropsLaterSegments(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("wal", Options{FS: fs, SegmentSize: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 50; i++ {
		appendN(t, l, i, 1)
	}
	l.Close()
	names, _ := fs.ReadDir("wal")
	if len(names) < 3 {
		t.Fatalf("need >=3 segments, got %d", len(names))
	}

	// Flip a payload bit in the second segment.
	target := filepath.Join("wal", names[1])
	f, _ := fs.Open(target)
	var hdr [8]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		t.Fatalf("read hdr: %v", err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], 8); err != nil {
		t.Fatalf("read byte: %v", err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], 8); err != nil {
		t.Fatalf("flip: %v", err)
	}
	f.Close()
	secondBase, _ := parseSegmentName(names[1])

	l2, err := Open("wal", Options{FS: fs, SegmentSize: 256})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l2.Close()
	if got := l2.Next(); got != secondBase {
		t.Fatalf("Next = %d, want %d (corruption truncates at segment %s)", got, secondBase, names[1])
	}
	left, _ := fs.ReadDir("wal")
	if len(left) != 2 {
		t.Fatalf("later segments not removed: %v", left)
	}
	lsns, _, _ := collect(t, l2, 0)
	if uint64(len(lsns)) != secondBase {
		t.Fatalf("replayed %d records, want %d", len(lsns), secondBase)
	}
}

// readErrFS fails every ReadAt on one file, simulating a transient I/O
// fault (not torn data: the bytes on disk are intact).
type readErrFS struct {
	FS
	name string
	err  error
}

func (fs readErrFS) Open(name string) (File, error) {
	f, err := fs.FS.Open(name)
	if err != nil {
		return nil, err
	}
	if filepath.Base(name) == fs.name {
		return readErrFile{File: f, err: fs.err}, nil
	}
	return f, nil
}

type readErrFile struct {
	File
	err error
}

func (f readErrFile) ReadAt([]byte, int64) (int, error) { return 0, f.err }

// TestOpenReadErrorFailsWithoutRepair: an I/O error while scanning is not a
// torn tail. Open must fail and leave every segment untouched — repairing
// here would truncate durable fsynced records (and delete every later
// segment) over a transient read fault.
func TestOpenReadErrorFailsWithoutRepair(t *testing.T) {
	fs := NewMemFS()
	l, err := Open("wal", Options{FS: fs, SegmentSize: 256, Sync: SyncAlways})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 30; i++ {
		appendN(t, l, i, 1)
	}
	l.Close()
	names, _ := fs.ReadDir("wal")
	if len(names) < 2 {
		t.Fatalf("need >=2 segments, got %v", names)
	}

	// Reads of the first segment fail: Open must surface the error, not
	// treat the unreadable segment as empty.
	boom := errors.New("transient read fault")
	if _, err := Open("wal", Options{FS: readErrFS{FS: fs, name: names[0], err: boom}, SegmentSize: 256}); !errors.Is(err, boom) {
		t.Fatalf("Open over failing reads = %v, want the injected error", err)
	}

	// Nothing was repaired: every segment survives, and once the fault
	// clears a plain reopen replays all 30 durable records.
	after, _ := fs.ReadDir("wal")
	if !reflect.DeepEqual(after, names) {
		t.Fatalf("failed Open changed the segment set: %v -> %v", names, after)
	}
	l2, err := Open("wal", Options{FS: fs, SegmentSize: 256})
	if err != nil {
		t.Fatalf("reopen after fault cleared: %v", err)
	}
	defer l2.Close()
	if got := l2.Next(); got != 30 {
		t.Fatalf("Next after fault cleared = %d, want 30", got)
	}
	if lsns, _, _ := collect(t, l2, 0); len(lsns) != 30 {
		t.Fatalf("replayed %d records, want all 30", len(lsns))
	}
}

func TestLogSyncPolicies(t *testing.T) {
	for _, pol := range []SyncPolicy{SyncAlways, SyncInterval, SyncNone} {
		t.Run(pol.String(), func(t *testing.T) {
			l, err := Open("wal", Options{FS: NewMemFS(), Sync: pol, SyncEvery: time.Millisecond})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			appendN(t, l, 0, 20)
			if pol == SyncInterval {
				time.Sleep(5 * time.Millisecond) // let the ticker fire
			}
			if err := l.Sync(); err != nil {
				t.Fatalf("Sync: %v", err)
			}
			if err := l.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			if _, err := l.Append(0, nil); err != ErrClosed {
				t.Fatalf("Append after Close = %v, want ErrClosed", err)
			}
		})
	}
}

func TestParseSyncPolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want SyncPolicy
	}{{"always", SyncAlways}, {"interval", SyncInterval}, {"none", SyncNone}} {
		got, err := ParseSyncPolicy(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseSyncPolicy(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q, want %q", got.String(), tc.in)
		}
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("ParseSyncPolicy accepted garbage")
	}
}

func TestRepairScanRandomTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var buf []byte
	var wantTimes []int64
	var offsets []int // frame boundaries
	for i := 0; i < 40; i++ {
		offsets = append(offsets, len(buf))
		attrs := make([]float64, 2)
		for j := range attrs {
			attrs[j] = rng.NormFloat64()
		}
		buf = encodeAppend(buf, int64(i), attrs)
		wantTimes = append(wantTimes, int64(i))
	}
	offsets = append(offsets, len(buf))

	for cut := 0; cut <= len(buf); cut += 1 + rng.Intn(7) {
		times, _ := RepairScan(buf[:cut])
		// The recovered prefix is the number of complete frames before cut.
		want := 0
		for want+1 < len(offsets) && offsets[want+1] <= cut {
			want++
		}
		if len(times) != want {
			t.Fatalf("cut %d: recovered %d records, want %d", cut, len(times), want)
		}
		if !reflect.DeepEqual(times, append([]int64(nil), wantTimes[:want]...)) && want > 0 {
			t.Fatalf("cut %d: wrong prefix", cut)
		}
	}
}

func TestSegmentNameRoundTrip(t *testing.T) {
	for _, base := range []uint64{0, 1, 999, 1 << 40} {
		name := segmentName(base)
		got, ok := parseSegmentName(name)
		if !ok || got != base {
			t.Fatalf("parseSegmentName(%q) = %d, %v", name, got, ok)
		}
	}
	for _, bad := range []string{"x.wal", "0000.wal", "aaaaaaaaaaaaaaaaaaaa.wal", fmt.Sprintf("%020d.tmp", 3)} {
		if _, ok := parseSegmentName(bad); ok {
			t.Fatalf("parseSegmentName accepted %q", bad)
		}
	}
}
