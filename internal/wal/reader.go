package wal

import (
	"fmt"
	"path/filepath"
)

// Replay invokes fn for every committed record with LSN >= from, in LSN
// order. It reads segments from disk, so records appended but not yet
// committed are not visited — recovery calls it immediately after Open,
// before any new appends. fn must not call back into the log, and must
// copy attrs if it retains the slice past the call.
func (l *Log) Replay(from uint64, fn func(lsn uint64, t int64, attrs []float64) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	segs := append([]segment(nil), l.sealed...)
	segs = append(segs, segment{name: segmentName(l.segBase), base: l.segBase})
	var attrs []float64
	for i, s := range segs {
		end := l.next
		if i+1 < len(segs) {
			end = segs[i+1].base
		}
		if end <= from {
			continue
		}
		path := filepath.Join(l.dir, s.name)
		size, err := l.fs.Size(path)
		if err != nil {
			return fmt.Errorf("wal: sizing %s: %w", s.name, err)
		}
		f, err := l.fs.Open(path)
		if err != nil {
			return fmt.Errorf("wal: opening %s: %w", s.name, err)
		}
		data := make([]byte, size)
		if size > 0 {
			if _, err := f.ReadAt(data, 0); err != nil {
				f.Close()
				return fmt.Errorf("wal: reading %s: %w", s.name, err)
			}
		}
		f.Close()
		lsn := s.base
		off := 0
		for off < len(data) && lsn < end {
			payload, n, ok := parseFrame(data[off:])
			if !ok {
				return fmt.Errorf("wal: corrupt frame in %s at offset %d (lsn %d)", s.name, off, lsn)
			}
			off += n
			if lsn >= from {
				var t int64
				t, attrs, err = decodeAppend(payload, attrs)
				if err != nil {
					return fmt.Errorf("wal: %s lsn %d: %w", s.name, lsn, err)
				}
				if err := fn(lsn, t, attrs); err != nil {
					return err
				}
			}
			lsn++
		}
	}
	return nil
}

// RepairScan walks raw segment bytes the way Open's repair does, returning
// the decoded records of the valid prefix. It never fails on corrupt input
// — it stops at the first invalid frame — and exists for the fuzz harness
// and tests that reason about torn logs without constructing a Log.
func RepairScan(data []byte) (times []int64, attrs [][]float64) {
	off := 0
	for off < len(data) {
		payload, n, ok := parseFrame(data[off:])
		if !ok {
			return times, attrs
		}
		off += n
		t, a, err := decodeAppend(payload, nil)
		if err != nil {
			return times, attrs
		}
		times = append(times, t)
		attrs = append(attrs, append([]float64(nil), a...))
	}
	return times, attrs
}
