// Package wal implements the write-ahead log that makes live ingestion
// crash-safe. The live engines (core.LiveEngine, core.LiveShardedEngine)
// ingest entirely in memory; this package gives them a durable append
// stream so a killed process can recover every acknowledged row.
//
// A log is a directory of segment files named %020d.wal after the LSN of
// their first record. LSNs are dense: record i of the stream has LSN
// base+i, so for the durable engines an LSN is exactly a global row index.
// Within a segment each record is framed as
//
//	uint32 LE length | uint32 LE CRC32-IEEE(payload) | payload
//
// Appends are group-committed: Append buffers frames in memory and Commit
// writes them with a single WriteAt, syncing per the configured policy
// (SyncAlways fsyncs every commit; SyncInterval fsyncs from a background
// ticker; SyncNone leaves flushing to the OS). Segments rotate once they
// exceed Options.SegmentSize; TruncateBefore drops whole segments below
// the low-water mark once a checkpoint makes their rows durable elsewhere.
//
// Open repairs a torn tail: it scans forward from the first segment and,
// at the first frame whose length or checksum does not verify, truncates
// that segment and removes every later one. Everything before the torn
// frame — the durable prefix — is preserved and replayable.
package wal

import (
	"errors"
	"time"
)

// SyncPolicy selects when commits reach stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs on every Commit: an acknowledged append survives
	// any crash.
	SyncAlways SyncPolicy = iota
	// SyncInterval fsyncs from a background ticker every Options.SyncEvery:
	// a crash loses at most the last interval's commits.
	SyncInterval
	// SyncNone never fsyncs explicitly: durability is whatever the OS
	// flushes on its own. Fastest; for bulk loads and benchmarks.
	SyncNone
)

// String implements flag.Value-style rendering ("always"/"interval"/"none").
func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncInterval:
		return "interval"
	case SyncNone:
		return "none"
	}
	return "unknown"
}

// ParseSyncPolicy parses "always", "interval" or "none".
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "interval":
		return SyncInterval, nil
	case "none":
		return SyncNone, nil
	}
	return 0, errors.New("wal: unknown sync policy " + s + " (want always, interval or none)")
}

// Options configures a Log.
type Options struct {
	// FS is the filesystem the log lives on; nil means the real one (OSFS).
	FS FS
	// SegmentSize is the rotation threshold in bytes (default 4 MiB). A
	// segment rotates at the first commit that carries it past the
	// threshold, so segments slightly exceed it.
	SegmentSize int64
	// Sync is the fsync policy (default SyncAlways).
	Sync SyncPolicy
	// SyncEvery is the SyncInterval ticker period (default 50ms).
	SyncEvery time.Duration
	// Base is the LSN of the first record when creating a new, empty log.
	// Ignored when the directory already holds segments.
	Base uint64
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS{}
	}
	if o.SegmentSize <= 0 {
		o.SegmentSize = 4 << 20
	}
	if o.SyncEvery <= 0 {
		o.SyncEvery = 50 * time.Millisecond
	}
	return o
}

// ErrClosed is returned by operations on a closed Log.
var ErrClosed = errors.New("wal: log is closed")
