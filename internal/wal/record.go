package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Frame layout. Every record in a segment is framed as
//
//	uint32 LE payload length | uint32 LE CRC32-IEEE(payload) | payload
//
// The length is bounded by MaxRecord so a corrupt length field cannot drive
// a huge allocation; the checksum covers only the payload, so a torn write
// anywhere inside a frame (header or body) is detected and the reader
// truncates the log at that frame.
const (
	frameHeaderSize = 8
	// MaxRecord bounds one record's payload size. Append records are tiny
	// (8 + 8·dims bytes); the bound exists purely to reject garbage lengths
	// while scanning a damaged segment.
	MaxRecord = 1 << 20
)

// Record payload layout for one appended row:
//
//	int64 LE time | dims × float64 LE attrs
//
// The dimensionality is implicit (payloadLen/8 − 1), fixed per log by the
// owning engine; the decoder only checks structural validity.

// appendRecordSize returns the encoded payload size for a row of d attrs.
func appendRecordSize(d int) int { return 8 + 8*d }

// encodeAppend appends the framed record for (t, attrs) to buf and returns
// the extended slice.
func encodeAppend(buf []byte, t int64, attrs []float64) []byte {
	n := appendRecordSize(len(attrs))
	off := len(buf)
	buf = append(buf, make([]byte, frameHeaderSize+n)...)
	payload := buf[off+frameHeaderSize:]
	binary.LittleEndian.PutUint64(payload[0:], uint64(t))
	for i, a := range attrs {
		binary.LittleEndian.PutUint64(payload[8+8*i:], math.Float64bits(a))
	}
	binary.LittleEndian.PutUint32(buf[off:], uint32(n))
	binary.LittleEndian.PutUint32(buf[off+4:], crc32.ChecksumIEEE(payload))
	return buf
}

// decodeAppend parses one record payload into (t, attrs). attrs is appended
// to dst (pass a reused slice to avoid allocation).
func decodeAppend(payload []byte, dst []float64) (t int64, attrs []float64, err error) {
	if len(payload) < 8 || len(payload)%8 != 0 {
		return 0, nil, fmt.Errorf("wal: malformed append record: %d bytes", len(payload))
	}
	t = int64(binary.LittleEndian.Uint64(payload))
	d := len(payload)/8 - 1
	attrs = dst[:0]
	for i := 0; i < d; i++ {
		attrs = append(attrs, math.Float64frombits(binary.LittleEndian.Uint64(payload[8+8*i:])))
	}
	return t, attrs, nil
}

// parseFrame reads one frame from buf. It returns the payload (aliasing buf)
// and the total frame size consumed. ok is false when buf holds no complete,
// checksum-valid frame at offset 0 — the torn/corrupt-tail signal.
func parseFrame(buf []byte) (payload []byte, size int, ok bool) {
	if len(buf) < frameHeaderSize {
		return nil, 0, false
	}
	n := binary.LittleEndian.Uint32(buf)
	if n > MaxRecord {
		return nil, 0, false
	}
	size = frameHeaderSize + int(n)
	if len(buf) < size {
		return nil, 0, false
	}
	payload = buf[frameHeaderSize:size]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(buf[4:]) {
		return nil, 0, false
	}
	return payload, size, true
}
