package wal

import (
	"io"
	"os"
	"path/filepath"
)

// File is the random-access file contract the durability layer writes
// through. *os.File satisfies it directly; MemFS provides an in-memory
// implementation for tests, and package faultfs wraps either with injectable
// torn writes, short reads, bit flips and crash points. The interface is
// deliberately identical to pagestore.BlockFile so checkpoint files and WAL
// segments share one fault-injection surface.
type File interface {
	io.ReaderAt
	io.WriterAt
	// Truncate clips (or zero-extends) the file to size bytes.
	Truncate(size int64) error
	// Sync flushes written data to stable storage (fsync).
	Sync() error
	Close() error
}

// FS is the filesystem surface the durability layer runs on. Paths are plain
// strings joined with filepath.Join by callers; implementations need not be
// safe for concurrent use of the same file, but independent files may be
// used from different goroutines (the WAL writer and the checkpointer).
type FS interface {
	// Create opens name for read/write, creating it and truncating any
	// existing content.
	Create(name string) (File, error)
	// Open opens an existing file for read/write.
	Open(name string) (File, error)
	// ReadDir returns the names (not full paths) of dir's entries in
	// lexical order.
	ReadDir(dir string) ([]string, error)
	// Size returns the current size of the named file.
	Size(name string) (int64, error)
	// Remove deletes the named file.
	Remove(name string) error
	// Rename atomically replaces newname with oldname's content.
	Rename(oldname, newname string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
}

// OSFS is the production FS backed by the operating system.
type OSFS struct{}

// Create implements FS.
func (OSFS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
}

// Open implements FS.
func (OSFS) Open(name string) (File, error) {
	return os.OpenFile(name, os.O_RDWR, 0)
}

// ReadDir implements FS.
func (OSFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

// Size implements FS.
func (OSFS) Size(name string) (int64, error) {
	st, err := os.Stat(name)
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// Remove implements FS.
func (OSFS) Remove(name string) error { return os.Remove(name) }

// Rename implements FS.
func (OSFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// MkdirAll implements FS.
func (OSFS) MkdirAll(dir string) error { return os.MkdirAll(filepath.Clean(dir), 0o755) }
