package wal

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// segmentName renders the canonical file name for a segment whose first
// record has the given LSN.
func segmentName(base uint64) string { return fmt.Sprintf("%020d.wal", base) }

// parseSegmentName extracts the base LSN from a segment file name.
func parseSegmentName(name string) (uint64, bool) {
	if !strings.HasSuffix(name, ".wal") || len(name) != 24 {
		return 0, false
	}
	base, err := strconv.ParseUint(name[:20], 10, 64)
	if err != nil {
		return 0, false
	}
	return base, true
}

// segment is one sealed (no longer written) segment on disk.
type segment struct {
	name string
	base uint64 // LSN of its first record
}

// Log is a segmented write-ahead log. Append buffers a frame; Commit writes
// all buffered frames with one WriteAt and makes them durable per the sync
// policy. Safe for concurrent use, though the durable engines serialize
// appends themselves.
type Log struct {
	fs   FS
	dir  string
	opts Options

	mu      sync.Mutex
	sealed  []segment // fully-written segments, oldest first
	seg     File      // segment being appended
	segBase uint64    // LSN of seg's first record
	segSize int64     // committed bytes in seg
	next    uint64    // LSN the next Append receives
	buf     []byte    // appended-but-uncommitted frames
	nbuf    int       // records in buf
	dirty   bool      // committed bytes not yet fsynced
	closed  bool

	stop     chan struct{} // interval-sync ticker shutdown
	tickerWG sync.WaitGroup
}

// Open opens (or creates) the log in dir and repairs any torn tail: the
// first frame that fails its length or checksum validation truncates its
// segment, and every later segment is removed. The returned log appends at
// the LSN after the last valid record (opts.Base for a fresh log). Only
// frame validation triggers repair; an I/O error while scanning fails Open
// so a transient read fault can never truncate durable records.
func Open(dir string, opts Options) (*Log, error) {
	opts = opts.withDefaults()
	if err := opts.FS.MkdirAll(dir); err != nil {
		return nil, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	l := &Log{fs: opts.FS, dir: dir, opts: opts}
	if err := l.load(); err != nil {
		return nil, err
	}
	if opts.Sync == SyncInterval {
		l.stop = make(chan struct{})
		l.tickerWG.Add(1)
		go l.syncLoop()
	}
	return l, nil
}

// load scans dir, repairs the tail, and positions the log for appending.
func (l *Log) load() error {
	names, err := l.fs.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: listing %s: %w", l.dir, err)
	}
	var segs []segment
	for _, name := range names {
		if base, ok := parseSegmentName(name); ok {
			segs = append(segs, segment{name: name, base: base})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].base < segs[j].base })

	if len(segs) == 0 {
		return l.startSegment(l.opts.Base)
	}

	// Scan forward; the first torn frame ends the durable log.
	for i, s := range segs {
		records, validBytes, clean, err := l.scanSegment(s)
		if err != nil {
			return err
		}
		if i+1 < len(segs) && clean && segs[i+1].base != s.base+uint64(records) {
			// A gap between segments (e.g. a lost file) also ends the log.
			clean = false
		}
		if clean {
			continue
		}
		// Truncate this segment at the torn frame and drop later segments.
		if err := l.truncateSegment(s, validBytes); err != nil {
			return err
		}
		for _, later := range segs[i+1:] {
			if err := l.fs.Remove(filepath.Join(l.dir, later.name)); err != nil {
				return fmt.Errorf("wal: removing %s: %w", later.name, err)
			}
		}
		segs = segs[:i+1]
		break
	}

	// Reopen the final segment for appending; earlier ones are sealed.
	last := segs[len(segs)-1]
	records, validBytes, _, err := l.scanSegment(last)
	if err != nil {
		return err
	}
	f, err := l.fs.Open(filepath.Join(l.dir, last.name))
	if err != nil {
		return fmt.Errorf("wal: opening %s: %w", last.name, err)
	}
	l.sealed = append([]segment(nil), segs[:len(segs)-1]...)
	l.seg = f
	l.segBase = last.base
	l.segSize = validBytes
	l.next = last.base + uint64(records)
	return nil
}

// scanSegment walks a segment's frames. It returns the record count, the
// byte length of the valid prefix, and whether the whole file verified.
func (l *Log) scanSegment(s segment) (records int, validBytes int64, clean bool, err error) {
	path := filepath.Join(l.dir, s.name)
	size, err := l.fs.Size(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: sizing %s: %w", s.name, err)
	}
	f, err := l.fs.Open(path)
	if err != nil {
		return 0, 0, false, fmt.Errorf("wal: opening %s: %w", s.name, err)
	}
	defer f.Close()
	data := make([]byte, size)
	if size > 0 {
		n, rerr := f.ReadAt(data, 0)
		switch {
		case rerr == nil:
		case errors.Is(rerr, io.EOF):
			// The file is shorter than Size reported: scan the bytes that
			// were read and let frame validation find the torn tail.
			data = data[:n]
		default:
			// A read failure is not a torn tail. Repairing here would
			// truncate durable fsynced records over a transient I/O error,
			// so fail Open and leave the segment untouched.
			return 0, 0, false, fmt.Errorf("wal: reading %s: %w", s.name, rerr)
		}
	}
	off := 0
	for off < len(data) {
		_, n, ok := parseFrame(data[off:])
		if !ok {
			return records, int64(off), false, nil
		}
		off += n
		records++
	}
	return records, int64(off), true, nil
}

// truncateSegment clips a torn segment to its valid prefix and syncs it.
func (l *Log) truncateSegment(s segment, validBytes int64) error {
	f, err := l.fs.Open(filepath.Join(l.dir, s.name))
	if err != nil {
		return fmt.Errorf("wal: opening %s for repair: %w", s.name, err)
	}
	defer f.Close()
	if err := f.Truncate(validBytes); err != nil {
		return fmt.Errorf("wal: truncating %s: %w", s.name, err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("wal: syncing repaired %s: %w", s.name, err)
	}
	return nil
}

// startSegment creates a fresh segment whose first record will be base.
func (l *Log) startSegment(base uint64) error {
	name := segmentName(base)
	f, err := l.fs.Create(filepath.Join(l.dir, name))
	if err != nil {
		return fmt.Errorf("wal: creating segment %s: %w", name, err)
	}
	l.seg = f
	l.segBase = base
	l.segSize = 0
	l.next = base
	return nil
}

// Base returns the LSN of the oldest record still held by the log.
func (l *Log) Base() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.sealed) > 0 {
		return l.sealed[0].base
	}
	return l.segBase
}

// Next returns the LSN the next Append will receive.
func (l *Log) Next() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.next
}

// Append buffers one row record and returns its LSN. The record is not
// durable — not even written — until Commit.
func (l *Log) Append(t int64, attrs []float64) (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	lsn := l.next
	l.buf = encodeAppend(l.buf, t, attrs)
	l.nbuf++
	l.next++
	return lsn, nil
}

// Commit writes all buffered records with a single WriteAt and applies the
// sync policy (SyncAlways fsyncs before returning). It also rotates the
// segment once it exceeds Options.SegmentSize.
func (l *Log) Commit() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.commitLocked()
}

func (l *Log) commitLocked() error {
	if l.closed {
		return ErrClosed
	}
	if len(l.buf) > 0 {
		n, err := l.seg.WriteAt(l.buf, l.segSize)
		if err != nil {
			// A partial write leaves a torn frame on disk; the open repair
			// path truncates it. The in-memory state stays consistent with
			// what was attempted so a retry rewrites the same range.
			return fmt.Errorf("wal: writing segment %s: %w", segmentName(l.segBase), err)
		}
		l.segSize += int64(n)
		l.buf = l.buf[:0]
		l.nbuf = 0
		l.dirty = true
	}
	if l.opts.Sync == SyncAlways && l.dirty {
		if err := l.seg.Sync(); err != nil {
			return fmt.Errorf("wal: syncing segment %s: %w", segmentName(l.segBase), err)
		}
		l.dirty = false
	}
	if l.segSize >= l.opts.SegmentSize {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	return nil
}

// rotateLocked seals the current segment and starts a new one at l.next.
// The sealed segment is synced regardless of policy so only the active
// segment can ever be torn.
func (l *Log) rotateLocked() error {
	if err := l.seg.Sync(); err != nil {
		return fmt.Errorf("wal: syncing segment %s before rotation: %w", segmentName(l.segBase), err)
	}
	l.dirty = false
	if err := l.seg.Close(); err != nil {
		return fmt.Errorf("wal: closing segment %s: %w", segmentName(l.segBase), err)
	}
	l.sealed = append(l.sealed, segment{name: segmentName(l.segBase), base: l.segBase})
	return l.startSegment(l.next)
}

// Sync forces buffered records to disk and fsyncs, regardless of policy.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if len(l.buf) > 0 {
		if err := l.commitLocked(); err != nil {
			return err
		}
	}
	if l.dirty {
		if err := l.seg.Sync(); err != nil {
			return fmt.Errorf("wal: syncing segment %s: %w", segmentName(l.segBase), err)
		}
		l.dirty = false
	}
	return nil
}

// TruncateBefore advances the low-water mark: whole segments whose records
// all have LSN < lsn are deleted. The active segment is never deleted, so
// the surviving base may be below lsn; recovery replays from its own mark.
func (l *Log) TruncateBefore(lsn uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	for len(l.sealed) > 0 {
		// The first sealed segment ends where its successor begins.
		end := l.segBase
		if len(l.sealed) > 1 {
			end = l.sealed[1].base
		}
		if end > lsn {
			break
		}
		if err := l.fs.Remove(filepath.Join(l.dir, l.sealed[0].name)); err != nil {
			return fmt.Errorf("wal: removing %s: %w", l.sealed[0].name, err)
		}
		l.sealed = l.sealed[1:]
	}
	return nil
}

// syncLoop is the SyncInterval background fsync.
func (l *Log) syncLoop() {
	defer l.tickerWG.Done()
	t := time.NewTicker(l.opts.SyncEvery)
	defer t.Stop()
	for {
		select {
		case <-l.stop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.dirty {
				if err := l.seg.Sync(); err == nil {
					l.dirty = false
				}
			}
			l.mu.Unlock()
		}
	}
}

// Close commits and syncs any pending records, then closes the segment.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	var err error
	if len(l.buf) > 0 {
		err = l.commitLocked()
	}
	if err == nil && l.dirty {
		if serr := l.seg.Sync(); serr != nil {
			err = fmt.Errorf("wal: syncing segment %s: %w", segmentName(l.segBase), serr)
		} else {
			l.dirty = false
		}
	}
	l.closed = true
	if cerr := l.seg.Close(); err == nil && cerr != nil {
		err = cerr
	}
	stop := l.stop
	l.mu.Unlock()
	if stop != nil {
		close(stop)
		l.tickerWG.Wait()
	}
	return err
}
