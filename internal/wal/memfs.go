package wal

import (
	"fmt"
	"io/fs"
	"path"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS for tests. It models only what the durability
// layer needs: flat files addressed by cleaned slash paths, atomic rename,
// and directory listings. Safe for concurrent use.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile), dirs: make(map[string]bool)}
}

func memClean(name string) string {
	return path.Clean(strings.ReplaceAll(name, "\\", "/"))
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	name = memClean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	f := &memFile{fs: m, name: name}
	m.files[name] = f
	return &memHandle{f: f}, nil
}

// Open implements FS.
func (m *MemFS) Open(name string) (File, error) {
	name = memClean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	}
	return &memHandle{f: f}, nil
}

// ReadDir implements FS.
func (m *MemFS) ReadDir(dir string) ([]string, error) {
	dir = memClean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.dirs[dir] && dir != "." {
		// A directory also exists if any file lives under it.
		found := false
		for name := range m.files {
			if path.Dir(name) == dir {
				found = true
				break
			}
		}
		if !found {
			return nil, &fs.PathError{Op: "readdir", Path: dir, Err: fs.ErrNotExist}
		}
	}
	var names []string
	for name := range m.files {
		if path.Dir(name) == dir {
			names = append(names, path.Base(name))
		}
	}
	sort.Strings(names)
	return names, nil
}

// Size implements FS.
func (m *MemFS) Size(name string) (int64, error) {
	name = memClean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		return 0, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
	}
	return int64(len(f.data)), nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	name = memClean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.files, name)
	return nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldname, newname string) error {
	oldname, newname = memClean(oldname), memClean(newname)
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[oldname]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldname, Err: fs.ErrNotExist}
	}
	delete(m.files, oldname)
	f.name = newname
	m.files[newname] = f
	return nil
}

// MkdirAll implements FS.
func (m *MemFS) MkdirAll(dir string) error {
	dir = memClean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	for dir != "." && dir != "/" {
		m.dirs[dir] = true
		dir = path.Dir(dir)
	}
	return nil
}

// memFile holds the shared content; memHandle is one open descriptor.
// Handles opened before a Rename keep writing to the same content, matching
// POSIX semantics.
type memFile struct {
	fs   *MemFS
	name string
	data []byte
}

type memHandle struct {
	f      *memFile
	closed bool
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.f.fs.mu.Lock()
	defer h.f.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if off < 0 {
		return 0, fmt.Errorf("memfs: negative offset %d", off)
	}
	if off >= int64(len(h.f.data)) {
		return 0, fmt.Errorf("memfs: read at %d past EOF %d: %w", off, len(h.f.data), fs.ErrInvalid)
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, fmt.Errorf("memfs: short read: %w", fs.ErrInvalid)
	}
	return n, nil
}

func (h *memHandle) WriteAt(p []byte, off int64) (int, error) {
	h.f.fs.mu.Lock()
	defer h.f.fs.mu.Unlock()
	if h.closed {
		return 0, fs.ErrClosed
	}
	if off < 0 {
		return 0, fmt.Errorf("memfs: negative offset %d", off)
	}
	if need := off + int64(len(p)); need > int64(len(h.f.data)) {
		grown := make([]byte, need)
		copy(grown, h.f.data)
		h.f.data = grown
	}
	copy(h.f.data[off:], p)
	return len(p), nil
}

func (h *memHandle) Truncate(size int64) error {
	h.f.fs.mu.Lock()
	defer h.f.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	switch {
	case size < 0:
		return fmt.Errorf("memfs: negative truncate size %d", size)
	case size <= int64(len(h.f.data)):
		h.f.data = h.f.data[:size]
	default:
		grown := make([]byte, size)
		copy(grown, h.f.data)
		h.f.data = grown
	}
	return nil
}

func (h *memHandle) Sync() error {
	h.f.fs.mu.Lock()
	defer h.f.fs.mu.Unlock()
	if h.closed {
		return fs.ErrClosed
	}
	return nil
}

func (h *memHandle) Close() error {
	h.f.fs.mu.Lock()
	defer h.f.fs.mu.Unlock()
	h.closed = true
	return nil
}
