package faultfs

import (
	"errors"
	"testing"

	"repro/internal/wal"
)

func TestCrashBudgetTearsWrite(t *testing.T) {
	inner := wal.NewMemFS()
	ffs := New(inner)
	f, err := ffs.Create("seg")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	ffs.SetCrashBudget(10)

	n, err := f.WriteAt([]byte("0123456"), 0) // 7 bytes, within budget
	if err != nil || n != 7 {
		t.Fatalf("first write: n=%d err=%v", n, err)
	}
	n, err = f.WriteAt([]byte("789abcdef"), 7) // 9 bytes, only 3 left
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("torn write error = %v, want ErrCrashed", err)
	}
	if n != 3 {
		t.Fatalf("torn write applied %d bytes, want 3", n)
	}
	if !ffs.Crashed() {
		t.Fatal("FS not crashed after budget exhausted")
	}

	// Everything after the crash fails.
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash write = %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash sync = %v", err)
	}
	if _, err := ffs.Open("seg"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash open = %v", err)
	}

	// The durable state holds exactly the applied prefix.
	if size, _ := inner.Size("seg"); size != 10 {
		t.Fatalf("durable size = %d, want 10", size)
	}
	h, _ := inner.Open("seg")
	buf := make([]byte, 10)
	if _, err := h.ReadAt(buf, 0); err != nil {
		t.Fatalf("inner read: %v", err)
	}
	if string(buf) != "0123456789" {
		t.Fatalf("durable content = %q", buf)
	}
}

func TestBytesWrittenAndOps(t *testing.T) {
	ffs := New(wal.NewMemFS())
	f, _ := ffs.Create("a")
	f.WriteAt(make([]byte, 5), 0)
	f.WriteAt(make([]byte, 3), 5)
	f.Sync()
	f.Truncate(4)
	if got := ffs.BytesWritten(); got != 8 {
		t.Fatalf("BytesWritten = %d, want 8", got)
	}
	ops := ffs.Ops()
	if len(ops) != 4 || ops[0].Op != "write" || ops[2].Op != "sync" || ops[3].Op != "truncate" {
		t.Fatalf("ops = %+v", ops)
	}
}

func TestFailWritesOnce(t *testing.T) {
	ffs := New(wal.NewMemFS())
	f, _ := ffs.Create("a")
	boom := errors.New("disk full")
	ffs.FailWrites("a", boom)
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, boom) {
		t.Fatalf("injected write error = %v, want %v", err, boom)
	}
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatalf("second write should succeed, got %v", err)
	}
}

func TestShortReads(t *testing.T) {
	ffs := New(wal.NewMemFS())
	f, _ := ffs.Create("a")
	f.WriteAt([]byte("0123456789"), 0)
	ffs.ShortReads("a", 6)

	buf := make([]byte, 4)
	if _, err := f.ReadAt(buf, 0); err != nil { // [0,4) below the cut
		t.Fatalf("read below cut: %v", err)
	}
	n, err := f.ReadAt(buf, 4) // [4,8) crosses the cut
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("read across cut = %v, want ErrInjected", err)
	}
	if n != 2 || string(buf[:n]) != "45" {
		t.Fatalf("short read returned %d bytes %q", n, buf[:n])
	}
	if _, err := f.ReadAt(buf, 8); !errors.Is(err, ErrInjected) { // fully past
		t.Fatalf("read past cut = %v, want ErrInjected", err)
	}
	ffs.ShortReads("a", -1)
	if _, err := f.ReadAt(buf, 4); err != nil {
		t.Fatalf("read after clearing: %v", err)
	}
}

func TestFlipBit(t *testing.T) {
	ffs := New(wal.NewMemFS())
	f, _ := ffs.Create("a")
	f.WriteAt([]byte{0x0f}, 0)
	if err := ffs.FlipBit("a", 0, 0xff); err != nil {
		t.Fatalf("FlipBit: %v", err)
	}
	var b [1]byte
	f.ReadAt(b[:], 0)
	if b[0] != 0xf0 {
		t.Fatalf("flipped byte = %#x, want 0xf0", b[0])
	}
}

// TestWALTornTailThroughFaultFS is the end-to-end shape the crash tests
// use: run a WAL through a crashing faultfs, then recover from the inner
// filesystem and check the durable prefix survived.
func TestWALTornTailThroughFaultFS(t *testing.T) {
	inner := wal.NewMemFS()
	ffs := New(inner)
	l, err := wal.Open("wal", wal.Options{FS: ffs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Commit 20 rows, then crash partway through the next commit.
	for i := 0; i < 20; i++ {
		if _, err := l.Append(int64(i), []float64{float64(i)}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := l.Commit(); err != nil {
		t.Fatalf("Commit: %v", err)
	}
	ffs.SetCrashBudget(5) // tear the next frame mid-header
	for i := 20; i < 25; i++ {
		l.Append(int64(i), []float64{float64(i)})
	}
	if err := l.Commit(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crashing commit = %v, want ErrCrashed", err)
	}

	// Recover from the durable state.
	r, err := wal.Open("wal", wal.Options{FS: inner})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	defer r.Close()
	if got := r.Next(); got != 20 {
		t.Fatalf("recovered Next = %d, want 20 (torn frame dropped)", got)
	}
	var n int
	r.Replay(0, func(lsn uint64, tm int64, attrs []float64) error {
		if lsn != uint64(n) || tm != int64(n) {
			t.Fatalf("replay record %d: lsn=%d t=%d", n, lsn, tm)
		}
		n++
		return nil
	})
	if n != 20 {
		t.Fatalf("replayed %d, want 20", n)
	}
}
