// Package faultfs wraps a wal.FS with injectable faults: crash points at
// every write boundary (with torn partial writes), short reads, bit flips,
// and targeted write failures. It drives the crash-recovery differential
// tests and the pagestore error-path tests.
//
// The crash model matches a process kill on a journaling filesystem: a
// byte budget counts down across all writes; the write that exhausts it is
// applied only partially (a torn write) and every later operation fails
// with ErrCrashed. Whatever was applied before the crash is the durable
// state — tests "recover" by opening the inner filesystem again.
package faultfs

import (
	"errors"
	"fmt"
	"path"
	"sync"

	"repro/internal/wal"
)

// ErrCrashed is returned by every operation after the crash point.
var ErrCrashed = errors.New("faultfs: crashed")

// ErrInjected is the base error for targeted (non-crash) fault injections.
var ErrInjected = errors.New("faultfs: injected fault")

// WriteOp records one completed write boundary: a WriteAt, Truncate or
// Sync that the crash budget could be pointed at.
type WriteOp struct {
	Name string // base name of the file
	Op   string // "write", "truncate" or "sync"
	Off  int64  // write offset (0 for truncate/sync)
	Len  int64  // bytes written (new size for truncate, 0 for sync)
}

// FS wraps an inner wal.FS with fault injection. The zero value is not
// usable; call New. Safe for concurrent use.
type FS struct {
	inner wal.FS

	mu           sync.Mutex
	crashed      bool
	budget       int64 // bytes writable before crashing; <0 = unlimited
	bytesWritten int64
	ops          []WriteOp
	failWrites   map[string]error // base name -> error for next WriteAt
	shortReads   map[string]int64 // base name -> reads at/past offset fail
}

// New wraps inner with fault injection; no faults are armed initially.
func New(inner wal.FS) *FS {
	return &FS{
		inner:      inner,
		budget:     -1,
		failWrites: make(map[string]error),
		shortReads: make(map[string]int64),
	}
}

// Inner returns the wrapped filesystem — the durable state after a crash.
func (f *FS) Inner() wal.FS { return f.inner }

// SetCrashBudget arms a crash after n more written bytes: the write that
// would exceed the budget is applied partially (torn) and everything after
// it fails with ErrCrashed. n = 0 crashes on the next write.
func (f *FS) SetCrashBudget(n int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.budget = n
}

// CrashNow fails all subsequent operations immediately.
func (f *FS) CrashNow() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.crashed = true
}

// Crashed reports whether the crash point has been reached.
func (f *FS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// BytesWritten returns the total bytes applied through WriteAt so far —
// the range a differential test sweeps its crash budgets over.
func (f *FS) BytesWritten() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.bytesWritten
}

// Ops returns a copy of the recorded write boundaries.
func (f *FS) Ops() []WriteOp {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]WriteOp(nil), f.ops...)
}

// FailWrites makes the next WriteAt on the named file (base name) return
// err without applying any bytes. A nil err clears the injection.
func (f *FS) FailWrites(name string, err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if err == nil {
		delete(f.failWrites, name)
		return
	}
	f.failWrites[name] = err
}

// ShortReads makes ReadAt on the named file (base name) fail whenever the
// requested range extends at or past offset from. A negative from clears
// the injection.
func (f *FS) ShortReads(name string, from int64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if from < 0 {
		delete(f.shortReads, name)
		return
	}
	f.shortReads[name] = from
}

// FlipBit XORs mask into the byte at off of the named file, corrupting it
// in place on the inner filesystem (so the fault persists across a
// simulated crash).
func (f *FS) FlipBit(name string, off int64, mask byte) error {
	h, err := f.inner.Open(name)
	if err != nil {
		return err
	}
	defer h.Close()
	var b [1]byte
	if _, err := h.ReadAt(b[:], off); err != nil {
		return err
	}
	b[0] ^= mask
	_, err = h.WriteAt(b[:], off)
	return err
}

// checkAlive returns ErrCrashed after the crash point.
func (f *FS) checkAlive() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

// Create implements wal.FS.
func (f *FS) Create(name string) (wal.File, error) {
	if err := f.checkAlive(); err != nil {
		return nil, err
	}
	h, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, name: path.Base(name), inner: h}, nil
}

// Open implements wal.FS.
func (f *FS) Open(name string) (wal.File, error) {
	if err := f.checkAlive(); err != nil {
		return nil, err
	}
	h, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &file{fs: f, name: path.Base(name), inner: h}, nil
}

// ReadDir implements wal.FS.
func (f *FS) ReadDir(dir string) ([]string, error) {
	if err := f.checkAlive(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

// Size implements wal.FS.
func (f *FS) Size(name string) (int64, error) {
	if err := f.checkAlive(); err != nil {
		return 0, err
	}
	return f.inner.Size(name)
}

// Remove implements wal.FS.
func (f *FS) Remove(name string) error {
	if err := f.checkAlive(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

// Rename implements wal.FS.
func (f *FS) Rename(oldname, newname string) error {
	if err := f.checkAlive(); err != nil {
		return err
	}
	return f.inner.Rename(oldname, newname)
}

// MkdirAll implements wal.FS.
func (f *FS) MkdirAll(dir string) error {
	if err := f.checkAlive(); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

// file wraps one open handle with the FS's armed faults.
type file struct {
	fs    *FS
	name  string
	inner wal.File
}

func (h *file) ReadAt(p []byte, off int64) (int, error) {
	f := h.fs
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return 0, ErrCrashed
	}
	if from, ok := f.shortReads[h.name]; ok && off+int64(len(p)) > from {
		f.mu.Unlock()
		if off >= from {
			return 0, fmt.Errorf("%w: short read of %s at %d", ErrInjected, h.name, off)
		}
		n, _ := h.inner.ReadAt(p[:from-off], off)
		return n, fmt.Errorf("%w: short read of %s at %d", ErrInjected, h.name, off)
	}
	f.mu.Unlock()
	return h.inner.ReadAt(p, off)
}

func (h *file) WriteAt(p []byte, off int64) (int, error) {
	f := h.fs
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return 0, ErrCrashed
	}
	if err, ok := f.failWrites[h.name]; ok {
		delete(f.failWrites, h.name)
		f.mu.Unlock()
		return 0, err
	}
	n := int64(len(p))
	torn := false
	if f.budget >= 0 && n > f.budget {
		n = f.budget
		torn = true
		f.crashed = true
	}
	if f.budget >= 0 {
		f.budget -= n
	}
	f.bytesWritten += n
	f.ops = append(f.ops, WriteOp{Name: h.name, Op: "write", Off: off, Len: n})
	f.mu.Unlock()

	wrote := 0
	if n > 0 {
		var err error
		wrote, err = h.inner.WriteAt(p[:n], off)
		if err != nil {
			return wrote, err
		}
	}
	if torn {
		return wrote, fmt.Errorf("%w: torn write of %s at %d (%d of %d bytes)", ErrCrashed, h.name, off, n, len(p))
	}
	return wrote, nil
}

func (h *file) Truncate(size int64) error {
	f := h.fs
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrCrashed
	}
	f.ops = append(f.ops, WriteOp{Name: h.name, Op: "truncate", Len: size})
	f.mu.Unlock()
	return h.inner.Truncate(size)
}

func (h *file) Sync() error {
	f := h.fs
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrCrashed
	}
	f.ops = append(f.ops, WriteOp{Name: h.name, Op: "sync"})
	f.mu.Unlock()
	return h.inner.Sync()
}

func (h *file) Close() error { return h.inner.Close() }
