package skyband

import (
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/skyline"
)

func randDS(rng *rand.Rand, n, d, domain int) *data.Dataset {
	times := make([]int64, n)
	rows := make([][]float64, n)
	t := int64(0)
	for i := 0; i < n; i++ {
		t += int64(1 + rng.Intn(3))
		times[i] = t
		row := make([]float64, d)
		for j := range row {
			if domain > 0 {
				row[j] = float64(rng.Intn(domain))
			} else {
				row[j] = rng.Float64()
			}
		}
		rows[i] = row
	}
	return data.MustNew(times, rows)
}

// naiveDuration computes the k-skyband duration by unbounded backward scan.
func naiveDuration(ds *data.Dataset, i, k int) int64 {
	p := ds.Attrs(i)
	found := 0
	for j := i - 1; j >= 0; j-- {
		if skyline.Dominates(ds.Attrs(j), p) {
			found++
			if found == k {
				return ds.Time(i) - ds.Time(j) - 1
			}
		}
	}
	return Unbounded
}

func TestDurationMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 25; trial++ {
		n := 1 + rng.Intn(500)
		d := 1 + rng.Intn(3)
		domain := 0
		if trial%2 == 0 {
			domain = 6
		}
		ds := randDS(rng, n, d, domain)
		// Small blocks exercise the block-skip path.
		sc := NewScanner(ds, 16)
		for _, k := range []int{1, 2, 4} {
			durs := sc.Durations(k, 0)
			for i := 0; i < n; i++ {
				if want := naiveDuration(ds, i, k); durs[i] != want {
					t.Fatalf("trial %d n=%d d=%d k=%d record %d: got %d want %d",
						trial, n, d, k, i, durs[i], want)
				}
			}
		}
	}
}

func TestBudgetOverApproximates(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	ds := randDS(rng, 400, 2, 0)
	sc := NewScanner(ds, 32)
	exact := sc.Durations(3, 0)
	budgeted := sc.Durations(3, 20)
	for i := range exact {
		if budgeted[i] < exact[i] {
			t.Fatalf("record %d: budget shrank duration %d -> %d (must only grow)",
				i, exact[i], budgeted[i])
		}
	}
}

func TestDurationSemantics(t *testing.T) {
	// Record at t=10 dominated by records at t=7 and t=3.
	ds := data.MustNew(
		[]int64{3, 7, 10},
		[][]float64{{5, 5}, {4, 4}, {3, 3}},
	)
	sc := NewScanner(ds, 0)
	// k=1: first dominator looking back is t=7 -> duration 10-7-1 = 2.
	if got := sc.Duration(2, 1, 0); got != 2 {
		t.Fatalf("k=1 duration=%d want 2", got)
	}
	// k=2: second dominator is t=3 -> duration 10-3-1 = 6.
	if got := sc.Duration(2, 2, 0); got != 6 {
		t.Fatalf("k=2 duration=%d want 6", got)
	}
	// k=3: only two dominators exist.
	if got := sc.Duration(2, 3, 0); got != Unbounded {
		t.Fatalf("k=3 duration=%d want Unbounded", got)
	}
	// The first record never has dominators.
	if got := sc.Duration(0, 1, 0); got != Unbounded {
		t.Fatalf("first record duration=%d want Unbounded", got)
	}
}

func TestIncomparableRecordsStayUnbounded(t *testing.T) {
	// Anti-correlated: nobody dominates anybody.
	ds := data.MustNew(
		[]int64{1, 2, 3},
		[][]float64{{1, 3}, {2, 2}, {3, 1}},
	)
	sc := NewScanner(ds, 0)
	for i := 0; i < 3; i++ {
		if got := sc.Duration(i, 1, 0); got != Unbounded {
			t.Fatalf("record %d duration=%d want Unbounded", i, got)
		}
	}
}

func TestLevel(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 9: 16, 16: 16, 17: 32}
	for k, want := range cases {
		if got := Level(k); got != want {
			t.Errorf("Level(%d)=%d want %d", k, got, want)
		}
	}
}

func TestLadderCandidatesSuperset(t *testing.T) {
	// For any k and tau, records that are tau-durable under SOME monotone
	// scorer must appear among the ladder's candidates; verify against the
	// definitional k-skyband membership directly.
	rng := rand.New(rand.NewSource(47))
	for trial := 0; trial < 10; trial++ {
		n := 50 + rng.Intn(300)
		ds := randDS(rng, n, 2, 8)
		ladder := NewLadder(ds, 0, 16)
		lo, hi := ds.Span()
		span := hi - lo
		for _, k := range []int{1, 3, 5} {
			tau := 1 + rng.Int63n(span)
			start := lo + rng.Int63n(span/2+1)
			cands := ladder.Candidates(k, start, hi, tau)
			inC := map[int32]bool{}
			for _, id := range cands {
				inC[id] = true
			}
			// Every record in [start,hi] that is in the k-skyband of its
			// tau-window must be a candidate.
			for i := 0; i < n; i++ {
				tm := ds.Time(i)
				if tm < start || tm > hi {
					continue
				}
				wlo, whi := ds.IndexRange(tm-tau, tm)
				doms := 0
				for j := wlo; j < whi; j++ {
					if j != i && skyline.Dominates(ds.Attrs(j), ds.Attrs(i)) {
						doms++
					}
				}
				if doms < k && !inC[int32(i)] {
					t.Fatalf("trial %d k=%d tau=%d: skyband record %d missing from candidates",
						trial, k, tau, i)
				}
			}
			if got := ladder.CandidateCount(k, start, hi, tau); got != len(cands) {
				t.Fatalf("CandidateCount=%d want %d", got, len(cands))
			}
		}
	}
}

func TestLadderLevelsMaterializeLazily(t *testing.T) {
	ds := randDS(rand.New(rand.NewSource(53)), 100, 2, 0)
	ladder := NewLadder(ds, 0, 0)
	if levels := ladder.BuiltLevels(); len(levels) != 0 {
		t.Fatalf("fresh ladder has levels %v", levels)
	}
	ladder.CandidateCount(5, 0, 1000, 1)
	if levels := ladder.BuiltLevels(); len(levels) != 1 || levels[0] != 8 {
		t.Fatalf("after k=5 query: levels %v want [8]", levels)
	}
	ladder.CandidateCount(6, 0, 1000, 1) // same level, no new build
	if levels := ladder.BuiltLevels(); len(levels) != 1 {
		t.Fatalf("k=6 should reuse level 8, got %v", levels)
	}
}

func TestDurationsConvenience(t *testing.T) {
	ds := randDS(rand.New(rand.NewSource(59)), 64, 2, 0)
	a := Durations(ds, 2, 0)
	b := NewScanner(ds, 0).Durations(2, 0)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("Durations wrapper disagrees with Scanner")
		}
	}
}

func BenchmarkDurationsIND10k(b *testing.B) {
	ds := randDS(rand.New(rand.NewSource(1)), 10_000, 2, 0)
	sc := NewScanner(ds, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Durations(8, 4096)
	}
}
