// Package skyband implements the durable k-skyband candidate index of the
// S-Band algorithm (paper §IV-B, Fig. 4).
//
// For every record p it computes the longest duration tau_p such that p
// belongs to the k-skyband of the window [p.t - tau_p, p.t] — equivalently,
// the time distance to p's k-th most recent dominator, minus one tick. Each
// record maps to the 2-D point (arrival time, tau_p); a priority search tree
// then answers the 3-sided query I x [tau, +inf) that yields a candidate
// superset of every durable top-k answer under any monotone scoring
// function.
//
// Because the query-time k is unknown at build time, a Ladder maintains one
// tree per power-of-two k level and serves a query with the level k' in
// [k, 2k) (paper §IV-B).
package skyband

import (
	"math"
	"sort"
	"sync"

	"repro/internal/data"
	"repro/internal/pst"
	"repro/internal/skyline"
)

// Unbounded marks records with fewer than k dominators in all of history:
// they stay in the k-skyband for every window length.
const Unbounded = math.MaxInt64

// DefaultBlockSize is the record-block granularity of the dominator scan.
const DefaultBlockSize = 256

// DefaultBlockSkylineCap bounds stored block skylines; blocks with larger
// skylines are scanned directly.
const DefaultBlockSkylineCap = 64

// Scanner computes k-skyband durations with a backward dominator scan
// accelerated by per-block skylines: a whole block is skipped when no block
// skyline member dominates the probe (an exact test, see
// skyline.AnyDominates). Construct with NewScanner; safe for concurrent use
// after construction.
type Scanner struct {
	ds        *data.Dataset
	blockSize int
	blockSky  [][]int32 // nil entries mean "scan the block directly"
	pts       dsPoints
}

type dsPoints struct{ ds *data.Dataset }

func (p dsPoints) Point(id int32) []float64 { return p.ds.Attrs(int(id)) }

// NewScanner precomputes block skylines in one pass. blockSize <= 0 selects
// DefaultBlockSize.
func NewScanner(ds *data.Dataset, blockSize int) *Scanner {
	if blockSize <= 0 {
		blockSize = DefaultBlockSize
	}
	sc := &Scanner{ds: ds, blockSize: blockSize, pts: dsPoints{ds}}
	nBlocks := (ds.Len() + blockSize - 1) / blockSize
	sc.blockSky = make([][]int32, nBlocks)
	ids := make([]int32, 0, blockSize)
	for b := 0; b < nBlocks; b++ {
		lo := b * blockSize
		hi := lo + blockSize
		if hi > ds.Len() {
			hi = ds.Len()
		}
		ids = ids[:0]
		for i := lo; i < hi; i++ {
			ids = append(ids, int32(i))
		}
		sky := skyline.Compute(sc.pts, ids)
		if len(sky) <= DefaultBlockSkylineCap {
			// Copy: Compute may alias its scratch space.
			own := make([]int32, len(sky))
			copy(own, sky)
			sc.blockSky[b] = own
		}
	}
	return sc
}

// Duration returns the longest tau such that record i is in the k-skyband of
// [t_i - tau, t_i], or Unbounded when record i has fewer than k dominators.
//
// budget caps the number of records examined per call (0 = unlimited). When
// the budget is exhausted before k dominators are found the result is
// Unbounded — a safe over-approximation: the S-Band candidate set may only
// grow, never lose a durable record.
func (sc *Scanner) Duration(i, k, budget int) int64 {
	p := sc.ds.Attrs(i)
	found := 0
	examined := 0
	kth := int64(0)
	// Scan the partial block containing i, then whole blocks going back.
	blockStart := (i / sc.blockSize) * sc.blockSize
	for j := i - 1; j >= blockStart; j-- {
		examined++
		if skyline.Dominates(sc.ds.Attrs(j), p) {
			found++
			if found == k {
				kth = sc.ds.Time(j)
				return sc.ds.Time(i) - kth - 1
			}
		}
		if budget > 0 && examined >= budget {
			return Unbounded
		}
	}
	for b := blockStart/sc.blockSize - 1; b >= 0; b-- {
		if sky := sc.blockSky[b]; sky != nil {
			examined += len(sky)
			if !skyline.AnyDominates(sc.pts, sky, p) {
				if budget > 0 && examined >= budget {
					return Unbounded
				}
				continue
			}
		}
		lo := b * sc.blockSize
		for j := lo + sc.blockSize - 1; j >= lo; j-- {
			examined++
			if skyline.Dominates(sc.ds.Attrs(j), p) {
				found++
				if found == k {
					kth = sc.ds.Time(j)
					return sc.ds.Time(i) - kth - 1
				}
			}
		}
		if budget > 0 && examined >= budget {
			return Unbounded
		}
	}
	return Unbounded
}

// Durations computes the k-skyband duration of every record (see Duration).
func (sc *Scanner) Durations(k, budget int) []int64 {
	out := make([]int64, sc.ds.Len())
	for i := range out {
		out[i] = sc.Duration(i, k, budget)
	}
	return out
}

// Durations is a convenience wrapper constructing a throwaway Scanner.
func Durations(ds *data.Dataset, k, budget int) []int64 {
	return NewScanner(ds, 0).Durations(k, budget)
}

// Ladder is the durable k-skyband index: one priority search tree per
// power-of-two k level, built lazily on first use. Safe for concurrent use.
type Ladder struct {
	ds     *data.Dataset
	budget int
	sc     *Scanner

	mu     sync.Mutex
	levels map[int]*pst.Tree
}

// NewLadder returns an empty ladder over ds. budget caps the per-record
// dominator scan (0 = exact); blockSize tunes the scanner (0 = default).
// Construction is cheap; trees are built lazily per level.
func NewLadder(ds *data.Dataset, budget, blockSize int) *Ladder {
	return &Ladder{
		ds:     ds,
		budget: budget,
		sc:     NewScanner(ds, blockSize),
		levels: make(map[int]*pst.Tree),
	}
}

// Level returns the ladder level serving queries with parameter k: the
// smallest power of two >= k.
func Level(k int) int {
	if k < 1 {
		k = 1
	}
	l := 1
	for l < k {
		l <<= 1
	}
	return l
}

func (ld *Ladder) tree(level int) *pst.Tree {
	ld.mu.Lock()
	defer ld.mu.Unlock()
	if t, ok := ld.levels[level]; ok {
		return t
	}
	durs := ld.sc.Durations(level, ld.budget)
	pts := make([]pst.Point, len(durs))
	for i, d := range durs {
		pts[i] = pst.Point{X: ld.ds.Time(i), Y: d, ID: int32(i)}
	}
	t := pst.Build(pts)
	ld.levels[level] = t
	return t
}

// Candidates returns the ids (ascending) of records with arrival time in
// [t1, t2] whose Level(k)-skyband duration is at least tau. For any monotone
// scorer the result is a superset of the tau-durable top-k records in the
// interval.
func (ld *Ladder) Candidates(k int, t1, t2, tau int64) []int32 {
	ids := ld.tree(Level(k)).Collect(t1, t2, tau)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// CandidateCount returns |C| without materializing the ids.
func (ld *Ladder) CandidateCount(k int, t1, t2, tau int64) int {
	return ld.tree(Level(k)).Count(t1, t2, tau)
}

// BuiltLevels reports which ladder levels have been materialized.
func (ld *Ladder) BuiltLevels() []int {
	ld.mu.Lock()
	defer ld.mu.Unlock()
	out := make([]int, 0, len(ld.levels))
	for l := range ld.levels {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}
