package core

import (
	"math/rand"
	"reflect"
	"testing"
)

func TestParallelMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for trial := 0; trial < 12; trial++ {
		n := 100 + rng.Intn(500)
		d := 1 + rng.Intn(3)
		ds := randDataset(rng, n, d, trial%2 == 0)
		eng := NewEngine(ds, Options{})
		lo, hi := ds.Span()
		span := hi - lo
		s := randScorer(rng, d)
		k := 1 + rng.Intn(4)
		tau := rng.Int63n(span + 1)
		anchor := LookBack
		if trial%3 == 0 {
			anchor = LookAhead
		}
		for _, alg := range Algorithms() {
			q := Query{K: k, Tau: tau, Start: lo, End: hi, Scorer: s, Algorithm: alg, Anchor: anchor}
			seq, err := eng.DurableTopK(q)
			if err != nil {
				t.Fatal(err)
			}
			for _, workers := range []int{1, 2, 3, 7} {
				par, err := eng.DurableTopKParallel(q, workers)
				if err != nil {
					t.Fatalf("trial %d %v workers=%d: %v", trial, alg, workers, err)
				}
				if !reflect.DeepEqual(par.IDs(), seq.IDs()) {
					t.Fatalf("trial %d %v workers=%d anchor=%v: parallel %v sequential %v",
						trial, alg, workers, anchor, par.IDs(), seq.IDs())
				}
			}
		}
	}
}

func TestParallelWithDurations(t *testing.T) {
	rng := rand.New(rand.NewSource(152))
	ds := randDataset(rng, 300, 2, false)
	eng := NewEngine(ds, Options{})
	lo, hi := ds.Span()
	s := randScorer(rng, 2)
	q := Query{K: 2, Tau: 25, Start: lo, End: hi, Scorer: s, WithDurations: true}
	res, err := eng.DurableTopKParallel(q, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		wantDur, wantFull := BruteMaxDuration(ds, s, 2, r.ID, LookBack)
		if r.MaxDuration != wantDur || r.FullHistory != wantFull {
			t.Fatalf("record %d: (%d,%v) want (%d,%v)", r.ID, r.MaxDuration, r.FullHistory, wantDur, wantFull)
		}
	}
}

func TestParallelValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(153))
	ds := randDataset(rng, 50, 2, false)
	eng := NewEngine(ds, Options{})
	if _, err := eng.DurableTopKParallel(Query{K: 0, Scorer: randScorer(rng, 2)}, 4); err == nil {
		t.Fatal("invalid query must fail before spawning workers")
	}
}

func TestParallelDefaultWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(154))
	ds := randDataset(rng, 200, 2, false)
	eng := NewEngine(ds, Options{})
	lo, hi := ds.Span()
	s := randScorer(rng, 2)
	q := Query{K: 2, Tau: 20, Start: lo, End: hi, Scorer: s}
	res, err := eng.DurableTopKParallel(q, 0) // GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	seq, err := eng.DurableTopK(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.IDs(), seq.IDs()) {
		t.Fatal("default worker count must match sequential answer")
	}
}
