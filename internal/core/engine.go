package core

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/data"
	"repro/internal/planner"
	"repro/internal/score"
	"repro/internal/skyband"
	"repro/internal/topk"
)

// Block is the pluggable range top-k building block of §II: any structure
// that answers Q(s, k, W) over a closed time window (Query) or a half-open
// record index range (QueryRange) with results in (score desc, time desc)
// order. The default is the tree index of package topk; package rmq provides
// an alternative for fixed-scorer workloads.
type Block interface {
	Query(s score.Scorer, k int, t1, t2 int64) []topk.Item
	QueryRange(s score.Scorer, k int, lo, hi int) []topk.Item
}

// ScratchBlock is an optional Block capability: probes that run on
// caller-provided working memory (topk.Scratch) and append results into a
// reusable buffer. One durable top-k evaluation issues hundreds of
// building-block probes; the engine threads a single Scratch plus one result
// buffer through all of them, making the probe hot path allocation-free.
// Both *topk.Index and *rmq.Block implement it.
type ScratchBlock interface {
	QueryInto(s score.Scorer, k int, t1, t2 int64, sc *topk.Scratch, dst []topk.Item) []topk.Item
	QueryRangeInto(s score.Scorer, k int, lo, hi int, sc *topk.Scratch, dst []topk.Item) []topk.Item
}

// Options configures an Engine.
type Options struct {
	// Index configures the default range top-k building block.
	Index topk.Options
	// NewBlock, when set, replaces the default tree index: it is invoked
	// once per dataset direction (forward, and lazily reversed) and must
	// return a Block honouring the (score desc, time desc) contract.
	NewBlock func(ds *data.Dataset) Block
	// SkybandScanBudget caps the per-record dominator scan when building
	// S-Band's durable k-skyband index; 0 computes exact durations. An
	// exhausted budget over-approximates a record's duration, which keeps
	// the candidate set a superset of the answer (never incorrect, only
	// less selective).
	SkybandScanBudget int
	// SkybandBlockSize tunes the dominator scanner; 0 selects the default.
	SkybandBlockSize int
}

// Engine answers durable top-k queries over one dataset. The forward range
// top-k index is built eagerly; the reversed view (for look-ahead windows)
// and the durable k-skyband ladders (for S-Band) are built lazily on first
// use. Safe for concurrent queries.
type Engine struct {
	opts Options
	fwd  view

	mu     sync.Mutex
	rev    *view
	ladder map[Anchor]*skyband.Ladder
}

// view bundles a dataset direction with its building block.
type view struct {
	ds  *data.Dataset
	idx Block
	// into is idx's optional scratch-probe capability, nil when absent.
	into ScratchBlock
}

func newView(ds *data.Dataset, idx Block) view {
	v := view{ds: ds, idx: idx}
	v.into, _ = idx.(ScratchBlock)
	return v
}

// counter tags for instrumented building-block calls.
type queryKind int

const (
	kindCheck queryKind = iota
	kindFind
	kindMaint
)

// probe carries the reusable working memory of one DurableTopK evaluation:
// a single topk.Scratch shared by every building-block call of the query
// (the strategy's own probes and the WithDurations binary searches), a
// result buffer for transient probes, and the per-query arena the
// score-prioritized strategies carve their retained state from. Probes are
// pooled, so arena and buffer storage is reused across queries and the
// strategy hot paths run with zero steady-state allocations.
type probe struct {
	sc  *topk.Scratch
	buf []topk.Item
	a   arena
}

var probePool = sync.Pool{New: func() interface{} { return new(probe) }}

func newProbe() *probe {
	pr := probePool.Get().(*probe)
	pr.sc = topk.GetScratch()
	return pr
}

func (pr *probe) release() {
	topk.PutScratch(pr.sc)
	pr.sc = nil
	probePool.Put(pr)
}

func (st *Stats) count(kind queryKind) {
	switch kind {
	case kindCheck:
		st.CheckQueries++
	case kindFind:
		st.FindQueries++
	default:
		st.MaintQueries++
	}
}

// topk runs one instrumented building-block query over the closed window
// [t1, t2]. The result is transient: it lives in pr's buffer and is
// overwritten by the next transient probe, so callers must finish consuming
// it first (use topkKeep to retain a result).
func (v *view) topk(pr *probe, st *Stats, kind queryKind, s score.Scorer, k int, t1, t2 int64) []topk.Item {
	st.count(kind)
	if v.into != nil {
		pr.buf = v.into.QueryInto(s, k, t1, t2, pr.sc, pr.buf)
		return pr.buf
	}
	return v.idx.Query(s, k, t1, t2)
}

// topkKeep is topk for callers that retain the result beyond the next probe
// (e.g. S-Hop's per-subinterval prefetch lists): the result is freshly
// allocated, only the probe's internal working memory is reused.
func (v *view) topkKeep(pr *probe, st *Stats, kind queryKind, s score.Scorer, k int, t1, t2 int64) []topk.Item {
	st.count(kind)
	if v.into != nil {
		return v.into.QueryInto(s, k, t1, t2, pr.sc, nil)
	}
	return v.idx.Query(s, k, t1, t2)
}

// topkRange is the transient probe over a half-open record index range.
func (v *view) topkRange(pr *probe, st *Stats, kind queryKind, s score.Scorer, k int, lo, hi int) []topk.Item {
	st.count(kind)
	if v.into != nil {
		pr.buf = v.into.QueryRangeInto(s, k, lo, hi, pr.sc, pr.buf)
		return pr.buf
	}
	return v.idx.QueryRange(s, k, lo, hi)
}

// topkRangeKeep is topkRange with a freshly allocated, retainable result.
func (v *view) topkRangeKeep(pr *probe, st *Stats, kind queryKind, s score.Scorer, k int, lo, hi int) []topk.Item {
	st.count(kind)
	if v.into != nil {
		return v.into.QueryRangeInto(s, k, lo, hi, pr.sc, nil)
	}
	return v.idx.QueryRange(s, k, lo, hi)
}

// member reports whether record id (arriving at t2) is in the top-k of
// [t1, t2] given that window's top-k items.
func (v *view) member(s score.Scorer, k int, items []topk.Item, id int32) bool {
	if len(items) < k {
		return true
	}
	return s.Score(v.ds.Attrs(int(id))) >= items[k-1].Score
}

// NewEngine builds the forward building block over ds and returns a ready
// engine.
func NewEngine(ds *data.Dataset, opts Options) *Engine {
	return &Engine{
		opts:   opts,
		fwd:    newView(ds, buildBlock(ds, opts)),
		ladder: make(map[Anchor]*skyband.Ladder),
	}
}

// plannerInputs characterizes q for the cost model.
func (e *Engine) plannerInputs(q *Query) planner.Inputs {
	return queryPlannerInputs(e.fwd.ds, q, e.ladderBuilt(normalizedAnchor(q)))
}

// normalizedAnchor collapses end-anchored General queries onto the one-sided
// anchor they evaluate as (the ladder cache is keyed by that).
func normalizedAnchor(q *Query) Anchor {
	if q.Anchor == General && q.Lead == q.Tau && q.Tau > 0 {
		return LookAhead
	}
	return q.Anchor
}

// queryPlannerInputs characterizes q over ds for the cost model; shared by
// Engine and ShardedEngine so the Auto strategy choice cannot drift between
// the two.
func queryPlannerInputs(ds *data.Dataset, q *Query, sbandReady bool) planner.Inputs {
	lo, hi := ds.IndexRange(q.Start, q.End)
	return planner.Inputs{
		N:          ds.Len(),
		Dims:       ds.Dims(),
		NI:         hi - lo,
		K:          q.K,
		Tau:        q.Tau,
		Window:     q.End - q.Start,
		Monotone:   score.IsMonotone(q.Scorer),
		MidAnchor:  q.Anchor == General && q.Lead > 0 && q.Lead < q.Tau,
		SBandReady: sbandReady,
	}
}

// ladderBuilt reports whether a durable k-skyband ladder already exists for
// the anchor direction (the planner discounts S-Band's cold-build cost).
func (e *Engine) ladderBuilt(anchor Anchor) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	_, ok := e.ladder[anchor]
	return ok
}

// strategyAlgorithm maps the planner's verdict onto an Algorithm.
func strategyAlgorithm(s planner.Strategy) Algorithm {
	switch s {
	case planner.TBase:
		return TBase
	case planner.THop:
		return THop
	case planner.SBase:
		return SBase
	case planner.SBand:
		return SBand
	default:
		return SHop
	}
}

// resolveAlgorithm picks the concrete strategy for Auto queries by running
// the cost model of package planner over the query and dataset shape — the
// paper's §VI guidance (hops in general, S-Band only for cheap monotone
// low-dimensional candidate sets, baselines for tiny unselective queries)
// made executable.
func (e *Engine) resolveAlgorithm(q *Query) Algorithm {
	if q.Algorithm != Auto {
		return q.Algorithm
	}
	return strategyAlgorithm(e.plan(q).Chosen)
}

// plan runs the cost model for q.
func (e *Engine) plan(q *Query) planner.Plan {
	return planner.Choose(e.plannerInputs(q))
}

// Explain returns the planner's cost-based assessment of q — the chosen
// strategy, the Lemma 4 / Lemma 5 size estimates, and per-strategy cost
// estimates — without evaluating the query. A non-Auto q.Algorithm does not
// change the assessment; DurableTopK would simply bypass it.
func (e *Engine) Explain(q Query) (planner.Plan, error) {
	if err := q.validate(e.fwd.ds.Dims()); err != nil {
		return planner.Plan{}, err
	}
	return e.plan(&q), nil
}

// checkAlgorithm enforces the strategy constraints shared by Engine and
// ShardedEngine after Auto resolution: S-Band needs a monotone scorer, and
// truly mid-anchored windows (0 < Lead < Tau) support neither the
// anchor-specific variants nor duration reporting.
func checkAlgorithm(q *Query, alg Algorithm) error {
	if alg == SBand && !score.IsMonotone(q.Scorer) {
		return ErrNotMonotone
	}
	if q.Anchor == General && q.Lead > 0 && q.Lead < q.Tau {
		if alg == TBase || alg == SBand {
			return fmt.Errorf("%w: %v", ErrAnchorUnsupp, alg)
		}
		if q.WithDurations {
			return fmt.Errorf("%w: WithDurations", ErrAnchorUnsupp)
		}
	}
	return nil
}

func buildBlock(ds *data.Dataset, opts Options) Block {
	if opts.NewBlock != nil {
		return opts.NewBlock(ds)
	}
	return topk.Build(ds, opts.Index)
}

// Dataset returns the engine's dataset.
func (e *Engine) Dataset() *data.Dataset { return e.fwd.ds }

// Index exposes the forward building block (for direct range top-k queries,
// e.g. the sliding/tumbling comparison utilities).
func (e *Engine) Index() Block { return e.fwd.idx }

// reversed returns the lazily built time-mirrored view.
func (e *Engine) reversed() *view {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.rev == nil {
		rds := e.fwd.ds.Reversed()
		rv := newView(rds, buildBlock(rds, e.opts))
		e.rev = &rv
	}
	return e.rev
}

// skyLadder returns the lazily built durable k-skyband ladder for the view
// direction used by the given anchor.
func (e *Engine) skyLadder(anchor Anchor, v *view) *skyband.Ladder {
	e.mu.Lock()
	defer e.mu.Unlock()
	if ld, ok := e.ladder[anchor]; ok {
		return ld
	}
	ld := skyband.NewLadder(v.ds, e.opts.SkybandScanBudget, e.opts.SkybandBlockSize)
	e.ladder[anchor] = ld
	return ld
}

// PrepareSkyband eagerly materializes the durable k-skyband ladder level
// serving queries with parameter k under the given anchor. S-Band treats the
// ladder as an offline index (§IV-B); benchmarks call this before timing so
// query latencies exclude index construction.
func (e *Engine) PrepareSkyband(k int, anchor Anchor) {
	v := &e.fwd
	if anchor == LookAhead {
		v = e.reversed()
	}
	e.skyLadder(anchor, v).CandidateCount(k, 0, -1, 0) // empty interval; forces the level build
}

// TopK answers the plain (non-durable) range top-k query Q(s, k, [t1, t2]).
func (e *Engine) TopK(s score.Scorer, k int, t1, t2 int64) []topk.Item {
	return e.fwd.idx.Query(s, k, t1, t2)
}

// DurableTopK answers DurTop(k, I, tau) with the strategy selected by the
// query, returning the tau-durable records in ascending time order together
// with evaluation statistics.
func (e *Engine) DurableTopK(q Query) (*Result, error) {
	if err := q.validate(e.fwd.ds.Dims()); err != nil {
		return nil, err
	}
	alg := e.resolveAlgorithm(&q)
	if err := checkAlgorithm(&q, alg); err != nil {
		return nil, err
	}

	// Normalize the anchor: end-anchored General queries collapse onto the
	// specialized LookBack / LookAhead paths; mirrored queries run the
	// look-back machinery over the time-reversed view (window [p.t, p.t+tau]
	// becomes [q.t-tau, q.t] for the mirrored record q).
	v := &e.fwd
	runQ := q
	mirror := q.Anchor == LookAhead || (q.Anchor == General && q.Tau > 0 && q.Lead == q.Tau)
	skyAnchor := q.Anchor
	switch {
	case mirror:
		v = e.reversed()
		runQ.Start, runQ.End = -q.End, -q.Start
		runQ.Anchor, runQ.Lead = LookBack, 0
		skyAnchor = LookAhead
	case q.Anchor == General && q.Lead == 0:
		runQ.Anchor = LookBack
		skyAnchor = LookBack
	case q.Anchor == General:
		// Mid-anchored window: only the anchor-generic variants apply
		// (already enforced by checkAlgorithm).
	}
	general := runQ.Anchor == General

	// One probe's worth of working memory serves the whole evaluation: every
	// building-block call below — strategy probes and duration searches —
	// shares its scratch buffers.
	pr := newProbe()
	defer pr.release()

	st := Stats{Algorithm: alg}
	startAt := time.Now()
	var ids []int32
	switch alg {
	case TBase:
		ids = runTBase(v, pr, runQ, &st)
	case THop:
		if general {
			ids = runTHopAnchored(v, pr, runQ, &st)
		} else {
			ids = runTHop(v, pr, runQ, &st)
		}
	case SBase:
		if general {
			ids = runSBaseAnchored(v, runQ, &st)
		} else {
			ids = runSBase(v, runQ, &st)
		}
	case SBand:
		ids = runSBand(v, pr, e.skyLadder(skyAnchor, v), runQ, &st)
	case SHop:
		if general {
			ids = runSHopAnchored(v, pr, runQ, &st)
		} else {
			ids = runSHop(v, pr, runQ, &st)
		}
	}
	st.Elapsed = time.Since(startAt)

	res := &Result{Stats: st}
	res.Records = make([]ResultRecord, 0, len(ids))
	n := e.fwd.ds.Len()
	for _, id := range ids {
		origID := int(id)
		if mirror {
			origID = n - 1 - origID
		}
		res.Records = append(res.Records, ResultRecord{
			ID:          origID,
			Time:        e.fwd.ds.Time(origID),
			Score:       q.Scorer.Score(e.fwd.ds.Attrs(origID)),
			MaxDuration: -1,
		})
	}
	if mirror {
		// ids ascend in mirrored time, i.e. descend in original time.
		for i, j := 0, len(res.Records)-1; i < j; i, j = i+1, j-1 {
			res.Records[i], res.Records[j] = res.Records[j], res.Records[i]
		}
	}
	if q.WithDurations {
		for i := range res.Records {
			mirrored := int32(res.Records[i].ID)
			if mirror {
				mirrored = int32(n - 1 - res.Records[i].ID)
			}
			dur, full := maxDuration(v, pr, &st, q.Scorer, q.K, mirrored)
			res.Records[i].MaxDuration = dur
			res.Records[i].FullHistory = full
		}
	}
	return res, nil
}

// MaxDuration returns the largest tau for which record id stays in the
// top-k of its anchored window, and whether the search was truncated by the
// start (LookBack) or end (LookAhead) of recorded history.
func (e *Engine) MaxDuration(id, k int, s score.Scorer, anchor Anchor) (int64, bool) {
	v := &e.fwd
	mid := int32(id)
	if anchor == LookAhead {
		v = e.reversed()
		mid = int32(e.fwd.ds.Len() - 1 - id)
	}
	var st Stats
	pr := newProbe()
	defer pr.release()
	return maxDuration(v, pr, &st, s, k, mid)
}

// maxDuration binary-searches the earliest window start keeping record id in
// the top-k (§II): membership is monotone in the window start, and each
// probe costs one building-block query. The probes reuse pr's buffers.
func maxDuration(v *view, pr *probe, st *Stats, s score.Scorer, k int, id int32) (int64, bool) {
	i := int(id)
	// Find the smallest j such that id is in the top-k of records [j, i].
	lo, hi := 0, i // invariant: predicate(hi) is true (window of one record)
	for lo < hi {
		mid := (lo + hi) / 2
		items := v.topkRange(pr, st, kindCheck, s, k, mid, i+1)
		if v.member(s, k, items, id) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	t := v.ds.Time(i)
	if lo == 0 {
		// The loop invariant keeps the predicate true at hi, so lo == 0
		// means the record is top-k over all recorded history.
		return t - v.ds.Time(0), true
	}
	// Durable exactly for windows excluding record lo-1: tau < t - Time(lo-1).
	return t - v.ds.Time(lo-1) - 1, false
}
