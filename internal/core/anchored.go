package core

import (
	"repro/internal/blocking"
	"repro/internal/data"
)

// This file implements the general-anchor extension sketched in the paper's
// §II: durability windows "anchored consistently relative to the arrival
// times", beyond the two end-anchored cases. A query with Anchor == General
// and 0 < Lead < Tau assesses each record p over the mid-anchored window
//
//	W(p.t) = [p.t - (Tau - Lead), p.t + Lead]
//
// of total length Tau. Lead == 0 degenerates to LookBack and Lead == Tau to
// LookAhead (the engine routes those to the specialized paths).
//
// Mid-anchored windows break the recency tie-break that makes the look-back
// algorithms safe under score ties: a window now extends to both sides of
// the record, so an equal-score record *can* fall inside it. The variants
// here therefore
//
//   - group equal-score runs in S-Base so records of one run never block
//     each other,
//   - defer blocking intervals of the current score level in S-Hop until
//     processing moves strictly below it, and
//   - enumerate potential score ties inside every hop gap in T-Hop before
//     skipping it.
//
// All three remain exact: they agree with BruteForceAnchored on arbitrary
// data (see anchored_test.go), degrading only in speed — never in
// correctness — on pathologically tie-heavy inputs.

// anchorSpan splits the query window length around the record: back before
// it, lead after it (back + lead == Tau).
func anchorSpan(q *Query) (back, lead int64) {
	return q.Tau - q.Lead, q.Lead
}

// runTHopAnchored generalizes Time-Hop (Algorithm 1) to mid-anchored
// windows. After a failed durability check at time t the returned top-k
// items justify skipping every record q in the gap (hopT, t): q's window
// contains all k items and each outranks q strictly — except for records
// tying the k-th score, which the gap scan below surfaces and checks
// individually.
func runTHopAnchored(v *view, pr *probe, q Query, st *Stats) []int32 {
	ds := v.ds
	back, lead := anchorSpan(&q)
	loIdx := ds.LowerBound(q.Start)
	cur := ds.UpperBound(q.End) - 1
	var res []int32
	for cur >= loIdx {
		st.Visited++
		t := ds.Time(cur)
		items := v.topk(pr, st, kindCheck, q.Scorer, q.K, satSub(t, back), satAdd(t, lead))
		if v.member(q.Scorer, q.K, items, int32(cur)) {
			res = append(res, int32(cur))
			cur--
			continue
		}
		// Hop bound: the skip proof needs (a) gap records inside W(t),
		// (b) every item inside the gap record's window, and (c) no item
		// inside the gap itself.
		sk := items[q.K-1].Score
		maxAll := items[0].Time
		maxBelow := satSub(t, back) // fallback when no item arrives before t
		for _, it := range items {
			if it.Time > maxAll {
				maxAll = it.Time
			}
			if it.Time < t && it.Time > maxBelow {
				maxBelow = it.Time
			}
		}
		hopT := satSub(t, back)
		if maxBelow > hopT {
			hopT = maxBelow
		}
		if m := satSub(maxAll, lead); m > hopT {
			hopT = m
		}
		if hopT >= t {
			cur--
			continue
		}
		// Gap records scoring strictly above sk cannot exist (they would be
		// items themselves); records tying sk are not dominated by the items
		// and must be checked individually before the gap is skipped. The
		// scan is clipped to I — the gap may reach before Start, and records
		// there are skipped regardless of durability.
		gapLo := ds.UpperBound(hopT)
		if gapLo < loIdx {
			gapLo = loIdx
		}
		if !checkGapTies(v, pr, &q, st, gapLo, cur, sk, &res) {
			// Potentially more ties than one probe returns: give up on this
			// hop and step normally. Correct, merely slower on tie floods.
			cur--
			continue
		}
		cur = gapLo - 1
	}
	sortIDs(res)
	return res
}

// checkGapTies durability-checks every record in the half-open index range
// [gapLo, gapHi) whose score ties sk, appending durable ones to res. It
// reports false when the range may hold more tying records than one
// building-block probe can enumerate.
func checkGapTies(v *view, pr *probe, q *Query, st *Stats, gapLo, gapHi int, sk float64, res *[]int32) bool {
	if gapLo >= gapHi {
		return true
	}
	back, lead := anchorSpan(q)
	// The tie list stays live while the per-tie checks below issue further
	// probes, so it must not share the transient probe buffer.
	items := v.topkRangeKeep(pr, st, kindFind, q.Scorer, q.K, gapLo, gapHi)
	ties := 0
	for _, it := range items {
		if it.Score >= sk {
			ties++
		} else {
			break
		}
	}
	if ties == len(items) && len(items) == q.K {
		return false // the probe may have truncated the tie run
	}
	for _, it := range items[:ties] {
		st.Visited++
		t := it.Time
		w := v.topk(pr, st, kindCheck, q.Scorer, q.K, satSub(t, back), satAdd(t, lead))
		if v.member(q.Scorer, q.K, w, it.ID) {
			*res = append(*res, it.ID)
		}
	}
	return true
}

// runSBaseAnchored generalizes the score-prioritized baseline (§IV-A): sort
// all potential blockers of I, sweep in descending score, and decide
// durability from blocking-interval cover counts. A record p blocks exactly
// the arrival times whose window contains p, i.e. [p.t - Lead, p.t + back].
// Equal-score runs are decided before any of their intervals are added, so
// ties never block each other.
func runSBaseAnchored(v *view, q Query, st *Stats) []int32 {
	ds := v.ds
	back, lead := anchorSpan(&q)
	lo := ds.LowerBound(satSub(q.Start, back))
	hi := ds.UpperBound(satAdd(q.End, lead))
	if lo >= hi {
		return nil
	}
	refs := make([]scoredRef, 0, hi-lo)
	for i := lo; i < hi; i++ {
		refs = append(refs, scoredRef{
			id:    int32(i),
			time:  ds.Time(i),
			score: q.Scorer.Score(ds.Attrs(i)),
		})
	}
	st.CandidateCount = len(refs)
	sortScoredDesc(refs)

	blk := blocking.NewSet(q.Tau)
	var res []int32
	for i := 0; i < len(refs); {
		j := i
		for j < len(refs) && refs[j].score == refs[i].score {
			j++
		}
		for _, p := range refs[i:j] {
			st.Visited++
			if p.time >= q.Start && p.time <= q.End && blk.Cover(p.time) < q.K {
				res = append(res, p.id)
			}
		}
		for _, p := range refs[i:j] {
			blk.Add(satSub(p.time, lead))
		}
		i = j
	}
	sortIDs(res)
	return res
}

// coverBlocks tracks blocking coverage over record positions for the
// mid-anchored Score-Hop. It combines two ideas:
//
//   - intervals whose score ties the level currently being processed are
//     deferred until processing moves strictly below that level, so equal
//     scores never block each other (mid-anchored windows reach both sides
//     of a record, voiding the look-back recency argument);
//   - coverage lives in a range-add/range-min tree over record positions,
//     so "is this whole sub-interval covered?" is one O(log n) query —
//     the general-anchor replacement for Lemma 6's abandonment rule.
//
// Durable answers are additionally "resolved" (their single position gets
// a +k poison) so an already-reported record never holds a sub-interval
// open.
type coverBlocks struct {
	tree *blocking.CoverTree
	ds   *data.Dataset
	tau  int64
	lead int64
	k    int

	pend      [][2]int // deferred index ranges of the current tie level
	pendScore float64
}

func newCoverBlocks(ds *data.Dataset, tau, lead int64, k int) *coverBlocks {
	return &coverBlocks{tree: blocking.NewCoverTree(ds.Len()), ds: ds, tau: tau, lead: lead, k: k}
}

// span converts a record arrival time into the index range its blocking
// interval [t-lead, t+back] covers.
func (c *coverBlocks) span(t int64) (lo, hi int) {
	left := satSub(t, c.lead)
	return c.ds.LowerBound(left), c.ds.UpperBound(satAdd(left, c.tau))
}

// flushBelow releases the deferred tie level once processing has moved
// strictly below its score.
func (c *coverBlocks) flushBelow(score float64) {
	if len(c.pend) > 0 && score < c.pendScore {
		for _, r := range c.pend {
			c.tree.Add(r[0], r[1], 1)
		}
		c.pend = c.pend[:0]
	}
}

// add records the blocking interval of a record arriving at t with the
// given score, while cur is the score level being processed.
func (c *coverBlocks) add(t int64, score, cur float64) {
	lo, hi := c.span(t)
	if score > cur {
		c.tree.Add(lo, hi, 1) // strictly above everything still to come
		return
	}
	if len(c.pend) > 0 && c.pendScore != score {
		for _, r := range c.pend {
			c.tree.Add(r[0], r[1], 1)
		}
		c.pend = c.pend[:0]
	}
	c.pendScore = score
	c.pend = append(c.pend, [2]int{lo, hi})
}

// resolve poisons one answered position so it never blocks abandonment.
func (c *coverBlocks) resolve(id int32) {
	c.tree.Add(int(id), int(id)+1, c.k)
}

// covered reports whether record position id is blocked k times.
func (c *coverBlocks) covered(id int32) bool {
	return c.tree.At(int(id)) >= c.k
}

// rangeCovered reports whether every record position with arrival time in
// the closed window [t1, t2] is blocked (or resolved) k times.
func (c *coverBlocks) rangeCovered(t1, t2 int64) bool {
	lo, hi := c.ds.IndexRange(t1, t2)
	return c.tree.Min(lo, hi) >= c.k
}

// runSHopAnchored generalizes Score-Hop (Algorithm 3) to mid-anchored
// windows: identical partition/heap/split machinery, with blocking
// intervals shifted to [p.t - Lead, p.t + back], tie-deferred so equal
// scores never block each other, and sub-interval abandonment re-proved by
// an explicit min-coverage query (Lemma 6's geometric shortcut only holds
// for end-anchored windows).
func runSHopAnchored(v *view, pr *probe, q Query, st *Stats) []int32 {
	back, lead := anchorSpan(&q)
	subLen := q.Tau
	if subLen < 1 {
		subLen = 1
	}
	// Prefetch lists, heap entries, the heap, the visited/answer marks and
	// the result ids are carved from the probe's arena, matching runSHop.
	a := &pr.a
	a.reset()
	h := &a.shop
	pushSub := func(lo, hi int64) {
		shopPrefetch(v, pr, st, q.Scorer, q.K, lo, hi)
	}
	for lo := q.Start; lo <= q.End; lo = satAdd(lo, subLen) {
		hi := satAdd(lo, subLen-1)
		if hi > q.End {
			hi = q.End
		}
		pushSub(lo, hi)
		if hi == q.End {
			break
		}
	}

	blk := newCoverBlocks(v.ds, q.Tau, lead, q.K)
	visited := a.visitedMap()
	inAnswer := a.markedMap()
	res := a.ids
	for h.len() > 0 {
		e := h.pop()
		p := e.current()
		st.Visited++
		blk.flushBelow(p.Score)
		if !blk.covered(p.ID) && !inAnswer[p.ID] {
			items := v.topk(pr, st, kindCheck, q.Scorer, q.K, satSub(p.Time, back), satAdd(p.Time, lead))
			if v.member(q.Scorer, q.K, items, p.ID) {
				inAnswer[p.ID] = true
				res = append(res, p.ID)
				blk.resolve(p.ID)
			} else {
				for _, it := range items {
					if !visited[it.ID] {
						visited[it.ID] = true
						blk.add(it.Time, it.Score, p.Score)
					}
				}
			}
			pushSub(e.lo, p.Time-1)
			pushSub(p.Time+1, e.hi)
		} else if e.pos+1 < len(e.items) {
			e.pos++
			h.push(e)
		} else if !blk.rangeCovered(e.lo, e.hi) {
			// Not yet fully covered: requery both halves around the current
			// record. Each split strictly shrinks the range, so the walk
			// terminates; fully covered sub-intervals are dropped, which is
			// the coverage-certified abandonment.
			pushSub(e.lo, p.Time-1)
			pushSub(p.Time+1, e.hi)
		}
		if !visited[p.ID] {
			visited[p.ID] = true
			blk.add(p.Time, p.Score, p.Score)
		}
	}
	a.ids = res
	sortIDs(res)
	return res
}
