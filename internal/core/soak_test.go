package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/topk"
)

// TestSoakOracleAgreement is the long randomized cross-check: hundreds of
// (dataset, query) configurations spanning tie-heavy domains, both anchors,
// degenerate parameters and all five algorithms, verified against the
// brute-force oracle. Skipped under -short.
func TestSoakOracleAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(424242))
	for trial := 0; trial < 250; trial++ {
		n := 1 + rng.Intn(500)
		d := 1 + rng.Intn(5)
		ties := trial%2 == 0
		ds := randDataset(rng, n, d, ties)
		eng := NewEngine(ds, Options{
			Index:             topk.Options{LengthThreshold: 1 << uint(rng.Intn(6)), MaxNodeSkyline: []int{-1, 4, 64}[rng.Intn(3)]},
			SkybandScanBudget: []int{0, 16, 4096}[rng.Intn(3)],
		})
		lo, hi := ds.Span()
		span := hi - lo
		for q := 0; q < 3; q++ {
			k := 1 + rng.Intn(12)
			tau := rng.Int63n(span + 2)
			start := lo - 5 + rng.Int63n(span+10)
			end := start + rng.Int63n(span+10)
			if start > end {
				start, end = end, start
			}
			anchor := Anchor(rng.Intn(2))
			s := randScorer(rng, d)
			wantIDs := BruteForce(ds, s, k, tau, start, end, anchor)
			for _, alg := range Algorithms() {
				res, err := eng.DurableTopK(Query{
					K: k, Tau: tau, Start: start, End: end,
					Scorer: s, Algorithm: alg, Anchor: anchor,
				})
				if err != nil {
					t.Fatalf("trial %d %v: %v", trial, alg, err)
				}
				got := res.IDs()
				if len(got) == 0 && len(wantIDs) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, wantIDs) {
					t.Fatalf("soak trial %d alg=%v anchor=%v n=%d d=%d k=%d tau=%d I=[%d,%d] ties=%v:\n got %v\nwant %v",
						trial, alg, anchor, n, d, k, tau, start, end, ties, got, wantIDs)
				}
			}
		}
	}
}
