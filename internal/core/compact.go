package core

import "sort"

// This file is the LSM leveling half of the live+sharded lifecycle: sealing
// (livesharded.go) produces a stream of small level-0 shards, and the
// background compactor here merges runs of adjacent same-level shards into
// exponentially larger shards one level up, bounding the live shard count —
// and with it straddler fan-out, router work and checkpoint manifest size —
// to O(CompactFanout · log n) on an unbounded stream. Retention (RetainSpan)
// retires whole ancient shards through the same publication path, so bounded
// deployments shed history without ever reshaping a shard in place.
//
// Both paths preserve the engine's epoch discipline: a merge or retirement is
// published as a new shardGroup epoch under the lifecycle lock, in-flight
// queries keep evaluating their pinned epoch, and EpochSeq bumps so
// whole-result caches invalidate by construction. Partial (interior) caches
// need help — their entries are keyed by shard identity, which compaction and
// retirement destroy — so every shard leaving the live set is announced
// through PartialInvalidator.

// PartialInvalidator is the optional invalidation surface of a PartialCache.
// When the cache implements it, the engine calls InvalidateShard whenever a
// sealed shard leaves the live set — compacted into a larger shard, or
// retired by retention — with the departing shard's global row range. Entries
// keyed by that exact (ShardLo, ShardHi) can never be looked up again (no
// future epoch contains the shard), so a cache that does not implement the
// interface leaks them instead of serving them stale; implementing it keeps
// the cache tight under compaction.
//
// InvalidateShard is called with the engine's lifecycle lock held and must
// not call back into the engine.
type PartialInvalidator interface {
	InvalidateShard(shardLo, shardHi int)
}

// invalidatePartialLocked announces that sealed shard [lo, hi) left the live
// set. Caller holds mu.
func (e *LiveShardedEngine) invalidatePartialLocked(lo, hi int) {
	if e.pc == nil {
		return
	}
	if inv, ok := e.pc.(PartialInvalidator); ok {
		inv.InvalidateShard(lo, hi)
	}
}

// findSealedLocked locates the sealed shard with exactly the range [lo, hi),
// if it is still live. Sealed shards tile ascending disjoint ranges, so a
// binary search on lo suffices. Caller holds mu.
func (e *LiveShardedEngine) findSealedLocked(lo, hi int) (int, bool) {
	i := sort.Search(len(e.sealed), func(i int) bool { return e.sealed[i].lo >= lo })
	if i < len(e.sealed) && e.sealed[i].lo == lo && e.sealed[i].hi == hi {
		return i, true
	}
	return 0, false
}

// planCompactionLocked returns the start index of the leftmost run of
// CompactFanout adjacent sealed shards sharing a level. Leftmost-first keeps
// merges oldest-history-first, so cascades promote bottom-up (a completed
// merge can immediately complete a run one level up). Caller holds mu.
func (e *LiveShardedEngine) planCompactionLocked() (int, bool) {
	f := e.so.CompactFanout
	if f < 2 {
		return 0, false
	}
	run := 1
	for i := 1; i < len(e.sealed); i++ {
		if e.sealed[i].level == e.sealed[i-1].level {
			if run++; run == f {
				return i - f + 1, true
			}
		} else {
			run = 1
		}
	}
	return 0, false
}

// maybeCompactLocked starts one background compaction if the planner finds a
// run and none is in flight. Caller holds mu.
//
// Like the seal freeze, the merge is two-phase so neither the appender nor
// queries ever wait on it: the merged static engine is built off the lock
// over the zero-copy global slice [lo, hi) — the constituents' rows are
// immutable, so the build races nothing — and installed under a short write
// lock when ready. Single-flight keeps at most one duplicate index build's
// worth of memory in flight and makes cascades strictly ordered; each
// install re-plans, so a backlog (e.g. after restore) drains one merge at a
// time until no run remains.
func (e *LiveShardedEngine) maybeCompactLocked() {
	if e.compacting {
		return
	}
	start, ok := e.planCompactionLocked()
	if !ok {
		return
	}
	run := e.sealed[start : start+e.so.CompactFanout]
	lo, hi := run[0].lo, run[len(run)-1].hi
	level := run[0].level + 1
	sub := e.global.Slice(lo, hi) // captured under mu: Slice reads mutable headers
	e.compacting = true
	e.compactWG.Add(1)
	go func() {
		defer e.compactWG.Done()
		eng := NewEngine(sub, e.opts)
		e.mu.Lock()
		e.installCompactedLocked(lo, hi, level, eng)
		e.compacting = false
		e.maybeCompactLocked() // cascade: the merge may have completed a run one level up
		e.mu.Unlock()
	}()
}

// installCompactedLocked swaps the sealed run tiling [lo, hi) for its merged
// level shard, publishing the change as a new epoch. The install aborts —
// discarding the built engine — if the constituents are no longer live
// (retention retired part of the range while the merge built); compaction is
// single-flight, so no other merge can have reshaped them. Caller holds mu.
func (e *LiveShardedEngine) installCompactedLocked(lo, hi, level int, eng *Engine) bool {
	a := sort.Search(len(e.sealed), func(i int) bool { return e.sealed[i].lo >= lo })
	if a == len(e.sealed) || e.sealed[a].lo != lo {
		return false
	}
	b := a
	for b < len(e.sealed) && e.sealed[b].hi <= hi {
		b++
	}
	if b == a || e.sealed[b-1].hi != hi {
		return false
	}
	// The constituents leave the live set: their interior cache entries are
	// unreachable from every future epoch.
	for _, sh := range e.sealed[a:b] {
		e.invalidatePartialLocked(sh.lo, sh.hi)
	}
	merged := timeShard{lo: lo, hi: hi, eng: eng, level: level, immutable: true}
	e.sealed = append(e.sealed[:a], append([]timeShard{merged}, e.sealed[b:]...)...)
	e.compactions++
	e.compactedRows += hi - lo
	e.seq++ // new epoch: future queries see the merged shard
	if e.so.OnCompact != nil {
		e.so.OnCompact(lo, hi, level)
	}
	return true
}

// maybeRetireLocked retires every sealed shard whose last arrival is older
// than latest − RetainSpan, always whole shards from the front of the
// timeline. Retired rows leave every future query epoch — answers match a
// batch engine over the retained suffix — and their interior cache entries
// are invalidated; the rows themselves stay in the global columnar storage
// (reclaiming their memory needs a storage compaction, a recorded follow-on).
// Caller holds mu.
func (e *LiveShardedEngine) maybeRetireLocked(latest int64) {
	if e.so.RetainSpan <= 0 {
		return
	}
	cutoff := latest - e.so.RetainSpan
	idx := 0
	for idx < len(e.sealed) && e.global.Time(e.sealed[idx].hi-1) < cutoff {
		idx++
	}
	if idx == 0 {
		return
	}
	lo, hi := e.sealed[0].lo, e.sealed[idx-1].hi
	for _, sh := range e.sealed[:idx] {
		e.invalidatePartialLocked(sh.lo, sh.hi)
	}
	e.sealed = append(e.sealed[:0:0], e.sealed[idx:]...)
	e.retiredLo = hi
	e.retires += idx
	e.retiredRows += hi - lo
	e.seq++ // new epoch: retired shards vanish from routing and evidence
	if e.so.OnRetire != nil {
		e.so.OnRetire(lo, hi)
	}
}

// WaitCompacted blocks until no background compaction is in flight and the
// planner finds no further run — the fully drained leveled state. Like
// WaitSealed, callers must not run it concurrently with appends that could
// seal (quiesce the stream first); cascades chain Add before Done, so a
// single Wait observes the whole chain.
func (e *LiveShardedEngine) WaitCompacted() {
	e.compactWG.Wait()
}

// Compactions returns the number of background merges installed so far.
func (e *LiveShardedEngine) Compactions() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.compactions
}

// CompactedRows returns the total rows merged across all compactions; a row
// merged at every level counts once per level, so CompactedRows/Len is the
// write-amplification of the leveling (bounded by the level count,
// O(log_fanout n)).
func (e *LiveShardedEngine) CompactedRows() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.compactedRows
}

// MaxLevel returns the highest level among live sealed shards (0 when none).
func (e *LiveShardedEngine) MaxLevel() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	level := 0
	for i := range e.sealed {
		if e.sealed[i].level > level {
			level = e.sealed[i].level
		}
	}
	return level
}

// RetiredRows returns the total rows retired by retention.
func (e *LiveShardedEngine) RetiredRows() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.retiredRows
}
