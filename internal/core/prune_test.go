package core

import (
	"math/rand"
	"reflect"
	"testing"
)

// TestShardPruningNarrowInterval checks the reach-based router: a query
// interval inside one shard visits only that shard no matter how far the
// durability window reaches, the skipped shards are tallied, and the answer
// still matches the brute-force oracle and the single engine.
func TestShardPruningNarrowInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	ds := randDataset(rng, 400, 2, false)
	s := randScorer(rng, 2)
	eng := NewEngine(ds, testEngineOpts())
	se := NewShardedEngine(ds, testEngineOpts(), ShardOptions{Shards: 8, Workers: 2})
	lo, hi := ds.Span()
	for _, anchor := range []Anchor{LookBack, LookAhead} {
		for _, tau := range []int64{0, 3, hi - lo} { // reach up to the whole domain
			infos := se.Shards()
			in := infos[4]
			q := Query{
				K: 3, Tau: tau, Start: in.Start, End: in.End,
				Scorer: s, Anchor: anchor,
			}
			res, err := se.DurableTopK(q)
			if err != nil {
				t.Fatal(err)
			}
			want := BruteForce(ds, s, q.K, tau, q.Start, q.End, anchor)
			if got := res.IDs(); !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
				t.Fatalf("anchor=%v tau=%d: got %v want %v", anchor, tau, got, want)
			}
			single, err := eng.DurableTopK(q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.IDs(), single.IDs()) {
				t.Fatalf("anchor=%v tau=%d: sharded %v != single %v", anchor, tau, res.IDs(), single.IDs())
			}
			// I spans one shard (maybe touching a neighbor's records is
			// impossible: Start/End are this shard's own arrivals), so at
			// least the other 7 shards must have been pruned by the router —
			// even when tau reaches across the whole time domain.
			if res.Stats.ShardsPruned < se.NumShards()-1 {
				t.Fatalf("anchor=%v tau=%d: ShardsPruned=%d, want >= %d",
					anchor, tau, res.Stats.ShardsPruned, se.NumShards()-1)
			}
		}
	}
}

// TestShardPruningBoundaryReach sweeps queries whose window reach lands
// exactly on a shard boundary arrival (and one tick to either side) — the
// alignments where an off-by-one in reach arithmetic would flip a verdict —
// and requires bit-identical answers to the oracle and the single engine,
// on both straddler paths.
func TestShardPruningBoundaryReach(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 6; trial++ {
		n := 120 + rng.Intn(200)
		ds := randDataset(rng, n, 1, trial%2 == 0)
		s := randScorer(rng, 1)
		eng := NewEngine(ds, testEngineOpts())
		for _, straddle := range []int{1, 1 << 30} {
			se := NewShardedEngine(ds, testEngineOpts(), ShardOptions{
				Shards: 2 + rng.Intn(6), Workers: 1 + rng.Intn(3),
				Strategy: ShardStrategy(trial % 2), StraddleThreshold: straddle,
			})
			infos := se.Shards()
			pruned := 0
			for bi := 1; bi < len(infos); bi++ {
				in := infos[bi]
				prevEnd := infos[bi-1].End
				gap := in.Start - prevEnd
				for dt := int64(-1); dt <= 1; dt++ {
					tau := gap + dt // back-reach lands on / beside the boundary arrival
					if tau < 0 {
						continue
					}
					for _, anchor := range []Anchor{LookBack, LookAhead} {
						q := Query{
							K: 1 + rng.Intn(4), Tau: tau,
							Start: in.Start, End: min64(in.End, in.Start+tau),
							Scorer: s, Anchor: anchor,
						}
						want := BruteForce(ds, s, q.K, q.Tau, q.Start, q.End, anchor)
						res, err := se.DurableTopK(q)
						if err != nil {
							t.Fatal(err)
						}
						if got := res.IDs(); !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
							t.Fatalf("trial=%d straddle=%d boundary=%d dt=%d anchor=%v k=%d tau=%d I=[%d,%d]:\n got %v\nwant %v",
								trial, straddle, bi, dt, anchor, q.K, q.Tau, q.Start, q.End, got, want)
						}
						single, err := eng.DurableTopK(q)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(res.IDs(), single.IDs()) {
							t.Fatalf("trial=%d boundary=%d dt=%d: sharded %v != single %v",
								trial, bi, dt, res.IDs(), single.IDs())
						}
						pruned += res.Stats.ShardsPruned
					}
				}
			}
			if len(infos) > 2 && pruned == 0 {
				t.Fatalf("trial=%d straddle=%d: boundary sweep never pruned a shard", trial, straddle)
			}
		}
	}
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
