package core

import (
	"math/rand"
	"testing"

	"repro/internal/score"
	"repro/internal/topk"
)

func TestDurabilityProfileMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rng.Intn(400)
		d := 1 + rng.Intn(3)
		ds := randDataset(rng, n, d, trial%2 == 0)
		eng := NewEngine(ds, Options{Index: topk.Options{LengthThreshold: 8}})
		s := randScorer(rng, d)
		k := 1 + rng.Intn(5)
		anchor := LookBack
		if trial%3 == 0 {
			anchor = LookAhead
		}
		profile, err := eng.DurabilityProfile(k, s, anchor)
		if err != nil {
			t.Fatal(err)
		}
		if len(profile) != n {
			t.Fatalf("profile size %d want %d", len(profile), n)
		}
		for i, rec := range profile {
			if rec.ID != i || rec.Time != ds.Time(i) {
				t.Fatalf("trial %d: profile[%d] misordered: %+v", trial, i, rec)
			}
			wantDur, wantFull := BruteMaxDuration(ds, s, k, i, anchor)
			if rec.Duration != wantDur || rec.FullHistory != wantFull {
				t.Fatalf("trial %d anchor=%v k=%d record %d: got (%d,%v) want (%d,%v)",
					trial, anchor, k, i, rec.Duration, rec.FullHistory, wantDur, wantFull)
			}
		}
	}
}

func TestDurabilityProfileValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	ds := randDataset(rng, 20, 2, false)
	eng := NewEngine(ds, Options{})
	if _, err := eng.DurabilityProfile(0, score.MustLinear(1, 1), LookBack); err == nil {
		t.Fatal("k=0 must fail")
	}
	if _, err := eng.DurabilityProfile(1, nil, LookBack); err == nil {
		t.Fatal("nil scorer must fail")
	}
	if _, err := eng.DurabilityProfile(1, score.MustLinear(1), LookBack); err == nil {
		t.Fatal("dims mismatch must fail")
	}
}

func TestMostDurableOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	ds := randDataset(rng, 300, 2, false)
	eng := NewEngine(ds, Options{})
	s := randScorer(rng, 2)
	top, err := eng.MostDurable(2, s, LookBack, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(top) != 10 {
		t.Fatalf("MostDurable returned %d records", len(top))
	}
	for i := 1; i < len(top); i++ {
		a, b := top[i-1], top[i]
		if !a.FullHistory && b.FullHistory {
			t.Fatal("full-history records must rank first")
		}
		if a.FullHistory == b.FullHistory && a.Duration < b.Duration {
			t.Fatal("durations must descend")
		}
	}
	// n=0 returns the whole profile.
	all, err := eng.MostDurable(2, s, LookBack, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != ds.Len() {
		t.Fatalf("n=0 must return all records, got %d", len(all))
	}
}

// TestProfileConsistentWithDurTop cross-checks the two durability paths: a
// record is in DurTop(k, I, tau) exactly when its profile duration is >= tau
// (or its window is truncated by history).
func TestProfileConsistentWithDurTop(t *testing.T) {
	rng := rand.New(rand.NewSource(124))
	for trial := 0; trial < 8; trial++ {
		ds := randDataset(rng, 250, 2, trial%2 == 0)
		eng := NewEngine(ds, Options{})
		s := randScorer(rng, 2)
		k := 1 + rng.Intn(4)
		lo, hi := ds.Span()
		tau := 1 + rng.Int63n(ds.TimeSpan())
		profile, err := eng.DurabilityProfile(k, s, LookBack)
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.DurableTopK(Query{K: k, Tau: tau, Start: lo, End: hi, Scorer: s, Algorithm: THop})
		if err != nil {
			t.Fatal(err)
		}
		inAnswer := map[int]bool{}
		for _, r := range res.Records {
			inAnswer[r.ID] = true
		}
		for _, rec := range profile {
			wantDurable := rec.Duration >= tau || rec.FullHistory
			if wantDurable != inAnswer[rec.ID] {
				t.Fatalf("trial %d k=%d tau=%d record %d: profile dur=%d full=%v but durable=%v",
					trial, k, tau, rec.ID, rec.Duration, rec.FullHistory, inAnswer[rec.ID])
			}
		}
	}
}

func BenchmarkDurabilityProfile50k(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	ds := randDataset(rng, 50_000, 2, false)
	eng := NewEngine(ds, Options{})
	s := score.MustLinear(0.4, 0.6)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.DurabilityProfile(10, s, LookBack); err != nil {
			b.Fatal(err)
		}
	}
}
