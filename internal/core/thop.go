package core

// runTHop is the Time-Hop algorithm (§III-B, Algorithm 1): visit records
// backwards through I, and after each failed durability check hop directly
// to the most recent arrival among the window's top-k. Every record skipped
// by a hop is provably non-durable: its own window contains all k returned
// records, each of which outranks it (strictly, thanks to the recency
// tie-break of the building block). The number of building-block calls is
// O(|S| + k·ceil(|I|/tau)) (Lemma 1).
func runTHop(v *view, pr *probe, q Query, st *Stats) []int32 {
	ds := v.ds
	loIdx := ds.LowerBound(q.Start)
	cur := ds.UpperBound(q.End) - 1
	var res []int32
	for cur >= loIdx {
		st.Visited++
		t := ds.Time(cur)
		items := v.topk(pr, st, kindCheck, q.Scorer, q.K, satSub(t, q.Tau), t)
		if v.member(q.Scorer, q.K, items, int32(cur)) {
			res = append(res, int32(cur))
			cur--
			continue
		}
		// Hop to the most recent arrival among the top-k. The failed check
		// guarantees it is strictly earlier than cur.
		maxT := items[0].Time
		for _, it := range items[1:] {
			if it.Time > maxT {
				maxT = it.Time
			}
		}
		cur = ds.At(maxT)
	}
	reverse(res)
	return res
}
