package core

import (
	"reflect"
	"testing"

	"repro/internal/data"
	"repro/internal/score"
	"repro/internal/topk"
)

// TestGoldenFig2TimeHop encodes the paper's Figure 2 walkthrough: after the
// durability check of the newest record fails, T-Hop jumps directly to the
// most recent member of the window's top-3, skipping the low-score records
// in between without checking them.
func TestGoldenFig2TimeHop(t *testing.T) {
	// times:   1   2   3   4   5   6   7   8
	// scores:  5  90  80  85  10  11  12  20
	ds := data.MustNew(
		[]int64{1, 2, 3, 4, 5, 6, 7, 8},
		[][]float64{{5}, {90}, {80}, {85}, {10}, {11}, {12}, {20}},
	)
	eng := NewEngine(ds, Options{Index: topk.Options{LengthThreshold: 2}})
	s := score.MustLinear(1)
	res, err := eng.DurableTopK(Query{K: 3, Tau: 7, Start: 1, End: 8, Scorer: s, Algorithm: THop})
	if err != nil {
		t.Fatal(err)
	}
	// Records 5..7 (scores 10,11,12) and 8 (20) each face three higher
	// scores in their windows; the first four records are durable.
	if want := []int{0, 1, 2, 3}; !reflect.DeepEqual(res.IDs(), want) {
		t.Fatalf("answer %v want %v", res.IDs(), want)
	}
	// One failed check at t=8 hops straight to t=4; then four successful
	// checks walk the prefix. Exactly 5 checks for 8 records in I.
	if res.Stats.CheckQueries != 5 {
		t.Fatalf("t-hop issued %d checks, the Figure-2 walk needs exactly 5", res.Stats.CheckQueries)
	}
	if res.Stats.Visited != 5 {
		t.Fatalf("t-hop visited %d records, want 5 (three skipped by the hop)", res.Stats.Visited)
	}
}

// TestGoldenFig3Blocking encodes Figure 3: after processing three high-score
// records, the time region covered by all three blocking intervals cannot
// contain any tau-durable top-3 record, while a region covered by only two
// still can.
func TestGoldenFig3Blocking(t *testing.T) {
	// p2@5 (90), p3@8 (80), p1@10 (100) block [l, l+10] each.
	// victim@12 lies in all three intervals; w@18 lies in two (p1's, p3's).
	ds := data.MustNew(
		[]int64{5, 8, 10, 12, 18},
		[][]float64{{90}, {80}, {100}, {50}, {50}},
	)
	eng := NewEngine(ds, Options{Index: topk.Options{LengthThreshold: 1}})
	s := score.MustLinear(1)
	for _, alg := range Algorithms() {
		res, err := eng.DurableTopK(Query{K: 3, Tau: 10, Start: 1, End: 20, Scorer: s, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		// Durable: the three tops and w (two blockers in its window);
		// not durable: victim@12 (three blockers cover it).
		if want := []int{0, 1, 2, 4}; !reflect.DeepEqual(res.IDs(), want) {
			t.Fatalf("%v: answer %v want %v", alg, res.IDs(), want)
		}
	}
}

// TestGoldenFig5SBandDiscovery encodes Figure 5: records outside the durable
// k-skyband candidate set can still outrank candidates; S-Band discovers
// them through the durability-check query and converts them into blocking
// intervals, keeping the answer exact.
func TestGoldenFig5SBandDiscovery(t *testing.T) {
	// 2-d records; preference (1, 1). p_b1/p_b2 are quickly dominated (out
	// of the candidate set for large tau) yet outrank the later candidate
	// under the scorer.
	ds := data.MustNew(
		[]int64{1, 2, 3, 9, 14},
		[][]float64{
			{10, 10}, // p1: dominates everything early, certainly in C
			{9, 9},   // p_b1: dominated by p1 immediately -> tiny skyband duration
			{8, 9},   // p_b2: dominated immediately as well
			{6, 6},   // p4: candidate (nothing dominates it within recent window)
			{7, 5},   // p5: candidate
		},
	)
	eng := NewEngine(ds, Options{Index: topk.Options{LengthThreshold: 1}})
	s := score.MustLinear(1, 1)
	q := Query{K: 1, Tau: 8, Start: 1, End: 14, Scorer: s, Algorithm: SBand}
	res, err := eng.DurableTopK(q)
	if err != nil {
		t.Fatal(err)
	}
	want := BruteForce(ds, s, 1, 8, 1, 14, LookBack)
	if !reflect.DeepEqual(res.IDs(), want) {
		t.Fatalf("s-band answer %v want %v", res.IDs(), want)
	}
	// The candidate index must have pruned the immediately-dominated
	// records: |C| < n.
	if res.Stats.CandidateCount >= ds.Len() {
		t.Fatalf("|C|=%d, expected pruning below n=%d", res.Stats.CandidateCount, ds.Len())
	}
}

// TestGoldenExampleI1 recreates the shape of Example I.1: a record whose
// absolute value is unimpressive is still durable top-1 because its era was
// weak — the insight the paper's introduction leads with (Duncan's 27
// rebounds, 2002-2010).
func TestGoldenExampleI1WeakEra(t *testing.T) {
	// Strong era (scores ~30+), weak era (scores < 28), strong again.
	times := []int64{1, 2, 3, 10, 11, 12, 20, 21}
	vals := [][]float64{{34}, {35}, {33}, {26}, {27}, {25}, {31}, {30}}
	ds := data.MustNew(times, vals)
	eng := NewEngine(ds, Options{Index: topk.Options{LengthThreshold: 1}})
	s := score.MustLinear(1)
	res, err := eng.DurableTopK(Query{K: 1, Tau: 5, Start: 1, End: 21, Scorer: s, Algorithm: SHop})
	if err != nil {
		t.Fatal(err)
	}
	ids := map[int]bool{}
	for _, r := range res.Records {
		ids[r.ID] = true
	}
	// Record 4 scores only 27 yet is the best of its 5-tick lookback.
	if !ids[4] {
		t.Fatalf("the weak-era champion (id 4, score 27) must be durable; got %v", res.IDs())
	}
	// Record 7 (score 30) is shadowed by record 6 (31) in its window.
	if ids[7] {
		t.Fatal("id 7 is shadowed by id 6 within tau and must not be durable")
	}
}
