package core

import (
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"testing"

	"repro/internal/data"
)

// Cross-strategy differential property harness: every evaluation strategy —
// the five single-engine algorithms and the sharded engine at several shard
// counts — must return bit-identical answers to the brute-force oracle on
// randomized dataset shapes and randomized queries.
//
// Each trial derives its own seed from a master seed and logs it on failure;
// rerun one trial with
//
//	DIFF_SEED=<seed> go test -run TestDifferentialAllStrategies ./internal/core

// diffShardCounts are the sharded-engine configurations under differential
// test (1 = degenerate single shard; 16 usually exceeds the shard-per-record
// density on small datasets, exercising cut clamping).
var diffShardCounts = []int{1, 2, 7, 16}

// diffDataset builds one of three adversarially shaped datasets:
//
//	clustered: tight bursts of arrivals (gap 1) separated by long gaps, so
//	  shard boundaries land inside and between bursts and tau spans whole
//	  bursts at once
//	adversarial: monotone score ramps up then down with heavy exact score
//	  ties from a tiny integer domain — worst case for tie-break handling
//	dense: consecutive timestamps (gap exactly 1 everywhere, the closest a
//	  strictly-increasing time domain comes to duplicate timestamps), so
//	  window and shard edges always collide with record arrivals
func diffDataset(rng *rand.Rand, flavor string, n, d int) *data.Dataset {
	times := make([]int64, n)
	rows := make([][]float64, n)
	t := int64(rng.Intn(3))
	for i := 0; i < n; i++ {
		switch flavor {
		case "clustered":
			if rng.Intn(12) == 0 {
				t += int64(50 + rng.Intn(200)) // burst gap
			} else {
				t += 1
			}
		case "dense":
			t += 1
		default: // adversarial
			t += int64(1 + rng.Intn(3))
		}
		times[i] = t
		row := make([]float64, d)
		for j := range row {
			switch flavor {
			case "adversarial":
				// Ramp with plateaus of exact ties.
				ramp := i
				if i > n/2 {
					ramp = n - i
				}
				row[j] = float64(ramp/5) + float64(rng.Intn(2))
			default:
				if rng.Intn(3) == 0 {
					row[j] = float64(rng.Intn(5)) // frequent exact ties
				} else {
					row[j] = rng.Float64() * 100
				}
			}
		}
		rows[i] = row
	}
	return data.MustNew(times, rows)
}

// diffQuery draws one randomized query over ds, biased toward the regimes
// where strategies diverge: tiny and huge tau, narrow intervals (often
// narrower than one shard), boundary-pinned intervals.
func diffQuery(rng *rand.Rand, ds *data.Dataset) Query {
	lo, hi := ds.Span()
	span := hi - lo
	q := Query{K: 1 + rng.Intn(6)}
	switch rng.Intn(4) {
	case 0:
		q.Tau = int64(rng.Intn(3)) // degenerate windows
	case 1:
		q.Tau = span + int64(rng.Intn(10)) // window covers everything
	default:
		q.Tau = int64(rng.Intn(int(span) + 2))
	}
	switch rng.Intn(3) {
	case 0: // narrow interval, often narrower than a shard
		q.Start = lo + int64(rng.Intn(int(span)+1))
		q.End = q.Start + int64(rng.Intn(8))
		if q.End > hi {
			q.End = hi
		}
	default:
		q.Start = lo + int64(rng.Intn(int(span)+1))
		q.End = q.Start + int64(rng.Intn(int(hi-q.Start)+1))
	}
	switch rng.Intn(3) {
	case 0:
		q.Anchor = LookAhead
	case 1:
		q.Anchor = General
		if q.Tau > 0 {
			q.Lead = int64(rng.Intn(int(q.Tau) + 1))
		}
	default:
		q.Anchor = LookBack
	}
	return q
}

func runDifferentialTrial(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	flavor := []string{"clustered", "adversarial", "dense"}[rng.Intn(3)]
	n := 40 + rng.Intn(260)
	d := 1 + rng.Intn(3)
	ds := diffDataset(rng, flavor, n, d)
	s := randScorer(rng, d)
	eng := NewEngine(ds, testEngineOpts())
	sharded := make([]*ShardedEngine, len(diffShardCounts))
	for i, count := range diffShardCounts {
		// Alternate strategy and straddle path so both get coverage.
		sharded[i] = NewShardedEngine(ds, testEngineOpts(), ShardOptions{
			Shards:            count,
			Workers:           1 + rng.Intn(3),
			Strategy:          ShardStrategy(rng.Intn(2)),
			StraddleThreshold: []int{1, 16, 1 << 30}[rng.Intn(3)],
		})
	}

	fail := func(engine string, q Query, got, want []int) {
		t.Fatalf("seed %d (DIFF_SEED=%d to reproduce): flavor=%s n=%d d=%d engine=%s\n"+
			"query k=%d tau=%d lead=%d I=[%d,%d] anchor=%v\n got %v\nwant %v",
			seed, seed, flavor, n, d, engine, q.K, q.Tau, q.Lead, q.Start, q.End, q.Anchor, got, want)
	}

	// reachQuery pins the window reach exactly onto a shard boundary of a
	// random sharded engine (gap-1, gap, gap+1): the alignments where the
	// reach-based shard pruning would first get an off-by-one wrong.
	reachQuery := func() Query {
		se := sharded[rng.Intn(len(sharded))]
		infos := se.Shards()
		in := infos[rng.Intn(len(infos))]
		q := Query{K: 1 + rng.Intn(6)}
		gap := int64(1)
		if in.Lo > 0 {
			gap = in.Start - ds.Time(in.Lo-1)
		}
		q.Tau = gap + int64(rng.Intn(3)) - 1
		if q.Tau < 0 {
			q.Tau = 0
		}
		q.Start = in.Start
		q.End = q.Start + int64(rng.Intn(int(q.Tau)+2))
		if in.End < q.End {
			q.End = in.End
		}
		switch rng.Intn(3) {
		case 0:
			q.Anchor = LookAhead
		case 1:
			q.Anchor = General
			if q.Tau > 0 {
				q.Lead = int64(rng.Intn(int(q.Tau) + 1))
			}
		}
		return q
	}

	for qi := 0; qi < 7; qi++ {
		q := diffQuery(rng, ds)
		if qi >= 5 {
			q = reachQuery()
		}
		q.Scorer = s
		var want []int
		if q.Anchor == General {
			want = BruteForceAnchored(ds, s, q.K, q.Tau, q.Lead, q.Start, q.End)
		} else {
			want = BruteForce(ds, s, q.K, q.Tau, q.Start, q.End, q.Anchor)
		}
		for _, alg := range Algorithms() {
			sub := q
			sub.Algorithm = alg
			mid := q.Anchor == General && q.Lead > 0 && q.Lead < q.Tau
			if mid && (alg == TBase || alg == SBand) {
				continue // rejected by contract, covered elsewhere
			}
			res, err := eng.DurableTopK(sub)
			if err != nil {
				t.Fatalf("seed %d: %v: %v", seed, alg, err)
			}
			if got := res.IDs(); !(len(got) == 0 && len(want) == 0) && !reflect.DeepEqual(got, want) {
				fail(alg.String(), q, got, want)
			}
		}
		for i, se := range sharded {
			res, err := se.DurableTopK(q)
			if err != nil {
				t.Fatalf("seed %d: shards=%d: %v", seed, diffShardCounts[i], err)
			}
			if got := res.IDs(); !(len(got) == 0 && len(want) == 0) && !reflect.DeepEqual(got, want) {
				fail(fmt.Sprintf("sharded-%d", se.NumShards()), q, got, want)
			}
		}
	}
}

// runLiveShardedDifferentialTrial is the acceptance harness of the
// live+sharded lifecycle: one dataset streamed through a LiveShardedEngine in
// random batch sizes under a random seal policy (row- or span-triggered,
// plus randomly forced seals so queries land right after epoch swaps), with
// queries interleaved at every batch boundary — each answer compared
// record-for-record (ID, time, score, durations) against a batch Engine
// built fresh over exactly the prefix appended so far, across all five
// strategies and both straddler paths. Most trials also run background
// compaction, so queries land on epochs mid-merge and just after level
// swaps.
func runLiveShardedDifferentialTrial(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	flavor := []string{"clustered", "adversarial", "dense"}[rng.Intn(3)]
	n := 40 + rng.Intn(260)
	d := 1 + rng.Intn(3)
	ds := diffDataset(rng, flavor, n, d)
	s := randScorer(rng, d)

	so := LiveShardOptions{
		Workers:           1 + rng.Intn(3),
		StraddleThreshold: []int{1, 16, 1 << 30}[rng.Intn(3)],
		// Background compaction on two trials out of three: merges race the
		// interleaved queries below, so answers are checked against epochs
		// before, during and after level swaps. (No RetainSpan here — the
		// batch engine holds the full prefix; retention equivalence has its
		// own suffix-differential in compact_test.go.)
		CompactFanout: []int{0, 2, 2 + rng.Intn(3)}[rng.Intn(3)],
	}
	if rng.Intn(2) == 0 {
		so.SealRows = 1 + rng.Intn(60)
	} else {
		so.SealSpan = 1 + int64(rng.Intn(int(ds.TimeSpan())+2))
	}
	lse, err := NewLiveShardedEngine(d, testEngineOpts(), LiveOptions{}, so)
	if err != nil {
		t.Fatal(err)
	}

	fail := func(alg string, prefix int, q Query, got, want *Result) {
		t.Fatalf("seed %d (LIVESHARD_SEED=%d to reproduce): flavor=%s n=%d d=%d prefix=%d shards=%d alg=%s\n"+
			"seal rows=%d span=%d fanout=%d compactions=%d | query k=%d tau=%d lead=%d I=[%d,%d] anchor=%v durations=%v\n got %v\nwant %v",
			seed, seed, flavor, n, d, prefix, lse.NumShards(), alg,
			so.SealRows, so.SealSpan, so.CompactFanout, lse.Compactions(), q.K, q.Tau, q.Lead, q.Start, q.End,
			q.Anchor, q.WithDurations, got.Records, want.Records)
	}

	appended := 0
	for appended < n {
		batch := 1 + rng.Intn(24)
		for j := 0; j < batch && appended < n; j++ {
			if _, _, err := lse.Append(ds.Time(appended), ds.Attrs(appended)); err != nil {
				t.Fatalf("seed %d: append %d: %v", seed, appended, err)
			}
			appended++
		}
		if rng.Intn(4) == 0 {
			// Forced seal: the next queries run against a just-swapped epoch
			// with a momentarily empty tail.
			lse.Seal()
		}
		prefix := ds.Prefix(appended)
		batchEng := NewEngine(prefix, testEngineOpts())
		for qi := 0; qi < 2; qi++ {
			q := diffQuery(rng, prefix)
			q.Scorer = s
			q.WithDurations = rng.Intn(3) == 0 && q.Anchor != General
			for _, alg := range Algorithms() {
				sub := q
				sub.Algorithm = alg
				mid := q.Anchor == General && q.Lead > 0 && q.Lead < q.Tau
				if mid && (alg == TBase || alg == SBand) {
					continue // rejected by contract, covered elsewhere
				}
				if mid && q.WithDurations {
					continue
				}
				want, err := batchEng.DurableTopK(sub)
				if err != nil {
					t.Fatalf("seed %d: batch %v: %v", seed, alg, err)
				}
				got, err := lse.DurableTopK(sub)
				if err != nil {
					t.Fatalf("seed %d: live-sharded %v: %v", seed, alg, err)
				}
				if !reflect.DeepEqual(got.Records, want.Records) {
					fail(alg.String(), appended, sub, got, want)
				}
			}
		}
	}
	if lse.Len() != n {
		t.Fatalf("live-sharded Len=%d want %d", lse.Len(), n)
	}
	if lse.SealedRows()+lse.TailLen() != n {
		t.Fatalf("sealed %d + tail %d records, want %d", lse.SealedRows(), lse.TailLen(), n)
	}
}

func TestLiveShardedDifferential(t *testing.T) {
	if env := os.Getenv("LIVESHARD_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad LIVESHARD_SEED %q: %v", env, err)
		}
		runLiveShardedDifferentialTrial(t, seed)
		return
	}
	master := rand.New(rand.NewSource(20260729))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		runLiveShardedDifferentialTrial(t, master.Int63())
	}
}

func TestDifferentialAllStrategies(t *testing.T) {
	if env := os.Getenv("DIFF_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad DIFF_SEED %q: %v", env, err)
		}
		runDifferentialTrial(t, seed)
		return
	}
	master := rand.New(rand.NewSource(20260727))
	trials := 20
	if testing.Short() {
		trials = 6
	}
	for trial := 0; trial < trials; trial++ {
		runDifferentialTrial(t, master.Int63())
	}
}
