package core

import (
	"runtime"
	"sync"
	"time"
)

// DurableTopKParallel evaluates DurTop(k, I, tau) by splitting the query
// interval into `workers` contiguous time chunks processed concurrently and
// concatenating the per-chunk answers. The split is exact — a record's
// durability depends only on its own anchored window, never on which chunk
// of I it falls into — so results are identical to DurableTopK.
//
// workers <= 0 selects GOMAXPROCS. Per-chunk statistics are summed; the hop
// algorithms pay a small extra cost per chunk boundary (one window
// re-anchoring), so total building-block calls can exceed the sequential
// run's by O(k · workers).
func (e *Engine) DurableTopKParallel(q Query, workers int) (*Result, error) {
	if err := q.validate(e.fwd.ds.Dims()); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	// Resolve Auto once so every chunk runs the same strategy (per-chunk
	// planner inputs would differ slightly and could diverge).
	q.Algorithm = e.resolveAlgorithm(&q)
	span := q.End - q.Start
	if workers == 1 || span < int64(workers) {
		return e.DurableTopK(q)
	}
	if q.Algorithm == SBand {
		// Materialize the shared ladder level up front so concurrent chunks
		// don't serialize on its lazy construction.
		e.PrepareSkyband(q.K, q.Anchor)
	}

	startAt := time.Now()
	chunk := span/int64(workers) + 1
	type part struct {
		res *Result
		err error
	}
	parts := make([]part, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := q.Start + int64(w)*chunk
		hi := lo + chunk - 1
		if hi > q.End || w == workers-1 {
			hi = q.End
		}
		if lo > q.End {
			break
		}
		wg.Add(1)
		go func(w int, lo, hi int64) {
			defer wg.Done()
			sub := q
			sub.Start, sub.End = lo, hi
			sub.WithDurations = false // durations are filled once, below
			parts[w].res, parts[w].err = e.DurableTopK(sub)
		}(w, lo, hi)
	}
	wg.Wait()

	out := &Result{Stats: Stats{Algorithm: q.Algorithm}}
	for _, p := range parts {
		if p.err != nil {
			return nil, p.err
		}
		if p.res == nil {
			continue
		}
		out.Records = append(out.Records, p.res.Records...)
		out.Stats.CheckQueries += p.res.Stats.CheckQueries
		out.Stats.FindQueries += p.res.Stats.FindQueries
		out.Stats.MaintQueries += p.res.Stats.MaintQueries
		out.Stats.CandidateCount += p.res.Stats.CandidateCount
		out.Stats.Visited += p.res.Stats.Visited
	}
	if q.WithDurations {
		v := &e.fwd
		if q.Anchor == LookAhead {
			v = e.reversed()
		}
		pr := newProbe()
		defer pr.release()
		n := e.fwd.ds.Len()
		for i := range out.Records {
			mirrored := int32(out.Records[i].ID)
			if q.Anchor == LookAhead {
				mirrored = int32(n - 1 - out.Records[i].ID)
			}
			dur, full := maxDuration(v, pr, &out.Stats, q.Scorer, q.K, mirrored)
			out.Records[i].MaxDuration = dur
			out.Records[i].FullHistory = full
		}
	}
	out.Stats.Elapsed = time.Since(startAt)
	return out, nil
}
