package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/data"
	"repro/internal/score"
	"repro/internal/topk"
)

// antiDataset draws points from the positive-orthant annulus (the paper's
// ANTI distribution) — worst case for skyline-based structures.
func antiDataset(rng *rand.Rand, n int) *data.Dataset {
	times := make([]int64, n)
	rows := make([][]float64, n)
	t := int64(0)
	for i := 0; i < n; i++ {
		t += int64(1 + rng.Intn(2))
		times[i] = t
		x := rng.Float64()
		y := 0.8 + 0.2*rng.Float64()
		rows[i] = []float64{x * y, (1 - x) * y}
	}
	return data.MustNew(times, rows)
}

// constantDataset has all-equal scores: every record ties with every other.
func constantDataset(n int) *data.Dataset {
	times := make([]int64, n)
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		times[i] = int64(i + 1)
		rows[i] = []float64{7}
	}
	return data.MustNew(times, rows)
}

// monotoneIncreasing scores strictly rise over time: only a suffix of each
// window can be durable.
func monotoneIncreasingDataset(n int) *data.Dataset {
	times := make([]int64, n)
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		times[i] = int64(i + 1)
		rows[i] = []float64{float64(i)}
	}
	return data.MustNew(times, rows)
}

func checkAllAlgorithms(t *testing.T, ds *data.Dataset, s score.Scorer, k int, tau int64) {
	t.Helper()
	eng := NewEngine(ds, Options{Index: topk.Options{LengthThreshold: 8}})
	lo, hi := ds.Span()
	want := BruteForce(ds, s, k, tau, lo, hi, LookBack)
	for _, alg := range Algorithms() {
		if alg == SBand && !score.IsMonotone(s) {
			continue
		}
		res, err := eng.DurableTopK(Query{K: k, Tau: tau, Start: lo, End: hi, Scorer: s, Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		got := res.IDs()
		if len(got) == 0 && len(want) == 0 {
			continue
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v on adversarial data: got %d records want %d\n got %v\nwant %v",
				alg, len(got), len(want), got, want)
		}
	}
}

func TestAntiCorrelatedData(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 6; trial++ {
		ds := antiDataset(rng, 200+rng.Intn(200))
		w := []float64{rng.Float64(), rng.Float64()}
		checkAllAlgorithms(t, ds, score.MustLinear(w...), 1+rng.Intn(5), 5+rng.Int63n(60))
	}
}

func TestAllScoresEqual(t *testing.T) {
	ds := constantDataset(150)
	s := score.MustLinear(1)
	// With total ties, nobody has a strictly higher score: every record is
	// durable for every k and tau.
	checkAllAlgorithms(t, ds, s, 1, 50)
	eng := NewEngine(ds, Options{})
	res, err := eng.DurableTopK(Query{K: 1, Tau: 50, Start: 1, End: 150, Scorer: s, Algorithm: SHop})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 150 {
		t.Fatalf("all-ties: %d durable want 150", len(res.Records))
	}
}

func TestMonotoneIncreasingScores(t *testing.T) {
	ds := monotoneIncreasingDataset(200)
	s := score.MustLinear(1)
	// Strictly rising scores: every record is the maximum of its window, so
	// all are durable at k=1.
	checkAllAlgorithms(t, ds, s, 1, 30)
	// Decreasing preference (negative weight) reverses the ranking: only
	// records whose window reaches back to the dataset start stay top-1.
	neg := score.MustLinear(-1)
	checkAllAlgorithms(t, ds, neg, 1, 30)
	checkAllAlgorithms(t, ds, neg, 3, 30)
}

func TestSingleRecordDataset(t *testing.T) {
	ds := data.MustNew([]int64{5}, [][]float64{{1, 2}})
	checkAllAlgorithms(t, ds, score.MustLinear(1, 1), 1, 10)
	checkAllAlgorithms(t, ds, score.MustLinear(1, 1), 5, 0)
}

func TestHugeTauSaturates(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	ds := randDataset(rng, 120, 2, false)
	s := randScorer(rng, 2)
	// Tau near the int64 limit must not overflow window arithmetic.
	checkAllAlgorithms(t, ds, s, 2, 1<<60)
}

func TestSparseTimeGaps(t *testing.T) {
	// Huge gaps between arrivals: windows often contain a single record and
	// sub-interval partitions are mostly empty.
	rng := rand.New(rand.NewSource(79))
	times := make([]int64, 80)
	rows := make([][]float64, 80)
	t0 := int64(0)
	for i := range times {
		t0 += 1 + rng.Int63n(1_000_000)
		times[i] = t0
		rows[i] = []float64{rng.Float64()}
	}
	ds := data.MustNew(times, rows)
	checkAllAlgorithms(t, ds, score.MustLinear(1), 2, 500)
	checkAllAlgorithms(t, ds, score.MustLinear(1), 2, 2_500_000)
}

// TestLargeAgreement cross-checks the algorithms against each other (with
// T-Hop as reference) at a size where the brute-force oracle is too slow.
func TestLargeAgreement(t *testing.T) {
	if testing.Short() {
		t.Skip("large agreement test skipped in -short mode")
	}
	rng := rand.New(rand.NewSource(83))
	ds := randDataset(rng, 30_000, 3, false)
	eng := NewEngine(ds, Options{SkybandScanBudget: 2048})
	lo, hi := ds.Span()
	span := hi - lo
	for _, k := range []int{1, 10} {
		for _, tau := range []int64{span / 50, span / 5} {
			s := randScorer(rng, 3)
			q := Query{K: k, Tau: tau, Start: lo + span/4, End: hi, Scorer: s, Algorithm: THop}
			ref, err := eng.DurableTopK(q)
			if err != nil {
				t.Fatal(err)
			}
			for _, alg := range []Algorithm{TBase, SBase, SBand, SHop} {
				q.Algorithm = alg
				res, err := eng.DurableTopK(q)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res.IDs(), ref.IDs()) {
					t.Fatalf("k=%d tau=%d: %v disagrees with t-hop (%d vs %d records)",
						k, tau, alg, len(res.Records), len(ref.Records))
				}
			}
		}
	}
}
