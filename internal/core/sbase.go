package core

import (
	"slices"

	"repro/internal/blocking"
)

// scoredRef is a record reference carrying its precomputed score, sortable
// by the canonical (score desc, time desc) order.
type scoredRef struct {
	id    int32
	time  int64
	score float64
}

// sortScoredDesc sorts by (score desc, time desc). slices.SortFunc rather
// than sort.Slice: same pattern-defeating quicksort, but generic, so the
// probe hot paths sort without the interface-boxing allocations. Arrival
// times are unique, so the comparator is a total order and the unstable sort
// is deterministic.
func sortScoredDesc(refs []scoredRef) {
	slices.SortFunc(refs, func(a, b scoredRef) int {
		switch {
		case a.score > b.score:
			return -1
		case a.score < b.score:
			return 1
		case a.time > b.time:
			return -1
		case a.time < b.time:
			return 1
		}
		return 0
	})
}

// runSBase is the score-prioritized baseline (§IV-A): sort every record of
// [Start - tau, End] by score and sweep once, deciding durability purely
// from blocking-interval cover counts. Records processed earlier always
// outrank later ones, so a record is tau-durable exactly when fewer than k
// blocking intervals cover its arrival. No building-block queries are
// issued; the O(n log n) sort dominates.
func runSBase(v *view, q Query, st *Stats) []int32 {
	ds := v.ds
	lo := ds.LowerBound(satSub(q.Start, q.Tau))
	hi := ds.UpperBound(q.End)
	if lo >= hi {
		return nil
	}
	refs := make([]scoredRef, 0, hi-lo)
	for i := lo; i < hi; i++ {
		refs = append(refs, scoredRef{
			id:    int32(i),
			time:  ds.Time(i),
			score: q.Scorer.Score(ds.Attrs(i)),
		})
	}
	st.CandidateCount = len(refs)
	sortScoredDesc(refs)

	blk := blocking.NewSet(q.Tau)
	var res []int32
	for _, p := range refs {
		st.Visited++
		if p.time >= q.Start && p.time <= q.End && blk.Cover(p.time) < q.K {
			res = append(res, p.id)
		}
		blk.Add(p.time)
	}
	sortIDs(res)
	return res
}

func sortIDs(ids []int32) {
	slices.Sort(ids)
}
