package core

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/data"
	"repro/internal/planner"
	"repro/internal/score"
)

// ShardStrategy selects how NewShardedEngine cuts the time domain into
// contiguous shards.
type ShardStrategy int

const (
	// ByCount gives every shard (nearly) the same number of records. Best
	// for bursty arrival processes: per-shard index sizes, memory and query
	// work stay balanced regardless of how arrivals cluster in time.
	ByCount ShardStrategy = iota
	// ByTimeSpan gives every shard the same width of the time domain. Best
	// when queries are routed by wall-clock ranges (e.g. one shard per
	// month) and arrivals are roughly uniform.
	ByTimeSpan
)

// String names the strategy ("count", "timespan").
func (s ShardStrategy) String() string {
	if s == ByTimeSpan {
		return "timespan"
	}
	return "count"
}

// ParseShardStrategy converts a name accepted by String back to a strategy.
func ParseShardStrategy(s string) (ShardStrategy, error) {
	switch s {
	case "count":
		return ByCount, nil
	case "timespan":
		return ByTimeSpan, nil
	}
	return ByCount, fmt.Errorf("core: unknown shard strategy %q (want count|timespan)", s)
}

// ShardOptions configures a ShardedEngine.
type ShardOptions struct {
	// Shards is the number of contiguous time shards; values below 1 (and
	// above the record count) are clamped.
	Shards int
	// Workers bounds the query fan-out pool (and shard index construction);
	// <= 0 selects min(Shards, GOMAXPROCS).
	Workers int
	// Strategy picks the partitioning rule: ByCount (default) or ByTimeSpan.
	Strategy ShardStrategy
	// StraddleThreshold tunes boundary handling: a shard's boundary
	// straddlers (records whose durability window crosses into a
	// neighboring shard) are answered by per-record cross-shard probes when
	// they number at most the threshold, and by a transient engine over the
	// straddle region otherwise. 0 selects the default (128). Mostly a test
	// knob; both paths are exact.
	StraddleThreshold int
}

const defaultStraddleThreshold = 128

// timeShard is one contiguous partition of the parent dataset: records
// [lo, hi) served by an independent engine over a zero-copy slice view.
// immutable marks shards whose rows can never change — every shard of a
// batch ShardedEngine, and the sealed shards of a LiveShardedEngine (a
// sealed shard's engine may still be swapped for its denser freeze build,
// but the rows, and therefore every answer, are final). Only immutable
// shards may publish entries into a PartialCache. level is the shard's LSM
// level in the live lifecycle: fresh seals are level 0, and each compaction
// merges a run of same-level shards into one shard at level+1 (batch shards
// stay 0 — they never compact).
type timeShard struct {
	lo, hi    int
	eng       *Engine
	level     int
	immutable bool
}

// PartialKey identifies one shard-interior evaluation: the shard (by its
// global row range — stable for the engine's life, and rows in it immutable
// when the shard is), the interior row range actually evaluated, and every
// query parameter the answer depends on. Two queries with different [Start,
// End] that clamp to the same interior share the key — the normalization that
// lets overlapping intervals reuse each other's per-shard work.
type PartialKey struct {
	ShardLo, ShardHi int    // the shard's global row range [lo, hi)
	Lo, Hi           int    // interior rows evaluated, [Lo, Hi) ⊆ [ShardLo, ShardHi)
	Scorer           string // canonical scorer form (score.CanonicalKey)
	K                int
	Tau, Lead        int64
	Anchor           Anchor
	Algorithm        Algorithm
}

// PartialCache caches per-shard interior answers of fanned-out durable top-k
// queries. An interior record's durability window lies entirely inside its
// shard, so the answer depends only on the shard's own rows and the key's
// parameters — for an immutable shard such an entry never goes stale and is
// reusable across epochs forever, the LSM-style payoff of sealing. Engines
// only consult the cache for immutable shards and only for queries whose
// scorer has a canonical form.
//
// Implementations must be safe for concurrent use and must treat stored
// slices as immutable (they are shared by every future hit).
type PartialCache interface {
	GetPartial(key PartialKey) ([]int32, bool)
	PutPartial(key PartialKey, ids []int32)
}

// ShardInfo describes one time shard of a ShardedEngine.
type ShardInfo struct {
	Lo, Hi     int   // record index range [Lo, Hi) in the parent dataset
	Start, End int64 // arrival times of the shard's first and last record
	Level      int   // LSM level (live lifecycle; 0 for batch shards and fresh seals)
}

// shardGroup is one immutable epoch of a sharded deployment: a dataset
// snapshot, the contiguous time shards covering it, and the evaluation knobs.
// All cross-shard query machinery (fan-out, straddler merge, reach routing,
// score upper-bound pruning) runs against a group, never against the engine
// wrapper that produced it — a batch ShardedEngine owns exactly one group for
// its whole life, while a LiveShardedEngine swaps in a fresh group whenever an
// append or a seal changes the shard set. Queries therefore always evaluate
// against a coherent frozen epoch, no matter how the lifecycle moves on.
type shardGroup struct {
	ds       *data.Dataset
	opts     Options
	workers  int
	straddle int
	shards   []timeShard

	// pc, when non-nil, caches interior answers of immutable shards across
	// queries (and, for the live lifecycle, across epochs — sealed rows never
	// change). Set at registration time, before the first query.
	pc PartialCache

	// seq identifies the shard set so per-query caches derived from it (the
	// shardBounds score upper bounds) can detect that they were built against
	// a different epoch and regenerate instead of serving stale bounds. A
	// batch engine's group keeps seq 0 forever; the live lifecycle bumps it
	// on every append and seal.
	seq uint64
}

// Querier is the query-serving contract shared by Engine, ShardedEngine,
// LiveEngine and LiveShardedEngine; callers that only evaluate queries (the
// wire server, CLIs) can hold any of them behind it.
type Querier interface {
	DurableTopK(q Query) (*Result, error)
	Explain(q Query) (planner.Plan, error)
	MostDurable(k int, s score.Scorer, anchor Anchor, n int) ([]DurabilityRecord, error)
	Dataset() *data.Dataset
}

var (
	_ Querier = (*Engine)(nil)
	_ Querier = (*ShardedEngine)(nil)
)

// ShardedEngine scales durable top-k evaluation horizontally: the dataset is
// partitioned into contiguous time-range shards, each served by an
// independent Engine over a zero-copy data.Dataset.Slice view, and queries
// fan out across the shards on a bounded worker pool.
//
// The decomposition is exact. A record's durable set within the query
// interval is the disjoint union of its per-shard durable sets (each record
// belongs to exactly one shard, by arrival), and a record's durability
// verdict depends only on its own anchored window: records whose window lies
// entirely inside their shard are answered by the shard engine alone, while
// boundary straddlers — records whose window crosses a shard edge — are
// answered across shards, either by summing per-shard strictly-higher counts
// (capped at k per shard, which keeps the sum exact for the >= k test) or by
// a transient engine over the straddle region. Every record is therefore
// decided exactly once, never once per shard.
//
// Safe for concurrent queries, like Engine.
type ShardedEngine struct {
	group    shardGroup
	strategy ShardStrategy

	mu  sync.Mutex
	rev *data.Dataset // lazily built mirror for look-ahead durability sweeps
}

// NewShardedEngine partitions ds into so.Shards contiguous time shards and
// builds one engine per shard (concurrently, on the bounded worker pool).
func NewShardedEngine(ds *data.Dataset, opts Options, so ShardOptions) *ShardedEngine {
	cuts := shardCuts(ds, so.Shards, so.Strategy)
	count := len(cuts) - 1
	workers := resolveShardWorkers(so.Workers, count)
	se := &ShardedEngine{
		group: shardGroup{
			ds: ds, opts: opts, workers: workers,
			straddle: resolveStraddle(so.StraddleThreshold),
			shards:   make([]timeShard, count),
		},
		strategy: so.Strategy,
	}
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := range se.group.shards {
		// A batch engine's dataset never changes, so every shard is immutable.
		se.group.shards[i] = timeShard{lo: cuts[i], hi: cuts[i+1], immutable: true}
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			sh := &se.group.shards[i]
			sh.eng = NewEngine(ds.Slice(sh.lo, sh.hi), opts)
		}(i)
	}
	wg.Wait()
	return se
}

// resolveShardWorkers applies the ShardOptions.Workers default rule.
func resolveShardWorkers(workers, count int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
		if workers > count {
			workers = count
		}
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// resolveStraddle applies the ShardOptions.StraddleThreshold default rule.
func resolveStraddle(straddle int) int {
	if straddle <= 0 {
		return defaultStraddleThreshold
	}
	return straddle
}

// shardCuts returns ascending record-index cut points partitioning [0, n)
// into non-empty contiguous ranges (first cut 0, last cut n).
func shardCuts(ds *data.Dataset, count int, strategy ShardStrategy) []int {
	n := ds.Len()
	if count < 1 {
		count = 1
	}
	if count > n {
		count = n
	}
	cuts := make([]int, 0, count+1)
	cuts = append(cuts, 0)
	switch strategy {
	case ByTimeSpan:
		t0, t1 := ds.Span()
		// Edges are computed in float64 so extreme time domains cannot
		// overflow; rounding only nudges a cut, never breaks correctness.
		span := float64(t1) - float64(t0)
		for j := 1; j < count; j++ {
			edge := float64(t0) + span*float64(j)/float64(count)
			cut := ds.LowerBound(int64(edge))
			if cut > cuts[len(cuts)-1] && cut < n {
				cuts = append(cuts, cut)
			}
		}
	default:
		for j := 1; j < count; j++ {
			cut := int(int64(j) * int64(n) / int64(count))
			if cut > cuts[len(cuts)-1] && cut < n {
				cuts = append(cuts, cut)
			}
		}
	}
	return append(cuts, n)
}

// Dataset returns the full (unsharded) dataset.
func (se *ShardedEngine) Dataset() *data.Dataset { return se.group.ds }

// NumShards returns the number of time shards actually built (duplicate cut
// points collapse, so it can be below ShardOptions.Shards).
func (se *ShardedEngine) NumShards() int { return len(se.group.shards) }

// Workers returns the bounded fan-out width.
func (se *ShardedEngine) Workers() int { return se.group.workers }

// Shards describes the time shards in ascending time order.
func (se *ShardedEngine) Shards() []ShardInfo { return se.group.infos() }

// infos describes the group's shards in ascending time order.
func (g *shardGroup) infos() []ShardInfo {
	out := make([]ShardInfo, len(g.shards))
	for i, sh := range g.shards {
		out[i] = ShardInfo{
			Lo: sh.lo, Hi: sh.hi,
			Start: g.ds.Time(sh.lo), End: g.ds.Time(sh.hi - 1),
			Level: sh.level,
		}
	}
	return out
}

// SetPartialCache attaches a cross-query cache for per-shard interior
// answers. Must be called before the engine serves queries (registration
// time); the field is read without synchronization on the query path.
func (se *ShardedEngine) SetPartialCache(pc PartialCache) { se.group.pc = pc }

// PrepareSkyband eagerly materializes every shard's durable k-skyband ladder
// level for queries with parameter k (see Engine.PrepareSkyband).
func (se *ShardedEngine) PrepareSkyband(k int, anchor Anchor) {
	for i := range se.group.shards {
		se.group.shards[i].eng.PrepareSkyband(k, anchor)
	}
}

// plan runs the cost model over the full dataset shape, so Auto resolves to
// one strategy shared by every shard (per-shard resolution could diverge).
// The first shard's ladder state stands in for SBandReady: PrepareSkyband
// materializes every shard, and lazy S-Band builds reach all queried shards.
func (g *shardGroup) plan(q *Query) planner.Plan {
	return planner.Choose(queryPlannerInputs(g.ds, q, g.shards[0].eng.ladderBuilt(normalizedAnchor(q))))
}

// Explain returns the planner's cost-based assessment of q over the full
// dataset shape (shard fan-out does not change the strategy choice).
func (se *ShardedEngine) Explain(q Query) (planner.Plan, error) {
	return se.group.Explain(q)
}

// Explain validates q and runs the group's cost model.
func (g *shardGroup) Explain(q Query) (planner.Plan, error) {
	if err := q.validate(g.ds.Dims()); err != nil {
		return planner.Plan{}, err
	}
	return g.plan(&q), nil
}

func (g *shardGroup) resolveAlgorithm(q *Query) Algorithm {
	if q.Algorithm != Auto {
		return q.Algorithm
	}
	return strategyAlgorithm(g.plan(q).Chosen)
}

// windowSides returns the portions of the durability window before (back)
// and after (lead) each record's arrival for q's anchor.
func windowSides(q *Query) (back, lead int64) {
	switch q.Anchor {
	case LookAhead:
		return 0, q.Tau
	case General:
		return q.Tau - q.Lead, q.Lead
	default:
		return q.Tau, 0
	}
}

// shardAt returns the index of the shard owning global record index idx.
func (g *shardGroup) shardAt(idx int) int {
	return sort.Search(len(g.shards), func(i int) bool { return g.shards[i].hi > idx })
}

// shardPart is one shard's contribution to a fanned-out query.
type shardPart struct {
	ids []int32 // global record ids, ascending
	st  Stats
	err error
}

// upperBoundAller is the optional Block capability behind shard-level score
// pruning: a single upper bound of the scorer over every record the block
// indexes. *topk.Index implements it through the same skyline gather path
// the tree descent uses, and *topk.View (the live tail's pinned snapshot)
// through the captured chunk-tree bounds plus a buffered-suffix scan.
type upperBoundAller interface {
	UpperBoundAll(s score.Scorer) float64
}

// shardBounds caches every shard's global score upper bound for one query's
// scorer. Built at most once per (query, epoch) — on the first cross-shard
// strictly-higher-count probe — and shared by all fan-out workers. The
// steady-state read is a single atomic load: higherCount consults it on
// every cross-shard probe and the WithDurations binary searches issue
// thousands of those per query, so a lock here would serialize the fan-out.
//
// The cache is valid only for the exact shard set it was computed from: a
// bound indexed by shard position would silently misprune if the shard set
// changed underneath it (a live seal splits the tail into a new sealed shard
// plus a fresh tail, shifting positions and shrinking reaches). The cached
// value therefore carries the epoch seq it was computed under, and bounds()
// regenerates on mismatch rather than serving stale upper bounds; queries
// snapshot one group up front, so in the current call graph a mismatch is
// impossible — the guard makes the immutability assumption explicit instead
// of implicit.
type shardBounds struct {
	v  atomic.Pointer[boundsEpoch]
	mu sync.Mutex // serializes (re)computation; readers never take it
}

// boundsEpoch is one immutable (epoch, bounds) publication.
type boundsEpoch struct {
	seq uint64
	ub  []float64
}

// bounds returns the per-shard upper bounds for s under the group's epoch,
// computing them on first use and regenerating them if sb was built against
// a different epoch. Shards whose block cannot report a bound get +Inf
// (never pruned).
func (g *shardGroup) bounds(sb *shardBounds, s score.Scorer) []float64 {
	if be := sb.v.Load(); be != nil && be.seq == g.seq {
		return be.ub
	}
	sb.mu.Lock()
	defer sb.mu.Unlock()
	if be := sb.v.Load(); be != nil && be.seq == g.seq {
		return be.ub
	}
	ub := make([]float64, len(g.shards))
	for i := range g.shards {
		if b, ok := g.shards[i].eng.Index().(upperBoundAller); ok {
			ub[i] = b.UpperBoundAll(s)
		} else {
			ub[i] = math.Inf(1)
		}
	}
	sb.v.Store(&boundsEpoch{seq: g.seq, ub: ub})
	return ub
}

// DurableTopK answers DurTop(k, I, tau) by fanning the query out across the
// time shards on the bounded worker pool and concatenating the per-shard
// answers (shards are time-ordered, so concatenation preserves the ascending
// time order of the Result contract). Results are identical to
// Engine.DurableTopK over the unsharded dataset.
func (se *ShardedEngine) DurableTopK(q Query) (*Result, error) {
	return se.group.DurableTopK(q)
}

// DurableTopK evaluates q against the group's frozen shard epoch.
func (g *shardGroup) DurableTopK(q Query) (*Result, error) {
	if err := q.validate(g.ds.Dims()); err != nil {
		return nil, err
	}
	alg := g.resolveAlgorithm(&q)
	q.Algorithm = alg
	if err := checkAlgorithm(&q, alg); err != nil {
		return nil, err
	}
	back, lead := windowSides(&q)

	startAt := time.Now()
	// Reach-based shard routing: an answer record arrives inside I, so only
	// shards owning an arrival in I can contribute answers — a shard whose
	// arrivals all fall outside I is skipped entirely, no matter how far the
	// durability windows reach past its boundaries ([minT, maxT] ± back/lead
	// may well overlap I without any arrival landing in it). Records beyond
	// I still influence answers, but only as blocking evidence inside some
	// window [t-back, t+lead]; that evidence is fetched by targeted
	// cross-shard probes (higherCount), never by visiting the shard, so the
	// pruning is exact. Skipped shards are tallied in Stats.ShardsPruned.
	// Pruning every shard (I between two shards' arrivals, or inside a
	// just-sealed empty tail) legitimately yields an empty answer.
	qlo, qhi := g.ds.IndexRange(q.Start, q.End)
	var tasks []int
	for i := range g.shards {
		if g.shards[i].lo < qhi && g.shards[i].hi > qlo {
			tasks = append(tasks, i)
		}
	}
	sb := &shardBounds{}

	// Resolve the scorer's canonical form once per query; shards reuse it for
	// their interior cache keys. Scorers without a canonical form (and
	// engines without an attached cache) evaluate everything as before.
	var scorerKey string
	if g.pc != nil {
		scorerKey, _ = score.CanonicalKey(q.Scorer)
	}

	parts := make([]shardPart, len(tasks))
	workers := g.workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		pr := newProbe()
		for ti, si := range tasks {
			parts[ti] = g.evalShard(pr, sb, si, &q, scorerKey, back, lead, qlo, qhi)
		}
		pr.release()
	} else {
		feed := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				pr := newProbe()
				defer pr.release()
				for ti := range feed {
					parts[ti] = g.evalShard(pr, sb, tasks[ti], &q, scorerKey, back, lead, qlo, qhi)
				}
			}()
		}
		for ti := range tasks {
			feed <- ti
		}
		close(feed)
		wg.Wait()
	}

	out := &Result{Stats: Stats{Algorithm: alg, ShardsPruned: len(g.shards) - len(tasks)}}
	total := 0
	for i := range parts {
		if parts[i].err != nil {
			return nil, parts[i].err
		}
		total += len(parts[i].ids)
	}
	out.Records = make([]ResultRecord, 0, total)
	for i := range parts {
		p := &parts[i]
		for _, id := range p.ids {
			gid := int(id)
			out.Records = append(out.Records, ResultRecord{
				ID:          gid,
				Time:        g.ds.Time(gid),
				Score:       q.Scorer.Score(g.ds.Attrs(gid)),
				MaxDuration: -1,
			})
		}
		addStats(&out.Stats, &p.st)
	}

	if q.WithDurations {
		ahead := q.Anchor == LookAhead || (q.Anchor == General && q.Tau > 0 && q.Lead == q.Tau)
		// The duration binary searches are the most expensive per-record
		// step; stride them over the same worker budget as the fan-out,
		// with per-worker probes and stats merged afterwards.
		durWorkers := min(g.workers, len(out.Records))
		if durWorkers <= 1 {
			pr := newProbe()
			for i := range out.Records {
				dur, full := g.maxDurationSharded(pr, sb, &out.Stats, q.Scorer, q.K, out.Records[i].ID, ahead)
				out.Records[i].MaxDuration = dur
				out.Records[i].FullHistory = full
			}
			pr.release()
		} else {
			stats := make([]Stats, durWorkers)
			var wg sync.WaitGroup
			for w := 0; w < durWorkers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					pr := newProbe()
					defer pr.release()
					for i := w; i < len(out.Records); i += durWorkers {
						dur, full := g.maxDurationSharded(pr, sb, &stats[w], q.Scorer, q.K, out.Records[i].ID, ahead)
						out.Records[i].MaxDuration = dur
						out.Records[i].FullHistory = full
					}
				}(w)
			}
			wg.Wait()
			for w := range stats {
				addStats(&out.Stats, &stats[w])
			}
		}
	}
	out.Stats.Elapsed = time.Since(startAt)
	return out, nil
}

// evalShard answers the query restricted to one shard's records. Interior
// records (whole window inside the shard) go through the shard engine;
// boundary straddlers are decided across shards.
func (g *shardGroup) evalShard(pr *probe, sb *shardBounds, si int, q *Query, scorerKey string, back, lead int64, qlo, qhi int) shardPart {
	var part shardPart
	sh := &g.shards[si]
	subLo, subHi := max(qlo, sh.lo), min(qhi, sh.hi)
	if subLo >= subHi {
		return part
	}
	n := g.ds.Len()

	// The interior is the contiguous index run whose windows touch no other
	// shard: strictly after the previous shard's last arrival plus back, and
	// strictly before the next shard's first arrival minus lead. The first
	// live shard has no previous shard — rows below g.shards[0].lo (retired
	// by retention) are not evidence, so its interior extends to its lo.
	iLo, iHi := subLo, subHi
	if sh.lo > g.shards[0].lo {
		minT := satAdd(satAdd(g.ds.Time(sh.lo-1), back), 1)
		iLo = clampInt(g.ds.LowerBound(minT), subLo, subHi)
	}
	if sh.hi < n {
		maxT := satSub(satSub(g.ds.Time(sh.hi), lead), 1)
		iHi = clampInt(g.ds.UpperBound(maxT), iLo, subHi)
	}

	g.evalStraddlers(pr, sb, &part, q, back, lead, subLo, iLo)
	if part.err != nil {
		return part
	}
	if iLo < iHi {
		// The interior answer depends only on the shard's own rows plus the
		// key parameters ([Time(iLo), Time(iHi-1)] is derived from rows of
		// this shard), so for an immutable shard it can be served from — and
		// published into — the cross-query partial cache. Straddlers are
		// never cached: their verdicts read neighboring shards, which the
		// live lifecycle reshapes.
		var pkey PartialKey
		cacheable := g.pc != nil && sh.immutable && scorerKey != ""
		if cacheable {
			pkey = PartialKey{
				ShardLo: sh.lo, ShardHi: sh.hi, Lo: iLo, Hi: iHi,
				Scorer: scorerKey, K: q.K, Tau: q.Tau, Lead: q.Lead,
				Anchor: q.Anchor, Algorithm: q.Algorithm,
			}
			if ids, ok := g.pc.GetPartial(pkey); ok {
				part.ids = append(part.ids, ids...)
				g.evalStraddlers(pr, sb, &part, q, back, lead, iHi, subHi)
				return part
			}
		}
		sub := *q
		sub.Start, sub.End = g.ds.Time(iLo), g.ds.Time(iHi-1)
		sub.WithDurations = false
		res, err := sh.eng.DurableTopK(sub)
		if err != nil {
			part.err = err
			return part
		}
		if cacheable {
			ids := make([]int32, 0, len(res.Records))
			for _, r := range res.Records {
				ids = append(ids, int32(sh.lo+r.ID))
			}
			g.pc.PutPartial(pkey, ids)
			part.ids = append(part.ids, ids...)
		} else {
			for _, r := range res.Records {
				part.ids = append(part.ids, int32(sh.lo+r.ID))
			}
		}
		addStats(&part.st, &res.Stats)
	}
	g.evalStraddlers(pr, sb, &part, q, back, lead, iHi, subHi)
	return part
}

func addStats(dst, src *Stats) {
	dst.CheckQueries += src.CheckQueries
	dst.FindQueries += src.FindQueries
	dst.MaintQueries += src.MaintQueries
	dst.CandidateCount += src.CandidateCount
	dst.Visited += src.Visited
	dst.ShardsPruned += src.ShardsPruned
}

// evalStraddlers decides the boundary records in [lo, hi): small runs by
// per-record cross-shard probes, large runs by a transient engine over the
// straddle region — every record of every straddler's window, reached
// through a zero-copy slice, so the run is answered by the hop machinery at
// answer-proportional cost instead of per-record probing. Both paths are
// exact.
func (g *shardGroup) evalStraddlers(pr *probe, sb *shardBounds, part *shardPart, q *Query, back, lead int64, lo, hi int) {
	if lo >= hi {
		return
	}
	if hi-lo <= g.straddle {
		for i := lo; i < hi; i++ {
			part.st.Visited++
			if g.durableAt(pr, sb, &part.st, q, back, lead, i) {
				part.ids = append(part.ids, int32(i))
			}
		}
		return
	}

	// Region = union of the straddlers' windows; contiguous because windows
	// are anchored to sorted arrivals. Clamped below to the first live
	// shard's lo: rows retired by retention are not evidence, and letting
	// the transient engine read them would resurrect retired rows into
	// verdicts the probe path (which only visits live shards) excludes.
	rlo := g.ds.LowerBound(satSub(g.ds.Time(lo), back))
	if rlo < g.shards[0].lo {
		rlo = g.shards[0].lo
	}
	rhi := g.ds.UpperBound(satAdd(g.ds.Time(hi-1), lead))
	sub := *q
	sub.Start, sub.End = g.ds.Time(lo), g.ds.Time(hi-1)
	sub.WithDurations = false
	if sub.Algorithm == SBand {
		// S-Band amortizes a skyband ladder across queries; on a transient
		// engine that build is pure overhead, so hop instead.
		sub.Algorithm = SHop
	}
	mini := NewEngine(g.ds.Slice(rlo, rhi), g.opts)
	res, err := mini.DurableTopK(sub)
	if err != nil {
		part.err = err
		return
	}
	for _, r := range res.Records {
		part.ids = append(part.ids, int32(rlo+r.ID))
	}
	addStats(&part.st, &res.Stats)
}

// durableAt decides one record from the definition: durable iff fewer than k
// records of its anchored window score strictly higher, counted across every
// overlapped shard.
func (g *shardGroup) durableAt(pr *probe, sb *shardBounds, st *Stats, q *Query, back, lead int64, i int) bool {
	t := g.ds.Time(i)
	wlo, whi := g.ds.IndexRange(satSub(t, back), satAdd(t, lead))
	ref := q.Scorer.Score(g.ds.Attrs(i))
	return g.higherCount(pr, sb, st, q.Scorer, q.K, wlo, whi, ref) < q.K
}

// higherCount returns min(h, k) where h is the number of records in the
// global index range [lo, hi) scoring strictly above ref. Each shard probe
// contributes min(h_shard, k) — exact while all h_shard < k and saturating
// at k otherwise — so the sum answers the "h >= k?" durability test exactly.
// A shard whose cached global upper bound is <= ref cannot contribute (no
// record in it scores strictly above ref) and is skipped without a probe,
// tallied in Stats.ShardsPruned; the window-reach binary searches of
// maxDurationSharded sweep many shards per record, so the skip saves a full
// tree descent per pruned shard.
func (g *shardGroup) higherCount(pr *probe, sb *shardBounds, st *Stats, s score.Scorer, k, lo, hi int, ref float64) int {
	higher := 0
	var ubs []float64
	for si := g.shardAt(lo); si < len(g.shards) && g.shards[si].lo < hi; si++ {
		sh := &g.shards[si]
		plo, phi := max(lo, sh.lo)-sh.lo, min(hi, sh.hi)-sh.lo
		if plo >= phi {
			continue
		}
		if ubs == nil {
			ubs = g.bounds(sb, s)
		}
		if ubs[si] <= ref {
			st.ShardsPruned++
			continue
		}
		items := sh.eng.fwd.topkRange(pr, st, kindCheck, s, k, plo, phi)
		for _, it := range items {
			if !(it.Score > ref) {
				break // items descend by score; the rest cannot be higher
			}
			if higher++; higher >= k {
				return higher
			}
		}
	}
	return higher
}

// maxDurationSharded is the cross-shard counterpart of maxDuration: a binary
// search over the window start (end, when ahead) with sharded strictly-higher
// counts as the membership predicate.
func (g *shardGroup) maxDurationSharded(pr *probe, sb *shardBounds, st *Stats, s score.Scorer, k, id int, ahead bool) (int64, bool) {
	ref := s.Score(g.ds.Attrs(id))
	t := g.ds.Time(id)
	n := g.ds.Len()
	if !ahead {
		// Smallest j such that id stays top-k of records [j, id]. The search
		// floor is the first live row — rows retired by retention are not
		// evidence, and a record surviving back to the retention boundary has
		// full (retained) history.
		base := g.shards[0].lo
		lo, hi := base, id
		for lo < hi {
			mid := (lo + hi) / 2
			if g.higherCount(pr, sb, st, s, k, mid, id+1, ref) < k {
				hi = mid
			} else {
				lo = mid + 1
			}
		}
		if lo == base {
			return t - g.ds.Time(base), true
		}
		return t - g.ds.Time(lo-1) - 1, false
	}
	// Largest j such that id stays top-k of records [id, j].
	lo, hi := id, n-1
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if g.higherCount(pr, sb, st, s, k, id, mid+1, ref) < k {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	if lo == n-1 {
		return g.ds.Time(n-1) - t, true
	}
	return g.ds.Time(lo+1) - t - 1, false
}

// reversedDS returns the lazily built, cached time-mirrored dataset.
func (se *ShardedEngine) reversedDS() *data.Dataset {
	se.mu.Lock()
	defer se.mu.Unlock()
	if se.rev == nil {
		se.rev = se.group.ds.Reversed()
	}
	return se.rev
}

// DurabilityProfile computes every record's maximum durability in one sweep
// over the full dataset (see Engine.DurabilityProfile; the sweep needs no
// index, so sharding does not change it).
func (se *ShardedEngine) DurabilityProfile(k int, s score.Scorer, anchor Anchor) ([]DurabilityRecord, error) {
	if k < 1 {
		return nil, ErrBadK
	}
	if s == nil {
		return nil, ErrNoScorer
	}
	if s.Dims() != se.group.ds.Dims() {
		return nil, ErrDims
	}
	ds := se.group.ds
	if anchor == LookAhead {
		ds = se.reversedDS()
	}
	out := durabilitySweep(ds, k, s)
	if anchor == LookAhead {
		out = mirrorProfile(out, se.group.ds)
	}
	return out, nil
}

// MostDurable returns the top-n records by durability (see
// Engine.MostDurable).
func (se *ShardedEngine) MostDurable(k int, s score.Scorer, anchor Anchor, n int) ([]DurabilityRecord, error) {
	profile, err := se.DurabilityProfile(k, s, anchor)
	if err != nil {
		return nil, err
	}
	return mostDurable(profile, n), nil
}

func clampInt(x, lo, hi int) int {
	return min(max(x, lo), hi)
}
