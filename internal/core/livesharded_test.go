package core

import (
	"math"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/score"
	"repro/internal/topk"
)

// TestLiveShardedLifecycle pins the seal/freeze mechanics: row-triggered
// seals cut the stream into the expected contiguous shards, the metrics add
// up, and queries straddling seal boundaries match a batch engine.
func TestLiveShardedLifecycle(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const n, sealRows = 35, 10
	ds := diffDataset(rng, "clustered", n, 2)
	s := randScorer(rng, 2)
	lse, err := NewLiveShardedEngine(2, testEngineOpts(), LiveOptions{},
		LiveShardOptions{SealRows: sealRows})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, _, err := lse.Append(ds.Time(i), ds.Attrs(i)); err != nil {
			t.Fatal(err)
		}
	}
	if lse.Len() != n {
		t.Fatalf("Len=%d want %d", lse.Len(), n)
	}
	if lse.Seals() != 3 || lse.SealedRows() != 30 || lse.TailLen() != 5 {
		t.Fatalf("seals=%d sealedRows=%d tail=%d, want 3/30/5",
			lse.Seals(), lse.SealedRows(), lse.TailLen())
	}
	if lse.NumShards() != 4 {
		t.Fatalf("NumShards=%d want 4 (3 sealed + tail)", lse.NumShards())
	}
	infos := lse.Shards()
	wantCuts := [][2]int{{0, 10}, {10, 20}, {20, 30}, {30, 35}}
	for i, in := range infos {
		if in.Lo != wantCuts[i][0] || in.Hi != wantCuts[i][1] {
			t.Fatalf("shard %d: [%d,%d) want [%d,%d)", i, in.Lo, in.Hi, wantCuts[i][0], wantCuts[i][1])
		}
	}
	// A forced seal freezes the tail; a second is a no-op on the empty tail.
	lse.Seal()
	lse.Seal()
	lse.WaitSealed() // land the background freeze builds before reading metrics
	if lse.Seals() != 4 || lse.TailLen() != 0 || lse.SealedRows() != n {
		t.Fatalf("after Seal: seals=%d tail=%d sealedRows=%d", lse.Seals(), lse.TailLen(), lse.SealedRows())
	}
	// Two-phase seal: once the background freezes land, every sealed shard
	// must serve the static index, not the retired tail's snapshot view.
	for i, sh := range lse.epoch().shards {
		if _, ok := sh.eng.Index().(*topk.Index); !ok {
			t.Fatalf("sealed shard %d still serving %T after WaitSealed", i, sh.eng.Index())
		}
	}
	batch := NewEngine(ds, testEngineOpts())
	lo, hi := ds.Span()
	for _, tau := range []int64{0, 5, hi - lo} {
		q := Query{K: 3, Tau: tau, Start: lo, End: hi, Scorer: s, WithDurations: true}
		want, err := batch.DurableTopK(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := lse.DurableTopK(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Records, want.Records) {
			t.Fatalf("tau=%d:\n got %v\nwant %v", tau, got.Records, want.Records)
		}
	}
	// The freeze amortization is bounded: every row sealed once, and index
	// work stays O(log sealRows) + 1 per append.
	if lse.IndexedRows() < n || lse.Rebuilds() < lse.Seals() {
		t.Fatalf("IndexedRows=%d Rebuilds=%d implausible for n=%d seals=%d",
			lse.IndexedRows(), lse.Rebuilds(), n, lse.Seals())
	}
}

// TestLiveShardedFreezeBackpressure pins the overload fallback: when the
// bounded background-freeze budget is exhausted, a seal builds its static
// index synchronously — the shard serves a *topk.Index immediately instead
// of queueing another retired tail.
func TestLiveShardedFreezeBackpressure(t *testing.T) {
	lse, err := NewLiveShardedEngine(1, testEngineOpts(), LiveOptions{},
		LiveShardOptions{SealRows: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 12; i++ {
		if _, _, err := lse.Append(int64(i+1), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	lse.mu.Lock()
	lse.freezing = maxPendingFreezes // simulate saturated freeze workers
	lse.mu.Unlock()
	lse.Seal()
	g := lse.epoch()
	if len(g.shards) != 1 {
		t.Fatalf("shards=%d want 1", len(g.shards))
	}
	if _, ok := g.shards[0].eng.Index().(*topk.Index); !ok {
		t.Fatalf("backpressured seal did not build synchronously: serving %T", g.shards[0].eng.Index())
	}
	lse.mu.Lock()
	lse.freezing = 0
	lse.mu.Unlock()
	s := score.MustLinear(1)
	res, err := lse.DurableTopK(Query{K: 2, Tau: 4, Start: 1, End: 12, Scorer: s})
	if err != nil {
		t.Fatal(err)
	}
	want := BruteForce(lse.Dataset(), s, 2, 4, 1, 12, LookBack)
	if !reflect.DeepEqual(res.IDs(), want) {
		t.Fatalf("got %v want %v", res.IDs(), want)
	}
}

// TestLiveShardedSealSpan pins the span-triggered rule: a tail seals once its
// arrivals span at least SealSpan ticks, regardless of row count.
func TestLiveShardedSealSpan(t *testing.T) {
	lse, err := NewLiveShardedEngine(1, testEngineOpts(), LiveOptions{},
		LiveShardOptions{SealSpan: 10})
	if err != nil {
		t.Fatal(err)
	}
	// Arrivals at 1..9 stay in one tail (span 8 < 10); t=11 spans 10 → seal.
	for _, tt := range []int64{1, 3, 9, 11} {
		if _, _, err := lse.Append(tt, []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	if lse.Seals() != 1 || lse.TailLen() != 0 {
		t.Fatalf("seals=%d tail=%d, want 1 seal with empty tail", lse.Seals(), lse.TailLen())
	}
	if _, _, err := lse.Append(12, []float64{2}); err != nil {
		t.Fatal(err)
	}
	if lse.Seals() != 1 || lse.TailLen() != 1 {
		t.Fatalf("after t=12: seals=%d tail=%d, want 1/1", lse.Seals(), lse.TailLen())
	}
}

// TestLiveShardedEmptyEdges pins the empty-result edge contract: an empty
// engine, a query interval the router prunes every shard for, and a query
// entirely inside a just-sealed (momentarily empty) tail must all answer
// empty — never panic — while invalid parameters still error.
func TestLiveShardedEmptyEdges(t *testing.T) {
	s := score.MustLinear(1, 1)
	lse, err := NewLiveShardedEngine(2, testEngineOpts(), LiveOptions{},
		LiveShardOptions{SealRows: 4})
	if err != nil {
		t.Fatal(err)
	}

	// Empty engine: valid queries answer empty, invalid ones error.
	res, err := lse.DurableTopK(Query{K: 1, Tau: 5, Start: 0, End: 10, Scorer: s})
	if err != nil || len(res.Records) != 0 {
		t.Fatalf("empty engine query: res=%v err=%v", res, err)
	}
	if _, err := lse.DurableTopK(Query{K: 0, Tau: 5, Scorer: s}); err == nil {
		t.Fatal("invalid k must fail even when empty")
	}
	if _, err := lse.Explain(Query{K: 1, Scorer: s}); err == nil {
		t.Fatal("explain on empty must fail")
	}
	if _, err := lse.MostDurable(1, s, LookBack, 3); err == nil {
		t.Fatal("most-durable on empty must fail")
	}
	if lse.Shards() != nil || lse.NumShards() != 0 {
		t.Fatalf("empty engine reports shards: %v", lse.Shards())
	}

	// Two bursts of arrivals separated by a wide gap, sealed in between: the
	// shard layout leaves whole time ranges owned by no shard's arrivals.
	for _, tt := range []int64{10, 11, 12, 13} { // seals at 4 rows
		if _, _, err := lse.Append(tt, []float64{float64(tt), 1}); err != nil {
			t.Fatal(err)
		}
	}
	for _, tt := range []int64{100, 101} {
		if _, _, err := lse.Append(tt, []float64{float64(tt), 1}); err != nil {
			t.Fatal(err)
		}
	}

	// Router prunes every shard: I sits in the arrival gap between shards,
	// with tau reaching far across it.
	res, err = lse.DurableTopK(Query{K: 2, Tau: 500, Start: 40, End: 90, Scorer: s})
	if err != nil || len(res.Records) != 0 {
		t.Fatalf("gap query: res=%v err=%v", res, err)
	}
	if res.Stats.ShardsPruned != lse.NumShards() {
		t.Fatalf("gap query pruned %d shards, want all %d", res.Stats.ShardsPruned, lse.NumShards())
	}

	// Just-sealed tail: freeze the 2-record tail, then query strictly after
	// the last sealed arrival — the time range only the (empty) tail could
	// ever own.
	lse.Seal()
	if lse.TailLen() != 0 {
		t.Fatalf("tail not empty after Seal: %d", lse.TailLen())
	}
	res, err = lse.DurableTopK(Query{K: 1, Tau: 5, Start: 150, End: 200, Scorer: s})
	if err != nil || len(res.Records) != 0 {
		t.Fatalf("post-seal tail-range query: res=%v err=%v", res, err)
	}
	// And with look-ahead + durations, the other window direction.
	res, err = lse.DurableTopK(Query{K: 1, Tau: 5, Start: 150, End: 200, Scorer: s,
		Anchor: LookAhead, WithDurations: true})
	if err != nil || len(res.Records) != 0 {
		t.Fatalf("post-seal look-ahead query: res=%v err=%v", res, err)
	}
}

// TestShardBoundsEpochRegeneration is the directed regression test for the
// shard-bounds staleness guard: a shardBounds cache built against one epoch
// must regenerate — not serve stale positional bounds — when consulted by a
// later epoch whose shard set changed (a seal splits the tail and shifts
// every bound's meaning).
func TestShardBoundsEpochRegeneration(t *testing.T) {
	s := score.MustLinear(1)
	lse, err := NewLiveShardedEngine(1, testEngineOpts(), LiveOptions{},
		LiveShardOptions{SealRows: 1 << 30}) // seal only when forced
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, _, err := lse.Append(int64(i+1), []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	g1 := lse.epoch()
	sb := &shardBounds{}
	ub1 := g1.bounds(sb, s)
	if len(ub1) != 1 || ub1[0] != 1 {
		t.Fatalf("epoch 1 bounds: %v, want [1]", ub1)
	}

	// Seal, then append far higher scores into the fresh tail: the old
	// single-entry bounds are now wrong in both shape and value.
	lse.Seal()
	for i := 8; i < 12; i++ {
		if _, _, err := lse.Append(int64(i+1), []float64{100}); err != nil {
			t.Fatal(err)
		}
	}
	g2 := lse.epoch()
	if g2.seq == g1.seq {
		t.Fatal("epoch seq did not advance across seal+appends")
	}
	ub2 := g2.bounds(sb, s) // same cache object, new epoch
	if len(ub2) != 2 {
		t.Fatalf("epoch 2 bounds not regenerated: %v", ub2)
	}
	if ub2[0] != 1 || ub2[1] != 100 {
		t.Fatalf("epoch 2 bounds: %v, want [1 100]", ub2)
	}

	// End to end: a served-stale tail bound (1) would prune the tail from
	// the higher-count probe and wrongly keep record 7 durable. The record
	// at t=8 has four score-100 successors inside its look-ahead window.
	ds := lse.Dataset()
	q := Query{K: 2, Tau: 6, Start: ds.Time(7), End: ds.Time(7), Scorer: s, Anchor: LookAhead}
	got, err := lse.DurableTopK(q)
	if err != nil {
		t.Fatal(err)
	}
	want := BruteForce(ds, s, q.K, q.Tau, q.Start, q.End, LookAhead)
	if !reflect.DeepEqual(got.IDs(), want) && !(len(got.IDs()) == 0 && len(want) == 0) {
		t.Fatalf("post-seal query: got %v want %v", got.IDs(), want)
	}
}

// TestLiveShardedTailBoundFresh pins the tail side of the pruning contract:
// the mutable tail's score upper bound is re-derived per epoch, so a bound
// observed before an append can never suppress a higher-scoring record
// appended afterwards.
func TestLiveShardedTailBoundFresh(t *testing.T) {
	s := score.MustLinear(1)
	lse, err := NewLiveShardedEngine(1, testEngineOpts(), LiveOptions{},
		LiveShardOptions{SealRows: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Sealed shard of modest scores, then a low-score tail.
	for i := 0; i < 5; i++ {
		if _, _, err := lse.Append(int64(i+1), []float64{5}); err != nil {
			t.Fatal(err)
		}
	}
	// Query once so the epoch (and any bound) is materialized and memoized.
	ds := lse.Dataset()
	if _, err := lse.DurableTopK(Query{K: 1, Tau: 10, Start: ds.Time(0), End: ds.Time(4), Scorer: s}); err != nil {
		t.Fatal(err)
	}
	// Now a much higher record lands in the tail; the old record at t=5 must
	// immediately stop being 1-durable under a look-ahead window.
	if _, _, err := lse.Append(6, []float64{50}); err != nil {
		t.Fatal(err)
	}
	full := lse.Dataset()
	q := Query{K: 1, Tau: 3, Start: full.Time(4), End: full.Time(4), Scorer: s, Anchor: LookAhead}
	got, err := lse.DurableTopK(q)
	if err != nil {
		t.Fatal(err)
	}
	want := BruteForce(full, s, 1, 3, q.Start, q.End, LookAhead)
	if !reflect.DeepEqual(got.IDs(), want) && !(len(got.IDs()) == 0 && len(want) == 0) {
		t.Fatalf("stale tail bound: got %v want %v", got.IDs(), want)
	}
	if len(want) != 0 {
		t.Fatalf("test premise broken: record 4 should be beaten, oracle %v", want)
	}
}

// TestLiveSnapshotStableAcrossAppends is the directed regression for the
// torn-prefix hazard: an engine snapshot taken at prefix n must keep
// answering exactly over those n records after the stream grows past it —
// including time-window probes that would reach later records through an
// unpinned forest block.
func TestLiveSnapshotStableAcrossAppends(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	const n, total = 120, 700
	ds := diffDataset(rng, "dense", total, 2)
	s := randScorer(rng, 2)
	le, err := NewLiveEngine(2, testEngineOpts(), LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if _, _, err := le.Append(ds.Time(i), ds.Attrs(i)); err != nil {
			t.Fatal(err)
		}
	}
	snap, got := le.Snapshot()
	if got != n {
		t.Fatalf("Snapshot length %d want %d", got, n)
	}
	// Grow far past the snapshot — through several chunk flushes and merges.
	for i := n; i < total; i++ {
		if _, _, err := le.Append(ds.Time(i), ds.Attrs(i)); err != nil {
			t.Fatal(err)
		}
	}
	prefix := ds.Prefix(n)
	batch := NewEngine(prefix, testEngineOpts())
	lo, hi := ds.Span() // spans far past the snapshot prefix
	for qi := 0; qi < 10; qi++ {
		q := Query{
			K: 1 + rng.Intn(4), Tau: int64(rng.Intn(int(hi - lo))),
			Start: lo, End: hi, Scorer: s,
			Anchor: []Anchor{LookBack, LookAhead}[qi%2],
		}
		want, err := batch.DurableTopK(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := snap.DurableTopK(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Records, want.Records) {
			t.Fatalf("snapshot leaked post-snapshot records (q %d):\n got %v\nwant %v",
				qi, res.Records, want.Records)
		}
	}
}

// TestLiveShardedConcurrent exercises the lifecycle under the race detector:
// one appender (with periodic forced seals), several concurrent queriers
// hitting queries, profiles and metadata, every answer internally consistent.
func TestLiveShardedConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	const n = 400
	ds := diffDataset(rng, "clustered", n, 2)
	s := score.MustLinear(0.5, 0.5)
	lse, err := NewLiveShardedEngine(2, testEngineOpts(), LiveOptions{},
		LiveShardOptions{SealRows: 48, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				snap := lse.Dataset()
				if snap.Len() == 0 {
					continue
				}
				lo, hi := snap.Span()
				res, err := lse.DurableTopK(Query{
					K: 1 + (i+w)%4, Tau: int64(i % 60), Start: lo, End: hi, Scorer: s,
					Anchor: []Anchor{LookBack, LookAhead}[i%2],
				})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				last := int64(math.MinInt64)
				for _, r := range res.Records {
					if r.Time <= last {
						t.Errorf("worker %d: results not time-ascending", w)
						return
					}
					last = r.Time
				}
				if i%7 == 0 {
					if _, err := lse.MostDurable(2, s, LookBack, 3); err != nil {
						t.Errorf("worker %d: most-durable: %v", w, err)
						return
					}
				}
				_ = lse.NumShards()
				_ = lse.Shards()
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		if _, _, err := lse.Append(ds.Time(i), ds.Attrs(i)); err != nil {
			t.Fatal(err)
		}
		if i%90 == 89 {
			lse.Seal()
		}
	}
	close(stop)
	wg.Wait()
	lse.WaitSealed()
}

// TestLiveShardedMonitor checks that the online monitor spans seals: instant
// look-back decisions and delayed look-ahead confirmations keep agreeing with
// the offline oracle while the lifecycle freezes shards underneath.
func TestLiveShardedMonitor(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n, k, tau = 200, 3, 30
	ds := diffDataset(rng, "adversarial", n, 1)
	s := score.MustLinear(1)
	lse, err := NewLiveShardedEngine(1, testEngineOpts(), LiveOptions{
		MonitorK: k, MonitorTau: tau, MonitorScorer: s, TrackAhead: true,
	}, LiveShardOptions{SealRows: 32})
	if err != nil {
		t.Fatal(err)
	}
	if !lse.Monitored() {
		t.Fatal("monitor should be enabled")
	}
	lookBack := map[int]bool{}
	for _, id := range BruteForce(ds, s, k, tau, ds.Time(0), ds.Time(n-1), LookBack) {
		lookBack[id] = true
	}
	lookAhead := map[int]bool{}
	for _, id := range BruteForce(ds, s, k, tau, ds.Time(0), ds.Time(n-1), LookAhead) {
		lookAhead[id] = true
	}
	confirmed := map[int]bool{}
	for i := 0; i < n; i++ {
		dec, confirms, err := lse.Append(ds.Time(i), ds.Attrs(i))
		if err != nil {
			t.Fatal(err)
		}
		if dec.Durable != lookBack[i] {
			t.Fatalf("record %d: instant decision %v, oracle %v", i, dec.Durable, lookBack[i])
		}
		for _, c := range confirms {
			confirmed[c.ID] = c.Durable
		}
	}
	for _, c := range lse.Finish() {
		if !c.Truncated {
			confirmed[c.ID] = c.Durable
		}
	}
	for id, durable := range confirmed {
		if durable != lookAhead[id] {
			t.Fatalf("record %d: confirmation %v, oracle %v", id, durable, lookAhead[id])
		}
	}
	if lse.Seals() < 5 {
		t.Fatalf("seals=%d; the monitor test should span several seals", lse.Seals())
	}
}

// TestLiveShardedValidation pins constructor and append validation.
func TestLiveShardedValidation(t *testing.T) {
	if _, err := NewLiveShardedEngine(0, Options{}, LiveOptions{}, LiveShardOptions{}); err == nil {
		t.Fatal("d=0 must fail")
	}
	if _, err := NewLiveShardedEngine(1, Options{}, LiveOptions{}, LiveShardOptions{SealRows: -1}); err == nil {
		t.Fatal("negative SealRows must fail")
	}
	if _, err := NewLiveShardedEngine(1, Options{}, LiveOptions{MonitorK: 1}, LiveShardOptions{}); err == nil {
		t.Fatal("monitor without scorer must fail")
	}
	if _, err := NewLiveShardedEngine(2, Options{}, LiveOptions{MonitorK: 1, MonitorScorer: score.MustLinear(1)}, LiveShardOptions{}); err == nil {
		t.Fatal("monitor scorer dim mismatch must fail")
	}
	lse, err := NewLiveShardedEngine(2, Options{}, LiveOptions{}, LiveShardOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if lse.so.SealRows != DefaultSealRows {
		t.Fatalf("default SealRows=%d want %d", lse.so.SealRows, DefaultSealRows)
	}
	if _, _, err := lse.Append(5, []float64{1}); err == nil {
		t.Fatal("dim mismatch must fail")
	}
	if _, _, err := lse.Append(5, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := lse.Append(5, []float64{3, 4}); err == nil {
		t.Fatal("non-increasing time must fail")
	}
	if lse.Len() != 1 {
		t.Fatalf("failed appends must not commit: Len=%d want 1", lse.Len())
	}
}
