package core

import (
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"sync"
	"testing"

	"repro/internal/score"
)

// runLiveDifferentialTrial is the acceptance harness of the live engine: one
// dataset streamed through a LiveEngine in random batch sizes, with queries
// interleaved at every batch boundary, each answer compared record-for-record
// (ID, time, score, and sometimes durations) against a batch Engine built
// fresh over exactly the prefix appended so far — across all five strategies.
func runLiveDifferentialTrial(t *testing.T, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	flavor := []string{"clustered", "adversarial", "dense"}[rng.Intn(3)]
	n := 40 + rng.Intn(260)
	d := 1 + rng.Intn(3)
	ds := diffDataset(rng, flavor, n, d)
	s := randScorer(rng, d)

	le, err := NewLiveEngine(d, testEngineOpts(), LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}

	fail := func(alg string, prefix int, q Query, got, want *Result) {
		t.Fatalf("seed %d (LIVE_SEED=%d to reproduce): flavor=%s n=%d d=%d prefix=%d alg=%s\n"+
			"query k=%d tau=%d lead=%d I=[%d,%d] anchor=%v durations=%v\n got %v\nwant %v",
			seed, seed, flavor, n, d, prefix, alg, q.K, q.Tau, q.Lead, q.Start, q.End,
			q.Anchor, q.WithDurations, got.Records, want.Records)
	}

	appended := 0
	for appended < n {
		batch := 1 + rng.Intn(24)
		for j := 0; j < batch && appended < n; j++ {
			if _, _, err := le.Append(ds.Time(appended), ds.Attrs(appended)); err != nil {
				t.Fatalf("seed %d: append %d: %v", seed, appended, err)
			}
			appended++
		}
		// The reference: a batch engine rebuilt from scratch at this exact
		// query point.
		prefix := ds.Prefix(appended)
		batchEng := NewEngine(prefix, testEngineOpts())
		for qi := 0; qi < 2; qi++ {
			q := diffQuery(rng, prefix)
			q.Scorer = s
			q.WithDurations = rng.Intn(3) == 0 && q.Anchor != General
			for _, alg := range Algorithms() {
				sub := q
				sub.Algorithm = alg
				mid := q.Anchor == General && q.Lead > 0 && q.Lead < q.Tau
				if mid && (alg == TBase || alg == SBand) {
					continue // rejected by contract, covered elsewhere
				}
				if mid && q.WithDurations {
					continue
				}
				want, err := batchEng.DurableTopK(sub)
				if err != nil {
					t.Fatalf("seed %d: batch %v: %v", seed, alg, err)
				}
				got, err := le.DurableTopK(sub)
				if err != nil {
					t.Fatalf("seed %d: live %v: %v", seed, alg, err)
				}
				if !reflect.DeepEqual(got.Records, want.Records) {
					fail(alg.String(), appended, sub, got, want)
				}
			}
		}
	}
	if le.Len() != n {
		t.Fatalf("live Len=%d want %d", le.Len(), n)
	}
}

func TestLiveEngineDifferential(t *testing.T) {
	if env := os.Getenv("LIVE_SEED"); env != "" {
		seed, err := strconv.ParseInt(env, 10, 64)
		if err != nil {
			t.Fatalf("bad LIVE_SEED %q: %v", env, err)
		}
		runLiveDifferentialTrial(t, seed)
		return
	}
	master := rand.New(rand.NewSource(20260728))
	trials := 12
	if testing.Short() {
		trials = 4
	}
	for trial := 0; trial < trials; trial++ {
		runLiveDifferentialTrial(t, master.Int63())
	}
}

// TestLiveEngineMonitor checks the online wiring: instant look-back
// decisions and delayed look-ahead confirmations coming out of Append must
// agree with the offline brute-force oracle over the final dataset.
func TestLiveEngineMonitor(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n, k, tau = 300, 3, 40
	ds := diffDataset(rng, "adversarial", n, 1)
	s := score.MustLinear(1)
	le, err := NewLiveEngine(1, testEngineOpts(), LiveOptions{
		MonitorK: k, MonitorTau: tau, MonitorScorer: s, TrackAhead: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !le.Monitored() {
		t.Fatal("monitor should be enabled")
	}

	lookBack := map[int]bool{}
	for _, id := range BruteForce(ds, s, k, tau, ds.Time(0), ds.Time(n-1), LookBack) {
		lookBack[id] = true
	}
	lookAhead := map[int]bool{}
	for _, id := range BruteForce(ds, s, k, tau, ds.Time(0), ds.Time(n-1), LookAhead) {
		lookAhead[id] = true
	}

	confirmed := map[int]bool{}
	var confirmedTrunc []int
	for i := 0; i < n; i++ {
		dec, confirms, err := le.Append(ds.Time(i), ds.Attrs(i))
		if err != nil {
			t.Fatal(err)
		}
		if dec.ID != i {
			t.Fatalf("decision id=%d want %d", dec.ID, i)
		}
		if dec.Durable != lookBack[i] {
			t.Fatalf("record %d: instant decision %v, oracle %v", i, dec.Durable, lookBack[i])
		}
		for _, c := range confirms {
			if c.Truncated {
				t.Fatalf("record %d confirmed truncated mid-stream", c.ID)
			}
			confirmed[c.ID] = c.Durable
		}
	}
	for _, c := range le.Finish() {
		if c.Truncated {
			confirmedTrunc = append(confirmedTrunc, c.ID)
			continue
		}
		confirmed[c.ID] = c.Durable
	}
	for id, durable := range confirmed {
		if durable != lookAhead[id] {
			t.Fatalf("record %d: confirmation %v, oracle %v", id, durable, lookAhead[id])
		}
	}
	// Truncated confirmations are exactly those whose forward window
	// extends past the last arrival.
	for _, id := range confirmedTrunc {
		if ds.Time(id)+tau <= ds.Time(n-1) {
			t.Fatalf("record %d truncated but its window closed in-stream", id)
		}
	}
	if len(confirmed)+len(confirmedTrunc) != n {
		t.Fatalf("confirmed %d + truncated %d records, want %d",
			len(confirmed), len(confirmedTrunc), n)
	}
}

// TestLiveEngineEmptyAndErrors pins the edge contract: queries on an empty
// live engine answer empty (not panic), invalid appends leave it unchanged,
// and profile operations report the empty state as an error.
func TestLiveEngineEmptyAndErrors(t *testing.T) {
	le, err := NewLiveEngine(2, Options{}, LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := score.MustLinear(1, 1)
	res, err := le.DurableTopK(Query{K: 1, Tau: 5, Start: 0, End: 10, Scorer: s})
	if err != nil || len(res.Records) != 0 {
		t.Fatalf("empty live query: res=%v err=%v", res, err)
	}
	if _, err := le.DurableTopK(Query{K: 0, Tau: 5, Scorer: s}); err == nil {
		t.Fatal("invalid k must fail even when empty")
	}
	if _, err := le.Explain(Query{K: 1, Scorer: s}); err == nil {
		t.Fatal("explain on empty must fail")
	}
	if _, err := le.MostDurable(1, s, LookBack, 3); err == nil {
		t.Fatal("most-durable on empty must fail")
	}
	if _, _, err := le.Append(5, []float64{1}); err == nil {
		t.Fatal("dim mismatch must fail")
	}
	if _, _, err := le.Append(5, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := le.Append(5, []float64{3, 4}); err == nil {
		t.Fatal("non-increasing time must fail")
	}
	if _, _, err := le.Append(4, []float64{3, 4}); err == nil {
		t.Fatal("decreasing time must fail")
	}
	if le.Len() != 1 {
		t.Fatalf("failed appends must not commit: Len=%d want 1", le.Len())
	}
	if _, err := NewLiveEngine(0, Options{}, LiveOptions{}); err == nil {
		t.Fatal("d=0 must fail")
	}
	if _, err := NewLiveEngine(2, Options{}, LiveOptions{MonitorK: 1}); err == nil {
		t.Fatal("monitor without scorer must fail")
	}
	if _, err := NewLiveEngine(2, Options{}, LiveOptions{MonitorK: 1, MonitorScorer: score.MustLinear(1)}); err == nil {
		t.Fatal("monitor scorer dim mismatch must fail")
	}
}

// TestLiveEngineConcurrentQueries exercises the RW-locked contract under the
// race detector: one appender, several concurrent queriers, every answer
// internally consistent (IDs within the then-current prefix, ascending time).
func TestLiveEngineConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	const n = 400
	ds := diffDataset(rng, "clustered", n, 2)
	s := score.MustLinear(0.5, 0.5)
	le, err := NewLiveEngine(2, testEngineOpts(), LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				snap := le.Dataset()
				if snap.Len() == 0 {
					continue
				}
				lo, hi := snap.Span()
				res, err := le.DurableTopK(Query{
					K: 1 + (i+w)%4, Tau: int64(i % 50), Start: lo, End: hi, Scorer: s,
				})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				last := int64(-1 << 62)
				for _, r := range res.Records {
					if r.Time <= last {
						t.Errorf("worker %d: results not time-ascending", w)
						return
					}
					last = r.Time
				}
			}
		}(w)
	}
	for i := 0; i < n; i++ {
		if _, _, err := le.Append(ds.Time(i), ds.Attrs(i)); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestLiveDatasetSnapshotStable pins the storage contract behind the whole
// subsystem: a snapshot taken at prefix n observes exactly those records
// forever, across tail growth and the reallocation it causes.
func TestLiveDatasetSnapshotStable(t *testing.T) {
	le, err := NewLiveEngine(1, Options{}, LiveOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, _, err := le.Append(int64(i+1), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	snap := le.Dataset()
	// Force many growth steps past the first chunk boundary.
	for i := 10; i < 2000; i++ {
		if _, _, err := le.Append(int64(i+1), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if snap.Len() != 10 {
		t.Fatalf("snapshot grew: Len=%d want 10", snap.Len())
	}
	for i := 0; i < 10; i++ {
		if snap.Time(i) != int64(i+1) || snap.Attrs(i)[0] != float64(i) {
			t.Fatalf("snapshot record %d changed: t=%d attrs=%v", i, snap.Time(i), snap.Attrs(i))
		}
	}
}

func BenchmarkLiveAppend(b *testing.B) {
	le, err := NewLiveEngine(2, Options{}, LiveOptions{})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := le.Append(int64(i+1), []float64{rng.Float64(), rng.Float64()}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveSteadyQuery measures the steady-state live query path: the
// forest-backed engine answering durable top-k with no appends in between
// (the memoized snapshot engine and pooled probe scratch stay warm).
func BenchmarkLiveSteadyQuery(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	const n = 20000
	le, err := NewLiveEngine(2, Options{}, LiveOptions{})
	if err != nil {
		b.Fatal(err)
	}
	tt := int64(0)
	for i := 0; i < n; i++ {
		tt += int64(1 + rng.Intn(3))
		if _, _, err := le.Append(tt, []float64{rng.Float64() * 100, rng.Float64() * 100}); err != nil {
			b.Fatal(err)
		}
	}
	s := score.MustLinear(0.4, 0.6)
	q := Query{K: 10, Tau: tt / 10, Start: tt / 4, End: 3 * tt / 4, Scorer: s, Algorithm: SHop}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := le.DurableTopK(q); err != nil {
			b.Fatal(err)
		}
	}
}
