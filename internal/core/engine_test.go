package core

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/data"
	"repro/internal/score"
	"repro/internal/topk"
)

func mustEngine(t *testing.T, ds *data.Dataset) *Engine {
	t.Helper()
	return NewEngine(ds, Options{Index: topk.Options{LengthThreshold: 8}})
}

func TestQueryValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := randDataset(rng, 50, 2, false)
	eng := mustEngine(t, ds)
	s := score.MustLinear(1, 1)
	base := Query{K: 1, Tau: 1, Start: 0, End: 100, Scorer: s}

	q := base
	q.K = 0
	if _, err := eng.DurableTopK(q); !errors.Is(err, ErrBadK) {
		t.Fatalf("k=0: %v", err)
	}
	q = base
	q.Tau = -1
	if _, err := eng.DurableTopK(q); !errors.Is(err, ErrBadTau) {
		t.Fatalf("tau<0: %v", err)
	}
	q = base
	q.Start, q.End = 10, 5
	if _, err := eng.DurableTopK(q); !errors.Is(err, ErrBadInterval) {
		t.Fatalf("inverted interval: %v", err)
	}
	q = base
	q.Scorer = nil
	if _, err := eng.DurableTopK(q); !errors.Is(err, ErrNoScorer) {
		t.Fatalf("nil scorer: %v", err)
	}
	q = base
	q.Scorer = score.MustLinear(1, 1, 1)
	if _, err := eng.DurableTopK(q); !errors.Is(err, ErrDims) {
		t.Fatalf("dims mismatch: %v", err)
	}
}

func TestSBandRequiresMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ds := randDataset(rng, 50, 2, false)
	eng := mustEngine(t, ds)
	cos, err := score.NewCosine([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = eng.DurableTopK(Query{K: 1, Tau: 1, Start: 0, End: 100, Scorer: cos, Algorithm: SBand})
	if !errors.Is(err, ErrNotMonotone) {
		t.Fatalf("cosine s-band: %v", err)
	}
	// Other algorithms accept non-monotone scorers and agree with the
	// oracle.
	lo, hi := ds.Span()
	want := BruteForce(ds, cos, 2, 10, lo, hi, LookBack)
	for _, alg := range []Algorithm{TBase, THop, SBase, SHop} {
		res, err := eng.DurableTopK(Query{K: 2, Tau: 10, Start: lo, End: hi, Scorer: cos, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		got := res.IDs()
		if len(got) != len(want) {
			t.Fatalf("%v: got %v want %v", alg, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%v: got %v want %v", alg, got, want)
			}
		}
	}
}

func TestAutoPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))

	// Auto always resolves to a concrete strategy whose answer matches the
	// oracle, regardless of dataset shape.
	ds := randDataset(rng, 80, 1, false)
	eng := mustEngine(t, ds)
	lo, hi := ds.Span()
	s1 := score.MustLinear(1)
	res, err := eng.DurableTopK(Query{K: 2, Tau: 5, Start: lo, End: hi, Scorer: s1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Algorithm == Auto {
		t.Fatal("Auto query reported Auto in its stats; expected a concrete strategy")
	}
	want := BruteForce(ds, s1, 2, 5, lo, hi, LookBack)
	if got := res.IDs(); len(got) != len(want) {
		t.Fatalf("Auto answer %v, oracle %v", got, want)
	}

	// A selective query over a sizable low-dimensional dataset: the planner
	// must choose the paper's winner, T-Hop.
	big := randDataset(rng, 20000, 2, false)
	engBig := mustEngine(t, big)
	blo, bhi := big.Span()
	tau := (bhi - blo) / 5
	res, err = engBig.DurableTopK(Query{K: 5, Tau: tau, Start: blo, End: bhi, Scorer: score.MustLinear(1, 1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Algorithm != THop {
		t.Fatalf("Auto(selective, d=2, k=5) resolved to %v, want t-hop", res.Stats.Algorithm)
	}

	// Non-monotone scorers can never resolve to S-Band.
	cos, err := score.NewCosine([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err = engBig.DurableTopK(Query{K: 30, Tau: tau, Start: blo, End: bhi, Scorer: cos})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Algorithm == SBand {
		t.Fatal("Auto picked S-Band for a non-monotone scorer")
	}

	// Mid-anchored windows exclude T-Base and S-Band.
	res, err = engBig.DurableTopK(Query{
		K: 3, Tau: tau, Lead: tau / 2, Start: blo, End: bhi,
		Scorer: score.MustLinear(1, 1), Anchor: General,
	})
	if err != nil {
		t.Fatal(err)
	}
	if a := res.Stats.Algorithm; a == TBase || a == SBand {
		t.Fatalf("Auto picked %v for a mid-anchored window", a)
	}
}

func TestExplain(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	ds := randDataset(rng, 5000, 2, false)
	eng := mustEngine(t, ds)
	lo, hi := ds.Span()
	plan, err := eng.Explain(Query{
		K: 5, Tau: (hi - lo) / 4, Start: lo, End: hi, Scorer: score.MustLinear(1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Estimates) != 5 {
		t.Fatalf("Explain returned %d estimates, want 5", len(plan.Estimates))
	}
	if plan.ExpectedAnswer <= 0 {
		t.Errorf("ExpectedAnswer = %v, want > 0", plan.ExpectedAnswer)
	}
	// The chosen strategy matches what an Auto query actually runs.
	res, err := eng.DurableTopK(Query{
		K: 5, Tau: (hi - lo) / 4, Start: lo, End: hi, Scorer: score.MustLinear(1, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Algorithm != strategyAlgorithm(plan.Chosen) {
		t.Errorf("Explain chose %v but Auto ran %v", plan.Chosen, res.Stats.Algorithm)
	}
	// Invalid queries are rejected.
	if _, err := eng.Explain(Query{K: 0, Tau: 1, Start: lo, End: hi, Scorer: score.MustLinear(1, 1)}); err == nil {
		t.Error("Explain accepted an invalid query")
	}
}

func TestTauZeroEveryRecordDurable(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	ds := randDataset(rng, 60, 2, false)
	eng := mustEngine(t, ds)
	lo, hi := ds.Span()
	s := score.MustLinear(1, 2)
	for _, alg := range Algorithms() {
		res, err := eng.DurableTopK(Query{K: 1, Tau: 0, Start: lo, End: hi, Scorer: s, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != ds.Len() {
			t.Fatalf("%v: tau=0 must return every record, got %d/%d", alg, len(res.Records), ds.Len())
		}
	}
}

func TestLargeKEveryRecordDurable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := randDataset(rng, 60, 2, false)
	eng := mustEngine(t, ds)
	lo, hi := ds.Span()
	s := score.MustLinear(1, 2)
	for _, alg := range Algorithms() {
		res, err := eng.DurableTopK(Query{K: ds.Len() + 5, Tau: hi - lo, Start: lo, End: hi, Scorer: s, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != ds.Len() {
			t.Fatalf("%v: k>n must return every record, got %d/%d", alg, len(res.Records), ds.Len())
		}
	}
}

func TestEmptyInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	ds := randDataset(rng, 40, 1, false)
	eng := mustEngine(t, ds)
	_, hi := ds.Span()
	s := score.MustLinear(1)
	for _, alg := range Algorithms() {
		res, err := eng.DurableTopK(Query{K: 1, Tau: 3, Start: hi + 10, End: hi + 20, Scorer: s, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Records) != 0 {
			t.Fatalf("%v: interval beyond data must be empty", alg)
		}
	}
}

// TestTauAntiMonotone: growing tau can only shrink the answer set.
func TestTauAntiMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		ds := randDataset(rng, 150, 2, trial%2 == 0)
		eng := mustEngine(t, ds)
		lo, hi := ds.Span()
		s := randScorer(rng, 2)
		prev := map[int]bool{}
		first := true
		for _, tau := range []int64{0, 2, 5, 11, 29, 83, 1 << 20} {
			res, err := eng.DurableTopK(Query{K: 3, Tau: tau, Start: lo, End: hi, Scorer: s, Algorithm: SHop})
			if err != nil {
				t.Fatal(err)
			}
			cur := map[int]bool{}
			for _, r := range res.Records {
				cur[r.ID] = true
			}
			if !first {
				for id := range cur {
					if !prev[id] {
						t.Fatalf("trial %d tau=%d: record %d durable now but not at smaller tau", trial, tau, id)
					}
				}
			}
			prev, first = cur, false
		}
	}
}

func TestWithDurations(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 6; trial++ {
		ds := randDataset(rng, 120, 2, trial%2 == 0)
		eng := mustEngine(t, ds)
		lo, hi := ds.Span()
		s := randScorer(rng, 2)
		anchor := LookBack
		if trial%2 == 1 {
			anchor = LookAhead
		}
		res, err := eng.DurableTopK(Query{
			K: 2, Tau: 10, Start: lo, End: hi, Scorer: s,
			Anchor: anchor, WithDurations: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Records {
			wantDur, wantFull := BruteMaxDuration(ds, s, 2, r.ID, anchor)
			if r.MaxDuration != wantDur || r.FullHistory != wantFull {
				t.Fatalf("trial %d record %d: dur (%d,%v) want (%d,%v)",
					trial, r.ID, r.MaxDuration, r.FullHistory, wantDur, wantFull)
			}
			// A record's measured durability is at least the queried tau
			// unless truncated by the boundary of recorded history.
			if r.MaxDuration < 10 && !r.FullHistory {
				t.Fatalf("record %d: max duration %d below queried tau", r.ID, r.MaxDuration)
			}
		}
	}
}

func TestResultRecordFields(t *testing.T) {
	ds := data.MustNew([]int64{1, 2, 3}, [][]float64{{1}, {5}, {3}})
	eng := mustEngine(t, ds)
	s := score.MustLinear(2)
	res, err := eng.DurableTopK(Query{K: 1, Tau: 2, Start: 1, End: 3, Scorer: s, Algorithm: THop})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Records {
		if r.Time != ds.Time(r.ID) {
			t.Fatalf("record %d time mismatch", r.ID)
		}
		if r.Score != s.Score(ds.Attrs(r.ID)) {
			t.Fatalf("record %d score mismatch", r.ID)
		}
		if r.MaxDuration != -1 {
			t.Fatalf("MaxDuration must be -1 without WithDurations, got %d", r.MaxDuration)
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := randDataset(rng, 400, 2, false)
	eng := mustEngine(t, ds)
	lo, hi := ds.Span()
	s := randScorer(rng, 2)
	q := Query{K: 3, Tau: (hi - lo) / 8, Start: lo, End: hi, Scorer: s}

	for _, alg := range Algorithms() {
		q.Algorithm = alg
		res, err := eng.DurableTopK(q)
		if err != nil {
			t.Fatal(err)
		}
		st := res.Stats
		if st.Algorithm != alg {
			t.Fatalf("stats algorithm %v want %v", st.Algorithm, alg)
		}
		if st.Elapsed <= 0 {
			t.Fatalf("%v: elapsed not recorded", alg)
		}
		switch alg {
		case SBase:
			if st.TopKQueries() != 0 {
				t.Fatalf("s-base must not call the building block, got %d", st.TopKQueries())
			}
			if st.CandidateCount == 0 {
				t.Fatal("s-base must report its sorted-set size")
			}
		case THop:
			if st.CheckQueries < len(res.Records) {
				t.Fatalf("t-hop checks (%d) must cover every durable record (%d)",
					st.CheckQueries, len(res.Records))
			}
		case SBand:
			if st.CandidateCount < len(res.Records) {
				t.Fatalf("s-band |C|=%d smaller than |S|=%d", st.CandidateCount, len(res.Records))
			}
		case SHop:
			if st.FindQueries == 0 {
				t.Fatal("s-hop must issue find queries")
			}
		}
	}
}

// TestHopQueryBound checks Lemma 1/3's O(|S| + k ceil(|I|/tau)) shape with a
// generous constant.
func TestHopQueryBound(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	for trial := 0; trial < 8; trial++ {
		ds := randDataset(rng, 600, 2, false)
		eng := mustEngine(t, ds)
		lo, hi := ds.Span()
		span := hi - lo
		k := 1 + rng.Intn(5)
		tau := 1 + rng.Int63n(span)
		q := Query{K: k, Tau: tau, Start: lo, End: hi, Scorer: randScorer(rng, 2)}
		bound := 0
		for _, alg := range []Algorithm{THop, SHop} {
			q.Algorithm = alg
			res, err := eng.DurableTopK(q)
			if err != nil {
				t.Fatal(err)
			}
			intervals := int(span/tau) + 1
			bound = 4 * (len(res.Records) + k*intervals + 1)
			if got := res.Stats.TopKQueries(); got > bound {
				t.Fatalf("trial %d %v: %d queries exceeds bound %d (|S|=%d k=%d |I|/tau=%d)",
					trial, alg, got, bound, len(res.Records), k, intervals)
			}
		}
	}
}

func TestAnswersSubsetOfInterval(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	ds := randDataset(rng, 200, 2, true)
	eng := mustEngine(t, ds)
	lo, hi := ds.Span()
	start := lo + (hi-lo)/3
	end := hi - (hi-lo)/3
	s := randScorer(rng, 2)
	for _, alg := range Algorithms() {
		res, err := eng.DurableTopK(Query{K: 2, Tau: 7, Start: start, End: end, Scorer: s, Algorithm: alg})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range res.Records {
			if r.Time < start || r.Time > end {
				t.Fatalf("%v returned record outside I: t=%d not in [%d,%d]", alg, r.Time, start, end)
			}
		}
	}
}

func TestResultsAscendingAndUnique(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 6; trial++ {
		ds := randDataset(rng, 300, 2, true)
		eng := mustEngine(t, ds)
		lo, hi := ds.Span()
		s := randScorer(rng, 2)
		for _, alg := range Algorithms() {
			for _, anchor := range []Anchor{LookBack, LookAhead} {
				res, err := eng.DurableTopK(Query{K: 2, Tau: 15, Start: lo, End: hi, Scorer: s, Algorithm: alg, Anchor: anchor})
				if err != nil {
					t.Fatal(err)
				}
				for i := 1; i < len(res.Records); i++ {
					if res.Records[i].Time <= res.Records[i-1].Time {
						t.Fatalf("%v/%v: results not strictly ascending in time", alg, anchor)
					}
				}
			}
		}
	}
}

func TestAlgorithmStrings(t *testing.T) {
	for _, alg := range Algorithms() {
		name := alg.String()
		back, err := ParseAlgorithm(name)
		if err != nil || back != alg {
			t.Fatalf("round trip %v -> %q -> %v (%v)", alg, name, back, err)
		}
	}
	if _, err := ParseAlgorithm("nope"); err == nil {
		t.Fatal("unknown algorithm must fail")
	}
	if Algorithm(99).String() == "" {
		t.Fatal("unknown algorithm must still format")
	}
	if Auto.String() != "auto" {
		t.Fatal("auto name")
	}
	if LookBack.String() == LookAhead.String() {
		t.Fatal("anchor names must differ")
	}
}

func TestPrepareSkybandIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	ds := randDataset(rng, 100, 2, false)
	eng := mustEngine(t, ds)
	eng.PrepareSkyband(5, LookBack)
	eng.PrepareSkyband(5, LookBack)
	eng.PrepareSkyband(5, LookAhead)
	lo, hi := ds.Span()
	s := randScorer(rng, 2)
	res, err := eng.DurableTopK(Query{K: 5, Tau: 9, Start: lo, End: hi, Scorer: s, Algorithm: SBand})
	if err != nil {
		t.Fatal(err)
	}
	want := BruteForce(ds, s, 5, 9, lo, hi, LookBack)
	if len(res.Records) != len(want) {
		t.Fatalf("after prepare: %d results want %d", len(res.Records), len(want))
	}
}

func TestSatArithmetic(t *testing.T) {
	const big = int64(1) << 62
	if satSub(-big, big) > 0 {
		t.Fatal("satSub underflow not clamped")
	}
	if satAdd(big, big) < 0 {
		t.Fatal("satAdd overflow not clamped")
	}
	if satSub(10, 3) != 7 || satAdd(10, 3) != 13 {
		t.Fatal("sat arithmetic broke ordinary values")
	}
	if satSub(10, -3) != 13 || satAdd(10, -3) != 7 {
		t.Fatal("sat arithmetic broke negative operands")
	}
}
