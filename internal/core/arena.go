package core

import (
	"repro/internal/blocking"
	"repro/internal/topk"
)

// arena is the per-query allocation arena carried by every probe. The
// score-prioritized strategies allocate heavily per query — S-Hop's
// prefetched top-k lists and heap entries, S-Band's scored candidate refs,
// the visited/answered marks, the blocking treap, the result ids — and all
// of it dies the moment the query returns. The arena keeps one reusable
// backing store for each of those shapes on the probe: a query carves what
// it needs, everything is freed wholesale by reset at the next query's
// start, and because probes are pooled (see newProbe) the storage survives
// across queries. With a warm arena an S-Hop evaluation runs with zero
// steady-state allocations (see TestRunSHopZeroAllocs).
//
// The carved objects hold no pointers beyond slice headers into the arena's
// own backing (topk.Item, shopEntry bounds and blocking nodes are plain
// data), so retaining the arena across queries cannot pin unrelated memory.
type arena struct {
	// items backs the retained prefetch lists (S-Hop sub-interval top-k
	// lists). Lists are carved by append; when the backing fills up a fresh,
	// larger array replaces it without copying — already-carved lists keep
	// the old array alive until the query ends, and steady state settles on
	// one array big enough for a whole query.
	items []topk.Item

	// entryChunks backs the S-Hop heap nodes. Entries are handed out from
	// fixed-size chunks so *shopEntry pointers stay stable while the arena
	// grows.
	entryChunks [][]shopEntry
	entryN      int

	shop shopHeap    // heap slice backing, reused across queries
	refs []scoredRef // S-Band scored-candidate backing

	visited map[int32]bool // records already seen / blocking-counted
	marked  map[int32]bool // records already reported durable
	ids     []int32        // result id accumulator

	blk *blocking.Set // reusable blocking treap (slab-backed)
}

// entryChunkLen is the shopEntry chunk size; one chunk serves most queries.
const entryChunkLen = 64

// reset frees everything carved from the arena wholesale, keeping the
// backing storage for reuse. Called at the start of every strategy run.
func (a *arena) reset() {
	a.items = a.items[:0]
	a.entryN = 0
	a.shop.es = a.shop.es[:0]
	a.refs = a.refs[:0]
	a.ids = a.ids[:0]
	clear(a.visited)
	clear(a.marked)
}

// keep copies items into the arena and returns the arena-backed copy, valid
// until the next reset. Growth swaps in a fresh backing array instead of
// copying the old one: previously carved lists stay valid by keeping the old
// array alive through their own slice headers.
func (a *arena) keep(items []topk.Item) []topk.Item {
	if len(items) == 0 {
		return nil
	}
	if len(a.items)+len(items) > cap(a.items) {
		newCap := 2 * cap(a.items)
		if newCap < 256 {
			newCap = 256
		}
		for newCap < len(items) {
			newCap *= 2
		}
		a.items = make([]topk.Item, 0, newCap)
	}
	lo := len(a.items)
	a.items = a.items[:lo+len(items)]
	out := a.items[lo : lo+len(items) : lo+len(items)]
	copy(out, items)
	return out
}

// newEntry hands out a zeroed heap node with a stable address.
func (a *arena) newEntry() *shopEntry {
	ci, off := a.entryN/entryChunkLen, a.entryN%entryChunkLen
	if ci == len(a.entryChunks) {
		a.entryChunks = append(a.entryChunks, make([]shopEntry, entryChunkLen))
	}
	a.entryN++
	e := &a.entryChunks[ci][off]
	*e = shopEntry{}
	return e
}

// scoredRefs returns a zero-length scored-candidate slice with at least the
// given capacity.
func (a *arena) scoredRefs(n int) []scoredRef {
	if cap(a.refs) < n {
		a.refs = make([]scoredRef, 0, n)
	}
	return a.refs[:0]
}

// visitedMap returns the cleared visited-mark map.
func (a *arena) visitedMap() map[int32]bool {
	if a.visited == nil {
		a.visited = make(map[int32]bool, 64)
	}
	return a.visited
}

// markedMap returns the cleared answered-mark map.
func (a *arena) markedMap() map[int32]bool {
	if a.marked == nil {
		a.marked = make(map[int32]bool, 16)
	}
	return a.marked
}

// blocking returns the reusable blocking set, emptied and re-armed for
// intervals of length tau.
func (a *arena) blocking(tau int64) *blocking.Set {
	if a.blk == nil {
		a.blk = blocking.NewSet(tau)
		return a.blk
	}
	a.blk.Reset(tau)
	return a.blk
}
