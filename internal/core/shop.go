package core

import (
	"repro/internal/score"
	"repro/internal/topk"
)

// shopEntry is a max-heap element of S-Hop: one live sub-interval of I with
// its prefetched top-k list and a cursor into it. Entries live in the
// probe's arena (stable chunked storage), not on the general heap.
type shopEntry struct {
	items  []topk.Item // top-k of [lo, hi], best first (arena-backed)
	pos    int
	lo, hi int64 // closed sub-interval bounds
}

func (e *shopEntry) current() topk.Item { return e.items[e.pos] }

// shopHeap orders entries by their current item under (score desc, time
// desc). The backing slice lives in the probe's arena.
type shopHeap struct {
	es []*shopEntry
}

func (h *shopHeap) len() int { return len(h.es) }

func (h *shopHeap) push(e *shopEntry) {
	h.es = append(h.es, e)
	i := len(h.es) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !topk.Better(h.es[i].current(), h.es[parent].current()) {
			break
		}
		h.es[i], h.es[parent] = h.es[parent], h.es[i]
		i = parent
	}
}

func (h *shopHeap) pop() *shopEntry {
	top := h.es[0]
	last := len(h.es) - 1
	h.es[0] = h.es[last]
	h.es[last] = nil
	h.es = h.es[:last]
	n := len(h.es)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && topk.Better(h.es[l].current(), h.es[best].current()) {
			best = l
		}
		if r < n && topk.Better(h.es[r].current(), h.es[best].current()) {
			best = r
		}
		if best == i {
			break
		}
		h.es[i], h.es[best] = h.es[best], h.es[i]
		i = best
	}
	return top
}

// shopPrefetch runs one find query over the closed sub-interval [lo, hi] and
// pushes a heap entry for it when non-empty. The prefetched list outlives the
// transient probe buffer, so it is copied into the probe's arena; the heap
// entry comes from the arena too. A plain function (not a closure) so the
// S-Hop main loop stays allocation-free.
func shopPrefetch(v *view, pr *probe, st *Stats, s score.Scorer, k int, lo, hi int64) {
	if lo > hi {
		return
	}
	items := v.topk(pr, st, kindFind, s, k, lo, hi)
	if len(items) > 0 {
		e := pr.a.newEntry()
		e.items, e.lo, e.hi = pr.a.keep(items), lo, hi
		pr.a.shop.push(e)
	}
}

// runSHop is the Score-Hop algorithm (§IV-C, Algorithm 3): partition I into
// tau-length sub-intervals, prefetch each sub-interval's top-k, and process
// records globally in descending score order through a max-heap. A record
// covered by fewer than k blocking intervals triggers a durability check and
// splits its sub-interval at the record's timestamp (two fresh find
// queries); a blocked record merely advances its sub-interval's cursor — the
// hop in score domain. Building-block calls are O(|S| + k·ceil(|I|/tau))
// (Lemma 3). All retained per-query state — prefetch lists, heap entries,
// the heap itself, the visited/answer marks, the blocking treap and the
// result ids — is carved from the probe's arena, so a steady-state
// evaluation allocates nothing.
func runSHop(v *view, pr *probe, q Query, st *Stats) []int32 {
	subLen := q.Tau
	if subLen < 1 {
		subLen = 1
	}
	a := &pr.a
	a.reset()
	h := &a.shop
	for lo := q.Start; lo <= q.End; lo = satAdd(lo, subLen) {
		hi := satAdd(lo, subLen-1)
		if hi > q.End {
			hi = q.End
		}
		shopPrefetch(v, pr, st, q.Scorer, q.K, lo, hi)
		if hi == q.End {
			break
		}
	}

	blk := a.blocking(q.Tau)
	visited := a.visitedMap()
	inAnswer := a.markedMap()
	res := a.ids
	for h.len() > 0 {
		e := h.pop()
		p := e.current()
		st.Visited++
		if blk.Cover(p.Time) < q.K {
			items := v.topk(pr, st, kindCheck, q.Scorer, q.K, satSub(p.Time, q.Tau), p.Time)
			if v.member(q.Scorer, q.K, items, p.ID) {
				if !inAnswer[p.ID] {
					inAnswer[p.ID] = true
					res = append(res, p.ID)
				}
			} else {
				for _, it := range items {
					if !visited[it.ID] {
						visited[it.ID] = true
						blk.Add(it.Time)
					}
				}
			}
			// Split the sub-interval at p.t; the prefetched list is
			// superseded by the two fresh halves.
			shopPrefetch(v, pr, st, q.Scorer, q.K, e.lo, p.Time-1)
			shopPrefetch(v, pr, st, q.Scorer, q.K, p.Time+1, e.hi)
		} else if e.pos+1 < len(e.items) {
			e.pos++
			h.push(e)
		}
		if !visited[p.ID] {
			visited[p.ID] = true
			blk.Add(p.Time)
		}
	}
	a.ids = res
	sortIDs(res)
	return res
}
