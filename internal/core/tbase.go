package core

import (
	"repro/internal/topk"
)

// runTBase is the time-prioritized baseline (§III-A): visit every record in
// I from the newest backwards, maintaining the top-k of the continuously
// sliding window [t - tau, t] incrementally in the spirit of the skyband
// maintenance algorithm of Mouratidis et al. The top-k set is recomputed
// from scratch (one building-block query) only when the expiring record was
// itself a member; entering records on the old side of the window are merged
// in O(log k).
func runTBase(v *view, pr *probe, q Query, st *Stats) []int32 {
	ds := v.ds
	loIdx := ds.LowerBound(q.Start)
	hiIdx := ds.UpperBound(q.End) - 1
	if hiIdx < loIdx {
		return nil
	}
	var res []int32

	// cur holds the top-k items of the current window, best first.
	var cur []topk.Item
	prevWinLo := 0 // index of the oldest record in the previous window

	for i := hiIdx; i >= loIdx; i-- {
		st.Visited++
		t := ds.Time(i)
		winLo := ds.LowerBound(satSub(t, q.Tau))
		if i == hiIdx {
			cur = v.topkKeep(pr, st, kindMaint, q.Scorer, q.K, satSub(t, q.Tau), t)
		} else {
			// The expiring record is the previous right endpoint i+1.
			if itemsContain(cur, int32(i+1)) {
				cur = v.topkKeep(pr, st, kindMaint, q.Scorer, q.K, satSub(t, q.Tau), t)
			} else {
				// Entering records extend the window on the old side:
				// indices [winLo, prevWinLo).
				for j := winLo; j < prevWinLo && j <= i; j++ {
					cur = offerItem(cur, q.K, topk.Item{
						ID:    int32(j),
						Time:  ds.Time(j),
						Score: q.Scorer.Score(ds.Attrs(j)),
					})
				}
			}
		}
		prevWinLo = winLo
		if v.member(q.Scorer, q.K, cur, int32(i)) {
			res = append(res, int32(i))
		}
	}
	reverse(res)
	return res
}

func itemsContain(items []topk.Item, id int32) bool {
	for _, it := range items {
		if it.ID == id {
			return true
		}
	}
	return false
}

// offerItem inserts it into the (score desc, time desc) sorted top-k list,
// keeping at most k entries.
func offerItem(items []topk.Item, k int, it topk.Item) []topk.Item {
	if len(items) == k && !topk.Better(it, items[k-1]) {
		return items
	}
	pos := len(items)
	for pos > 0 && topk.Better(it, items[pos-1]) {
		pos--
	}
	if len(items) < k {
		items = append(items, topk.Item{})
	}
	copy(items[pos+1:], items[pos:])
	items[pos] = it
	return items
}

func reverse(s []int32) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}
