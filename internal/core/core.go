// Package core implements the paper's primary contribution: durable top-k
// queries over instant-stamped temporal data (Gao, Sintos, Agarwal, Yang,
// ICDE 2021).
//
// Given k, a durability length tau, a query interval I = [Start, End], and a
// scoring function f, DurTop(k, I, tau) returns every record p arriving in I
// that is in the top-k (under f) of its own durability window — the window
// [p.t - tau, p.t] for the looking-back anchor, or [p.t, p.t + tau] for the
// looking-ahead anchor. A record is "in the top-k" of a window when fewer
// than k records in the window score strictly higher (§II).
//
// Five algorithms are provided (§III, §IV):
//
//	T-Base  baseline continuous sliding window with incremental maintenance
//	T-Hop   time-prioritized with hop-skipping (Algorithm 1)
//	S-Base  score-prioritized full sort with blocking intervals
//	S-Band  durable k-skyband candidates + blocking (Algorithm 2; monotone f)
//	S-Hop   score-prioritized heap over tau-partitions (Algorithm 3)
//
// All algorithms share the range top-k building block of package topk and
// break score ties by recency (later arrival ranks first); the tie-break is
// required for hop safety and blocking correctness.
package core

import (
	"errors"
	"fmt"
	"math"
	"time"

	"repro/internal/score"
)

// Algorithm selects a durable top-k evaluation strategy.
type Algorithm int

// The available strategies. Auto picks S-Hop, the paper's best
// general-purpose algorithm (works for any scorer, robust to dimensionality
// and data distribution).
const (
	Auto Algorithm = iota
	TBase
	THop
	SBase
	SBand
	SHop
)

var algorithmNames = map[Algorithm]string{
	Auto:  "auto",
	TBase: "t-base",
	THop:  "t-hop",
	SBase: "s-base",
	SBand: "s-band",
	SHop:  "s-hop",
}

// String returns the conventional lower-case name (e.g. "t-hop").
func (a Algorithm) String() string {
	if s, ok := algorithmNames[a]; ok {
		return s
	}
	return fmt.Sprintf("algorithm(%d)", int(a))
}

// ParseAlgorithm converts a name accepted by String back to an Algorithm.
func ParseAlgorithm(s string) (Algorithm, error) {
	for a, name := range algorithmNames {
		if s == name {
			return a, nil
		}
	}
	return Auto, fmt.Errorf("core: unknown algorithm %q", s)
}

// Algorithms lists the five concrete strategies in presentation order.
func Algorithms() []Algorithm { return []Algorithm{TBase, THop, SBase, SBand, SHop} }

// Anchor positions the durability window relative to each record's arrival.
type Anchor int

const (
	// LookBack anchors the window to end at the record: [p.t - tau, p.t].
	LookBack Anchor = iota
	// LookAhead anchors the window to start at the record: [p.t, p.t + tau].
	LookAhead
	// General anchors the window around the record using Query.Lead:
	// [p.t - (tau - Lead), p.t + Lead]. Lead = 0 equals LookBack and
	// Lead = tau equals LookAhead; intermediate values give mid-anchored
	// windows (the "anchored consistently relative to the arrival times"
	// generalization of §II). Supported by T-Hop, S-Base and S-Hop.
	General
)

// String names the anchor.
func (a Anchor) String() string {
	switch a {
	case LookAhead:
		return "look-ahead"
	case General:
		return "general"
	default:
		return "look-back"
	}
}

// Query describes one durable top-k query DurTop(k, I, tau).
type Query struct {
	K         int          // top-k parameter, >= 1
	Tau       int64        // durability window length in time ticks, >= 0
	Start     int64        // query interval I start (inclusive)
	End       int64        // query interval I end (inclusive)
	Scorer    score.Scorer // user-specified scoring function
	Algorithm Algorithm    // evaluation strategy; Auto selects S-Hop
	Anchor    Anchor       // window anchoring; default LookBack

	// Lead is the portion of the durability window after the record's
	// arrival when Anchor == General: the window is
	// [p.t - (Tau - Lead), p.t + Lead]. It must be 0 for the other anchors
	// and within [0, Tau] for General.
	Lead int64

	// WithDurations additionally computes, per result record, the maximum
	// duration for which it remains in the top-k (binary search, §II).
	// Only defined for the one-sided anchors (LookBack, LookAhead).
	WithDurations bool
}

// Validation errors returned by Engine.DurableTopK.
var (
	ErrBadK         = errors.New("core: k must be >= 1")
	ErrBadTau       = errors.New("core: tau must be >= 0")
	ErrBadInterval  = errors.New("core: query interval start must be <= end")
	ErrNoScorer     = errors.New("core: query needs a scorer")
	ErrDims         = errors.New("core: scorer dimensionality does not match dataset")
	ErrNotMonotone  = errors.New("core: s-band requires a monotone scorer")
	ErrBadLead      = errors.New("core: lead must be 0 (non-general anchors) or within [0, tau]")
	ErrAnchorUnsupp = errors.New("core: algorithm does not support mid-anchored windows")
)

func (q *Query) validate(dims int) error {
	if q.K < 1 {
		return ErrBadK
	}
	if q.Tau < 0 {
		return ErrBadTau
	}
	if q.Start > q.End {
		return ErrBadInterval
	}
	if q.Scorer == nil {
		return ErrNoScorer
	}
	if q.Scorer.Dims() != dims {
		return fmt.Errorf("%w: scorer wants %d, dataset has %d", ErrDims, q.Scorer.Dims(), dims)
	}
	if q.Anchor == General {
		if q.Lead < 0 || q.Lead > q.Tau {
			return fmt.Errorf("%w: lead %d, tau %d", ErrBadLead, q.Lead, q.Tau)
		}
	} else if q.Lead != 0 {
		return fmt.Errorf("%w: lead %d with %v anchor", ErrBadLead, q.Lead, q.Anchor)
	}
	return nil
}

// ResultRecord is one durable record of a query answer.
type ResultRecord struct {
	ID    int     // record index in the dataset (arrival order)
	Time  int64   // arrival time
	Score float64 // score under the query's scorer

	// MaxDuration is the largest tau' for which the record stays in the
	// top-k, filled only when Query.WithDurations is set (-1 otherwise).
	// When FullHistory is set the record was top-k over all of recorded
	// history on its window side and MaxDuration is truncated at the
	// dataset boundary.
	MaxDuration int64
	FullHistory bool
}

// Stats instruments one query evaluation.
type Stats struct {
	Algorithm      Algorithm
	CheckQueries   int // building-block invocations for durability checks
	FindQueries    int // invocations for candidate discovery (S-Hop, partitions/splits)
	MaintQueries   int // from-scratch recomputations in T-Base's sliding window
	CandidateCount int // |C| for S-Band; sorted-set size for S-Base
	Visited        int // records popped/inspected by the main loop

	// ShardsPruned counts shard visits a ShardedEngine skipped: shards the
	// query router proved cannot own an answer record (their arrivals all
	// fall outside I, however far the durability windows reach), plus
	// cross-shard strictly-higher-count probes skipped because the shard's
	// global score upper bound cannot beat the reference score. Always 0 on
	// a plain Engine.
	ShardsPruned int
	Elapsed      time.Duration
}

// TopKQueries returns the total number of building-block invocations.
func (s Stats) TopKQueries() int { return s.CheckQueries + s.FindQueries + s.MaintQueries }

// Result is a durable top-k answer, ordered by ascending arrival time.
type Result struct {
	Records []ResultRecord
	Stats   Stats
}

// IDs returns the record ids of the answer in ascending time order.
func (r *Result) IDs() []int {
	ids := make([]int, len(r.Records))
	for i, rec := range r.Records {
		ids[i] = rec.ID
	}
	return ids
}

// satSub returns a-b saturating far away from int64 overflow.
func satSub(a, b int64) int64 {
	c := a - b
	if b > 0 && c > a || b < 0 && c < a {
		if b > 0 {
			return math.MinInt64 / 4
		}
		return math.MaxInt64 / 4
	}
	return c
}

// satAdd returns a+b saturating far away from int64 overflow.
func satAdd(a, b int64) int64 {
	c := a + b
	if b > 0 && c < a || b < 0 && c > a {
		if b > 0 {
			return math.MaxInt64 / 4
		}
		return math.MinInt64 / 4
	}
	return c
}
