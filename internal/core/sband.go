package core

import (
	"repro/internal/skyband"
)

// runSBand is the Score-Band algorithm (§IV-B, Algorithm 2): retrieve a
// candidate superset C from the durable k-skyband index (a 3-sided priority
// search tree query I x [tau, +inf)), sort C by score, and sweep with the
// blocking mechanism. Unlike S-Base, records outside C can still outrank
// candidates, so a candidate covered by fewer than k blocking intervals
// needs a durability-check query; the check's top-k set also reveals the
// missing high-score blockers (Fig. 5). Monotone scorers only.
func runSBand(v *view, pr *probe, ladder *skyband.Ladder, q Query, st *Stats) []int32 {
	ds := v.ds
	cands := ladder.Candidates(q.K, q.Start, q.End, q.Tau)
	st.CandidateCount = len(cands)
	if len(cands) == 0 {
		return nil
	}
	// The candidate refs, visited marks, blocking treap and result ids are
	// all carved from the probe's per-query arena (see arena.go).
	a := &pr.a
	a.reset()
	refs := a.scoredRefs(len(cands))
	flat, d := ds.FlatAttrs(), ds.Dims()
	for _, id := range cands {
		i := int(id)
		refs = append(refs, scoredRef{
			id:    id,
			time:  ds.Time(i),
			score: q.Scorer.Score(flat[i*d : (i+1)*d : (i+1)*d]),
		})
	}
	a.refs = refs
	sortScoredDesc(refs)

	blk := a.blocking(q.Tau)
	visited := a.visitedMap()
	res := a.ids
	for _, p := range refs {
		st.Visited++
		if blk.Cover(p.time) < q.K {
			items := v.topk(pr, st, kindCheck, q.Scorer, q.K, satSub(p.time, q.Tau), p.time)
			if v.member(q.Scorer, q.K, items, p.id) {
				res = append(res, p.id)
			} else {
				// Every returned record outranks p; make the discovered
				// blockers visible to future candidates.
				for _, it := range items {
					if !visited[it.ID] {
						visited[it.ID] = true
						blk.Add(it.Time)
					}
				}
			}
		}
		if !visited[p.id] {
			visited[p.id] = true
			blk.Add(p.time)
		}
	}
	a.ids = res
	sortIDs(res)
	return res
}
