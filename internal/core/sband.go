package core

import (
	"repro/internal/blocking"
	"repro/internal/skyband"
)

// runSBand is the Score-Band algorithm (§IV-B, Algorithm 2): retrieve a
// candidate superset C from the durable k-skyband index (a 3-sided priority
// search tree query I x [tau, +inf)), sort C by score, and sweep with the
// blocking mechanism. Unlike S-Base, records outside C can still outrank
// candidates, so a candidate covered by fewer than k blocking intervals
// needs a durability-check query; the check's top-k set also reveals the
// missing high-score blockers (Fig. 5). Monotone scorers only.
func runSBand(v *view, pr *probe, ladder *skyband.Ladder, q Query, st *Stats) []int32 {
	ds := v.ds
	cands := ladder.Candidates(q.K, q.Start, q.End, q.Tau)
	st.CandidateCount = len(cands)
	if len(cands) == 0 {
		return nil
	}
	refs := make([]scoredRef, len(cands))
	for i, id := range cands {
		refs[i] = scoredRef{
			id:    id,
			time:  ds.Time(int(id)),
			score: q.Scorer.Score(ds.Attrs(int(id))),
		}
	}
	sortScoredDesc(refs)

	blk := blocking.NewSet(q.Tau)
	visited := make(map[int32]bool, len(refs)*2)
	var res []int32
	for _, p := range refs {
		st.Visited++
		if blk.Cover(p.time) < q.K {
			items := v.topk(pr, st, kindCheck, q.Scorer, q.K, satSub(p.time, q.Tau), p.time)
			if v.member(q.Scorer, q.K, items, p.id) {
				res = append(res, p.id)
			} else {
				// Every returned record outranks p; make the discovered
				// blockers visible to future candidates.
				for _, it := range items {
					if !visited[it.ID] {
						visited[it.ID] = true
						blk.Add(it.Time)
					}
				}
			}
		}
		if !visited[p.id] {
			visited[p.id] = true
			blk.Add(p.time)
		}
	}
	sortIDs(res)
	return res
}
