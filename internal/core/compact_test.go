package core

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/data"
	"repro/internal/score"
)

// compactLSE builds a live+sharded engine with compaction enabled and fails
// the test on construction errors.
func compactLSE(t *testing.T, d int, so LiveShardOptions) *LiveShardedEngine {
	t.Helper()
	lse, err := NewLiveShardedEngine(d, testEngineOpts(), LiveOptions{}, so)
	if err != nil {
		t.Fatal(err)
	}
	return lse
}

// TestCompactionBoundsShardCount is the headline invariant of the LSM
// lifecycle: on an unbounded append stream the live shard count stays
// O(CompactFanout · log n) instead of growing linearly with the seal count.
func TestCompactionBoundsShardCount(t *testing.T) {
	const n, sealRows = 4096, 8
	lse := compactLSE(t, 1, LiveShardOptions{SealRows: sealRows, CompactFanout: 2})
	for i := 0; i < n; i++ {
		if _, _, err := lse.Append(int64(i+1), []float64{float64(i % 97)}); err != nil {
			t.Fatal(err)
		}
	}
	lse.WaitSealed()
	lse.WaitCompacted()

	seals := n / sealRows // 512 level-0 shards entered the lifecycle
	if lse.Seals() != seals {
		t.Fatalf("Seals = %d, want %d", lse.Seals(), seals)
	}
	// Binary-counter layout: at most a handful of shards per level across
	// log2(seals) levels. Without compaction this would be 512 shards.
	bound := 2 + 2*int(math.Log2(float64(seals)))
	if got := lse.NumShards(); got > bound {
		t.Fatalf("NumShards = %d after %d seals, want O(log n) <= %d", got, seals, bound)
	}
	if lse.Compactions() == 0 {
		t.Fatal("no compactions ran")
	}
	if lse.MaxLevel() < 3 {
		t.Fatalf("MaxLevel = %d, want >= 3 after %d seals at fanout 2", lse.MaxLevel(), seals)
	}
	if lse.Len() != n {
		t.Fatalf("Len = %d, want %d (compaction must not drop rows)", lse.Len(), n)
	}
	// Shards still tile [0, sealed) ascending and carry their levels.
	infos := lse.Shards()
	prev := 0
	maxLevel := 0
	for _, in := range infos {
		if in.Lo != prev {
			t.Fatalf("shard layout has a gap: shard starts at %d, want %d (%+v)", in.Lo, prev, infos)
		}
		prev = in.Hi
		if in.Level > maxLevel {
			maxLevel = in.Level
		}
	}
	if prev != n {
		t.Fatalf("shards tile [0,%d), want [0,%d)", prev, n)
	}
	if maxLevel != lse.MaxLevel() {
		t.Fatalf("ShardInfo max level %d != MaxLevel() %d", maxLevel, lse.MaxLevel())
	}
}

// TestCompactionBitIdentity drives a stream through seal+compaction cycles
// and, at epochs right after merges land, requires every strategy to answer
// bit-identically to a batch engine over the same prefix.
func TestCompactionBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(20260807))
	for _, fanout := range []int{2, 4} {
		for _, flavor := range []string{"clustered", "dense"} {
			t.Run(fmt.Sprintf("fanout=%d/%s", fanout, flavor), func(t *testing.T) {
				const n, d = 320, 2
				ds := diffDataset(rng, flavor, n, d)
				s := randScorer(rng, d)
				lse := compactLSE(t, d, LiveShardOptions{SealRows: 8, CompactFanout: fanout})
				for i := 0; i < n; i++ {
					if _, _, err := lse.Append(ds.Time(i), ds.Attrs(i)); err != nil {
						t.Fatal(err)
					}
					if (i+1)%40 != 0 && i != n-1 {
						continue
					}
					// Quiesce so the queries run against a fully compacted
					// epoch — deterministic merge coverage, unlike the racy
					// mid-flight epochs the stress test exercises.
					lse.WaitSealed()
					lse.WaitCompacted()
					prefix := ds.Prefix(i + 1)
					batch := NewEngine(prefix, testEngineOpts())
					for qi := 0; qi < 2; qi++ {
						q := diffQuery(rng, prefix)
						q.Scorer = s
						for _, alg := range Algorithms() {
							sub := q
							sub.Algorithm = alg
							if q.Anchor == General && q.Lead > 0 && q.Lead < q.Tau && (alg == TBase || alg == SBand) {
								continue
							}
							want, err := batch.DurableTopK(sub)
							if err != nil {
								t.Fatalf("batch %v: %v", alg, err)
							}
							got, err := lse.DurableTopK(sub)
							if err != nil {
								t.Fatalf("compacted %v: %v", alg, err)
							}
							if !reflect.DeepEqual(got.Records, want.Records) {
								t.Fatalf("prefix=%d compactions=%d alg=%v q=%+v:\n got %v\nwant %v",
									i+1, lse.Compactions(), alg, sub, got.Records, want.Records)
							}
						}
					}
				}
				if lse.Compactions() == 0 {
					t.Fatal("schedule never compacted; the test proved nothing")
				}
			})
		}
	}
}

// recordingPartialCache records shard invalidations so tests can assert the
// engine announces every shard that leaves the live set.
type recordingPartialCache struct {
	mu          sync.Mutex
	invalidated [][2]int
	puts        int
}

func (c *recordingPartialCache) GetPartial(key PartialKey) ([]int32, bool) { return nil, false }

func (c *recordingPartialCache) PutPartial(key PartialKey, ids []int32) {
	c.mu.Lock()
	c.puts++
	c.mu.Unlock()
}

func (c *recordingPartialCache) InvalidateShard(lo, hi int) {
	c.mu.Lock()
	c.invalidated = append(c.invalidated, [2]int{lo, hi})
	c.mu.Unlock()
}

func (c *recordingPartialCache) ranges() [][2]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([][2]int(nil), c.invalidated...)
}

// TestCompactionInvalidatesPartialCache: when shards are merged away, every
// constituent's row range is announced through PartialInvalidator so caches
// can drop entries that would otherwise leak forever.
func TestCompactionInvalidatesPartialCache(t *testing.T) {
	pc := &recordingPartialCache{}
	lse := compactLSE(t, 1, LiveShardOptions{SealRows: 8, CompactFanout: 2})
	lse.SetPartialCache(pc)
	for i := 0; i < 16; i++ {
		if _, _, err := lse.Append(int64(i+1), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	lse.WaitSealed()
	lse.WaitCompacted()
	if lse.Compactions() != 1 {
		t.Fatalf("Compactions = %d, want exactly 1", lse.Compactions())
	}
	got := pc.ranges()
	want := [][2]int{{0, 8}, {8, 16}}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("invalidated ranges %v, want %v", got, want)
	}
	// The merged shard is live: exactly one sealed shard covering [0,16) L1.
	infos := lse.Shards()
	if len(infos) != 1 || infos[0].Lo != 0 || infos[0].Hi != 16 || infos[0].Level != 1 {
		t.Fatalf("post-compaction shards = %+v, want one [0,16) level-1 shard", infos)
	}
}

// TestRetainSpanRetires: with a retention span, ancient shards are retired
// from the front, metrics expose the retired row count, invalidations fire,
// and every query over the retained region answers exactly like a batch
// engine over the retained suffix (IDs offset by the retired prefix).
func TestRetainSpanRetires(t *testing.T) {
	const n, sealRows, retain = 240, 10, 60
	pc := &recordingPartialCache{}
	lse := compactLSE(t, 1, LiveShardOptions{SealRows: sealRows, RetainSpan: retain})
	lse.SetPartialCache(pc)
	times := make([]int64, n)
	vals := make([][]float64, n)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < n; i++ {
		times[i] = int64(i + 1) // gap 1: retention cutoff = latest - retain
		vals[i] = []float64{float64(rng.Intn(50))}
		if _, _, err := lse.Append(times[i], vals[i]); err != nil {
			t.Fatal(err)
		}
	}
	lse.WaitSealed()
	lse.WaitCompacted()

	lo := lse.RetiredRows()
	if lo == 0 {
		t.Fatal("nothing retired despite RetainSpan << stream span")
	}
	if lo%sealRows != 0 {
		t.Fatalf("RetiredRows = %d, want a whole-shard multiple of %d", lo, sealRows)
	}
	// Only whole shards whose entire range is older than the cutoff go: the
	// retained suffix always covers [latest-retain, latest].
	if times[lo-1] >= times[n-1]-retain {
		t.Fatalf("retired row %d at t=%d is inside the retention span [%d,%d]",
			lo-1, times[lo-1], times[n-1]-retain, times[n-1])
	}
	if lse.Len() != n {
		t.Fatalf("Len = %d, want %d (retirement is logical; rows stay addressable)", lse.Len(), n)
	}
	// Retired shards announced to the partial cache, one range per shard,
	// tiling exactly [0, lo).
	prev := 0
	for _, r := range pc.ranges() {
		if r[0] != prev {
			t.Fatalf("invalidations %v do not tile the retired prefix", pc.ranges())
		}
		prev = r[1]
	}
	if prev != lo {
		t.Fatalf("invalidations cover [0,%d), want [0,%d)", prev, lo)
	}

	// Differential over the retained region: batch engine over the suffix.
	suffix, err := data.New(times[lo:n:n], vals[lo:n])
	if err != nil {
		t.Fatal(err)
	}
	batch := NewEngine(suffix, testEngineOpts())
	s := score.MustLinear(1)
	for qi := 0; qi < 8; qi++ {
		q := diffQuery(rng, suffix)
		q.Scorer = s
		for _, alg := range Algorithms() {
			sub := q
			sub.Algorithm = alg
			if q.Anchor == General && q.Lead > 0 && q.Lead < q.Tau && (alg == TBase || alg == SBand) {
				continue
			}
			want, err := batch.DurableTopK(sub)
			if err != nil {
				t.Fatalf("batch %v: %v", alg, err)
			}
			got, err := lse.DurableTopK(sub)
			if err != nil {
				t.Fatalf("retained %v: %v", alg, err)
			}
			if len(got.Records) != len(want.Records) {
				t.Fatalf("alg=%v q=%+v: %d records, want %d\n got %v\nwant %v",
					alg, sub, len(got.Records), len(want.Records), got.Records, want.Records)
			}
			for i := range got.Records {
				g, w := got.Records[i], want.Records[i]
				w.ID += lo // suffix-relative -> stream-global
				if !reflect.DeepEqual(g, w) {
					t.Fatalf("alg=%v q=%+v record %d: got %+v want %+v", alg, sub, i, g, w)
				}
			}
		}
	}

	// The durability profile covers exactly the retained rows, IDs global.
	prof, err := lse.DurabilityProfile(3, s, LookBack)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof) != n-lo {
		t.Fatalf("profile over %d rows, want %d retained", len(prof), n-lo)
	}
	for i, r := range prof {
		if r.ID != lo+i {
			t.Fatalf("profile[%d].ID = %d, want global row %d", i, r.ID, lo+i)
		}
	}
}

// TestRetireEverythingThenResume: a long quiet gap can retire every sealed
// shard; the engine must keep answering (empty or tail-only epochs) and
// accept further appends.
func TestRetireEverythingThenResume(t *testing.T) {
	lse := compactLSE(t, 1, LiveShardOptions{SealRows: 4, RetainSpan: 10})
	for i := 0; i < 8; i++ {
		if _, _, err := lse.Append(int64(i+1), []float64{1}); err != nil {
			t.Fatal(err)
		}
	}
	lse.WaitSealed()
	// A record far in the future retires both sealed shards on its seal.
	for i := 0; i < 4; i++ {
		if _, _, err := lse.Append(int64(1000+i), []float64{2}); err != nil {
			t.Fatal(err)
		}
	}
	lse.WaitSealed()
	if lse.RetiredRows() != 8 {
		t.Fatalf("RetiredRows = %d, want 8", lse.RetiredRows())
	}
	s := score.MustLinear(1)
	res, err := lse.DurableTopK(Query{K: 2, Tau: 1, Start: 1000, End: 1003, Scorer: s, Algorithm: SHop})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) == 0 {
		t.Fatal("no answers over the retained suffix")
	}
	for _, r := range res.Records {
		if r.ID < 8 {
			t.Fatalf("answer references retired row %d", r.ID)
		}
	}
	if _, _, err := lse.Append(2000, []float64{3}); err != nil {
		t.Fatalf("append after total retirement: %v", err)
	}
}

// TestCompactionRaceStress hammers the engine with concurrent appends and
// queries while compaction and retention continuously reshape the sealed
// set. Run under -race in CI; correctness of the answers is the differential
// harness's job — here every query must simply succeed against some epoch.
func TestCompactionRaceStress(t *testing.T) {
	const n = 3000
	lse := compactLSE(t, 1, LiveShardOptions{
		SealRows: 16, CompactFanout: 2, RetainSpan: 2000, StraddleThreshold: 1,
	})
	s := score.MustLinear(1)
	// Seed rows so queriers never observe an empty engine.
	for i := 0; i < 32; i++ {
		if _, _, err := lse.Append(int64(i+1), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	var done atomic.Bool
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for !done.Load() {
				latest := int64(lse.Len()) // times are 1..Len, dense
				start := latest - int64(rng.Intn(64))
				if start < 1 {
					start = 1
				}
				q := Query{
					K: 1 + rng.Intn(4), Tau: int64(rng.Intn(40)),
					Start: start, End: latest, Scorer: s,
					Algorithm: Algorithms()[rng.Intn(len(Algorithms()))],
				}
				if rng.Intn(2) == 0 {
					q.Anchor = LookAhead
				}
				if _, err := lse.DurableTopK(q); err != nil {
					errs <- fmt.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for i := 32; i < n; i++ {
		if _, _, err := lse.Append(int64(i+1), []float64{float64(i % 101)}); err != nil {
			t.Fatal(err)
		}
	}
	done.Store(true)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	lse.WaitSealed()
	lse.WaitCompacted()
	if lse.Compactions() == 0 {
		t.Fatal("stress run never compacted")
	}
	if lse.RetiredRows() == 0 {
		t.Fatal("stress run never retired")
	}
}
