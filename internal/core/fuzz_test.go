package core

import (
	"testing"

	"repro/internal/data"
	"repro/internal/score"
	"repro/internal/topk"
)

// FuzzDurableTopK feeds arbitrary byte strings as (timestamps gaps, scores,
// parameters) and cross-checks T-Hop, S-Base and S-Hop against the
// brute-force oracle. Run `go test -fuzz FuzzDurableTopK ./internal/core`
// for continuous fuzzing; the seed corpus below runs as a normal test.
func FuzzDurableTopK(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, uint8(1), uint8(5))
	f.Add([]byte{9, 9, 9, 9, 0, 0, 0}, uint8(2), uint8(1))
	f.Add([]byte{0, 255, 0, 255, 7, 7, 7, 7, 7}, uint8(3), uint8(30))
	f.Add([]byte{255}, uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, kRaw, tauRaw uint8) {
		if len(raw) == 0 || len(raw) > 512 {
			t.Skip()
		}
		// Decode bytes: low nibble = time gap (1..4), high nibble = score.
		b := data.NewBuilder(1, len(raw))
		tt := int64(0)
		for _, by := range raw {
			tt += int64(by&3) + 1
			if err := b.Append(tt, []float64{float64(by >> 4)}); err != nil {
				t.Fatal(err)
			}
		}
		ds, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		k := int(kRaw%8) + 1
		tau := int64(tauRaw)
		lo, hi := ds.Span()
		s := score.MustLinear(1)
		want := BruteForce(ds, s, k, tau, lo, hi, LookBack)
		eng := NewEngine(ds, Options{Index: topk.Options{LengthThreshold: 4}})
		for _, alg := range []Algorithm{THop, SBase, SHop} {
			res, err := eng.DurableTopK(Query{K: k, Tau: tau, Start: lo, End: hi, Scorer: s, Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			got := res.IDs()
			if len(got) != len(want) {
				t.Fatalf("%v: %d records want %d (k=%d tau=%d n=%d)", alg, len(got), len(want), k, tau, ds.Len())
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v: got %v want %v", alg, got, want)
				}
			}
		}
	})
}
