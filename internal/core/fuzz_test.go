package core

import (
	"reflect"
	"testing"

	"repro/internal/data"
	"repro/internal/score"
	"repro/internal/topk"
)

// FuzzDurableTopK feeds arbitrary byte strings as (timestamps gaps, scores,
// parameters) and cross-checks T-Hop, S-Base and S-Hop against the
// brute-force oracle. Run `go test -fuzz FuzzDurableTopK ./internal/core`
// for continuous fuzzing; the seed corpus below runs as a normal test.
func FuzzDurableTopK(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, uint8(1), uint8(5))
	f.Add([]byte{9, 9, 9, 9, 0, 0, 0}, uint8(2), uint8(1))
	f.Add([]byte{0, 255, 0, 255, 7, 7, 7, 7, 7}, uint8(3), uint8(30))
	f.Add([]byte{255}, uint8(1), uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, kRaw, tauRaw uint8) {
		if len(raw) == 0 || len(raw) > 512 {
			t.Skip()
		}
		// Decode bytes: low nibble = time gap (1..4), high nibble = score.
		b := data.NewBuilder(1, len(raw))
		tt := int64(0)
		for _, by := range raw {
			tt += int64(by&3) + 1
			if err := b.Append(tt, []float64{float64(by >> 4)}); err != nil {
				t.Fatal(err)
			}
		}
		ds, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		k := int(kRaw%8) + 1
		tau := int64(tauRaw)
		lo, hi := ds.Span()
		s := score.MustLinear(1)
		want := BruteForce(ds, s, k, tau, lo, hi, LookBack)
		eng := NewEngine(ds, Options{Index: topk.Options{LengthThreshold: 4}})
		for _, alg := range []Algorithm{THop, SBase, SHop} {
			res, err := eng.DurableTopK(Query{K: k, Tau: tau, Start: lo, End: hi, Scorer: s, Algorithm: alg})
			if err != nil {
				t.Fatal(err)
			}
			got := res.IDs()
			if len(got) != len(want) {
				t.Fatalf("%v: %d records want %d (k=%d tau=%d n=%d)", alg, len(got), len(want), k, tau, ds.Len())
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("%v: got %v want %v", alg, got, want)
				}
			}
		}
	})
}

// FuzzLiveAppend fuzzes the live-ingestion invariant: arbitrary append
// streams with queries interleaved at arbitrary points must answer exactly
// like a batch engine rebuilt over the same prefix — and like the
// brute-force oracle. Each input byte is one appended record; the stride
// byte decides how often a query point is injected. Run
// `go test -fuzz FuzzLiveAppend ./internal/core` for continuous fuzzing;
// the seed corpus below runs as a normal test.
func FuzzLiveAppend(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, uint8(1), uint8(5), uint8(1))
	f.Add([]byte{9, 9, 9, 9, 0, 0, 0}, uint8(2), uint8(1), uint8(3))
	f.Add([]byte{0, 255, 0, 255, 7, 7, 7, 7, 7}, uint8(3), uint8(30), uint8(2))
	f.Add([]byte{8, 1, 8, 1, 8, 1, 8, 1, 8, 1, 8, 1}, uint8(2), uint8(200), uint8(4))
	f.Add([]byte{255}, uint8(1), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, kRaw, tauRaw, stride uint8) {
		if len(raw) == 0 || len(raw) > 256 {
			t.Skip()
		}
		k := int(kRaw%8) + 1
		tau := int64(tauRaw)
		every := int(stride%16) + 1
		s := score.MustLinear(1)
		opts := Options{Index: topk.Options{LengthThreshold: 4}}
		le, err := NewLiveEngine(1, opts, LiveOptions{
			MonitorK: k, MonitorTau: tau, MonitorScorer: s,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Decode bytes: low nibble = time gap (1..4), high nibble = score.
		times := make([]int64, 0, len(raw))
		rows := make([][]float64, 0, len(raw))
		tt := int64(0)
		anchors := [2]Anchor{LookBack, LookAhead}
		for i, by := range raw {
			tt += int64(by&3) + 1
			times = append(times, tt)
			rows = append(rows, []float64{float64(by >> 4)})
			dec, _, err := le.Append(tt, rows[i])
			if err != nil {
				t.Fatal(err)
			}
			if (i+1)%every != 0 && i != len(raw)-1 {
				continue
			}
			// Query point: compare live vs batch-rebuilt vs oracle over the
			// prefix appended so far.
			ds, err := data.New(times[:i+1:i+1], rows[:i+1])
			if err != nil {
				t.Fatal(err)
			}
			lo, hi := ds.Span()
			anchor := anchors[(i/every)%2]
			want := BruteForce(ds, s, k, tau, lo, hi, anchor)
			batch := NewEngine(ds, opts)
			q := Query{K: k, Tau: tau, Start: lo, End: hi, Scorer: s, Anchor: anchor, Algorithm: SHop}
			wantRes, err := batch.DurableTopK(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := le.DurableTopK(q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.IDs(), want) && !(len(got.IDs()) == 0 && len(want) == 0) {
				t.Fatalf("live vs oracle at prefix %d: k=%d tau=%d anchor=%v\n got %v\nwant %v",
					i+1, k, tau, anchor, got.IDs(), want)
			}
			if !reflect.DeepEqual(got.Records, wantRes.Records) {
				t.Fatalf("live vs batch at prefix %d: k=%d tau=%d anchor=%v\n got %v\nwant %v",
					i+1, k, tau, anchor, got.Records, wantRes.Records)
			}
			// The instant monitor decision is the look-back verdict for the
			// arriving (latest) record itself, which the oracle's answer
			// over [lo, hi] also contains or omits.
			if anchor == LookBack {
				inAnswer := false
				for _, id := range want {
					if id == i {
						inAnswer = true
					}
				}
				if dec.Durable != inAnswer {
					t.Fatalf("monitor decision for record %d: %v, oracle %v", i, dec.Durable, inAnswer)
				}
			}
		}
	})
}

// FuzzLiveShardedAppend fuzzes the seal/freeze lifecycle invariant: arbitrary
// append streams routed through a LiveShardedEngine under arbitrary (small)
// seal thresholds, with queries interleaved at arbitrary points, must answer
// exactly like a batch engine rebuilt over the same prefix — and like the
// brute-force oracle. cfg bit 4 switches the seal rule from rows to time
// span, bit 5 the straddler path; query points that coincide with a seal
// boundary (the seed corpus pins several) exercise the just-sealed empty
// tail. Run `go test -fuzz FuzzLiveShardedAppend ./internal/core` for
// continuous fuzzing; the seed corpus below runs as a normal test.
func FuzzLiveShardedAppend(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5}, uint8(1), uint8(5), uint8(2), uint8(1))
	f.Add([]byte{9, 9, 9, 9, 0, 0, 0}, uint8(2), uint8(1), uint8(3), uint8(3))
	// Seal boundary pins: sealRows divides the stream length and the query
	// stride, so queries land exactly on freshly sealed (empty-tail) epochs.
	f.Add([]byte{8, 1, 8, 1, 8, 1, 8, 1, 8, 1, 8, 1}, uint8(2), uint8(200), uint8(3), uint8(1))
	f.Add([]byte{0, 255, 0, 255, 7, 7, 7, 7, 7, 16, 32, 64}, uint8(3), uint8(30), uint8(3), uint8(3))
	f.Add([]byte{3, 7, 3, 7, 3, 7, 3, 7, 3, 7, 3, 7, 3, 7, 3, 7}, uint8(1), uint8(4), uint8(1), uint8(32|1))
	// Span-triggered seals (bit 4), tiny span so boundaries are dense.
	f.Add([]byte{240, 16, 240, 16, 240, 16, 240, 16}, uint8(3), uint8(4), uint8(2), uint8(16|2))
	f.Add([]byte{255}, uint8(1), uint8(0), uint8(0), uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, kRaw, tauRaw, sealRaw, cfg uint8) {
		if len(raw) == 0 || len(raw) > 256 {
			t.Skip()
		}
		k := int(kRaw%8) + 1
		tau := int64(tauRaw)
		every := int(cfg%16) + 1
		so := LiveShardOptions{Workers: 1 + int(cfg>>6)}
		if cfg&16 != 0 {
			so.SealSpan = int64(sealRaw%12) + 1
		} else {
			so.SealRows = int(sealRaw%12) + 1
		}
		if cfg&32 != 0 {
			so.StraddleThreshold = 1 // transient straddle-region engines
		} else {
			so.StraddleThreshold = 1 << 30 // per-record cross-shard probes
		}
		s := score.MustLinear(1)
		opts := Options{Index: topk.Options{LengthThreshold: 4}}
		lse, err := NewLiveShardedEngine(1, opts, LiveOptions{}, so)
		if err != nil {
			t.Fatal(err)
		}
		// Decode bytes: low nibble = time gap (1..4), high nibble = score.
		times := make([]int64, 0, len(raw))
		rows := make([][]float64, 0, len(raw))
		tt := int64(0)
		anchors := [2]Anchor{LookBack, LookAhead}
		for i, by := range raw {
			tt += int64(by&3) + 1
			times = append(times, tt)
			rows = append(rows, []float64{float64(by >> 4)})
			if _, _, err := lse.Append(tt, rows[i]); err != nil {
				t.Fatal(err)
			}
			if (i+1)%every != 0 && i != len(raw)-1 {
				continue
			}
			if (i/every)%3 == 2 {
				// Forced seal right before the query: the interval often sits
				// entirely inside the now-empty tail's time range.
				lse.Seal()
			}
			// Query point: live-sharded vs batch-rebuilt vs oracle over the
			// prefix appended so far.
			ds, err := data.New(times[:i+1:i+1], rows[:i+1])
			if err != nil {
				t.Fatal(err)
			}
			lo, hi := ds.Span()
			anchor := anchors[(i/every)%2]
			want := BruteForce(ds, s, k, tau, lo, hi, anchor)
			batch := NewEngine(ds, opts)
			q := Query{K: k, Tau: tau, Start: lo, End: hi, Scorer: s, Anchor: anchor, Algorithm: SHop}
			wantRes, err := batch.DurableTopK(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := lse.DurableTopK(q)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.IDs(), want) && !(len(got.IDs()) == 0 && len(want) == 0) {
				t.Fatalf("live-sharded vs oracle at prefix %d: k=%d tau=%d anchor=%v seals=%d shards=%d\n got %v\nwant %v",
					i+1, k, tau, anchor, lse.Seals(), lse.NumShards(), got.IDs(), want)
			}
			if !reflect.DeepEqual(got.Records, wantRes.Records) {
				t.Fatalf("live-sharded vs batch at prefix %d: k=%d tau=%d anchor=%v seals=%d\n got %v\nwant %v",
					i+1, k, tau, anchor, lse.Seals(), got.Records, wantRes.Records)
			}
		}
	})
}

// FuzzCompaction fuzzes the LSM half of the lifecycle: arbitrary append
// streams under tiny seal thresholds and fanouts 2..5, with retention
// optionally shearing ancient shards off the front (cfg bit 6), must answer
// exactly like a batch engine rebuilt over the retained suffix of the same
// prefix. Queries run right after quiescing the compactor, so they land on
// freshly swapped levels; the seed corpus pins streams whose seal counts sit
// exactly at level boundaries (fanout^i seals), where the cascade chains
// merges back-to-back. Run `go test -fuzz FuzzCompaction ./internal/core`
// for continuous fuzzing; the seed corpus below runs as a normal test.
func FuzzCompaction(f *testing.F) {
	// 8 seals of 2 rows at fanout 2: the 2^3 level boundary — the final seal
	// triggers a three-merge cascade into one level-3 shard.
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}, uint8(2), uint8(5), uint8(0), uint8(0))
	// 9 seals of 1 row at fanout 3: 3^2 boundary, double cascade.
	f.Add([]byte{9, 9, 9, 9, 9, 9, 9, 9, 9}, uint8(1), uint8(3), uint8(16), uint8(1))
	// 4 seals at fanout 4: single wide merge exactly at the boundary.
	f.Add([]byte{8, 1, 8, 1, 8, 1, 8, 1}, uint8(2), uint8(200), uint8(32), uint8(2))
	// One row past a level boundary: a lone level-0 shard trails the merge.
	f.Add([]byte{0, 255, 0, 255, 7, 7, 7, 7, 7, 16}, uint8(3), uint8(30), uint8(0), uint8(1))
	// Retention on (bit 6): tiny span plus large gaps retires mid-stream.
	f.Add([]byte{3, 7, 3, 7, 3, 7, 3, 7, 3, 7, 3, 7, 3, 7, 3, 7}, uint8(1), uint8(4), uint8(64|1), uint8(3))
	f.Add([]byte{255}, uint8(1), uint8(0), uint8(64), uint8(0))
	f.Fuzz(func(t *testing.T, raw []byte, kRaw, tauRaw, cfg, sealRaw uint8) {
		if len(raw) == 0 || len(raw) > 256 {
			t.Skip()
		}
		k := int(kRaw%8) + 1
		tau := int64(tauRaw)
		every := int(cfg%8) + 1
		so := LiveShardOptions{
			SealRows:          int(sealRaw%6) + 1,
			CompactFanout:     2 + int(cfg>>4&3),
			StraddleThreshold: []int{1, 1 << 30}[int(cfg>>3&1)],
		}
		if cfg&64 != 0 {
			so.RetainSpan = 8 + int64(tauRaw%32)
		}
		s := score.MustLinear(1)
		opts := Options{Index: topk.Options{LengthThreshold: 4}}
		lse, err := NewLiveShardedEngine(1, opts, LiveOptions{}, so)
		if err != nil {
			t.Fatal(err)
		}
		// Decode bytes: low nibble = time gap (1..4), high nibble = score.
		times := make([]int64, 0, len(raw))
		rows := make([][]float64, 0, len(raw))
		tt := int64(0)
		anchors := [2]Anchor{LookBack, LookAhead}
		for i, by := range raw {
			tt += int64(by&3) + 1
			times = append(times, tt)
			rows = append(rows, []float64{float64(by >> 4)})
			if _, _, err := lse.Append(tt, rows[i]); err != nil {
				t.Fatal(err)
			}
			if (i+1)%every != 0 && i != len(raw)-1 {
				continue
			}
			// Quiesce: freeze builds and the whole merge cascade land before
			// the query, so it evaluates the compacted level layout.
			lse.WaitSealed()
			lse.WaitCompacted()
			lo := lse.RetiredRows()
			if lo > i {
				continue // everything sealed so far retired; nothing to compare
			}
			ds, err := data.New(times[lo:i+1:i+1], rows[lo:i+1])
			if err != nil {
				t.Fatal(err)
			}
			qlo, qhi := ds.Span()
			anchor := anchors[(i/every)%2]
			want := BruteForce(ds, s, k, tau, qlo, qhi, anchor)
			batch := NewEngine(ds, opts)
			q := Query{K: k, Tau: tau, Start: qlo, End: qhi, Scorer: s, Anchor: anchor, Algorithm: SHop}
			wantRes, err := batch.DurableTopK(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := lse.DurableTopK(q)
			if err != nil {
				t.Fatal(err)
			}
			gotIDs := got.IDs()
			for j := range gotIDs {
				gotIDs[j] -= lo // stream-global -> suffix-relative
			}
			if !reflect.DeepEqual(gotIDs, want) && !(len(gotIDs) == 0 && len(want) == 0) {
				t.Fatalf("compacted vs oracle at prefix %d: k=%d tau=%d anchor=%v fanout=%d retain=%d compactions=%d retired=%d shards=%d\n got %v\nwant %v",
					i+1, k, tau, anchor, so.CompactFanout, so.RetainSpan, lse.Compactions(), lo, lse.NumShards(), gotIDs, want)
			}
			if len(got.Records) != len(wantRes.Records) {
				t.Fatalf("compacted vs batch at prefix %d: %d records want %d", i+1, len(got.Records), len(wantRes.Records))
			}
			for j := range got.Records {
				g, w := got.Records[j], wantRes.Records[j]
				w.ID += lo
				if !reflect.DeepEqual(g, w) {
					t.Fatalf("compacted vs batch at prefix %d record %d: got %+v want %+v (retired=%d)", i+1, j, g, w, lo)
				}
			}
		}
		// Compaction must never lose or duplicate a row: live shards plus
		// the retired prefix tile the whole stream.
		lse.WaitSealed()
		lse.WaitCompacted()
		prev := lse.RetiredRows()
		for _, in := range lse.Shards() {
			if in.Lo != prev {
				t.Fatalf("shard layout gap at %d, want %d: %+v", in.Lo, prev, lse.Shards())
			}
			prev = in.Hi
		}
		if prev != len(raw) {
			t.Fatalf("shards + retired tile [?,%d), want [?,%d)", prev, len(raw))
		}
	})
}

// FuzzShardedQuery fuzzes the shard-boundary invariants of ShardedEngine:
// arbitrary datasets and shard counts against the single-engine and
// brute-force answers, with the interval optionally pinned exactly onto a
// shard boundary arrival and often narrower than one shard. Run
// `go test -fuzz FuzzShardedQuery ./internal/core` for continuous fuzzing;
// the seed corpus below runs as a normal test.
func FuzzShardedQuery(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(1), uint8(5), uint8(3), uint8(0), uint8(0))
	f.Add([]byte{9, 9, 9, 9, 0, 0, 0}, uint8(2), uint8(1), uint8(2), uint8(1), uint8(4))
	f.Add([]byte{0, 255, 0, 255, 7, 7, 7, 7, 7}, uint8(3), uint8(30), uint8(16), uint8(3), uint8(9))
	f.Add([]byte{255, 4, 129}, uint8(1), uint8(0), uint8(1), uint8(7), uint8(2))
	f.Add([]byte{8, 1, 8, 1, 8, 1, 8, 1, 8, 1, 8, 1}, uint8(2), uint8(200), uint8(5), uint8(5), uint8(0))
	// Window-reach edge cases: the interval pinned so the back-reach (cfg
	// bit 5) or lead-reach (cfg bit 5 + look-ahead) lands exactly on a shard
	// boundary arrival — the alignments the reach-based shard pruning must
	// not get wrong by one tick.
	f.Add([]byte{3, 7, 3, 7, 3, 7, 3, 7, 3, 7}, uint8(2), uint8(2), uint8(4), uint8(8|32), uint8(1))
	f.Add([]byte{3, 7, 3, 7, 3, 7, 3, 7, 3, 7}, uint8(2), uint8(3), uint8(4), uint8(8|32|1), uint8(2))
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1, 1}, uint8(1), uint8(1), uint8(6), uint8(8|32|2), uint8(3))
	f.Add([]byte{240, 16, 240, 16, 240, 16, 240, 16}, uint8(3), uint8(4), uint8(3), uint8(8|32|16), uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, kRaw, tauRaw, shardRaw, cfg, pin uint8) {
		if len(raw) == 0 || len(raw) > 512 {
			t.Skip()
		}
		// Decode bytes: low nibble = time gap (1..4), high nibble = score.
		b := data.NewBuilder(1, len(raw))
		tt := int64(0)
		for _, by := range raw {
			tt += int64(by&3) + 1
			if err := b.Append(tt, []float64{float64(by >> 4)}); err != nil {
				t.Fatal(err)
			}
		}
		ds, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		k := int(kRaw%8) + 1
		tau := int64(tauRaw)
		anchor := LookBack
		if cfg&1 != 0 {
			anchor = LookAhead
		}
		straddle := 1 << 30 // per-record cross-shard probes
		if cfg&2 != 0 {
			straddle = 1 // transient straddle-region engines
		}
		se := NewShardedEngine(ds, Options{Index: topk.Options{LengthThreshold: 4}}, ShardOptions{
			Shards:            int(shardRaw%20) + 1,
			Workers:           int(cfg>>2&3) + 1,
			Strategy:          ShardStrategy(cfg >> 4 & 1),
			StraddleThreshold: straddle,
		})

		// The interval: pinned exactly onto a shard-boundary arrival (the
		// hardest alignment), or an arbitrary — often sub-shard-width — cut
		// of the time domain.
		lo, hi := ds.Span()
		var start, end int64
		infos := se.Shards()
		if cfg&8 != 0 {
			in := infos[int(pin)%len(infos)]
			start = in.Start
			if cfg&32 != 0 {
				// Window-reach pin: shift I so the durability window of a
				// record arriving at start reaches exactly to the shard
				// boundary arrival — back-reach for look-back anchors
				// (start = boundary + tau), lead-reach for look-ahead
				// (start = boundary - tau).
				if anchor == LookAhead {
					start = satSub(in.Start, tau)
					if start < lo {
						start = lo
					}
				} else {
					start = satAdd(in.Start, tau)
					if start > hi {
						start = hi
					}
				}
			}
			end = start + int64(pin%16)
			if cfg&16 != 0 {
				end = in.End // exactly one whole shard
			}
			if end > hi {
				end = hi
			}
		} else {
			span := hi - lo
			start = lo + int64(pin)%(span+1)
			end = start + int64(tauRaw)%(span-start+int64(lo)+1)
			if end > hi {
				end = hi
			}
		}
		if start > end {
			start, end = end, start
		}

		s := score.MustLinear(1)
		want := BruteForce(ds, s, k, tau, start, end, anchor)
		q := Query{K: k, Tau: tau, Start: start, End: end, Scorer: s, Anchor: anchor}
		eng := NewEngine(ds, Options{Index: topk.Options{LengthThreshold: 4}})
		single, err := eng.DurableTopK(q)
		if err != nil {
			t.Fatal(err)
		}
		res, err := se.DurableTopK(q)
		if err != nil {
			t.Fatal(err)
		}
		got := res.IDs()
		if len(got) == 0 && len(want) == 0 {
			return
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("sharded (shards=%d straddle=%d) vs oracle: k=%d tau=%d I=[%d,%d] anchor=%v n=%d\n got %v\nwant %v",
				se.NumShards(), straddle, k, tau, start, end, anchor, ds.Len(), got, want)
		}
		if !reflect.DeepEqual(got, single.IDs()) {
			t.Fatalf("sharded vs single engine: got %v want %v", got, single.IDs())
		}
	})
}
