package core

import (
	"sort"

	"repro/internal/blocking"
	"repro/internal/data"
	"repro/internal/score"
)

// DurabilityRecord reports how long one record remained in the top-k of its
// anchored window (§II's "maximum duration", computed in bulk).
type DurabilityRecord struct {
	ID       int
	Time     int64
	Score    float64
	Duration int64
	// FullHistory marks records that stayed top-k across all recorded
	// history on their window side; Duration is then truncated at the
	// dataset boundary.
	FullHistory bool
}

// DurabilityProfile computes, for every record, the maximum tau for which it
// is in the top-k under the scorer, in a single O(n log n) sweep: records
// are processed in descending (score, time) order, and each record's k-th
// most recent strictly-higher-scoring predecessor is located with one
// order-statistic query over the already-processed arrival times. Results
// are in ascending time order.
//
// The sweep is the bulk counterpart of Engine.MaxDuration (binary search per
// record) and powers "most durable records of all time" reports.
func (e *Engine) DurabilityProfile(k int, s score.Scorer, anchor Anchor) ([]DurabilityRecord, error) {
	if k < 1 {
		return nil, ErrBadK
	}
	if s == nil {
		return nil, ErrNoScorer
	}
	if s.Dims() != e.fwd.ds.Dims() {
		return nil, ErrDims
	}
	v := &e.fwd
	if anchor == LookAhead {
		v = e.reversed()
	}
	out := durabilitySweep(v.ds, k, s)
	if anchor == LookAhead {
		out = mirrorProfile(out, e.fwd.ds)
	}
	return out, nil
}

// durabilitySweep is the profile core over an already-oriented dataset (pass
// the time-mirrored dataset for look-ahead windows).
func durabilitySweep(ds *data.Dataset, k int, s score.Scorer) []DurabilityRecord {
	n := ds.Len()
	refs := make([]scoredRef, n)
	for i := 0; i < n; i++ {
		refs[i] = scoredRef{id: int32(i), time: ds.Time(i), score: s.Score(ds.Attrs(i))}
	}
	sortScoredDesc(refs)

	firstTime := ds.Time(0)
	out := make([]DurabilityRecord, n)
	// times holds the arrival times of strictly-higher-scoring records; a
	// zero-length "interval" set is a plain order-statistic multiset.
	times := blocking.NewSet(0)
	for gs := 0; gs < n; {
		// Records with equal scores neither bound each other's durability,
		// so resolve the whole tie group before inserting any member.
		ge := gs
		for ge < n && refs[ge].score == refs[gs].score {
			ge++
		}
		for _, p := range refs[gs:ge] {
			rec := DurabilityRecord{ID: int(p.id), Time: p.time, Score: p.score}
			if tk, ok := times.KthLargestLE(p.time, k); ok {
				rec.Duration = p.time - tk - 1
			} else {
				rec.Duration = p.time - firstTime
				rec.FullHistory = true
			}
			out[p.id] = rec
		}
		for _, p := range refs[gs:ge] {
			times.Add(p.time)
		}
		gs = ge
	}
	return out
}

// mirrorProfile maps a sweep over the mirrored dataset back onto the
// original ids and times, restoring ascending original time order.
func mirrorProfile(out []DurabilityRecord, orig *data.Dataset) []DurabilityRecord {
	n := len(out)
	mapped := make([]DurabilityRecord, n)
	for i := range out {
		r := out[i]
		o := n - 1 - r.ID
		r.ID = o
		r.Time = orig.Time(o)
		mapped[o] = r
	}
	return mapped
}

// MostDurable returns the top-n records by durability under the scorer:
// records that were top-k over their entire recorded history rank first
// (longest span first), then finite durations descending, ties broken by
// recency. This is the "records that stood the test of time" report of the
// paper's introduction.
func (e *Engine) MostDurable(k int, s score.Scorer, anchor Anchor, n int) ([]DurabilityRecord, error) {
	profile, err := e.DurabilityProfile(k, s, anchor)
	if err != nil {
		return nil, err
	}
	return mostDurable(profile, n), nil
}

// mostDurable sorts a profile by the durability report order and truncates
// it to the top n.
func mostDurable(profile []DurabilityRecord, n int) []DurabilityRecord {
	sort.Slice(profile, func(i, j int) bool {
		a, b := profile[i], profile[j]
		if a.FullHistory != b.FullHistory {
			return a.FullHistory
		}
		if a.Duration != b.Duration {
			return a.Duration > b.Duration
		}
		return a.Time > b.Time
	})
	if n > 0 && n < len(profile) {
		profile = profile[:n]
	}
	return profile
}
