package core

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/data"
	"repro/internal/score"
)

// buildRandom returns a dataset with n records whose single attribute is
// drawn from [0, spread); small spreads force heavy score ties.
func buildRandom(tb testing.TB, rng *rand.Rand, n, spread int) *data.Dataset {
	tb.Helper()
	times := make([]int64, n)
	attrs := make([][]float64, n)
	t := int64(0)
	for i := 0; i < n; i++ {
		t += int64(1 + rng.Intn(3)) // irregular arrival gaps
		times[i] = t
		attrs[i] = []float64{float64(rng.Intn(spread))}
	}
	ds, err := data.New(times, attrs)
	if err != nil {
		tb.Fatal(err)
	}
	return ds
}

var anchoredAlgs = []Algorithm{THop, SBase, SHop}

// runAnchored evaluates one General-anchor query with the given algorithm.
func runAnchored(tb testing.TB, eng *Engine, alg Algorithm, s score.Scorer, k int, tau, lead, start, end int64) []int {
	tb.Helper()
	res, err := eng.DurableTopK(Query{
		K: k, Tau: tau, Lead: lead, Start: start, End: end,
		Scorer: s, Algorithm: alg, Anchor: General,
	})
	if err != nil {
		tb.Fatalf("%v (lead=%d tau=%d): %v", alg, lead, tau, err)
	}
	return res.IDs()
}

// TestAnchoredMatchesOracle: all anchor-generic algorithms agree with the
// brute-force oracle across random data, parameters, and leads — including
// tie-heavy score distributions.
func TestAnchoredMatchesOracle(t *testing.T) {
	for _, spread := range []int{1000, 12, 3, 1} {
		rng := rand.New(rand.NewSource(int64(100 + spread)))
		for trial := 0; trial < 8; trial++ {
			n := 120 + rng.Intn(180)
			ds := buildRandom(t, rng, n, spread)
			eng := NewEngine(ds, Options{})
			s := score.MustLinear(1)
			lo, hi := ds.Span()
			for _, k := range []int{1, 2, 5} {
				tau := int64(1 + rng.Intn(int(hi-lo)/2+1))
				lead := int64(rng.Intn(int(tau) + 1))
				want := BruteForceAnchored(ds, s, k, tau, lead, lo, hi)
				for _, alg := range anchoredAlgs {
					got := runAnchored(t, eng, alg, s, k, tau, lead, lo, hi)
					if !equalIntSlices(got, want) {
						t.Fatalf("spread=%d trial=%d %v k=%d tau=%d lead=%d:\n got %v\nwant %v",
							spread, trial, alg, k, tau, lead, got, want)
					}
				}
			}
		}
	}
}

func equalIntSlices(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestAnchoredQuick drives the oracle comparison through testing/quick with
// derived parameters — including restricted query intervals, so hop gaps
// reaching before Start are exercised.
func TestAnchoredQuick(t *testing.T) {
	prop := func(seed int64, kRaw, tauRaw, leadRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		spread := 2 + int((seed%7+7)%7)
		ds := buildRandom(t, rng, 80+int(kRaw)%40*3, spread)
		eng := NewEngine(ds, Options{})
		s := score.MustLinear(1)
		lo, hi := ds.Span()
		// Half the trials query a strict sub-interval of history.
		if seed%2 == 0 {
			span := hi - lo
			lo += span / 4
			hi -= span / 8
		}
		k := 1 + int(kRaw)%6
		tau := 1 + int64(tauRaw)%(hi-lo)
		lead := int64(leadRaw) % (tau + 1)
		want := BruteForceAnchored(ds, s, k, tau, lead, lo, hi)
		for _, alg := range anchoredAlgs {
			got := runAnchored(t, eng, alg, s, k, tau, lead, lo, hi)
			if !equalIntSlices(got, want) {
				t.Logf("seed=%d alg=%v k=%d tau=%d lead=%d I=[%d,%d]: got %v want %v",
					seed, alg, k, tau, lead, lo, hi, got, want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestAnchoredSubIntervalGapClip is the regression test for hop gaps that
// reach before the query interval: a record tying the k-th score just
// before Start must never surface in the answer.
func TestAnchoredSubIntervalGapClip(t *testing.T) {
	for _, spread := range []int{2, 4} {
		rng := rand.New(rand.NewSource(int64(spread) * 31))
		for trial := 0; trial < 12; trial++ {
			ds := buildRandom(t, rng, 150, spread)
			eng := NewEngine(ds, Options{})
			s := score.MustLinear(1)
			lo, hi := ds.Span()
			span := hi - lo
			start, end := lo+span/3, hi-span/10
			tau := 2 + int64(rng.Intn(int(span)/2))
			lead := int64(rng.Intn(int(tau) + 1))
			want := BruteForceAnchored(ds, s, 2, tau, lead, start, end)
			for _, alg := range anchoredAlgs {
				got := runAnchored(t, eng, alg, s, 2, tau, lead, start, end)
				if !equalIntSlices(got, want) {
					t.Fatalf("spread=%d trial=%d %v tau=%d lead=%d I=[%d,%d]:\n got %v\nwant %v",
						spread, trial, alg, tau, lead, start, end, got, want)
				}
				for _, id := range got {
					if tm := ds.Time(id); tm < start || tm > end {
						t.Fatalf("%v returned record %d at t=%d outside I=[%d,%d]",
							alg, id, tm, start, end)
					}
				}
			}
		}
	}
}

// TestAnchoredLeadZeroEqualsLookBack: the degenerate leads must collapse
// exactly onto the specialized end-anchored paths.
func TestAnchoredLeadBoundaries(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := buildRandom(t, rng, 250, 9)
	eng := NewEngine(ds, Options{})
	s := score.MustLinear(1)
	lo, hi := ds.Span()
	const tau = 31

	back, err := eng.DurableTopK(Query{K: 2, Tau: tau, Start: lo, End: hi, Scorer: s, Anchor: LookBack})
	if err != nil {
		t.Fatal(err)
	}
	gen0, err := eng.DurableTopK(Query{K: 2, Tau: tau, Lead: 0, Start: lo, End: hi, Scorer: s, Anchor: General})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gen0.IDs(), back.IDs()) {
		t.Errorf("General(lead=0) %v != LookBack %v", gen0.IDs(), back.IDs())
	}

	ahead, err := eng.DurableTopK(Query{K: 2, Tau: tau, Start: lo, End: hi, Scorer: s, Anchor: LookAhead})
	if err != nil {
		t.Fatal(err)
	}
	genT, err := eng.DurableTopK(Query{K: 2, Tau: tau, Lead: tau, Start: lo, End: hi, Scorer: s, Anchor: General})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(genT.IDs(), ahead.IDs()) {
		t.Errorf("General(lead=tau) %v != LookAhead %v", genT.IDs(), ahead.IDs())
	}
}

// TestAnchoredCentered sanity-checks the symmetric window on a crafted
// sequence: a strict local maximum is durable around its own arrival.
func TestAnchoredCentered(t *testing.T) {
	// Scores: a pyramid peaking at t=6.
	times := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	vals := []float64{1, 2, 3, 4, 5, 6, 5, 4, 3, 2, 1}
	attrs := make([][]float64, len(vals))
	for i, v := range vals {
		attrs[i] = []float64{v}
	}
	ds, err := data.New(times, attrs)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(ds, Options{})
	s := score.MustLinear(1)
	// Window [t-2, t+2], k=1: only the peak dominates its window; every
	// other record is adjacent to a strictly higher neighbour.
	res := runAnchored(t, eng, THop, s, 1, 4, 2, 1, 11)
	if len(res) != 1 || ds.Time(res[0]) != 6 {
		t.Fatalf("centered top-1 = %v, want the single peak at t=6", res)
	}
	// k=2 admits the peak's flanks at distance > their dominators... verify
	// against the oracle rather than hand-enumerating.
	want := BruteForceAnchored(ds, s, 2, 4, 2, 1, 11)
	got := runAnchored(t, eng, SHop, s, 2, 4, 2, 1, 11)
	if !equalIntSlices(got, want) {
		t.Fatalf("centered top-2 = %v, want %v", got, want)
	}
}

// TestAnchoredTieFlood exercises the all-equal-score degenerate case, where
// every record is durable and hop shortcuts must not skip any of them.
func TestAnchoredTieFlood(t *testing.T) {
	n := 160
	times := make([]int64, n)
	attrs := make([][]float64, n)
	for i := 0; i < n; i++ {
		times[i] = int64(i + 1)
		attrs[i] = []float64{7} // all tie
	}
	ds, err := data.New(times, attrs)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(ds, Options{})
	s := score.MustLinear(1)
	for _, alg := range anchoredAlgs {
		got := runAnchored(t, eng, alg, s, 1, 20, 10, 1, int64(n))
		if len(got) != n {
			t.Errorf("%v: tie flood returned %d records, want all %d", alg, len(got), n)
		}
	}
}

// TestAnchoredValidation covers Lead validation and unsupported algorithm /
// option combinations.
func TestAnchoredValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ds := buildRandom(t, rng, 50, 10)
	eng := NewEngine(ds, Options{})
	s := score.MustLinear(1)
	lo, hi := ds.Span()

	base := Query{K: 1, Tau: 10, Start: lo, End: hi, Scorer: s}

	q := base
	q.Anchor, q.Lead = General, -1
	if _, err := eng.DurableTopK(q); !errors.Is(err, ErrBadLead) {
		t.Errorf("negative lead: got %v, want ErrBadLead", err)
	}
	q.Lead = 11
	if _, err := eng.DurableTopK(q); !errors.Is(err, ErrBadLead) {
		t.Errorf("lead > tau: got %v, want ErrBadLead", err)
	}
	q = base
	q.Lead = 3 // non-general anchor must keep Lead == 0
	if _, err := eng.DurableTopK(q); !errors.Is(err, ErrBadLead) {
		t.Errorf("lead with LookBack: got %v, want ErrBadLead", err)
	}

	q = base
	q.Anchor, q.Lead, q.Algorithm = General, 5, TBase
	if _, err := eng.DurableTopK(q); !errors.Is(err, ErrAnchorUnsupp) {
		t.Errorf("T-Base mid-anchored: got %v, want ErrAnchorUnsupp", err)
	}
	q.Algorithm = SBand
	if _, err := eng.DurableTopK(q); !errors.Is(err, ErrAnchorUnsupp) {
		t.Errorf("S-Band mid-anchored: got %v, want ErrAnchorUnsupp", err)
	}
	q = base
	q.Anchor, q.Lead, q.WithDurations = General, 5, true
	if _, err := eng.DurableTopK(q); !errors.Is(err, ErrAnchorUnsupp) {
		t.Errorf("WithDurations mid-anchored: got %v, want ErrAnchorUnsupp", err)
	}

	// End-anchored General queries remain fully supported by every
	// algorithm, including T-Base and S-Band.
	q = base
	q.Anchor, q.Lead, q.Algorithm = General, 0, TBase
	if _, err := eng.DurableTopK(q); err != nil {
		t.Errorf("T-Base with General(lead=0): %v", err)
	}
	q.Algorithm, q.Lead = SBand, 10
	if _, err := eng.DurableTopK(q); err != nil {
		t.Errorf("S-Band with General(lead=tau): %v", err)
	}
}

// TestAnchoredStats: the mid-anchored algorithms keep reporting meaningful
// instrumentation.
func TestAnchoredStats(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ds := buildRandom(t, rng, 300, 50)
	eng := NewEngine(ds, Options{})
	s := score.MustLinear(1)
	lo, hi := ds.Span()
	for _, alg := range []Algorithm{THop, SHop} {
		res, err := eng.DurableTopK(Query{
			K: 3, Tau: 40, Lead: 13, Start: lo, End: hi,
			Scorer: s, Algorithm: alg, Anchor: General,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats.TopKQueries() == 0 {
			t.Errorf("%v: no building-block queries recorded", alg)
		}
		if res.Stats.Visited == 0 {
			t.Errorf("%v: no visits recorded", alg)
		}
		if res.Stats.Algorithm != alg {
			t.Errorf("stats algorithm = %v, want %v", res.Stats.Algorithm, alg)
		}
	}
}

// TestAnchoredGapScanEfficiency: on tie-free data the general T-Hop must
// stay output-sensitive — the check count may not degenerate to one per
// record in I.
func TestAnchoredGapScanEfficiency(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	n := 4000
	times := make([]int64, n)
	attrs := make([][]float64, n)
	perm := rng.Perm(n) // all-distinct scores: random permutation model
	for i := 0; i < n; i++ {
		times[i] = int64(i + 1)
		attrs[i] = []float64{float64(perm[i])}
	}
	ds, err := data.New(times, attrs)
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine(ds, Options{})
	s := score.MustLinear(1)
	res, err := eng.DurableTopK(Query{
		K: 2, Tau: 400, Lead: 150, Start: 1, End: int64(n),
		Scorer: s, Algorithm: THop, Anchor: General,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Lemma-1-style budget: |S| + k*ceil(|I|/tau) with slack for the
	// two-sided window bookkeeping.
	budget := 4 * (len(res.Records) + 2*(n/400+1))
	if res.Stats.CheckQueries > budget {
		t.Errorf("general T-Hop issued %d checks for |S|=%d (budget %d): hop not effective",
			res.Stats.CheckQueries, len(res.Records), budget)
	}
}
