package core

import (
	"repro/internal/data"
	"repro/internal/score"
)

// BruteForce evaluates DurTop(k, I, tau) directly from the definition (§II):
// record p is tau-durable iff fewer than k records in its anchored window
// score strictly higher. O(n·w) time; the reference oracle for tests and the
// slowest baseline in the benchmarks. For mid-anchored windows pass General
// and use BruteForceAnchored.
func BruteForce(ds *data.Dataset, s score.Scorer, k int, tau, start, end int64, anchor Anchor) []int {
	lead := int64(0)
	if anchor == LookAhead {
		lead = tau
	}
	return BruteForceAnchored(ds, s, k, tau, lead, start, end)
}

// BruteForceAnchored is BruteForce for the general anchor of §II: each
// record p is assessed over the window [p.t - (tau - lead), p.t + lead].
func BruteForceAnchored(ds *data.Dataset, s score.Scorer, k int, tau, lead, start, end int64) []int {
	scores := make([]float64, ds.Len())
	for i := range scores {
		scores[i] = s.Score(ds.Attrs(i))
	}
	back := tau - lead
	var res []int
	lo, hi := ds.IndexRange(start, end)
	for i := lo; i < hi; i++ {
		t := ds.Time(i)
		wlo, whi := ds.IndexRange(satSub(t, back), satAdd(t, lead))
		higher := 0
		for j := wlo; j < whi; j++ {
			if scores[j] > scores[i] {
				higher++
				if higher >= k {
					break
				}
			}
		}
		if higher < k {
			res = append(res, i)
		}
	}
	return res
}

// BruteMaxDuration computes the exact maximum durability of record id by a
// linear backward (or forward, for LookAhead) scan; the oracle for
// Engine.MaxDuration.
func BruteMaxDuration(ds *data.Dataset, s score.Scorer, k int, id int, anchor Anchor) (int64, bool) {
	base := s.Score(ds.Attrs(id))
	higher := 0
	if anchor == LookBack {
		for j := id - 1; j >= 0; j-- {
			if s.Score(ds.Attrs(j)) > base {
				higher++
				if higher == k {
					return ds.Time(id) - ds.Time(j) - 1, false
				}
			}
		}
		return ds.Time(id) - ds.Time(0), true
	}
	for j := id + 1; j < ds.Len(); j++ {
		if s.Score(ds.Attrs(j)) > base {
			higher++
			if higher == k {
				return ds.Time(j) - ds.Time(id) - 1, false
			}
		}
	}
	return ds.Time(ds.Len()-1) - ds.Time(id), true
}
