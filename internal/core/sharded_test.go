package core

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/score"
	"repro/internal/topk"
)

func testShardOpts(shards int, strategy ShardStrategy, straddle int) ShardOptions {
	return ShardOptions{Shards: shards, Workers: 2, Strategy: strategy, StraddleThreshold: straddle}
}

func testEngineOpts() Options {
	return Options{Index: topk.Options{LengthThreshold: 8, MaxNodeSkyline: 8}}
}

// TestShardCuts checks the partition invariants of both strategies: cuts
// cover [0, n) with non-empty ascending ranges.
func TestShardCuts(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(500)
		ds := randDataset(rng, n, 1, false)
		for _, strategy := range []ShardStrategy{ByCount, ByTimeSpan} {
			for _, count := range []int{1, 2, 3, 7, 16, n, n + 5} {
				cuts := shardCuts(ds, count, strategy)
				if cuts[0] != 0 || cuts[len(cuts)-1] != n {
					t.Fatalf("%v shards=%d n=%d: cuts %v do not span [0,%d]", strategy, count, n, cuts, n)
				}
				for i := 1; i < len(cuts); i++ {
					if cuts[i] <= cuts[i-1] {
						t.Fatalf("%v shards=%d n=%d: non-increasing cuts %v", strategy, count, n, cuts)
					}
				}
				if len(cuts)-1 > count {
					t.Fatalf("%v: %d shards from request of %d", strategy, len(cuts)-1, count)
				}
			}
		}
	}
}

// TestShardedMatchesBruteForce drives the sharded engine across shard
// counts, strategies, straddle paths and anchors against the oracle.
func TestShardedMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		n := 30 + rng.Intn(300)
		d := 1 + rng.Intn(3)
		ds := randDataset(rng, n, d, trial%3 == 0)
		s := randScorer(rng, d)
		lo, hi := ds.Span()
		span := hi - lo

		for qi := 0; qi < 3; qi++ {
			k := 1 + rng.Intn(5)
			tau := int64(rng.Intn(int(span) + 2))
			start := lo + int64(rng.Intn(int(span)+1))
			end := start + int64(rng.Intn(int(hi-start)+1))
			anchor := []Anchor{LookBack, LookAhead, General}[qi%3]
			lead := int64(0)
			if anchor == General && tau > 0 {
				lead = int64(rng.Intn(int(tau + 1)))
			}
			var want []int
			if anchor == General {
				want = BruteForceAnchored(ds, s, k, tau, lead, start, end)
			} else {
				want = BruteForce(ds, s, k, tau, start, end, anchor)
			}
			for _, shards := range []int{1, 2, 7, 16} {
				for _, straddle := range []int{1 << 30, 1} { // per-record probes vs transient engines
					se := NewShardedEngine(ds, testEngineOpts(), testShardOpts(shards, ShardStrategy(trial%2), straddle))
					res, err := se.DurableTopK(Query{
						K: k, Tau: tau, Lead: lead, Start: start, End: end,
						Scorer: s, Anchor: anchor,
					})
					if err != nil {
						t.Fatalf("trial %d shards=%d: %v", trial, shards, err)
					}
					got := res.IDs()
					if len(got) == 0 && len(want) == 0 {
						continue
					}
					if !reflect.DeepEqual(got, want) {
						t.Fatalf("trial %d shards=%d straddle=%d anchor=%v k=%d tau=%d lead=%d I=[%d,%d] n=%d:\n got %v\nwant %v",
							trial, shards, straddle, anchor, k, tau, lead, start, end, n, got, want)
					}
				}
			}
		}
	}
}

// TestShardedBoundaryAnchors pins the hard cases called out by the scale-out
// design: query intervals narrower than one shard, intervals and durability
// windows anchored exactly on shard boundary times, and tau wider than a
// whole shard.
func TestShardedBoundaryAnchors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ds := randDataset(rng, 240, 2, false)
	s := randScorer(rng, 2)
	for _, shards := range []int{2, 4, 7} {
		for _, strategy := range []ShardStrategy{ByCount, ByTimeSpan} {
			se := NewShardedEngine(ds, testEngineOpts(), testShardOpts(shards, strategy, 4))
			eng := NewEngine(ds, testEngineOpts())
			infos := se.Shards()
			type qcase struct {
				start, end, tau int64
				anchor          Anchor
			}
			var cases []qcase
			for _, in := range infos {
				// Window length exactly the distance to the boundary, query
				// pinned on the boundary record, and a one-record interval.
				cases = append(cases,
					qcase{in.Start, in.Start, 25, LookBack},
					qcase{in.Start, in.End, in.End - in.Start, LookBack},
					qcase{in.End, in.End, 25, LookAhead},
					qcase{in.Start, in.Start + (in.End-in.Start)/8, ds.TimeSpan(), LookBack},
					qcase{in.Start, in.End, ds.TimeSpan() / 2, LookAhead},
				)
			}
			for ci, c := range cases {
				for _, k := range []int{1, 3} {
					q := Query{K: k, Tau: c.tau, Start: c.start, End: c.end, Scorer: s, Anchor: c.anchor}
					want, err := eng.DurableTopK(q)
					if err != nil {
						t.Fatal(err)
					}
					got, err := se.DurableTopK(q)
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got.IDs(), want.IDs()) {
						t.Fatalf("shards=%d strategy=%v case=%d k=%d (tau=%d I=[%d,%d] anchor=%v):\n got %v\nwant %v",
							shards, strategy, ci, k, c.tau, c.start, c.end, c.anchor, got.IDs(), want.IDs())
					}
				}
			}
		}
	}
}

// TestShardedWithDurations compares per-record maximum durabilities against
// the single-engine evaluation on both anchors.
func TestShardedWithDurations(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ds := randDataset(rng, 180, 2, true)
	s := randScorer(rng, 2)
	lo, hi := ds.Span()
	eng := NewEngine(ds, testEngineOpts())
	se := NewShardedEngine(ds, testEngineOpts(), testShardOpts(5, ByCount, 8))
	for _, anchor := range []Anchor{LookBack, LookAhead} {
		q := Query{K: 2, Tau: 30, Start: lo, End: hi, Scorer: s, Anchor: anchor, WithDurations: true}
		want, err := eng.DurableTopK(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := se.DurableTopK(q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Records) != len(want.Records) {
			t.Fatalf("%v: %d records want %d", anchor, len(got.Records), len(want.Records))
		}
		for i := range got.Records {
			g, w := got.Records[i], want.Records[i]
			if g.ID != w.ID || g.MaxDuration != w.MaxDuration || g.FullHistory != w.FullHistory {
				t.Fatalf("%v record %d: got %+v want %+v", anchor, i, g, w)
			}
		}
	}
}

// TestShardedAlgorithmsAndErrors checks explicit strategy selection and the
// validation/rejection parity with Engine.
func TestShardedAlgorithmsAndErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ds := randDataset(rng, 150, 2, false)
	s := randScorer(rng, 2)
	lo, hi := ds.Span()
	se := NewShardedEngine(ds, testEngineOpts(), testShardOpts(4, ByCount, 8))
	want := BruteForce(ds, s, 3, 40, lo, hi, LookBack)
	for _, alg := range Algorithms() {
		res, err := se.DurableTopK(Query{K: 3, Tau: 40, Start: lo, End: hi, Scorer: s, Algorithm: alg})
		if err != nil {
			t.Fatalf("%v: %v", alg, err)
		}
		if got := res.IDs(); !(len(got) == 0 && len(want) == 0) && !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: got %v want %v", alg, got, want)
		}
		if res.Stats.Algorithm != alg {
			t.Fatalf("stats algorithm %v, want %v", res.Stats.Algorithm, alg)
		}
	}

	if _, err := se.DurableTopK(Query{K: 0, Tau: 1, Start: lo, End: hi, Scorer: s}); err == nil {
		t.Fatal("k=0 accepted")
	}
	nonMono, err := score.NewCosine([]float64{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := se.DurableTopK(Query{K: 1, Tau: 1, Start: lo, End: hi, Scorer: nonMono, Algorithm: SBand}); err == nil {
		t.Fatal("s-band accepted a non-monotone scorer")
	}
	if _, err := se.DurableTopK(Query{K: 1, Tau: 10, Lead: 5, Start: lo, End: hi, Scorer: s, Anchor: General, Algorithm: TBase}); err == nil {
		t.Fatal("t-base accepted a mid-anchored window")
	}
	if _, err := se.DurableTopK(Query{K: 1, Tau: 10, Lead: 5, Start: lo, End: hi, Scorer: s, Anchor: General, WithDurations: true}); err == nil {
		t.Fatal("WithDurations accepted for a mid-anchored window")
	}
}

// TestShardedProfileAndExplain checks the Querier surface beyond plain
// queries: durability profiles, most-durable reports and planning.
func TestShardedProfileAndExplain(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	ds := randDataset(rng, 160, 2, false)
	s := randScorer(rng, 2)
	eng := NewEngine(ds, testEngineOpts())
	se := NewShardedEngine(ds, testEngineOpts(), testShardOpts(3, ByTimeSpan, 8))
	for _, anchor := range []Anchor{LookBack, LookAhead} {
		want, err := eng.MostDurable(2, s, anchor, 5)
		if err != nil {
			t.Fatal(err)
		}
		got, err := se.MostDurable(2, s, anchor, 5)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: most-durable mismatch\n got %+v\nwant %+v", anchor, got, want)
		}
	}
	lo, hi := ds.Span()
	plan, err := se.Explain(Query{K: 3, Tau: 20, Start: lo, End: hi, Scorer: s})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Chosen.String() == "" {
		t.Fatal("empty plan")
	}
}

// TestShardedConcurrentQueries hammers one sharded engine from many
// goroutines; run with -race to verify the fan-out pool and the lazily built
// per-shard reversed views.
func TestShardedConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(404))
	ds := randDataset(rng, 300, 2, false)
	s := randScorer(rng, 2)
	lo, hi := ds.Span()
	se := NewShardedEngine(ds, testEngineOpts(), testShardOpts(4, ByCount, 4))
	wantBack := BruteForce(ds, s, 3, 25, lo, hi, LookBack)
	wantAhead := BruteForce(ds, s, 3, 25, lo, hi, LookAhead)
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			anchor, want := LookBack, wantBack
			if g%2 == 1 {
				anchor, want = LookAhead, wantAhead
			}
			res, err := se.DurableTopK(Query{K: 3, Tau: 25, Start: lo, End: hi, Scorer: s, Anchor: anchor})
			if err != nil {
				errs <- err.Error()
				return
			}
			got := res.IDs()
			if len(got) == 0 && len(want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, want) {
				errs <- anchor.String() + " disagreed under concurrency"
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
