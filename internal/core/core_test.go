package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/data"
	"repro/internal/score"
	"repro/internal/topk"
)

// randDataset builds a dataset with random gaps and attribute values; with
// probability tieProb each attribute is drawn from a tiny integer domain to
// force heavy score ties.
func randDataset(rng *rand.Rand, n, d int, ties bool) *data.Dataset {
	times := make([]int64, n)
	t := int64(rng.Intn(5))
	rows := make([][]float64, n)
	for i := 0; i < n; i++ {
		times[i] = t
		t += int64(1 + rng.Intn(4))
		row := make([]float64, d)
		for j := range row {
			if ties {
				row[j] = float64(rng.Intn(4))
			} else {
				row[j] = rng.Float64() * 100
			}
		}
		rows[i] = row
	}
	return data.MustNew(times, rows)
}

func randScorer(rng *rand.Rand, d int) score.Scorer {
	w := make([]float64, d)
	for i := range w {
		w[i] = rng.Float64()
	}
	s, err := score.NewLinear(w)
	if err != nil {
		panic(err)
	}
	return s
}

func TestAlgorithmsAgreeWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		n := 20 + rng.Intn(300)
		d := 1 + rng.Intn(4)
		ties := trial%3 == 0
		ds := randDataset(rng, n, d, ties)
		s := randScorer(rng, d)
		eng := NewEngine(ds, Options{Index: topk.Options{LengthThreshold: 8, MaxNodeSkyline: 8}})

		lo, hi := ds.Span()
		span := hi - lo
		for qi := 0; qi < 4; qi++ {
			k := 1 + rng.Intn(6)
			tau := int64(rng.Intn(int(span) + 2))
			start := lo + int64(rng.Intn(int(span)+1))
			end := start + int64(rng.Intn(int(hi-start)+1))
			anchor := LookBack
			if qi%2 == 1 {
				anchor = LookAhead
			}
			want := BruteForce(ds, s, k, tau, start, end, anchor)
			for _, alg := range Algorithms() {
				q := Query{K: k, Tau: tau, Start: start, End: end, Scorer: s, Algorithm: alg, Anchor: anchor}
				res, err := eng.DurableTopK(q)
				if err != nil {
					t.Fatalf("trial %d %v: %v", trial, alg, err)
				}
				got := res.IDs()
				if len(got) == 0 && len(want) == 0 {
					continue
				}
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("trial %d alg=%v anchor=%v n=%d d=%d k=%d tau=%d I=[%d,%d] ties=%v:\n got %v\nwant %v",
						trial, alg, anchor, n, d, k, tau, start, end, ties, got, want)
				}
			}
		}
	}
}

func TestMaxDurationMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 30 + rng.Intn(200)
		d := 1 + rng.Intn(3)
		ds := randDataset(rng, n, d, trial%2 == 0)
		s := randScorer(rng, d)
		eng := NewEngine(ds, Options{Index: topk.Options{LengthThreshold: 4}})
		for probe := 0; probe < 10; probe++ {
			id := rng.Intn(n)
			k := 1 + rng.Intn(4)
			anchor := LookBack
			if probe%2 == 1 {
				anchor = LookAhead
			}
			wantDur, wantFull := BruteMaxDuration(ds, s, k, id, anchor)
			gotDur, gotFull := eng.MaxDuration(id, k, s, anchor)
			if gotDur != wantDur || gotFull != wantFull {
				t.Fatalf("trial %d id=%d k=%d anchor=%v: got (%d,%v) want (%d,%v)",
					trial, id, k, anchor, gotDur, gotFull, wantDur, wantFull)
			}
		}
	}
}
