package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/score"
	"repro/internal/topk"
)

// TestRunSHopZeroAllocs asserts the arena acceptance criterion directly:
// once the probe's arena, scratch and buffers are warm, a full S-Hop
// evaluation — prefetch queries, heap processing, durability checks,
// blocking treap, result collection — performs zero allocations.
func TestRunSHopZeroAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	ds := randDataset(rng, 4096, 2, false)
	eng := NewEngine(ds, Options{})
	lo, hi := ds.Span()
	span := hi - lo
	q := Query{
		K: 10, Tau: span / 20,
		Start: lo + span/10, End: hi - span/10,
		Scorer: score.MustLinear(0.3, 0.7), Algorithm: SHop,
	}
	v := &eng.fwd
	pr := newProbe()
	defer pr.release()
	var st Stats
	// Warm the arena, scratch and map storage.
	want := runSHop(v, pr, q, &st)
	if len(want) == 0 {
		t.Fatal("workload answers nothing; pick a different query shape")
	}
	got := make([]int32, len(want))
	copy(got, want)
	for i := 0; i < 5; i++ {
		runSHop(v, pr, q, &st)
	}
	allocs := testing.AllocsPerRun(100, func() {
		st = Stats{}
		res := runSHop(v, pr, q, &st)
		if len(res) != len(got) {
			t.Fatalf("steady-state answer drifted: %d records, want %d", len(res), len(got))
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state S-Hop evaluation allocates %.1f times, want 0", allocs)
	}
	// The arena-backed answer must still be the same answer.
	res := runSHop(v, pr, q, &st)
	if !reflect.DeepEqual(res, got) {
		t.Fatalf("arena reuse corrupted the answer: got %v want %v", res, got)
	}
}

// TestArenaKeepPreservesLists checks the carve-by-append contract: lists
// carved before an arena growth stay intact after it (growth swaps in a
// fresh backing array instead of copying the old one), and heap entries keep
// stable addresses across chunk growth.
func TestArenaKeepPreservesLists(t *testing.T) {
	var a arena
	a.reset()
	rng := rand.New(rand.NewSource(67))
	var want [][]topk.Item
	var got [][]topk.Item
	var entries []*shopEntry
	for round := 0; round < 300; round++ {
		n := 1 + rng.Intn(40)
		src := make([]topk.Item, n)
		for i := range src {
			src[i] = topk.Item{ID: int32(round), Time: int64(i), Score: rng.Float64()}
		}
		kept := a.keep(src)
		e := a.newEntry()
		e.items, e.lo, e.hi = kept, int64(round), int64(round)+1
		want = append(want, src)
		got = append(got, kept)
		entries = append(entries, e)
	}
	for i := range want {
		if !reflect.DeepEqual(want[i], got[i]) {
			t.Fatalf("list %d corrupted by later growth", i)
		}
		if !reflect.DeepEqual(entries[i].items, want[i]) || entries[i].lo != int64(i) {
			t.Fatalf("entry %d corrupted by chunk growth", i)
		}
	}
	// Reset frees wholesale; the next query reuses the storage from scratch.
	a.reset()
	if len(a.items) != 0 || a.entryN != 0 {
		t.Fatal("reset must empty the arena")
	}
	if a.keep(want[0]); !reflect.DeepEqual(a.items[:len(want[0])], want[0]) {
		t.Fatal("arena unusable after reset")
	}
}
