package core

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"repro/internal/topk"
)

// TestConcurrentQueries exercises the engine's concurrency contract: many
// goroutines querying one engine, including the lazily built reversed view
// and skyband ladders. Run with -race to verify the locking.
func TestConcurrentQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(303))
	ds := randDataset(rng, 400, 2, false)
	eng := NewEngine(ds, Options{Index: topk.Options{LengthThreshold: 16}})
	lo, hi := ds.Span()
	s := randScorer(rng, 2)

	type job struct {
		alg    Algorithm
		anchor Anchor
	}
	var jobs []job
	for _, alg := range Algorithms() {
		jobs = append(jobs, job{alg, LookBack}, job{alg, LookAhead})
	}

	// Precompute expected answers sequentially.
	want := map[job][]int{}
	for _, j := range jobs {
		want[j] = BruteForce(ds, s, 3, 20, lo, hi, j.anchor)
	}

	var wg sync.WaitGroup
	errs := make(chan string, len(jobs)*4)
	for round := 0; round < 4; round++ {
		for _, j := range jobs {
			wg.Add(1)
			go func(j job) {
				defer wg.Done()
				res, err := eng.DurableTopK(Query{
					K: 3, Tau: 20, Start: lo, End: hi,
					Scorer: s, Algorithm: j.alg, Anchor: j.anchor,
				})
				if err != nil {
					errs <- err.Error()
					return
				}
				got := res.IDs()
				if len(got) == 0 && len(want[j]) == 0 {
					return
				}
				if !reflect.DeepEqual(got, want[j]) {
					errs <- j.alg.String() + "/" + j.anchor.String() + " disagreed under concurrency"
				}
			}(j)
		}
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
