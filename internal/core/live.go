package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/data"
	"repro/internal/monitor"
	"repro/internal/planner"
	"repro/internal/score"
	"repro/internal/topk"
)

// LiveOptions configures a LiveEngine beyond the shared engine Options.
type LiveOptions struct {
	// Capacity pre-sizes the columnar storage for that many records; 0 is
	// fine (growth is amortized either way).
	Capacity int

	// MonitorK, together with MonitorScorer, enables the online durability
	// monitor: every Append additionally reports the instant look-back
	// verdict for the arriving record under the fixed parameters
	// (MonitorK, MonitorTau, MonitorScorer), and — with TrackAhead — the
	// delayed look-ahead confirmations of past records whose forward
	// windows just closed. MonitorK <= 0 disables monitoring; ad-hoc
	// DurableTopK queries work either way.
	MonitorK      int
	MonitorTau    int64
	MonitorScorer score.Scorer
	TrackAhead    bool
}

// LiveEngine answers durable top-k queries over a still-growing dataset: the
// streaming counterpart of Engine. Records arrive one at a time through
// Append; queries at any point observe exactly the records appended so far
// and return precisely what a batch Engine built over that prefix would —
// the incremental index is the logarithmic-merge forest of package topk,
// whose probes run the same pooled-Scratch bulk-scoring path as the static
// tree, so interleaved append/query workloads stay on the hot path with no
// full index rebuilds on the forward (look-back) direction.
//
// Auxiliary structures remain per-prefix: the time-reversed view
// (LookAhead/General anchors) and the skyband ladders (S-Band) are built
// lazily by the snapshot engine and are only reused until the next append.
// An append-then-LookAhead-query loop therefore rebuilds the reversed index
// each iteration — run such workloads through the monitor (look-ahead
// confirmations are O(log w) per arrival) or batch queries between appends;
// making these structures incremental is an open roadmap item.
//
// An optional monitor (see LiveOptions) additionally decides durability
// online under one fixed (k, tau, scorer) triple: instant look-back
// decisions with each arrival, and delayed look-ahead confirmations emitted
// as durability windows close.
//
// Appends are serialized against queries with a RW lock: any number of
// concurrent queries, one writer.
type LiveEngine struct {
	opts Options
	mu   sync.RWMutex

	forest *topk.Forest
	mon    *monitor.Monitor

	// engMu guards the memoized per-prefix engine; a query at an unchanged
	// length reuses it (keeping lazily built reversed views and skyband
	// ladders warm between appends), and the first query after an append
	// swaps in a fresh one.
	engMu  sync.Mutex
	eng    *Engine
	engLen int
}

// NewLiveEngine returns an empty live engine for d-dimensional records.
func NewLiveEngine(d int, opts Options, live LiveOptions) (*LiveEngine, error) {
	if d < 1 {
		return nil, errors.New("core: live engine needs dimensionality >= 1")
	}
	le := &LiveEngine{opts: opts, forest: topk.NewForest(d, opts.Index)}
	le.forest.Dataset().Reserve(live.Capacity)
	if live.MonitorK > 0 {
		if live.MonitorScorer == nil {
			return nil, errors.New("core: live monitor needs a scorer")
		}
		if live.MonitorScorer.Dims() != d {
			return nil, fmt.Errorf("%w: monitor scorer wants %d, live dataset has %d",
				ErrDims, live.MonitorScorer.Dims(), d)
		}
		mon, err := monitor.New(live.MonitorK, live.MonitorTau, live.MonitorScorer,
			monitor.Options{TrackAhead: live.TrackAhead})
		if err != nil {
			return nil, err
		}
		le.mon = mon
	}
	return le, nil
}

// Len returns the number of records appended so far.
func (le *LiveEngine) Len() int {
	le.mu.RLock()
	defer le.mu.RUnlock()
	return le.forest.Len()
}

// Rebuilds returns the number of chunk-tree (re)builds performed by the
// incremental index, and IndexedRows the total rows those builds touched;
// IndexedRows/Len is the observed rebuild amortization constant.
func (le *LiveEngine) Rebuilds() int {
	le.mu.RLock()
	defer le.mu.RUnlock()
	return le.forest.Rebuilds()
}

// IndexedRows returns the total rows (re)indexed across chunk-tree builds.
func (le *LiveEngine) IndexedRows() int {
	le.mu.RLock()
	defer le.mu.RUnlock()
	return le.forest.IndexedRows()
}

// Monitored reports whether the online monitor is enabled.
func (le *LiveEngine) Monitored() bool { return le.mon != nil }

// EpochSeq returns the current query-epoch sequence number. A live engine's
// query state is fully keyed by its prefix length (appends only extend it),
// so the length is the epoch; results computed at equal seqs are
// interchangeable, which is what whole-result caches key entries by.
func (le *LiveEngine) EpochSeq() uint64 {
	le.mu.RLock()
	defer le.mu.RUnlock()
	return uint64(le.forest.Len())
}

// Append commits one record: t must exceed the last appended time and attrs
// must have exactly Dims values (copied). With the monitor enabled, the
// returned Decision is the record's instant look-back durability verdict and
// confirms holds the look-ahead confirmations of records whose forward
// windows closed strictly before t; without it both are zero.
func (le *LiveEngine) Append(t int64, attrs []float64) (dec monitor.Decision, confirms []monitor.Confirmation, err error) {
	le.mu.Lock()
	defer le.mu.Unlock()
	if err = le.forest.Append(t, attrs); err != nil {
		return dec, nil, err
	}
	if le.mon != nil {
		// The forest accepted the record, so the monitor (same ordering
		// rule, same dims) cannot reject it.
		dec, confirms, err = le.mon.Observe(t, attrs)
	}
	return dec, confirms, err
}

// Finish force-confirms every pending look-ahead candidate of the monitor at
// the current end of stream (see monitor.Monitor.Finish). Appends may
// continue afterwards.
func (le *LiveEngine) Finish() []monitor.Confirmation {
	le.mu.Lock()
	defer le.mu.Unlock()
	if le.mon == nil {
		return nil
	}
	return le.mon.Finish()
}

// Dataset returns a stable snapshot view of the records appended so far.
func (le *LiveEngine) Dataset() *data.Dataset {
	le.mu.RLock()
	defer le.mu.RUnlock()
	return le.forest.Dataset().Prefix(le.forest.Len())
}

// snapshotEngine returns the engine over the current n-record prefix,
// memoized until the next append. The forward building block is an
// append-stable prefix view of the live forest (topk.Forest.Snapshot — no
// rebuild, the chunk trees are shared); auxiliary structures a strategy may
// need — the reversed view for look-ahead windows, skyband ladders — are
// built lazily by the engine exactly as in the batch path.
//
// Callers hold le.mu (read), which keeps n current for the duration of their
// evaluation. The pinned view additionally makes the returned engine sound
// on its own: it keeps answering exactly over records [0, n) even if it
// outlives the next append, closing the torn-prefix hazard a raw forest
// block would have (the forest's time-window probes would otherwise see
// records appended after the snapshot). The live+sharded lifecycle relies on
// this to evaluate against a frozen tail epoch after releasing its lock.
func (le *LiveEngine) snapshotEngine(n int) *Engine {
	le.engMu.Lock()
	defer le.engMu.Unlock()
	if le.eng != nil && le.engLen == n {
		return le.eng
	}
	view := le.forest.Snapshot(n)
	snap := view.Dataset()
	opts := le.opts
	inner := le.opts // what non-forward views (the reversed mirror) build with
	opts.NewBlock = func(d *data.Dataset) Block {
		if d == snap {
			return view
		}
		return buildBlock(d, inner)
	}
	le.eng = NewEngine(snap, opts)
	le.engLen = n
	return le.eng
}

// Snapshot returns the memoized engine over the prefix of records appended
// so far, together with that prefix's length, or (nil, 0) while the live
// engine is empty. The engine is append-stable: built over prefix-pinned
// storage and a pinned forest view, it keeps answering exactly over those n
// records no matter how far the stream grows afterwards. The live+sharded
// engine snapshots its mutable tail through this to assemble frozen query
// epochs.
func (le *LiveEngine) Snapshot() (*Engine, int) {
	le.mu.RLock()
	defer le.mu.RUnlock()
	n := le.forest.Len()
	if n == 0 {
		return nil, 0
	}
	return le.snapshotEngine(n), n
}

// errEmptyLive rejects operations that need at least one record.
var errEmptyLive = errors.New("core: live engine has no records yet")

// DurableTopK answers DurTop(k, I, tau) over the records appended so far; the
// answer is identical to Engine.DurableTopK over a batch engine built on the
// same prefix. An empty live engine returns an empty result (after parameter
// validation against the configured dimensionality).
func (le *LiveEngine) DurableTopK(q Query) (*Result, error) {
	le.mu.RLock()
	defer le.mu.RUnlock()
	n := le.forest.Len()
	if n == 0 {
		if err := q.validate(le.forest.Dataset().Dims()); err != nil {
			return nil, err
		}
		return &Result{Stats: Stats{Algorithm: q.Algorithm}}, nil
	}
	return le.snapshotEngine(n).DurableTopK(q)
}

// TopK answers the plain range top-k query over the records appended so far.
func (le *LiveEngine) TopK(s score.Scorer, k int, t1, t2 int64) []topk.Item {
	le.mu.RLock()
	defer le.mu.RUnlock()
	return le.forest.Query(s, k, t1, t2)
}

// Explain returns the planner's assessment of q over the current prefix.
func (le *LiveEngine) Explain(q Query) (planner.Plan, error) {
	le.mu.RLock()
	defer le.mu.RUnlock()
	n := le.forest.Len()
	if n == 0 {
		return planner.Plan{}, errEmptyLive
	}
	return le.snapshotEngine(n).Explain(q)
}

// MostDurable reports the n records with the largest maximum durability over
// the current prefix (see Engine.MostDurable).
func (le *LiveEngine) MostDurable(k int, s score.Scorer, anchor Anchor, n int) ([]DurabilityRecord, error) {
	le.mu.RLock()
	defer le.mu.RUnlock()
	if le.forest.Len() == 0 {
		return nil, errEmptyLive
	}
	return le.snapshotEngine(le.forest.Len()).MostDurable(k, s, anchor, n)
}

// DurabilityProfile computes every record's maximum durability over the
// current prefix (see Engine.DurabilityProfile).
func (le *LiveEngine) DurabilityProfile(k int, s score.Scorer, anchor Anchor) ([]DurabilityRecord, error) {
	le.mu.RLock()
	defer le.mu.RUnlock()
	if le.forest.Len() == 0 {
		return nil, errEmptyLive
	}
	return le.snapshotEngine(le.forest.Len()).DurabilityProfile(k, s, anchor)
}

var _ Querier = (*LiveEngine)(nil)
