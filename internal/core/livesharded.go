package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/data"
	"repro/internal/monitor"
	"repro/internal/planner"
	"repro/internal/score"
)

// LiveShardOptions configures the seal/freeze lifecycle of a
// LiveShardedEngine.
type LiveShardOptions struct {
	// SealRows freezes the mutable tail into an immutable static shard once
	// it holds this many records. 0 disables the row rule — unless SealSpan
	// is also 0, in which case SealRows defaults to DefaultSealRows (an
	// unbounded tail would degenerate into a plain live engine).
	SealRows int
	// SealSpan freezes the tail once its arrivals span at least this many
	// time ticks (last arrival - first arrival >= SealSpan). 0 disables the
	// span rule. When both rules are set, whichever trips first seals.
	SealSpan int64
	// Workers bounds the per-query shard fan-out pool; <= 0 selects
	// min(shard count, GOMAXPROCS) per query.
	Workers int
	// StraddleThreshold tunes boundary-straddler handling exactly as in
	// ShardOptions; 0 selects the default.
	StraddleThreshold int
	// CompactFanout, when >= 2, enables background LSM compaction: every run
	// of CompactFanout adjacent sealed shards sharing a level is merged into
	// one shard at the next level (see compact.go), bounding the live shard
	// count to O(CompactFanout · log n) on an unbounded stream. 0 (and 1)
	// disable compaction — the historical flat lifecycle.
	CompactFanout int
	// RetainSpan, when > 0, bounds retention: after each seal, sealed shards
	// whose every arrival is older than (latest arrival − RetainSpan) ticks
	// are retired — removed whole from every future query epoch, so answers
	// match a batch engine over the retained suffix. 0 retains everything.
	RetainSpan int64
	// OnSeal, when set, is invoked after every tail seal with the half-open
	// global row range [lo, hi) that was frozen. It runs with the engine's
	// internal lock held, so it must be fast and must not call back into
	// the engine — the durability layer uses it to hand the range to a
	// checkpointing goroutine.
	OnSeal func(lo, hi int)
	// OnCompact, when set, is invoked after a compaction merges sealed rows
	// [lo, hi) into one shard at the given level. Same contract as OnSeal
	// (lock held, must be fast, no reentry); the durability layer uses it to
	// queue the atomic manifest level swap.
	OnCompact func(lo, hi, level int)
	// OnRetire, when set, is invoked after retention retires sealed rows
	// [lo, hi) from the live set. Same contract as OnSeal; the durability
	// layer uses it to advance the manifest's retention base.
	OnRetire func(lo, hi int)
}

// DefaultSealRows is the tail seal threshold when LiveShardOptions specifies
// neither rule.
const DefaultSealRows = 4096

// LiveShardedEngine composes live ingestion with time sharding — the
// LSM-flavored lifecycle that keeps both the unit of rebuild work and the
// unit of query fan-out bounded on an unbounded stream. Appends route to a
// single mutable tail shard (a LiveEngine over an appendable columnar tail);
// when the tail trips a seal threshold (row count or time span, see
// LiveShardOptions) it is sealed — immediately immutable and queryable
// through its pinned snapshot — then frozen in the background into a static
// Engine shard over a zero-copy slice of the global storage, while a fresh
// empty tail takes the appends.
// Queries fan out over the sealed shards plus the tail with the exact
// straddler/higher-count merge, reach-based shard routing and per-shard score
// upper-bound pruning of ShardedEngine — the tail participates through an
// append-stable snapshot (its score bounds are re-derived per epoch, so an
// append can never leave a stale bound behind).
//
// Every append and seal swaps in a fresh immutable query epoch (shardGroup)
// under a RW lock; a query snapshots the current epoch and then evaluates
// lock-free, so long scans never block ingestion. Answers are bit-identical
// to a batch Engine built over the same prefix for all five strategies,
// enforced by the differential harness and FuzzLiveShardedAppend.
//
// Safe for concurrent use: any number of concurrent queries, one appender.
type LiveShardedEngine struct {
	opts Options
	so   LiveShardOptions
	dims int

	mon *monitor.Monitor

	// mu serializes lifecycle transitions (append, seal) against epoch
	// snapshots; queries hold it only while grabbing the current epoch.
	mu        sync.RWMutex
	global    *data.Dataset // appendable columnar storage of every record
	sealed    []timeShard   // frozen shards, ascending, over global slices
	tail      *LiveEngine   // mutable tail shard over records [tailLo, Len)
	tailLo    int
	retiredLo int    // rows [0, retiredLo) retired by retention; absent from epochs
	seq       uint64 // bumped on every append, seal, compaction and retirement; keys epoch caches

	// Lifecycle metrics (guarded by mu): seals counts freeze events,
	// sealedRows the rows frozen into static engines (each row is frozen
	// exactly once), rebuilds/indexedRows the accumulated incremental-index
	// work of retired tails plus their freeze builds (freeze work lands when
	// the background build completes; see WaitSealed).
	seals       int
	sealedRows  int
	rebuilds    int
	indexedRows int

	// freezeWG tracks in-flight background freeze builds; freezing counts
	// them (guarded by mu) so seal backpressure can bound the retired tails
	// kept alive awaiting their freeze.
	freezeWG sync.WaitGroup
	freezing int

	// Compaction and retention state (guarded by mu): compacting marks the
	// single in-flight background merge, compactWG tracks it (and its
	// cascades) for WaitCompacted, and the counters feed the bench rows.
	compacting    bool
	compactWG     sync.WaitGroup
	compactions   int
	compactedRows int
	retires       int
	retiredRows   int

	// groupMu guards the memoized query epoch; a query at an unchanged seq
	// reuses it (keeping the tail snapshot engine and its lazily built
	// auxiliary structures warm between appends), and the first query after
	// an append or seal assembles a fresh one.
	groupMu  sync.Mutex
	group    *shardGroup
	groupSeq uint64

	// revMu guards the memoized time-mirrored retained suffix for look-ahead
	// durability sweeps, keyed by (retirement boundary, prefix length).
	revMu  sync.Mutex
	rev    *data.Dataset
	revLo  int
	revLen int

	// pc, when set (before serving; see SetPartialCache), is copied into
	// every query epoch so sealed-shard interior answers are cached across
	// queries and epochs.
	pc PartialCache
}

// NewLiveShardedEngine returns an empty live+sharded engine for
// d-dimensional records. live configures storage capacity hints and the
// optional online monitor (which spans seals: it watches the whole stream,
// not the current tail); so configures the seal lifecycle.
func NewLiveShardedEngine(d int, opts Options, live LiveOptions, so LiveShardOptions) (*LiveShardedEngine, error) {
	if d < 1 {
		return nil, errors.New("core: live sharded engine needs dimensionality >= 1")
	}
	if so.SealRows < 0 || so.SealSpan < 0 {
		return nil, errors.New("core: seal thresholds must be >= 0")
	}
	if so.CompactFanout < 0 || so.RetainSpan < 0 {
		return nil, errors.New("core: compaction fanout and retain span must be >= 0")
	}
	if so.SealRows == 0 && so.SealSpan == 0 {
		so.SealRows = DefaultSealRows
	}
	global, err := data.NewAppendable(d, live.Capacity)
	if err != nil {
		return nil, err
	}
	e := &LiveShardedEngine{opts: opts, so: so, dims: d, global: global}
	if live.MonitorK > 0 {
		if live.MonitorScorer == nil {
			return nil, errors.New("core: live monitor needs a scorer")
		}
		if live.MonitorScorer.Dims() != d {
			return nil, fmt.Errorf("%w: monitor scorer wants %d, live dataset has %d",
				ErrDims, live.MonitorScorer.Dims(), d)
		}
		mon, err := monitor.New(live.MonitorK, live.MonitorTau, live.MonitorScorer,
			monitor.Options{TrackAhead: live.TrackAhead})
		if err != nil {
			return nil, err
		}
		e.mon = mon
	}
	e.tail = e.newTail()
	return e, nil
}

// RestoredShard carries one checkpointed sealed shard's rows for
// RestoreLiveShardedEngine: parallel time/row-major attribute columns, in
// ascending time order. Level restores the shard's LSM level (0 for a plain
// sealed shard; see LiveShardOptions.CompactFanout).
type RestoredShard struct {
	Times []int64
	Flat  []float64
	Level int
}

// RestoreLiveShardedEngine rebuilds a live+sharded engine from checkpointed
// sealed shards, in order. Each shard's rows are bulk-appended to the global
// columnar storage and frozen synchronously into a static shard — no WAL
// replay, no incremental index work — after which the engine's tail is empty
// and appends resume at the exact next row. The monitor (when configured)
// re-observes every restored row so its online state matches a process that
// never crashed; the resulting decisions are discarded (they were already
// emitted before the crash).
func RestoreLiveShardedEngine(d int, opts Options, live LiveOptions, so LiveShardOptions, shards []RestoredShard) (*LiveShardedEngine, error) {
	e, err := NewLiveShardedEngine(d, opts, live, so)
	if err != nil {
		return nil, err
	}
	for _, s := range shards {
		lo := e.global.Len()
		if err := e.global.AppendRows(s.Times, s.Flat); err != nil {
			return nil, fmt.Errorf("core: restoring sealed shard at row %d: %w", lo, err)
		}
		hi := e.global.Len()
		if hi == lo {
			continue
		}
		e.sealed = append(e.sealed, timeShard{lo: lo, hi: hi, eng: NewEngine(e.global.Slice(lo, hi), opts), level: s.Level, immutable: true})
		e.seals++
		e.sealedRows += hi - lo
		e.rebuilds++
		e.indexedRows += hi - lo
		e.tailLo = hi
		e.seq++
		if e.mon != nil {
			for i := lo; i < hi; i++ {
				if _, _, err := e.mon.Observe(e.global.Time(i), e.global.Attrs(i)); err != nil {
					return nil, fmt.Errorf("core: restoring monitor at row %d: %w", i, err)
				}
			}
		}
	}
	// A crash can land between a merge's install and its durable level swap;
	// the restored layout then still holds the constituent run, and re-planning
	// here simply redoes the merge in the background.
	e.mu.Lock()
	e.maybeCompactLocked()
	e.mu.Unlock()
	return e, nil
}

// newTail opens a fresh empty tail engine sized for one seal cycle. The tail
// never carries its own monitor — the wrapper's monitor spans seals.
func (e *LiveShardedEngine) newTail() *LiveEngine {
	cap := e.so.SealRows
	if cap <= 0 || cap > DefaultSealRows {
		cap = DefaultSealRows
	}
	tl, err := NewLiveEngine(e.dims, e.opts, LiveOptions{Capacity: cap})
	if err != nil {
		panic(err) // unreachable: dims validated at construction
	}
	return tl
}

// Append commits one record: t must exceed the last appended time and attrs
// must have exactly Dims values (copied). The record lands in the mutable
// tail shard; if it trips a seal threshold the tail is sealed — retired to
// an immutable shard and replaced by a fresh tail — before Append returns,
// with the static freeze index built in the background (see sealLocked).
// With the monitor enabled, the returned values mirror LiveEngine.Append.
func (e *LiveShardedEngine) Append(t int64, attrs []float64) (dec monitor.Decision, confirms []monitor.Confirmation, err error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if err = e.global.AppendRow(t, attrs); err != nil {
		return dec, nil, err
	}
	if _, _, err = e.tail.Append(t, attrs); err != nil {
		// Unreachable: the tail shares the global ordering and dimension
		// rules and starts strictly after every sealed record. A failure
		// here would desynchronize tail and global storage, so fail loudly.
		panic(fmt.Sprintf("core: tail append diverged from global storage: %v", err))
	}
	e.seq++
	if e.sealDue(t) {
		e.sealLocked()
	}
	if e.mon != nil {
		dec, confirms, err = e.mon.Observe(t, attrs)
	}
	return dec, confirms, err
}

// sealDue reports whether the tail has reached a seal threshold after an
// append at time t.
func (e *LiveShardedEngine) sealDue(t int64) bool {
	rows := e.global.Len() - e.tailLo
	if e.so.SealRows > 0 && rows >= e.so.SealRows {
		return true
	}
	return e.so.SealSpan > 0 && rows > 0 && t-e.global.Time(e.tailLo) >= e.so.SealSpan
}

// Seal freezes the current tail into an immutable static shard immediately,
// regardless of thresholds (no-op on an empty tail). Exposed for operational
// cutovers — e.g. sealing before a burst of historical queries — and tests.
func (e *LiveShardedEngine) Seal() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.sealLocked()
}

// sealLocked seals records [tailLo, Len) and opens a fresh tail. Caller
// holds mu.
//
// The seal is two-phase so neither the appender nor queries ever wait on an
// index build. Under the lock, the retired tail's append-stable snapshot
// engine becomes the sealed shard immediately — it is final (nothing appends
// to a retired tail) and answers bit-identically to a static engine, so the
// shard is queryable the moment Append returns. The freeze build — a static
// Engine over the zero-copy global slice, the lifecycle's bounded rebuild
// unit: one build per seal, touching only the tail's rows, never the sealed
// history — runs in a background goroutine and is swapped into the shard
// slot under a short write lock when ready (epochs already holding the
// snapshot engine stay valid; the swap only upgrades future epochs to the
// tighter, denser static index).
func (e *LiveShardedEngine) sealLocked() {
	n := e.global.Len()
	if n == e.tailLo {
		return // empty tail: nothing to freeze (e.g. Seal right after a seal)
	}
	tail, lo := e.tail, e.tailLo
	te, _ := tail.Snapshot()
	si := len(e.sealed)
	// Sealed rows never change again, so the shard is immutable from the
	// moment it retires — partial-cache entries built against it (under
	// either its snapshot engine or the later freeze build, which answer
	// bit-identically) stay valid for as long as the shard stays in the live
	// set (compaction and retention announce departures; see compact.go).
	e.sealed = append(e.sealed, timeShard{lo: lo, hi: n, eng: te, immutable: true})
	e.seals++
	e.sealedRows += n - lo
	e.rebuilds += tail.Rebuilds()
	e.indexedRows += tail.IndexedRows()
	sub := e.global.Slice(lo, n) // captured under mu: Slice reads mutable headers
	e.tail = e.newTail()
	e.tailLo = n
	e.seq++
	if e.so.OnSeal != nil {
		e.so.OnSeal(lo, n)
	}
	if e.freezing >= maxPendingFreezes {
		// Backpressure: seals are outpacing freeze builds, and every
		// unfrozen retired tail keeps a duplicate copy of its rows alive.
		// Degrade to the synchronous build rather than queueing unboundedly
		// — the appender pays one build, exactly the pre-async behavior.
		e.sealed[si].eng = NewEngine(sub, e.opts)
		e.rebuilds++
		e.indexedRows += n - lo
		e.seq++
	} else {
		e.freezing++
		e.freezeWG.Add(1)
		go func() {
			defer e.freezeWG.Done()
			eng := NewEngine(sub, e.opts)
			e.mu.Lock()
			// Locate the shard by its range, not a captured index: a
			// compaction or retirement may have respliced (or removed) the
			// sealed slice while the freeze built. A departed shard simply
			// discards its build — the merged shard's index covers the rows.
			if fi, ok := e.findSealedLocked(lo, n); ok {
				e.sealed[fi].eng = eng
				e.seq++ // invalidate the memoized epoch so new queries pick it up
			}
			e.rebuilds++
			e.indexedRows += n - lo
			e.freezing--
			e.mu.Unlock()
		}()
	}
	e.maybeRetireLocked(e.global.Time(n - 1))
	e.maybeCompactLocked()
}

// maxPendingFreezes bounds concurrent background freeze builds (and with
// them the retired tails whose duplicate storage stays alive until their
// freeze lands); seals beyond the bound build synchronously.
const maxPendingFreezes = 2

// WaitSealed blocks until every background freeze build kicked off by past
// seals has completed and been swapped in. Metrics (Rebuilds, IndexedRows)
// include freeze work only after the build lands, so benchmarks and tests
// call this before reading them. Callers must not invoke it concurrently
// with appends that could trigger new seals (quiesce the stream first).
func (e *LiveShardedEngine) WaitSealed() {
	e.freezeWG.Wait()
}

// snapshotEpoch returns the immutable query epoch for the current stream
// state, memoized until the next append or seal. Caller holds mu (read).
//
// The epoch is fully append-stable: sealed shards are static engines over
// prefix-stable slices, the tail joins through LiveEngine.Snapshot (a pinned
// forest view), and the dataset is a capacity-clipped prefix — so queries
// evaluate against it after releasing the lock, and ingestion never waits on
// a long scan. Per-epoch caches (the cross-shard score upper bounds) carry
// the epoch seq and regenerate rather than serve stale values if they ever
// meet a different epoch.
func (e *LiveShardedEngine) snapshotEpoch() *shardGroup {
	e.groupMu.Lock()
	defer e.groupMu.Unlock()
	if e.group != nil && e.groupSeq == e.seq {
		return e.group
	}
	n := e.global.Len()
	if n == 0 {
		return nil
	}
	shards := make([]timeShard, 0, len(e.sealed)+1)
	shards = append(shards, e.sealed...)
	if n > e.tailLo {
		// Appends are locked out while we hold mu (read), so the tail
		// snapshot covers exactly records [tailLo, n).
		te, tn := e.tail.Snapshot()
		shards = append(shards, timeShard{lo: e.tailLo, hi: e.tailLo + tn, eng: te})
	}
	if len(shards) == 0 {
		// Retention can retire every sealed shard while the tail is empty;
		// the engine then answers like an empty one until the next append.
		return nil
	}
	e.group = &shardGroup{
		ds:       e.global.Prefix(n),
		opts:     e.opts,
		workers:  resolveShardWorkers(e.so.Workers, len(shards)),
		straddle: resolveStraddle(e.so.StraddleThreshold),
		shards:   shards,
		seq:      e.seq,
		pc:       e.pc,
	}
	e.groupSeq = e.seq
	return e.group
}

// epoch grabs the current query epoch under the read lock (nil when empty).
func (e *LiveShardedEngine) epoch() *shardGroup {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.snapshotEpoch()
}

// SetPartialCache attaches a cross-query cache for sealed-shard interior
// answers; entries stay valid across epochs because sealed rows never change.
// Call before serving queries — epochs already snapshotted keep whatever
// cache (or none) they were assembled with.
func (e *LiveShardedEngine) SetPartialCache(pc PartialCache) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.pc = pc
	e.seq++ // retire the memoized epoch so the next query picks the cache up
}

// EpochSeq returns the current query-epoch sequence number: it changes on
// every append, seal and background freeze swap, so results computed at equal
// seqs are interchangeable. Whole-result caches key entries by it to get
// epoch-based invalidation for free.
func (e *LiveShardedEngine) EpochSeq() uint64 {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.seq
}

// Len returns the number of records appended so far.
func (e *LiveShardedEngine) Len() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.global.Len()
}

// NumShards returns the current shard count: sealed shards plus the tail
// when it holds records.
func (e *LiveShardedEngine) NumShards() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	n := len(e.sealed)
	if e.global.Len() > e.tailLo {
		n++
	}
	return n
}

// TailLen returns the number of records in the mutable tail shard.
func (e *LiveShardedEngine) TailLen() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.global.Len() - e.tailLo
}

// Seals returns the number of freeze events so far.
func (e *LiveShardedEngine) Seals() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.seals
}

// SealedRows returns the total rows frozen into static shards; every row is
// frozen at most once, so SealedRows/Len <= 1 is the freeze amortization.
func (e *LiveShardedEngine) SealedRows() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.sealedRows
}

// Rebuilds returns the total index (re)builds across the lifecycle: the
// incremental chunk-tree builds of every tail plus one freeze build per seal.
func (e *LiveShardedEngine) Rebuilds() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.rebuilds + e.tail.Rebuilds()
}

// IndexedRows returns the total rows (re)indexed across the lifecycle —
// incremental tail index work plus freeze builds. IndexedRows/Len is the
// end-to-end amortization constant: O(log SealRows) + 1, bounded regardless
// of stream length because sealed history is never re-indexed.
func (e *LiveShardedEngine) IndexedRows() int {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.indexedRows + e.tail.IndexedRows()
}

// Shards describes the current shards (sealed plus non-empty tail) in
// ascending time order.
func (e *LiveShardedEngine) Shards() []ShardInfo {
	g := e.epoch()
	if g == nil {
		return nil
	}
	return g.infos()
}

// Monitored reports whether the online monitor is enabled.
func (e *LiveShardedEngine) Monitored() bool { return e.mon != nil }

// Finish force-confirms every pending look-ahead candidate of the monitor at
// the current end of stream (see monitor.Monitor.Finish). Appends may
// continue afterwards.
func (e *LiveShardedEngine) Finish() []monitor.Confirmation {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.mon == nil {
		return nil
	}
	return e.mon.Finish()
}

// Dataset returns a stable snapshot view of the records appended so far.
func (e *LiveShardedEngine) Dataset() *data.Dataset {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.global.Prefix(e.global.Len())
}

// DurableTopK answers DurTop(k, I, tau) over the records appended so far,
// fanned out across the sealed shards and the tail; the answer is identical
// to Engine.DurableTopK over a batch engine built on the same prefix. An
// empty engine returns an empty result (after parameter validation), as does
// a query whose interval the router proves no shard can answer.
func (e *LiveShardedEngine) DurableTopK(q Query) (*Result, error) {
	g := e.epoch()
	if g == nil {
		if err := q.validate(e.dims); err != nil {
			return nil, err
		}
		return &Result{Stats: Stats{Algorithm: q.Algorithm}}, nil
	}
	return g.DurableTopK(q)
}

// Explain returns the planner's assessment of q over the current prefix.
func (e *LiveShardedEngine) Explain(q Query) (planner.Plan, error) {
	g := e.epoch()
	if g == nil {
		return planner.Plan{}, errEmptyLive
	}
	return g.Explain(q)
}

// reversedSuffix returns the time-mirrored snapshot of the retained suffix,
// memoized by (retirement boundary, length) — content never changes for a
// fixed boundary and length, so the pair keys it fully.
func (e *LiveShardedEngine) reversedSuffix(ds *data.Dataset, lo int) *data.Dataset {
	e.revMu.Lock()
	defer e.revMu.Unlock()
	if e.rev == nil || e.revLo != lo || e.revLen != ds.Len() {
		e.rev = ds.Reversed()
		e.revLo = lo
		e.revLen = ds.Len()
	}
	return e.rev
}

// DurabilityProfile computes every retained record's maximum durability (see
// Engine.DurabilityProfile; the sweep needs no index, so the shard lifecycle
// does not change it). With retention enabled the sweep covers the retained
// suffix only — matching what queries can see — and reported IDs stay global.
func (e *LiveShardedEngine) DurabilityProfile(k int, s score.Scorer, anchor Anchor) ([]DurabilityRecord, error) {
	if k < 1 {
		return nil, ErrBadK
	}
	if s == nil {
		return nil, ErrNoScorer
	}
	if s.Dims() != e.dims {
		return nil, ErrDims
	}
	e.mu.RLock()
	lo, n := e.retiredLo, e.global.Len()
	var suffix *data.Dataset
	if n > lo {
		suffix = e.global.Slice(lo, n) // captured under mu: Slice reads mutable headers
	}
	e.mu.RUnlock()
	if suffix == nil {
		return nil, errEmptyLive
	}
	ds := suffix
	if anchor == LookAhead {
		ds = e.reversedSuffix(suffix, lo)
	}
	out := durabilitySweep(ds, k, s)
	if anchor == LookAhead {
		out = mirrorProfile(out, suffix)
	}
	for i := range out {
		out[i].ID += lo
	}
	return out, nil
}

// MostDurable reports the n records with the largest maximum durability over
// the current prefix (see Engine.MostDurable).
func (e *LiveShardedEngine) MostDurable(k int, s score.Scorer, anchor Anchor, n int) ([]DurabilityRecord, error) {
	profile, err := e.DurabilityProfile(k, s, anchor)
	if err != nil {
		return nil, err
	}
	return mostDurable(profile, n), nil
}

var _ Querier = (*LiveShardedEngine)(nil)
