package bench

import (
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/monitor"
	"repro/internal/score"
	"repro/internal/topk"
)

// runExtStream compares the two ways this repository decides look-back
// durability on a live stream: appending to the forest index and probing it
// (one range top-k query per arrival), versus the dedicated monitor's
// order-statistic treap (no index at all). Both produce identical
// decisions; the experiment measures sustained arrivals per second as the
// window widens, plus the monitor's extra look-ahead confirmations.
func runExtStream(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	n := cfg.scaled(40_000)
	header(w, fmt.Sprintf("Extension: streaming durability, forest probes vs monitor (n=%d, k=%d)", n, defaultK))
	ta := newTable(w)
	ta.row("window (ticks)", "forest arrivals/s", "monitor arrivals/s", "monitor+ahead arrivals/s", "flags")

	sweep := []int64{256, 1024, 4096, 16384}
	if cfg.Quick {
		sweep = sweep[:2]
	}
	for _, tau := range sweep {
		// One shared arrival sequence per window size.
		rng := rand.New(rand.NewSource(cfg.Seed))
		times := make([]int64, n)
		vals := make([][]float64, n)
		var now int64
		for i := 0; i < n; i++ {
			now += int64(1 + rng.Intn(3))
			times[i] = now
			vals[i] = []float64{rng.Float64() * 100}
		}
		s, err := score.NewSingle(0, 1)
		if err != nil {
			return err
		}

		forestFlags, forestSec, err := streamViaForest(times, vals, s, defaultK, tau)
		if err != nil {
			return err
		}
		monFlags, monSec, err := streamViaMonitor(times, vals, s, defaultK, tau, false)
		if err != nil {
			return err
		}
		_, aheadSec, err := streamViaMonitor(times, vals, s, defaultK, tau, true)
		if err != nil {
			return err
		}
		if forestFlags != monFlags {
			return fmt.Errorf("stream experiment: forest flagged %d, monitor %d", forestFlags, monFlags)
		}
		ta.row(tau,
			fmt.Sprintf("%.0f", float64(n)/forestSec),
			fmt.Sprintf("%.0f", float64(n)/monSec),
			fmt.Sprintf("%.0f", float64(n)/aheadSec),
			monFlags)
	}
	ta.flush()
	fmt.Fprintln(w, "\nexpected: identical flags; the monitor sustains a higher, window-size-"+
		"\ninsensitive rate (O(log w) treap step vs index append + range probe)")
	return nil
}

func streamViaForest(times []int64, vals [][]float64, s score.Scorer, k int, tau int64) (flags int, seconds float64, err error) {
	forest := topk.NewForest(1, topk.Options{})
	start := time.Now()
	for i := range times {
		if err := forest.Append(times[i], vals[i]); err != nil {
			return 0, 0, err
		}
		items := forest.Query(s, k, times[i]-tau, times[i])
		sc := s.Score(vals[i])
		if len(items) < k || sc >= items[k-1].Score {
			flags++
		}
	}
	return flags, time.Since(start).Seconds(), nil
}

func streamViaMonitor(times []int64, vals [][]float64, s score.Scorer, k int, tau int64, ahead bool) (flags int, seconds float64, err error) {
	m, err := monitor.New(k, tau, s, monitor.Options{TrackAhead: ahead})
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	for i := range times {
		dec, _, err := m.Observe(times[i], vals[i])
		if err != nil {
			return 0, 0, err
		}
		if dec.Durable {
			flags++
		}
	}
	m.Finish()
	return flags, time.Since(start).Seconds(), nil
}
