package bench

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/store"
	"repro/internal/wal"
	"repro/internal/wire"
)

// standingSubCounts are the fan-out levels of the standing-query benchmark:
// the append path pays one monitor observation per distinct scorer per row,
// so the ratio between rows is the cost of verdict fan-out on ingestion.
var standingSubCounts = []int{1, 16, 256}

// standingRows caps how much of the dataset each standing-query
// configuration feeds: 256 subscriptions over the full reference stream
// would dominate the whole suite without changing what the rows measure.
const standingRows = 4096

// standingSubTimeout bounds how long a subscriber may go without an event
// before the run is declared stalled (a hung benchmark is worse than a
// failed one).
const standingSubTimeout = 60 * time.Second

// standingBatchRows is the appender's flow-control window: it appends this
// many rows, then waits until every subscriber has received them before
// continuing. An unpaced in-process appender outruns TCP delivery and trips
// the protocol's slow-subscriber eviction (the per-connection event queue is
// deliberately bounded); half the queue depth keeps occupancy safely under
// the eviction threshold, so the rows measure the sustained eviction-free
// rate — the one a flow-controlled producer actually gets.
const standingBatchRows = 512

// standingThroughput measures serving standing queries over loopback TCP and
// fills the standing_* rows of rep: a live dataset is fed through the
// server's append path with N subscriptions attached — each on its own v2
// connection, each with a distinct random scorer, so per-append scoring
// cannot be shared and the rows measure worst-case verdict fan-out.
//
// standing_appends_per_sec is end-to-end: the clock stops only once every
// subscriber has received the event for the final append, so the rate folds
// in event marshalling and delivery, not just the appender's side.
// standing_confirm_latency_ns is the mean delay from starting the append
// that closed a record's look-ahead window to a subscriber holding that
// confirmation — the wire analogue of the freshness lag.
func standingThroughput(rep *StreamReport, ds *data.Dataset, seed int64) error {
	n := ds.Len()
	if n > standingRows {
		n = standingRows
	}
	lo := ds.Time(0)
	hi := ds.Time(n - 1)
	tau := (hi - lo) * int64(defaultTauPct) / 100
	if tau < 1 {
		tau = 1
	}
	rep.StandingSubRows = n
	rep.StandingAppendsPerSec = make(map[string]float64, len(standingSubCounts))
	rep.StandingConfirmLatencyNs = make(map[string]float64, len(standingSubCounts))
	for _, subs := range standingSubCounts {
		aps, lat, err := standingRun(ds, n, tau, subs, seed+int64(subs))
		if err != nil {
			return fmt.Errorf("bench: standing %d subs: %w", subs, err)
		}
		key := strconv.Itoa(subs)
		rep.StandingAppendsPerSec[key] = aps
		rep.StandingConfirmLatencyNs[key] = lat
	}
	return backfillReplay(rep, ds, n, tau, seed)
}

// backfillReplay measures the server-side catch-up path behind
// backfill_replay_events_per_sec: a durable subscription registers on a
// store-backed dataset and its connection drops; the whole stream commits
// with nobody listening; then one client resumes by key from prefix zero and
// drains until it holds the event for the final committed row. The server
// re-derives every verdict from the committed rows during the resume, and a
// backlog larger than the bounded per-connection event queue paginates
// through evict/resume cycles — both deliberately inside the measured
// window, because a reconnecting follower pays exactly that.
func backfillReplay(rep *StreamReport, ds *data.Dataset, n int, tau int64, seed int64) error {
	st, err := store.Open("backfill", ds.Dims(), store.Options{
		FS: wal.NewMemFS(), Sync: wal.SyncNone,
		Engine: EngineOptions(), Shard: core.LiveShardOptions{SealRows: n + 1},
	})
	if err != nil {
		return fmt.Errorf("bench: backfill store: %w", err)
	}
	defer st.Close()
	srv := wire.NewServer(func(string, ...interface{}) {})
	if err := srv.AddLiveQuerier("live", st.Engine(), st, nil); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	// Register durably, then vanish: the detached registration keeps
	// counting sequence numbers while the stream commits.
	rng := rand.New(rand.NewSource(seed))
	w := make([]float64, ds.Dims())
	for j := range w {
		w[j] = rng.Float64()
	}
	cl, err := wire.Dial(addr)
	if err != nil {
		return err
	}
	if _, _, err := cl.Hello(wire.FeatureEvents, wire.FeatureBackfill); err != nil {
		return err
	}
	s, err := cl.Subscribe(wire.Request{Dataset: "live", QuerySpec: wire.QuerySpec{
		K: defaultK, Tau: tau, Weights: w,
	}})
	if err != nil {
		return err
	}
	key := s.SubKey()
	if key == 0 {
		return fmt.Errorf("bench: store-backed subscription got no durable key")
	}
	cl.Close()
	for i := 0; i < n; i++ {
		if _, _, err := st.Append(ds.Time(i), ds.Attrs(i)); err != nil {
			return err
		}
	}

	// Catch up: resume by key, drain; when the bounded event queue evicts
	// this deliberately-behind consumer, resume again from the last prefix
	// it actually holds. The clock covers the whole healed gap.
	start := time.Now()
	lastPrefix := 0
	for lastPrefix < n {
		cl, err := wire.Dial(addr)
		if err != nil {
			return err
		}
		if _, _, err := cl.Hello(wire.FeatureEvents, wire.FeatureBackfill); err != nil {
			cl.Close()
			return err
		}
		s, err := cl.Subscribe(wire.Request{Dataset: "live", SubKey: key, FromPrefix: lastPrefix})
		if err != nil {
			cl.Close()
			return fmt.Errorf("bench: backfill resume at prefix %d: %w", lastPrefix, err)
		}
	drain:
		for lastPrefix < n {
			select {
			case ev, ok := <-s.Events():
				if !ok || ev.Event == wire.EventEvicted {
					break drain
				}
				if ev.Prefix != lastPrefix+1 {
					cl.Close()
					return fmt.Errorf("bench: backfill gap: prefix %d after %d", ev.Prefix, lastPrefix)
				}
				lastPrefix = ev.Prefix
			case <-time.After(standingSubTimeout):
				cl.Close()
				return fmt.Errorf("bench: backfill stalled at prefix %d/%d", lastPrefix, n)
			}
		}
		cl.Close()
	}
	rep.BackfillReplayEventsPerSec = float64(n) / time.Since(start).Seconds()
	return nil
}

// standingRun measures one subscription count. The t0 stamps are written by
// the appender before each commit and read by subscribers after receiving
// that append's event; the append lock, registry emit and channel/TCP hops
// in between give the happens-before chain that makes this race-free.
func standingRun(ds *data.Dataset, n int, tau int64, subs int, seed int64) (appendsPerSec, confirmLatNs float64, err error) {
	srv := wire.NewServer(func(string, ...interface{}) {})
	if _, err := srv.AddLive("live", ds.Dims(), nil, EngineOptions(), core.LiveOptions{}); err != nil {
		return 0, 0, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return 0, 0, err
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	t0 := make([]time.Time, n)
	var latSum, latN int64
	stalled := make(chan error, subs)
	recvd := make([]atomic.Int64, subs)
	var wg sync.WaitGroup
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < subs; i++ {
		cl, err := wire.Dial(addr)
		if err != nil {
			return 0, 0, err
		}
		defer cl.Close()
		if _, _, err := cl.Hello(wire.FeatureEvents); err != nil {
			return 0, 0, err
		}
		w := make([]float64, ds.Dims())
		for j := range w {
			w[j] = rng.Float64()
		}
		s, err := cl.Subscribe(wire.Request{Dataset: "live", QuerySpec: wire.QuerySpec{
			K: defaultK, Tau: tau, Weights: w,
		}})
		if err != nil {
			return 0, 0, err
		}
		wg.Add(1)
		go func(s *wire.Subscription, progress *atomic.Int64) {
			defer wg.Done()
			timer := time.NewTimer(standingSubTimeout)
			defer timer.Stop()
			for got := 0; got < n; {
				select {
				case ev, ok := <-s.Events():
					if !ok {
						stalled <- fmt.Errorf("subscriber stream closed after %d/%d events (evicted?)", got, n)
						return
					}
					if len(ev.Confirms) > 0 && ev.Prefix >= 1 && ev.Prefix <= n {
						atomic.AddInt64(&latSum, time.Since(t0[ev.Prefix-1]).Nanoseconds())
						atomic.AddInt64(&latN, 1)
					}
					got++
					progress.Store(int64(got))
					if !timer.Stop() {
						<-timer.C
					}
					timer.Reset(standingSubTimeout)
				case <-timer.C:
					stalled <- fmt.Errorf("subscriber stalled after %d/%d events (%d dropped client-side)", got, n, s.Dropped())
					return
				}
			}
		}(s, &recvd[i])
	}

	// caughtUp blocks until every subscriber has received the first `upto`
	// events (or a subscriber reported failure).
	caughtUp := func(upto int) error {
		for s := range recvd {
			for recvd[s].Load() < int64(upto) {
				select {
				case serr := <-stalled:
					return serr
				default:
					time.Sleep(20 * time.Microsecond)
				}
			}
		}
		return nil
	}

	start := time.Now()
	for i := 0; i < n; i++ {
		if i > 0 && i%standingBatchRows == 0 {
			if err := caughtUp(i); err != nil {
				return 0, 0, err
			}
		}
		t0[i] = time.Now()
		if _, _, err := srv.AppendRow("live", ds.Time(i), ds.Attrs(i)); err != nil {
			return 0, 0, err
		}
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	select {
	case serr := <-stalled:
		return 0, 0, serr
	default:
	}
	if latN == 0 {
		return 0, 0, fmt.Errorf("no look-ahead confirmations flowed (tau=%d over %d rows)", tau, n)
	}
	return float64(n) / elapsed, float64(latSum) / float64(latN), nil
}

// runStandingScale is the registry experiment behind `durbench -standing`:
// the standing-query rows of BENCH_stream.json rendered as a table.
func runStandingScale(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	dsName := "nba-2"
	if cfg.Quick {
		dsName = "ind-4000"
	}
	ds, err := DatasetFor(cfg, dsName)
	if err != nil {
		return err
	}
	rep := &StreamReport{Dataset: dsName, Records: ds.Len(), Dims: ds.Dims(),
		K: defaultK, TauPct: defaultTauPct, GOMAXPROCS: runtime.GOMAXPROCS(0), Seed: cfg.Seed}
	if err := standingThroughput(rep, ds, cfg.Seed); err != nil {
		return err
	}
	fmt.Fprintf(w, "dataset=%s rows=%d d=%d | k=%d tau=%d%% | GOMAXPROCS=%d seed=%d\n",
		rep.Dataset, rep.StandingSubRows, rep.Dims, rep.K, rep.TauPct, rep.GOMAXPROCS, rep.Seed)
	base := rep.StandingAppendsPerSec["1"]
	for _, subs := range standingSubCounts {
		key := strconv.Itoa(subs)
		cost := ""
		if subs > 1 && base > 0 {
			cost = fmt.Sprintf("  (%.2fx vs 1 sub)", base/rep.StandingAppendsPerSec[key])
		}
		fmt.Fprintf(w, "%-30s %12.0f%s\n",
			fmt.Sprintf("appends/s, %3d subscription(s)", subs), rep.StandingAppendsPerSec[key], cost)
	}
	for _, subs := range standingSubCounts {
		key := strconv.Itoa(subs)
		fmt.Fprintf(w, "%-30s %12.0f\n",
			fmt.Sprintf("confirm latency ns, %3d sub(s)", subs), rep.StandingConfirmLatencyNs[key])
	}
	fmt.Fprintf(w, "%-30s %12.0f\n", "backfill replay events/s", rep.BackfillReplayEventsPerSec)
	fmt.Fprintln(w, "\nexpected: appends/s degrades roughly linearly in subscriptions — each adds"+
		"\none monitor observation (identical scorers would share it) plus one"+
		"\nmarshalled event frame per append; confirm latency tracks the flow-control"+
		"\nwindow's queueing, not a fan-out rescore, so it grows far slower than 256x;"+
		"\nbackfill replay is bounded by server-side re-scoring plus evict/resume"+
		"\npagination, so it should land within an order of magnitude of appends/s")
	return nil
}
