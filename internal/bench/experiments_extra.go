package bench

import (
	"fmt"
	"io"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/score"
	"repro/internal/skyband"
	"repro/internal/stats"
	"repro/internal/topk"
	"repro/internal/windows"
)

// runLemma4 validates Lemma 4: under the random permutation model the
// expected answer size is k*|I|/(tau+1).
func runLemma4(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	n := cfg.scaled(40_000)
	header(w, fmt.Sprintf("Lemma 4: E[|S|] = k*|I|/(tau+1) under the random permutation model (n=%d)", n))
	ta := newTable(w)
	ta.row("k", "tau", "|I|", "predicted", "measured", "ratio")
	cases := []struct{ k, tauPct, iPct int }{
		{1, 5, 50}, {5, 5, 50}, {10, 10, 50}, {10, 25, 80}, {25, 10, 50}, {5, 50, 80},
	}
	if cfg.Quick {
		cases = cases[:3]
	}
	trials := 9
	for _, c := range cases {
		var sizes []float64
		var tau, ilen int64
		for t := 0; t < trials; t++ {
			ds := datagen.RPM(cfg.Seed+int64(100*t), n)
			eng := core.NewEngine(ds, core.Options{})
			lo, hi := ds.Span()
			span := hi - lo
			tau = span * int64(c.tauPct) / 100
			ilen = span * int64(c.iPct) / 100
			res, err := eng.DurableTopK(core.Query{
				K: c.k, Tau: tau, Start: hi - ilen, End: hi,
				Scorer: mustSingle(), Algorithm: core.THop,
			})
			if err != nil {
				return err
			}
			sizes = append(sizes, float64(len(res.Records)))
		}
		predicted := float64(c.k) * float64(ilen+1) / float64(tau+1)
		measured := stats.Mean(sizes)
		ta.row(c.k, tau, ilen, fmt.Sprintf("%.1f", predicted), fmt.Sprintf("%.1f", measured),
			fmt.Sprintf("%.3f", measured/predicted))
	}
	ta.flush()
	fmt.Fprintln(w, "\npaper shape: measured/predicted ratio ~1.0 for every (k, tau, |I|)")
	return nil
}

// mustSingle ranks 1-d records by their only attribute.
func mustSingle() score.Scorer {
	s, err := score.NewSingle(0, 1)
	if err != nil {
		panic(err)
	}
	return s
}

// runLemma5 validates Lemma 5: on random independent data the durable
// k-skyband candidate count grows like k*(|I|/tau)*log^{d-1}(tau).
func runLemma5(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	n := cfg.scaled(20_000)
	k := defaultK
	header(w, fmt.Sprintf("Lemma 5: E[|C|] = O(k*|I|/tau*log^(d-1) tau) on IND data (n=%d, k=%d)", n, k))
	ta := newTable(w)
	ta.row("d", "tau", "|C| measured", "k|I|/tau", "log^(d-1)tau", "|C| / (k|I|/tau)", "bound ratio")
	dims := []int{1, 2, 3, 4}
	if cfg.Quick {
		dims = []int{2, 3}
	}
	for _, d := range dims {
		ds := datagen.IND(cfg.Seed, n, d)
		lo, hi := ds.Span()
		span := hi - lo
		tau := span * defaultTauPct / 100
		ilen := span * defaultIPct / 100
		ladder := skyband.NewLadder(ds, 0, 0) // exact durations
		count := float64(ladder.CandidateCount(k, hi-ilen, hi, tau))
		base := float64(k) * float64(ilen) / float64(tau)
		logF := math.Pow(math.Log(float64(tau)+2), float64(d-1))
		ta.row(d, tau, fmt.Sprintf("%.0f", count), fmt.Sprintf("%.1f", base),
			fmt.Sprintf("%.1f", logF),
			fmt.Sprintf("%.2f", count/base),
			fmt.Sprintf("%.3f", count/(base*logF)))
	}
	ta.flush()
	fmt.Fprintln(w, "\npaper shape: |C|/(k|I|/tau) grows ~log^(d-1) tau; the bound ratio stays O(1) across d")
	return nil
}

// runAblationThreshold measures the LengthThreshold trade-off of the
// building-block index.
func runAblationThreshold(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	ds, err := DatasetFor(cfg, "network-5")
	if err != nil {
		return err
	}
	header(w, "Ablation: index LengthThreshold (network-5, defaults k/tau/|I|)")
	ta := newTable(w)
	ta.row("threshold", "build ms", "s-hop ms", "t-hop ms")
	for _, lt := range []int{32, 128, 512, 2048} {
		buildStart := time.Now()
		eng := core.NewEngine(ds, core.Options{
			Index:             topk.Options{LengthThreshold: lt},
			SkybandScanBudget: 4096,
		})
		buildMS := float64(time.Since(buildStart).Microseconds()) / 1000
		spec := QuerySpec{K: defaultK, TauPct: defaultTauPct, IPct: defaultIPct}
		mh, err := RunConfiguration(eng, spec, core.SHop, cfg.Reps, cfg.Seed)
		if err != nil {
			return err
		}
		mt, err := RunConfiguration(eng, spec, core.THop, cfg.Reps, cfg.Seed)
		if err != nil {
			return err
		}
		ta.row(lt, fmt.Sprintf("%.1f", buildMS), ms(mh.TimeMS), ms(mt.TimeMS))
	}
	ta.flush()
	return nil
}

// runAblationBounds contrasts skyline-based node bounds with MBR-only
// bounds on correlated vs anti-correlated data.
func runAblationBounds(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	n := cfg.scaled(30_000)
	header(w, "Ablation: node summaries — capped skyline vs MBR-only upper bounds")
	ta := newTable(w)
	ta.row("dataset", "summary", "build ms", "s-hop ms", "t-hop ms")
	for _, kind := range []string{"ind", "anti"} {
		ds, err := DatasetFor(cfg, fmt.Sprintf("%s-%d", kind, n))
		if err != nil {
			return err
		}
		for _, msk := range []int{topk.DefaultMaxNodeSkyline, -1} {
			label := "skyline"
			if msk < 0 {
				label = "mbr-only"
			}
			buildStart := time.Now()
			eng := core.NewEngine(ds, core.Options{
				Index:             topk.Options{MaxNodeSkyline: msk},
				SkybandScanBudget: 4096,
			})
			buildMS := float64(time.Since(buildStart).Microseconds()) / 1000
			spec := QuerySpec{K: defaultK, TauPct: defaultTauPct, IPct: defaultIPct}
			mh, err := RunConfiguration(eng, spec, core.SHop, cfg.Reps, cfg.Seed)
			if err != nil {
				return err
			}
			mt, err := RunConfiguration(eng, spec, core.THop, cfg.Reps, cfg.Seed)
			if err != nil {
				return err
			}
			ta.row(kind, label, fmt.Sprintf("%.1f", buildMS), ms(mh.TimeMS), ms(mt.TimeMS))
		}
	}
	ta.flush()
	return nil
}

// runAblationForest contrasts the static index with the appendable forest.
func runAblationForest(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	n := cfg.scaled(30_000)
	ds := datagen.IND(cfg.Seed, n, 2)
	header(w, fmt.Sprintf("Ablation: static tree vs appendable forest (IND n=%d)", n))

	staticStart := time.Now()
	idx := topk.Build(ds, topk.Options{})
	staticBuild := time.Since(staticStart)

	forestStart := time.Now()
	f := topk.NewForest(ds.Dims(), topk.Options{})
	for i := 0; i < ds.Len(); i++ {
		if err := f.Append(ds.Time(i), ds.Attrs(i)); err != nil {
			return err
		}
	}
	forestBuild := time.Since(forestStart)

	lo, hi := ds.Span()
	span := hi - lo
	reps := cfg.Reps * 40
	rng := nil2rng(cfg.Seed)
	var staticQ, forestQ time.Duration
	for r := 0; r < reps; r++ {
		s := RandomPreference(rng, ds.Dims())
		t2 := lo + int64(rng.Int63n(span))
		t1 := t2 - span/10
		st := time.Now()
		a := idx.Query(s, defaultK, t1, t2)
		staticQ += time.Since(st)
		st = time.Now()
		b := f.Query(s, defaultK, t1, t2)
		forestQ += time.Since(st)
		if len(a) != len(b) {
			return fmt.Errorf("forest/static disagreement: %d vs %d items", len(a), len(b))
		}
	}
	ta := newTable(w)
	ta.row("index", "build ms", "query us (avg)", "trees", "rebuilds")
	ta.row("static", fmt.Sprintf("%.1f", float64(staticBuild.Microseconds())/1000),
		fmt.Sprintf("%.1f", float64(staticQ.Microseconds())/float64(reps)), 1, 1)
	ta.row("forest", fmt.Sprintf("%.1f", float64(forestBuild.Microseconds())/1000),
		fmt.Sprintf("%.1f", float64(forestQ.Microseconds())/float64(reps)), f.Trees(), f.Rebuilds())
	ta.flush()
	fmt.Fprintln(w, "\nexpected: forest pays a modest query fan-out for O(log n) amortized appends")
	return nil
}

// runSlidingBaseline quantifies footnote 1: deriving the durable answer by
// post-filtering a full sliding-window pass versus running t-hop/s-hop.
func runSlidingBaseline(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	eng, err := EngineFor(cfg, "nba-2")
	if err != nil {
		return err
	}
	ds := eng.Dataset()
	spec := QuerySpec{K: defaultK, TauPct: defaultTauPct, IPct: defaultIPct}
	header(w, "Footnote-1 baseline: sliding-window post-filter vs hop algorithms (nba-2)")
	ta := newTable(w)
	ta.row("method", "time ms", "|S|")
	rng := nil2rng(cfg.Seed)
	s := RandomPreference(rng, ds.Dims())

	q := spec.Materialize(ds, s, core.THop)
	begin := time.Now()
	filtered := windows.SlidingFilterDurable(ds, eng.Index(), s, q.K, q.Tau, q.Start, q.End)
	slidingMS := float64(time.Since(begin).Microseconds()) / 1000
	ta.row("sliding+filter", fmt.Sprintf("%.2f", slidingMS), len(filtered))

	for _, alg := range []core.Algorithm{core.THop, core.SHop} {
		res, err := eng.DurableTopK(spec.Materialize(ds, s, alg))
		if err != nil {
			return err
		}
		if len(res.Records) != len(filtered) {
			return fmt.Errorf("sliding baseline disagreement: %d vs %d", len(filtered), len(res.Records))
		}
		ta.row(alg.String(), fmt.Sprintf("%.2f", float64(res.Stats.Elapsed.Microseconds())/1000), len(res.Records))
	}
	ta.flush()
	return nil
}
