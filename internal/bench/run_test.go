package bench

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
)

func TestFormatHelpers(t *testing.T) {
	if got := ms([]float64{1, 2, 3}); got != "2.00±1.00" {
		t.Fatalf("ms=%q", got)
	}
	if got := cnt([]float64{1, 2}); got != "1.5" {
		t.Fatalf("cnt=%q", got)
	}
}

func TestTableAlignment(t *testing.T) {
	var buf bytes.Buffer
	ta := newTable(&buf)
	ta.row("a", "bb", "ccc")
	ta.row(1, 22, 333)
	ta.flush()
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("rows: %d", len(lines))
	}
	if !strings.HasPrefix(lines[1], "1") {
		t.Fatalf("row content: %q", lines[1])
	}
}

func TestRandomPreferencePositive(t *testing.T) {
	rng := nil2rng(1)
	for i := 0; i < 20; i++ {
		s := RandomPreference(rng, 4)
		if s.Dims() != 4 {
			t.Fatal("dims")
		}
		// All-positive weights keep the scorer monotone, which the S-Band
		// runs rely on.
		x := []float64{1, 1, 1, 1}
		if s.Score(x) <= 0 {
			t.Fatal("positive weights must yield a positive score of 1s")
		}
	}
}

func TestAsciiScatterShape(t *testing.T) {
	ds := datagen.IND(1, 500, 2)
	out := asciiScatter(ds, 20, 8)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 8 {
		t.Fatalf("rows=%d", len(lines))
	}
	for _, l := range lines {
		if len(l) != 20 {
			t.Fatalf("row width %d", len(l))
		}
	}
	if !strings.ContainsAny(out, ".:+#@") {
		t.Fatal("scatter is blank")
	}
}

func TestRunConfigurationMetrics(t *testing.T) {
	eng, err := EngineFor(tinyConfig(), "ind-600")
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunConfiguration(eng, QuerySpec{K: 3, TauPct: 10, IPct: 50}, core.THop, 4, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.TimeMS) != 4 || len(m.Queries) != 4 || len(m.Answer) != 4 {
		t.Fatalf("metrics lengths: %+v", m)
	}
	for _, q := range m.Queries {
		if q <= 0 {
			t.Fatal("t-hop must record queries")
		}
	}
}

func TestConfigSweepsQuickAreSubsets(t *testing.T) {
	full := Config{}.withDefaults()
	quickCfg := Config{Quick: true}.withDefaults()
	asSet := func(xs []int) map[int]bool {
		m := map[int]bool{}
		for _, x := range xs {
			m[x] = true
		}
		return m
	}
	pairs := [][2][]int{
		{full.tauSweep(), quickCfg.tauSweep()},
		{full.kSweep(), quickCfg.kSweep()},
		{full.iSweep(), quickCfg.iSweep()},
		{full.dSweep(), quickCfg.dSweep()},
		{full.sizeSweep(), quickCfg.sizeSweep()},
	}
	for i, p := range pairs {
		fullSet := asSet(p[0])
		for _, v := range p[1] {
			if !fullSet[v] {
				t.Fatalf("sweep %d: quick value %d not in the full sweep", i, v)
			}
		}
		if len(p[1]) >= len(p[0]) {
			t.Fatalf("sweep %d: quick must be smaller", i)
		}
	}
}

func TestScaledFloor(t *testing.T) {
	cfg := Config{Scale: 0.00001}.withDefaults()
	if cfg.scaled(1_000_000) < 256 {
		t.Fatal("scaled sizes must keep a sane floor")
	}
}
