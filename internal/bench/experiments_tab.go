package bench

import (
	"fmt"
	"io"
	"math/rand"

	"repro/internal/data"
	"repro/internal/dbms"
	"repro/internal/stats"
)

func nil2rng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

// dbmsRun evaluates one stored procedure over reps preference vectors.
type dbmsMetrics struct {
	TimeMS    []float64
	PageReads []float64
	Queries   []float64
}

func runDBMSConfig(db *dbms.DB, ds *data.Dataset, k int, tau, start, end int64, useHop bool, reps int, seed int64) (*dbmsMetrics, error) {
	rng := nil2rng(seed)
	m := &dbmsMetrics{}
	for r := 0; r < reps; r++ {
		// Cold cache per repetition: the paper's regime has data far larger
		// than memory, so page reads reflect true index selectivity.
		if err := db.Pool.DropAll(); err != nil {
			return nil, err
		}
		s := RandomPreference(rng, ds.Dims())
		var st dbms.Stats
		var err error
		if useHop {
			_, st, err = db.DurableTHop(s, k, tau, start, end)
		} else {
			_, st, err = db.DurableTBase(s, k, tau, start, end)
		}
		if err != nil {
			return nil, err
		}
		m.TimeMS = append(m.TimeMS, float64(st.Elapsed.Microseconds())/1000)
		m.PageReads = append(m.PageReads, float64(st.PageReads))
		m.Queries = append(m.Queries, float64(st.TopKQueries))
	}
	return m, nil
}

var dbmsCache = map[string]*dbms.DB{}

func dbmsFor(cfg Config, dsName string, n int) (*dbms.DB, *data.Dataset, error) {
	ds, err := DatasetFor(cfg, dsName)
	if err != nil {
		return nil, nil, err
	}
	if n > 0 && n < ds.Len() {
		ds = ds.Prefix(n)
	}
	key := fmt.Sprintf("%s/%d/scale=%g", dsName, ds.Len(), cfg.Scale)
	cacheMu.Lock()
	db, ok := dbmsCache[key]
	cacheMu.Unlock()
	if ok {
		return db, ds, nil
	}
	db, err = dbms.Load(ds, dbms.Options{})
	if err != nil {
		return nil, nil, err
	}
	cacheMu.Lock()
	dbmsCache[key] = db
	cacheMu.Unlock()
	return db, ds, nil
}

// runTable4 regenerates Table IV: DBMS query time comparison on NBA-2 as tau
// varies.
func runTable4(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	db, ds, err := dbmsFor(cfg, "nba-2", cfg.dbmsN())
	if err != nil {
		return err
	}
	lo, hi := ds.Span()
	span := hi - lo
	taus := []int{10, 20, 30, 40, 50}
	header(w, "Table IV: DBMS query time (ms) and page reads on NBA-2, varying tau (|I|=50%, k=10)")
	ta := newTable(w)
	ta.row("tau%", "t-hop ms", "t-base ms", "t-hop reads", "t-base reads", "speedup")
	for _, tp := range taus {
		tau := span * int64(tp) / 100
		start := hi - span*defaultIPct/100
		hop, err := runDBMSConfig(db, ds, defaultK, tau, start, hi, true, cfg.Reps/2+1, cfg.Seed)
		if err != nil {
			return err
		}
		base, err := runDBMSConfig(db, ds, defaultK, tau, start, hi, false, cfg.Reps/2+1, cfg.Seed)
		if err != nil {
			return err
		}
		ta.row(tp, ms(hop.TimeMS), ms(base.TimeMS), cnt(hop.PageReads), cnt(base.PageReads),
			fmt.Sprintf("%.1fx", stats.Mean(base.TimeMS)/maxf(stats.Mean(hop.TimeMS), 1e-6)))
	}
	ta.flush()
	fmt.Fprintln(w, "\npaper shape: t-base flat-ish in tau; t-hop speeds up with tau; >=10x overall")
	return nil
}

// runTable5 regenerates Table V: DBMS query time on NBA-2 as |I| varies.
func runTable5(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	db, ds, err := dbmsFor(cfg, "nba-2", cfg.dbmsN())
	if err != nil {
		return err
	}
	lo, hi := ds.Span()
	span := hi - lo
	header(w, "Table V: DBMS query time (ms) and page reads on NBA-2, varying |I| (tau=10%, k=10)")
	ta := newTable(w)
	ta.row("|I|%", "t-hop ms", "t-base ms", "t-hop reads", "t-base reads", "speedup")
	for _, ip := range []int{10, 20, 30, 40, 50} {
		start := hi - span*int64(ip)/100
		tau := span * defaultTauPct / 100
		hop, err := runDBMSConfig(db, ds, defaultK, tau, start, hi, true, cfg.Reps/2+1, cfg.Seed)
		if err != nil {
			return err
		}
		base, err := runDBMSConfig(db, ds, defaultK, tau, start, hi, false, cfg.Reps/2+1, cfg.Seed)
		if err != nil {
			return err
		}
		ta.row(ip, ms(hop.TimeMS), ms(base.TimeMS), cnt(hop.PageReads), cnt(base.PageReads),
			fmt.Sprintf("%.1fx", stats.Mean(base.TimeMS)/maxf(stats.Mean(hop.TimeMS), 1e-6)))
	}
	ta.flush()
	fmt.Fprintln(w, "\npaper shape: t-base linear in |I|; t-hop grows with the answer only")
	return nil
}

// runTable6 regenerates Table VI: DBMS comparison across datasets at larger
// scale.
func runTable6(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	n := cfg.dbmsBigN()
	header(w, "Table VI: DBMS query time (ms) across datasets (defaults k=10, tau=10%, |I|=50%)")
	ta := newTable(w)
	ta.row("dataset", "heap pages", "t-hop ms", "t-base ms", "t-hop reads", "t-base reads", "speedup")
	for _, dsName := range []string{"nba-2", fmt.Sprintf("ind-%d", n), fmt.Sprintf("anti-%d", n)} {
		db, ds, err := dbmsFor(cfg, dsName, n)
		if err != nil {
			return err
		}
		lo, hi := ds.Span()
		span := hi - lo
		tau := span * defaultTauPct / 100
		start := hi - span*defaultIPct/100
		reps := cfg.Reps/3 + 1
		hop, err := runDBMSConfig(db, ds, defaultK, tau, start, hi, true, reps, cfg.Seed)
		if err != nil {
			return err
		}
		base, err := runDBMSConfig(db, ds, defaultK, tau, start, hi, false, reps, cfg.Seed)
		if err != nil {
			return err
		}
		ta.row(dsName, db.Table.NumPages(), ms(hop.TimeMS), ms(base.TimeMS),
			cnt(hop.PageReads), cnt(base.PageReads),
			fmt.Sprintf("%.1fx", stats.Mean(base.TimeMS)/maxf(stats.Mean(hop.TimeMS), 1e-6)))
	}
	ta.flush()
	fmt.Fprintln(w, "\npaper shape: the t-hop/t-base gap widens with dataset size (100x+ at the paper's 500M scale)")
	return nil
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
