package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/score"
	"repro/internal/store"
	"repro/internal/wal"
)

// StreamReport is the schema of BENCH_stream.json: the live-ingestion
// trajectory tracked across PRs alongside BENCH_topk.json and
// BENCH_sharded.json. Throughput numbers are host-dependent (compare against
// the recorded GOMAXPROCS); the amortization column is structural and
// host-independent.
type StreamReport struct {
	Dataset    string `json:"dataset"`
	Records    int    `json:"records"`
	Dims       int    `json:"dims"`
	K          int    `json:"k"`
	TauPct     int    `json:"tau_pct"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Seed       int64  `json:"seed"`

	// Pure ingestion: sustained Append throughput over the whole dataset,
	// plus the incremental index's rebuild accounting.
	AppendsPerSec float64 `json:"appends_per_sec"`
	Rebuilds      int     `json:"rebuilds"`
	// IndexedRowsPerAppend is the rebuild amortization constant: total rows
	// (re)indexed by chunk-tree builds divided by records appended. The
	// logarithmic method bounds it by O(log n).
	IndexedRowsPerAppend float64 `json:"indexed_rows_per_append"`

	// Interleaved append+query: every append is followed by a durable
	// top-k query over the trailing window — the freshness lag is how long
	// an arrival takes to be reflected in a queryable answer (append +
	// first consistent query, amortized over the stream).
	IngestWithQueriesPerSec float64 `json:"ingest_with_queries_per_sec"`
	FreshnessLagNs          float64 `json:"freshness_lag_ns"`

	// Steady state: repeated durable top-k queries with no appends in
	// between (memoized snapshot engine, warm probe scratch). Allocation
	// counts are host-independent, so the benchmark gate holds the line on
	// them the way it does for the probe rows of BENCH_topk.json.
	SteadyQueryNs     float64 `json:"steady_query_ns"`
	SteadyQueryAllocs int64   `json:"steady_query_allocs"`
	SteadyQueryBytes  int64   `json:"steady_query_bytes"`

	// Live+sharded lifecycle: the same ingest routed through a
	// LiveShardedEngine whose mutable tail seals into an immutable static
	// shard every LiveShardedSealRows records. SealedRowsPerAppend is the
	// freeze amortization (each row is frozen into a static index exactly
	// once, so it converges to 1); IndexedRowsPerAppend additionally counts
	// the tail forest's incremental chunk-tree work, bounded by
	// O(log SealRows) + 1 regardless of stream length — the number the
	// lifecycle exists to keep flat. The steady query runs over the full
	// sealed+tail epoch and is alloc-gated like the plain live steady query.
	LiveShardedSealRows             int     `json:"livesharded_seal_rows"`
	LiveShardedAppendsPerSec        float64 `json:"livesharded_appends_per_sec"`
	LiveShardedSeals                int     `json:"livesharded_seals"`
	LiveShardedSealedRowsPerAppend  float64 `json:"livesharded_sealed_rows_per_append"`
	LiveShardedIndexedRowsPerAppend float64 `json:"livesharded_indexed_rows_per_append"`
	LiveShardedSteadyQueryNs        float64 `json:"livesharded_steady_query_ns"`
	LiveShardedSteadyQueryAllocs    int64   `json:"livesharded_steady_query_allocs"`
	LiveShardedSteadyQueryBytes     int64   `json:"livesharded_steady_query_bytes"`

	// Compaction: the same stream under a deliberately fine seal cadence
	// (CompactSealRows, ~64 level-0 shards per run) ingested twice — once
	// with background size-tiered compaction (CompactFanout) and once
	// without. The shard counts are the headline: without compaction the
	// live set grows linearly with the seal count; with it the LSM leveling
	// holds it at O(fanout · log n). VisitedShards counts the shards whose
	// row range intersects the steady query's window reach — the straddler
	// fan-out the query planner must stitch across — and the steady-query
	// ns/allocs pairs price that fan-out with and without compaction.
	CompactSealRows          int     `json:"compact_seal_rows,omitempty"`
	CompactFanout            int     `json:"compact_fanout,omitempty"`
	Compactions              int     `json:"compactions,omitempty"`
	CompactMaxLevel          int     `json:"compact_max_level,omitempty"`
	CompactShards            int     `json:"compact_shards,omitempty"`
	CompactShardsBaseline    int     `json:"compact_shards_baseline,omitempty"`
	CompactVisitedShards     int     `json:"compact_visited_shards,omitempty"`
	CompactVisitedBaseline   int     `json:"compact_visited_shards_baseline,omitempty"`
	CompactAppendsPerSec     float64 `json:"compact_appends_per_sec,omitempty"`
	CompactSteadyQueryNs     float64 `json:"compact_steady_query_ns,omitempty"`
	CompactSteadyQueryAllocs int64   `json:"compact_steady_query_allocs,omitempty"`
	CompactSteadyQueryBytes  int64   `json:"compact_steady_query_bytes,omitempty"`
	CompactBaselineQueryNs   float64 `json:"compact_baseline_steady_query_ns,omitempty"`

	// Durability: the same ingest write-ahead logged through the crash-safe
	// store, one rate per fsync policy ("none", "interval", "always"),
	// group-committed in WALBatchRows batches. The store runs on an
	// in-memory filesystem, so the rates isolate the durability layer's
	// framing, checksumming and commit overhead — not device sync latency —
	// and stay comparable across hosts. RecoveryReplayRowsPerSec is how fast
	// Open replays a checkpoint-free tail WAL through the normal append
	// path (the cold-restart cost per un-checkpointed row).
	WALBatchRows             int                `json:"wal_batch_rows,omitempty"`
	WALAppendsPerSec         map[string]float64 `json:"wal_appends_per_sec,omitempty"`
	RecoveryReplayRowsPerSec float64            `json:"recovery_replay_rows_per_sec,omitempty"`

	// Concurrent serving: wire queries over loopback TCP against a
	// time-sharded engine behind the admission scheduler (ServeWorkers
	// workers) and shared result cache. QueriesPerSec is keyed by client
	// count ("1", "4", "16"); each query carries a unique scorer so the rows
	// measure real concurrent evaluation, while CacheHitRate comes from a
	// separate hot-pool phase where every client repeats a small query set
	// (see serveThroughput). Wall-clock and host-dependent like the other
	// throughput rows.
	ServeWorkers       int                `json:"serve_workers,omitempty"`
	ServeQueriesPerSec map[string]float64 `json:"queries_per_sec,omitempty"`
	ServeCacheHitRate  float64            `json:"cache_hit_rate,omitempty"`

	// Standing queries: the first StandingSubRows records fed through the
	// server's append path with N standing subscriptions attached over
	// loopback TCP, keyed by subscription count ("1", "16", "256"); each
	// subscription carries a distinct random scorer, so the appends/sec rows
	// measure worst-case verdict fan-out (identical scorers would share
	// their scoring). AppendsPerSec stops its clock only once every
	// subscriber holds the final append's event; ConfirmLatencyNs is the
	// mean delay from starting the append that closed a record's look-ahead
	// window to a subscriber holding the confirmation (see standingbench.go).
	StandingSubRows          int                `json:"standing_sub_rows,omitempty"`
	StandingAppendsPerSec    map[string]float64 `json:"standing_appends_per_sec,omitempty"`
	StandingConfirmLatencyNs map[string]float64 `json:"standing_confirm_latency_ns,omitempty"`

	// BackfillReplayEventsPerSec is the server-side catch-up rate for a
	// reconnecting durable subscriber: the whole StandingSubRows stream
	// commits while the registration is detached (its connection gone), then
	// one client resumes by key from prefix zero and drains the replayed
	// verdict stream — re-scored server-side, paginated by the bounded event
	// queue's evict/resume cycles — until it has caught up. This is the cost
	// of healing a gap after a disconnect or crash, the number the wire
	// chaos harness leans on (see backfillReplay in standingbench.go).
	BackfillReplayEventsPerSec float64 `json:"backfill_replay_events_per_sec,omitempty"`
}

// StreamPerfReport measures the live-ingestion subsystem on the given
// dataset: ingest throughput, rebuild amortization, interleaved
// append+query freshness, and steady-state live query latency.
func StreamPerfReport(cfg Config, dsName string) (*StreamReport, error) {
	cfg = cfg.withDefaults()
	ds, err := DatasetFor(cfg, dsName)
	if err != nil {
		return nil, err
	}
	n, d := ds.Len(), ds.Dims()
	spec := QuerySpec{K: defaultK, TauPct: defaultTauPct, IPct: defaultIPct}
	rep := &StreamReport{
		Dataset: dsName, Records: n, Dims: d,
		K: spec.K, TauPct: spec.TauPct,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       cfg.Seed,
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := RandomPreference(rng, d)

	// Pure ingestion throughput + rebuild amortization.
	le, err := core.NewLiveEngine(d, EngineOptions(), core.LiveOptions{})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, _, err := le.Append(ds.Time(i), ds.Attrs(i)); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start).Seconds()
	rep.AppendsPerSec = float64(n) / elapsed
	rep.Rebuilds = le.Rebuilds()
	rep.IndexedRowsPerAppend = float64(le.IndexedRows()) / float64(n)

	// Interleaved append+query: one trailing-window durable top-k per
	// append, measuring how fresh answers stay while the stream runs.
	le2, err := core.NewLiveEngine(d, EngineOptions(), core.LiveOptions{})
	if err != nil {
		return nil, err
	}
	lo, hi := ds.Span()
	tau := (hi - lo) * int64(spec.TauPct) / 100
	var queryNs int64
	start = time.Now()
	for i := 0; i < n; i++ {
		t := ds.Time(i)
		if _, _, err := le2.Append(t, ds.Attrs(i)); err != nil {
			return nil, err
		}
		qs := time.Now()
		if _, err := le2.DurableTopK(core.Query{
			K: spec.K, Tau: tau, Start: t - tau, End: t, Scorer: s, Algorithm: core.SHop,
		}); err != nil {
			return nil, err
		}
		queryNs += time.Since(qs).Nanoseconds()
	}
	rep.IngestWithQueriesPerSec = float64(n) / time.Since(start).Seconds()
	rep.FreshnessLagNs = float64(queryNs) / float64(n)

	// Steady state: the batch-comparable query workload over the fully
	// ingested live engine, measured with allocation accounting so the
	// benchmark gate can fail on per-query allocation growth.
	q := spec.Materialize(le.Dataset(), s, core.SHop)
	var evalErr error
	r := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := le.DurableTopK(q); err != nil {
				evalErr = err
				b.FailNow()
			}
		}
	})
	if evalErr != nil {
		return nil, evalErr
	}
	rep.SteadyQueryNs = float64(r.NsPerOp())
	rep.SteadyQueryAllocs = r.AllocsPerOp()
	rep.SteadyQueryBytes = r.AllocedBytesPerOp()

	// Live+sharded lifecycle: the same ingest through the seal/freeze
	// engine (8 seals across the stream), then the steady query over the
	// resulting sealed+tail epoch.
	sealRows := n / 8
	if sealRows < 1 {
		sealRows = 1
	}
	rep.LiveShardedSealRows = sealRows
	lse, err := core.NewLiveShardedEngine(d, EngineOptions(), core.LiveOptions{Capacity: sealRows},
		core.LiveShardOptions{SealRows: sealRows})
	if err != nil {
		return nil, err
	}
	start = time.Now()
	for i := 0; i < n; i++ {
		if _, _, err := lse.Append(ds.Time(i), ds.Attrs(i)); err != nil {
			return nil, err
		}
	}
	// Freeze builds run in the background; include their completion in the
	// measured window so the amortization constants cover the whole
	// lifecycle, not just the appender's side of it.
	lse.WaitSealed()
	rep.LiveShardedAppendsPerSec = float64(n) / time.Since(start).Seconds()
	rep.LiveShardedSeals = lse.Seals()
	rep.LiveShardedSealedRowsPerAppend = float64(lse.SealedRows()) / float64(n)
	rep.LiveShardedIndexedRowsPerAppend = float64(lse.IndexedRows()) / float64(n)

	qs := spec.Materialize(lse.Dataset(), s, core.SHop)
	r = testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := lse.DurableTopK(qs); err != nil {
				evalErr = err
				b.FailNow()
			}
		}
	})
	if evalErr != nil {
		return nil, evalErr
	}
	rep.LiveShardedSteadyQueryNs = float64(r.NsPerOp())
	rep.LiveShardedSteadyQueryAllocs = r.AllocsPerOp()
	rep.LiveShardedSteadyQueryBytes = r.AllocedBytesPerOp()

	// Compaction: fine seal cadence, with and without LSM leveling.
	if err := compactionLifecycle(rep, ds, spec, s); err != nil {
		return nil, err
	}

	// Durability: the ingest write-ahead logged through the crash-safe store,
	// once per fsync policy.
	rep.WALBatchRows = walBatchRows
	rep.WALAppendsPerSec = make(map[string]float64, 3)
	for _, pol := range []wal.SyncPolicy{wal.SyncNone, wal.SyncInterval, wal.SyncAlways} {
		perSec, err := walIngestRate(ds, pol, sealRows)
		if err != nil {
			return nil, err
		}
		rep.WALAppendsPerSec[pol.String()] = perSec
	}

	// Recovery replay: a WAL holding the full stream (the seal threshold
	// sits beyond the dataset, so no checkpoint short-circuits the replay)
	// driven back through the normal append path at Open.
	rfs := wal.NewMemFS()
	ropts := store.Options{FS: rfs, Sync: wal.SyncNone,
		Engine: EngineOptions(), Shard: core.LiveShardOptions{SealRows: n + 1}}
	st, err := store.Open("replay", d, ropts)
	if err != nil {
		return nil, err
	}
	if err := feedStore(st, ds); err != nil {
		return nil, err
	}
	if err := st.Close(); err != nil {
		return nil, err
	}
	start = time.Now()
	rec, err := store.Open("replay", d, ropts)
	if err != nil {
		return nil, err
	}
	recoverSecs := time.Since(start).Seconds()
	if replayed := rec.Stats().ReplayedRows; replayed != n {
		return nil, fmt.Errorf("bench: recovery replayed %d of %d rows", replayed, n)
	}
	rep.RecoveryReplayRowsPerSec = float64(n) / recoverSecs
	if err := rec.Close(); err != nil {
		return nil, err
	}

	// Concurrent serving throughput + cache effectiveness over the wire.
	if err := serveThroughput(rep, ds, cfg.Seed); err != nil {
		return nil, err
	}
	// Standing-query fan-out: appends with 1/16/256 subscriptions attached.
	if err := standingThroughput(rep, ds, cfg.Seed); err != nil {
		return nil, err
	}
	return rep, nil
}

// compactFanout is the size-tiered merge fanout of the compaction rows:
// wide enough that levels are visibly larger than their constituents, small
// enough that a 64-seal run climbs several levels.
const compactFanout = 4

// compactionLifecycle fills the compaction rows of the stream report: the
// same stream ingested under a fine seal cadence twice — once without
// compaction (the linearly growing baseline) and once with background LSM
// leveling — then the same trailing steady query over both final epochs.
func compactionLifecycle(rep *StreamReport, ds *data.Dataset, spec QuerySpec, s score.Scorer) error {
	n, d := ds.Len(), ds.Dims()
	sealRows := n / 64
	if sealRows < 1 {
		sealRows = 1
	}
	rep.CompactSealRows = sealRows
	rep.CompactFanout = compactFanout

	build := func(fanout int) (*core.LiveShardedEngine, float64, error) {
		lse, err := core.NewLiveShardedEngine(d, EngineOptions(), core.LiveOptions{Capacity: sealRows},
			core.LiveShardOptions{SealRows: sealRows, CompactFanout: fanout})
		if err != nil {
			return nil, 0, err
		}
		start := time.Now()
		for i := 0; i < n; i++ {
			if _, _, err := lse.Append(ds.Time(i), ds.Attrs(i)); err != nil {
				return nil, 0, err
			}
		}
		// Include the background freeze and merge work in the window: the
		// rate prices the whole lifecycle, not just the appender's half.
		lse.WaitSealed()
		lse.WaitCompacted()
		return lse, float64(n) / time.Since(start).Seconds(), nil
	}
	steady := func(lse *core.LiveShardedEngine, q core.Query) (ns float64, allocs, bytes int64, err error) {
		var evalErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := lse.DurableTopK(q); err != nil {
					evalErr = err
					b.FailNow()
				}
			}
		})
		return float64(r.NsPerOp()), r.AllocsPerOp(), r.AllocedBytesPerOp(), evalErr
	}
	// visited counts the shards whose rows a look-back query over [Start-Tau,
	// End] can touch: the straddler fan-out of the final epoch.
	visited := func(lse *core.LiveShardedEngine, q core.Query) int {
		count := 0
		for _, in := range lse.Shards() {
			if in.End >= q.Start-q.Tau && in.Start <= q.End {
				count++
			}
		}
		return count
	}

	base, _, err := build(0)
	if err != nil {
		return err
	}
	q := spec.Materialize(base.Dataset(), s, core.SHop)
	rep.CompactShardsBaseline = base.NumShards()
	rep.CompactVisitedBaseline = visited(base, q)
	rep.CompactBaselineQueryNs, _, _, err = steady(base, q)
	if err != nil {
		return err
	}

	lse, perSec, err := build(compactFanout)
	if err != nil {
		return err
	}
	rep.CompactAppendsPerSec = perSec
	rep.Compactions = lse.Compactions()
	rep.CompactMaxLevel = lse.MaxLevel()
	rep.CompactShards = lse.NumShards()
	rep.CompactVisitedShards = visited(lse, q)
	rep.CompactSteadyQueryNs, rep.CompactSteadyQueryAllocs, rep.CompactSteadyQueryBytes, err = steady(lse, q)
	return err
}

// runCompactionScale is the registry experiment behind `durbench
// -exp compaction`: the compaction rows of BENCH_stream.json as a table.
func runCompactionScale(cfg Config, w io.Writer) error {
	dsName := "nba-2"
	if cfg.Quick {
		dsName = "ind-4000"
	}
	rep, err := StreamPerfReport(cfg, dsName)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dataset=%s n=%d d=%d | seal every %d rows | fanout=%d | GOMAXPROCS=%d seed=%d\n",
		rep.Dataset, rep.Records, rep.Dims, rep.CompactSealRows, rep.CompactFanout, rep.GOMAXPROCS, rep.Seed)
	fmt.Fprintf(w, "%-34s %12d %12d\n", "live shards (without / with)", rep.CompactShardsBaseline, rep.CompactShards)
	fmt.Fprintf(w, "%-34s %12d %12d\n", "query-visited shards (w/o / with)", rep.CompactVisitedBaseline, rep.CompactVisitedShards)
	fmt.Fprintf(w, "%-34s %12.0f %12.0f\n", "steady query ns (without / with)", rep.CompactBaselineQueryNs, rep.CompactSteadyQueryNs)
	fmt.Fprintf(w, "%-34s %25d\n", "compactions", rep.Compactions)
	fmt.Fprintf(w, "%-34s %25d\n", "max level", rep.CompactMaxLevel)
	fmt.Fprintf(w, "%-34s %25.0f\n", "appends/s (compacting lifecycle)", rep.CompactAppendsPerSec)
	fmt.Fprintf(w, "%-34s %25d\n", "steady query allocs (with)", rep.CompactSteadyQueryAllocs)
	fmt.Fprintln(w, "\nexpected: without compaction the shard count equals the seal count (linear"+
		"\nin stream length); with it the count stays O(fanout * log n), shrinking the"+
		"\nstraddler fan-out every windowed query pays to stitch across shard seams")
	return nil
}

// walBatchRows is the group-commit batch size of the WAL ingest rows: large
// enough to amortize the commit write, small enough to keep acknowledgement
// latency realistic for a streaming producer.
const walBatchRows = 256

// walIngestRate write-ahead logs the whole dataset through a crash-safe
// store on an in-memory filesystem and returns the sustained append rate.
func walIngestRate(ds *data.Dataset, pol wal.SyncPolicy, sealRows int) (float64, error) {
	st, err := store.Open("walbench", ds.Dims(), store.Options{
		FS: wal.NewMemFS(), Sync: pol,
		Engine: EngineOptions(), Shard: core.LiveShardOptions{SealRows: sealRows},
	})
	if err != nil {
		return 0, err
	}
	start := time.Now()
	if err := feedStore(st, ds); err != nil {
		return 0, err
	}
	st.WaitCheckpoints()
	perSec := float64(ds.Len()) / time.Since(start).Seconds()
	return perSec, st.Close()
}

// feedStore appends the whole dataset in walBatchRows group commits.
func feedStore(st *store.Store, ds *data.Dataset) error {
	n := ds.Len()
	batch := make([]store.Row, 0, walBatchRows)
	for i := 0; i < n; i++ {
		batch = append(batch, store.Row{T: ds.Time(i), Attrs: ds.Attrs(i)})
		if len(batch) == walBatchRows || i == n-1 {
			if _, _, _, err := st.AppendBatch(batch); err != nil {
				return err
			}
			batch = batch[:0]
		}
	}
	return nil
}

// WriteStreamJSON runs StreamPerfReport and writes BENCH_stream.json.
func WriteStreamJSON(cfg Config, dsName, path string) error {
	rep, err := StreamPerfReport(cfg, dsName)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// runStreamScale is the registry experiment: the BENCH_stream.json numbers
// rendered as a table.
func runStreamScale(cfg Config, w io.Writer) error {
	dsName := "nba-2"
	if cfg.Quick {
		dsName = "ind-4000"
	}
	rep, err := StreamPerfReport(cfg, dsName)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dataset=%s n=%d d=%d | k=%d tau=%d%% | GOMAXPROCS=%d seed=%d\n",
		rep.Dataset, rep.Records, rep.Dims, rep.K, rep.TauPct, rep.GOMAXPROCS, rep.Seed)
	fmt.Fprintf(w, "%-28s %14.0f\n", "appends/s (pure ingest)", rep.AppendsPerSec)
	fmt.Fprintf(w, "%-28s %14d\n", "chunk-tree rebuilds", rep.Rebuilds)
	fmt.Fprintf(w, "%-28s %14.2f\n", "indexed rows per append", rep.IndexedRowsPerAppend)
	fmt.Fprintf(w, "%-28s %14.0f\n", "appends/s (query each row)", rep.IngestWithQueriesPerSec)
	fmt.Fprintf(w, "%-28s %14.0f\n", "freshness lag ns", rep.FreshnessLagNs)
	fmt.Fprintf(w, "%-28s %14.0f\n", "steady live query ns", rep.SteadyQueryNs)
	fmt.Fprintf(w, "%-28s %14d\n", "steady live query allocs", rep.SteadyQueryAllocs)
	for _, pol := range []string{"none", "interval", "always"} {
		label := fmt.Sprintf("wal appends/s (fsync=%s)", pol)
		fmt.Fprintf(w, "%-30s %12.0f\n", label, rep.WALAppendsPerSec[pol])
	}
	fmt.Fprintf(w, "%-30s %12.0f\n", "recovery replay rows/s", rep.RecoveryReplayRowsPerSec)
	fmt.Fprintln(w, "\nexpected: indexed rows per append stays O(log n); freshness lag tracks a"+
		"\nsingle trailing-window query (no index rebuild on the query path); the"+
		"\nwal rows bound what crash safety costs on top of the plain ingest rate")
	return nil
}

// runLiveShardedScale is the registry experiment behind `durbench
// -livesharded`: the seal/freeze lifecycle trajectory of BENCH_stream.json
// rendered as a table — ingest throughput through the lifecycle, the seal and
// rebuild amortization constants, and the steady sealed+tail query.
func runLiveShardedScale(cfg Config, w io.Writer) error {
	dsName := "nba-2"
	if cfg.Quick {
		dsName = "ind-4000"
	}
	rep, err := StreamPerfReport(cfg, dsName)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dataset=%s n=%d d=%d | k=%d tau=%d%% | seal every %d rows | GOMAXPROCS=%d seed=%d\n",
		rep.Dataset, rep.Records, rep.Dims, rep.K, rep.TauPct, rep.LiveShardedSealRows, rep.GOMAXPROCS, rep.Seed)
	fmt.Fprintf(w, "%-32s %14.0f\n", "appends/s (seal lifecycle)", rep.LiveShardedAppendsPerSec)
	fmt.Fprintf(w, "%-32s %14d\n", "seals (tail freezes)", rep.LiveShardedSeals)
	fmt.Fprintf(w, "%-32s %14.2f\n", "sealed rows per append", rep.LiveShardedSealedRowsPerAppend)
	fmt.Fprintf(w, "%-32s %14.2f\n", "indexed rows per append", rep.LiveShardedIndexedRowsPerAppend)
	fmt.Fprintf(w, "%-32s %14.0f\n", "steady sealed+tail query ns", rep.LiveShardedSteadyQueryNs)
	fmt.Fprintf(w, "%-32s %14d\n", "steady sealed+tail query allocs", rep.LiveShardedSteadyQueryAllocs)
	fmt.Fprintf(w, "(plain live engine for comparison: %0.f appends/s, %0.f steady ns, %d allocs)\n",
		rep.AppendsPerSec, rep.SteadyQueryNs, rep.SteadyQueryAllocs)
	fmt.Fprintln(w, "\nexpected: sealed rows per append converges to 1 (each row frozen once) and"+
		"\nindexed rows per append to O(log seal_rows) + 1 — flat in stream length,"+
		"\nunlike a monolithic live forest whose merge cascades keep growing")
	return nil
}
