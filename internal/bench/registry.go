package bench

import (
	"fmt"
	"io"
	"sort"
)

// Experiment is one regenerable table or figure.
type Experiment struct {
	ID    string
	Paper string // which paper artifact it reproduces
	Title string
	Run   func(cfg Config, w io.Writer) error
}

var registry = []Experiment{
	{ID: "fig1", Paper: "Figure 1", Title: "case study: durable vs tumbling vs sliding top-k", Run: runFig1},
	{ID: "fig7", Paper: "Figure 7", Title: "synthetic value distributions (IND, ANTI)", Run: runFig7},
	{ID: "fig8", Paper: "Figure 8", Title: "performance as tau varies (NBA-2, Network-2)", Run: runFig8},
	{ID: "fig9", Paper: "Figure 9", Title: "performance as k varies (NBA-2, Network-2)", Run: runFig9},
	{ID: "fig10", Paper: "Figure 10", Title: "performance as |I| varies (NBA-2, Network-2)", Run: runFig10},
	{ID: "fig11", Paper: "Figure 11", Title: "performance as dimensionality varies (Network-X)", Run: runFig11},
	{ID: "fig12", Paper: "Figure 12", Title: "scalability on Syn IND/ANTI", Run: runFig12},
	{ID: "fig13", Paper: "Figure 13", Title: "runtime distribution over random 5-d NBA projections", Run: runFig13},
	{ID: "tab4", Paper: "Table IV", Title: "DBMS backend: varying tau", Run: runTable4},
	{ID: "tab5", Paper: "Table V", Title: "DBMS backend: varying |I|", Run: runTable5},
	{ID: "tab6", Paper: "Table VI", Title: "DBMS backend: dataset comparison", Run: runTable6},
	{ID: "lemma4", Paper: "Lemma 4", Title: "expected answer size under the random permutation model", Run: runLemma4},
	{ID: "lemma5", Paper: "Lemma 5", Title: "expected durable k-skyband candidate count", Run: runLemma5},
	{ID: "abl-threshold", Paper: "ablation", Title: "index LengthThreshold sweep", Run: runAblationThreshold},
	{ID: "abl-bounds", Paper: "ablation", Title: "skyline vs MBR-only node bounds", Run: runAblationBounds},
	{ID: "abl-forest", Paper: "ablation", Title: "static tree vs appendable forest", Run: runAblationForest},
	{ID: "abl-block", Paper: "ablation", Title: "tree vs RMQ building block (fixed scorer)", Run: runAblationBlock},
	{ID: "abl-parallel", Paper: "ablation", Title: "interval-partitioned parallel evaluation", Run: runAblationParallel},
	{ID: "shardscale", Paper: "extension", Title: "time-sharded scale-out: latency vs shard count", Run: runShardScale},
	{ID: "abl-planner", Paper: "ablation", Title: "cost-based Auto planner vs fixed strategies", Run: runAblationPlanner},
	{ID: "ext-anchor", Paper: "extension", Title: "mid-anchored durability windows (lead sweep)", Run: runExtAnchor},
	{ID: "ext-expr", Paper: "extension", Title: "compiled scoring expressions vs native scorers", Run: runExtExpr},
	{ID: "ext-stream", Paper: "extension", Title: "streaming durability: forest probes vs monitor", Run: runExtStream},
	{ID: "streamscale", Paper: "extension", Title: "live ingestion: appends/sec, rebuild amortization, freshness", Run: runStreamScale},
	{ID: "livesharded", Paper: "extension", Title: "live+sharded lifecycle: seal/freeze amortization, sealed+tail queries", Run: runLiveShardedScale},
	{ID: "compaction", Paper: "extension", Title: "sealed-shard compaction: shard count, straddler fan-out and steady query with/without LSM leveling", Run: runCompactionScale},
	{ID: "servescale", Paper: "extension", Title: "concurrent serving: queries/sec vs client count, result-cache hit rate", Run: runServeScale},
	{ID: "standing", Paper: "extension", Title: "standing queries: appends/sec and confirm latency vs subscription count", Run: runStandingScale},
	{ID: "sliding-baseline", Paper: "footnote 1", Title: "sliding-window post-filter baseline", Run: runSlidingBaseline},
}

// Registry lists all experiments in presentation order.
func Registry() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	var ids []string
	for _, e := range registry {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q (have %v)", id, ids)
}

// Run executes one experiment by id.
func Run(id string, cfg Config, w io.Writer) error {
	e, err := Get(id)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "\n#### %s — %s (%s)\n", e.ID, e.Title, e.Paper)
	return e.Run(cfg, w)
}

// RunAll executes every experiment.
func RunAll(cfg Config, w io.Writer) error {
	for _, e := range registry {
		if err := Run(e.ID, cfg, w); err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
	}
	return nil
}
