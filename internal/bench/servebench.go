package bench

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"runtime"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/serve"
	"repro/internal/wire"
)

// serveClientCounts are the concurrency levels of the serving benchmark:
// queries/sec is measured with 1, 4 and 16 client connections firing
// continuously, so the ratio between rows is the effective scaling of the
// admission scheduler + pipelined connection path.
var serveClientCounts = []int{1, 4, 16}

// serveQueriesPerClient is how many queries each client connection fires per
// measured configuration.
const serveQueriesPerClient = 32

// serveThroughput measures concurrent wire serving over loopback TCP and
// fills the serve_* rows of rep: a time-sharded engine behind an admission
// scheduler (one worker per core) and a shared result cache.
//
// Two distinct load shapes:
//
//   - the scaling rows (queries_per_sec) use a unique scorer per query, so
//     the result cache cannot hit and the numbers measure real concurrent
//     evaluation — frame decode, admission, engine, response — not replay;
//   - the hit-rate row re-fires a small shared pool from every client, the
//     interactive exploration shape the cache exists for, and reports the
//     whole-result hit rate the cache achieved on it.
func serveThroughput(rep *StreamReport, ds *data.Dataset, seed int64) error {
	workers := runtime.GOMAXPROCS(0)
	rep.ServeWorkers = workers

	srv := wire.NewServer(func(string, ...interface{}) {})
	srv.SetScheduler(serve.NewScheduler(workers))
	cache := serve.NewCache(4096)
	srv.SetCache(cache)
	se := core.NewShardedEngine(ds, EngineOptions(), core.ShardOptions{Shards: 8})
	if err := srv.AddQuerier("bench", se, nil); err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go srv.Serve(ln)
	defer srv.Close()
	addr := ln.Addr().String()

	lo, hi := ds.Span()
	span := hi - lo
	tau := span * int64(defaultTauPct) / 100
	iLen := span * int64(defaultIPct) / 100
	d := ds.Dims()

	// request builds the q-th query of one load shape: the scorer weights come
	// from rng, so a fresh rng per (clients, client) stream makes every query
	// unique, while a shared fixed pool below makes them repeat.
	request := func(rng *rand.Rand) wire.Request {
		w := make([]float64, d)
		for i := range w {
			w[i] = rng.Float64()
		}
		start := lo + rng.Int63n(span-iLen+1)
		return wire.Request{
			Dataset: "bench",
			QuerySpec: wire.QuerySpec{
				K: defaultK, Tau: tau,
				Start: start, End: start + iLen, ExplicitInterval: true,
				Weights: w,
			},
		}
	}

	run := func(clients int, reqFor func(client int) []wire.Request) (float64, error) {
		var wg sync.WaitGroup
		errs := make(chan error, clients)
		startT := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				cl, err := wire.Dial(addr)
				if err != nil {
					errs <- err
					return
				}
				defer cl.Close()
				for _, req := range reqFor(c) {
					if _, _, err := cl.Query(req); err != nil {
						errs <- err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(startT).Seconds()
		select {
		case err := <-errs:
			return 0, err
		default:
		}
		return float64(clients*serveQueriesPerClient) / elapsed, nil
	}

	rep.ServeQueriesPerSec = make(map[string]float64, len(serveClientCounts))
	for _, clients := range serveClientCounts {
		clients := clients
		qps, err := run(clients, func(c int) []wire.Request {
			rng := rand.New(rand.NewSource(seed + int64(clients*1000+c)))
			reqs := make([]wire.Request, serveQueriesPerClient)
			for i := range reqs {
				reqs[i] = request(rng)
			}
			return reqs
		})
		if err != nil {
			return err
		}
		rep.ServeQueriesPerSec[strconv.Itoa(clients)] = qps
	}

	// Hit-rate shape: every client cycles the same small pool, so after each
	// combo's first evaluation all repeats replay from the cache (the dataset
	// is static — one epoch forever).
	poolRng := rand.New(rand.NewSource(seed + 7))
	pool := make([]wire.Request, 8)
	for i := range pool {
		pool[i] = request(poolRng)
	}
	before := cache.Stats()
	if _, err := run(4, func(c int) []wire.Request {
		reqs := make([]wire.Request, serveQueriesPerClient)
		for i := range reqs {
			reqs[i] = pool[(c+i)%len(pool)]
		}
		return reqs
	}); err != nil {
		return err
	}
	after := cache.Stats()
	if lookups := (after.Hits - before.Hits) + (after.Misses - before.Misses); lookups > 0 {
		rep.ServeCacheHitRate = float64(after.Hits-before.Hits) / float64(lookups)
	}
	return nil
}

// runServeScale is the registry experiment behind `durbench -serve`: the
// concurrent-serving rows of BENCH_stream.json rendered as a table.
func runServeScale(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	dsName := "nba-2"
	if cfg.Quick {
		dsName = "ind-4000"
	}
	ds, err := DatasetFor(cfg, dsName)
	if err != nil {
		return err
	}
	rep := &StreamReport{Dataset: dsName, Records: ds.Len(), Dims: ds.Dims(),
		K: defaultK, TauPct: defaultTauPct, GOMAXPROCS: runtime.GOMAXPROCS(0), Seed: cfg.Seed}
	if err := serveThroughput(rep, ds, cfg.Seed); err != nil {
		return err
	}
	fmt.Fprintf(w, "dataset=%s n=%d d=%d | k=%d tau=%d%% | %d query workers | GOMAXPROCS=%d seed=%d\n",
		rep.Dataset, rep.Records, rep.Dims, rep.K, rep.TauPct, rep.ServeWorkers, rep.GOMAXPROCS, rep.Seed)
	base := rep.ServeQueriesPerSec["1"]
	for _, clients := range serveClientCounts {
		key := strconv.Itoa(clients)
		qps := rep.ServeQueriesPerSec[key]
		scaling := ""
		if clients > 1 && base > 0 {
			scaling = fmt.Sprintf("  (%.2fx vs 1 client)", qps/base)
		}
		fmt.Fprintf(w, "%-28s %14.0f%s\n", fmt.Sprintf("queries/s, %2d client(s)", clients), qps, scaling)
	}
	fmt.Fprintf(w, "%-28s %14.2f\n", "cache hit rate (hot pool)", rep.ServeCacheHitRate)
	fmt.Fprintln(w, "\nexpected: queries/s grows with clients up to the worker pool (bounded by"+
		"\ncores — parity on 1-core hosts); the hot-pool hit rate approaches 1 as"+
		"\nevery combo past its first evaluation replays from the epoch-keyed cache")
	return nil
}
