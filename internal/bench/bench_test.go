package bench

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/skyband"
	"repro/internal/stats"
)

// tinyConfig keeps experiment smoke tests fast.
func tinyConfig() Config {
	return Config{Scale: 0.02, Reps: 2, Seed: 1, Quick: true}
}

func TestEveryExperimentRuns(t *testing.T) {
	cfg := tinyConfig()
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := Run(e.ID, cfg, &buf); err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if buf.Len() == 0 {
				t.Fatalf("%s produced no output", e.ID)
			}
			if !strings.Contains(buf.String(), e.ID) {
				t.Fatalf("%s output missing its header", e.ID)
			}
		})
	}
}

func TestGetUnknownExperiment(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown experiment must fail")
	}
	var buf bytes.Buffer
	if err := Run("nope", DefaultConfig(), &buf); err == nil {
		t.Fatal("running unknown experiment must fail")
	}
}

func TestDatasetForNames(t *testing.T) {
	cfg := tinyConfig()
	for _, name := range []string{"nba-1", "nba-2", "nba-3", "nba-5", "nba-full", "network-3", "ind-500", "anti-500", "rpm-500"} {
		ds, err := DatasetFor(cfg, name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if ds.Len() == 0 {
			t.Fatalf("%s: empty dataset", name)
		}
	}
	if _, err := DatasetFor(cfg, "bogus"); err == nil {
		t.Fatal("unknown dataset must fail")
	}
}

func TestDatasetCaching(t *testing.T) {
	cfg := tinyConfig()
	a, err := DatasetFor(cfg, "ind-500")
	if err != nil {
		t.Fatal(err)
	}
	b, err := DatasetFor(cfg, "ind-500")
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same config+name must return the cached dataset")
	}
	eng1, err := EngineFor(cfg, "ind-500")
	if err != nil {
		t.Fatal(err)
	}
	eng2, err := EngineFor(cfg, "ind-500")
	if err != nil {
		t.Fatal(err)
	}
	if eng1 != eng2 {
		t.Fatal("engine cache broken")
	}
}

// TestLemma4ExpectedAnswerSize is the statistical validation of Lemma 4:
// E[|S|] = k|I|/(tau+1) under the random permutation model.
func TestLemma4ExpectedAnswerSize(t *testing.T) {
	n := 20_000
	k := 5
	trials := 12
	var sizes []float64
	var tau, ilen int64
	for trial := 0; trial < trials; trial++ {
		ds := datagen.RPM(int64(1000+trial), n)
		eng := core.NewEngine(ds, core.Options{})
		lo, hi := ds.Span()
		span := hi - lo
		tau = span / 20 // 5%
		ilen = span / 2
		res, err := eng.DurableTopK(core.Query{
			K: k, Tau: tau, Start: hi - ilen, End: hi,
			Scorer: mustSingle(), Algorithm: core.THop,
		})
		if err != nil {
			t.Fatal(err)
		}
		sizes = append(sizes, float64(len(res.Records)))
	}
	predicted := float64(k) * float64(ilen+1) / float64(tau+1)
	measured := stats.Mean(sizes)
	if ratio := measured / predicted; math.Abs(ratio-1) > 0.15 {
		t.Fatalf("Lemma 4 violated: measured %.1f predicted %.1f (ratio %.3f)",
			measured, predicted, ratio)
	}
}

// TestLemma5SkybandCandidates sanity-checks the Lemma 5 growth: |C| exceeds
// the base k|I|/tau term and grows with dimensionality roughly like
// log^(d-1) tau on IND data.
func TestLemma5SkybandCandidates(t *testing.T) {
	n := 8_000
	k := 5
	counts := map[int]float64{}
	for _, d := range []int{1, 2, 3} {
		ds := datagen.IND(7, n, d)
		lo, hi := ds.Span()
		span := hi - lo
		tau := span / 10
		ladder := skyband.NewLadder(ds, 0, 0)
		counts[d] = float64(ladder.CandidateCount(k, hi-span/2, hi, tau))
	}
	base := float64(skyband.Level(k)) * 5 // k'=8, |I|/tau = 5
	// d=1: |C| should be within a small constant of the base term.
	if counts[1] < base/4 || counts[1] > base*8 {
		t.Fatalf("d=1 candidates %.0f far from base %.0f", counts[1], base)
	}
	// Candidates must grow with dimensionality.
	if !(counts[1] < counts[2] && counts[2] < counts[3]) {
		t.Fatalf("candidate counts not growing with d: %v", counts)
	}
	// The growth factor per extra dimension should be on the order of
	// log(tau) (very generous bounds).
	logTau := math.Log(float64(8000) / 10)
	if g := counts[2] / counts[1]; g > 6*logTau {
		t.Fatalf("d=1->2 growth %.1f too large vs log tau %.1f", g, logTau)
	}
	if g := counts[3] / counts[2]; g > 6*logTau {
		t.Fatalf("d=2->3 growth %.1f too large vs log tau %.1f", g, logTau)
	}
}

func TestQuerySpecMaterialize(t *testing.T) {
	ds, err := DatasetFor(tinyConfig(), "ind-1000")
	if err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{K: 7, TauPct: 10, IPct: 50}
	q := spec.Materialize(ds, mustSingle2(), core.THop)
	lo, hi := ds.Span()
	span := hi - lo
	if q.K != 7 || q.Tau != span/10 || q.End != hi || q.Start != hi-span/2 {
		t.Fatalf("materialized query wrong: %+v", q)
	}
	if q.Algorithm != core.THop {
		t.Fatal("algorithm not propagated")
	}
}

func mustSingle2() *singleish { return &singleish{} }

type singleish struct{}

func (*singleish) Score(x []float64) float64           { return x[0] }
func (*singleish) Dims() int                           { return 2 }
func (*singleish) UpperBound(lo, hi []float64) float64 { return hi[0] }
func (*singleish) IsMonotone() bool                    { return true }
