package bench

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
	"repro/internal/score"
	"repro/internal/topk"
)

// TopKPerf is one steady-state microbenchmark row of the tracked perf
// snapshot: nanoseconds and allocations per operation.
type TopKPerf struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// TopKReport is the schema of BENCH_topk.json: a machine-readable record of
// the hot-path performance per durable top-k strategy, tracked across PRs.
// GOMAXPROCS and Seed are recorded (like BENCH_sharded.json's) so snapshots
// taken on different hosts or workloads are comparable at a glance.
type TopKReport struct {
	Dataset    string     `json:"dataset"`
	Records    int        `json:"records"`
	Dims       int        `json:"dims"`
	K          int        `json:"k"`
	TauPct     int        `json:"tau_pct"`
	IPct       int        `json:"i_pct"`
	GOMAXPROCS int        `json:"gomaxprocs"`
	Seed       int64      `json:"seed"`
	Strategies []TopKPerf `json:"strategies"`
	Probes     []TopKPerf `json:"probes"`

	// GatherHitsPerProbe counts skyline upper bounds answered through the
	// bulk ScoreGather path per probe of the tracked workload — evidence
	// that the gathered tree descent is actually exercised (monotone
	// scorers with retained node skylines), not just implemented.
	GatherHitsPerProbe float64 `json:"gather_hits_per_probe"`
}

// Scalarized hides the BulkScorer capability of the wrapped scorer — while
// keeping bounding and monotonicity, so pruning behaves identically — so
// bulk-vs-scalar comparisons measure only the leaf-scan difference. Shared
// by the probe microbenchmarks here and the module-root benchmarks.
type Scalarized struct{ S score.Scorer }

func (w Scalarized) Score(x []float64) float64 { return w.S.Score(x) }
func (w Scalarized) Dims() int                 { return w.S.Dims() }
func (w Scalarized) UpperBound(lo, hi []float64) float64 {
	return score.UpperBound(w.S, lo, hi)
}
func (w Scalarized) IsMonotone() bool { return score.IsMonotone(w.S) }

func perfRow(name string, r testing.BenchmarkResult) TopKPerf {
	return TopKPerf{
		Name:        name,
		NsPerOp:     float64(r.NsPerOp()),
		AllocsPerOp: r.AllocsPerOp(),
		BytesPerOp:  r.AllocedBytesPerOp(),
	}
}

// TopKPerfReport measures every durable top-k strategy end to end plus the
// bulk and scalar flavors of the underlying range top-k probe on the given
// dataset, one query evaluation per benchmark iteration.
func TopKPerfReport(cfg Config, dsName string) (*TopKReport, error) {
	cfg = cfg.withDefaults()
	eng, err := EngineFor(cfg, dsName)
	if err != nil {
		return nil, err
	}
	ds := eng.Dataset()
	spec := QuerySpec{K: defaultK, TauPct: defaultTauPct, IPct: defaultIPct}
	rep := &TopKReport{
		Dataset: dsName, Records: ds.Len(), Dims: ds.Dims(),
		K: spec.K, TauPct: spec.TauPct, IPct: spec.IPct,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       cfg.Seed,
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := RandomPreference(rng, ds.Dims())
	for _, alg := range core.Algorithms() {
		if alg == core.SBand {
			eng.PrepareSkyband(spec.K, core.LookBack)
		}
		q := spec.Materialize(ds, s, alg)
		var evalErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := eng.DurableTopK(q); err != nil {
					evalErr = err
					b.FailNow()
				}
			}
		})
		if evalErr != nil {
			return nil, fmt.Errorf("bench: %v: %w", alg, evalErr)
		}
		rep.Strategies = append(rep.Strategies, perfRow(alg.String(), r))
	}

	// Probe microbenchmarks: one leaf-scan-heavy QueryRange per iteration,
	// bulk-scored vs scalar-scored, on a shared scratch.
	idx := topk.Build(ds, EngineOptions().Index)
	n := ds.Len()
	span := n / 10
	if span < 1 {
		span = 1
	}
	for _, pb := range []struct {
		name   string
		scorer score.Scorer
	}{{"probe-bulk", s}, {"probe-scalar", Scalarized{s}}} {
		scorer := pb.scorer
		r := testing.Benchmark(func(b *testing.B) {
			sc := topk.GetScratch()
			defer topk.PutScratch(sc)
			var dst []topk.Item
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lo := (i * 131) % (n - span)
				dst = idx.QueryRangeInto(scorer, spec.K, lo, lo+span, sc, dst)
			}
		})
		rep.Probes = append(rep.Probes, perfRow(pb.name, r))
	}

	// Gather-path instrumentation: rerun the bulk probe workload on a fresh
	// scratch and record how often the descent's skyline upper bounds went
	// through ScoreGather.
	{
		sc := topk.GetScratch()
		sc.ResetCounters()
		var dst []topk.Item
		const reps = 64
		for i := 0; i < reps; i++ {
			lo := (i * 131) % (n - span)
			dst = idx.QueryRangeInto(s, spec.K, lo, lo+span, sc, dst)
		}
		rep.GatherHitsPerProbe = float64(sc.GatherHits()) / reps
		topk.PutScratch(sc)
	}
	return rep, nil
}

// WriteTopKJSON runs TopKPerfReport and writes the report to path.
func WriteTopKJSON(cfg Config, dsName, path string) error {
	rep, err := TopKPerfReport(cfg, dsName)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}
