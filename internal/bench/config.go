// Package bench regenerates every table and figure of the paper's evaluation
// (§VI) plus the expected-complexity validations (§V) and design ablations.
// The same experiment implementations back the durbench CLI and the
// testing.B benchmarks in the module root, so numbers printed by either path
// come from one code base.
//
// Absolute sizes are scaled down from the paper's testbed (1M-500M records on
// a dual-Xeon) to laptop/CI scale; the Config.Scale knob restores larger
// runs. EXPERIMENTS.md records the observed shapes against the paper's.
package bench

import (
	"math"
)

// Config controls experiment scale and repetition.
type Config struct {
	// Scale multiplies all dataset sizes (1.0 = default reduced scale).
	Scale float64
	// Reps is the number of random preference vectors per configuration
	// (the paper uses 100).
	Reps int
	// Seed makes runs reproducible.
	Seed int64
	// Quick trims parameter sweeps for CI / go test.
	Quick bool
}

// DefaultConfig returns the CI-friendly defaults.
func DefaultConfig() Config {
	return Config{Scale: 1, Reps: 12, Seed: 1}
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.Reps <= 0 {
		c.Reps = 12
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

func (c Config) scaled(base int) int {
	n := int(math.Round(float64(base) * c.Scale))
	if n < 256 {
		n = 256
	}
	return n
}

// Dataset sizes at Scale=1 (paper sizes in parentheses).
func (c Config) nbaN() int     { return c.scaled(60_000) }  // (1M)
func (c Config) networkN() int { return c.scaled(60_000) }  // (5M)
func (c Config) synUnit() int  { return c.scaled(10_000) }  // fig12 multiplies by up to 50 (1M..50M)
func (c Config) dbmsN() int    { return c.scaled(40_000) }  // tables IV-V (1M)
func (c Config) dbmsBigN() int { return c.scaled(120_000) } // table VI (500M)

// tauSweep returns the Fig. 8 durability sweep as percent of |T|.
func (c Config) tauSweep() []int {
	if c.Quick {
		return []int{5, 10, 25, 50}
	}
	return []int{1, 5, 10, 15, 20, 25, 30, 40, 50}
}

// kSweep returns the Fig. 9 k sweep.
func (c Config) kSweep() []int {
	if c.Quick {
		return []int{5, 20, 50}
	}
	return []int{5, 10, 15, 20, 25, 30, 35, 40, 45, 50}
}

// iSweep returns the Fig. 10 interval sweep as percent of |T|.
func (c Config) iSweep() []int {
	if c.Quick {
		return []int{10, 40, 80}
	}
	return []int{10, 20, 30, 40, 50, 60, 70, 80}
}

// dSweep returns the Fig. 11 dimensionality sweep.
func (c Config) dSweep() []int {
	if c.Quick {
		return []int{2, 5, 10, 20}
	}
	return []int{1, 2, 3, 5, 10, 20, 30, 37}
}

// sizeSweep returns the Fig. 12 scalability multipliers.
func (c Config) sizeSweep() []int {
	if c.Quick {
		return []int{1, 5, 20}
	}
	return []int{1, 2, 5, 10, 20, 50}
}

// Default query parameters (paper Table III, defaults in bold: k=10,
// tau=10%, |I|=50%).
const (
	defaultK      = 10
	defaultTauPct = 10
	defaultIPct   = 50
)
