package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/expr"
	"repro/internal/score"
	"repro/internal/stats"
)

// runAblationPlanner measures the cost-based Auto planner against every
// fixed strategy over a grid of query shapes: for each configuration it
// reports the planner's pick, the empirically best strategy, and the regret
// (planner time / best fixed time). A regret near 1.0 means Auto is safe to
// leave on.
func runAblationPlanner(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	header(w, "Ablation: cost-based Auto planner vs fixed strategies")
	ta := newTable(w)
	ta.row("dataset", "k", "tau%", "scorer", "picked", "best", "regret", "auto ms", "best ms")

	type gridCase struct {
		dataset  string
		k        int
		tauPct   int64
		cosine   bool // non-monotone scorer: S-Band ineligible
		monoOnly bool
	}
	grid := []gridCase{
		{dataset: "nba-2", k: 5, tauPct: 10},
		{dataset: "nba-2", k: 10, tauPct: 25},
		{dataset: "nba-2", k: 50, tauPct: 10},
		{dataset: "network-10", k: 10, tauPct: 10},
		{dataset: "network-30", k: 10, tauPct: 10},
		{dataset: "nba-2", k: 10, tauPct: 1},
		{dataset: "nba-2", k: 10, tauPct: 10, cosine: true},
	}
	if cfg.Quick {
		grid = grid[:4]
	}

	var regrets []float64
	for _, g := range grid {
		eng, err := EngineFor(cfg, g.dataset)
		if err != nil {
			return err
		}
		ds := eng.Dataset()
		lo, hi := ds.Span()
		span := hi - lo
		var s score.Scorer
		scorerName := "linear"
		if g.cosine {
			weights := make([]float64, ds.Dims())
			for i := range weights {
				weights[i] = 1
			}
			s, err = score.NewCosine(weights)
			if err != nil {
				return err
			}
			scorerName = "cosine"
		} else {
			s = RandomPreference(nil2rng(cfg.Seed+int64(g.k)), ds.Dims())
		}
		q := core.Query{
			K: g.k, Tau: span * g.tauPct / 100,
			Start: hi - span*defaultIPct/100, End: hi, Scorer: s,
		}
		// Warm every lazy structure so the comparison isolates query time.
		if !g.cosine {
			eng.PrepareSkyband(g.k, core.LookBack)
		}

		timeOf := func(alg core.Algorithm) (float64, error) {
			q := q
			q.Algorithm = alg
			var samples []float64
			for rep := 0; rep < minInt(cfg.Reps, 6); rep++ {
				res, err := eng.DurableTopK(q)
				if err != nil {
					return 0, err
				}
				samples = append(samples, float64(res.Stats.Elapsed.Microseconds())/1000)
			}
			return stats.Mean(samples), nil
		}

		autoMS, err := timeOf(core.Auto)
		if err != nil {
			return err
		}
		plan, err := eng.Explain(q)
		if err != nil {
			return err
		}
		bestAlg, bestMS := core.Algorithm(-1), 0.0
		for _, alg := range core.Algorithms() {
			if alg == core.SBand && g.cosine {
				continue
			}
			t, err := timeOf(alg)
			if err != nil {
				return err
			}
			if bestAlg == core.Algorithm(-1) || t < bestMS {
				bestAlg, bestMS = alg, t
			}
		}
		regret := autoMS / bestMS
		regrets = append(regrets, regret)
		ta.row(g.dataset, g.k, g.tauPct, scorerName,
			plan.Chosen.String(), bestAlg.String(),
			fmt.Sprintf("%.2f", regret),
			fmt.Sprintf("%.2f", autoMS), fmt.Sprintf("%.2f", bestMS))
	}
	ta.flush()
	fmt.Fprintf(w, "\nmean regret %.2f over %d configurations; expected: close to 1.0, never catastrophic\n",
		stats.Mean(regrets), len(regrets))
	return nil
}

// runExtAnchor demonstrates the general-anchor extension (§II's "anchored
// consistently" windows): sweeping the lead share of the window from pure
// look-back to pure look-ahead on one dataset, with the answers of the
// degenerate leads cross-checked against the specialized paths.
func runExtAnchor(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	eng, err := EngineFor(cfg, "nba-2")
	if err != nil {
		return err
	}
	ds := eng.Dataset()
	lo, hi := ds.Span()
	span := hi - lo
	tau := span * defaultTauPct / 100
	s := RandomPreference(nil2rng(cfg.Seed), ds.Dims())
	header(w, fmt.Sprintf("Extension: mid-anchored durability windows (nba-2, k=%d, tau=%d)", defaultK, tau))
	ta := newTable(w)
	ta.row("lead%", "|S|", "t-hop ms", "t-hop checks", "s-hop ms", "s-hop checks")

	for _, leadPct := range []int64{0, 25, 50, 75, 100} {
		q := core.Query{
			K: defaultK, Tau: tau, Lead: tau * leadPct / 100,
			Start: hi - span*defaultIPct/100, End: hi,
			Scorer: s, Anchor: core.General,
		}
		q.Algorithm = core.THop
		hop, err := eng.DurableTopK(q)
		if err != nil {
			return err
		}
		q.Algorithm = core.SHop
		shop, err := eng.DurableTopK(q)
		if err != nil {
			return err
		}
		if len(hop.Records) != len(shop.Records) {
			return fmt.Errorf("anchor demo: t-hop and s-hop disagree at lead=%d%%", leadPct)
		}
		ta.row(leadPct, len(hop.Records),
			fmt.Sprintf("%.2f", float64(hop.Stats.Elapsed.Microseconds())/1000),
			hop.Stats.CheckQueries,
			fmt.Sprintf("%.2f", float64(shop.Stats.Elapsed.Microseconds())/1000),
			shop.Stats.CheckQueries)
	}
	ta.flush()
	fmt.Fprintln(w, "\nexpected: answer sizes comparable across leads; mid-anchored leads pay a modest"+
		"\ncheck overhead for tie handling; lead 0/100 match the specialized look-back/ahead paths")
	return nil
}

// runExtExpr measures the expression-compiler overhead: the same preference
// function evaluated natively (score.Linear) and as a compiled expression,
// plus a non-linear expression only the compiler can express.
func runExtExpr(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	eng, err := EngineFor(cfg, "nba-2")
	if err != nil {
		return err
	}
	ds := eng.Dataset()
	lo, hi := ds.Span()
	span := hi - lo
	header(w, "Extension: compiled scoring expressions vs native scorers (nba-2)")

	native := score.MustLinear(0.6, 0.4)
	compiled, err := expr.Compile("0.6*x0 + 0.4*x1", expr.Options{Dims: 2})
	if err != nil {
		return err
	}
	nonlinear, err := expr.Compile("log1p(x0) * 2 + sqrt(max(x1, 0))", expr.Options{Dims: 2})
	if err != nil {
		return err
	}

	ta := newTable(w)
	ta.row("scorer", "monotone", "t-hop ms", "|S|")
	for _, c := range []struct {
		name string
		s    score.Scorer
	}{
		{"native linear", native},
		{"compiled linear", compiled},
		{"compiled log1p+sqrt", nonlinear},
	} {
		var samples []float64
		var answer int
		for rep := 0; rep < minInt(cfg.Reps, 8); rep++ {
			start := time.Now()
			res, err := eng.DurableTopK(core.Query{
				K: defaultK, Tau: span * defaultTauPct / 100,
				Start: hi - span*defaultIPct/100, End: hi,
				Scorer: c.s, Algorithm: core.THop,
			})
			if err != nil {
				return err
			}
			samples = append(samples, float64(time.Since(start).Microseconds())/1000)
			answer = len(res.Records)
		}
		ta.row(c.name, score.IsMonotone(c.s), ms(samples), answer)
	}
	ta.flush()
	fmt.Fprintln(w, "\nexpected: compiled linear within a small factor of native (AST walk vs direct"+
		"\nloop); identical answers; non-linear expressions remain fully index-accelerated")
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
