package bench

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/datagen"
)

// caches share expensively generated datasets and built engines across
// experiments within one process (CLI run or go test binary).
var (
	cacheMu   sync.Mutex
	dsCache   = map[string]*data.Dataset{}
	engCache  = map[string]*core.Engine{}
	nbaFullMu sync.Mutex
	nbaFull   = map[string]*data.Dataset{}
)

// DatasetFor returns (building and caching on first use) a named dataset:
// "nba-1/2/3/5", "nba-full", "network-D", "ind-N", "anti-N", "rpm-N".
func DatasetFor(cfg Config, name string) (*data.Dataset, error) {
	cfg = cfg.withDefaults()
	key := fmt.Sprintf("%s/scale=%g/seed=%d", name, cfg.Scale, cfg.Seed)
	cacheMu.Lock()
	if ds, ok := dsCache[key]; ok {
		cacheMu.Unlock()
		return ds, nil
	}
	cacheMu.Unlock()

	ds, err := buildDataset(cfg, name)
	if err != nil {
		return nil, err
	}
	cacheMu.Lock()
	dsCache[key] = ds
	cacheMu.Unlock()
	return ds, nil
}

func nbaFullFor(cfg Config) *data.Dataset {
	key := fmt.Sprintf("scale=%g/seed=%d", cfg.Scale, cfg.Seed)
	nbaFullMu.Lock()
	defer nbaFullMu.Unlock()
	if ds, ok := nbaFull[key]; ok {
		return ds
	}
	ds := datagen.NBA(cfg.Seed, cfg.nbaN())
	nbaFull[key] = ds
	return ds
}

func buildDataset(cfg Config, name string) (*data.Dataset, error) {
	switch {
	case name == "nba-full":
		return nbaFullFor(cfg), nil
	case datagen.NBASubsets[name] != nil:
		return nbaFullFor(cfg).Project(datagen.NBASubsets[name])
	}
	var d, n int
	if _, err := fmt.Sscanf(name, "network-%d", &d); err == nil {
		return datagen.Network(cfg.Seed, cfg.networkN(), d), nil
	}
	if _, err := fmt.Sscanf(name, "ind-%d", &n); err == nil {
		return datagen.IND(cfg.Seed, n, 2), nil
	}
	if _, err := fmt.Sscanf(name, "anti-%d", &n); err == nil {
		return datagen.ANTI(cfg.Seed, n, 2), nil
	}
	if _, err := fmt.Sscanf(name, "rpm-%d", &n); err == nil {
		return datagen.RPM(cfg.Seed, n), nil
	}
	return nil, fmt.Errorf("bench: unknown dataset %q", name)
}

// EngineFor returns (building and caching on first use) an engine over the
// named dataset with the harness's standard options.
func EngineFor(cfg Config, name string) (*core.Engine, error) {
	cfg = cfg.withDefaults()
	key := fmt.Sprintf("%s/scale=%g/seed=%d", name, cfg.Scale, cfg.Seed)
	cacheMu.Lock()
	if eng, ok := engCache[key]; ok {
		cacheMu.Unlock()
		return eng, nil
	}
	cacheMu.Unlock()

	ds, err := DatasetFor(cfg, name)
	if err != nil {
		return nil, err
	}
	eng := core.NewEngine(ds, EngineOptions())
	cacheMu.Lock()
	engCache[key] = eng
	cacheMu.Unlock()
	return eng, nil
}

// EngineOptions returns the harness's standard engine options: default index
// parameters and a bounded skyband dominator scan (see DESIGN.md §2 — the
// budget over-approximates candidate durations, keeping S-Band correct while
// bounding preprocessing on anti-correlated data).
func EngineOptions() core.Options {
	return core.Options{SkybandScanBudget: 4096}
}
