package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"testing"

	"repro/internal/core"
)

// shardSweep is the shard-count trajectory tracked in BENCH_sharded.json.
var shardSweep = []int{1, 2, 4, 8}

// ShardPerf is one row of the shard-scaling snapshot: end-to-end durable
// top-k latency through a ShardedEngine with the given shard count.
type ShardPerf struct {
	Shards      int     `json:"shards"`
	Workers     int     `json:"workers"`
	NsPerOp     float64 `json:"ns_per_op"`
	Speedup     float64 `json:"speedup_vs_1_shard"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// ShardsPruned is Stats.ShardsPruned for one evaluation of the tracked
	// query: shard visits skipped by the reach-based router plus
	// cross-shard probes skipped by the per-shard score upper bound. It
	// proves the pruning is actually exercised at this shard count.
	ShardsPruned int `json:"shards_pruned_per_op"`
}

// ShardReport is the schema of BENCH_sharded.json: query latency and speedup
// versus the single-shard baseline as the shard count grows, tracked across
// PRs alongside BENCH_topk.json. Shard fan-out parallelism is bounded by
// GOMAXPROCS, so the speedup column is only meaningful relative to the
// recorded core count.
type ShardReport struct {
	Dataset    string      `json:"dataset"`
	Records    int         `json:"records"`
	Dims       int         `json:"dims"`
	K          int         `json:"k"`
	TauPct     int         `json:"tau_pct"`
	IPct       int         `json:"i_pct"`
	Strategy   string      `json:"strategy"`
	GOMAXPROCS int         `json:"gomaxprocs"`
	Seed       int64       `json:"seed"`
	Rows       []ShardPerf `json:"rows"`
}

// ShardScaleReport measures one durable top-k query evaluation per iteration
// through ShardedEngine at each sweep point (workers = shards, ByCount
// partitioning), on the synthetic workload of the given dataset.
func ShardScaleReport(cfg Config, dsName string) (*ShardReport, error) {
	cfg = cfg.withDefaults()
	ds, err := DatasetFor(cfg, dsName)
	if err != nil {
		return nil, err
	}
	spec := QuerySpec{K: defaultK, TauPct: defaultTauPct, IPct: defaultIPct}
	rep := &ShardReport{
		Dataset: dsName, Records: ds.Len(), Dims: ds.Dims(),
		K: spec.K, TauPct: spec.TauPct, IPct: spec.IPct,
		Strategy:   core.ByCount.String(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Seed:       cfg.Seed,
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	s := RandomPreference(rng, ds.Dims())
	// The hop strategy is the paper's general-purpose winner; pinning it
	// keeps the sweep an apples-to-apples fan-out comparison rather than a
	// planner comparison.
	q := spec.Materialize(ds, s, core.SHop)
	for _, shards := range shardSweep {
		se := core.NewShardedEngine(ds, EngineOptions(), core.ShardOptions{
			Shards: shards, Workers: shards,
		})
		var evalErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := se.DurableTopK(q); err != nil {
					evalErr = err
					b.FailNow()
				}
			}
		})
		if evalErr != nil {
			return nil, fmt.Errorf("bench: %d shards: %w", shards, evalErr)
		}
		res, err := se.DurableTopK(q)
		if err != nil {
			return nil, fmt.Errorf("bench: %d shards: %w", shards, err)
		}
		row := ShardPerf{
			Shards:       shards,
			Workers:      se.Workers(),
			NsPerOp:      float64(r.NsPerOp()),
			AllocsPerOp:  r.AllocsPerOp(),
			BytesPerOp:   r.AllocedBytesPerOp(),
			ShardsPruned: res.Stats.ShardsPruned,
		}
		if len(rep.Rows) > 0 && row.NsPerOp > 0 {
			row.Speedup = rep.Rows[0].NsPerOp / row.NsPerOp
		} else {
			row.Speedup = 1
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}

// WriteShardJSON runs ShardScaleReport and writes BENCH_sharded.json.
func WriteShardJSON(cfg Config, dsName, path string) error {
	rep, err := ShardScaleReport(cfg, dsName)
	if err != nil {
		return err
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// runShardScale is the registry experiment: the BENCH_sharded.json sweep
// rendered as a table. (Correctness of the sharded answers is enforced by
// the differential and fuzz harnesses in internal/core, not here.)
func runShardScale(cfg Config, w io.Writer) error {
	dsName := "nba-2"
	if cfg.Quick {
		dsName = "ind-4000"
	}
	rep, err := ShardScaleReport(cfg, dsName)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dataset=%s n=%d d=%d | k=%d tau=%d%% |I|=%d%% | strategy=%s | GOMAXPROCS=%d\n",
		rep.Dataset, rep.Records, rep.Dims, rep.K, rep.TauPct, rep.IPct, rep.Strategy, rep.GOMAXPROCS)
	fmt.Fprintf(w, "%-8s %-9s %14s %10s %12s %8s\n", "shards", "workers", "ns/op", "speedup", "allocs/op", "pruned")
	for _, row := range rep.Rows {
		fmt.Fprintf(w, "%-8d %-9d %14.0f %9.2fx %12d %8d\n",
			row.Shards, row.Workers, row.NsPerOp, row.Speedup, row.AllocsPerOp, row.ShardsPruned)
	}
	if rep.GOMAXPROCS == 1 {
		fmt.Fprintln(w, "note: single-core host; shard fan-out runs serialized, so speedup ~1x is expected here")
	}
	return nil
}
