package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteShardJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sharded.json")
	if err := WriteShardJSON(tinyConfig(), "ind-600", path); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep ShardReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if rep.Dataset != "ind-600" || rep.Records != 600 || rep.GOMAXPROCS < 1 {
		t.Fatalf("bad report header: %+v", rep)
	}
	if len(rep.Rows) != len(shardSweep) {
		t.Fatalf("%d rows, want %d", len(rep.Rows), len(shardSweep))
	}
	for i, row := range rep.Rows {
		if row.Shards != shardSweep[i] {
			t.Fatalf("row %d shards %d, want %d", i, row.Shards, shardSweep[i])
		}
		if row.NsPerOp <= 0 {
			t.Fatalf("row %d has no measurement: %+v", i, row)
		}
		if row.Workers < 1 {
			t.Fatalf("row %d workers %d", i, row.Workers)
		}
	}
	if rep.Rows[0].Speedup != 1 {
		t.Fatalf("baseline speedup %.2f, want 1", rep.Rows[0].Speedup)
	}
}
