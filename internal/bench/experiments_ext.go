package bench

import (
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/datagen"
	"repro/internal/rmq"
	"repro/internal/score"
	"repro/internal/stats"
)

// runAblationBlock contrasts the default tree building block with the
// sparse-table RMQ block on a fixed-scorer, single-attribute workload (the
// regime the paper's NBA-1 / weather / RPM queries live in).
func runAblationBlock(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	n := cfg.scaled(50_000)
	ds := datagen.RPM(cfg.Seed, n)
	s, err := score.NewSingle(0, 1)
	if err != nil {
		return err
	}
	lo, hi := ds.Span()
	span := hi - lo
	header(w, fmt.Sprintf("Ablation: tree vs RMQ building block (RPM n=%d, fixed single-attribute scorer)", n))
	ta := newTable(w)
	ta.row("block", "build ms", "t-hop ms", "s-hop ms")

	type buildCase struct {
		name string
		opts core.Options
	}
	cases := []buildCase{
		{"tree", core.Options{}},
		{"rmq", core.Options{NewBlock: func(d *data.Dataset) core.Block { return rmq.NewBlock(d) }}},
	}
	for _, c := range cases {
		buildStart := time.Now()
		eng := core.NewEngine(ds, c.opts)
		// The RMQ block builds its per-scorer table lazily; charge it to
		// build time with one warm-up probe.
		eng.TopK(s, 1, lo, hi)
		buildMS := float64(time.Since(buildStart).Microseconds()) / 1000

		var hopMS, shopMS []float64
		for rep := 0; rep < cfg.Reps; rep++ {
			q := core.Query{
				K: defaultK, Tau: span * defaultTauPct / 100,
				Start: hi - span*defaultIPct/100, End: hi, Scorer: s,
			}
			q.Algorithm = core.THop
			res, err := eng.DurableTopK(q)
			if err != nil {
				return err
			}
			hopMS = append(hopMS, float64(res.Stats.Elapsed.Microseconds())/1000)
			q.Algorithm = core.SHop
			res, err = eng.DurableTopK(q)
			if err != nil {
				return err
			}
			shopMS = append(shopMS, float64(res.Stats.Elapsed.Microseconds())/1000)
		}
		ta.row(c.name, fmt.Sprintf("%.1f", buildMS), ms(hopMS), ms(shopMS))
	}
	ta.flush()
	fmt.Fprintln(w, "\nexpected: RMQ answers fixed-scorer probes faster; the tree needs no per-scorer preprocessing")
	return nil
}

// runAblationParallel measures the interval-partitioned parallel evaluation.
func runAblationParallel(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	eng, err := EngineFor(cfg, "nba-2")
	if err != nil {
		return err
	}
	ds := eng.Dataset()
	lo, hi := ds.Span()
	span := hi - lo
	s := RandomPreference(nil2rng(cfg.Seed), ds.Dims())
	// A low-selectivity query (small tau) so there is real work to split.
	q := core.Query{K: defaultK, Tau: span / 100, Start: lo + span/5, End: hi, Scorer: s, Algorithm: core.SHop}
	header(w, "Ablation: interval-partitioned parallel evaluation (nba-2, s-hop, tau=1%)")
	ta := newTable(w)
	ta.row("workers", "time ms", "speedup", "|S|")
	var base float64
	for _, workers := range []int{1, 2, 4, 8} {
		var msAll []float64
		var answer int
		for rep := 0; rep < cfg.Reps; rep++ {
			res, err := eng.DurableTopKParallel(q, workers)
			if err != nil {
				return err
			}
			msAll = append(msAll, float64(res.Stats.Elapsed.Microseconds())/1000)
			answer = len(res.Records)
		}
		mean := stats.Mean(msAll)
		if workers == 1 {
			base = mean
		}
		ta.row(workers, ms(msAll), fmt.Sprintf("%.2fx", base/mean), answer)
	}
	ta.flush()
	return nil
}
