package bench

import (
	"fmt"
	"io"
	"math/rand"
	"text/tabwriter"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/score"
	"repro/internal/stats"
)

// Metrics aggregates per-repetition observations of one (dataset, query,
// algorithm) configuration.
type Metrics struct {
	TimeMS     []float64
	Queries    []float64 // total building-block invocations
	CheckQ     []float64
	FindQ      []float64
	Candidates []float64
	Answer     []float64
}

func (m *Metrics) add(res *core.Result) {
	st := res.Stats
	m.TimeMS = append(m.TimeMS, float64(st.Elapsed.Microseconds())/1000)
	m.Queries = append(m.Queries, float64(st.TopKQueries()))
	m.CheckQ = append(m.CheckQ, float64(st.CheckQueries))
	m.FindQ = append(m.FindQ, float64(st.FindQueries))
	m.Candidates = append(m.Candidates, float64(st.CandidateCount))
	m.Answer = append(m.Answer, float64(len(res.Records)))
}

// QuerySpec positions a query by percentages of the dataset's time span,
// matching the paper's parameterization (Table III): tau and |I| as percent
// of |T|, with I right-anchored at the most recent timestamp.
type QuerySpec struct {
	K      int
	TauPct int
	IPct   int
}

// Materialize turns the spec into a concrete query over ds.
func (qs QuerySpec) Materialize(ds *data.Dataset, s score.Scorer, alg core.Algorithm) core.Query {
	lo, hi := ds.Span()
	span := hi - lo
	tau := span * int64(qs.TauPct) / 100
	ilen := span * int64(qs.IPct) / 100
	return core.Query{
		K:         qs.K,
		Tau:       tau,
		Start:     hi - ilen,
		End:       hi,
		Scorer:    s,
		Algorithm: alg,
	}
}

// RandomPreference draws a uniform non-negative preference vector for
// d-dimensional data.
func RandomPreference(rng *rand.Rand, d int) score.Scorer {
	w := make([]float64, d)
	for i := range w {
		w[i] = 0.05 + 0.95*rng.Float64()
	}
	return score.MustLinear(w...)
}

// RunConfiguration evaluates the spec with the given algorithm over reps
// random preference vectors and returns the aggregated metrics.
func RunConfiguration(eng *core.Engine, qs QuerySpec, alg core.Algorithm, reps int, seed int64) (*Metrics, error) {
	rng := rand.New(rand.NewSource(seed))
	ds := eng.Dataset()
	if alg == core.SBand {
		// The durable k-skyband ladder is offline indexing (§IV-B); build
		// it outside the timed region.
		eng.PrepareSkyband(qs.K, core.LookBack)
	}
	m := &Metrics{}
	for r := 0; r < reps; r++ {
		s := RandomPreference(rng, ds.Dims())
		q := qs.Materialize(ds, s, alg)
		res, err := eng.DurableTopK(q)
		if err != nil {
			return nil, err
		}
		m.add(res)
	}
	return m, nil
}

// table helps print aligned experiment output.
type table struct {
	tw *tabwriter.Writer
}

func newTable(w io.Writer) *table {
	return &table{tw: tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)}
}

func (t *table) row(cells ...interface{}) {
	for i, c := range cells {
		if i > 0 {
			fmt.Fprint(t.tw, "\t")
		}
		fmt.Fprint(t.tw, c)
	}
	fmt.Fprintln(t.tw)
}

func (t *table) flush() { t.tw.Flush() }

// ms formats a mean +/- std of millisecond samples.
func ms(samples []float64) string {
	return fmt.Sprintf("%.2f±%.2f", stats.Mean(samples), stats.Std(samples))
}

// cnt formats a mean of count samples.
func cnt(samples []float64) string {
	return fmt.Sprintf("%.1f", stats.Mean(samples))
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n== %s ==\n", title)
}
