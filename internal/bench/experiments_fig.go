package bench

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/stats"
	"repro/internal/windows"
)

// sweep runs one paper panel: for every sweep value, evaluate every
// algorithm and print the (a) query-time panel and the (b) query-count
// panel.
func sweep(cfg Config, w io.Writer, dataset, varyLabel string, values []int, spec func(v int) QuerySpec, algs []core.Algorithm) error {
	cfg = cfg.withDefaults()
	eng, err := EngineFor(cfg, dataset)
	if err != nil {
		return err
	}
	header(w, fmt.Sprintf("%s: query time (ms, mean±std over %d preference vectors)", dataset, cfg.Reps))
	results := make(map[int]map[core.Algorithm]*Metrics, len(values))
	ta := newTable(w)
	cells := []interface{}{varyLabel}
	for _, a := range algs {
		cells = append(cells, a.String())
	}
	ta.row(cells...)
	for _, v := range values {
		results[v] = make(map[core.Algorithm]*Metrics, len(algs))
		row := []interface{}{v}
		for _, a := range algs {
			m, err := RunConfiguration(eng, spec(v), a, cfg.Reps, cfg.Seed+int64(v))
			if err != nil {
				return err
			}
			results[v][a] = m
			row = append(row, ms(m.TimeMS))
		}
		ta.row(row...)
	}
	ta.flush()

	header(w, fmt.Sprintf("%s: number of top-k queries (mean; s-hop split check+find) and candidate/answer sizes", dataset))
	tb := newTable(w)
	hdr := []interface{}{varyLabel}
	for _, a := range algs {
		if a == core.SHop {
			hdr = append(hdr, "s-hop(chk+find)")
		} else {
			hdr = append(hdr, a.String())
		}
	}
	hdr = append(hdr, "|C| s-band", "|S|")
	tb.row(hdr...)
	for _, v := range values {
		row := []interface{}{v}
		var candidates, answer string
		for _, a := range algs {
			m := results[v][a]
			if a == core.SHop {
				row = append(row, fmt.Sprintf("%s+%s", cnt(m.CheckQ), cnt(m.FindQ)))
			} else {
				row = append(row, cnt(m.Queries))
			}
			if a == core.SBand {
				candidates = cnt(m.Candidates)
			}
			answer = cnt(m.Answer)
		}
		if candidates == "" {
			candidates = "-"
		}
		row = append(row, candidates, answer)
		tb.row(row...)
	}
	tb.flush()
	return nil
}

func allAlgs() []core.Algorithm { return core.Algorithms() }

// runFig8 regenerates Fig. 8: performance as tau varies on NBA-2 and
// Network-2 (k=10, |I|=50%).
func runFig8(cfg Config, w io.Writer) error {
	for _, dsName := range []string{"nba-2", "network-2"} {
		err := sweep(cfg, w, dsName, "tau%", cfg.withDefaults().tauSweep(), func(v int) QuerySpec {
			return QuerySpec{K: defaultK, TauPct: v, IPct: defaultIPct}
		}, allAlgs())
		if err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "\npaper shape: s-base slowest; t-base flat in tau; t-hop/s-hop/s-band speed up as tau grows")
	return nil
}

// runFig9 regenerates Fig. 9: performance as k varies (tau=10%, |I|=50%).
func runFig9(cfg Config, w io.Writer) error {
	for _, dsName := range []string{"nba-2", "network-2"} {
		err := sweep(cfg, w, dsName, "k", cfg.withDefaults().kSweep(), func(v int) QuerySpec {
			return QuerySpec{K: v, TauPct: defaultTauPct, IPct: defaultIPct}
		}, allAlgs())
		if err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "\npaper shape: all but s-base slow down with k; gaps narrow at k=50; blocking keeps s-hop/s-band below t-hop in #queries")
	return nil
}

// runFig10 regenerates Fig. 10: performance as |I| varies (k=10, tau=10%).
func runFig10(cfg Config, w io.Writer) error {
	for _, dsName := range []string{"nba-2", "network-2"} {
		err := sweep(cfg, w, dsName, "|I|%", cfg.withDefaults().iSweep(), func(v int) QuerySpec {
			return QuerySpec{K: defaultK, TauPct: defaultTauPct, IPct: v}
		}, allAlgs())
		if err != nil {
			return err
		}
	}
	fmt.Fprintln(w, "\npaper shape: hop/band algorithms scale linearly in |I| and stay 1-2 orders below the baselines")
	return nil
}

// runFig11 regenerates Fig. 11: performance as dimensionality varies on
// Network-X. S-Base is omitted as in the paper.
func runFig11(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	algs := []core.Algorithm{core.TBase, core.THop, core.SBand, core.SHop}
	header(w, "Network-X: query time (ms) and #top-k queries as d varies")
	ta := newTable(w)
	ta.row("d", "t-base", "t-hop", "s-band", "s-hop", "q(t-hop)", "q(s-band)", "q(s-hop)", "|C| s-band", "|S|")
	for _, d := range cfg.dSweep() {
		eng, err := EngineFor(cfg, fmt.Sprintf("network-%d", d))
		if err != nil {
			return err
		}
		spec := QuerySpec{K: defaultK, TauPct: defaultTauPct, IPct: defaultIPct}
		res := map[core.Algorithm]*Metrics{}
		for _, a := range algs {
			m, err := RunConfiguration(eng, spec, a, cfg.Reps, cfg.Seed+int64(d))
			if err != nil {
				return err
			}
			res[a] = m
		}
		ta.row(d,
			ms(res[core.TBase].TimeMS), ms(res[core.THop].TimeMS),
			ms(res[core.SBand].TimeMS), ms(res[core.SHop].TimeMS),
			cnt(res[core.THop].Queries), cnt(res[core.SBand].Queries), cnt(res[core.SHop].Queries),
			cnt(res[core.SBand].Candidates), cnt(res[core.SHop].Answer))
	}
	ta.flush()
	fmt.Fprintln(w, "\npaper shape: #queries flat in d; |C| explodes with d, sinking s-band while t-hop/s-hop grow slowly")
	return nil
}

// runFig12 regenerates Fig. 12: scalability on Syn IND and ANTI with |I|
// fixed at 50% of the (growing) span.
func runFig12(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	algs := []core.Algorithm{core.SBase, core.THop, core.SBand, core.SHop}
	for _, kind := range []string{"ind", "anti"} {
		header(w, fmt.Sprintf("Syn-%s: query time (ms) as data size varies", kind))
		ta := newTable(w)
		ta.row("n", "s-base", "t-hop", "s-band", "s-hop", "q(t-hop)", "q(s-hop)", "|C| s-band", "|S|")
		for _, mult := range cfg.sizeSweep() {
			n := cfg.synUnit() * mult
			eng, err := EngineFor(cfg, fmt.Sprintf("%s-%d", kind, n))
			if err != nil {
				return err
			}
			spec := QuerySpec{K: defaultK, TauPct: defaultTauPct, IPct: defaultIPct}
			res := map[core.Algorithm]*Metrics{}
			for _, a := range algs {
				m, err := RunConfiguration(eng, spec, a, cfg.Reps, cfg.Seed+int64(mult))
				if err != nil {
					return err
				}
				res[a] = m
			}
			ta.row(n,
				ms(res[core.SBase].TimeMS), ms(res[core.THop].TimeMS),
				ms(res[core.SBand].TimeMS), ms(res[core.SHop].TimeMS),
				cnt(res[core.THop].Queries), cnt(res[core.SHop].Queries),
				cnt(res[core.SBand].Candidates), cnt(res[core.SHop].Answer))
		}
		ta.flush()
	}
	fmt.Fprintln(w, "\npaper shape: t-hop/s-hop near-flat (answer-size bound); s-band fine on IND, collapses on ANTI as |C| inflates")
	return nil
}

// runFig13 regenerates Fig. 13: the runtime distribution of t-hop, s-hop and
// s-band over 20 random 5-d projections of the NBA attributes.
func runFig13(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	full := nbaFullFor(cfg)
	projections := 20
	if cfg.Quick {
		projections = 6
	}
	times := map[core.Algorithm][]float64{}
	algs := []core.Algorithm{core.THop, core.SHop, core.SBand}
	for pi := 0; pi < projections; pi++ {
		proj, _, err := datagen.NBARandomProjection(full, cfg.Seed+int64(pi), 5)
		if err != nil {
			return err
		}
		eng := core.NewEngine(proj, EngineOptions())
		spec := QuerySpec{K: defaultK, TauPct: defaultTauPct, IPct: defaultIPct}
		for _, a := range algs {
			m, err := RunConfiguration(eng, spec, a, cfg.Reps/2+1, cfg.Seed+int64(pi))
			if err != nil {
				return err
			}
			times[a] = append(times[a], stats.Mean(m.TimeMS))
		}
	}
	header(w, fmt.Sprintf("runtime distribution over %d random 5-d NBA projections (ms per projection mean)", projections))
	ta := newTable(w)
	ta.row("alg", "mean", "std", "min", "p50", "p90", "max")
	for _, a := range algs {
		s := stats.Summarize(times[a])
		ta.row(a.String(),
			fmt.Sprintf("%.2f", s.Mean), fmt.Sprintf("%.2f", s.Std),
			fmt.Sprintf("%.2f", s.Min), fmt.Sprintf("%.2f", s.Median),
			fmt.Sprintf("%.2f", s.P90), fmt.Sprintf("%.2f", s.Max))
	}
	ta.flush()
	fmt.Fprintln(w, "\npaper shape: s-band slower on average with a wide spread; t-hop/s-hop concentrated in narrow ranges")
	return nil
}

// runFig1 reproduces the Example I.1 case study: durable vs tumbling vs
// sliding top-k over NBA rebounds.
func runFig1(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	full := nbaFullFor(cfg)
	ds, err := full.Project([]int{datagen.NBAReb})
	if err != nil {
		return err
	}
	eng := core.NewEngine(ds, EngineOptions())
	lo, hi := ds.Span()
	span := hi - lo
	tau := span / 7 // the 5-year window of a ~36-year history
	s := RandomPreference(nil2rng(cfg.Seed), 1)

	durable, err := eng.DurableTopK(core.Query{
		K: 1, Tau: tau, Start: lo, End: hi, Scorer: s, Algorithm: core.SHop,
	})
	if err != nil {
		return err
	}
	tumblingA := windows.Tumbling(eng.Index(), s, 1, tau, lo, lo, hi)
	tumblingB := windows.Tumbling(eng.Index(), s, 1, tau, lo+tau/2, lo, hi)
	sliding := windows.Sliding(ds, eng.Index(), s, 1, tau+1, lo+tau, hi)
	slidingUnion := windows.UnionIDs(sliding)

	header(w, "Fig. 1 case study: noteworthy rebound performances, 5-year durability")
	fmt.Fprintf(w, "durable top-1 results: %d records\n", len(durable.Records))
	for _, r := range durable.Records {
		fmt.Fprintf(w, "  t=%-8d rebounds=%.0f\n", r.Time, r.Score)
	}
	fmt.Fprintf(w, "tumbling-window top-1 (origin A): %d windows; (origin B, shifted half-window): %d windows\n",
		len(tumblingA), len(tumblingB))
	diff := tumblingDiff(tumblingA, tumblingB)
	fmt.Fprintf(w, "  -> %d of the per-window champions change when the window grid shifts (placement sensitivity)\n", diff)
	fmt.Fprintf(w, "sliding-window top-1: %d distinct records across all placements (vs %d durable)\n",
		len(slidingUnion), len(durable.Records))
	fmt.Fprintln(w, "\npaper shape: durable ⊂ sliding-union; tumbling champions depend on grid placement")
	return nil
}

func tumblingDiff(a, b []windows.WindowResult) int {
	tops := func(rs []windows.WindowResult) map[int32]bool {
		m := map[int32]bool{}
		for _, r := range rs {
			if len(r.Items) > 0 {
				m[r.Items[0].ID] = true
			}
		}
		return m
	}
	ma, mb := tops(a), tops(b)
	diff := 0
	for id := range ma {
		if !mb[id] {
			diff++
		}
	}
	return diff
}

// runFig7 prints the value distributions of the synthetic generators.
func runFig7(cfg Config, w io.Writer) error {
	cfg = cfg.withDefaults()
	n := 4000
	for _, kind := range []string{"ind", "anti"} {
		ds, err := DatasetFor(cfg, fmt.Sprintf("%s-%d", kind, n))
		if err != nil {
			return err
		}
		header(w, fmt.Sprintf("Syn %s sample (%d points)", kind, n))
		fmt.Fprint(w, asciiScatter(ds, 48, 16))
	}
	fmt.Fprintln(w, "paper shape: IND fills the unit square uniformly; ANTI concentrates on the annulus arc r∈[0.8,1]")
	return nil
}

// asciiScatter renders the first two dimensions of ds as a density plot.
func asciiScatter(ds interface {
	Len() int
	Attrs(int) []float64
}, cols, rows int) string {
	grid := make([]int, cols*rows)
	maxC := 1
	for i := 0; i < ds.Len(); i++ {
		a := ds.Attrs(i)
		x := int(a[0] * float64(cols-1))
		y := int(a[1] * float64(rows-1))
		if x < 0 || x >= cols || y < 0 || y >= rows {
			continue
		}
		grid[y*cols+x]++
		if grid[y*cols+x] > maxC {
			maxC = grid[y*cols+x]
		}
	}
	shades := []byte(" .:+#@")
	out := make([]byte, 0, (cols+1)*rows)
	for y := rows - 1; y >= 0; y-- {
		for x := 0; x < cols; x++ {
			c := grid[y*cols+x]
			idx := c * (len(shades) - 1) / maxC
			if c > 0 && idx == 0 {
				idx = 1
			}
			out = append(out, shades[idx])
		}
		out = append(out, '\n')
	}
	return string(out)
}
