package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// ReadCSV parses a dataset from CSV with header "time,attr0,attr1,...".
// The header row is required; records must appear in strictly increasing
// time order.
func ReadCSV(r io.Reader) (*Dataset, error) {
	var b *Builder
	err := StreamCSV(r, func(t int64, attrs []float64) error {
		if b == nil {
			b = NewBuilder(len(attrs), 0)
		}
		return b.Append(t, attrs)
	})
	if err != nil {
		return nil, err
	}
	if b == nil {
		return nil, ErrEmpty
	}
	return b.Build()
}

// StreamCSV parses the ReadCSV format incrementally, invoking fn for every
// record as soon as its line is read instead of materializing a Dataset. The
// attrs slice passed to fn is reused between calls; fn copies what it keeps
// (dataset and forest appends already do). A non-nil error from fn aborts the
// stream and is returned wrapped with the line number. This is the ingestion
// path of live serving (durgen | durserved -live): records become queryable
// while the producer is still emitting.
func StreamCSV(r io.Reader, fn func(t int64, attrs []float64) error) error {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return fmt.Errorf("data: reading CSV header: %w", err)
	}
	if len(header) < 2 || header[0] != "time" {
		return fmt.Errorf("data: CSV header must be \"time,attr0,...\", got %q", header)
	}
	d := len(header) - 1
	attrs := make([]float64, d)
	for line := 2; ; line++ {
		row, err := cr.Read()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return fmt.Errorf("data: reading CSV line %d: %w", line, err)
		}
		if len(row) != d+1 {
			return fmt.Errorf("data: CSV line %d has %d fields, want %d", line, len(row), d+1)
		}
		t, err := strconv.ParseInt(row[0], 10, 64)
		if err != nil {
			return fmt.Errorf("data: CSV line %d time: %w", line, err)
		}
		for j := 0; j < d; j++ {
			v, err := strconv.ParseFloat(row[j+1], 64)
			if err != nil {
				return fmt.Errorf("data: CSV line %d attr %d: %w", line, j, err)
			}
			attrs[j] = v
		}
		if err := fn(t, attrs); err != nil {
			return fmt.Errorf("data: CSV line %d: %w", line, err)
		}
	}
}

// WriteCSV writes the dataset in the format accepted by ReadCSV.
func WriteCSV(w io.Writer, ds *Dataset) error {
	cw := csv.NewWriter(w)
	header := make([]string, ds.Dims()+1)
	header[0] = "time"
	for j := 0; j < ds.Dims(); j++ {
		header[j+1] = "attr" + strconv.Itoa(j)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, ds.Dims()+1)
	for i := 0; i < ds.Len(); i++ {
		row[0] = strconv.FormatInt(ds.Time(i), 10)
		for j, v := range ds.Attrs(i) {
			row[j+1] = strconv.FormatFloat(v, 'g', -1, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
