// Package data provides the core temporal dataset abstraction shared by all
// durable top-k algorithms and substrates.
//
// A Dataset is a sequence of instant-stamped records ordered by strictly
// increasing arrival time. Each record carries a d-dimensional real-valued
// attribute vector; ranking is performed by a user-specified scoring
// function over those attributes (see package score). Batch-constructed
// datasets are immutable; datasets created with NewAppendable grow through
// AppendRow, and committed records never change either way: views, slices
// and indexes built over a prefix stay valid as the tail grows.
//
// Attribute storage is columnar-friendly: every constructor materializes one
// contiguous row-major backing array (record i occupies flat[i*d : (i+1)*d]),
// so the scoring hot loops of packages topk and rmq can evaluate whole index
// spans with a single bounds-checked slice and no per-record pointer chase
// (see score.BulkScorer). Live appends preserve the contiguity: AppendRow
// grows both columns together in amortized chunks, so FlatAttrs is one
// row-major array at every point of a stream's life.
//
// Timestamps are int64 ticks at granularity 1: a window of length tau
// anchored at time t covers the closed range [t-tau, t].
package data

import (
	"errors"
	"fmt"
	"sort"
)

// Common validation errors returned by constructors.
var (
	ErrEmpty          = errors.New("data: dataset must contain at least one record")
	ErrDimMismatch    = errors.New("data: all records must have the same dimensionality")
	ErrNotIncreasing  = errors.New("data: arrival times must be strictly increasing")
	ErrLengthMismatch = errors.New("data: times and attribute rows must have equal length")
	ErrNotAppendable  = errors.New("data: dataset was not constructed with NewAppendable")
)

// Record is a lightweight view of one record of a Dataset. The Attrs slice
// aliases the dataset's storage and must not be modified.
type Record struct {
	ID    int       // position in arrival order, 0-based
	Time  int64     // arrival time (instant stamp)
	Attrs []float64 // d attribute values
}

// Dataset is an append-only, time-ordered collection of instant-stamped
// records. The zero value is not usable; construct with New, a Builder, or
// NewAppendable for a live dataset that starts empty and grows via AppendRow.
// Committed records are immutable.
type Dataset struct {
	times []int64
	// flat is the single row-major attribute backing array: record i's
	// attributes are flat[i*dims : (i+1)*dims]. Guaranteed contiguous by
	// every constructor.
	flat []float64
	dims int
	// appendable marks datasets created by NewAppendable — the only ones
	// whose backing arrays this package owns outright. AppendRow refuses to
	// grow any other dataset: batch constructors retain caller slices
	// (NewFlat is zero-copy) and views share a parent's arrays, so an
	// in-capacity append there would scribble over memory the caller or
	// parent still owns.
	appendable bool
}

// New validates and wraps the given parallel slices into a Dataset. The
// times slice is retained (not copied) and must not be modified afterwards;
// attribute rows are copied into a single contiguous backing array. Times
// must be strictly increasing and every attribute row must have the same
// length (at least 1).
func New(times []int64, attrs [][]float64) (*Dataset, error) {
	if len(times) == 0 {
		return nil, ErrEmpty
	}
	if len(times) != len(attrs) {
		return nil, ErrLengthMismatch
	}
	d := len(attrs[0])
	if d == 0 {
		return nil, ErrDimMismatch
	}
	for i, row := range attrs {
		if len(row) != d {
			return nil, fmt.Errorf("%w: row %d has %d attrs, want %d", ErrDimMismatch, i, len(row), d)
		}
		if i > 0 && times[i] <= times[i-1] {
			return nil, fmt.Errorf("%w: times[%d]=%d, times[%d]=%d", ErrNotIncreasing, i-1, times[i-1], i, times[i])
		}
	}
	flat := make([]float64, 0, len(times)*d)
	for _, row := range attrs {
		flat = append(flat, row...)
	}
	return &Dataset{times: times, flat: flat, dims: d}, nil
}

// NewFlat wraps an already-contiguous row-major attribute array: record i's
// attributes are flat[i*d : (i+1)*d]. Both slices are retained (not copied);
// callers must not modify them afterwards. Times must be strictly increasing
// and len(flat) must equal len(times)*d.
func NewFlat(times []int64, flat []float64, d int) (*Dataset, error) {
	if len(times) == 0 {
		return nil, ErrEmpty
	}
	if d < 1 {
		return nil, ErrDimMismatch
	}
	if len(flat) != len(times)*d {
		return nil, fmt.Errorf("%w: %d attribute values for %d records of dim %d", ErrLengthMismatch, len(flat), len(times), d)
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return nil, fmt.Errorf("%w: times[%d]=%d, times[%d]=%d", ErrNotIncreasing, i-1, times[i-1], i, times[i])
		}
	}
	return &Dataset{times: times, flat: flat, dims: d}, nil
}

// NewAppendable returns an empty live dataset for d-dimensional records,
// ready to grow one record at a time via AppendRow. The capacity hint
// pre-sizes the columnar storage for that many records and may be zero.
// Unlike batch-constructed datasets, an appendable dataset may be empty;
// Span reports (0, 0) until the first record arrives.
func NewAppendable(d, capacity int) (*Dataset, error) {
	if d < 1 {
		return nil, ErrDimMismatch
	}
	if capacity < 0 {
		capacity = 0
	}
	return &Dataset{
		times:      make([]int64, 0, capacity),
		flat:       make([]float64, 0, capacity*d),
		dims:       d,
		appendable: true,
	}, nil
}

// appendChunkRows floors the growth quantum of AppendRow: reallocation
// happens at most once per chunk of appends (then doubles), keeping the
// amortized per-append cost O(1) while the columns stay contiguous.
const appendChunkRows = 256

// AppendRow commits one record to the growing tail: t must exceed the last
// committed time and attrs must have exactly Dims values (copied). Both
// columns grow together in amortized chunks, so FlatAttrs remains a single
// contiguous row-major array across appends. Only datasets created with
// NewAppendable accept appends (ErrNotAppendable otherwise): batch
// constructors and views alias storage this package does not own.
//
// Growth never disturbs readers of the committed prefix: Prefix and Slice
// views, and any index holding the Times/FlatAttrs slices of a prefix, keep
// observing exactly the records they covered — a reallocation copies the
// committed rows to the new array and leaves the old one intact. AppendRow
// itself is not safe for use concurrently with other Dataset calls; callers
// that mix writers and readers serialize externally (see core.LiveEngine).
func (ds *Dataset) AppendRow(t int64, attrs []float64) error {
	if !ds.appendable {
		return ErrNotAppendable
	}
	if len(attrs) != ds.dims {
		return fmt.Errorf("%w: got %d attrs, want %d", ErrDimMismatch, len(attrs), ds.dims)
	}
	if n := len(ds.times); n > 0 && t <= ds.times[n-1] {
		return fmt.Errorf("%w: appending t=%d after t=%d", ErrNotIncreasing, t, ds.times[n-1])
	}
	ds.grow(1)
	ds.times = append(ds.times, t)
	ds.flat = append(ds.flat, attrs...)
	return nil
}

// AppendRows bulk-commits n records from parallel columns: times must be
// strictly increasing (and exceed the last committed time) and flat must
// hold exactly len(times)*Dims values in row-major order. Both inputs are
// copied after one up-front validation pass, so a failed call commits
// nothing. Recovery paths use it to reload checkpointed shards without
// per-row overhead; the same view-stability guarantees as AppendRow apply.
func (ds *Dataset) AppendRows(times []int64, flat []float64) error {
	if !ds.appendable {
		return ErrNotAppendable
	}
	if len(flat) != len(times)*ds.dims {
		return fmt.Errorf("%w: %d attribute values for %d records of dim %d", ErrLengthMismatch, len(flat), len(times), ds.dims)
	}
	if len(times) == 0 {
		return nil
	}
	last := int64(-1 << 62)
	ok := false
	if n := len(ds.times); n > 0 {
		last, ok = ds.times[n-1], true
	}
	for i, t := range times {
		if (ok || i > 0) && t <= last {
			return fmt.Errorf("%w: appending t=%d after t=%d", ErrNotIncreasing, t, last)
		}
		last, ok = t, true
	}
	ds.grow(len(times))
	ds.times = append(ds.times, times...)
	ds.flat = append(ds.flat, flat...)
	return nil
}

// grow reserves capacity for n more records, reallocating both columns in
// lockstep. Chunked doubling keeps appends amortized O(1); copying (rather
// than growing in place) is what lets prefix views outlive the reallocation.
func (ds *Dataset) grow(n int) {
	need := len(ds.times) + n
	if need <= cap(ds.times) && need*ds.dims <= cap(ds.flat) {
		return
	}
	newCap := cap(ds.times) * 2
	if newCap < appendChunkRows {
		newCap = appendChunkRows
	}
	for newCap < need {
		newCap *= 2
	}
	times := make([]int64, len(ds.times), newCap)
	copy(times, ds.times)
	flat := make([]float64, len(ds.flat), newCap*ds.dims)
	copy(flat, ds.flat)
	ds.times, ds.flat = times, flat
}

// Reserve pre-grows the columnar storage to hold n more records without
// further reallocation, for callers that know an ingest's size up front.
func (ds *Dataset) Reserve(n int) {
	if n > 0 {
		ds.grow(n)
	}
}

// MustNew is like New but panics on error. Intended for tests and generators
// whose inputs are correct by construction.
func MustNew(times []int64, attrs [][]float64) *Dataset {
	ds, err := New(times, attrs)
	if err != nil {
		panic(err)
	}
	return ds
}

// Len returns the number of records.
func (ds *Dataset) Len() int { return len(ds.times) }

// Dims returns the attribute dimensionality d.
func (ds *Dataset) Dims() int { return ds.dims }

// Time returns the arrival time of record i.
func (ds *Dataset) Time(i int) int64 { return ds.times[i] }

// Times returns the full arrival-time slice. It aliases internal storage and
// must not be modified.
func (ds *Dataset) Times() []int64 { return ds.times }

// Attrs returns the attribute vector of record i. The returned slice aliases
// internal storage and must not be modified.
func (ds *Dataset) Attrs(i int) []float64 {
	d := ds.dims
	return ds.flat[i*d : (i+1)*d : (i+1)*d]
}

// FlatAttrs returns the contiguous row-major attribute backing array: record
// i's attributes are FlatAttrs()[i*Dims() : (i+1)*Dims()]. It aliases
// internal storage and must not be modified. Bulk scorers consume it
// directly (see score.BulkScorer).
func (ds *Dataset) FlatAttrs() []float64 { return ds.flat }

// Record returns a view of record i.
func (ds *Dataset) Record(i int) Record {
	return Record{ID: i, Time: ds.times[i], Attrs: ds.Attrs(i)}
}

// Span returns the arrival times of the first and last records, or (0, 0)
// for an empty (appendable, not yet fed) dataset.
func (ds *Dataset) Span() (lo, hi int64) {
	if len(ds.times) == 0 {
		return 0, 0
	}
	return ds.times[0], ds.times[len(ds.times)-1]
}

// TimeSpan returns hi-lo, the length of the covered time range.
func (ds *Dataset) TimeSpan() int64 {
	lo, hi := ds.Span()
	return hi - lo
}

// LowerBound returns the smallest record index i with Time(i) >= t,
// or Len() if no such record exists.
func (ds *Dataset) LowerBound(t int64) int {
	return sort.Search(len(ds.times), func(i int) bool { return ds.times[i] >= t })
}

// UpperBound returns the smallest record index i with Time(i) > t,
// or Len() if no such record exists.
func (ds *Dataset) UpperBound(t int64) int {
	return sort.Search(len(ds.times), func(i int) bool { return ds.times[i] > t })
}

// IndexRange returns the half-open index range [lo, hi) of records whose
// arrival time lies in the closed time window [t1, t2]. The range is empty
// (lo == hi) when no record falls inside the window.
func (ds *Dataset) IndexRange(t1, t2 int64) (lo, hi int) {
	return ds.LowerBound(t1), ds.UpperBound(t2)
}

// At returns the index of the record arriving exactly at time t, or -1.
func (ds *Dataset) At(t int64) int {
	i := ds.LowerBound(t)
	if i < len(ds.times) && ds.times[i] == t {
		return i
	}
	return -1
}

// Prefix returns a dataset view over the first n records, sharing storage.
// The view's capacity is clipped to its length, so appends through the parent
// never become visible to (or writable through) the view.
func (ds *Dataset) Prefix(n int) *Dataset {
	if n <= 0 || n > ds.Len() {
		n = ds.Len()
	}
	d := ds.dims
	return &Dataset{times: ds.times[:n:n], flat: ds.flat[: n*d : n*d], dims: d}
}

// Slice returns a zero-copy view over the records of the half-open index
// range [lo, hi): both the time slice and the flat columnar attribute array
// are re-sliced, never copied, so record i of the view is record lo+i of ds
// backed by the same storage. Out-of-range bounds are clamped; an empty range
// (including any slice of an empty appendable dataset) returns an empty,
// non-nil view — callers iterate zero records instead of dereferencing nil.
func (ds *Dataset) Slice(lo, hi int) *Dataset {
	if lo < 0 {
		lo = 0
	}
	if hi > ds.Len() {
		hi = ds.Len()
	}
	if lo >= hi {
		return &Dataset{dims: ds.dims}
	}
	d := ds.dims
	return &Dataset{times: ds.times[lo:hi:hi], flat: ds.flat[lo*d : hi*d : hi*d], dims: d}
}

// SliceTime returns the zero-copy view (see Slice) over the records whose
// arrival time lies in the closed window [t1, t2]; the view is empty (never
// nil) when no record falls inside the window. Time shards carve a dataset
// into contiguous per-engine views with this without duplicating the columnar
// storage.
func (ds *Dataset) SliceTime(t1, t2 int64) *Dataset {
	lo, hi := ds.IndexRange(t1, t2)
	return ds.Slice(lo, hi)
}

// Project returns a new dataset restricted to the given attribute dimensions
// (in the given order). Attribute storage is copied; times are shared.
func (ds *Dataset) Project(dims []int) (*Dataset, error) {
	if len(dims) == 0 {
		return nil, ErrDimMismatch
	}
	for _, d := range dims {
		if d < 0 || d >= ds.dims {
			return nil, fmt.Errorf("data: projection dimension %d out of range [0,%d)", d, ds.dims)
		}
	}
	n, d := ds.Len(), len(dims)
	flat := make([]float64, n*d)
	for i := 0; i < n; i++ {
		src := ds.flat[i*ds.dims:]
		row := flat[i*d : (i+1)*d]
		for j, dim := range dims {
			row[j] = src[dim]
		}
	}
	return &Dataset{times: ds.times, flat: flat, dims: d}, nil
}

// Reversed returns the time-mirrored dataset: record i of the result is
// record n-1-i of the original, stamped with the negated original time.
// Reversing maps "looking-ahead" durability windows onto the "looking-back"
// machinery: a window [p.t, p.t+tau] in the original becomes [q.t-tau, q.t]
// for the mirrored record q. Attribute rows are copied into a fresh
// contiguous backing array in mirrored order.
func (ds *Dataset) Reversed() *Dataset {
	n, d := ds.Len(), ds.dims
	times := make([]int64, n)
	flat := make([]float64, n*d)
	for i := 0; i < n; i++ {
		j := n - 1 - i
		times[i] = -ds.times[j]
		copy(flat[i*d:(i+1)*d], ds.flat[j*d:(j+1)*d])
	}
	return &Dataset{times: times, flat: flat, dims: d}
}

// Builder incrementally assembles a Dataset in arrival order.
type Builder struct {
	times []int64
	flat  []float64
	dims  int
}

// NewBuilder returns a builder for records with d attributes. The capacity
// hint pre-sizes internal storage and may be zero.
func NewBuilder(d, capacity int) *Builder {
	if capacity < 0 {
		capacity = 0
	}
	return &Builder{
		times: make([]int64, 0, capacity),
		flat:  make([]float64, 0, capacity*d),
		dims:  d,
	}
}

// Len returns the number of records appended so far.
func (b *Builder) Len() int { return len(b.times) }

// Append adds one record. Times must be strictly increasing across calls and
// attrs must have exactly d values; attrs is copied.
func (b *Builder) Append(t int64, attrs []float64) error {
	if len(attrs) != b.dims {
		return fmt.Errorf("%w: got %d attrs, want %d", ErrDimMismatch, len(attrs), b.dims)
	}
	if n := len(b.times); n > 0 && t <= b.times[n-1] {
		return fmt.Errorf("%w: appending t=%d after t=%d", ErrNotIncreasing, t, b.times[len(b.times)-1])
	}
	b.times = append(b.times, t)
	b.flat = append(b.flat, attrs...)
	return nil
}

// Build finalizes the builder into a Dataset. The builder must not be used
// afterwards.
func (b *Builder) Build() (*Dataset, error) {
	if len(b.times) == 0 {
		return nil, ErrEmpty
	}
	return &Dataset{times: b.times, flat: b.flat, dims: b.dims}, nil
}
