package data

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func small(t *testing.T) *Dataset {
	t.Helper()
	ds, err := New(
		[]int64{1, 3, 4, 8, 10},
		[][]float64{{1, 0}, {2, 1}, {3, 2}, {4, 3}, {5, 4}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := New([]int64{1}, [][]float64{{1}, {2}}); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("length mismatch: %v", err)
	}
	if _, err := New([]int64{1, 2}, [][]float64{{1}, {1, 2}}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("dim mismatch: %v", err)
	}
	if _, err := New([]int64{2, 2}, [][]float64{{1}, {2}}); !errors.Is(err, ErrNotIncreasing) {
		t.Fatalf("equal times: %v", err)
	}
	if _, err := New([]int64{2, 1}, [][]float64{{1}, {2}}); !errors.Is(err, ErrNotIncreasing) {
		t.Fatalf("decreasing times: %v", err)
	}
	if _, err := New([]int64{1}, [][]float64{{}}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("zero dims: %v", err)
	}
}

func TestAccessors(t *testing.T) {
	ds := small(t)
	if ds.Len() != 5 || ds.Dims() != 2 {
		t.Fatalf("Len=%d Dims=%d", ds.Len(), ds.Dims())
	}
	if lo, hi := ds.Span(); lo != 1 || hi != 10 {
		t.Fatalf("Span=(%d,%d)", lo, hi)
	}
	if ds.TimeSpan() != 9 {
		t.Fatalf("TimeSpan=%d", ds.TimeSpan())
	}
	r := ds.Record(2)
	if r.ID != 2 || r.Time != 4 || r.Attrs[0] != 3 {
		t.Fatalf("Record(2)=%+v", r)
	}
}

func TestBounds(t *testing.T) {
	ds := small(t) // times 1 3 4 8 10
	cases := []struct {
		t     int64
		lower int
		upper int
	}{
		{0, 0, 0}, {1, 0, 1}, {2, 1, 1}, {3, 1, 2}, {4, 2, 3},
		{5, 3, 3}, {8, 3, 4}, {9, 4, 4}, {10, 4, 5}, {11, 5, 5},
	}
	for _, c := range cases {
		if got := ds.LowerBound(c.t); got != c.lower {
			t.Errorf("LowerBound(%d)=%d want %d", c.t, got, c.lower)
		}
		if got := ds.UpperBound(c.t); got != c.upper {
			t.Errorf("UpperBound(%d)=%d want %d", c.t, got, c.upper)
		}
	}
	if lo, hi := ds.IndexRange(3, 8); lo != 1 || hi != 4 {
		t.Fatalf("IndexRange(3,8)=(%d,%d)", lo, hi)
	}
	if lo, hi := ds.IndexRange(5, 2); lo >= hi {
		// inverted/empty windows yield empty ranges
	} else {
		t.Fatalf("IndexRange(5,2)=(%d,%d) not empty", lo, hi)
	}
	if ds.At(4) != 2 || ds.At(5) != -1 {
		t.Fatalf("At: %d %d", ds.At(4), ds.At(5))
	}
}

func TestPrefix(t *testing.T) {
	ds := small(t)
	p := ds.Prefix(3)
	if p.Len() != 3 || p.Time(2) != 4 {
		t.Fatalf("Prefix(3): len=%d", p.Len())
	}
	if ds.Prefix(0).Len() != ds.Len() || ds.Prefix(99).Len() != ds.Len() {
		t.Fatal("out-of-range prefix must return the full dataset")
	}
}

func TestProject(t *testing.T) {
	ds := small(t)
	p, err := ds.Project([]int{1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Dims() != 1 || p.Attrs(3)[0] != 3 {
		t.Fatalf("Project: dims=%d attrs=%v", p.Dims(), p.Attrs(3))
	}
	// Projection must copy: mutating the projection cannot touch the parent.
	p.Attrs(0)[0] = 42
	if ds.Attrs(0)[1] == 42 {
		t.Fatal("projection aliased parent storage")
	}
	if _, err := ds.Project([]int{2}); err == nil {
		t.Fatal("out-of-range dim must fail")
	}
	if _, err := ds.Project(nil); err == nil {
		t.Fatal("empty projection must fail")
	}
	// Re-ordering projection.
	swapped, err := ds.Project([]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if swapped.Attrs(2)[0] != 2 || swapped.Attrs(2)[1] != 3 {
		t.Fatalf("swapped projection: %v", swapped.Attrs(2))
	}
}

func TestReversed(t *testing.T) {
	ds := small(t)
	rev := ds.Reversed()
	if rev.Len() != ds.Len() {
		t.Fatal("reversed length mismatch")
	}
	for i := 0; i < ds.Len(); i++ {
		j := ds.Len() - 1 - i
		if rev.Time(i) != -ds.Time(j) {
			t.Fatalf("rev.Time(%d)=%d want %d", i, rev.Time(i), -ds.Time(j))
		}
		for c := 0; c < ds.Dims(); c++ {
			if rev.Attrs(i)[c] != ds.Attrs(j)[c] {
				t.Fatalf("rev.Attrs(%d)=%v want %v", i, rev.Attrs(i), ds.Attrs(j))
			}
		}
	}
	// Double reversal restores times.
	back := rev.Reversed()
	for i := 0; i < ds.Len(); i++ {
		if back.Time(i) != ds.Time(i) {
			t.Fatal("double reversal must restore times")
		}
	}
}

func TestBuilder(t *testing.T) {
	b := NewBuilder(2, 4)
	if err := b.Append(1, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(1, []float64{3, 4}); !errors.Is(err, ErrNotIncreasing) {
		t.Fatalf("duplicate time: %v", err)
	}
	if err := b.Append(2, []float64{3}); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("dim mismatch: %v", err)
	}
	if err := b.Append(2, []float64{3, 4}); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 2 {
		t.Fatalf("Len=%d", b.Len())
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 2 || ds.Attrs(1)[1] != 4 {
		t.Fatalf("built dataset wrong: %v", ds.Attrs(1))
	}
	if _, err := NewBuilder(1, 0).Build(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty build: %v", err)
	}
}

func TestBuilderCopiesAttrs(t *testing.T) {
	b := NewBuilder(1, 0)
	row := []float64{7}
	if err := b.Append(1, row); err != nil {
		t.Fatal(err)
	}
	row[0] = 8
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if ds.Attrs(0)[0] != 7 {
		t.Fatal("builder must copy attribute rows")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := small(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != ds.Len() || back.Dims() != ds.Dims() {
		t.Fatalf("round trip: %d/%d", back.Len(), back.Dims())
	}
	for i := 0; i < ds.Len(); i++ {
		if back.Time(i) != ds.Time(i) {
			t.Fatalf("time %d mismatch", i)
		}
		for j := 0; j < ds.Dims(); j++ {
			if back.Attrs(i)[j] != ds.Attrs(i)[j] {
				t.Fatalf("attr %d/%d mismatch", i, j)
			}
		}
	}
}

func TestCSVRoundTripQuick(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(3, int(n)+1)
		tt := int64(0)
		for i := 0; i <= int(n); i++ {
			tt += int64(1 + rng.Intn(3))
			if err := b.Append(tt, []float64{rng.NormFloat64(), rng.Float64() * 1e9, float64(rng.Intn(10))}); err != nil {
				return false
			}
		}
		ds, err := b.Build()
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, ds); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		for i := 0; i < ds.Len(); i++ {
			if back.Time(i) != ds.Time(i) {
				return false
			}
			for j := 0; j < 3; j++ {
				if back.Attrs(i)[j] != ds.Attrs(i)[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCSVMalformed(t *testing.T) {
	cases := []string{
		"",                         // no header
		"x,attr0\n1,2\n",           // bad header
		"time\n1\n",                // no attrs
		"time,attr0\nabc,2\n",      // bad time
		"time,attr0\n1,xyz\n",      // bad attr
		"time,attr0\n2,1\n1,1\n",   // decreasing
		"time,attr0\n1,1\n2,1,9\n", // ragged row
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: malformed CSV accepted", i)
		}
	}
}

func TestFlatAttrsContiguity(t *testing.T) {
	build := func(name string, ds *Dataset) {
		t.Helper()
		flat := ds.FlatAttrs()
		if len(flat) != ds.Len()*ds.Dims() {
			t.Fatalf("%s: FlatAttrs len=%d want %d", name, len(flat), ds.Len()*ds.Dims())
		}
		for i := 0; i < ds.Len(); i++ {
			row := ds.Attrs(i)
			if &row[0] != &flat[i*ds.Dims()] {
				t.Fatalf("%s: row %d does not alias the flat backing", name, i)
			}
		}
	}
	ds := small(t)
	build("New", ds)
	build("Reversed", ds.Reversed())
	build("Prefix", ds.Prefix(3))
	proj, err := ds.Project([]int{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	build("Project", proj)
	b := NewBuilder(2, 0)
	for i := 0; i < 5; i++ {
		if err := b.Append(int64(i+1), []float64{float64(i), float64(2 * i)}); err != nil {
			t.Fatal(err)
		}
	}
	built, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	build("Builder", built)
}

func TestNewFlat(t *testing.T) {
	ds, err := NewFlat([]int64{1, 2, 3}, []float64{1, 2, 3, 4, 5, 6}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 3 || ds.Dims() != 2 || ds.Attrs(1)[1] != 4 {
		t.Fatalf("NewFlat: %v", ds.Attrs(1))
	}
	if _, err := NewFlat(nil, nil, 1); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := NewFlat([]int64{1}, []float64{1}, 0); !errors.Is(err, ErrDimMismatch) {
		t.Fatalf("zero dim: %v", err)
	}
	if _, err := NewFlat([]int64{1, 2}, []float64{1, 2, 3}, 2); !errors.Is(err, ErrLengthMismatch) {
		t.Fatalf("length: %v", err)
	}
	if _, err := NewFlat([]int64{2, 1}, []float64{1, 2}, 1); !errors.Is(err, ErrNotIncreasing) {
		t.Fatalf("order: %v", err)
	}
}

func TestSlice(t *testing.T) {
	times := []int64{10, 20, 30, 40, 50}
	attrs := [][]float64{{1, 2}, {3, 4}, {5, 6}, {7, 8}, {9, 10}}
	ds := MustNew(times, attrs)

	v := ds.Slice(1, 4)
	if v.Len() != 3 || v.Dims() != 2 {
		t.Fatalf("Slice(1,4): len=%d dims=%d", v.Len(), v.Dims())
	}
	for i := 0; i < v.Len(); i++ {
		if v.Time(i) != ds.Time(1+i) {
			t.Fatalf("time %d: %d want %d", i, v.Time(i), ds.Time(1+i))
		}
		if &v.Attrs(i)[0] != &ds.Attrs(1 + i)[0] {
			t.Fatalf("record %d: attrs copied, want zero-copy alias", i)
		}
	}
	if &v.FlatAttrs()[0] != &ds.FlatAttrs()[2] {
		t.Fatal("flat array copied, want zero-copy alias")
	}
	if &v.Times()[0] != &ds.Times()[1] {
		t.Fatal("times copied, want zero-copy alias")
	}

	// Clamping and empty ranges.
	if full := ds.Slice(-3, 99); full.Len() != ds.Len() {
		t.Fatalf("clamped slice len %d", full.Len())
	}
	for _, v := range []*Dataset{ds.Slice(3, 3), ds.Slice(4, 2)} {
		if v == nil || v.Len() != 0 || v.Dims() != ds.Dims() {
			t.Fatalf("empty range must return an empty non-nil view, got %v", v)
		}
	}
}

func TestSliceTime(t *testing.T) {
	times := []int64{10, 20, 30, 40, 50}
	attrs := [][]float64{{1}, {2}, {3}, {4}, {5}}
	ds := MustNew(times, attrs)
	cases := []struct {
		t1, t2 int64
		want   []int64
	}{
		{20, 40, []int64{20, 30, 40}}, // closed on both ends
		{15, 44, []int64{20, 30, 40}}, // non-record endpoints
		{10, 10, []int64{10}},         // single boundary record
		{0, 9, nil},                   // before everything
		{51, 99, nil},                 // after everything
		{0, 99, times},                // everything
	}
	for _, c := range cases {
		v := ds.SliceTime(c.t1, c.t2)
		if c.want == nil {
			if v == nil || v.Len() != 0 {
				t.Fatalf("SliceTime(%d,%d): want empty view, got %v", c.t1, c.t2, v)
			}
			continue
		}
		if v == nil || v.Len() != len(c.want) {
			t.Fatalf("SliceTime(%d,%d): got %v", c.t1, c.t2, v)
		}
		for i, wt := range c.want {
			if v.Time(i) != wt {
				t.Fatalf("SliceTime(%d,%d)[%d] = %d want %d", c.t1, c.t2, i, v.Time(i), wt)
			}
		}
	}
}

// TestEmptyAppendableViews pins the empty-tail edge contract the live+sharded
// seal path relies on: Slice, SliceTime and Prefix over a just-opened (or
// just-sealed, momentarily empty) appendable tail return empty views — never
// nil, never a panic — and the views answer every read-only accessor sanely.
func TestEmptyAppendableViews(t *testing.T) {
	ds, err := NewAppendable(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]*Dataset{
		"Slice":     ds.Slice(0, 0),
		"SliceWide": ds.Slice(-5, 10),
		"SliceTime": ds.SliceTime(0, 100),
		"Prefix":    ds.Prefix(0),
		"PrefixBig": ds.Prefix(7),
	} {
		if v == nil {
			t.Fatalf("%s on empty appendable: nil view", name)
		}
		if v.Len() != 0 || v.Dims() != 3 {
			t.Fatalf("%s on empty appendable: len=%d dims=%d", name, v.Len(), v.Dims())
		}
		if lo, hi := v.Span(); lo != 0 || hi != 0 {
			t.Fatalf("%s: Span()=(%d,%d) want (0,0)", name, lo, hi)
		}
		if got := v.LowerBound(5); got != 0 {
			t.Fatalf("%s: LowerBound=%d want 0", name, got)
		}
		if qlo, qhi := v.IndexRange(0, 100); qlo != 0 || qhi != 0 {
			t.Fatalf("%s: IndexRange=(%d,%d) want (0,0)", name, qlo, qhi)
		}
	}
	// Views taken while empty must not observe records appended later.
	empty := ds.Prefix(0)
	if err := ds.AppendRow(1, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Fatalf("empty prefix view grew to %d records", empty.Len())
	}
}

func TestAppendable(t *testing.T) {
	if _, err := NewAppendable(0, 4); err == nil {
		t.Fatal("d=0 accepted")
	}
	ds, err := NewAppendable(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Len() != 0 || ds.Dims() != 2 {
		t.Fatalf("fresh appendable: len=%d dims=%d", ds.Len(), ds.Dims())
	}
	if lo, hi := ds.Span(); lo != 0 || hi != 0 {
		t.Fatalf("empty Span = (%d, %d), want (0, 0)", lo, hi)
	}
	if err := ds.AppendRow(1, []float64{1}); err == nil {
		t.Fatal("dim mismatch accepted")
	}
	// Only NewAppendable datasets own their storage outright; batch
	// constructors (zero-copy NewFlat especially) and views must refuse.
	batch := MustNew([]int64{1, 2}, [][]float64{{1, 2}, {3, 4}})
	if err := batch.AppendRow(3, []float64{5, 6}); !errors.Is(err, ErrNotAppendable) {
		t.Fatalf("batch dataset append: %v, want ErrNotAppendable", err)
	}
	if err := ds.Prefix(0).AppendRow(99, []float64{1, 2}); !errors.Is(err, ErrNotAppendable) {
		t.Fatal("view append accepted")
	}
	// Cross several chunk growth boundaries and verify contiguity plus
	// content at every step.
	n := 3*appendChunkRows + 17
	for i := 0; i < n; i++ {
		if err := ds.AppendRow(int64(i+1), []float64{float64(i), float64(-i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := ds.AppendRow(int64(n), []float64{0, 0}); err == nil {
		t.Fatal("non-increasing time accepted")
	}
	if ds.Len() != n {
		t.Fatalf("Len=%d want %d", ds.Len(), n)
	}
	flat := ds.FlatAttrs()
	if len(flat) != n*2 {
		t.Fatalf("flat length %d want %d", len(flat), n*2)
	}
	for i := 0; i < n; i++ {
		if ds.Time(i) != int64(i+1) || flat[i*2] != float64(i) || flat[i*2+1] != float64(-i) {
			t.Fatalf("record %d corrupted after growth: t=%d attrs=(%g,%g)",
				i, ds.Time(i), flat[i*2], flat[i*2+1])
		}
	}
}

func TestAppendRowCopiesAttrs(t *testing.T) {
	ds, err := NewAppendable(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	row := []float64{7}
	if err := ds.AppendRow(1, row); err != nil {
		t.Fatal(err)
	}
	row[0] = 9
	if ds.Attrs(0)[0] != 7 {
		t.Fatal("AppendRow must copy attrs")
	}
}

// TestAppendPreservesViews is the aliasing contract live indexes depend on:
// prefix and slice views taken before appends keep observing exactly their
// records, whether the tail growth reallocates or writes into spare capacity.
func TestAppendPreservesViews(t *testing.T) {
	ds, err := NewAppendable(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := ds.AppendRow(int64(i+1), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	pre := ds.Prefix(10)
	sl := ds.Slice(3, 7)
	// In-capacity appends (chunk already allocated) and reallocating
	// appends (past several doublings) both happen below.
	for i := 10; i < 5*appendChunkRows; i++ {
		if err := ds.AppendRow(int64(i+1), []float64{float64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if pre.Len() != 10 || sl.Len() != 4 {
		t.Fatalf("views resized: prefix=%d slice=%d", pre.Len(), sl.Len())
	}
	for i := 0; i < 10; i++ {
		if pre.Attrs(i)[0] != float64(i) {
			t.Fatalf("prefix record %d corrupted", i)
		}
	}
	for i := 0; i < 4; i++ {
		if sl.Attrs(i)[0] != float64(i+3) {
			t.Fatalf("slice record %d corrupted", i)
		}
	}
	// Reserve is a pure capacity hint: length and content unchanged.
	before := ds.Len()
	ds.Reserve(10_000)
	if ds.Len() != before || ds.Time(0) != 1 {
		t.Fatal("Reserve changed observable state")
	}
	if err := ds.AppendRow(int64(before+1), []float64{1}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamCSV(t *testing.T) {
	var buf bytes.Buffer
	orig := MustNew([]int64{1, 3, 9}, [][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	ds, err := NewAppendable(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	var rows int
	if err := StreamCSV(&buf, func(tm int64, attrs []float64) error {
		rows++
		return ds.AppendRow(tm, attrs)
	}); err != nil {
		t.Fatal(err)
	}
	if rows != 3 || ds.Len() != 3 {
		t.Fatalf("streamed %d rows, dataset %d", rows, ds.Len())
	}
	for i := 0; i < 3; i++ {
		if ds.Time(i) != orig.Time(i) || ds.Attrs(i)[0] != orig.Attrs(i)[0] {
			t.Fatalf("record %d mismatch", i)
		}
	}

	// Callback errors abort the stream and surface verbatim.
	buf.Reset()
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop here")
	if err := StreamCSV(&buf, func(int64, []float64) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("callback error lost: %v", err)
	}
	// Malformed input surfaces as a parse error.
	if err := StreamCSV(strings.NewReader("time,attr0\nnope,1\n"), func(int64, []float64) error { return nil }); err == nil {
		t.Fatal("malformed time accepted")
	}
	if err := StreamCSV(strings.NewReader("wrong,header\n"), func(int64, []float64) error { return nil }); err == nil {
		t.Fatal("bad header accepted")
	}
}
