// Package wire provides a small network protocol for serving durable top-k
// queries, so one process can build the range top-k index once and many
// clients can explore parameters (k, tau, interval, scoring function)
// interactively — the usage mode the paper's introduction motivates.
//
// The protocol is length-prefixed JSON over any stream connection (TCP in
// cmd/durserved, net.Pipe in tests): each frame is a 4-byte big-endian
// payload length followed by one JSON document. Requests carry an operation
// name plus parameters; every request yields exactly one response on the
// same connection, in order. Scoring functions travel either as linear
// preference weights or as scoring expressions compiled server-side against
// the dataset's attribute names (package expr).
//
// The wire types are versioned through Request.V; servers reject frames
// whose version or size they do not understand rather than guessing.
//
// Protocol v2 (negotiated per connection by an initial "hello" frame) adds
// standing queries: subscribe/unsubscribe operations register a durable
// top-k query against a live dataset, after which the server pushes Event
// frames — interleaved with the usual FIFO responses — carrying the online
// monitor's per-append decisions and confirmations. Connections that never
// send hello stay on v1 semantics untouched. See docs/wire-protocol.md.
package wire

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// Version is the baseline protocol version; every server and client speaks
// it. Version2 adds the hello handshake, subscriptions and server-pushed
// event frames; connections opt in per connection via OpHello.
const (
	Version  = 1
	Version2 = 2
)

// MaxFrame is the default limit on one frame's payload size; both sides
// reject larger frames to bound memory under malformed input.
const MaxFrame = 8 << 20

// Operation names.
const (
	OpPing        = "ping"
	OpDatasets    = "datasets"
	OpQuery       = "query"
	OpExplain     = "explain"
	OpMostDurable = "most-durable"
	OpAppend      = "append"

	// Protocol v2 operations.
	OpHello       = "hello"
	OpSubscribe   = "subscribe"
	OpUnsubscribe = "unsubscribe"
)

// FeatureEvents is the v2 feature flag for server-initiated event frames
// (required for subscriptions). Hello requests offer feature flags; the
// response carries the subset the server accepted.
const FeatureEvents = "events"

// FeatureBackfill is the v2.1 feature flag for gap-free standing queries:
// subscribe requests may anchor at a historical prefix (FromPrefix) or
// resume a durable registration (SubKey), event frames carry per-
// subscription sequence numbers, and slow subscribers receive a terminal
// "evicted" frame instead of a silent disconnect. Only granted alongside
// FeatureEvents; servers predating v2.1 simply never echo it, and clients
// then fall back to v2.0 semantics.
const FeatureBackfill = "backfill"

// QuerySpec carries the durable top-k query parameters shared by the
// query, explain, most-durable and subscribe operations. It is embedded in
// Request, so on the wire its fields stay flat and the v1 JSON frame shape
// is byte-for-byte unchanged.
type QuerySpec struct {
	K     int   `json:"k,omitempty"`
	Tau   int64 `json:"tau,omitempty"`
	Lead  int64 `json:"lead,omitempty"`
	Start int64 `json:"start,omitempty"`
	End   int64 `json:"end,omitempty"`

	// ExplicitInterval marks Start/End as a deliberate query interval even
	// when both are zero. Without it a start==end==0 request keeps its
	// historical meaning — "the dataset's full span" — which made the point
	// interval [0,0] unaddressable on datasets whose records start at time 0.
	// Old clients never set the field (it marshals away when false), so the
	// legacy default is preserved; new clients set it whenever the user
	// supplied an interval.
	ExplicitInterval bool `json:"explicitInterval,omitempty"`

	// N is the number of records a most-durable request reports.
	N int `json:"n,omitempty"`

	// Anchor is "look-back" (default), "look-ahead" or "general".
	Anchor string `json:"anchor,omitempty"`
	// Algorithm is "auto" (default) or one of the five strategy names.
	Algorithm string `json:"algorithm,omitempty"`

	// Weights selects a linear preference scorer; Expr selects a compiled
	// scoring expression over the dataset's attribute names. Exactly one
	// must be set for query/explain.
	Weights []float64 `json:"weights,omitempty"`
	Expr    string    `json:"expr,omitempty"`

	// WithDurations also reports each result's maximum durability.
	WithDurations bool `json:"withDurations,omitempty"`
}

// Request is one client frame.
type Request struct {
	V  int    `json:"v"`
	Op string `json:"op"`

	// Dataset names the served dataset (query, explain, subscribe).
	Dataset string `json:"dataset,omitempty"`

	// QuerySpec is embedded so its fields marshal flat, exactly as the v1
	// god-struct laid them out.
	QuerySpec

	// Rows is the batch of records an append request ingests into a live
	// dataset, in strictly increasing time order.
	Rows []IngestRow `json:"rows,omitempty"`

	// Features offers feature flags on a hello request (protocol v2); the
	// request's V field carries the highest version the client speaks.
	Features []string `json:"features,omitempty"`

	// SubID names the subscription an unsubscribe request drops.
	SubID uint64 `json:"subId,omitempty"`

	// Protocol v2.1 (feature "backfill"). Backfill marks FromPrefix as a
	// deliberate historical anchor for a subscribe request even when it is
	// zero (mirroring ExplicitInterval): the server replays committed rows
	// [FromPrefix, now) through the new subscription before splicing it into
	// the live stream. SubKey resumes an existing durable subscription
	// instead of creating one — the server re-derives and re-sends every
	// event past FromPrefix, so a reconnect is provably gap-free. On an
	// unsubscribe request a non-zero SubKey (with Dataset) drops a durable
	// registration by its key, attached to this connection or not.
	Backfill   bool   `json:"backfill,omitempty"`
	FromPrefix int    `json:"fromPrefix,omitempty"`
	SubKey     uint64 `json:"subKey,omitempty"`
}

// IngestRow is one record of an append request.
type IngestRow struct {
	Time  int64     `json:"time"`
	Attrs []float64 `json:"attrs"`
}

// LiveDecision is the instant look-back verdict the server's online monitor
// emits for one ingested record (only on monitored live datasets).
type LiveDecision struct {
	ID      int   `json:"id"`
	Time    int64 `json:"time"`
	Durable bool  `json:"durable"`
	Rank    int   `json:"rank"`
}

// LiveConfirmation is the delayed look-ahead verdict for a past record whose
// durability window closed during an append.
type LiveConfirmation struct {
	ID        int   `json:"id"`
	Time      int64 `json:"time"`
	Durable   bool  `json:"durable"`
	Beaten    int   `json:"beaten"`
	Truncated bool  `json:"truncated,omitempty"`
}

// Record is one durable record of a query response.
type Record struct {
	ID          int     `json:"id"`
	Time        int64   `json:"time"`
	Score       float64 `json:"score"`
	MaxDuration int64   `json:"maxDuration,omitempty"`
	FullHistory bool    `json:"fullHistory,omitempty"`
}

// Stats mirrors the engine's evaluation statistics.
type Stats struct {
	Algorithm      string `json:"algorithm"`
	CheckQueries   int    `json:"checkQueries"`
	FindQueries    int    `json:"findQueries"`
	MaintQueries   int    `json:"maintQueries"`
	CandidateCount int    `json:"candidateCount"`
	Visited        int    `json:"visited"`
	ElapsedMicros  int64  `json:"elapsedMicros"`
}

// DatasetInfo describes one served dataset.
type DatasetInfo struct {
	Name  string   `json:"name"`
	Len   int      `json:"len"`
	Dims  int      `json:"dims"`
	Start int64    `json:"start"`
	End   int64    `json:"end"`
	Attrs []string `json:"attrs,omitempty"` // names usable in expressions
	Live  bool     `json:"live,omitempty"`  // accepts append requests
	// Shards is the number of time shards currently serving the dataset:
	// fixed for a sharded registration, sealed+tail for a live+sharded one,
	// and 0 for single-engine datasets.
	Shards int `json:"shards,omitempty"`
}

// Response is one server frame.
type Response struct {
	V     int    `json:"v"`
	OK    bool   `json:"ok"`
	Error string `json:"error,omitempty"`
	// Transient marks a failure the client may retry verbatim (e.g. a live
	// dataset momentarily locked by a server-side ingest stream); the
	// request was rejected without side effects beyond Appended.
	Transient bool `json:"transient,omitempty"`

	Records  []Record      `json:"records,omitempty"`
	Stats    *Stats        `json:"stats,omitempty"`
	Datasets []DatasetInfo `json:"datasets,omitempty"`
	Plan     string        `json:"plan,omitempty"` // explain output

	// Append results: how many rows were committed, plus the online
	// monitor's verdicts when the live dataset is monitored.
	Appended  int                `json:"appended,omitempty"`
	Decisions []LiveDecision     `json:"decisions,omitempty"`
	Confirms  []LiveConfirmation `json:"confirms,omitempty"`

	// Protocol v2: Features echoes the accepted feature flags on a hello
	// response (with V set to the negotiated version); SubID reports the
	// server-assigned id on a subscribe response.
	Features []string `json:"features,omitempty"`
	SubID    uint64   `json:"subId,omitempty"`

	// Protocol v2.1 subscribe responses (backfill connections only — both
	// marshal away otherwise, keeping v2.0 frames byte-identical). SubKey is
	// the subscription's durable key: it survives the connection (and, on
	// crash-safe stores, the server process) and names the registration in a
	// resume or keyed unsubscribe. Base is the committed prefix the
	// subscription's verdict stream is anchored at.
	SubKey uint64 `json:"subKey,omitempty"`
	Base   int    `json:"base,omitempty"`
}

// Event is a server-initiated v2 frame pushed to a subscribed connection,
// interleaved with responses. It is distinguishable from a Response by its
// non-empty "event" key; clients sniff that key before decoding. Events for
// one subscription arrive in append order.
type Event struct {
	V     int    `json:"v"`
	Event string `json:"event"` // EventSub
	SubID uint64 `json:"subId"`

	// Prefix is the live dataset's acknowledged row count immediately after
	// the append this event describes — the exact prefix a client can
	// re-query to reproduce the verdicts below bit-identically.
	Prefix int `json:"prefix"`

	// Seq numbers this subscription's events 1, 2, 3, … from its base
	// prefix (protocol v2.1; stamped only on backfill connections, so v2.0
	// frames are byte-identical). The numbering is derived from the
	// committed row stream — a replayed event carries the same number the
	// original did — so a consumer proves gap-freedom by checking
	// contiguity. On an EventEvicted frame, Seq and Prefix report the last
	// event actually delivered to this connection.
	Seq uint64 `json:"seq,omitempty"`

	// Decision is the instant look-back verdict for the appended record, if
	// it falls inside the subscription's interval filter.
	Decision *LiveDecision `json:"decision,omitempty"`
	// Confirms are the delayed look-ahead verdicts that became due at this
	// append (or at subscription shutdown, marked Truncated).
	Confirms []LiveConfirmation `json:"confirms,omitempty"`
}

// EventSub is the Event.Event marker for subscription verdicts.
const EventSub = "sub"

// EventEvicted is the terminal Event.Event marker a slow subscriber
// receives before its connection is severed: the event queue overflowed,
// and rather than silently dropping verdicts (the stream's contract is that
// every verdict is accounted for) the server reports the last delivered
// sequence number and prefix per subscription, then closes. The consumer
// reconnects and resumes from that point with no gap.
const EventEvicted = "evicted"

// Protocol errors shared by both sides.
var (
	ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")
	ErrBadVersion    = errors.New("wire: unsupported protocol version")
)

// ServerError is a request-level failure reported by the server. Transient
// mirrors Response.Transient: the request may be retried verbatim.
type ServerError struct {
	Msg       string
	Transient bool
}

// Error keeps the historical "wire: server: ..." rendering.
func (e *ServerError) Error() string { return "wire: server: " + e.Msg }

// WriteFrame marshals v and writes one length-prefixed frame.
func WriteFrame(w io.Writer, v interface{}) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("wire: encoding frame: %w", err)
	}
	if len(payload) > MaxFrame {
		return fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, len(payload))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(payload)
	return err
}

// ReadFrame reads one length-prefixed frame into v.
func ReadFrame(r io.Reader, v interface{}) error {
	payload, err := ReadRawFrame(r)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("wire: decoding frame: %w", err)
	}
	return nil
}

// ReadRawFrame reads one length-prefixed frame and returns its payload
// undecoded. V2 clients use it to sniff whether a frame is a server-pushed
// Event (non-empty "event" key) or the response to an in-flight request
// before committing to a decode target.
func ReadRawFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err // io.EOF signals a cleanly closed peer
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d bytes", ErrFrameTooLarge, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: reading frame body: %w", err)
	}
	return payload, nil
}
