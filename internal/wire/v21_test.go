package wire

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"reflect"
	"testing"
	"time"
)

// TestBackfillNegotiation pins the v2.1 feature matrix: backfill is granted
// only alongside events, withheld entirely when subscriptions are off, and a
// session without it gets clean rejections (not dead connections) for
// backfill-shaped subscribe requests.
func TestBackfillNegotiation(t *testing.T) {
	srv, addr := startV2Server(t, 0)

	// events + backfill → both granted, in that order.
	full := dialT(t, addr)
	v, feats, err := full.Hello(FeatureEvents, FeatureBackfill)
	if err != nil {
		t.Fatal(err)
	}
	if v != Version2 || !reflect.DeepEqual(feats, []string{FeatureEvents, FeatureBackfill}) {
		t.Fatalf("negotiated v%d features %v, want v%d [%s %s]", v, feats, Version2, FeatureEvents, FeatureBackfill)
	}

	// backfill without events → neither (backfill refines the event stream).
	alone := dialT(t, addr)
	if _, feats, err = alone.Hello(FeatureBackfill); err != nil {
		t.Fatal(err)
	}
	if len(feats) != 0 {
		t.Fatalf("backfill without events accepted features %v, want none", feats)
	}

	// Events-only session (a v2.0 client): backfill-shaped subscribes are
	// rejected cleanly and the session survives.
	v20 := dialT(t, addr)
	if _, feats, err = v20.Hello(FeatureEvents); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(feats, []string{FeatureEvents}) {
		t.Fatalf("events-only hello accepted %v", feats)
	}
	spec := QuerySpec{K: 1, Tau: 1 << 40, Anchor: "look-back", Weights: []float64{1, 1}}
	if _, err := v20.Subscribe(Request{Dataset: "stream", QuerySpec: spec, Backfill: true, FromPrefix: 0}); err == nil {
		t.Fatal("fromPrefix subscribe accepted without the backfill feature")
	}
	if _, err := v20.Subscribe(Request{Dataset: "stream", QuerySpec: spec, SubKey: 7}); err == nil {
		t.Fatal("resume subscribe accepted without the backfill feature")
	}
	if _, err := v20.do(Request{Op: OpUnsubscribe, Dataset: "stream", SubKey: 7}); err == nil {
		t.Fatal("keyed unsubscribe accepted without the backfill feature")
	}
	if err := v20.Ping(); err != nil {
		t.Fatalf("session broken after rejected backfill ops: %v", err)
	}
	// Plain subscriptions on the events-only session stay ephemeral: no key,
	// no base, no sequence numbers on the frames.
	s, err := v20.Subscribe(Request{Dataset: "stream", QuerySpec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if s.SubKey() != 0 || s.Base() != 0 {
		t.Fatalf("ephemeral subscription got key %d base %d, want zeros", s.SubKey(), s.Base())
	}
	if _, _, err := srv.AppendRow("stream", 1, []float64{1, 2}); err != nil {
		t.Fatal(err)
	}
	select {
	case ev := <-s.Events():
		if ev.Seq != 0 {
			t.Fatalf("v2.0 event frame carried seq %d, want none", ev.Seq)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no event")
	}

	// The subscriptions gate withholds backfill along with events.
	srv.SetSubscriptions(false)
	gated := dialT(t, addr)
	if _, feats, err = gated.Hello(FeatureEvents, FeatureBackfill); err != nil {
		t.Fatal(err)
	}
	if len(feats) != 0 {
		t.Fatalf("gated hello accepted features %v, want none", feats)
	}
	srv.SetSubscriptions(true)
}

// TestDurableSubscriptionResume exercises the tentpole splice on an
// in-memory registry: a backfill subscription survives its connection dying
// mid-stream, a second connection resumes it by key from the last received
// event, the server replays the gap, and the merged stream is gap-free and
// duplicate-free — provably, via the contiguous sequence numbers.
func TestDurableSubscriptionResume(t *testing.T) {
	srv, addr := startV2Server(t, 0)

	c1 := dialT(t, addr)
	if _, _, err := c1.Hello(FeatureEvents, FeatureBackfill); err != nil {
		t.Fatal(err)
	}
	spec := QuerySpec{K: 1, Tau: 1 << 40, Anchor: "look-back", Weights: []float64{1, 0.5}}
	s1, err := c1.Subscribe(Request{Dataset: "stream", QuerySpec: spec})
	if err != nil {
		t.Fatal(err)
	}
	key := s1.SubKey()
	if key == 0 {
		t.Fatal("backfill subscription got no durable key")
	}
	if s1.Base() != 0 {
		t.Fatalf("base %d on an empty dataset, want 0", s1.Base())
	}

	var times []int64
	appendRows := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			tm := int64(len(times) + 1)
			times = append(times, tm)
			if _, _, err := srv.AppendRow("stream", tm, []float64{float64(len(times)), 1}); err != nil {
				t.Fatal(err)
			}
		}
	}
	recv := func(ch <-chan Event, n int) []Event {
		t.Helper()
		evs := make([]Event, 0, n)
		for len(evs) < n {
			select {
			case ev, ok := <-ch:
				if !ok {
					t.Fatalf("stream closed after %d/%d events", len(evs), n)
				}
				evs = append(evs, ev)
			case <-time.After(10 * time.Second):
				t.Fatalf("timed out after %d/%d events", len(evs), n)
			}
		}
		return evs
	}

	appendRows(5)
	first := recv(s1.Events(), 5)
	for i, ev := range first {
		if ev.Seq != uint64(i+1) || ev.Prefix != i+1 {
			t.Fatalf("event %d: seq %d prefix %d, want %d/%d", i, ev.Seq, ev.Prefix, i+1, i+1)
		}
	}
	lastPrefix, lastSeq := first[4].Prefix, first[4].Seq

	// The connection dies without unsubscribing; the registration survives,
	// detached, while more rows commit unobserved by any consumer.
	c1.Close()
	appendRows(5)

	// Resume by key from the last received event: the server replays the gap
	// (seqs 6..10) before splicing into the live stream (11..15).
	c2 := dialT(t, addr)
	if _, _, err := c2.Hello(FeatureEvents, FeatureBackfill); err != nil {
		t.Fatal(err)
	}
	s2, err := c2.Subscribe(Request{Dataset: "stream", SubKey: key, FromPrefix: lastPrefix})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if s2.SubKey() != key {
		t.Fatalf("resume echoed key %d, want %d", s2.SubKey(), key)
	}
	appendRows(5)
	rest := recv(s2.Events(), 10)
	for i, ev := range rest {
		wantSeq := lastSeq + uint64(i+1)
		wantPrefix := lastPrefix + i + 1
		if ev.Seq != wantSeq || ev.Prefix != wantPrefix {
			t.Fatalf("resumed event %d: seq %d prefix %d, want %d/%d", i, ev.Seq, ev.Prefix, wantSeq, wantPrefix)
		}
		if ev.Decision == nil || ev.Decision.ID != ev.Prefix-1 || ev.Decision.Time != times[ev.Prefix-1] {
			t.Fatalf("resumed event %d decision %+v does not describe prefix %d (time %d)",
				i, ev.Decision, ev.Prefix, times[ev.Prefix-1])
		}
	}

	// A conservative resume point (fromPrefix below what was delivered) only
	// produces duplicates the sequence numbers expose; a third connection
	// resuming from prefix 12 must see seqs 13, 14, 15 again — the overlap a
	// real consumer (Follower) drops by seq.
	c2.Close()
	c3 := dialT(t, addr)
	if _, _, err := c3.Hello(FeatureEvents, FeatureBackfill); err != nil {
		t.Fatal(err)
	}
	s3, err := c3.Subscribe(Request{Dataset: "stream", SubKey: key, FromPrefix: 12})
	if err != nil {
		t.Fatalf("conservative resume: %v", err)
	}
	replayed := recv(s3.Events(), 3)
	for i, ev := range replayed {
		if ev.Seq != uint64(13+i) || ev.Prefix != 13+i {
			t.Fatalf("replayed event %d: seq %d prefix %d, want %d/%d", i, ev.Seq, ev.Prefix, 13+i, 13+i)
		}
	}

	// Keyed unsubscribe really drops the registration: a further resume fails.
	if _, err := c3.do(Request{Op: OpUnsubscribe, Dataset: "stream", SubKey: key}); err != nil {
		t.Fatalf("keyed unsubscribe: %v", err)
	}
	c4 := dialT(t, addr)
	if _, _, err := c4.Hello(FeatureEvents, FeatureBackfill); err != nil {
		t.Fatal(err)
	}
	if _, err := c4.Subscribe(Request{Dataset: "stream", SubKey: key, FromPrefix: 0}); err == nil {
		t.Fatal("resume succeeded after keyed unsubscribe")
	}
}

// rawV2Conn drives the protocol frame by frame over a raw connection — the
// shape of a client we deliberately let fall behind.
type rawV2Conn struct {
	t    *testing.T
	conn net.Conn
}

func (r *rawV2Conn) send(req Request) {
	r.t.Helper()
	if err := WriteFrame(r.conn, &req); err != nil {
		r.t.Fatalf("raw send: %v", err)
	}
}

// next reads one frame, returning exactly one of (event, response).
func (r *rawV2Conn) next() (*Event, *Response, error) {
	payload, err := ReadRawFrame(r.conn)
	if err != nil {
		return nil, nil, err
	}
	var probe struct {
		Event string `json:"event"`
	}
	if err := json.Unmarshal(payload, &probe); err != nil {
		return nil, nil, err
	}
	if probe.Event != "" {
		var ev Event
		if err := json.Unmarshal(payload, &ev); err != nil {
			return nil, nil, err
		}
		return &ev, nil, nil
	}
	var resp Response
	if err := json.Unmarshal(payload, &resp); err != nil {
		return nil, nil, err
	}
	return nil, &resp, nil
}

func (r *rawV2Conn) expectResponse() *Response {
	r.t.Helper()
	for {
		ev, resp, err := r.next()
		if err != nil {
			r.t.Fatalf("raw read: %v", err)
		}
		if ev != nil {
			continue
		}
		if !resp.OK {
			r.t.Fatalf("error response: %s", resp.Error)
		}
		return resp
	}
}

// TestSlowSubscriberEvicted pins the overflow contract: a subscriber that
// stops draining sees a strictly contiguous run of events, then one terminal
// evicted frame naming exactly the last delivered sequence number, then EOF
// — never a silent gap — and the durable registration survives to be resumed
// past the eviction point.
func TestSlowSubscriberEvicted(t *testing.T) {
	srv, addr := startV2Server(t, 0)

	p1, p2 := net.Pipe()
	go srv.ServeConn(p1)
	rc := &rawV2Conn{t: t, conn: p2}
	rc.send(Request{V: Version2, Op: OpHello, Features: []string{FeatureEvents, FeatureBackfill}})
	hello := rc.expectResponse()
	if !reflect.DeepEqual(hello.Features, []string{FeatureEvents, FeatureBackfill}) {
		t.Fatalf("hello features %v", hello.Features)
	}
	rc.send(Request{V: Version2, Op: OpSubscribe, Dataset: "stream",
		QuerySpec: QuerySpec{K: 1, Tau: 1 << 40, Anchor: "look-back", Weights: []float64{1, 1}}})
	ack := rc.expectResponse()
	if ack.SubKey == 0 {
		t.Fatal("no durable key on backfill subscribe")
	}

	// Flood far past the queue depth while reading nothing: the pipe is
	// unbuffered, so the writer wedges on the first unread frame and the
	// queue fills behind it. Appends must never block or fail — eviction is
	// the slow consumer's problem, not the stream's.
	total := eventQueueDepth + 200
	for i := 1; i <= total; i++ {
		if _, _, err := srv.AppendRow("stream", int64(i), []float64{float64(i), 0}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}

	// Resume reading: contiguous events, then the evicted frame, then EOF.
	var lastSeq uint64
	var lastPrefix int
	sawEvicted := false
	for {
		ev, resp, err := rc.next()
		if err != nil {
			if !sawEvicted {
				t.Fatalf("stream ended (%v) without an evicted frame after seq %d", err, lastSeq)
			}
			if !errors.Is(err, io.EOF) && !errors.Is(err, io.ErrClosedPipe) && !errors.Is(err, io.ErrUnexpectedEOF) {
				t.Fatalf("stream ended with %v, want a close", err)
			}
			break
		}
		if resp != nil {
			t.Fatalf("unexpected response frame %+v mid-stream", resp)
		}
		if sawEvicted {
			t.Fatalf("frame %+v after the terminal evicted frame", ev)
		}
		if ev.Event == EventEvicted {
			sawEvicted = true
			if ev.SubID != ack.SubID {
				t.Fatalf("evicted frame for sub %d, want %d", ev.SubID, ack.SubID)
			}
			if ev.Seq != lastSeq || ev.Prefix != lastPrefix {
				t.Fatalf("evicted frame reports seq %d prefix %d; last delivered was %d/%d",
					ev.Seq, ev.Prefix, lastSeq, lastPrefix)
			}
			continue
		}
		if ev.Seq != lastSeq+1 {
			t.Fatalf("gap: seq %d after %d", ev.Seq, lastSeq)
		}
		lastSeq, lastPrefix = ev.Seq, ev.Prefix
	}
	if lastSeq == 0 || lastSeq >= uint64(total) {
		t.Fatalf("delivered %d events before eviction; expected some but not all %d", lastSeq, total)
	}
	p2.Close()

	// The eviction detached, not dropped, the registration: resume from the
	// evicted frame's prefix and the stream continues exactly where it
	// stopped, gap replayed.
	cl := dialT(t, addr)
	if _, _, err := cl.Hello(FeatureEvents, FeatureBackfill); err != nil {
		t.Fatal(err)
	}
	s, err := cl.Subscribe(Request{Dataset: "stream", SubKey: ack.SubKey, FromPrefix: lastPrefix})
	if err != nil {
		t.Fatalf("resume after eviction: %v", err)
	}
	want := lastSeq + 1
	deadline := time.After(20 * time.Second)
	for want <= uint64(total) {
		select {
		case ev, ok := <-s.Events():
			if !ok {
				t.Fatalf("resumed stream closed at seq %d", want-1)
			}
			if ev.Seq != want {
				t.Fatalf("resumed stream: seq %d, want %d", ev.Seq, want)
			}
			want++
		case <-deadline:
			t.Fatalf("timed out waiting for seq %d", want)
		}
	}
}

// TestFollowerResumesGapFree runs the Follower against a server whose
// connections keep dying (a proxy we cut), asserting the merged stream never
// gaps and never duplicates: every prefix 1..N appears exactly once even
// though rows were appended while the follower was disconnected.
func TestFollowerResumesGapFree(t *testing.T) {
	srv, addr := startV2Server(t, 0)

	// A minimal cut-able proxy: forwards bytes until told to sever.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type pair struct{ a, b net.Conn }
	conns := make(chan pair, 16)
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			up, err := net.Dial("tcp", addr)
			if err != nil {
				c.Close()
				return
			}
			go io.Copy(up, c)
			go io.Copy(c, up)
			conns <- pair{c, up}
		}
	}()
	cutAll := func() {
		for {
			select {
			case p := <-conns:
				p.a.Close()
				p.b.Close()
			default:
				return
			}
		}
	}

	f, err := Follow(ln.Addr().String(), Request{Dataset: "stream", QuerySpec: QuerySpec{
		K: 1, Tau: 1 << 40, Anchor: "look-back", Weights: []float64{1, 1},
	}}, RetryPolicy{MaxAttempts: 200, BaseDelay: time.Millisecond, MaxDelay: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	const rounds, perRound = 4, 25
	next := 1
	seen := 0
	for r := 0; r < rounds; r++ {
		for i := 0; i < perRound; i++ {
			if _, _, err := srv.AppendRow("stream", int64(next), []float64{float64(next), 0}); err != nil {
				t.Fatal(err)
			}
			next++
		}
		if r < rounds-1 {
			// Sever every live connection mid-stream; more rows land while
			// the follower is reconnecting.
			cutAll()
		}
		// Drain what has arrived so far without requiring synchronization
		// with the reconnect; the final tally below is the real assertion.
		drain := time.After(50 * time.Millisecond)
	drainLoop:
		for {
			select {
			case ev, ok := <-f.Events():
				if !ok {
					t.Fatalf("stream closed: %v", f.Err())
				}
				if ev.Prefix != seen+1 {
					t.Fatalf("merged stream: prefix %d after %d (gap or duplicate)", ev.Prefix, seen)
				}
				seen = ev.Prefix
			case <-drain:
				break drainLoop
			}
		}
	}
	total := next - 1
	deadline := time.After(20 * time.Second)
	for seen < total {
		select {
		case ev, ok := <-f.Events():
			if !ok {
				t.Fatalf("stream closed at prefix %d: %v", seen, f.Err())
			}
			if ev.Prefix != seen+1 {
				t.Fatalf("merged stream: prefix %d after %d (gap or duplicate)", ev.Prefix, seen)
			}
			seen = ev.Prefix
		case <-deadline:
			t.Fatalf("timed out at prefix %d/%d (reconnects %d, resets %d)",
				seen, total, f.Reconnects(), f.Resets())
		}
	}
	if f.Resets() != 0 {
		t.Fatalf("%d resets on an in-process server whose registry never restarted", f.Resets())
	}
	if f.Reconnects() == 0 {
		t.Fatal("the proxy cuts never forced a reconnect")
	}
	t.Logf("gap-free through %d prefixes across %d reconnects", total, f.Reconnects())
}

// TestEvictConnUnit drives the eviction writer directly: queued events drain
// in order, every live subscription gets its terminal frame (ordered by id),
// and the connection closes.
func TestEvictConnUnit(t *testing.T) {
	st := newConnState()
	st.subs[1] = connSub{}
	st.subs[2] = connSub{}
	for i := 1; i <= 3; i++ {
		st.progress = map[uint64]subProgress{
			1: {seq: uint64(i), prefix: i},
		}
		st.events <- &Event{V: Version2, Event: EventSub, SubID: 1, Seq: uint64(i), Prefix: i}
	}
	st.progress[2] = subProgress{seq: 7, prefix: 9}
	st.dead.Store(true)

	p1, p2 := net.Pipe()
	done := make(chan struct{})
	go func() {
		defer close(done)
		evictConn(p1, st)
	}()
	var frames []Event
	for {
		var ev Event
		if err := ReadFrame(p2, &ev); err != nil {
			break
		}
		frames = append(frames, ev)
	}
	<-done
	if len(frames) != 5 {
		t.Fatalf("got %d frames, want 3 events + 2 evicted", len(frames))
	}
	for i := 0; i < 3; i++ {
		if frames[i].Event != EventSub || frames[i].Seq != uint64(i+1) {
			t.Fatalf("frame %d: %+v, want queued event seq %d", i, frames[i], i+1)
		}
	}
	want := []Event{
		{V: Version2, Event: EventEvicted, SubID: 1, Seq: 3, Prefix: 3},
		{V: Version2, Event: EventEvicted, SubID: 2, Seq: 7, Prefix: 9},
	}
	for i, w := range want {
		got := frames[3+i]
		if got.Event != w.Event || got.SubID != w.SubID || got.Seq != w.Seq || got.Prefix != w.Prefix {
			t.Fatalf("evicted frame %d: %+v, want %+v", i, got, w)
		}
	}
}
