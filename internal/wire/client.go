package wire

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"syscall"
	"time"
)

// ErrIndeterminate wraps a transport-level append failure: the connection
// died before a response frame arrived, so the server may or may not have
// applied some of the in-flight rows. AppendRetry stops rather than re-send
// through it — see its doc for how callers reconcile and resume.
var ErrIndeterminate = errors.New("wire: append outcome indeterminate")

// Client speaks the wire protocol over one connection. Method calls are
// serialized (one in-flight request per connection); open several clients
// for parallelism. Safe for concurrent use.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader

	retries atomic.Int64

	// Protocol v2 session state (see client_v2.go). All nil/zero until Hello
	// negotiates v2; the v1 request path never touches it. respCh non-nil is
	// the "reader goroutine owns the connection's read side" signal: Do then
	// receives its response from the demultiplexer instead of the socket.
	respCh   chan *Response
	readDone chan struct{}
	features []string

	subMu   sync.Mutex
	subs    map[uint64]*Subscription
	pending map[uint64][]Event // early events for a subscribe still in flight
	maxSub  uint64
	readErr error
}

// Dial connects to a durable top-k server at addr (host:port).
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// RetryPolicy bounds the retry loops of DialRetry and Client.AppendRetry:
// capped exponential backoff with jitter, limited by both an attempt count
// and an overall time budget. The zero value means the defaults.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, first included (default 5).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry (default 10ms); each
	// further retry doubles it up to MaxDelay (default 1s). The actual sleep
	// is jittered uniformly over [delay/2, delay) so synchronized clients
	// spread out.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// MaxElapsed, when positive, stops retrying once the loop has run this
	// long, regardless of attempts left.
	MaxElapsed time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 5
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	return p
}

// sleep backs off one step and returns the doubled (capped) next delay.
func (p RetryPolicy) sleep(delay time.Duration) time.Duration {
	d := delay/2 + time.Duration(rand.Int63n(int64(delay/2)+1))
	time.Sleep(d)
	if delay *= 2; delay > p.MaxDelay {
		delay = p.MaxDelay
	}
	return delay
}

// IsTransient reports whether err is worth retrying: a server rejection
// marked transient (e.g. a live dataset locked by a draining ingest stream),
// a network timeout, or a connection refused/reset by a restarting server.
func IsTransient(err error) bool {
	var se *ServerError
	if errors.As(err, &se) {
		return se.Transient
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return true
	}
	return errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ECONNRESET)
}

// DialRetry connects to addr, retrying transient dial failures (connection
// refused, timeouts) under p — the usual way to wait out a server that is
// still replaying its write-ahead log at startup.
func DialRetry(addr string, p RetryPolicy) (*Client, error) {
	p = p.withDefaults()
	var deadline time.Time
	if p.MaxElapsed > 0 {
		deadline = time.Now().Add(p.MaxElapsed)
	}
	delay := p.BaseDelay
	for attempt := 1; ; attempt++ {
		c, err := Dial(addr)
		if err == nil {
			return c, nil
		}
		if !IsTransient(err) || attempt >= p.MaxAttempts ||
			(!deadline.IsZero() && !time.Now().Before(deadline)) {
			return nil, err
		}
		delay = p.sleep(delay)
	}
}

// NewClient wraps an established connection (e.g. one side of net.Pipe).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		bw:   bufio.NewWriter(conn),
		br:   bufio.NewReader(conn),
	}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request and waits for its response. Protocol-level failures
// return an error; request-level failures are reported in Response.Error.
func (c *Client) Do(req Request) (*Response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.respCh != nil {
		// V2 session: the reader goroutine owns the read side and routes the
		// response here, interleaved event frames notwithstanding.
		req.V = Version2
		if err := WriteFrame(c.bw, &req); err != nil {
			return nil, err
		}
		if err := c.bw.Flush(); err != nil {
			return nil, err
		}
		resp, ok := <-c.respCh
		if !ok {
			return nil, c.readError()
		}
		return resp, nil
	}
	req.V = Version
	if err := WriteFrame(c.bw, &req); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	var resp Response
	if err := ReadFrame(c.br, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// do runs one request and folds Response.Error into the error return.
func (c *Client) do(req Request) (*Response, error) {
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, &ServerError{Msg: resp.Error, Transient: resp.Transient}
	}
	return resp, nil
}

// Retries reports how many backoff retries this client has performed across
// all AppendRetry calls, for surfacing in ingest statistics.
func (c *Client) Retries() int64 { return c.retries.Load() }

// Ping round-trips a no-op frame.
func (c *Client) Ping() error {
	_, err := c.do(Request{Op: OpPing})
	return err
}

// Datasets lists the datasets the server exposes.
func (c *Client) Datasets() ([]DatasetInfo, error) {
	resp, err := c.do(Request{Op: OpDatasets})
	if err != nil {
		return nil, err
	}
	return resp.Datasets, nil
}

// Query runs one durable top-k query. Fill either Weights or Expr in req;
// Start/End of zero default to the dataset's full span.
func (c *Client) Query(req Request) ([]Record, *Stats, error) {
	req.Op = OpQuery
	resp, err := c.do(req)
	if err != nil {
		return nil, nil, err
	}
	return resp.Records, resp.Stats, nil
}

// Explain returns the server-side planner's rendered cost assessment.
func (c *Client) Explain(req Request) (string, error) {
	req.Op = OpExplain
	resp, err := c.do(req)
	if err != nil {
		return "", err
	}
	return resp.Plan, nil
}

// Append ingests rows into the named live dataset, in order. It returns the
// full append response: the committed row count and — on monitored live
// datasets — the instant decisions and window-close confirmations. A partial
// failure (some rows committed, then one rejected) is reported as an error
// with the response still carrying the committed count.
func (c *Client) Append(dataset string, rows []IngestRow) (*Response, error) {
	resp, err := c.Do(Request{Op: OpAppend, Dataset: dataset, Rows: rows})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return resp, &ServerError{Msg: resp.Error, Transient: resp.Transient}
	}
	return resp, nil
}

// AppendRetry appends rows like Append but retries server-reported transient
// rejections (e.g. a live dataset locked by a draining ingest stream) under
// p, resuming after the committed prefix: rows the server acknowledged in a
// partially-applied response are never re-sent, so as long as the server
// keeps answering, each row commits exactly once. The returned response
// aggregates the committed count, decisions and confirmations across
// attempts. Non-transient failures (validation errors, unknown dataset)
// return immediately — and so do transport-level failures (timeout, reset
// connection): with no response frame the commit state of the in-flight rows
// is unknown and this client never re-dials, so blindly re-sending could
// apply rows twice. Those return an error wrapping ErrIndeterminate with the
// response covering only server-acknowledged rows; callers that want to
// resume must reconcile first — re-dial and compare the dataset's reported
// length against the rows they consider acknowledged.
func (c *Client) AppendRetry(dataset string, rows []IngestRow, p RetryPolicy) (*Response, error) {
	p = p.withDefaults()
	var deadline time.Time
	if p.MaxElapsed > 0 {
		deadline = time.Now().Add(p.MaxElapsed)
	}
	total := &Response{V: Version, OK: true}
	delay := p.BaseDelay
	for attempt := 1; ; attempt++ {
		resp, err := c.Append(dataset, rows)
		if resp != nil {
			// Keep the committed prefix even when the attempt failed
			// part-way: retrying re-sends only what is still pending.
			total.Appended += resp.Appended
			total.Decisions = append(total.Decisions, resp.Decisions...)
			total.Confirms = append(total.Confirms, resp.Confirms...)
			rows = rows[resp.Appended:]
		} else if err != nil {
			// No response frame: the connection failed mid-request, so the
			// server may or may not have applied some of rows, and this
			// connection is dead. Re-sending could double-apply (on
			// strictly-increasing-time live datasets it turns into a
			// permanent validation failure instead), so stop and surface
			// the indeterminacy rather than guess.
			return total, fmt.Errorf("%w: %w", ErrIndeterminate, err)
		}
		if err == nil {
			return total, nil
		}
		if !IsTransient(err) || attempt >= p.MaxAttempts ||
			(!deadline.IsZero() && !time.Now().Before(deadline)) {
			return total, err
		}
		c.retries.Add(1)
		delay = p.sleep(delay)
	}
}

// MostDurable returns the req.N records with the largest maximum
// durability for req.K under the request's scorer and anchor, best first
// (MaxDuration carries each record's duration).
func (c *Client) MostDurable(req Request) ([]Record, error) {
	req.Op = OpMostDurable
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	return resp.Records, nil
}
