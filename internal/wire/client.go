package wire

import (
	"bufio"
	"fmt"
	"net"
	"sync"
)

// Client speaks the wire protocol over one connection. Method calls are
// serialized (one in-flight request per connection); open several clients
// for parallelism. Safe for concurrent use.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	bw   *bufio.Writer
	br   *bufio.Reader
}

// Dial connects to a durable top-k server at addr (host:port).
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewClient(conn), nil
}

// NewClient wraps an established connection (e.g. one side of net.Pipe).
func NewClient(conn net.Conn) *Client {
	return &Client{
		conn: conn,
		bw:   bufio.NewWriter(conn),
		br:   bufio.NewReader(conn),
	}
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// Do sends one request and waits for its response. Protocol-level failures
// return an error; request-level failures are reported in Response.Error.
func (c *Client) Do(req Request) (*Response, error) {
	req.V = Version
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := WriteFrame(c.bw, &req); err != nil {
		return nil, err
	}
	if err := c.bw.Flush(); err != nil {
		return nil, err
	}
	var resp Response
	if err := ReadFrame(c.br, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// do runs one request and folds Response.Error into the error return.
func (c *Client) do(req Request) (*Response, error) {
	resp, err := c.Do(req)
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, fmt.Errorf("wire: server: %s", resp.Error)
	}
	return resp, nil
}

// Ping round-trips a no-op frame.
func (c *Client) Ping() error {
	_, err := c.do(Request{Op: OpPing})
	return err
}

// Datasets lists the datasets the server exposes.
func (c *Client) Datasets() ([]DatasetInfo, error) {
	resp, err := c.do(Request{Op: OpDatasets})
	if err != nil {
		return nil, err
	}
	return resp.Datasets, nil
}

// Query runs one durable top-k query. Fill either Weights or Expr in req;
// Start/End of zero default to the dataset's full span.
func (c *Client) Query(req Request) ([]Record, *Stats, error) {
	req.Op = OpQuery
	resp, err := c.do(req)
	if err != nil {
		return nil, nil, err
	}
	return resp.Records, resp.Stats, nil
}

// Explain returns the server-side planner's rendered cost assessment.
func (c *Client) Explain(req Request) (string, error) {
	req.Op = OpExplain
	resp, err := c.do(req)
	if err != nil {
		return "", err
	}
	return resp.Plan, nil
}

// Append ingests rows into the named live dataset, in order. It returns the
// full append response: the committed row count and — on monitored live
// datasets — the instant decisions and window-close confirmations. A partial
// failure (some rows committed, then one rejected) is reported as an error
// with the response still carrying the committed count.
func (c *Client) Append(dataset string, rows []IngestRow) (*Response, error) {
	resp, err := c.Do(Request{Op: OpAppend, Dataset: dataset, Rows: rows})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return resp, fmt.Errorf("wire: server: %s", resp.Error)
	}
	return resp, nil
}

// MostDurable returns the req.N records with the largest maximum
// durability for req.K under the request's scorer and anchor, best first
// (MaxDuration carries each record's duration).
func (c *Client) MostDurable(req Request) ([]Record, error) {
	req.Op = OpMostDurable
	resp, err := c.do(req)
	if err != nil {
		return nil, err
	}
	return resp.Records, nil
}
