package wire

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/score"
	"repro/internal/store"
	"repro/internal/wal"
)

// Compile-time proof that the crash-safe store is a RegistryProvider: the
// server adopts its durable registry whenever durserved registers one via
// AddLiveQuerier.
var _ RegistryProvider = (*store.Store)(nil)

// startStoreServer serves one store-backed dataset, returning both handles.
func startStoreServer(t *testing.T, fs wal.FS, dir string) (*Server, *store.Store, string) {
	t.Helper()
	st, err := store.Open(dir, 2, store.Options{
		FS: fs, Sync: wal.SyncAlways,
		Live:  core.LiveOptions{MonitorK: 1, MonitorTau: 1 << 40, MonitorScorer: score.MustLinear(1, 1)},
		Shard: core.LiveShardOptions{SealRows: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(func(string, ...interface{}) {})
	if err := srv.AddLiveQuerier("stream", st.Engine(), st, []string{"a", "b"}); err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	return srv, st, ln.Addr().String()
}

// TestStoreBackedSubscriptionSurvivesRestart is the tentpole end to end in
// process: a durable subscription registered over the wire is persisted by
// the store's checkpoint manifest, survives a full store+server restart, and
// a resume by key replays every event missed across the outage with the
// sequence numbers proving the splice gap-free.
func TestStoreBackedSubscriptionSurvivesRestart(t *testing.T) {
	fs := wal.NewMemFS()
	dir := "db"
	srv, st, addr := startStoreServer(t, fs, dir)

	cl := dialT(t, addr)
	if _, _, err := cl.Hello(FeatureEvents, FeatureBackfill); err != nil {
		t.Fatal(err)
	}
	s, err := cl.Subscribe(Request{Dataset: "stream",
		QuerySpec: QuerySpec{K: 1, Tau: 1 << 40, Anchor: "look-back", Weights: []float64{1, 0.5}}})
	if err != nil {
		t.Fatal(err)
	}
	key := s.SubKey()
	if key == 0 {
		t.Fatal("store-backed subscription got no durable key")
	}

	// Rows flow over the wire, through the store's WAL, and back out as
	// events — the full committed path.
	app := dialT(t, addr)
	for i := 1; i <= 10; i++ {
		if _, err := app.Append("stream", []IngestRow{{Time: int64(i), Attrs: []float64{float64(i), 1}}}); err != nil {
			t.Fatal(err)
		}
	}
	var lastSeq uint64
	var lastPrefix int
	for lastPrefix < 10 {
		select {
		case ev, ok := <-s.Events():
			if !ok {
				t.Fatal("stream closed early")
			}
			if ev.Seq != lastSeq+1 {
				t.Fatalf("gap before restart: seq %d after %d", ev.Seq, lastSeq)
			}
			lastSeq, lastPrefix = ev.Seq, ev.Prefix
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out at prefix %d", lastPrefix)
		}
	}

	// Full outage: client gone, more rows committed, then the process
	// "restarts" — server and store close, the store recovers from WAL +
	// checkpoints, a fresh server serves it.
	cl.Close()
	for i := 11; i <= 20; i++ {
		if _, _, err := st.Append(int64(i), []float64{float64(i), 1}); err != nil {
			t.Fatal(err)
		}
	}
	srv.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	srv2, st2, addr2 := startStoreServer(t, fs, dir)
	defer srv2.Close()
	defer st2.Close()
	if got := st2.Engine().Dataset().Len(); got != 20 {
		t.Fatalf("recovered %d rows, want 20", got)
	}

	// The registration came back from the manifest: resume by key replays
	// prefixes 11..20 with their original sequence numbers, then goes live.
	cl2 := dialT(t, addr2)
	if _, _, err := cl2.Hello(FeatureEvents, FeatureBackfill); err != nil {
		t.Fatal(err)
	}
	s2, err := cl2.Subscribe(Request{Dataset: "stream", SubKey: key, FromPrefix: lastPrefix})
	if err != nil {
		t.Fatalf("resume after restart: %v", err)
	}
	for i := 21; i <= 25; i++ {
		if _, _, err := st2.Append(int64(i), []float64{float64(i), 1}); err != nil {
			t.Fatal(err)
		}
	}
	for lastPrefix < 25 {
		select {
		case ev, ok := <-s2.Events():
			if !ok {
				t.Fatalf("resumed stream closed at prefix %d", lastPrefix)
			}
			if ev.Seq != lastSeq+1 || ev.Prefix != lastPrefix+1 {
				t.Fatalf("splice broken: seq %d prefix %d after %d/%d", ev.Seq, ev.Prefix, lastSeq, lastPrefix)
			}
			lastSeq, lastPrefix = ev.Seq, ev.Prefix
		case <-time.After(10 * time.Second):
			t.Fatalf("timed out at prefix %d", lastPrefix)
		}
	}

	// An ephemeral (events-only) subscription on the same store-backed
	// dataset must NOT be persisted: restart forgets it.
	eph := dialT(t, addr2)
	if _, _, err := eph.Hello(FeatureEvents); err != nil {
		t.Fatal(err)
	}
	es, err := eph.Subscribe(Request{Dataset: "stream",
		QuerySpec: QuerySpec{K: 1, Tau: 1 << 40, Anchor: "look-back", Weights: []float64{1, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if es.SubKey() != 0 {
		t.Fatalf("ephemeral subscription reported durable key %d", es.SubKey())
	}
	reg := st2.Registry()
	snap := reg.Snapshot()
	if len(snap) != 1 || snap[0].ID != key {
		t.Fatalf("persistable snapshot %+v, want exactly the durable registration %d", snap, key)
	}
}
