package wire

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/data"
	"repro/internal/expr"
	"repro/internal/monitor"
	"repro/internal/score"
	"repro/internal/serve"
	"repro/internal/sub"
)

// LiveIngest is the append surface shared by core.LiveEngine and
// core.LiveShardedEngine: the server ingests wire append batches through it
// and reports the online monitor's verdicts when enabled.
type LiveIngest interface {
	Append(t int64, attrs []float64) (monitor.Decision, []monitor.Confirmation, error)
	Monitored() bool
}

// RegistryProvider is implemented by ingestion surfaces that own their
// dataset's standing-query registry and make registrations durable — the
// crash-safe store. When an AddLiveQuerier ingest surface implements it, the
// server uses the provider's registry (so registrations persist through
// checkpoints and survive restarts), replays history through its RowSource,
// feeds no rows itself (the provider observes its own committed appends),
// and withholds subscribe/unsubscribe acknowledgments until
// SyncSubscriptions reports the registration change durable.
type RegistryProvider interface {
	Registry() *sub.Registry
	RowSource() sub.RowSource
	SyncSubscriptions() error
}

// Server hosts durable top-k engines over named datasets and answers wire
// requests. Engines are built once at registration; queries on one engine
// run concurrently. The zero value is not usable; construct with NewServer.
type Server struct {
	logf func(format string, args ...interface{})

	mu     sync.RWMutex
	sets   map[string]*served
	closed bool

	lnMu  sync.Mutex
	lns   map[net.Listener]struct{}
	conns map[net.Conn]struct{}
	wg    sync.WaitGroup

	// connTimeout (nanoseconds; 0 = none) bounds each read and each write on
	// a connection, so a stalled or vanished client cannot pin a handler
	// goroutine forever.
	connTimeout atomic.Int64
	// draining flips when Close starts: connection loops finish the request
	// in flight (its response is still written), then exit instead of
	// reading the next frame.
	draining atomic.Bool

	// sched, when set, switches connections to pipelined serving: read-only
	// requests are dispatched through the scheduler and evaluate concurrently
	// (bounded by its worker pool) while responses still go out in request
	// order. Nil (the default) keeps the serial one-request-at-a-time loop.
	sched atomic.Pointer[serve.Scheduler]
	// cache, when set, is consulted before evaluating query and most-durable
	// requests and installed as the per-shard partial cache of engines that
	// support it.
	cache atomic.Pointer[serve.Cache]

	// subsOff withholds the "events" feature from hello negotiation, so
	// clients cannot subscribe (durserved makes standing queries an operator
	// opt-in). Protocol v2 itself still negotiates; only the feature is
	// denied. Default off: embedders get subscriptions without ceremony.
	subsOff atomic.Bool
}

type served struct {
	eng   core.Querier
	attrs []string
	// live is non-nil for datasets registered with AddLive or
	// AddLiveSharded; it is the same engine as eng, retyped for the
	// ingestion surface.
	live LiveIngest
	// ingesting marks a live dataset currently fed by a server-side stream
	// (durserved -ingest); wire appends are rejected while it is set, since
	// an external producer interleaving its own (later) timestamps would
	// make the stream's next record non-increasing and kill the feed. The
	// lockout is advisory against appends already in flight when the flag
	// flips (checked before each row, not atomically with it); set it
	// before serving connections for a hard guarantee.
	ingesting atomic.Bool

	// appendMu serializes committed appends with the subscription registry's
	// observation of them: an append and its Observe form one atomic step, so
	// every subscriber event names the exact committed prefix it describes
	// and monitors never see rows out of order. Wire appends from concurrent
	// connections contend here only per dataset; the engines serialize
	// internally anyway (strictly increasing timestamps).
	appendMu sync.Mutex
	// subReg is the dataset's standing-query registry, created lazily on the
	// first subscribe (under appendMu, so its starting prefix is exact).
	subReg atomic.Pointer[sub.Registry]
	// provider, when non-nil, supplies the registry instead (see
	// RegistryProvider): the ingest surface owns it, persists registrations
	// and observes its own committed appends, so appendRow must not.
	provider RegistryProvider

	// subOwners maps a registry subscription key to the connection currently
	// attached to it. A durable subscription outlives connections; on conn
	// teardown it is detached (not dropped) — but only by its current owner,
	// so a stale connection dying after another one resumed the subscription
	// cannot sever the new consumer.
	ownMu     sync.Mutex
	subOwners map[uint64]*connState

	// exprCache memoizes compiled scoring expressions by source text.
	// Dimensionality and attribute names — the other compile inputs — are
	// fixed per served dataset, so the source alone keys the cache; a busy
	// client re-sending the same expression skips the parse + analysis on
	// every query. Bounded by clearing: past maxExprCache distinct sources
	// the map resets, which is simpler than LRU bookkeeping and costs at
	// worst one recompile per entry per cycle.
	exprMu    sync.Mutex
	exprCache map[string]*expr.Expr
}

// maxExprCache bounds each dataset's compiled-expression cache.
const maxExprCache = 256

// appendRow commits one row and, atomically with the commit, feeds it to the
// dataset's standing-query registry so subscriber events carry the exact
// committed prefix. All committed appends — wire batches and the embedder's
// Server.AppendRow — funnel through here.
func (sv *served) appendRow(t int64, attrs []float64, logf func(string, ...interface{})) (monitor.Decision, []monitor.Confirmation, error) {
	sv.appendMu.Lock()
	defer sv.appendMu.Unlock()
	dec, confirms, err := sv.live.Append(t, attrs)
	if err != nil {
		return dec, confirms, err
	}
	// Provider-backed datasets observe their own committed appends (after
	// the WAL commit, so subscribers never see a row a crash could lose);
	// feeding the registry here would double-observe every row.
	if sv.provider == nil {
		if reg := sv.subReg.Load(); reg != nil {
			if oerr := reg.Observe(t, attrs); oerr != nil && logf != nil {
				// Unreachable while appends stay strictly increasing (the engine
				// just accepted the row); surfaced rather than swallowed so a
				// registry bug cannot silently starve subscribers.
				logf("wire: subscription registry: %v", oerr)
			}
		}
	}
	return dec, confirms, nil
}

// registry returns the dataset's standing-query registry, creating it on
// first use. Creation holds appendMu so the registry's starting prefix is
// the exact committed row count — no append can land between the count and
// the registry's attachment.
func (sv *served) registry() *sub.Registry {
	if sv.provider != nil {
		return sv.provider.Registry()
	}
	if r := sv.subReg.Load(); r != nil {
		return r
	}
	sv.appendMu.Lock()
	defer sv.appendMu.Unlock()
	if r := sv.subReg.Load(); r != nil {
		return r
	}
	r := sub.NewRegistry(sv.eng.Dataset().Len())
	sv.subReg.Store(r)
	return r
}

// loadRegistry returns the dataset's registry if one exists, without
// creating it — the teardown paths' flavor.
func (sv *served) loadRegistry() *sub.Registry {
	if sv.provider != nil {
		return sv.provider.Registry()
	}
	return sv.subReg.Load()
}

// rowSource replays committed rows for backfill and resume: the provider's
// (WAL-committed rows only) when one is installed, otherwise the engine's
// append-stable dataset view.
func (sv *served) rowSource() sub.RowSource {
	if sv.provider != nil {
		return sv.provider.RowSource()
	}
	return func(lo, hi int, observe func(t int64, attrs []float64) error) error {
		ds := sv.eng.Dataset()
		if hi > ds.Len() {
			return fmt.Errorf("wire: row source asked for [%d,%d) of %d committed rows", lo, hi, ds.Len())
		}
		for i := lo; i < hi; i++ {
			if err := observe(ds.Time(i), ds.Attrs(i)); err != nil {
				return err
			}
		}
		return nil
	}
}

// syncSubscriptions makes a registration change durable before it is
// acknowledged; a no-op for in-memory registries.
func (sv *served) syncSubscriptions() error {
	if sv.provider == nil {
		return nil
	}
	return sv.provider.SyncSubscriptions()
}

// claimSub records st as the connection currently attached to registry
// subscription key regID. Used when the subscription is first created, so no
// competing resume can exist yet (the key has not been disclosed).
func (sv *served) claimSub(regID uint64, st *connState) {
	sv.ownMu.Lock()
	if sv.subOwners == nil {
		sv.subOwners = make(map[uint64]*connState)
	}
	sv.subOwners[regID] = st
	sv.ownMu.Unlock()
}

// resumeOwned reattaches st to durable subscription regID, replaying missed
// events past fromPrefix, and transfers ownership to st. The registry call
// happens under ownMu so it cannot interleave with a stale owner's
// detachIfOwner — lock order is always ownMu → registry lock. ready fires
// once the resume is certain to succeed, before the backlog is emitted (see
// Registry.ResumeNotify); handleResume acks through it so the client learns
// its subscription id ahead of a possibly long replay.
func (sv *served) resumeOwned(regID uint64, fromPrefix int, st *connState, emit sub.Emit, ready func(base int)) (int, error) {
	reg := sv.loadRegistry()
	if reg == nil {
		return 0, sub.ErrNotFound
	}
	sv.ownMu.Lock()
	defer sv.ownMu.Unlock()
	base, err := reg.ResumeNotify(regID, fromPrefix, emit, sv.rowSource(), ready)
	if err != nil {
		return 0, err
	}
	if sv.subOwners == nil {
		sv.subOwners = make(map[uint64]*connState)
	}
	sv.subOwners[regID] = st
	return base, nil
}

// detachIfOwner detaches durable subscription regID — discarding events until
// a Resume — but only if st is still its owner. Holding ownMu across the
// Detach means a connection that resumed the subscription concurrently (and
// took ownership) can never have its freshly attached emitter severed by the
// stale connection's teardown.
func (sv *served) detachIfOwner(regID uint64, st *connState) {
	sv.ownMu.Lock()
	defer sv.ownMu.Unlock()
	if sv.subOwners[regID] != st {
		return
	}
	delete(sv.subOwners, regID)
	if reg := sv.loadRegistry(); reg != nil {
		_ = reg.Detach(regID)
	}
}

// dropSubOwner unconditionally forgets regID's owner — the unsubscribe paths,
// where the registration itself is being dropped.
func (sv *served) dropSubOwner(regID uint64) {
	sv.ownMu.Lock()
	delete(sv.subOwners, regID)
	sv.ownMu.Unlock()
}

// compileExpr returns the compiled form of src, memoized per dataset.
// Compilation errors are not cached: they are cheap to reproduce (parsing
// fails early) and caching them would let junk sources evict useful entries.
func (sv *served) compileExpr(src string, dims int) (*expr.Expr, error) {
	sv.exprMu.Lock()
	defer sv.exprMu.Unlock()
	if e, ok := sv.exprCache[src]; ok {
		return e, nil
	}
	e, err := expr.Compile(src, expr.Options{Dims: dims, Names: sv.attrs})
	if err != nil {
		return nil, err
	}
	if len(sv.exprCache) >= maxExprCache {
		sv.exprCache = nil
	}
	if sv.exprCache == nil {
		sv.exprCache = make(map[string]*expr.Expr)
	}
	sv.exprCache[src] = e
	return e, nil
}

// NewServer returns an empty server. logf (nil = log.Printf) receives
// per-connection protocol errors; request errors are reported to clients,
// not logged.
func NewServer(logf func(format string, args ...interface{})) *Server {
	if logf == nil {
		logf = log.Printf
	}
	return &Server{
		logf:  logf,
		sets:  make(map[string]*served),
		lns:   make(map[net.Listener]struct{}),
		conns: make(map[net.Conn]struct{}),
	}
}

// SetConnTimeout bounds each frame read and each response write on every
// connection (zero disables, the default). An idle client is disconnected
// after d without a request; a client that stops draining responses is
// disconnected after its write stalls for d. Applies to connections accepted
// after the call.
func (s *Server) SetConnTimeout(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.connTimeout.Store(int64(d))
}

// SetScheduler installs the admission scheduler that enables pipelined
// serving: each connection's read-only requests (query, explain,
// most-durable) evaluate concurrently — across requests of one connection and
// across connections — bounded by the scheduler's worker pool, while
// responses are still written in request order per connection. Appends keep
// executing in arrival order on the connection's read loop, so an
// append-then-query sequence on one connection always queries the appended
// state. A nil scheduler restores the serial loop. Applies to connections
// accepted after the call.
func (s *Server) SetScheduler(sched *serve.Scheduler) { s.sched.Store(sched) }

// SetSubscriptions enables or disables standing-query serving: when off, the
// "events" feature is withheld during hello negotiation, so subscribe
// requests are rejected with a clear error while every other v1 and v2
// operation works unchanged. On by default; durserved turns it off unless
// started with -subscriptions. Applies to hellos negotiated after the call.
func (s *Server) SetSubscriptions(on bool) { s.subsOff.Store(!on) }

// SetCache installs the shared result cache: query and most-durable responses
// are replayed verbatim for exact-match repeats at an unchanged data epoch,
// and engines that support per-shard partial caching (the sharded flavors)
// additionally memoize each immutable shard's interior answers across
// queries. Installing a cache wires it into every registered dataset and
// every dataset registered later; a nil cache disables both layers for
// subsequent registrations and requests (already-installed partial views stay
// on their engines). Safe to call while serving.
func (s *Server) SetCache(c *serve.Cache) {
	s.cache.Store(c)
	if c == nil {
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	for name, sv := range s.sets {
		if pc, ok := sv.eng.(partialCacheSetter); ok {
			pc.SetPartialCache(c.Partial(name))
		}
	}
}

// partialCacheSetter is implemented by engines that can memoize per-shard
// interior answers (core.ShardedEngine, core.LiveShardedEngine).
type partialCacheSetter interface{ SetPartialCache(core.PartialCache) }

// epochSequenced is implemented by engines whose query state changes over
// time; EpochSeq ticks on every mutation. Static engines do not implement it
// and are treated as epoch 0 forever — correct, since they never change.
type epochSequenced interface{ EpochSeq() uint64 }

// epochOf returns eng's current query epoch (0 for immutable engines).
func epochOf(eng core.Querier) uint64 {
	if e, ok := eng.(epochSequenced); ok {
		return e.EpochSeq()
	}
	return 0
}

// Add registers ds under name, building its engine. attrs optionally names
// the dataset's attribute columns for use in scoring expressions; it may be
// nil (positional x0, x1, … always work).
func (s *Server) Add(name string, ds *data.Dataset, attrs []string, opts core.Options) error {
	return s.add(name, ds, attrs, func() core.Querier { return core.NewEngine(ds, opts) })
}

// AddSharded registers ds under name backed by a time-sharded engine: one
// independent engine per contiguous time shard, queries fanned out on a
// bounded worker pool (see core.ShardedEngine). The wire contract is
// identical to Add — same requests, same answers.
func (s *Server) AddSharded(name string, ds *data.Dataset, attrs []string, opts core.Options, shards core.ShardOptions) error {
	return s.add(name, ds, attrs, func() core.Querier { return core.NewShardedEngine(ds, opts, shards) })
}

// AddQuerier registers an already-built engine (either flavor) under name;
// use it when the caller needs the engine handle too (e.g. to report the
// shard layout actually built).
func (s *Server) AddQuerier(name string, eng core.Querier, attrs []string) error {
	return s.add(name, eng.Dataset(), attrs, func() core.Querier { return eng })
}

// AddLive registers an empty live dataset of the given dimensionality under
// name and returns its engine. The dataset grows through append requests on
// the wire (OpAppend) or direct LiveEngine.Append calls by the embedder;
// queries serve whatever has been ingested so far, exactly as a batch engine
// over the same records would answer them.
func (s *Server) AddLive(name string, dims int, attrs []string, opts core.Options, live core.LiveOptions) (*core.LiveEngine, error) {
	le, err := core.NewLiveEngine(dims, opts, live)
	if err != nil {
		return nil, err
	}
	// The entry is inserted fully initialized (live set before publication),
	// so a concurrent append can never observe a registered-but-not-live
	// window.
	if err := s.addEntry(name, le.Dataset(), attrs, func() *served {
		return &served{eng: le, attrs: attrs, live: le}
	}); err != nil {
		return nil, err
	}
	return le, nil
}

// AddLiveSharded registers an empty live+sharded dataset of the given
// dimensionality under name and returns its engine: appends route to a
// mutable tail shard that seals into immutable static shards per the
// LiveShardOptions lifecycle (see core.LiveShardedEngine). The wire contract
// is identical to AddLive — same append and query requests, same answers —
// only the serving engine's scaling behavior differs.
func (s *Server) AddLiveSharded(name string, dims int, attrs []string, opts core.Options, live core.LiveOptions, shards core.LiveShardOptions) (*core.LiveShardedEngine, error) {
	lse, err := core.NewLiveShardedEngine(dims, opts, live, shards)
	if err != nil {
		return nil, err
	}
	if err := s.addEntry(name, lse.Dataset(), attrs, func() *served {
		return &served{eng: lse, attrs: attrs, live: lse}
	}); err != nil {
		return nil, err
	}
	return lse, nil
}

// AddLiveQuerier registers an already-built live engine under name with a
// custom ingestion surface: queries answer from eng while wire appends route
// through ingest. Use it when appends must pass through a wrapper around the
// engine — e.g. a crash-safe store that write-ahead logs each row before the
// engine it serves queries from applies it.
func (s *Server) AddLiveQuerier(name string, eng core.Querier, ingest LiveIngest, attrs []string) error {
	if ingest == nil {
		return errors.New("wire: AddLiveQuerier needs a non-nil ingest surface")
	}
	return s.addEntry(name, eng.Dataset(), attrs, func() *served {
		sv := &served{eng: eng, attrs: attrs, live: ingest}
		// An ingest surface that owns a durable registry (the crash-safe
		// store) takes over standing-query state for this dataset.
		sv.provider, _ = ingest.(RegistryProvider)
		return sv
	})
}

func (s *Server) add(name string, ds *data.Dataset, attrs []string, build func() core.Querier) error {
	return s.addEntry(name, ds, attrs, func() *served {
		return &served{eng: build(), attrs: attrs}
	})
}

func (s *Server) addEntry(name string, ds *data.Dataset, attrs []string, build func() *served) error {
	if name == "" {
		return errors.New("wire: dataset name must not be empty")
	}
	if attrs != nil && len(attrs) != ds.Dims() {
		return fmt.Errorf("wire: %d attribute names for %d dimensions", len(attrs), ds.Dims())
	}
	// Validate names eagerly so registration, not the first query, fails.
	if _, err := expr.Compile("1", expr.Options{Dims: ds.Dims(), Names: attrs}); err != nil {
		return fmt.Errorf("wire: attribute names: %w", err)
	}
	// Reject duplicates before building: index construction (especially
	// per-shard) is far too expensive to discard. The name is re-checked
	// under the same lock that inserts it, so concurrent registrations of
	// one name still resolve to a single winner.
	s.mu.Lock()
	_, dup := s.sets[name]
	s.mu.Unlock()
	if dup {
		return fmt.Errorf("wire: dataset %q already registered", name)
	}
	sv := build()
	if c := s.cache.Load(); c != nil {
		if pc, ok := sv.eng.(partialCacheSetter); ok {
			pc.SetPartialCache(c.Partial(name))
		}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.sets[name]; dup {
		return fmt.Errorf("wire: dataset %q already registered", name)
	}
	s.sets[name] = sv
	return nil
}

// Serve accepts connections on ln until the listener or server closes.
// It always returns a non-nil error (net.ErrClosed after Close).
func (s *Server) Serve(ln net.Listener) error {
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		ln.Close()
		return net.ErrClosed
	}
	s.lns[ln] = struct{}{}
	s.lnMu.Unlock()
	defer func() {
		s.lnMu.Lock()
		delete(s.lns, ln)
		s.lnMu.Unlock()
	}()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return err
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.ServeConn(conn)
		}()
	}
}

// Close stops all listeners and shuts down gracefully: connections finish
// (and get the response for) the request they are handling, but no further
// requests are read. Idle connections — blocked waiting for a client frame —
// are unblocked immediately rather than waited on.
func (s *Server) Close() error {
	s.draining.Store(true)
	s.lnMu.Lock()
	s.closed = true
	for ln := range s.lns {
		ln.Close()
	}
	for conn := range s.conns {
		// Expire pending reads so idle connection loops wake up and see the
		// draining flag. In-flight handlers are untouched: their response
		// write carries its own deadline and still completes.
		conn.SetReadDeadline(time.Now())
	}
	s.lnMu.Unlock()
	s.wg.Wait()
	return nil
}

// ServeConn answers requests on one connection until EOF, a protocol error,
// a deadline (SetConnTimeout) or server shutdown; it closes conn before
// returning. With a scheduler installed (SetScheduler) the connection is
// served pipelined — read-only requests evaluate concurrently, responses go
// out in request order — otherwise one request at a time. Exported so tests
// and embedders can drive the protocol over net.Pipe.
func (s *Server) ServeConn(conn net.Conn) {
	defer conn.Close()
	s.lnMu.Lock()
	if s.closed {
		s.lnMu.Unlock()
		return
	}
	s.conns[conn] = struct{}{}
	s.lnMu.Unlock()
	defer func() {
		s.lnMu.Lock()
		delete(s.conns, conn)
		s.lnMu.Unlock()
	}()
	if sched := s.sched.Load(); sched != nil {
		s.serveConnPipelined(conn, sched, newConnState())
		return
	}
	for {
		if !s.armRead(conn) {
			return
		}
		var req Request
		if err := ReadFrame(conn, &req); err != nil {
			s.logReadErr(conn, err)
			return
		}
		var resp *Response
		var st *connState
		if req.Op == OpHello {
			// A hello may upgrade this connection to v2. The response is
			// written below on the serial path; if v2 was negotiated the
			// connection then switches to the event-capable loop (a writer
			// goroutine is required to push events while the read loop is
			// blocked on the next frame).
			st = newConnState()
			resp = s.handleHello(&req, st)
		} else {
			resp = s.handle(&req)
		}
		if timeout := time.Duration(s.connTimeout.Load()); timeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(timeout))
		}
		if err := WriteFrame(conn, resp); err != nil {
			s.logf("wire: %s: write: %v", conn.RemoteAddr(), err)
			return
		}
		if st != nil && st.v2 {
			s.serveConnPipelined(conn, nil, st)
			return
		}
	}
}

// armRead prepares one frame read: it applies the current connection timeout
// and checks for shutdown, reporting whether the caller should proceed with
// the read. The timeout is re-loaded every iteration — a SetConnTimeout
// during a long-lived connection takes effect at its next frame, not only on
// new connections — and a failed SetReadDeadline (the fd already dead) drops
// the connection instead of silently reading without a bound. The deadline is
// set before the draining check: if Close lands between the two, its
// SetReadDeadline(now) overrides this one and the read returns immediately,
// so shutdown never waits out a full idle timeout.
func (s *Server) armRead(conn net.Conn) bool {
	timeout := time.Duration(s.connTimeout.Load())
	var err error
	if timeout > 0 {
		err = conn.SetReadDeadline(time.Now().Add(timeout))
	} else {
		// Clear any deadline from a previous iteration so lowering the
		// timeout to zero mid-connection does not leave a stale expiry armed.
		err = conn.SetReadDeadline(time.Time{})
	}
	if err != nil {
		s.logf("wire: %s: set read deadline: %v", conn.RemoteAddr(), err)
		return false
	}
	return !s.draining.Load()
}

// logReadErr reports a failed frame read, distinguishing clean closes and
// shutdown-induced deadline expiries from genuine client failures.
func (s *Server) logReadErr(conn net.Conn, err error) {
	switch {
	case errors.Is(err, net.ErrClosed), errors.Is(err, io.EOF):
	case s.draining.Load():
		// Shutdown expired the deadline; not a client failure.
	case isTimeout(err):
		s.logf("wire: %s: closing idle connection after %v",
			conn.RemoteAddr(), time.Duration(s.connTimeout.Load()))
	default:
		s.logf("wire: %s: read: %v", conn.RemoteAddr(), err)
	}
}

// pipelineDepth bounds how many responses may be pending per connection; a
// client that pipelines faster than the server evaluates blocks in its writes
// once the window fills, instead of growing an unbounded queue server-side.
const pipelineDepth = 32

// concurrentOp reports whether op may evaluate off the connection's read
// loop. Read-only operations qualify: they run against immutable epoch
// snapshots, so any interleaving with appends yields some valid serial order.
// Appends do not — their effects must land in arrival order (timestamps are
// strictly increasing) and be visible to every later request on the same
// connection, which handling them inline on the read loop guarantees.
func concurrentOp(op string) bool {
	switch op {
	case OpQuery, OpExplain, OpMostDurable:
		return true
	}
	return false
}

// serveConnPipelined runs the concurrent per-connection protocol: the read
// loop parses frames and dispatches read-only requests through sched to
// evaluate in parallel, while a writer goroutine drains a FIFO of response
// slots so responses leave in exactly the order their requests arrived — the
// protocol's one-response-per-request-in-order contract is preserved, clients
// cannot tell the difference (except in latency).
//
// The same writer also delivers server-initiated event frames (protocol v2):
// events from st.events interleave with responses at frame granularity.
// Events have no ordering contract against responses except one the teardown
// paths rely on: events enqueued by a request's handler are flushed before
// that request's response (so an unsubscribe's final truncated confirmations
// precede its acknowledgment). With sched == nil every request is handled
// inline on the read loop — the shape a serial v1 connection upgrades into
// after a v2 hello, when it needs the writer to push events while the read
// loop blocks on the next frame.
//
// Backpressure: at most pipelineDepth responses may be outstanding; the
// scheduler additionally bounds how many evaluate at once, with admission
// itself bounded by the connection timeout — a saturated server answers
// "transient: retry" instead of queueing without limit. Subscribers that
// stop draining their TCP window stall the writer and are disconnected by
// the write deadline (SetConnTimeout) or, if their event queue overflows
// first, by the slow-subscriber eviction in pushEvent.
func (s *Server) serveConnPipelined(conn net.Conn, sched *serve.Scheduler, st *connState) {
	type slot chan *Response
	slots := make(chan slot, pipelineDepth)
	writeFailed := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		write := func(v interface{}) bool {
			if timeout := time.Duration(s.connTimeout.Load()); timeout > 0 {
				conn.SetWriteDeadline(time.Now().Add(timeout))
			}
			if err := WriteFrame(conn, v); err != nil {
				s.logf("wire: %s: write: %v", conn.RemoteAddr(), err)
				return false
			}
			return true
		}
		// flushEvents forwards every queued event without blocking.
		flushEvents := func() bool {
			for {
				select {
				case ev := <-st.events:
					if !write(ev) {
						return false
					}
				default:
					return true
				}
			}
		}
		fail := func() {
			st.dead.Store(true)
			close(writeFailed)
			// Keep draining so in-flight handlers can deliver into their
			// slots and exit; the frames are discarded, the client is gone.
			for sl := range slots {
				<-sl
			}
		}
		for {
			select {
			case <-st.evict:
				// Slow-subscriber eviction (pushEvent overflowed): drain what
				// is queued, write each subscription's terminal evicted frame,
				// close the connection. fail() then releases any in-flight
				// handlers into their buffered slots.
				evictConn(conn, st)
				fail()
				return
			case ev := <-st.events:
				if !write(ev) {
					fail()
					return
				}
			case sl, ok := <-slots:
				if !ok {
					// Read loop ended and every response is out; flush the
					// events still queued (e.g. truncated confirmations from
					// connection teardown) before the connection closes.
					flushEvents()
					return
				}
				resp := (*Response)(nil)
				for resp == nil {
					select {
					case resp = <-sl:
					case <-st.evict:
						evictConn(conn, st)
						fail()
						return
					case ev := <-st.events:
						// Keep events flowing while a slow handler computes.
						if !write(ev) {
							fail()
							return
						}
					}
				}
				// Events enqueued by this request's handler go first. A
				// deferred response already rode the event FIFO (resume's
				// ack-before-backlog); only the flush remains.
				if !flushEvents() {
					fail()
					return
				}
				if resp != respDeferred && !write(resp) {
					fail()
					return
				}
			}
		}
	}()

	for {
		if !s.armRead(conn) {
			break
		}
		var req Request
		if err := ReadFrame(conn, &req); err != nil {
			s.logReadErr(conn, err)
			break
		}
		sl := make(slot, 1)
		select {
		case slots <- sl:
		case <-writeFailed:
			// The writer is gone; nothing can answer this request.
			goto done
		}
		if st.v2 && req.V == Version2 {
			// The connection negotiated v2; its frames pass the common
			// handlers' version check as the baseline version.
			req.V = Version
		}
		switch {
		case req.Op == OpHello:
			sl <- s.handleHello(&req, st)
			continue
		case req.Op == OpSubscribe:
			sl <- s.handleSubscribe(&req, st, conn)
			continue
		case req.Op == OpUnsubscribe:
			sl <- s.handleUnsubscribe(&req, st)
			continue
		case sched == nil || !concurrentOp(req.Op):
			// Appends (and ping/datasets, too cheap to dispatch) run inline:
			// by the time the next frame is read, their effects are visible.
			sl <- s.handle(&req)
			continue
		}
		// req is declared inside the loop body, so the handler goroutine
		// captures this iteration's frame, not a shared variable.
		go func() {
			ctx := context.Background()
			if timeout := time.Duration(s.connTimeout.Load()); timeout > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, timeout)
				defer cancel()
			}
			err := sched.Do(ctx, func() { sl <- s.handle(&req) })
			if err != nil {
				// Slot already reserved, so the ordering contract holds even
				// for rejections. Admission timeouts are transient: the pool
				// drains, retrying verbatim is correct.
				sl <- &Response{V: Version, Error: "wire: server overloaded: " + err.Error(),
					Transient: errors.Is(err, ctx.Err())}
			}
		}()
	}
done:
	// Retire this connection's subscriptions before the writer shuts down:
	// their final truncated confirmations enqueue as events and are flushed
	// by the writer's close path, so a mid-stream server Close still delivers
	// every pending verdict.
	s.unsubscribeAll(st)
	close(slots)
	wg.Wait()
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

func errResponse(err error) *Response {
	return &Response{V: Version, Error: err.Error()}
}

func (s *Server) handle(req *Request) *Response {
	if req.V != Version {
		return errResponse(fmt.Errorf("%w: %d (want %d)", ErrBadVersion, req.V, Version))
	}
	switch req.Op {
	case OpPing:
		return &Response{V: Version, OK: true}
	case OpDatasets:
		return s.handleDatasets()
	case OpQuery:
		return s.handleQuery(req)
	case OpExplain:
		return s.handleExplain(req)
	case OpMostDurable:
		return s.handleMostDurable(req)
	case OpAppend:
		return s.handleAppend(req)
	case OpSubscribe, OpUnsubscribe:
		// Reachable only on connections that never negotiated v2 (the v2 read
		// loop intercepts these before handle). The version check above
		// already caught v2-stamped frames; this catches v1-stamped ones.
		return errResponse(fmt.Errorf("wire: %s requires protocol v2 (send hello first)", req.Op))
	case OpHello:
		// Hello is intercepted by every connection loop; a frame reaching the
		// common handler means an embedder called handle directly.
		return errResponse(errors.New("wire: hello must be the subject of its own connection handshake"))
	default:
		return errResponse(fmt.Errorf("wire: unknown op %q", req.Op))
	}
}

func (s *Server) handleDatasets() *Response {
	s.mu.RLock()
	defer s.mu.RUnlock()
	resp := &Response{V: Version, OK: true}
	names := make([]string, 0, len(s.sets))
	for name := range s.sets {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sv := s.sets[name]
		ds := sv.eng.Dataset()
		lo, hi := ds.Span()
		shards := 0
		switch eng := sv.eng.(type) {
		case *core.ShardedEngine:
			shards = eng.NumShards()
		case *core.LiveShardedEngine:
			shards = eng.NumShards()
		}
		resp.Datasets = append(resp.Datasets, DatasetInfo{
			Name: name, Len: ds.Len(), Dims: ds.Dims(),
			Start: lo, End: hi, Attrs: sv.attrs, Live: sv.live != nil,
			Shards: shards,
		})
	}
	return resp
}

// lookup resolves the served dataset of a request.
func (s *Server) lookup(name string) (*served, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	sv, ok := s.sets[name]
	if !ok {
		return nil, fmt.Errorf("wire: unknown dataset %q", name)
	}
	return sv, nil
}

// buildQuery translates the request into a core.Query against sv.
func buildQuery(req *Request, sv *served) (core.Query, error) {
	var q core.Query
	ds := sv.eng.Dataset()
	scorer, err := requestScorer(req, sv)
	if err != nil {
		return q, err
	}
	alg := core.Auto
	if req.Algorithm != "" && req.Algorithm != "auto" {
		alg, err = core.ParseAlgorithm(req.Algorithm)
		if err != nil {
			return q, err
		}
	}
	anchor := core.LookBack
	switch req.Anchor {
	case "", "look-back":
	case "look-ahead":
		anchor = core.LookAhead
	case "general":
		anchor = core.General
	default:
		return q, fmt.Errorf("wire: unknown anchor %q", req.Anchor)
	}
	start, end := req.Start, req.End
	if start == 0 && end == 0 && !req.ExplicitInterval {
		// Legacy whole-span default. Clients that really mean the point
		// interval [0,0] — addressable on datasets starting at time 0 — set
		// ExplicitInterval to suppress the rewrite.
		start, end = ds.Span()
	}
	return core.Query{
		K: req.K, Tau: req.Tau, Lead: req.Lead, Start: start, End: end,
		Scorer: scorer, Algorithm: alg, Anchor: anchor,
		WithDurations: req.WithDurations,
	}, nil
}

// requestScorer resolves the request's scoring function.
func requestScorer(req *Request, sv *served) (score.Scorer, error) {
	ds := sv.eng.Dataset()
	switch {
	case len(req.Weights) > 0 && req.Expr != "":
		return nil, errors.New("wire: weights and expr are mutually exclusive")
	case len(req.Weights) > 0:
		return score.NewLinear(req.Weights)
	case req.Expr != "":
		return sv.compileExpr(req.Expr, ds.Dims())
	default:
		return nil, errors.New("wire: query needs weights or expr")
	}
}

// resultKey derives the whole-result cache key of a query-shaped request, or
// ok=false when the request is uncacheable (no canonical scorer form). The
// caller supplies the epoch it read before consulting the cache.
func resultKey(req *Request, q core.Query, epoch uint64) (serve.ResultKey, bool) {
	sk, ok := score.CanonicalKey(q.Scorer)
	if !ok {
		return serve.ResultKey{}, false
	}
	return serve.ResultKey{
		Dataset: req.Dataset, Op: req.Op, Scorer: sk,
		K: q.K, N: req.N, Tau: q.Tau, Lead: q.Lead,
		Start: q.Start, End: q.End,
		Anchor: q.Anchor, Algorithm: q.Algorithm,
		WithDurations: q.WithDurations, Epoch: epoch,
	}, true
}

func (s *Server) handleQuery(req *Request) *Response {
	sv, err := s.lookup(req.Dataset)
	if err != nil {
		return errResponse(err)
	}
	q, err := buildQuery(req, sv)
	if err != nil {
		return errResponse(err)
	}
	// Whole-result fast path: an exact-match repeat at an unchanged data
	// epoch replays the previous response verbatim. The epoch is read before
	// the lookup and re-checked after evaluation; a store happens only when
	// it did not move, so an entry can never carry an answer from a newer
	// state than its key claims. Cached responses are shared across requests
	// and must not be mutated after the store (WriteFrame only reads them).
	var (
		cache = s.cache.Load()
		rk    serve.ResultKey
		epoch uint64
		keyed bool
	)
	if cache != nil {
		epoch = epochOf(sv.eng)
		if rk, keyed = resultKey(req, q, epoch); keyed {
			if v, ok := cache.GetResult(rk); ok {
				return v.(*Response)
			}
		}
	}
	res, err := sv.eng.DurableTopK(q)
	if err != nil {
		return errResponse(err)
	}
	resp := &Response{V: Version, OK: true, Stats: &Stats{
		Algorithm:      res.Stats.Algorithm.String(),
		CheckQueries:   res.Stats.CheckQueries,
		FindQueries:    res.Stats.FindQueries,
		MaintQueries:   res.Stats.MaintQueries,
		CandidateCount: res.Stats.CandidateCount,
		Visited:        res.Stats.Visited,
		ElapsedMicros:  res.Stats.Elapsed.Microseconds(),
	}}
	resp.Records = make([]Record, 0, len(res.Records))
	for _, r := range res.Records {
		resp.Records = append(resp.Records, Record{
			ID: r.ID, Time: r.Time, Score: r.Score,
			MaxDuration: r.MaxDuration, FullHistory: r.FullHistory,
		})
	}
	if keyed && epochOf(sv.eng) == epoch {
		cache.PutResult(rk, resp)
	}
	return resp
}

func (s *Server) handleExplain(req *Request) *Response {
	sv, err := s.lookup(req.Dataset)
	if err != nil {
		return errResponse(err)
	}
	q, err := buildQuery(req, sv)
	if err != nil {
		return errResponse(err)
	}
	plan, err := sv.eng.Explain(q)
	if err != nil {
		return errResponse(err)
	}
	return &Response{V: Version, OK: true, Plan: plan.String()}
}

// SetIngesting marks (on) or clears (off) the named live dataset as being
// fed by a server-side ingest stream. While marked, wire append requests to
// it are rejected; queries are unaffected. Returns an error for unknown or
// non-live datasets.
func (s *Server) SetIngesting(name string, on bool) error {
	sv, err := s.lookup(name)
	if err != nil {
		return err
	}
	if sv.live == nil {
		return fmt.Errorf("wire: dataset %q is not live", name)
	}
	sv.ingesting.Store(on)
	return nil
}

// handleAppend ingests a batch of rows into a live dataset. Rows commit in
// order until the first invalid one; the response reports how many committed
// (so a partially rejected batch is visible to the producer) alongside the
// error, plus the online monitor's decisions and confirmations when the live
// dataset is monitored.
func (s *Server) handleAppend(req *Request) *Response {
	sv, err := s.lookup(req.Dataset)
	if err != nil {
		return errResponse(err)
	}
	if sv.live == nil {
		return errResponse(fmt.Errorf("wire: dataset %q is not live (register with AddLive to ingest)", req.Dataset))
	}
	if len(req.Rows) == 0 {
		return errResponse(errors.New("wire: append needs at least one row"))
	}
	resp := &Response{V: Version, OK: true}
	monitored := sv.live.Monitored()
	for _, row := range req.Rows {
		// Re-checked per row so a SetIngesting(true) that lands mid-batch
		// stops the batch at the next row. The lockout is still advisory
		// for rows already past the check (see the ingesting field's doc);
		// embedders that need a hard cut-over drain in-flight appends
		// before starting a feed, as durserved does by setting the flag
		// before serving.
		if sv.ingesting.Load() {
			resp.OK = false
			resp.Error = fmt.Sprintf("wire: dataset %q is being fed by a server-side ingest stream; appends are rejected until it drains", req.Dataset)
			resp.Transient = true // the feed drains; retrying is correct
			break
		}
		dec, confirms, err := sv.appendRow(row.Time, row.Attrs, s.logf)
		if err != nil {
			resp.OK = false
			resp.Error = err.Error()
			break
		}
		resp.Appended++
		if !monitored {
			continue
		}
		resp.Decisions = append(resp.Decisions, LiveDecision{
			ID: dec.ID, Time: dec.Time, Durable: dec.Durable, Rank: dec.Rank,
		})
		for _, c := range confirms {
			resp.Confirms = append(resp.Confirms, LiveConfirmation{
				ID: c.ID, Time: c.Time, Durable: c.Durable, Beaten: c.Beaten, Truncated: c.Truncated,
			})
		}
	}
	return resp
}

// handleMostDurable answers the "stood the test of time" report: the N
// records with the largest maximum durability for the requested k, scorer
// and anchor. Mid-anchored windows have no duration notion and are
// rejected.
func (s *Server) handleMostDurable(req *Request) *Response {
	sv, err := s.lookup(req.Dataset)
	if err != nil {
		return errResponse(err)
	}
	scorer, err := requestScorer(req, sv)
	if err != nil {
		return errResponse(err)
	}
	anchor := core.LookBack
	switch req.Anchor {
	case "", "look-back":
	case "look-ahead":
		anchor = core.LookAhead
	default:
		return errResponse(fmt.Errorf("wire: most-durable supports look-back or look-ahead, not %q", req.Anchor))
	}
	if req.N < 1 {
		return errResponse(errors.New("wire: most-durable needs n >= 1"))
	}
	// Same epoch-checked fast path as handleQuery; most-durable is the more
	// expensive report (a full durability profile), so repeats benefit most.
	var (
		cache = s.cache.Load()
		rk    serve.ResultKey
		epoch uint64
		keyed bool
	)
	if cache != nil {
		if sk, ok := score.CanonicalKey(scorer); ok {
			epoch = epochOf(sv.eng)
			rk = serve.ResultKey{Dataset: req.Dataset, Op: req.Op, Scorer: sk,
				K: req.K, N: req.N, Anchor: anchor, Epoch: epoch}
			keyed = true
			if v, ok := cache.GetResult(rk); ok {
				return v.(*Response)
			}
		}
	}
	top, err := sv.eng.MostDurable(req.K, scorer, anchor, req.N)
	if err != nil {
		return errResponse(err)
	}
	resp := &Response{V: Version, OK: true}
	for _, r := range top {
		resp.Records = append(resp.Records, Record{
			ID: r.ID, Time: r.Time, Score: r.Score,
			MaxDuration: r.Duration, FullHistory: r.FullHistory,
		})
	}
	if keyed && epochOf(sv.eng) == epoch {
		cache.PutResult(rk, resp)
	}
	return resp
}
